// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. V). Each benchmark runs complete simulations and
// reports the papers' metrics via b.ReportMetric:
//
//	BenchmarkLatencyLocalVsRemote  – local/remote controller latency primer
//	BenchmarkFig10Synthetic        – synthetic sweep per policy
//	BenchmarkFig11Runtime          – suite runtime normalized to buddy
//	BenchmarkFig12Idle             – suite idle time normalized to buddy
//	BenchmarkFig13PerThread        – per-thread runtime spread
//	BenchmarkFig14PerThreadIdle    – per-thread idle spread
//	BenchmarkColoredAllocColdVsWarm– colored-list refill cost ablation
//	BenchmarkMappingAblation       – separable vs overlapped bit mapping
//	BenchmarkAgingAblation         – pristine vs aged buddy zones
//
// The benchmarks run at full paper scale (a few minutes for the whole
// suite). Simulated cycles (not wall time) are the quantities of
// interest — wall-clock ns/op only measures the simulator itself.
package tintmalloc_test

import (
	"fmt"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

const benchScale = 1.0

func benchMachine(b *testing.B) *bench.Machine {
	b.Helper()
	mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: 2 << 30})
	if err != nil {
		b.Fatal(err)
	}
	return mach
}

func benchConfig(b *testing.B, mach *bench.Machine, name string) bench.Config {
	b.Helper()
	cfg, err := bench.ConfigByName(mach.Topo, name)
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// BenchmarkLatencyLocalVsRemote reproduces the latency primer behind
// paper Figs. 1/7: cold-line access latency per controller distance.
func BenchmarkLatencyLocalVsRemote(b *testing.B) {
	mach := benchMachine(b)
	for i := 0; i < b.N; i++ {
		r, err := bench.RunLatency(mach, 0, 256, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range r.Rows {
				b.ReportMetric(row.Cycles, fmt.Sprintf("cycles/line-node%d-%dhop", row.Node, row.Hops))
			}
		}
	}
}

// BenchmarkFig10Synthetic reproduces Fig. 10: synthetic alternating-
// stride execution time under buddy/LLC/MEM/MEM+LLC coloring.
func BenchmarkFig10Synthetic(b *testing.B) {
	for _, pol := range bench.Fig10Policies() {
		b.Run(pol.String(), func(b *testing.B) {
			mach := benchMachine(b)
			cfg := benchConfig(b, mach, "16_threads_4_nodes")
			var last bench.RunMetrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(mach, bench.RunSpec{
					Workload: workload.Synthetic(), Config: cfg, Policy: pol,
					Params: workload.Params{Seed: 1, Scale: benchScale},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.Runtime), "sim-cycles")
			b.ReportMetric(last.RowConflictFrac*100, "rowconf-%")
		})
	}
}

func suiteBenchmark(b *testing.B, metric func(bench.RunMetrics) float64, unit string) {
	mach := benchMachine(b)
	cfg := benchConfig(b, mach, "16_threads_4_nodes")
	for _, wl := range workload.StandardSuite() {
		for _, pol := range []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC} {
			b.Run(wl.Name+"/"+pol.String(), func(b *testing.B) {
				var last bench.RunMetrics
				for i := 0; i < b.N; i++ {
					m, err := bench.Run(mach, bench.RunSpec{
						Workload: wl, Config: cfg, Policy: pol,
						Params: workload.Params{Seed: 1, Scale: benchScale},
					})
					if err != nil {
						b.Fatal(err)
					}
					last = m
				}
				b.ReportMetric(metric(last), unit)
			})
		}
	}
}

// BenchmarkFig11Runtime reproduces Fig. 11: benchmark runtime per
// policy at 16 threads / 4 nodes (compare sim-cycles across the
// buddy/BPM/MEM+LLC sub-benchmarks of each workload).
func BenchmarkFig11Runtime(b *testing.B) {
	suiteBenchmark(b, func(m bench.RunMetrics) float64 { return float64(m.Runtime) }, "sim-cycles")
}

// BenchmarkFig12Idle reproduces Fig. 12: total barrier idle time per
// policy.
func BenchmarkFig12Idle(b *testing.B) {
	suiteBenchmark(b, func(m bench.RunMetrics) float64 { return float64(m.TotalIdle) }, "sim-idle-cycles")
}

// BenchmarkFig13PerThread reproduces Fig. 13: the max-min spread of
// per-thread runtimes (the paper's balance measure) for lbm.
func BenchmarkFig13PerThread(b *testing.B) {
	mach := benchMachine(b)
	cfg := benchConfig(b, mach, "16_threads_4_nodes")
	for _, pol := range []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC} {
		b.Run(pol.String(), func(b *testing.B) {
			var last bench.RunMetrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(mach, bench.RunSpec{
					Workload: workload.LBM(), Config: cfg, Policy: pol,
					Params: workload.Params{Seed: 1, Scale: benchScale},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(bench.Spread(last.ThreadRuntime)), "spread-cycles")
			b.ReportMetric(float64(bench.MaxOf(last.ThreadRuntime)), "max-thread-cycles")
		})
	}
}

// BenchmarkFig14PerThreadIdle reproduces Fig. 14: per-thread idle
// time under each policy for lbm.
func BenchmarkFig14PerThreadIdle(b *testing.B) {
	mach := benchMachine(b)
	cfg := benchConfig(b, mach, "16_threads_4_nodes")
	for _, pol := range []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC} {
		b.Run(pol.String(), func(b *testing.B) {
			var last bench.RunMetrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(mach, bench.RunSpec{
					Workload: workload.LBM(), Config: cfg, Policy: pol,
					Params: workload.Params{Seed: 1, Scale: benchScale},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(bench.MaxOf(last.ThreadIdle)), "max-thread-idle-cycles")
			b.ReportMetric(float64(last.TotalIdle), "total-idle-cycles")
		})
	}
}

// BenchmarkColoredAllocColdVsWarm is the refill-cost ablation of
// paper Sec. III-C: the first colored faults traverse and shatter
// buddy blocks; once the color lists are populated the cost is flat.
func BenchmarkColoredAllocColdVsWarm(b *testing.B) {
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(512<<20, topo.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			var faultCycles uint64
			var pages int
			for i := 0; i < b.N; i++ {
				k, err := kernel.New(topo, m, kernel.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				task, err := k.NewProcess().NewTask(0)
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range m.BankColorsOfNode(0)[:8] {
					if _, err := task.Mmap(uint64(c)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
						b.Fatal(err)
					}
				}
				const n = 512
				va, err := task.Mmap(0, n*phys.PageSize, 0)
				if err != nil {
					b.Fatal(err)
				}
				if warm {
					// Pre-populate the color lists, then measure a
					// second region's faults.
					for p := uint64(0); p < n; p++ {
						if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
							b.Fatal(err)
						}
					}
					va2, err := task.Mmap(0, n*phys.PageSize, 0)
					if err != nil {
						b.Fatal(err)
					}
					if err := task.Munmap(va, n*phys.PageSize); err != nil {
						b.Fatal(err)
					}
					va = va2
				}
				for p := uint64(0); p < n; p++ {
					_, cost, err := task.Translate(va + p*phys.PageSize)
					if err != nil {
						b.Fatal(err)
					}
					faultCycles += uint64(cost)
					pages++
				}
			}
			b.ReportMetric(float64(faultCycles)/float64(pages), "sim-cycles/fault")
		})
	}
}

// BenchmarkMappingAblation compares the default separable bit mapping
// against the paper-faithful overlapped Opteron mapping (DESIGN.md
// ablation 1) on the synthetic benchmark under MEM+LLC coloring.
func BenchmarkMappingAblation(b *testing.B) {
	for _, overlapped := range []bool{false, true} {
		name := "separable"
		if overlapped {
			name = "overlapped"
		}
		b.Run(name, func(b *testing.B) {
			mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: 2 << 30, Overlapped: overlapped})
			if err != nil {
				b.Fatal(err)
			}
			cfg := benchConfig(b, mach, "16_threads_4_nodes")
			var last bench.RunMetrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(mach, bench.RunSpec{
					Workload: workload.Synthetic(), Config: cfg, Policy: policy.MEMLLC,
					Params: workload.Params{Seed: 1, Scale: benchScale},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.Runtime), "sim-cycles")
		})
	}
}

// BenchmarkAgingAblation compares pristine against aged buddy zones
// (DESIGN.md ablation: fragmentation is what the buddy baseline's
// behaviour depends on).
func BenchmarkAgingAblation(b *testing.B) {
	for _, aged := range []bool{false, true} {
		name := "pristine"
		if aged {
			name = "aged"
		}
		b.Run(name, func(b *testing.B) {
			mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: 2 << 30})
			if err != nil {
				b.Fatal(err)
			}
			if !aged {
				mach.KernCfg.ChurnSeed = 0
				mach.KernCfg.HoldoutFrac = 0
				mach.KernCfg.BuddyRemoteFrac = 0
			}
			cfg := benchConfig(b, mach, "16_threads_4_nodes")
			var last bench.RunMetrics
			for i := 0; i < b.N; i++ {
				m, err := bench.Run(mach, bench.RunSpec{
					Workload: workload.LBM(), Config: cfg, Policy: policy.Buddy,
					Params: workload.Params{Seed: 1, Scale: benchScale},
				})
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(float64(last.Runtime), "sim-cycles")
			b.ReportMetric(last.RowConflictFrac*100, "rowconf-%")
		})
	}
}
