// Command tintsynth runs the paper's synthetic microbenchmark (Sec.
// V-A): an alternating-stride write sweep touching every cache line
// exactly once, under a chosen coloring policy and thread count. It
// prints the runtime plus the DRAM-level evidence (row hits/misses/
// conflicts, remote fraction) for a single cell of Fig. 10.
//
// Usage:
//
//	tintsynth -policy MEM+LLC -threads 16
//	tintsynth -policy buddy -threads 8 -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

func main() {
	var (
		polName = flag.String("policy", "MEM+LLC", "coloring policy (buddy|BPM|LLC|MEM|MEM+LLC|MEM+LLC(part)|LLC+MEM(part))")
		threads = flag.Int("threads", 16, "thread count (pinned to cores 0..n-1)")
		scale   = flag.Float64("scale", 1.0, "working-set scale factor")
		seed    = flag.Int64("seed", 1, "random seed")
		memGiB  = flag.Float64("mem", 2, "installed memory in GiB")
	)
	flag.Parse()

	pol, err := policy.ParsePolicy(*polName)
	if err != nil {
		fatal(err)
	}
	mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: uint64(*memGiB * (1 << 30))})
	if err != nil {
		fatal(err)
	}
	if *threads < 1 || *threads > mach.Topo.Cores() {
		fatal(fmt.Errorf("threads must be in [1, %d]", mach.Topo.Cores()))
	}
	cores := make([]topology.CoreID, *threads)
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	cfg := bench.Config{Name: fmt.Sprintf("%d_threads", *threads), Cores: cores}

	m, err := bench.Run(mach, bench.RunSpec{
		Workload: workload.Synthetic(),
		Config:   cfg,
		Policy:   pol,
		Params:   workload.Params{Seed: *seed, Scale: *scale},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthetic benchmark, %d threads, policy %s, scale %.2f\n", *threads, pol, *scale)
	fmt.Printf("runtime:          %d cycles\n", m.Runtime)
	fmt.Printf("total idle:       %d cycles\n", m.TotalIdle)
	fmt.Printf("remote DRAM:      %.1f%%\n", m.RemoteDRAMFrac*100)
	fmt.Printf("L3 miss rate:     %.1f%%\n", m.L3MissRate*100)
	fmt.Printf("row conflicts:    %.1f%% of DRAM accesses\n", m.RowConflictFrac*100)
	fmt.Printf("fault cycles:     %d\n", m.FaultCycles)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tintsynth:", err)
	os.Exit(1)
}
