package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("%s drifted from golden file (regenerate with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func td(name string) string { return filepath.Join("testdata", name) }

func runStat(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// The exit-status contract CI relies on, mirroring tintvet: 0 no
// significant regression, 1 gate fired, 2 inputs unusable.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no-change", []string{td("engine_old.json"), td("engine_ok.json")}, 0},
		{"regression", []string{td("engine_old.json"), td("engine_regress.json")}, 1},
		{"improvement", []string{td("engine_regress.json"), td("engine_old.json")}, 0},
		{"same-file", []string{td("engine_old.json"), td("engine_old.json")}, 0},
		{"exact-ops-clean", []string{"-exact-ops", td("engine_old.json"), td("engine_ok.json")}, 0},
		{"exact-ops-drift", []string{"-exact-ops", td("engine_old.json"), td("engine_opsdrift.json")}, 1},
		// v1 inputs have single samples: a big drop is reported but
		// cannot be statistically significant, so it does not gate.
		{"v1-delta-no-gate", []string{td("engine_v1_old.json"), td("engine_v1_slow.json")}, 0},
		// A sky-high threshold turns a significant drop into a pass.
		{"threshold", []string{"-threshold", "50", td("engine_old.json"), td("engine_regress.json")}, 0},
		// alpha 0.000001: the drop stops being significant.
		{"alpha", []string{"-alpha", "0.000001", td("engine_old.json"), td("engine_regress.json")}, 0},
		{"missing-file", []string{td("engine_old.json"), td("no_such.json")}, 2},
		{"kind-mismatch", []string{td("engine_old.json"), td("serve_old.json")}, 2},
		{"serve-vs-serve", []string{td("serve_old.json"), td("serve_old.json")}, 0},
		{"bad-format", []string{"-format", "yaml", td("engine_old.json"), td("engine_ok.json")}, 2},
		{"bad-alpha", []string{"-alpha", "1.5", td("engine_old.json"), td("engine_ok.json")}, 2},
		{"no-args", nil, 2},
		{"one-arg", []string{td("engine_old.json")}, 2},
		{"bad-flag", []string{"-bogus"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, errb := runStat(t, c.args...)
			if code != c.want {
				t.Errorf("exit = %d, want %d (stderr: %s)", code, c.want, errb)
			}
		})
	}
}

func TestGoldenText(t *testing.T) {
	code, out, errb := runStat(t, td("engine_old.json"), td("engine_regress.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb)
	}
	checkGolden(t, "delta_regress.txt.golden", out)
	if !strings.Contains(out, "REGRESSION") {
		t.Error("text output lacks a REGRESSION verdict")
	}
}

func TestGoldenTextClean(t *testing.T) {
	code, out, _ := runStat(t, td("engine_old.json"), td("engine_ok.json"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	checkGolden(t, "delta_clean.txt.golden", out)
}

func TestGoldenCSV(t *testing.T) {
	code, out, _ := runStat(t, "-format", "csv", td("engine_old.json"), td("engine_regress.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	checkGolden(t, "delta_regress.csv.golden", out)
}

func TestGoldenJSON(t *testing.T) {
	code, out, _ := runStat(t, "-format", "json", td("engine_old.json"), td("engine_regress.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	checkGolden(t, "delta_regress.json.golden", out)
}

// -o writes the table to a file; the gate still decides the exit.
func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.txt")
	code, out, _ := runStat(t, "-o", path, td("engine_old.json"), td("engine_regress.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if out != "" {
		t.Errorf("stdout not empty with -o: %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "REGRESSION") {
		t.Error("file output lacks the delta table")
	}
}

// Keys present in only one input are reported; under -exact-ops they
// fail the gate.
func TestMissingKeys(t *testing.T) {
	trimmed := filepath.Join(t.TempDir(), "trimmed.json")
	data, err := os.ReadFile(td("engine_ok.json"))
	if err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(string(data), `"experiment": "fig10"`, `"experiment": "fig10_renamed"`, 1)
	if err := os.WriteFile(trimmed, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runStat(t, td("engine_old.json"), trimmed)
	if code != 0 {
		t.Fatalf("missing key gated without -exact-ops: exit %d", code)
	}
	if !strings.Contains(out, "only in ") {
		t.Errorf("missing keys not reported:\n%s", out)
	}
	code, _, _ = runStat(t, "-exact-ops", td("engine_old.json"), trimmed)
	if code != 1 {
		t.Errorf("-exact-ops ignored a missing key: exit %d", code)
	}
	// A vanished series also shrinks the alloc gate's coverage, so
	// -exact-allocs alone must fail on it too.
	code, _, _ = runStat(t, "-exact-allocs", td("engine_old.json"), trimmed)
	if code != 1 {
		t.Errorf("-exact-allocs ignored a missing key: exit %d", code)
	}
}

// The vanished-series verdict pinned against committed fixtures:
// engine_trimmed.json is engine_ok.json with the fig10 experiment
// renamed, so under -exact-allocs the baseline's fig10 series counts
// as a mismatch even though no surviving row grew its allocs.
func TestGoldenVanishedSeries(t *testing.T) {
	code, out, errb := runStat(t, "-exact-allocs", td("engine_old.json"), td("engine_trimmed.json"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb)
	}
	checkGolden(t, "delta_vanished.txt.golden", out)
	if !strings.Contains(out, "only in "+td("engine_old.json")+": fig10") {
		t.Errorf("vanished baseline series not reported:\n%s", out)
	}
}

// -exact-allocs gates on allocs/op growth. The contract is
// one-sided: an old series without the measurement is skipped (old
// pre-field reports never fail vacuously), but once the baseline
// measured a series, a new report that stops measuring it fails.
func TestExactAllocs(t *testing.T) {
	mk := func(t *testing.T, name string, allocsPerOp float64) string {
		t.Helper()
		rep := `{
  "format": 2, "scale": 0.1, "repeats": 1, "samples": 2, "host_cpus": 4,
  "records": [
    {"experiment": "fig10", "parallel": 1, "cells": 4, "engine_ops": 200000,
     "wall_seconds": 0.4, "ops_per_sec": 500` + allocsField(allocsPerOp) + `,
     "wall_seconds_samples": [0.4, 0.4], "ops_per_sec_samples": [500, 500]}
  ],
  "overall": []
}`
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, []byte(rep), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldMeasured := mk(t, "old.json", 3.0)
	oldUnmeasured := mk(t, "oldu.json", 0)
	same := mk(t, "same.json", 3.0)
	shrunk := mk(t, "shrunk.json", 1.5)
	grown := mk(t, "grown.json", 3.5)

	cases := []struct {
		name     string
		old, new string
		want     int
	}{
		{"same", oldMeasured, same, 0},
		{"shrunk", oldMeasured, shrunk, 0},
		{"grown", oldMeasured, grown, 1},
		{"old-unmeasured-skips", oldUnmeasured, grown, 0},
		{"new-unmeasured-fails", oldMeasured, oldUnmeasured, 1},
		{"flag-off-ignores-growth", oldMeasured, grown, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := []string{"-exact-allocs", c.old, c.new}
			if c.name == "flag-off-ignores-growth" {
				args = args[1:]
			}
			code, out, errb := runStat(t, args...)
			if code != c.want {
				t.Errorf("exit = %d, want %d (stderr: %s)\n%s", code, c.want, errb, out)
			}
			if c.want == 1 && !strings.Contains(out, "ALLOC-GROWTH") {
				t.Errorf("gating output lacks ALLOC-GROWTH verdict:\n%s", out)
			}
		})
	}
}

func allocsField(v float64) string {
	if v == 0 {
		return ""
	}
	return `, "allocs_per_op": ` + strconv.FormatFloat(v, 'g', -1, 64)
}
