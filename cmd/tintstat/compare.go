package main

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"github.com/tintmalloc/tintmalloc/internal/benchfmt"
	"github.com/tintmalloc/tintmalloc/internal/stats"
)

type compareOpts struct {
	Alpha     float64
	Threshold float64 // percent
	ExactOps  bool
	// ExactAllocs gates on allocs/op growth: a series whose new
	// allocs_per_op exceeds the old by more than 2% + 0.01 absolute
	// (headroom for runtime background noise in the Mallocs counter)
	// is a mismatch. The measurement contract is one-sided: an old
	// series without the field is skipped (older report files predate
	// it), but once a baseline measured a series, the new report must
	// measure it too — and the series itself must still exist. A
	// vanished series would otherwise shrink the gate's coverage
	// silently.
	ExactAllocs bool
}

// deltaRow is one series' old-vs-new comparison.
type deltaRow struct {
	Key  string `json:"key"`
	Unit string `json:"unit"`
	// Mean throughputs and sample counts per side.
	OldMean float64 `json:"old_mean"`
	NewMean float64 `json:"new_mean"`
	OldN    int     `json:"old_n"`
	NewN    int     `json:"new_n"`
	// CI95 half-widths (NaN with fewer than two samples).
	OldCI95 float64 `json:"old_ci95"`
	NewCI95 float64 `json:"new_ci95"`
	// DeltaPct is the relative mean change, higher = better
	// (throughput), NaN when the old mean is unusable.
	DeltaPct float64 `json:"delta_pct"`
	// Welch's t-test of new vs old samples. P is NaN when either side
	// has fewer than two samples (v1 inputs).
	T float64 `json:"t"`
	P float64 `json:"p"`
	// Significant: P < alpha. Regression: significant AND the mean
	// dropped by more than the threshold.
	Significant bool `json:"significant"`
	Regression  bool `json:"regression"`
	// Deterministic work counters (exact-ops gate).
	OldOps      uint64 `json:"old_ops"`
	NewOps      uint64 `json:"new_ops"`
	OldCells    int    `json:"old_cells"`
	NewCells    int    `json:"new_cells"`
	OpsMismatch bool   `json:"ops_mismatch,omitempty"`
	// Host allocations per op (exact-allocs gate; 0 = unmeasured).
	OldAllocsPerOp float64 `json:"old_allocs_per_op,omitempty"`
	NewAllocsPerOp float64 `json:"new_allocs_per_op,omitempty"`
	AllocsMismatch bool    `json:"allocs_mismatch,omitempty"`
}

// comparison is the full delta table plus the gate verdict.
type comparison struct {
	Kind    benchfmt.Kind `json:"kind"`
	OldPath string        `json:"old"`
	NewPath string        `json:"new"`
	Opts    compareOpts   `json:"opts"`
	Rows    []deltaRow    `json:"rows"`
	// Keys present in only one input (reported, and a mismatch under
	// -exact-ops or -exact-allocs, but not a statistical regression).
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// Gate tallies.
	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"` // significant gains
	Mismatches   int `json:"mismatches"`   // exact-ops failures
}

// Gated reports whether the exit-1 contract fires.
func (c *comparison) Gated() bool {
	return c.Regressions > 0 || c.Mismatches > 0
}

func compare(oldSeries, newSeries []benchfmt.Series, opts compareOpts) *comparison {
	out := &comparison{Opts: opts}
	newByKey := map[string]*benchfmt.Series{}
	for i := range newSeries {
		newByKey[newSeries[i].Key] = &newSeries[i]
	}
	matched := map[string]bool{}
	for i := range oldSeries {
		o := &oldSeries[i]
		n, ok := newByKey[o.Key]
		if !ok {
			out.OnlyOld = append(out.OnlyOld, o.Key)
			// Either exactness gate treats a vanished baseline series as
			// a mismatch: the deterministic work (or its alloc budget) it
			// pinned is no longer being checked at all.
			if opts.ExactOps || opts.ExactAllocs {
				out.Mismatches++
			}
			continue
		}
		matched[o.Key] = true
		out.Rows = append(out.Rows, deltaOf(o, n, opts))
	}
	for i := range newSeries {
		if !matched[newSeries[i].Key] {
			out.OnlyNew = append(out.OnlyNew, newSeries[i].Key)
			if opts.ExactOps || opts.ExactAllocs {
				out.Mismatches++
			}
		}
	}
	for i := range out.Rows {
		r := &out.Rows[i]
		if r.Regression {
			out.Regressions++
		}
		if r.Significant && r.DeltaPct > 0 {
			out.Improvements++
		}
		if r.OpsMismatch {
			out.Mismatches++
		}
		if r.AllocsMismatch {
			out.Mismatches++
		}
	}
	return out
}

func deltaOf(o, n *benchfmt.Series, opts compareOpts) deltaRow {
	os, ns := stats.Summarize(o.Samples), stats.Summarize(n.Samples)
	r := deltaRow{
		Key: o.Key, Unit: o.Unit,
		OldMean: os.Mean, NewMean: ns.Mean,
		OldN: len(o.Samples), NewN: len(n.Samples),
		OldCI95: ciHalf(os), NewCI95: ciHalf(ns),
		DeltaPct: stats.PercentChange(os.Mean, ns.Mean),
		OldOps:   o.Ops, NewOps: n.Ops,
		OldCells: o.Cells, NewCells: n.Cells,
	}
	tt := stats.Welch(o.Samples, n.Samples)
	r.T, r.P = tt.T, tt.P
	r.Significant = !math.IsNaN(r.P) && r.P < opts.Alpha
	r.Regression = r.Significant && r.DeltaPct < -opts.Threshold
	if opts.ExactOps {
		r.OpsMismatch = o.Ops != n.Ops || o.Cells != n.Cells
	}
	r.OldAllocsPerOp, r.NewAllocsPerOp = o.AllocsPerOp, n.AllocsPerOp
	// One-sided: an unmeasured baseline is skipped, but a measured
	// baseline pins the series — the new side failing to measure it is
	// itself a mismatch, not a silent skip.
	if opts.ExactAllocs && o.HasAllocs {
		r.AllocsMismatch = !n.HasAllocs || n.AllocsPerOp > o.AllocsPerOp*1.02+0.01
	}
	return r
}

func ciHalf(s stats.Summary) float64 {
	lo, hi := s.CI95()
	return (hi - lo) / 2
}

// fval renders a float compactly for the text table, keeping NaN
// visible (it marks "not computable", never a plausible number).
func fval(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// WriteText prints the human delta table. The layout is pinned by
// golden tests; grep-stable column order: key, unit, old, new,
// delta%, p, marks.
func (c *comparison) WriteText(w io.Writer) {
	fmt.Fprintf(w, "tintstat: %s throughput delta, %s -> %s (alpha %g, threshold %g%%)\n",
		c.Kind, c.OldPath, c.NewPath, c.Opts.Alpha, c.Opts.Threshold)
	fmt.Fprintf(w, "%-24s %-9s %16s %16s %9s %8s  %s\n",
		"key", "unit", "old mean ±ci95", "new mean ±ci95", "delta%", "p", "verdict")
	for _, r := range c.Rows {
		verdict := ""
		switch {
		case r.Regression:
			verdict = "REGRESSION"
		case r.Significant && r.DeltaPct > 0:
			verdict = "improved"
		case r.Significant:
			verdict = "significant"
		}
		if r.OpsMismatch {
			if verdict != "" {
				verdict += ","
			}
			verdict += "OPS-MISMATCH"
		}
		if r.AllocsMismatch {
			if verdict != "" {
				verdict += ","
			}
			verdict += "ALLOC-GROWTH"
		}
		fmt.Fprintf(w, "%-24s %-9s %16s %16s %9s %8s  %s\n",
			r.Key, r.Unit,
			fval(r.OldMean, 0)+"±"+fval(r.OldCI95, 0),
			fval(r.NewMean, 0)+"±"+fval(r.NewCI95, 0),
			fval(r.DeltaPct, 2), fval(r.P, 4), verdict)
	}
	for _, k := range c.OnlyOld {
		fmt.Fprintf(w, "only in %s: %s\n", c.OldPath, k)
	}
	for _, k := range c.OnlyNew {
		fmt.Fprintf(w, "only in %s: %s\n", c.NewPath, k)
	}
	fmt.Fprintf(w, "%d series compared: %d regressions, %d improvements, %d mismatches\n",
		len(c.Rows), c.Regressions, c.Improvements, c.Mismatches)
}

// WriteCSV emits one row per compared series.
func (c *comparison) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"key", "unit", "old_mean", "new_mean",
		"old_n", "new_n", "old_ci95", "new_ci95", "delta_pct", "t", "p",
		"significant", "regression", "old_ops", "new_ops", "ops_mismatch",
		"old_allocs_per_op", "new_allocs_per_op", "allocs_mismatch"}); err != nil {
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range c.Rows {
		if err := cw.Write([]string{r.Key, r.Unit, g(r.OldMean), g(r.NewMean),
			strconv.Itoa(r.OldN), strconv.Itoa(r.NewN), g(r.OldCI95), g(r.NewCI95),
			g(r.DeltaPct), g(r.T), g(r.P),
			strconv.FormatBool(r.Significant), strconv.FormatBool(r.Regression),
			strconv.FormatUint(r.OldOps, 10), strconv.FormatUint(r.NewOps, 10),
			strconv.FormatBool(r.OpsMismatch),
			g(r.OldAllocsPerOp), g(r.NewAllocsPerOp),
			strconv.FormatBool(r.AllocsMismatch)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the whole comparison. NaN fields are rendered as
// null (JSON has no NaN), via a lossless string round-trip guard.
func (c *comparison) WriteJSON(w io.Writer) error {
	// encoding/json rejects NaN; swap NaNs for null explicitly.
	type jsonRow struct {
		deltaRow
		OldCI95  any `json:"old_ci95"`
		NewCI95  any `json:"new_ci95"`
		DeltaPct any `json:"delta_pct"`
		T        any `json:"t"`
		P        any `json:"p"`
	}
	nn := func(v float64) any {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil
		}
		return v
	}
	view := struct {
		*comparison
		Rows []jsonRow `json:"rows"`
	}{comparison: c}
	for _, r := range c.Rows {
		view.Rows = append(view.Rows, jsonRow{deltaRow: r,
			OldCI95: nn(r.OldCI95), NewCI95: nn(r.NewCI95),
			DeltaPct: nn(r.DeltaPct), T: nn(r.T), P: nn(r.P)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(view)
}
