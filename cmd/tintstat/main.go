// tintstat is the statistical benchmark-regression gate: it compares
// two BENCH_*.json reports (engine or serve harness, format v1 or v2)
// and decides — with Welch's t-test over the raw per-sample
// throughput distributions — whether the new report is significantly
// slower than the old one.
//
// Usage:
//
//	tintstat [flags] OLD.json NEW.json
//
//	-alpha 0.05      significance level for Welch's t-test
//	-threshold 2.0   minimum mean regression (percent) to gate on
//	-format text     output: text|csv|json
//	-exact-ops       additionally require the deterministic work
//	                 counters (engine ops, cells) to match exactly
//	-exact-allocs    additionally require host allocs/op not to grow
//	                 beyond the old report's (2% + 0.01 tolerance;
//	                 old series without the measurement are skipped,
//	                 but a series the baseline measured must still
//	                 exist and be measured in the new report)
//	-o FILE          write the delta table to FILE instead of stdout
//
// The exit status is the contract CI relies on, mirroring tintvet:
// 0 when no significant regression was found, 1 when at least one
// series regressed significantly (or an exactness gate found a
// mismatch), 2 when the inputs could not be loaded or compared.
//
// Wall-clock throughputs are only comparable when both reports come
// from the same host; the deterministic counters checked by
// -exact-ops are comparable everywhere (the simulator is a pure
// function of its seeds).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/tintmalloc/tintmalloc/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tintstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		alpha       = fs.Float64("alpha", 0.05, "significance level for Welch's t-test")
		threshold   = fs.Float64("threshold", 2.0, "minimum mean regression (percent) to gate on")
		format      = fs.String("format", "text", "output format: text|csv|json")
		exactOps    = fs.Bool("exact-ops", false, "require deterministic work counters to match exactly")
		exactAllocs = fs.Bool("exact-allocs", false, "require host allocs/op not to grow vs the old report")
		outPath     = fs.String("o", "", "write the delta table to this file instead of stdout")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tintstat [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(stderr, "tintstat: unknown format %q\n", *format)
		return 2
	}
	if *alpha <= 0 || *alpha >= 1 {
		fmt.Fprintf(stderr, "tintstat: -alpha must be in (0, 1), have %v\n", *alpha)
		return 2
	}

	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldKind, oldSeries, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "tintstat:", err)
		return 2
	}
	newKind, newSeries, err := benchfmt.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "tintstat:", err)
		return 2
	}
	if oldKind != newKind {
		fmt.Fprintf(stderr, "tintstat: report kinds differ: %s is %s, %s is %s\n",
			oldPath, oldKind, newPath, newKind)
		return 2
	}

	cmp := compare(oldSeries, newSeries, compareOpts{
		Alpha:       *alpha,
		Threshold:   *threshold,
		ExactOps:    *exactOps,
		ExactAllocs: *exactAllocs,
	})
	cmp.Kind = oldKind
	cmp.OldPath, cmp.NewPath = oldPath, newPath

	out := io.Writer(stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "tintstat:", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "text":
		cmp.WriteText(out)
	case "csv":
		err = cmp.WriteCSV(out)
	case "json":
		err = cmp.WriteJSON(out)
	}
	if err != nil {
		fmt.Fprintln(stderr, "tintstat:", err)
		return 2
	}
	if cmp.Gated() {
		return 1
	}
	return 0
}
