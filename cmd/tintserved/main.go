// Command tintserved is the standalone allocation daemon: it owns the
// simulated platform (topology + separable physical memory) and the
// sharded serving front-end, and exposes both over a length-prefixed
// binary frame protocol (internal/wire). Clients — the wire.Client
// library, tintbench's netserve experiment, or the test hammer — dial
// in, declare their core and color plan with a Hello, and then
// allocate, free, spawn scheduler tasks, and read stats remotely.
//
// A unix socket is the default transport; TCP is opt-in:
//
//	tintserved                             # unix:tintserved.sock
//	tintserved -listen unix:/tmp/tint.sock
//	tintserved -listen tcp:127.0.0.1:7177
//	tintserved -mem 4 -queue 64 -highwater 48
//
// SIGINT/SIGTERM shut the daemon down cleanly: listeners close, live
// sessions are dropped and their frames reclaimed, and the cross-shard
// invariant audit runs before the process exits. Exit status is 0 on a
// clean audited shutdown, 1 on a runtime or audit failure, 2 on a
// usage error.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/wire"
)

type options struct {
	listen    string
	memGiB    float64
	queue     int
	highwater int
	batch     int
	stripes   int
	noBorrow  bool
}

// parseListen splits a -listen spec into (network, address). Only
// unix and tcp are accepted; everything else is a usage error.
func parseListen(spec string) (network, addr string, err error) {
	i := strings.Index(spec, ":")
	if i < 0 {
		return "", "", fmt.Errorf("listen spec %q: want unix:PATH or tcp:HOST:PORT", spec)
	}
	network, addr = spec[:i], spec[i+1:]
	if network != "unix" && network != "tcp" {
		return "", "", fmt.Errorf("listen network %q: want unix or tcp", network)
	}
	if addr == "" {
		return "", "", fmt.Errorf("listen spec %q: empty address", spec)
	}
	return network, addr, nil
}

// validate rejects option combinations the daemon cannot serve. It
// mirrors the serve.Config clamps: anything the config layer would
// silently "fix" is rejected loudly here instead, because a daemon
// that starts with different limits than the operator asked for is a
// misconfiguration, not a convenience.
func validate(o options) error {
	if o.memGiB <= 0 {
		return fmt.Errorf("-mem %g: installed memory must be positive", o.memGiB)
	}
	if o.queue < 0 || o.highwater < 0 || o.batch < 0 || o.stripes < 0 {
		return fmt.Errorf("-queue/-highwater/-batch/-stripes must not be negative")
	}
	effQueue := o.queue
	if effQueue == 0 {
		effQueue = serve.DefaultQueueDepth
	}
	if o.highwater > effQueue {
		return fmt.Errorf("-highwater %d exceeds queue depth %d", o.highwater, effQueue)
	}
	if _, _, err := parseListen(o.listen); err != nil {
		return err
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "unix:tintserved.sock", "transport spec: unix:PATH or tcp:HOST:PORT")
	flag.Float64Var(&o.memGiB, "mem", 2, "installed physical memory in GiB")
	flag.IntVar(&o.queue, "queue", 0, "refill queue depth per shard (0 = default)")
	flag.IntVar(&o.highwater, "highwater", 0, "in-flight refill high-water mark (0 = 3/4 of queue)")
	flag.IntVar(&o.batch, "batch", 0, "max refill requests amortized per batch (0 = default)")
	flag.IntVar(&o.stripes, "stripes", 0, "lock stripes per shard's color lists (0 = default)")
	flag.BoolVar(&o.noBorrow, "disable-borrow", false, "fail with ErrNoMemory instead of walking the cross-shard ladder")
	flag.Parse()

	if err := validate(o); err != nil {
		fmt.Fprintln(os.Stderr, "tintserved:", err)
		flag.Usage()
		os.Exit(2)
	}
	network, addr, _ := parseListen(o.listen)

	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(uint64(o.memGiB*(1<<30)), topo.Nodes())
	if err != nil {
		fmt.Fprintln(os.Stderr, "tintserved:", err)
		os.Exit(1)
	}
	d, err := wire.NewDaemon(topo, m, serve.Config{
		QueueDepth:    o.queue,
		HighWater:     o.highwater,
		BatchMax:      o.batch,
		Stripes:       o.stripes,
		DisableBorrow: o.noBorrow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tintserved:", err)
		os.Exit(1)
	}

	l, err := net.Listen(network, addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tintserved:", err)
		os.Exit(1)
	}
	if network == "unix" {
		// A daemon killed hard leaves its socket file behind; remove
		// ours on the clean path so restarts don't need -f cleanups.
		defer os.Remove(addr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sigs
		fmt.Fprintf(os.Stderr, "tintserved: %v, shutting down\n", s)
		if err := d.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tintserved: shutdown:", err)
		}
	}()

	fmt.Printf("tintserved: %d nodes, %.1f GiB, listening on %s:%s\n",
		topo.Nodes(), o.memGiB, network, addr)
	serveErr := d.Serve(l)
	// Serve returns nil on a signalled shutdown; Close is idempotent
	// and hands back the cached shutdown/audit error either way.
	closeErr := d.Close()

	st := d.Server().Stats()
	ds := d.Stats()
	fmt.Printf("sessions %d (reclaimed %d frames, %d failed), tasks %d spawned / %d runs\n",
		ds.Sessions, ds.Reclaimed, ds.ReclaimFailed, ds.TasksSpawned, ds.TaskRuns)
	fmt.Printf("allocs %d (colored %d, degraded %d), frees %d, rejected %d\n",
		st.Allocs, st.ColoredPages, st.DegradedAllocs(), st.Frees, st.Rejected)

	if serveErr != nil {
		fmt.Fprintln(os.Stderr, "tintserved:", serveErr)
		os.Exit(1)
	}
	if closeErr != nil {
		fmt.Fprintln(os.Stderr, "tintserved:", closeErr)
		os.Exit(1)
	}
	fmt.Println("audit clean")
}
