package main

import "testing"

func TestParseListen(t *testing.T) {
	cases := []struct {
		spec          string
		network, addr string
		wantErr       bool
	}{
		{spec: "unix:tintserved.sock", network: "unix", addr: "tintserved.sock"},
		{spec: "unix:/tmp/t.sock", network: "unix", addr: "/tmp/t.sock"},
		{spec: "tcp:127.0.0.1:7177", network: "tcp", addr: "127.0.0.1:7177"},
		{spec: "tcp::7177", network: "tcp", addr: ":7177"},
		{spec: "nosep", wantErr: true},
		{spec: "udp:1.2.3.4:5", wantErr: true},
		{spec: "unix:", wantErr: true},
		{spec: "", wantErr: true},
	}
	for _, c := range cases {
		network, addr, err := parseListen(c.spec)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseListen(%q): accepted, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseListen(%q): %v", c.spec, err)
			continue
		}
		if network != c.network || addr != c.addr {
			t.Errorf("parseListen(%q) = %q,%q want %q,%q", c.spec, network, addr, c.network, c.addr)
		}
	}
}

func TestValidateOptions(t *testing.T) {
	good := options{listen: "unix:t.sock", memGiB: 2}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr bool
	}{
		{name: "defaults", mutate: func(o *options) {}},
		{name: "zero mem", mutate: func(o *options) { o.memGiB = 0 }, wantErr: true},
		{name: "negative mem", mutate: func(o *options) { o.memGiB = -1 }, wantErr: true},
		{name: "negative queue", mutate: func(o *options) { o.queue = -1 }, wantErr: true},
		{name: "negative stripes", mutate: func(o *options) { o.stripes = -4 }, wantErr: true},
		{name: "highwater over explicit queue", mutate: func(o *options) { o.queue = 64; o.highwater = 65 }, wantErr: true},
		{name: "highwater over default queue", mutate: func(o *options) { o.highwater = 257 }, wantErr: true},
		{name: "highwater at queue", mutate: func(o *options) { o.queue = 64; o.highwater = 64 }},
		{name: "highwater at default queue", mutate: func(o *options) { o.highwater = 256 }},
		{name: "bad listen", mutate: func(o *options) { o.listen = "carrier-pigeon" }, wantErr: true},
	}
	for _, c := range cases {
		o := good
		c.mutate(&o)
		err := validate(o)
		if c.wantErr && err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		}
		if !c.wantErr && err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}
