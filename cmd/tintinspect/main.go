// Command tintinspect dumps the simulated platform: topology, the
// PCI-programmed address mapping, per-node color inventories, and the
// DRAM decomposition plus colors of any physical addresses given as
// arguments — the debugging view a TintMalloc developer would want.
//
// Usage:
//
//	tintinspect                     # platform summary
//	tintinspect -overlapped         # paper-faithful overlapped mapping
//	tintinspect 0x12345678 4096     # decode specific addresses
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/tintmalloc/tintmalloc/internal/pci"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

func main() {
	var (
		memGiB     = flag.Float64("mem", 2, "installed physical memory in GiB")
		overlapped = flag.Bool("overlapped", false, "use the overlapped Opteron bit mapping")
	)
	flag.Parse()

	topo := topology.Opteron6128()
	build := phys.DefaultSeparable
	if *overlapped {
		build = phys.OpteronOverlapped
	}
	m, err := build(uint64(*memGiB*(1<<30)), topo.Nodes())
	if err != nil {
		fatal(err)
	}
	space, err := pci.Bios(m)
	if err != nil {
		fatal(err)
	}
	decoded, err := pci.DecodeMapping(space, topo.Nodes())
	if err != nil {
		fatal(err)
	}

	fmt.Println("== platform ==")
	fmt.Println(topo)
	for n := 0; n < topo.Nodes(); n++ {
		cores := topo.CoresOfNode(topology.NodeID(n))
		base, limit, _ := space.NodeRange(n)
		fmt.Printf("node %d: socket %d, cores %v, DRAM [%#x, %#x)\n",
			n, topo.SocketOfNode(topology.NodeID(n)), cores, base, limit)
	}

	fmt.Println("\n== address mapping (decoded from PCI config space) ==")
	fmt.Printf("channel bits: %v\n", decoded.ChannelBits())
	fmt.Printf("rank bits:    %v\n", decoded.RankBits())
	fmt.Printf("bank bits:    %v\n", decoded.BankBits())
	fmt.Printf("LLC bits:     %v\n", decoded.LLCBits())
	fmt.Printf("row shift:    %d (rows span %d bytes)\n", decoded.RowShift(), 1<<decoded.RowShift())
	fmt.Printf("bank colors:  %d (%d per node: %d channels x %d ranks x %d banks)\n",
		decoded.NumBankColors(), decoded.BanksPerNode(),
		decoded.Channels(), decoded.Ranks(), decoded.Banks())
	fmt.Printf("LLC colors:   %d\n", decoded.NumLLCColors())

	// Combination density: under the overlapped mapping not every
	// (bank, LLC) pair exists.
	pairs := map[[2]int]bool{}
	for f := phys.Frame(0); uint64(f) < decoded.Frames(); f++ {
		pairs[[2]int{decoded.FrameBankColor(f), decoded.FrameLLCColor(f)}] = true
	}
	fmt.Printf("populated (bank, LLC) combinations: %d of %d\n",
		len(pairs), decoded.NumBankColors()*decoded.NumLLCColors())

	if flag.NArg() > 0 {
		fmt.Println("\n== address decode ==")
		fmt.Printf("%-14s %-5s %-3s %-4s %-4s %-8s %-5s %-10s %-9s\n",
			"address", "node", "ch", "rank", "bank", "row", "col", "bank color", "LLC color")
		for _, arg := range flag.Args() {
			a, err := strconv.ParseUint(arg, 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad address %q: %v", arg, err))
			}
			if !decoded.Valid(phys.Addr(a)) {
				fmt.Printf("%-14s (outside installed memory)\n", arg)
				continue
			}
			l := decoded.Decode(phys.Addr(a))
			fmt.Printf("%#-14x %-5d %-3d %-4d %-4d %-8d %-5d %-10d %-9d\n",
				a, l.Node, l.Channel, l.Rank, l.Bank, l.Row, l.Col,
				decoded.BankColor(phys.Addr(a)), decoded.LLCColor(phys.Addr(a)))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tintinspect:", err)
	os.Exit(1)
}
