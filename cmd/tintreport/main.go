// Command tintreport re-measures every graded claim of the paper's
// evaluation and emits a markdown paper-vs-measured report — the
// regenerable core of EXPERIMENTS.md.
//
// Usage:
//
//	tintreport                      # full-scale, ~minutes
//	tintreport -scale 0.4           # faster, claims still hold
//	tintreport > report.md
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "working-set scale factor")
		repeats  = flag.Int("repeats", 1, "repetitions for the Fig. 10 cells")
		seed     = flag.Int64("seed", 1, "base random seed")
		memGiB   = flag.Float64("mem", 2, "installed memory in GiB")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent cells (identical report, faster wall clock)")
	)
	flag.Parse()

	mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: uint64(*memGiB * (1 << 30))})
	if err != nil {
		fatal(err)
	}
	rep, err := bench.RunPaperValidation(mach,
		workload.Params{Seed: *seed, Scale: *scale}, *repeats, *parallel, os.Stderr)
	if err != nil {
		fatal(err)
	}
	rep.WriteMarkdown(os.Stdout)
	if rep.Passed() != len(rep.Results) {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tintreport:", err)
	os.Exit(1)
}
