// Command tinttrace records, summarizes and replays memory-access
// traces of the simulated workloads — the profile-then-recolor
// workflow: capture a run under the default allocator, inspect which
// threads go remote and which level serves their accesses, then
// replay the identical access stream under a coloring policy.
//
// Usage:
//
//	tinttrace -workload equake -policy buddy -o run.trace   # record
//	tinttrace -summary run.trace                            # inspect
//	tinttrace -replay run.trace -policy MEM+LLC             # recolor
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/trace"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

func newMem(mach *bench.Machine) (*mem.System, error) {
	return mem.New(mach.Topo, mach.Mapping, mach.MemCfg)
}

func main() {
	var (
		wlName  = flag.String("workload", "equake", "workload to record")
		polName = flag.String("policy", "buddy", "coloring policy")
		cfgName = flag.String("config", "8_threads_4_nodes", "thread configuration")
		scale   = flag.Float64("scale", 0.25, "working-set scale")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "record: write trace CSV to this file")
		summary = flag.String("summary", "", "summarize an existing trace file")
		replay  = flag.String("replay", "", "replay an existing trace file under -policy")
	)
	flag.Parse()

	switch {
	case *summary != "":
		events := load(*summary)
		s := trace.Summarize(events)
		trace.WriteSummary(os.Stdout, s)
		fmt.Println()
		trace.WritePhaseSummary(os.Stdout, trace.SummarizeByPhase(events))
	case *replay != "":
		doReplay(*replay, *polName, *cfgName)
	default:
		doRecord(*wlName, *polName, *cfgName, *scale, *seed, *out)
	}
}

func load(path string) []trace.Event {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return events
}

// buildRig boots machine state and a colored thread team.
func buildRig(polName, cfgName string) (*bench.Machine, *engine.Engine, bench.Config) {
	pol, err := policy.ParsePolicy(polName)
	if err != nil {
		fatal(err)
	}
	mach, err := bench.NewMachine(bench.MachineOptions{})
	if err != nil {
		fatal(err)
	}
	cfg, err := bench.ConfigByName(mach.Topo, cfgName)
	if err != nil {
		fatal(err)
	}
	k, err := mach.NewKernel(0)
	if err != nil {
		fatal(err)
	}
	ms, err := newMem(mach)
	if err != nil {
		fatal(err)
	}
	asn, err := policy.Plan(pol, mach.Mapping, mach.Topo, cfg.Cores)
	if err != nil {
		fatal(err)
	}
	proc := k.NewProcess()
	threads := make([]engine.Thread, len(cfg.Cores))
	for i, core := range cfg.Cores {
		task, err := proc.NewTask(core)
		if err != nil {
			fatal(err)
		}
		if err := policy.Apply(task, asn[i]); err != nil {
			fatal(err)
		}
		threads[i] = engine.Thread{Task: task, Heap: heap.New(task)}
	}
	e, err := engine.New(ms, threads)
	if err != nil {
		fatal(err)
	}
	return mach, e, cfg
}

func doRecord(wlName, polName, cfgName string, scale float64, seed int64, out string) {
	wl, err := workload.ByName(wlName)
	if err != nil {
		fatal(err)
	}
	_, e, cfg := buildRig(polName, cfgName)

	var w *trace.Writer
	var f *os.File
	if out != "" {
		var err error
		if f, err = os.Create(out); err != nil {
			fatal(err)
		}
		if w, err = trace.NewWriter(f); err != nil {
			fatal(err)
		}
		e.SetTracer(w.Tracer())
	}
	var collected []trace.Event
	if out == "" {
		e.SetTracer(func(ev engine.TraceEvent) { collected = append(collected, ev) })
	}

	phases, err := wl.Build(e.Threads(), workload.Params{Seed: seed, Scale: scale})
	if err != nil {
		fatal(err)
	}
	res, err := e.Run(phases)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %s under %s (%s): runtime %d cycles, idle %d cycles\n",
		wlName, polName, cfg.Name, res.Runtime, res.TotalIdle)
	if w != nil {
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		// Close explicitly and check the error: Flush drains the CSV
		// writer into the OS file's buffers, but a deferred f.Close()
		// whose error is dropped can still lose those bytes silently
		// (full disk, NFS write-back) while reporting success.
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%d events -> %s\n", w.Events(), out)
		return
	}
	s := trace.Summarize(collected)
	trace.WriteSummary(os.Stdout, s)
}

func doReplay(path, polName, cfgName string) {
	events := load(path)
	rep, err := trace.NewReplay(events)
	if err != nil {
		fatal(err)
	}
	_, e, cfg := buildRig(polName, cfgName)
	phases, err := rep.Build(e.Threads())
	if err != nil {
		fatal(err)
	}
	res, err := e.Run(phases)
	if err != nil {
		fatal(err)
	}
	tot := e.Mem().TotalStats()
	remote := 0.0
	if tot.DRAMReads > 0 {
		remote = float64(tot.RemoteDRAM) / float64(tot.DRAMReads) * 100
	}
	fmt.Printf("replayed %d events under %s (%s)\n", len(events), polName, cfg.Name)
	fmt.Printf("runtime %d cycles, idle %d cycles, remote DRAM %.1f%%\n",
		res.Runtime, res.TotalIdle, remote)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tinttrace:", err)
	os.Exit(1)
}
