package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/benchfmt"
	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The benchmark-regression harness behind `tintbench -exp bench` and
// `make bench`. It runs every experiment at each requested -parallel
// value on a fresh Machine, re-times each (experiment, parallel) cell
// -bench-samples times (cmd-side wall clock only: the simulator
// itself never reads it), and writes a format-2 benchfmt report with
// the raw per-sample throughputs so tintstat can test old-vs-new
// deltas for statistical significance instead of eyeballing two
// aggregates.

type perfExperiment struct {
	name string
	// run executes the experiment with `workers` concurrent cells and
	// reports how many cells it simulated and the engine ops spent.
	run func(workers int) (cells int, ops uint64, err error)
}

func benchExperiments(memBytes uint64, params workload.Params, repeats int) ([]perfExperiment, error) {
	// Each experiment builds its Machine inside run() so every
	// (experiment, parallel) pair starts from identical cold state:
	// the aged-zone prototype cache never carries over between
	// timings.
	newMach := func() (*bench.Machine, error) {
		return bench.NewMachine(bench.MachineOptions{MemBytes: memBytes})
	}
	lbm := workload.LBM()
	return []perfExperiment{
		{"latency", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunLatency(mach, 0, 512, workers)
			if err != nil {
				return 0, 0, err
			}
			return len(r.Rows), 0, nil
		}},
		{"fig10", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunFig10(mach, cfg, params, repeats, workers)
			if err != nil {
				return 0, 0, err
			}
			var ops uint64
			for _, c := range r.Cells {
				ops += c.Ops
			}
			return len(r.Cells), ops, nil
		}},
		{"suite", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			loads := workload.StandardSuite()
			cfgs := bench.Configurations(mach.Topo)
			r, err := bench.RunSuiteParallel(mach, loads, cfgs, params, repeats, workers)
			if err != nil {
				return 0, 0, err
			}
			cells := len(r.Rows) * (3 + len(bench.BestOtherPolicies()))
			return cells, r.Ops, nil
		}},
		{"perthread", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
			if err != nil {
				return 0, 0, err
			}
			pols := []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC}
			r, err := bench.RunPerThread(mach, lbm, cfg, pols, params, workers)
			if err != nil {
				return 0, 0, err
			}
			return len(r.Policies), r.Ops, nil
		}},
		{"detail", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunDetail(mach, lbm, cfg, params, repeats, workers)
			if err != nil {
				return 0, 0, err
			}
			var ops uint64
			for _, row := range r.Rows {
				ops += row.Cell.Ops
			}
			return len(r.Rows), ops, nil
		}},
		{"adaptive", func(workers int) (int, uint64, error) {
			// Sequential by design (the engine re-decides policies at
			// phase barriers, so cells cannot fan out); workers is
			// ignored and the counters stay identical across -parallel
			// values. The workload's knobs are absolute, so -scale does
			// not change the ops either — exactly what the exact-ops
			// regression gate wants from a deterministic series.
			amach, err := bench.NewAdaptiveMachine(false)
			if err != nil {
				return 0, 0, err
			}
			plan, err := fault.PlanByName("migrate-flaky")
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunAdaptiveMatrix(amach, params, &plan)
			if err != nil {
				return 0, 0, err
			}
			if err := r.Check(); err != nil {
				return 0, 0, err
			}
			var ops uint64
			for i := range r.Rows {
				ops += r.Rows[i].Metrics.Ops
			}
			return len(r.Rows), ops, nil
		}},
		{"sweep", func(workers int) (int, uint64, error) {
			vals := []float64{0, 25, 50, 100}
			r, err := bench.RunSweep(bench.SweepHopCycles, vals, lbm,
				"16_threads_4_nodes", params, repeats, memBytes, workers)
			if err != nil {
				return 0, 0, err
			}
			return 2 * len(r.Points), r.Ops, nil
		}},
	}, nil
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// timeExperiment re-times one (experiment, parallel) cell `samples`
// times and folds the raw measurements into a format-2 record. The
// deterministic counters must agree across samples — a drift is a
// determinism bug, not noise, and fails the harness.
func timeExperiment(e perfExperiment, workers, samples int) (benchfmt.Record, error) {
	rec := benchfmt.Record{Experiment: e.name, Parallel: workers}
	var allocSamples []float64
	for s := 0; s < samples; s++ {
		m0 := mallocCount()
		start := time.Now()
		cells, ops, err := e.run(workers)
		wall := time.Since(start).Seconds()
		m1 := mallocCount()
		if err != nil {
			return rec, fmt.Errorf("%s (parallel %d): %w", e.name, workers, err)
		}
		if s == 0 {
			rec.Cells, rec.EngineOps = cells, ops
		} else if cells != rec.Cells || ops != rec.EngineOps {
			return rec, fmt.Errorf("%s (parallel %d): deterministic counters drifted between samples: cells %d -> %d, ops %d -> %d",
				e.name, workers, rec.Cells, cells, rec.EngineOps, ops)
		}
		rec.WallSecondsSamples = append(rec.WallSecondsSamples, wall)
		rec.CellsPerSecSamples = append(rec.CellsPerSecSamples, float64(cells)/wall)
		rec.OpsPerSecSamples = append(rec.OpsPerSecSamples, float64(ops)/wall)
		allocSamples = append(allocSamples, float64(m1-m0)/float64(allocDenom(ops, cells)))
	}
	rec.WallSeconds = mean(rec.WallSecondsSamples)
	rec.CellsPerSec = mean(rec.CellsPerSecSamples)
	rec.OpsPerSec = mean(rec.OpsPerSecSamples)
	rec.AllocsPerOp = mean(allocSamples)
	return rec, nil
}

// allocDenom picks the denominator for allocs_per_op: engine ops, or
// cells for experiments that do no engine work (matching the
// cells/sec fallback the throughput series use).
func allocDenom(ops uint64, cells int) uint64 {
	if ops > 0 {
		return ops
	}
	if cells > 0 {
		return uint64(cells)
	}
	return 1
}

func runBenchHarness(w io.Writer, outPath, parCSV string, memBytes uint64,
	params workload.Params, repeats, samples int) error {
	parVals, err := parseInts(parCSV)
	if err != nil {
		return fmt.Errorf("-bench-parallel: %w", err)
	}
	if len(parVals) == 0 {
		return fmt.Errorf("-bench-parallel: no values")
	}
	if samples < 1 {
		return fmt.Errorf("-bench-samples: must be >= 1, have %d", samples)
	}
	exps, err := benchExperiments(memBytes, params, repeats)
	if err != nil {
		return err
	}

	rep := &benchfmt.Report{
		Format:   benchfmt.FormatVersion,
		Scale:    params.Scale,
		Repeats:  repeats,
		Samples:  samples,
		HostCPUs: runtime.NumCPU(),
	}
	fmt.Fprintf(w, "engine benchmark harness (scale %g, repeats %d, samples %d, host cpus %d)\n",
		params.Scale, repeats, samples, rep.HostCPUs)
	fmt.Fprintf(w, "%-10s %9s %7s %12s %9s %11s %13s\n",
		"experiment", "parallel", "cells", "engine ops", "wall (s)", "cells/sec", "ops/sec")
	for _, workers := range parVals {
		var totalCells int
		var totalOps uint64
		var totalAllocs float64
		totalWall := make([]float64, samples)
		for _, e := range exps {
			rec, err := timeExperiment(e, workers, samples)
			if err != nil {
				return err
			}
			rep.Records = append(rep.Records, rec)
			totalCells += rec.Cells
			totalOps += rec.EngineOps
			totalAllocs += rec.AllocsPerOp * float64(allocDenom(rec.EngineOps, rec.Cells))
			for s, wall := range rec.WallSecondsSamples {
				totalWall[s] += wall
			}
			fmt.Fprintf(w, "%-10s %9d %7d %12d %9.3f %11.2f %13.0f\n",
				rec.Experiment, rec.Parallel, rec.Cells, rec.EngineOps,
				rec.WallSeconds, rec.CellsPerSec, rec.OpsPerSec)
		}
		overall := benchfmt.Record{
			Experiment: "overall",
			Parallel:   workers,
			Cells:      totalCells,
			EngineOps:  totalOps,
		}
		for _, wall := range totalWall {
			overall.WallSecondsSamples = append(overall.WallSecondsSamples, wall)
			overall.CellsPerSecSamples = append(overall.CellsPerSecSamples, float64(totalCells)/wall)
			overall.OpsPerSecSamples = append(overall.OpsPerSecSamples, float64(totalOps)/wall)
		}
		overall.WallSeconds = mean(overall.WallSecondsSamples)
		overall.CellsPerSec = mean(overall.CellsPerSecSamples)
		overall.OpsPerSec = mean(overall.OpsPerSecSamples)
		overall.AllocsPerOp = totalAllocs / float64(allocDenom(totalOps, totalCells))
		rep.Overall = append(rep.Overall, overall)
	}

	first, last := rep.Overall[0], rep.Overall[len(rep.Overall)-1]
	rep.SpeedupCellsPerSec = last.CellsPerSec / first.CellsPerSec
	fmt.Fprintf(w, "\noverall: parallel %d -> %d is %.2fx cells/sec (%.3fs -> %.3fs)\n",
		first.Parallel, last.Parallel, rep.SpeedupCellsPerSec,
		first.WallSeconds, last.WallSeconds)
	if rep.HostCPUs == 1 {
		fmt.Fprintf(w, "note: single-core host — parallel runs cannot beat sequential here; speedup scales with host cores\n")
	}

	// Fold the previous report (if the output file holds one) in as
	// the baseline, and report the suite before/after at the first
	// -bench-parallel value — the engine-throughput regression gate.
	// (benchfmt reads v1 and v2 baselines alike.)
	if data, err := os.ReadFile(outPath); err == nil {
		var prev benchfmt.Report
		if json.Unmarshal(data, &prev) == nil && len(prev.Records) > 0 {
			rep.Baseline = prev.Records
			before := benchfmt.FindRecord(prev.Records, "suite", parVals[0])
			after := benchfmt.FindRecord(rep.Records, "suite", parVals[0])
			if before != nil && after != nil && before.OpsPerSec > 0 {
				rep.SpeedupVsBaseline = after.OpsPerSec / before.OpsPerSec
				fmt.Fprintf(w, "vs previous %s: suite -parallel %d ops/sec %.0f -> %.0f (%.2fx)\n",
					outPath, parVals[0], before.OpsPerSec, after.OpsPerSec, rep.SpeedupVsBaseline)
			}
		}
	}

	if err := benchfmt.WriteFile(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}

func parseInts(csv string) ([]int, error) {
	var vals []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}
