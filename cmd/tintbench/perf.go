package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// The benchmark-regression harness behind `tintbench -exp bench` and
// `make bench`. It runs every experiment at each requested -parallel
// value on a fresh Machine, measures host wall-clock time (cmd-side
// only: the simulator itself never reads the wall clock), and writes
// a JSON report with cells/sec and engine ops/sec per experiment so
// scheduler or runner regressions show up as a diff in
// BENCH_engine.json.

type perfRecord struct {
	Experiment  string  `json:"experiment"`
	Parallel    int     `json:"parallel"`
	Cells       int     `json:"cells"`
	EngineOps   uint64  `json:"engine_ops"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

type perfReport struct {
	Scale   float64 `json:"scale"`
	Repeats int     `json:"repeats"`
	// HostCPUs bounds the achievable speedup: -parallel buys wall
	// clock only up to the host's core count (results are identical
	// regardless).
	HostCPUs int          `json:"host_cpus"`
	Records  []perfRecord `json:"records"`
	Overall  []perfRecord `json:"overall"`
	// SpeedupCellsPerSec compares overall cells/sec at the last
	// -bench-parallel value against the first.
	SpeedupCellsPerSec float64 `json:"speedup_cells_per_sec"`
	// Baseline carries the records of the report the output file
	// previously held, so a regenerated BENCH_engine.json documents
	// its own before/after comparison (one generation back).
	Baseline []perfRecord `json:"baseline,omitempty"`
	// SpeedupVsBaseline is suite ops/sec at the first -bench-parallel
	// value divided by the same cell of Baseline (0 when no baseline).
	// Only comparable when both runs used the same host; see HostCPUs.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// findRecord returns the record for (experiment, parallel), or nil.
func findRecord(recs []perfRecord, experiment string, parallel int) *perfRecord {
	for i := range recs {
		if recs[i].Experiment == experiment && recs[i].Parallel == parallel {
			return &recs[i]
		}
	}
	return nil
}

type perfExperiment struct {
	name string
	// run executes the experiment with `workers` concurrent cells and
	// reports how many cells it simulated and the engine ops spent.
	run func(workers int) (cells int, ops uint64, err error)
}

func benchExperiments(memBytes uint64, params workload.Params, repeats int) ([]perfExperiment, error) {
	// Each experiment builds its Machine inside run() so every
	// (experiment, parallel) pair starts from identical cold state:
	// the aged-zone prototype cache never carries over between
	// timings.
	newMach := func() (*bench.Machine, error) {
		return bench.NewMachine(bench.MachineOptions{MemBytes: memBytes})
	}
	lbm := workload.LBM()
	return []perfExperiment{
		{"latency", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunLatency(mach, 0, 512, workers)
			if err != nil {
				return 0, 0, err
			}
			return len(r.Rows), 0, nil
		}},
		{"fig10", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunFig10(mach, cfg, params, repeats, workers)
			if err != nil {
				return 0, 0, err
			}
			var ops uint64
			for _, c := range r.Cells {
				ops += c.Ops
			}
			return len(r.Cells), ops, nil
		}},
		{"suite", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			loads := workload.StandardSuite()
			cfgs := bench.Configurations(mach.Topo)
			r, err := bench.RunSuiteParallel(mach, loads, cfgs, params, repeats, workers)
			if err != nil {
				return 0, 0, err
			}
			cells := len(r.Rows) * (3 + len(bench.BestOtherPolicies()))
			return cells, r.Ops, nil
		}},
		{"perthread", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
			if err != nil {
				return 0, 0, err
			}
			pols := []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC}
			r, err := bench.RunPerThread(mach, lbm, cfg, pols, params, workers)
			if err != nil {
				return 0, 0, err
			}
			return len(r.Policies), r.Ops, nil
		}},
		{"detail", func(workers int) (int, uint64, error) {
			mach, err := newMach()
			if err != nil {
				return 0, 0, err
			}
			cfg, err := bench.ConfigByName(mach.Topo, "16_threads_4_nodes")
			if err != nil {
				return 0, 0, err
			}
			r, err := bench.RunDetail(mach, lbm, cfg, params, repeats, workers)
			if err != nil {
				return 0, 0, err
			}
			var ops uint64
			for _, row := range r.Rows {
				ops += row.Cell.Ops
			}
			return len(r.Rows), ops, nil
		}},
		{"sweep", func(workers int) (int, uint64, error) {
			vals := []float64{0, 25, 50, 100}
			r, err := bench.RunSweep(bench.SweepHopCycles, vals, lbm,
				"16_threads_4_nodes", params, repeats, memBytes, workers)
			if err != nil {
				return 0, 0, err
			}
			return 2 * len(r.Points), r.Ops, nil
		}},
	}, nil
}

func runBenchHarness(w io.Writer, outPath, parCSV string, memBytes uint64, params workload.Params, repeats int) error {
	parVals, err := parseInts(parCSV)
	if err != nil {
		return fmt.Errorf("-bench-parallel: %w", err)
	}
	if len(parVals) == 0 {
		return fmt.Errorf("-bench-parallel: no values")
	}
	exps, err := benchExperiments(memBytes, params, repeats)
	if err != nil {
		return err
	}

	rep := &perfReport{Scale: params.Scale, Repeats: repeats, HostCPUs: runtime.NumCPU()}
	fmt.Fprintf(w, "engine benchmark harness (scale %g, repeats %d, host cpus %d)\n",
		params.Scale, repeats, rep.HostCPUs)
	fmt.Fprintf(w, "%-10s %9s %7s %12s %9s %11s %13s\n",
		"experiment", "parallel", "cells", "engine ops", "wall (s)", "cells/sec", "ops/sec")
	for _, workers := range parVals {
		var totalCells int
		var totalOps uint64
		var totalWall float64
		for _, e := range exps {
			start := time.Now()
			cells, ops, err := e.run(workers)
			wall := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("%s (parallel %d): %w", e.name, workers, err)
			}
			rec := perfRecord{
				Experiment:  e.name,
				Parallel:    workers,
				Cells:       cells,
				EngineOps:   ops,
				WallSeconds: wall,
				CellsPerSec: float64(cells) / wall,
				OpsPerSec:   float64(ops) / wall,
			}
			rep.Records = append(rep.Records, rec)
			totalCells += cells
			totalOps += ops
			totalWall += wall
			fmt.Fprintf(w, "%-10s %9d %7d %12d %9.3f %11.2f %13.0f\n",
				rec.Experiment, rec.Parallel, rec.Cells, rec.EngineOps,
				rec.WallSeconds, rec.CellsPerSec, rec.OpsPerSec)
		}
		rep.Overall = append(rep.Overall, perfRecord{
			Experiment:  "overall",
			Parallel:    workers,
			Cells:       totalCells,
			EngineOps:   totalOps,
			WallSeconds: totalWall,
			CellsPerSec: float64(totalCells) / totalWall,
			OpsPerSec:   float64(totalOps) / totalWall,
		})
	}

	first, last := rep.Overall[0], rep.Overall[len(rep.Overall)-1]
	rep.SpeedupCellsPerSec = last.CellsPerSec / first.CellsPerSec
	fmt.Fprintf(w, "\noverall: parallel %d -> %d is %.2fx cells/sec (%.3fs -> %.3fs)\n",
		first.Parallel, last.Parallel, rep.SpeedupCellsPerSec,
		first.WallSeconds, last.WallSeconds)
	if rep.HostCPUs == 1 {
		fmt.Fprintf(w, "note: single-core host — parallel runs cannot beat sequential here; speedup scales with host cores\n")
	}

	// Fold the previous report (if the output file holds one) in as
	// the baseline, and report the suite before/after at the first
	// -bench-parallel value — the engine-throughput regression gate.
	if data, err := os.ReadFile(outPath); err == nil {
		var prev perfReport
		if json.Unmarshal(data, &prev) == nil && len(prev.Records) > 0 {
			rep.Baseline = prev.Records
			before := findRecord(prev.Records, "suite", parVals[0])
			after := findRecord(rep.Records, "suite", parVals[0])
			if before != nil && after != nil && before.OpsPerSec > 0 {
				rep.SpeedupVsBaseline = after.OpsPerSec / before.OpsPerSec
				fmt.Fprintf(w, "vs previous %s: suite -parallel %d ops/sec %.0f -> %.0f (%.2fx)\n",
					outPath, parVals[0], before.OpsPerSec, after.OpsPerSec, rep.SpeedupVsBaseline)
			}
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}

func parseInts(csv string) ([]int, error) {
	var vals []int
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}
