// Command tintbench regenerates the TintMalloc paper's evaluation:
// the local/remote latency primer, the synthetic benchmark sweep
// (Fig. 10), the benchmark-suite runtime and idle matrices (Figs. 11
// and 12) and the per-thread breakdowns (Figs. 13 and 14).
//
// Every experiment runs its cells through the deterministic
// scatter/gather runner, so -parallel only changes wall-clock time:
// output is byte-identical at any worker count.
//
// Usage:
//
//	tintbench -exp all                     # everything, paper sizes
//	tintbench -exp fig11 -scale 0.25 -repeats 3
//	tintbench -exp fig13 -workload lbm -config 16_threads_4_nodes
//	tintbench -exp bench -scale 0.1        # perf harness -> BENCH_engine.json
//	tintbench -exp adaptive                # adaptive-vs-static matrix + chaos rerun
//	tintbench -suite list                  # show the suite registry
//	tintbench -suite smoke                 # run a registry suite
//	tintbench -suites my.toml -suite mine  # user registry over defaults
//
// -suite runs a declaratively described workload × config × policy
// matrix from the suite registry (internal/suite): the embedded
// defaults re-express the hard-coded experiments, and -suites merges
// a user TOML/JSON file over them. Explicit -scale/-repeats/-seed
// flags override the suite entry's values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/fault"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/suite"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: latency|fig10|fig11|fig12|fig13|fig14|detail|sweep|chaos|adaptive|bench|serve|offload|all")
		scale      = flag.Float64("scale", 1.0, "working-set scale factor (1.0 = paper-size)")
		repeats    = flag.Int("repeats", 3, "repetitions per cell (paper used 10)")
		seed       = flag.Int64("seed", 1, "base random seed")
		memGiB     = flag.Float64("mem", 2, "installed physical memory in GiB")
		cfgName    = flag.String("config", "16_threads_4_nodes", "configuration for fig10/fig13/fig14")
		wlName     = flag.String("workload", "lbm", "workload for fig13/fig14")
		wlFilter   = flag.String("workloads", "", "comma-separated workload filter for fig11/fig12 (default: all six)")
		cfgFilter  = flag.String("configs", "", "comma-separated config filter for fig11/fig12 (default: all five)")
		overlapped = flag.Bool("overlapped", false, "use the paper-faithful overlapped Opteron bit mapping")
		format     = flag.String("format", "table", "output format: table|csv|chart|json")
		parallel   = flag.Int("parallel", runtime.NumCPU(), "concurrent cells per experiment (identical results, faster wall clock)")
		sweepParam = flag.String("sweep", "hop-cycles", "parameter for -exp sweep: hop-cycles|row-penalty|llc-ways")
		sweepVals  = flag.String("sweep-values", "0,10,25,50,100", "comma-separated values for -exp sweep")
		planNames  = flag.String("plans", "", "comma-separated fault plans for -exp chaos (default: all named plans)")
		chaosPol   = flag.String("policy", "MEM+LLC", "coloring policy for -exp chaos")
		benchOut   = flag.String("out", "BENCH_engine.json", "output file for -exp bench")
		benchPar   = flag.String("bench-parallel", "1,8", "comma-separated -parallel values the bench harness compares")
		benchSamp  = flag.Int("bench-samples", 3, "wall-clock re-timings per cell for -exp bench/serve (raw samples land in the report)")
		suitesFile = flag.String("suites", "", "suite registry file (TOML or JSON), merged over the embedded defaults")
		suiteName  = flag.String("suite", "", "run a registry suite by name instead of -exp (\"list\" shows the registry)")
		serveOut   = flag.String("serve-out", "BENCH_serve.json", "output file for -exp serve/offload")
		serveOps   = flag.Int("serve-ops", 20000, "churn operations per client for -exp serve/offload")
		ringDepth  = flag.Int("ring-depth", 64, "SPSC ring capacity per client for -exp offload (power of two)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(fmt.Errorf("-memprofile: %w", err))
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(fmt.Errorf("-memprofile: %w", err))
			}
		}()
	}

	memBytes := uint64(*memGiB * (1 << 30))
	params := workload.Params{Seed: *seed, Scale: *scale}

	switch *format {
	case "table", "csv", "chart", "json":
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	csvOut := *format == "csv"
	chartOut := *format == "chart"
	jsonOut := *format == "json"

	if *suiteName != "" && (*exp == "bench" || *exp == "serve" || *exp == "offload") {
		fatal(fmt.Errorf("-suite does not combine with -exp %s", *exp))
	}

	if *exp == "bench" {
		if err := runBenchHarness(os.Stdout, *benchOut, *benchPar, memBytes, params, *repeats, *benchSamp); err != nil {
			fatal(err)
		}
		return
	}

	// The serve and offload experiments measure real goroutine
	// concurrency, so they are wall-clock dependent and — like -exp
	// bench — excluded from -exp all, whose outputs are byte-identical
	// at any -parallel. -exp offload is the serve sweep plus the same
	// scenarios through the allocation-core front-end (SPSC rings to
	// one dedicated allocator goroutine per node).
	if *exp == "serve" || *exp == "offload" {
		ocfg := serve.OffloadConfig{RingDepth: *ringDepth}
		if err := runServeHarness(os.Stdout, *serveOut, memBytes, *serveOps, *benchSamp,
			serve.Config{}, *exp == "offload", ocfg); err != nil {
			fatal(err)
		}
		return
	}

	mach, err := bench.NewMachine(bench.MachineOptions{
		MemBytes:   memBytes,
		Overlapped: *overlapped,
	})
	if err != nil {
		fatal(err)
	}

	// Registry-driven suite mode: -suite replaces -exp entirely.
	if *suiteName != "" {
		reg, err := suite.Load(*suitesFile)
		if err != nil {
			fatal(err)
		}
		if *suiteName == "list" {
			for _, s := range reg.Suites {
				fmt.Printf("%-16s %s\n", s.Name, s.Description)
			}
			return
		}
		s, err := reg.ByName(*suiteName)
		if err != nil {
			fatal(err)
		}
		// Flags the user typed explicitly beat the registry entry;
		// entry values beat the flag defaults (suite.Effective).
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale":
				s.Scale = *scale
			case "seed":
				s.Seed = *seed
			case "repeats":
				s.Repeats = *repeats
			}
		})
		r, err := suite.Run(mach, s, params, *repeats, *parallel)
		if err != nil {
			fatal(err)
		}
		switch {
		case csvOut:
			if err := r.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		case jsonOut:
			if err := r.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		case chartOut:
			fatal(fmt.Errorf("-format chart is not supported in suite mode (use table, csv or json)"))
		default:
			r.WriteTable(os.Stdout)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != name && !(*exp == "all" && name != "detail" && name != "sweep" && name != "chaos") {
			return
		}
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	run("latency", func() error {
		r, err := bench.RunLatency(mach, 0, 512, *parallel)
		if err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		}
		r.WriteTable(os.Stdout)
		return nil
	})

	run("detail", func() error {
		wl, err := workload.ByName(*wlName)
		if err != nil {
			return err
		}
		cfg, err := bench.ConfigByName(mach.Topo, *cfgName)
		if err != nil {
			return err
		}
		r, err := bench.RunDetail(mach, wl, cfg, params, *repeats, *parallel)
		if err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		}
		r.WriteTable(os.Stdout)
		return nil
	})

	run("sweep", func() error {
		wl, err := workload.ByName(*wlName)
		if err != nil {
			return err
		}
		vals, err := parseFloats(*sweepVals)
		if err != nil {
			return err
		}
		r, err := bench.RunSweep(bench.SweepParam(*sweepParam), vals, wl, *cfgName,
			params, *repeats, memBytes, *parallel)
		if err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		case chartOut:
			r.WriteChart(os.Stdout)
			return nil
		}
		r.WriteTable(os.Stdout)
		return nil
	})

	run("chaos", func() error {
		loads, err := selectWorkloads(*wlFilter)
		if err != nil {
			return err
		}
		cfg, err := bench.ConfigByName(mach.Topo, *cfgName)
		if err != nil {
			return err
		}
		plans, err := selectPlans(*planNames)
		if err != nil {
			return err
		}
		r, err := bench.RunChaos(mach, cfg, *chaosPol, loads, plans, params, *parallel)
		if err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		}
		r.WriteTable(os.Stdout)
		return nil
	})

	// The adaptive engine showcase (DESIGN.md Sec. 15) runs on its own
	// dedicated machine — small, single-node, aged — rather than the
	// shared -mem one: the experiment's point is capacity pressure, and
	// its knobs are absolute so -scale cannot wash it out. Every cell
	// runs twice (byte-identical or the run fails), the clean adaptive
	// cell is rerun under the migrate-flaky fault plan, and Check()
	// enforces the acceptance criteria: adaptive beats every static
	// policy on runtime with fewer degraded allocations than static MEM.
	run("adaptive", func() error {
		amach, err := bench.NewAdaptiveMachine(false)
		if err != nil {
			return err
		}
		plan, err := fault.PlanByName("migrate-flaky")
		if err != nil {
			return err
		}
		r, err := bench.RunAdaptiveMatrix(amach, params, &plan)
		if err != nil {
			return err
		}
		if err := r.Check(); err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		}
		r.WriteTable(os.Stdout)
		return nil
	})

	run("fig10", func() error {
		cfg, err := bench.ConfigByName(mach.Topo, *cfgName)
		if err != nil {
			return err
		}
		r, err := bench.RunFig10(mach, cfg, params, *repeats, *parallel)
		if err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		case chartOut:
			r.WriteChart(os.Stdout)
			return nil
		}
		r.WriteTable(os.Stdout)
		return nil
	})

	suite := func(write func(*bench.SuiteResult) error) error {
		loads, err := selectWorkloads(*wlFilter)
		if err != nil {
			return err
		}
		cfgs, err := selectConfigs(mach, *cfgFilter)
		if err != nil {
			return err
		}
		r, err := bench.RunSuiteParallel(mach, loads, cfgs, params, *repeats, *parallel)
		if err != nil {
			return err
		}
		return write(r)
	}
	// fig11 and fig12 share the same runs; under -exp all compute once.
	writeSuite := func(r *bench.SuiteResult, runtime, idle bool) error {
		if csvOut {
			return r.WriteCSV(os.Stdout)
		}
		if jsonOut {
			return r.WriteJSON(os.Stdout)
		}
		if runtime {
			if chartOut {
				r.WriteRuntimeChart(os.Stdout)
			} else {
				r.WriteRuntimeTable(os.Stdout)
			}
		}
		if runtime && idle {
			fmt.Println()
		}
		if idle {
			if chartOut {
				r.WriteIdleChart(os.Stdout)
			} else {
				r.WriteIdleTable(os.Stdout)
			}
		}
		return nil
	}
	if *exp == "all" {
		if err := suite(func(r *bench.SuiteResult) error { return writeSuite(r, true, true) }); err != nil {
			fatal(err)
		}
		fmt.Println()
	} else {
		run("fig11", func() error {
			return suite(func(r *bench.SuiteResult) error { return writeSuite(r, true, false) })
		})
		run("fig12", func() error {
			return suite(func(r *bench.SuiteResult) error { return writeSuite(r, false, true) })
		})
	}

	perThread := func() error {
		wl, err := workload.ByName(*wlName)
		if err != nil {
			return err
		}
		cfg, err := bench.ConfigByName(mach.Topo, *cfgName)
		if err != nil {
			return err
		}
		pols := []policy.Policy{policy.Buddy, policy.BPM, policy.MEMLLC}
		r, err := bench.RunPerThread(mach, wl, cfg, pols, params, *parallel)
		if err != nil {
			return err
		}
		switch {
		case csvOut:
			return r.WriteCSV(os.Stdout)
		case jsonOut:
			return r.WriteJSON(os.Stdout)
		}
		r.WriteTables(os.Stdout)
		return nil
	}
	if *exp == "fig13" || *exp == "fig14" || *exp == "all" {
		if err := perThread(); err != nil {
			fatal(err)
		}
	}
}

func parseFloats(csv string) ([]float64, error) {
	var vals []float64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func selectWorkloads(filter string) ([]workload.Workload, error) {
	if filter == "" {
		return workload.StandardSuite(), nil
	}
	var out []workload.Workload
	for _, name := range strings.Split(filter, ",") {
		w, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func selectPlans(filter string) ([]fault.Plan, error) {
	if filter == "" {
		return fault.Plans(), nil
	}
	var out []fault.Plan
	for _, name := range strings.Split(filter, ",") {
		p, err := fault.PlanByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func selectConfigs(mach *bench.Machine, filter string) ([]bench.Config, error) {
	if filter == "" {
		return bench.Configurations(mach.Topo), nil
	}
	var out []bench.Config
	for _, name := range strings.Split(filter, ",") {
		c, err := bench.ConfigByName(mach.Topo, strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tintbench:", err)
	os.Exit(1)
}
