package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

// The serve-scaling harness behind `tintbench -exp serve` and
// `make serve-bench`. It runs the standard serve sweep — 16 clients
// over 1, 2 and 4 engaged shards, then a client sweep at full
// fan-out — times each cell host-side (the internal packages never
// read the wall clock), and writes BENCH_serve.json with the
// previous report folded in as the baseline, mirroring the
// BENCH_engine.json harness.

type serveRecord struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Clients  int    `json:"clients"`
	// Ops counts completed client operations (deterministic for a
	// given spec); everything below it is timing-dependent.
	Ops         uint64  `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Retries     uint64  `json:"retries"` // ErrBusy rejections absorbed
	Refills     uint64  `json:"refills"` // block shatters
	Batches     uint64  `json:"batches"`
	BatchedReqs uint64  `json:"batched_reqs"`
	Degraded    uint64  `json:"degraded"` // ladder allocations
}

type serveReport struct {
	// HostCPUs bounds achievable scaling: shard parallelism buys wall
	// clock only up to the host's core count. On a single-core host
	// ~1x across shard counts is expected and acceptable.
	HostCPUs     int           `json:"host_cpus"`
	OpsPerClient int           `json:"ops_per_client"`
	Records      []serveRecord `json:"records"`
	// ShardScaling is ops/sec at 4 engaged shards over 1 engaged
	// shard, both with 16 clients — the tentpole's headline number.
	ShardScaling float64 `json:"shard_scaling"`
	// Baseline carries the previous report's records so a
	// regenerated BENCH_serve.json documents its own before/after.
	Baseline []serveRecord `json:"baseline,omitempty"`
	// SpeedupVsBaseline compares the 4-node 16-client cell against
	// the same cell of Baseline (0 when no baseline). Only comparable
	// on the same host; see HostCPUs.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

func findServeRecord(recs []serveRecord, scenario string) *serveRecord {
	for i := range recs {
		if recs[i].Scenario == scenario {
			return &recs[i]
		}
	}
	return nil
}

func runServeHarness(w io.Writer, outPath string, memBytes uint64, opsPerClient int, cfg serve.Config) error {
	rep := &serveReport{HostCPUs: runtime.NumCPU(), OpsPerClient: opsPerClient}
	fmt.Fprintf(w, "serve scaling harness (%d ops/client, host cpus %d)\n",
		opsPerClient, rep.HostCPUs)
	fmt.Fprintf(w, "%-20s %6s %8s %10s %9s %12s %9s %9s %9s\n",
		"scenario", "nodes", "clients", "ops", "wall (s)", "ops/sec", "retries", "refills", "degraded")
	for _, spec := range bench.ServeScalingSpecs(opsPerClient) {
		start := time.Now()
		cell, err := bench.RunServeCell(spec, memBytes, cfg)
		wall := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		rec := serveRecord{
			Scenario:    spec.Name,
			Nodes:       spec.Nodes,
			Clients:     spec.Clients,
			Ops:         cell.Ops,
			WallSeconds: wall,
			OpsPerSec:   float64(cell.Ops) / wall,
			Retries:     cell.Retries,
			Refills:     cell.Stats.Refills,
			Batches:     cell.Stats.Batches,
			BatchedReqs: cell.Stats.BatchedReqs,
			Degraded:    cell.Stats.DegradedAllocs(),
		}
		rep.Records = append(rep.Records, rec)
		fmt.Fprintf(w, "%-20s %6d %8d %10d %9.3f %12.0f %9d %9d %9d\n",
			rec.Scenario, rec.Nodes, rec.Clients, rec.Ops, rec.WallSeconds,
			rec.OpsPerSec, rec.Retries, rec.Refills, rec.Degraded)
	}

	one := findServeRecord(rep.Records, "1_node_16_clients")
	four := findServeRecord(rep.Records, "4_nodes_16_clients")
	if one != nil && four != nil && one.OpsPerSec > 0 {
		rep.ShardScaling = four.OpsPerSec / one.OpsPerSec
		fmt.Fprintf(w, "\nshard scaling: 16 clients on 1 -> 4 shards is %.2fx ops/sec\n", rep.ShardScaling)
	}
	if rep.HostCPUs == 1 {
		fmt.Fprintf(w, "note: single-core host — shards cannot run concurrently here; ~1x scaling expected\n")
	}

	// Fold the previous report in as the baseline, as the engine
	// harness does for BENCH_engine.json.
	if data, err := os.ReadFile(outPath); err == nil {
		var prev serveReport
		if json.Unmarshal(data, &prev) == nil && len(prev.Records) > 0 {
			rep.Baseline = prev.Records
			before := findServeRecord(prev.Records, "4_nodes_16_clients")
			if before != nil && four != nil && before.OpsPerSec > 0 {
				rep.SpeedupVsBaseline = four.OpsPerSec / before.OpsPerSec
				fmt.Fprintf(w, "vs previous %s: 4_nodes_16_clients ops/sec %.0f -> %.0f (%.2fx)\n",
					outPath, before.OpsPerSec, four.OpsPerSec, rep.SpeedupVsBaseline)
			}
		}
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
