package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/benchfmt"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

// The serve-scaling harness behind `tintbench -exp serve` and
// `make serve-bench`. It runs the standard serve sweep — 16 clients
// over 1, 2 and 4 engaged shards, then a client sweep at full
// fan-out — re-times each cell -bench-samples times host-side (the
// internal packages never read the wall clock), and writes a
// format-2 benchfmt report with raw samples, mirroring the
// BENCH_engine.json harness.
//
// `tintbench -exp offload` additionally re-runs the same sweep
// through the allocation-core front-end (serve.Offload): one
// dedicated goroutine per node executes all allocator calls, fed by
// per-client SPSC rings. Both sides land in the same report so the
// inline-vs-offloaded comparison is self-contained.

// mallocCount reads the host's cumulative heap allocation count;
// sample deltas divided by completed ops give allocs_per_op.
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// serveSweep times every spec through `run`, printing one table row
// per scenario and returning the format-2 records.
func serveSweep(w io.Writer, specs []bench.ServeSpec, samples int,
	run func(bench.ServeSpec) (*bench.ServeCellResult, error)) ([]benchfmt.ServeRecord, error) {
	var recs []benchfmt.ServeRecord
	for _, spec := range specs {
		rec := benchfmt.ServeRecord{
			Scenario: spec.Name,
			Nodes:    spec.Nodes,
			Clients:  spec.Clients,
		}
		var allocSamples []float64
		for s := 0; s < samples; s++ {
			m0 := mallocCount()
			start := time.Now()
			cell, err := run(spec)
			wall := time.Since(start).Seconds()
			m1 := mallocCount()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			// Ops per completed run is deterministic for a spec; the
			// contention counters are timing-dependent, so the last
			// sample's values stand for the record (as one run did
			// before sampling).
			rec.Ops = cell.Ops
			rec.Retries = cell.Retries
			rec.Refills = cell.Stats.Refills
			rec.Batches = cell.Stats.Batches
			rec.BatchedReqs = cell.Stats.BatchedReqs
			rec.Degraded = cell.Stats.DegradedAllocs()
			rec.WallSecondsSamples = append(rec.WallSecondsSamples, wall)
			rec.OpsPerSecSamples = append(rec.OpsPerSecSamples, float64(cell.Ops)/wall)
			allocSamples = append(allocSamples, float64(m1-m0)/float64(cell.Ops))
		}
		rec.WallSeconds = mean(rec.WallSecondsSamples)
		rec.OpsPerSec = mean(rec.OpsPerSecSamples)
		rec.AllocsPerOp = mean(allocSamples)
		recs = append(recs, rec)
		fmt.Fprintf(w, "%-20s %6d %8d %10d %9.3f %12.0f %9d %9d %9d %10.2f\n",
			rec.Scenario, rec.Nodes, rec.Clients, rec.Ops, rec.WallSeconds,
			rec.OpsPerSec, rec.Retries, rec.Refills, rec.Degraded, rec.AllocsPerOp)
	}
	return recs, nil
}

// netSweep times the wire-path connection sweep: the serve churn
// driven through OS sockets against an in-process tintserved daemon.
func netSweep(w io.Writer, specs []bench.NetServeSpec, samples int,
	memBytes uint64, cfg serve.Config) ([]benchfmt.ServeRecord, error) {
	var recs []benchfmt.ServeRecord
	for _, spec := range specs {
		rec := benchfmt.ServeRecord{
			Scenario: spec.Name,
			Nodes:    4,
			Clients:  spec.Conns,
		}
		for s := 0; s < samples; s++ {
			start := time.Now()
			cell, err := bench.RunNetServeCell(spec, memBytes, cfg)
			wall := time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			rec.Ops = cell.Ops
			rec.Retries = cell.Retries
			rec.Refills = cell.Stats.Refills
			rec.Batches = cell.Stats.Batches
			rec.BatchedReqs = cell.Stats.BatchedReqs
			rec.Degraded = cell.Stats.DegradedAllocs()
			rec.WallSecondsSamples = append(rec.WallSecondsSamples, wall)
			rec.OpsPerSecSamples = append(rec.OpsPerSecSamples, float64(cell.Ops)/wall)
		}
		rec.WallSeconds = mean(rec.WallSecondsSamples)
		rec.OpsPerSec = mean(rec.OpsPerSecSamples)
		recs = append(recs, rec)
		fmt.Fprintf(w, "%-20s %6d %8d %10d %9.3f %12.0f %9d %9d %9d %10s\n",
			rec.Scenario, rec.Nodes, rec.Clients, rec.Ops, rec.WallSeconds,
			rec.OpsPerSec, rec.Retries, rec.Refills, rec.Degraded, "-")
	}
	return recs, nil
}

// churnSweep times the task-churn sweep: spec-determined task batches
// run to exit by the daemon's dispatch scheduler, shipped over the
// wire. Everything but the wall clock is deterministic.
func churnSweep(w io.Writer, specs []bench.ChurnSpec, samples int,
	memBytes uint64, cfg serve.Config) ([]benchfmt.ChurnRecord, error) {
	var recs []benchfmt.ChurnRecord
	for _, spec := range specs {
		rec := benchfmt.ChurnRecord{
			Scenario: spec.Name,
			Policy:   spec.Policy.String(),
			Tasks:    spec.Tasks,
		}
		for s := 0; s < samples; s++ {
			start := time.Now()
			cell, err := bench.RunChurnCell(spec, memBytes, cfg)
			wall := time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", spec.Name, err)
			}
			rec.Ops = cell.Result.Ops
			rec.Ticks = cell.Result.Ticks
			rec.Dispatches = cell.Result.Dispatches
			rec.Preemptions = cell.Result.Preemptions
			rec.Blocks = cell.Result.Blocks
			rec.WallSecondsSamples = append(rec.WallSecondsSamples, wall)
			rec.OpsPerSecSamples = append(rec.OpsPerSecSamples, float64(cell.Result.Ops)/wall)
		}
		rec.WallSeconds = mean(rec.WallSecondsSamples)
		rec.OpsPerSec = mean(rec.OpsPerSecSamples)
		recs = append(recs, rec)
		fmt.Fprintf(w, "%-20s %6s %8d %10d %9d %11d %11d %9.3f %12.0f\n",
			rec.Scenario, rec.Policy, rec.Tasks, rec.Ops, rec.Ticks,
			rec.Dispatches, rec.Preemptions, rec.WallSeconds, rec.OpsPerSec)
	}
	return recs, nil
}

func runServeHarness(w io.Writer, outPath string, memBytes uint64, opsPerClient, samples int,
	cfg serve.Config, offload bool, ocfg serve.OffloadConfig) error {
	if samples < 1 {
		return fmt.Errorf("-bench-samples: must be >= 1, have %d", samples)
	}
	rep := &benchfmt.ServeReport{
		Format:       benchfmt.FormatVersion,
		HostCPUs:     runtime.NumCPU(),
		OpsPerClient: opsPerClient,
		Samples:      samples,
	}
	specs := bench.ServeScalingSpecs(opsPerClient)
	fmt.Fprintf(w, "serve scaling harness (%d ops/client, %d samples, host cpus %d)\n",
		opsPerClient, samples, rep.HostCPUs)
	header := func() {
		fmt.Fprintf(w, "%-20s %6s %8s %10s %9s %12s %9s %9s %9s %10s\n",
			"scenario", "nodes", "clients", "ops", "wall (s)", "ops/sec", "retries", "refills", "degraded", "allocs/op")
	}
	header()
	recs, err := serveSweep(w, specs, samples, func(spec bench.ServeSpec) (*bench.ServeCellResult, error) {
		return bench.RunServeCell(spec, memBytes, cfg)
	})
	if err != nil {
		return err
	}
	rep.Records = recs

	one := benchfmt.FindServeRecord(rep.Records, "1_node_16_clients")
	four := benchfmt.FindServeRecord(rep.Records, "4_nodes_16_clients")
	if one != nil && four != nil && one.OpsPerSec > 0 {
		rep.ShardScaling = four.OpsPerSec / one.OpsPerSec
		fmt.Fprintf(w, "\nshard scaling: 16 clients on 1 -> 4 shards is %.2fx ops/sec\n", rep.ShardScaling)
	}
	if rep.HostCPUs == 1 {
		fmt.Fprintf(w, "note: single-core host — shards cannot run concurrently here; ~1x scaling expected\n")
	}

	if offload {
		fmt.Fprintf(w, "\noffloaded allocation cores (ring depth %d): same sweep, allocator calls\n", ocfg.RingDepth)
		fmt.Fprintf(w, "executed by one dedicated goroutine per node, fed over SPSC rings\n")
		header()
		offRecs, err := serveSweep(w, specs, samples, func(spec bench.ServeSpec) (*bench.ServeCellResult, error) {
			return bench.RunOffloadServeCell(spec, memBytes, cfg, ocfg)
		})
		if err != nil {
			return err
		}
		rep.OffloadRecords = offRecs
		offFour := benchfmt.FindServeRecord(rep.OffloadRecords, "4_nodes_16_clients")
		if four != nil && offFour != nil && four.OpsPerSec > 0 {
			rep.OffloadSpeedup = offFour.OpsPerSec / four.OpsPerSec
			fmt.Fprintf(w, "\noffload vs inline: 4_nodes_16_clients ops/sec %.0f -> %.0f (%.2fx)\n",
				four.OpsPerSec, offFour.OpsPerSec, rep.OffloadSpeedup)
		}
	}

	// The wire path: same churn, real sockets. Connection-count
	// scaling first, then the daemon-scheduled task-churn matrix.
	fmt.Fprintf(w, "\nwire path (unix socket to an in-process tintserved daemon)\n")
	header()
	netRecs, err := netSweep(w, bench.NetServeScalingSpecs(opsPerClient), samples, memBytes, cfg)
	if err != nil {
		return err
	}
	rep.NetRecords = netRecs

	fmt.Fprintf(w, "\ntask churn (daemon dispatch scheduler, 4 simulated cores, quantum 16)\n")
	fmt.Fprintf(w, "%-20s %6s %8s %10s %9s %11s %11s %9s %12s\n",
		"scenario", "policy", "tasks", "ops", "ticks", "dispatches", "preemptions", "wall (s)", "ops/sec")
	churnRecs, err := churnSweep(w, bench.ChurnScalingSpecs(opsPerClient), samples, memBytes, cfg)
	if err != nil {
		return err
	}
	rep.ChurnRecords = churnRecs

	// Fold the previous report in as the baseline, as the engine
	// harness does for BENCH_engine.json.
	if data, err := os.ReadFile(outPath); err == nil {
		var prev benchfmt.ServeReport
		if json.Unmarshal(data, &prev) == nil && len(prev.Records) > 0 {
			rep.Baseline = prev.Records
			before := benchfmt.FindServeRecord(prev.Records, "4_nodes_16_clients")
			if before != nil && four != nil && before.OpsPerSec > 0 {
				rep.SpeedupVsBaseline = four.OpsPerSec / before.OpsPerSec
				fmt.Fprintf(w, "vs previous %s: 4_nodes_16_clients ops/sec %.0f -> %.0f (%.2fx)\n",
					outPath, before.OpsPerSec, four.OpsPerSec, rep.SpeedupVsBaseline)
			}
		}
	}

	if err := benchfmt.WriteFile(outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", outPath)
	return nil
}
