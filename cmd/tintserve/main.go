// Command tintserve exercises the sharded concurrent allocation
// front-end (internal/serve): it pins N clients to the cores of M
// engaged NUMA nodes under a MEM+LLC color plan, churns allocations
// from all of them at once, audits the final state with the
// cross-shard invariant checker, and prints the serving counters —
// colored hit rate, batched-refill amortization, backpressure
// rejections and degradation-ladder traffic.
//
// Usage:
//
//	tintserve                              # 16 clients over all 4 shards
//	tintserve -nodes 1 -clients 16         # same load on a single shard
//	tintserve -ops 100000 -queue 64 -highwater 48 -batch 16
//	tintserve -disable-borrow              # paper-faithful fail-hard mode
//
// Exit status is 0 on a clean audited run, 1 on a runtime failure,
// 2 on a usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

type options struct {
	nodes     int
	clients   int
	ops       int
	memGiB    float64
	queue     int
	highwater int
	batch     int
	stripes   int
	noBorrow  bool
}

// validate rejects option combinations before any platform is built.
// The serve.Config clamps would silently "repair" most of these; a
// benchmark run with repaired parameters reports numbers for a
// configuration the operator didn't ask for, so the front-end fails
// loudly instead.
func validate(o options) error {
	if o.nodes <= 0 {
		return fmt.Errorf("-nodes %d: must engage at least one node", o.nodes)
	}
	if o.clients <= 0 {
		return fmt.Errorf("-clients %d: must run at least one client", o.clients)
	}
	if o.ops <= 0 {
		return fmt.Errorf("-ops %d: must churn at least one operation", o.ops)
	}
	if o.memGiB <= 0 {
		return fmt.Errorf("-mem %g: installed memory must be positive", o.memGiB)
	}
	if o.queue < 0 || o.highwater < 0 || o.batch < 0 || o.stripes < 0 {
		return fmt.Errorf("-queue/-highwater/-batch/-stripes must not be negative")
	}
	effQueue := o.queue
	if effQueue == 0 {
		effQueue = serve.DefaultQueueDepth
	}
	if o.highwater > effQueue {
		return fmt.Errorf("-highwater %d exceeds queue depth %d", o.highwater, effQueue)
	}
	return nil
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 4, "NUMA nodes engaged (clients pin to their cores)")
	flag.IntVar(&o.clients, "clients", 16, "concurrent clients")
	flag.IntVar(&o.ops, "ops", 20000, "churn operations per client")
	flag.Float64Var(&o.memGiB, "mem", 2, "installed physical memory in GiB")
	flag.IntVar(&o.queue, "queue", 0, "refill queue depth per shard (0 = default 256)")
	flag.IntVar(&o.highwater, "highwater", 0, "in-flight refill high-water mark (0 = 3/4 of queue)")
	flag.IntVar(&o.batch, "batch", 0, "max refill requests amortized per batch (0 = default 32)")
	flag.IntVar(&o.stripes, "stripes", 0, "lock stripes per shard's color lists (0 = default 16)")
	flag.BoolVar(&o.noBorrow, "disable-borrow", false, "fail with ErrNoMemory instead of walking the cross-shard ladder")
	flag.Parse()

	if err := validate(o); err != nil {
		fmt.Fprintln(os.Stderr, "tintserve:", err)
		flag.Usage()
		os.Exit(2)
	}

	cfg := serve.Config{
		QueueDepth:    o.queue,
		HighWater:     o.highwater,
		BatchMax:      o.batch,
		Stripes:       o.stripes,
		DisableBorrow: o.noBorrow,
	}
	spec := bench.ServeSpec{
		Name:    fmt.Sprintf("%d_nodes_%d_clients", o.nodes, o.clients),
		Nodes:   o.nodes,
		Clients: o.clients,
		Ops:     o.ops,
	}

	start := time.Now()
	cell, err := bench.RunServeCell(spec, uint64(o.memGiB*(1<<30)), cfg)
	wall := time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tintserve:", err)
		os.Exit(1)
	}

	st := cell.Stats
	// A sub-resolution wall clock (possible for tiny -ops runs) would
	// print ops/sec as +Inf; elide the rate instead.
	if wall > 0 {
		fmt.Printf("%s: %d ops in %.3fs (%.0f ops/sec), audit clean\n",
			spec.Name, cell.Ops, wall, float64(cell.Ops)/wall)
	} else {
		fmt.Printf("%s: %d ops, audit clean\n", spec.Name, cell.Ops)
	}
	fmt.Printf("%-24s %12d\n", "allocations", st.Allocs)
	fmt.Printf("%-24s %12d\n", "  colored (preferred)", st.ColoredPages)
	fmt.Printf("%-24s %12d\n", "  degraded (ladder)", st.DegradedAllocs())
	for r, n := range st.Borrows {
		fmt.Printf("%-24s %12d\n", fmt.Sprintf("    rung %d", r), n)
	}
	fmt.Printf("%-24s %12d\n", "frees", st.Frees)
	fmt.Printf("%-24s %12d\n", "refills (shatters)", st.Refills)
	fmt.Printf("%-24s %12d\n", "refill frames", st.RefillFrames)
	fmt.Printf("%-24s %12d\n", "worker batches", st.Batches)
	fmt.Printf("%-24s %12d\n", "batched requests", st.BatchedReqs)
	if st.Batches > 0 {
		fmt.Printf("%-24s %12.2f\n", "requests per batch", float64(st.BatchedReqs)/float64(st.Batches))
	}
	fmt.Printf("%-24s %12d\n", "busy rejections", st.Rejected)
	fmt.Printf("%-24s %12d\n", "client retries", cell.Retries)
}
