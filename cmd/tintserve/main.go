// Command tintserve exercises the sharded concurrent allocation
// front-end (internal/serve): it pins N clients to the cores of M
// engaged NUMA nodes under a MEM+LLC color plan, churns allocations
// from all of them at once, audits the final state with the
// cross-shard invariant checker, and prints the serving counters —
// colored hit rate, batched-refill amortization, backpressure
// rejections and degradation-ladder traffic.
//
// Usage:
//
//	tintserve                              # 16 clients over all 4 shards
//	tintserve -nodes 1 -clients 16         # same load on a single shard
//	tintserve -ops 100000 -queue 64 -highwater 48 -batch 16
//	tintserve -disable-borrow              # paper-faithful fail-hard mode
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "NUMA nodes engaged (clients pin to their cores)")
		clients   = flag.Int("clients", 16, "concurrent clients")
		ops       = flag.Int("ops", 20000, "churn operations per client")
		memGiB    = flag.Float64("mem", 2, "installed physical memory in GiB")
		queue     = flag.Int("queue", 0, "refill queue depth per shard (0 = default 256)")
		highwater = flag.Int("highwater", 0, "in-flight refill high-water mark (0 = 3/4 of queue)")
		batch     = flag.Int("batch", 0, "max refill requests amortized per batch (0 = default 32)")
		stripes   = flag.Int("stripes", 0, "lock stripes per shard's color lists (0 = default 16)")
		noBorrow  = flag.Bool("disable-borrow", false, "fail with ErrNoMemory instead of walking the cross-shard ladder")
	)
	flag.Parse()

	cfg := serve.Config{
		QueueDepth:    *queue,
		HighWater:     *highwater,
		BatchMax:      *batch,
		Stripes:       *stripes,
		DisableBorrow: *noBorrow,
	}
	spec := bench.ServeSpec{
		Name:    fmt.Sprintf("%d_nodes_%d_clients", *nodes, *clients),
		Nodes:   *nodes,
		Clients: *clients,
		Ops:     *ops,
	}

	start := time.Now()
	cell, err := bench.RunServeCell(spec, uint64(*memGiB*(1<<30)), cfg)
	wall := time.Since(start).Seconds()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tintserve:", err)
		os.Exit(1)
	}

	st := cell.Stats
	fmt.Printf("%s: %d ops in %.3fs (%.0f ops/sec), audit clean\n",
		spec.Name, cell.Ops, wall, float64(cell.Ops)/wall)
	fmt.Printf("%-24s %12d\n", "allocations", st.Allocs)
	fmt.Printf("%-24s %12d\n", "  colored (preferred)", st.ColoredPages)
	fmt.Printf("%-24s %12d\n", "  degraded (ladder)", st.DegradedAllocs())
	for r, n := range st.Borrows {
		fmt.Printf("%-24s %12d\n", fmt.Sprintf("    rung %d", r), n)
	}
	fmt.Printf("%-24s %12d\n", "frees", st.Frees)
	fmt.Printf("%-24s %12d\n", "refills (shatters)", st.Refills)
	fmt.Printf("%-24s %12d\n", "refill frames", st.RefillFrames)
	fmt.Printf("%-24s %12d\n", "worker batches", st.Batches)
	fmt.Printf("%-24s %12d\n", "batched requests", st.BatchedReqs)
	if st.Batches > 0 {
		fmt.Printf("%-24s %12.2f\n", "requests per batch", float64(st.BatchedReqs)/float64(st.Batches))
	}
	fmt.Printf("%-24s %12d\n", "busy rejections", st.Rejected)
	fmt.Printf("%-24s %12d\n", "client retries", cell.Retries)
}
