package main

import "testing"

// TestValidateOptions pins the usage-error surface: every parameter
// the serve.Config clamps would silently repair must be rejected
// loudly here instead (exit 2 in main).
func TestValidateOptions(t *testing.T) {
	good := options{nodes: 4, clients: 16, ops: 1000, memGiB: 2}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr bool
	}{
		{name: "defaults", mutate: func(o *options) {}},
		{name: "zero nodes", mutate: func(o *options) { o.nodes = 0 }, wantErr: true},
		{name: "negative nodes", mutate: func(o *options) { o.nodes = -2 }, wantErr: true},
		{name: "zero clients", mutate: func(o *options) { o.clients = 0 }, wantErr: true},
		{name: "zero ops", mutate: func(o *options) { o.ops = 0 }, wantErr: true},
		{name: "negative ops", mutate: func(o *options) { o.ops = -5 }, wantErr: true},
		{name: "zero mem", mutate: func(o *options) { o.memGiB = 0 }, wantErr: true},
		{name: "negative queue", mutate: func(o *options) { o.queue = -1 }, wantErr: true},
		{name: "negative highwater", mutate: func(o *options) { o.highwater = -1 }, wantErr: true},
		{name: "negative batch", mutate: func(o *options) { o.batch = -1 }, wantErr: true},
		{name: "negative stripes", mutate: func(o *options) { o.stripes = -1 }, wantErr: true},
		{name: "highwater over explicit queue", mutate: func(o *options) { o.queue = 64; o.highwater = 65 }, wantErr: true},
		{name: "highwater over default queue", mutate: func(o *options) { o.highwater = 257 }, wantErr: true},
		{name: "highwater at explicit queue", mutate: func(o *options) { o.queue = 64; o.highwater = 64 }},
		{name: "highwater at default queue", mutate: func(o *options) { o.highwater = 256 }},
		{name: "explicit tuning accepted", mutate: func(o *options) { o.queue = 32; o.highwater = 24; o.batch = 8; o.stripes = 4 }},
	}
	for _, c := range cases {
		o := good
		c.mutate(&o)
		err := validate(o)
		if c.wantErr && err == nil {
			t.Errorf("%s: accepted, want error", c.name)
		}
		if !c.wantErr && err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}
