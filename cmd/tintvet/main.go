// tintvet is the repository's custom lint suite: a set of static
// analyzers enforcing the simulator's determinism and error-handling
// contracts (see CONTRIBUTING.md "Determinism rules"). It is the
// static half of the correctness gate; the runtime half is
// internal/invariant, which audits kernel bookkeeping from tests.
//
// Usage:
//
//	go run ./cmd/tintvet [-list] [-v] [packages...]
//
// Packages default to ./... relative to the current directory. The
// exit status is 1 when any finding survives filtering. A finding is
// suppressed by a `//tintvet:ignore <analyzer>: <reason>` comment on
// the flagged line or the line directly above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
	"github.com/tintmalloc/tintmalloc/internal/analysis/cycleclock"
	"github.com/tintmalloc/tintmalloc/internal/analysis/detrand"
	"github.com/tintmalloc/tintmalloc/internal/analysis/errdrop"
	"github.com/tintmalloc/tintmalloc/internal/analysis/faultpure"
	"github.com/tintmalloc/tintmalloc/internal/analysis/maporder"
)

// suite is every analyzer tintvet runs, in report order.
var suite = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	cycleclock.Analyzer,
	errdrop.Analyzer,
	faultpure.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "report each analyzed package")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, pkg := range prog.Packages {
		for _, a := range suite {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				fatal(fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err))
			}
			diags := analysis.FilterIgnored(prog.Fset, pkg.Files, pass.Diagnostics())
			for _, d := range diags {
				fmt.Println(d)
				findings++
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "tintvet: analyzed %s\n", pkg.Path)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tintvet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tintvet:", err)
	os.Exit(1)
}
