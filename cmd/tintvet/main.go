// tintvet is the repository's custom lint suite: a set of static
// analyzers enforcing the simulator's determinism, error-handling,
// and concurrency contracts (see CONTRIBUTING.md "Determinism rules"
// and "Lock discipline"). It is the static half of the correctness
// gate; the runtime half is internal/invariant, which audits kernel
// bookkeeping from tests.
//
// Usage:
//
//	go run ./cmd/tintvet [-list] [-json] [-v] [packages...]
//
// Packages default to ./... relative to the current directory. The
// exit status is the contract CI scripts rely on: 0 when the suite
// ran and found nothing, 1 when findings survived filtering, 2 when
// the packages could not be loaded or an analyzer failed to run.
//
// A finding is suppressed by a `//tintvet:ignore <analyzer>: <reason>`
// comment on the flagged line or the line directly above it; a
// directive missing the analyzer or the reason suppresses nothing and
// is itself a finding.
//
// With -json, findings are emitted to stdout as a JSON array of
// {file, line, col, analyzer, message} records (an empty array when
// clean) for machine consumption; the human summary goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
	"github.com/tintmalloc/tintmalloc/internal/analysis/cycleclock"
	"github.com/tintmalloc/tintmalloc/internal/analysis/detrand"
	"github.com/tintmalloc/tintmalloc/internal/analysis/errdrop"
	"github.com/tintmalloc/tintmalloc/internal/analysis/faultpure"
	"github.com/tintmalloc/tintmalloc/internal/analysis/goroleak"
	"github.com/tintmalloc/tintmalloc/internal/analysis/guardedby"
	"github.com/tintmalloc/tintmalloc/internal/analysis/lockorder"
	"github.com/tintmalloc/tintmalloc/internal/analysis/maporder"
)

// suite is every analyzer tintvet runs, in report order.
var suite = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	cycleclock.Analyzer,
	errdrop.Analyzer,
	faultpure.Analyzer,
	lockorder.Analyzer,
	guardedby.Analyzer,
	goroleak.Analyzer,
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	verbose := flag.Bool("v", false, "report each analyzed package")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		for _, pkg := range prog.Packages {
			fmt.Fprintf(os.Stderr, "tintvet: analyzing %s\n", pkg.Path)
		}
	}

	diags, err := analysis.RunSuite(prog, suite)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		records := make([]finding, 0, len(diags))
		for _, d := range diags {
			records = append(records, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tintvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// fatal reports a driver failure — load or analyzer error, not a
// finding — and exits 2 so scripts can tell "broken build" from
// "lint failed".
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tintvet:", err)
	os.Exit(2)
}
