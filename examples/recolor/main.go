// recolor: the profile-then-recolor workflow. A worker array is
// first-touched by the master before the workers pick colors — the
// situation plain TintMalloc cannot fix, since it only colors future
// allocations. The program traces the processing phase, observes the
// remote-access fractions, then uses the Migrate extension to pull
// each worker's slice onto its own colors, and re-runs: remote
// accesses drop to zero and the phase gets faster.
package main

import (
	"fmt"
	"log"

	tintmalloc "github.com/tintmalloc/tintmalloc"
)

const (
	threads    = 8
	sliceBytes = 2 << 20
	passes     = 3
)

func main() {
	sys, err := tintmalloc.NewSystem(tintmalloc.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var ths []*tintmalloc.Thread
	for _, c := range []int{0, 1, 4, 5, 8, 9, 12, 13} { // 8_threads_4_nodes
		th, err := sys.AddThread(tintmalloc.CoreID(c))
		if err != nil {
			log.Fatal(err)
		}
		ths = append(ths, th)
	}

	// Master allocates AND first-touches everything (the common
	// "parse input serially" anti-pattern): every page lands on the
	// master's node with the master's (absent) colors.
	total := uint64(threads * sliceBytes)
	base, err := ths[0].Mmap(total)
	if err != nil {
		log.Fatal(err)
	}
	initPhase := tintmalloc.Serial("master-init", threads, func(yield func(tintmalloc.Op) bool) {
		for off := uint64(0); off < total; off += 4096 {
			if !yield(tintmalloc.Op{VA: base + off, Write: true}) {
				return
			}
		}
	})

	// Workers now select MEM+LLC colors — too late for the array.
	if err := sys.ApplyPolicy(tintmalloc.PolicyMEMLLC); err != nil {
		log.Fatal(err)
	}

	process := func(name string) tintmalloc.Phase {
		bodies := make([]tintmalloc.Work, threads)
		for i := range bodies {
			i := i
			bodies[i] = func(yield func(tintmalloc.Op) bool) {
				slice := base + uint64(i)*sliceBytes
				for p := 0; p < passes; p++ {
					for off := uint64(0); off < sliceBytes; off += 128 {
						if !yield(tintmalloc.Op{VA: slice + off, Write: off%512 == 0, Compute: 2}) {
							return
						}
					}
				}
			}
		}
		return tintmalloc.Parallel(name, bodies)
	}

	// Count remote accesses per phase via the tracer.
	remoteByPhase := map[string]uint64{}
	accessByPhase := map[string]uint64{}
	sys.SetTracer(func(e tintmalloc.TraceEvent) {
		accessByPhase[e.Phase]++
		if e.Level.String() == "DRAM-remote" {
			remoteByPhase[e.Phase]++
		}
	})

	res1, err := sys.Run([]tintmalloc.Phase{initPhase, process("before-migrate")})
	if err != nil {
		log.Fatal(err)
	}
	before := res1.Phases[1].End - res1.Phases[1].Start

	// Recolor: each worker migrates its own slice onto its colors.
	var moved int
	for i, th := range ths {
		st, err := th.Migrate(base+uint64(i)*sliceBytes, sliceBytes)
		if err != nil {
			log.Fatal(err)
		}
		moved += st.Moved
	}

	// Flush caches so the comparison isolates placement, not warmth.
	sys.Mem().FlushCaches()
	res2, err := sys.Run([]tintmalloc.Phase{process("after-migrate")})
	if err != nil {
		log.Fatal(err)
	}
	after := res2.Phases[0].End - res2.Phases[0].Start

	pct := func(ph string) float64 {
		if accessByPhase[ph] == 0 {
			return 0
		}
		return 100 * float64(remoteByPhase[ph]) / float64(accessByPhase[ph])
	}
	fmt.Printf("pages migrated:          %d\n", moved)
	fmt.Printf("remote accesses before:  %.1f%%\n", pct("before-migrate"))
	fmt.Printf("remote accesses after:   %.1f%%\n", pct("after-migrate"))
	fmt.Printf("processing phase before: %d cycles\n", before)
	fmt.Printf("processing phase after:  %d cycles (%.1f%% faster)\n",
		after, 100*(1-float64(after)/float64(before)))
}
