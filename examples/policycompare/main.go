// policycompare: run one workload under every coloring policy the
// paper evaluates (buddy, BPM, LLC, MEM, MEM+LLC and the two partial
// variants) and print a comparison table with the memory-system
// evidence (remote access fraction, L3 miss rate).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	tintmalloc "github.com/tintmalloc/tintmalloc"
)

func main() {
	name := flag.String("workload", "equake", "workload to run (see WorkloadNames)")
	scale := flag.Float64("scale", 0.5, "working-set scale")
	flag.Parse()

	policies := []tintmalloc.Policy{
		tintmalloc.PolicyBuddy,
		tintmalloc.PolicyBPM,
		tintmalloc.PolicyLLC,
		tintmalloc.PolicyMEM,
		tintmalloc.PolicyMEMLLC,
		tintmalloc.PolicyMEMLLCPart,
		tintmalloc.PolicyLLCMEMPart,
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\truntime\tidle\tremote DRAM\tL3 miss\n")
	var base float64
	for _, pol := range policies {
		sys, err := tintmalloc.NewSystem(tintmalloc.Config{AgedZones: true, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		for c := 0; c < sys.Topology().Cores(); c++ {
			if _, err := sys.AddThread(tintmalloc.CoreID(c)); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.ApplyPolicy(pol); err != nil {
			log.Fatal(err)
		}
		phases, err := sys.BuildWorkload(*name, tintmalloc.WorkloadParams{Seed: 3, Scale: *scale})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(phases)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(res.Runtime)
		}
		tot := sys.Mem().TotalStats()
		remote := 0.0
		if tot.DRAMReads > 0 {
			remote = float64(tot.RemoteDRAM) / float64(tot.DRAMReads)
		}
		l3 := sys.Mem().L3Stats()
		fmt.Fprintf(w, "%s\t%.3f\t%d\t%.1f%%\t%.1f%%\n",
			pol, float64(res.Runtime)/base, res.TotalIdle,
			remote*100, (1-l3.HitRate())*100)
	}
	w.Flush()
}
