// scheduling: coloring vs dynamic loop scheduling. Barrier idle time
// has two remedies — attack the cause (memory-access divergence, what
// TintMalloc does) or the symptom (imbalance, what OpenMP
// schedule(dynamic) does). This example runs an irregular
// gather/scatter loop under all four combinations. The loop is
// deliberately affinity-clean: every thread gathers only in its own
// first-touched region, so there is no cross-thread interference for
// coloring to remove. The outcome shows both sides of the paper's
// trade-off analysis: dynamic scheduling reliably cuts idle time
// (at some runtime cost once it migrates iterations away from their
// data), while coloring — with no interference to isolate — only
// pays its restriction cost, the same effect behind the paper's
// blackscholes result. Compare examples/lbm, where interference
// dominates and coloring wins decisively.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	tintmalloc "github.com/tintmalloc/tintmalloc"
)

const (
	iterations = 4096
	perThread  = 3 << 20 // bytes of gather space per thread
	threads    = 16
)

func run(pol tintmalloc.Policy, dynamic bool) (*tintmalloc.Result, error) {
	sys, err := tintmalloc.NewSystem(tintmalloc.Config{AgedZones: true, Seed: 5})
	if err != nil {
		return nil, err
	}
	var ths []*tintmalloc.Thread
	for c := 0; c < threads; c++ {
		th, err := sys.AddThread(tintmalloc.CoreID(c))
		if err != nil {
			return nil, err
		}
		ths = append(ths, th)
	}
	if err := sys.ApplyPolicy(pol); err != nil {
		return nil, err
	}

	// Shared gather space, first-touched in parallel.
	buf := make([]uint64, threads)
	initBodies := make([]tintmalloc.Work, threads)
	for i, th := range ths {
		va, err := th.Mmap(perThread)
		if err != nil {
			return nil, err
		}
		buf[i] = va
		initBodies[i] = func(yield func(tintmalloc.Op) bool) {
			for off := uint64(0); off < perThread; off += 4096 {
				if !yield(tintmalloc.Op{VA: va + off, Write: true}) {
					return
				}
			}
		}
	}

	// The irregular loop: iteration cost varies 1-16x (mesh regions
	// of different density), gathers land in the iteration owner's
	// region.
	rng := rand.New(rand.NewSource(99))
	work := make([]int, iterations)
	for i := range work {
		work[i] = 8 + rng.Intn(120)
	}
	body := func(i int, yield func(tintmalloc.Op) bool) bool {
		// Iteration i's data lives in the region its static owner
		// first-touched, so static scheduling has perfect affinity;
		// dynamic scheduling migrates iterations away from their
		// data — the classic balance-vs-affinity trade-off.
		region := buf[i*threads/iterations]
		for k := 0; k < work[i]; k++ {
			off := uint64((i*131071 + k*8191) % (perThread / 128) * 128)
			if !yield(tintmalloc.Op{VA: region + off, Compute: 4}) {
				return false
			}
		}
		return true
	}
	var bodies []tintmalloc.Work
	if dynamic {
		bodies = tintmalloc.DynamicFor(iterations, 8, threads, body)
	} else {
		bodies = tintmalloc.StaticFor(iterations, threads, body)
	}
	return sys.Run([]tintmalloc.Phase{
		tintmalloc.Parallel("init", initBodies),
		tintmalloc.Parallel("gather", bodies),
	})
}

func main() {
	type cell struct {
		name    string
		pol     tintmalloc.Policy
		dynamic bool
	}
	cells := []cell{
		{"buddy + static", tintmalloc.PolicyBuddy, false},
		{"buddy + dynamic", tintmalloc.PolicyBuddy, true},
		{"MEM+LLC + static", tintmalloc.PolicyMEMLLC, false},
		{"MEM+LLC + dynamic", tintmalloc.PolicyMEMLLC, true},
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\truntime\tidle\tidle/runtime")
	var base float64
	for _, c := range cells {
		res, err := run(c.pol, c.dynamic)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(res.Runtime)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%d\t%.2f%%\n",
			c.name, float64(res.Runtime)/base, res.TotalIdle,
			100*float64(res.TotalIdle)/float64(uint64(res.Runtime)*threads))
	}
	w.Flush()
}
