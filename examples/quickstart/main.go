// Quickstart: boot the simulated Opteron platform, color one thread
// with the paper's one-line mmap opt-in, allocate heap memory, touch
// it, and inspect where the kernel placed the pages.
package main

import (
	"fmt"
	"log"

	tintmalloc "github.com/tintmalloc/tintmalloc"
)

func main() {
	sys, err := tintmalloc.NewSystem(tintmalloc.Config{MemBytes: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", sys.Topology())
	fmt.Println("mapping:", sys.Mapping())

	// One thread pinned to core 0 (memory node 0).
	th, err := sys.AddThread(0)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's one-liner: select colors via the mmap protocol.
	// Bank color 3 belongs to node 0 (local to core 0); LLC color 7
	// reserves 1/32 of the shared L3 for this thread.
	if err := th.SetMemColor(3); err != nil {
		log.Fatal(err)
	}
	if err := th.SetLLCColor(7); err != nil {
		log.Fatal(err)
	}

	// Ordinary mallocs — unchanged, as the paper promises.
	var addrs []uint64
	for i := 0; i < 8; i++ {
		va, err := th.Malloc(2048)
		if err != nil {
			log.Fatal(err)
		}
		addrs = append(addrs, va)
	}

	// Touch the allocations inside a simulated parallel section;
	// first touch triggers the colored page faults.
	body := func(yield func(tintmalloc.Op) bool) {
		for _, va := range addrs {
			if !yield(tintmalloc.Op{VA: va, Write: true, Compute: 10}) {
				return
			}
		}
	}
	res, err := sys.Run([]tintmalloc.Phase{
		tintmalloc.Parallel("touch", []tintmalloc.Work{body}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated runtime: %d cycles\n", res.Runtime)

	// Every heap page must be on node 0, bank color 3, LLC color 7.
	m := sys.Mapping()
	for _, va := range addrs {
		f, ok := th.FrameOf(va)
		if !ok {
			log.Fatalf("page for %#x not resident", va)
		}
		fmt.Printf("va %#x -> frame %#x  node %d  bank color %3d  LLC color %2d\n",
			va, f, m.NodeOfFrame(f), m.FrameBankColor(f), m.FrameLLCColor(f))
	}
	st := sys.Kernel().Stats()
	fmt.Printf("kernel: %d faults, %d colored pages, %d color-list refills\n",
		st.Faults, st.ColoredPages, st.Refills)
}
