// lbm: run the paper's most memory-intensive workload proxy (the
// SPEC lbm streaming stencil) on 16 threads across 4 memory nodes,
// once under the default buddy allocator and once under TintMalloc's
// MEM+LLC coloring, and compare runtime, barrier idle time and
// per-thread balance — the paper's headline experiment.
package main

import (
	"fmt"
	"log"

	tintmalloc "github.com/tintmalloc/tintmalloc"
)

func runOnce(pol tintmalloc.Policy) (*tintmalloc.Result, error) {
	// Aged zones reproduce the busy-machine conditions of the
	// paper's evaluation (fragmented buddy lists, imperfect default
	// NUMA locality).
	sys, err := tintmalloc.NewSystem(tintmalloc.Config{AgedZones: true, Seed: 42})
	if err != nil {
		return nil, err
	}
	for c := 0; c < sys.Topology().Cores(); c++ {
		if _, err := sys.AddThread(tintmalloc.CoreID(c)); err != nil {
			return nil, err
		}
	}
	if err := sys.ApplyPolicy(pol); err != nil {
		return nil, err
	}
	phases, err := sys.BuildWorkload("lbm", tintmalloc.WorkloadParams{Seed: 1, Scale: 0.5})
	if err != nil {
		return nil, err
	}
	return sys.Run(phases)
}

func main() {
	buddy, err := runOnce(tintmalloc.PolicyBuddy)
	if err != nil {
		log.Fatal(err)
	}
	colored, err := runOnce(tintmalloc.PolicyMEMLLC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %15s %15s\n", "", "buddy", "MEM+LLC")
	fmt.Printf("%-22s %15d %15d\n", "runtime (cycles)", buddy.Runtime, colored.Runtime)
	fmt.Printf("%-22s %15d %15d\n", "total idle (cycles)", buddy.TotalIdle, colored.TotalIdle)
	fmt.Printf("%-22s %15d %15d\n", "slowest thread", buddy.MaxThreadRuntime(), colored.MaxThreadRuntime())
	fmt.Printf("%-22s %15d %15d\n", "fastest thread", buddy.MinThreadRuntime(), colored.MinThreadRuntime())
	spreadB := buddy.MaxThreadRuntime() - buddy.MinThreadRuntime()
	spreadC := colored.MaxThreadRuntime() - colored.MinThreadRuntime()
	fmt.Printf("%-22s %15d %15d\n", "max-min spread", spreadB, spreadC)
	fmt.Printf("\nMEM+LLC runtime reduction: %.1f%%\n",
		100*(1-float64(colored.Runtime)/float64(buddy.Runtime)))
	fmt.Printf("MEM+LLC idle reduction:    %.1f%%\n",
		100*(1-float64(colored.TotalIdle)/float64(buddy.TotalIdle)))
	fmt.Printf("imbalance ratio buddy/colored: %.2fx\n",
		float64(spreadB)/float64(spreadC))
}
