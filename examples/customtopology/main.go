// customtopology: TintMalloc's coloring is not tied to the Opteron
// 6128 — build a single-socket 8-node machine (a many-controller
// design), plan MEM+LLC colors for one thread per node, and verify
// that every thread's pages stay on its local controller in disjoint
// banks.
package main

import (
	"fmt"
	"log"
	"sort"

	tintmalloc "github.com/tintmalloc/tintmalloc"
)

func main() {
	sys, err := tintmalloc.NewSystem(tintmalloc.Config{
		MemBytes:       1 << 30,
		Sockets:        1,
		NodesPerSocket: 8,
		CoresPerNode:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := sys.Topology()
	m := sys.Mapping()
	fmt.Println("machine:", topo)
	fmt.Printf("bank colors: %d (%d per node), LLC colors: %d\n",
		m.NumBankColors(), m.BanksPerNode(), m.NumLLCColors())

	// One thread on the first core of each node.
	var threads []*tintmalloc.Thread
	for n := 0; n < topo.Nodes(); n++ {
		core := tintmalloc.CoreID(n * topo.CoresPerNode())
		th, err := sys.AddThread(core)
		if err != nil {
			log.Fatal(err)
		}
		threads = append(threads, th)
	}
	if err := sys.ApplyPolicy(tintmalloc.PolicyMEMLLC); err != nil {
		log.Fatal(err)
	}

	// Each thread allocates and touches a buffer.
	const buf = 1 << 20
	vas := make([]uint64, len(threads))
	bodies := make([]tintmalloc.Work, len(threads))
	for i, th := range threads {
		va, err := th.Mmap(buf)
		if err != nil {
			log.Fatal(err)
		}
		vas[i] = va
		bodies[i] = func(yield func(tintmalloc.Op) bool) {
			for off := uint64(0); off < buf; off += 4096 {
				if !yield(tintmalloc.Op{VA: va + off, Write: true}) {
					return
				}
			}
		}
	}
	if _, err := sys.Run([]tintmalloc.Phase{tintmalloc.Parallel("touch", bodies)}); err != nil {
		log.Fatal(err)
	}

	// Verify locality and disjointness.
	seenBanks := map[int]int{}
	for i, th := range threads {
		nodes := map[int]bool{}
		for off := uint64(0); off < buf; off += 4096 {
			f, ok := th.FrameOf(vas[i] + off)
			if !ok {
				log.Fatalf("thread %d: page %#x not resident", i, vas[i]+off)
			}
			nodes[m.NodeOfFrame(f)] = true
			bc := m.FrameBankColor(f)
			if owner, dup := seenBanks[bc]; dup && owner != i {
				log.Fatalf("bank color %d used by threads %d and %d", bc, owner, i)
			}
			seenBanks[bc] = i
		}
		fmt.Printf("thread %d (core %2d): pages on nodes %v (local node %d)\n",
			i, th.Core(), keys(nodes), topo.NodeOfCore(th.Core()))
	}
	fmt.Println("all threads node-local with disjoint banks")
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
