// Package stats provides the small numeric summaries the benchmark
// harness reports: mean/min/max/standard deviation over repeated
// runs, and normalization against a baseline (the paper normalizes
// every figure to the standard buddy allocator).
package stats

import (
	"fmt"
	"math"
)

// Summary describes a sample of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary over xs. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Normalize returns s scaled by 1/base (for "normalized to buddy"
// plots). A zero base yields a NaN-filled Summary: a silent zero
// would masquerade as real data when the baseline is missing, while
// NaN poisons every downstream figure and fails loudly on JSON
// marshalling. Use NormalizeChecked to surface the condition as an
// error instead.
func (s Summary) Normalize(base float64) Summary {
	if base == 0 {
		nan := math.NaN()
		return Summary{N: s.N, Mean: nan, Min: nan, Max: nan, StdDev: nan}
	}
	return Summary{
		N:      s.N,
		Mean:   s.Mean / base,
		Min:    s.Min / base,
		Max:    s.Max / base,
		StdDev: s.StdDev / base,
	}
}

// NormalizeChecked is Normalize with an explicit error for the
// missing-baseline case.
func (s Summary) NormalizeChecked(base float64) (Summary, error) {
	if base == 0 {
		return Summary{}, fmt.Errorf("stats: normalize against zero base (missing baseline)")
	}
	return s.Normalize(base), nil
}

// Spread returns Max - Min (the paper's error bars).
func (s Summary) Spread() float64 { return s.Max - s.Min }

// String formats the summary as mean [min, max].
func (s Summary) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]", s.Mean, s.Min, s.Max)
}

// FromDurations converts integer cycle counts to float samples.
func FromDurations[T ~uint64](ds []T) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d)
	}
	return out
}

// Ratio returns a/b, or 0 when b is 0. Use it for fractions whose
// zero denominator genuinely means "nothing happened" (e.g. remote
// accesses out of zero DRAM reads); for baseline normalizations use
// NormRatio, where a zero denominator is a missing baseline that must
// not print as a plausible 0.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// NormRatio returns a/b, or NaN when b is 0: the value to print when
// b is a baseline measurement whose absence should be visible in the
// output rather than silently read as zero.
func NormRatio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// PercentChange returns the relative change from base to x in
// percent: negative means x is smaller (an improvement for runtimes).
// A zero base yields NaN, matching the NaN-poison convention of
// Normalize and NormRatio: base is always a baseline measurement
// here, and "0% change" against a missing baseline would read as
// "no difference" when the truth is "nothing to compare against".
func PercentChange(base, x float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (x - base) / base * 100
}
