package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	// Sample stddev of that classic set is ~2.138.
	if math.Abs(s.StdDev-2.1380899) > 1e-6 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	if s.Spread() != 7 {
		t.Errorf("Spread = %v", s.Spread())
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.StdDev != 0 {
		t.Errorf("singleton Summary = %+v", s)
	}
}

func TestNormalize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30})
	n := s.Normalize(20)
	if !almost(n.Mean, 1) || !almost(n.Min, 0.5) || !almost(n.Max, 1.5) {
		t.Errorf("Normalize = %+v", n)
	}
	// A zero base means the baseline is missing: the result must be
	// visibly poisoned, not a plausible-looking zero.
	z := s.Normalize(0)
	if !math.IsNaN(z.Mean) || !math.IsNaN(z.Min) || !math.IsNaN(z.Max) || !math.IsNaN(z.StdDev) {
		t.Errorf("Normalize(0) = %+v, want NaN-filled", z)
	}
	if z.N != s.N {
		t.Errorf("Normalize(0).N = %d, want %d", z.N, s.N)
	}
}

func TestNormalizeChecked(t *testing.T) {
	s := Summarize([]float64{10, 20, 30})
	if _, err := s.NormalizeChecked(0); err == nil {
		t.Error("NormalizeChecked(0) returned nil error")
	}
	n, err := s.NormalizeChecked(20)
	if err != nil || !almost(n.Mean, 1) {
		t.Errorf("NormalizeChecked(20) = %+v, %v", n, err)
	}
}

func TestFromDurations(t *testing.T) {
	type d uint64
	got := FromDurations([]d{1, 2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("FromDurations = %v", got)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(10, 4) != 2.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio wrong")
	}
	if NormRatio(10, 4) != 2.5 || !math.IsNaN(NormRatio(1, 0)) {
		t.Error("NormRatio wrong")
	}
	if !almost(PercentChange(200, 140), -30) {
		t.Errorf("PercentChange = %v", PercentChange(200, 140))
	}
	if !almost(PercentChange(200, 260), 30) {
		t.Errorf("PercentChange = %v", PercentChange(200, 260))
	}
	// A zero base is a missing baseline: the result must poison the
	// figure (NaN), not print as a plausible "0% change" — the same
	// convention Normalize and NormRatio follow.
	if !math.IsNaN(PercentChange(0, 5)) {
		t.Errorf("PercentChange(0, 5) = %v, want NaN", PercentChange(0, 5))
	}
	if !math.IsNaN(PercentChange(0, 0)) {
		t.Errorf("PercentChange(0, 0) = %v, want NaN", PercentChange(0, 0))
	}
	if PercentChange(5, 5) != 0 {
		t.Errorf("PercentChange(5, 5) = %v, want 0", PercentChange(5, 5))
	}
}

// Property: Min <= Mean <= Max for any sample.
func TestSummaryOrdering(t *testing.T) {
	f := func(raw []int32) bool {
		xs := make([]float64, len(raw))
		for i, x := range raw {
			xs[i] = float64(x)
		}
		s := Summarize(xs)
		if s.N == 0 {
			return true
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
