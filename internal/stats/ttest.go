package stats

import "math"

// Statistical machinery behind the tintstat regression gate: Welch's
// unequal-variance t-test and Student-t confidence intervals over the
// raw per-repeat samples the BENCH_*.json format-2 files carry. All
// functions follow the package's NaN-poison convention: inputs that
// cannot support the computation (too few samples, NaN-poisoned
// measurements) yield NaN rather than a plausible-looking zero.

// TTest is the outcome of a two-sample Welch's t-test.
type TTest struct {
	// T is the test statistic; sign follows mean(y) - mean(x).
	T float64
	// DF is the Welch–Satterthwaite effective degrees of freedom.
	DF float64
	// P is the two-sided p-value. NaN when the test is undefined
	// (either sample has fewer than two values, or any input is NaN).
	P float64
}

// Welch performs Welch's unequal-variance t-test between samples x
// and y. Degenerate cases:
//
//   - len < 2 on either side, or any NaN input: P is NaN (no test).
//   - both samples have zero variance and equal means: T=0, P=1.
//   - both samples have zero variance and different means: the
//     distributions are point masses at different values, so T=±Inf
//     and P=0 (exactly distinguishable).
//   - one side has zero variance: the usual formula applies (the
//     pooled standard error is carried by the other sample).
func Welch(x, y []float64) TTest {
	nan := math.NaN()
	if len(x) < 2 || len(y) < 2 || hasNaN(x) || hasNaN(y) {
		return TTest{T: nan, DF: nan, P: nan}
	}
	sx := Summarize(x)
	sy := Summarize(y)
	nx, ny := float64(sx.N), float64(sy.N)
	vx := sx.StdDev * sx.StdDev
	vy := sy.StdDev * sy.StdDev
	se2 := vx/nx + vy/ny
	if se2 == 0 {
		if sy.Mean == sx.Mean {
			return TTest{T: 0, DF: nx + ny - 2, P: 1}
		}
		return TTest{T: math.Inf(sign(sy.Mean - sx.Mean)), DF: nx + ny - 2, P: 0}
	}
	t := (sy.Mean - sx.Mean) / math.Sqrt(se2)
	// Welch–Satterthwaite.
	df := se2 * se2 / (vx*vx/(nx*nx*(nx-1)) + vy*vy/(ny*ny*(ny-1)))
	return TTest{T: t, DF: df, P: 2 * (1 - TCDF(math.Abs(t), df))}
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

func hasNaN(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// CI95 returns the two-sided 95% Student-t confidence interval for
// the mean of the sample s summarizes. With fewer than two samples
// the interval is undefined and both bounds are NaN; with zero
// variance it collapses to [mean, mean].
func (s Summary) CI95() (lo, hi float64) {
	if s.N < 2 || math.IsNaN(s.Mean) || math.IsNaN(s.StdDev) {
		return math.NaN(), math.NaN()
	}
	if s.StdDev == 0 {
		return s.Mean, s.Mean
	}
	h := TCrit95(float64(s.N-1)) * s.StdDev / math.Sqrt(float64(s.N))
	return s.Mean - h, s.Mean + h
}

// TCDF is the cumulative distribution function of Student's t
// distribution with df degrees of freedom, evaluated at t. It is
// computed through the regularized incomplete beta function.
func TCDF(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	// P(T <= t) = 1 - I_x(df/2, 1/2)/2 for t >= 0, x = df/(df+t^2).
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t >= 0 {
		return 1 - p
	}
	return p
}

// TCrit95 returns the critical value c with P(|T| <= c) = 0.95 for
// Student's t with df degrees of freedom (the half-width multiplier
// of a 95% confidence interval). Found by bisection on TCDF.
func TCrit95(df float64) float64 {
	if df <= 0 || math.IsNaN(df) {
		return math.NaN()
	}
	const target = 0.975 // two-sided 95%
	lo, hi := 0.0, 1024.0
	for i := 0; i < 200 && hi-lo > 1e-10*(1+hi); i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// computed with the continued-fraction expansion (Numerical Recipes
// betacf), accurate to ~1e-14 over the parameter ranges the t
// distribution uses.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
