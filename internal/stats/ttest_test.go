package stats

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestTCDFKnownValues pins the t CDF against published table values.
func TestTCDFKnownValues(t *testing.T) {
	cases := []struct {
		t, df, want, tol float64
	}{
		{0, 1, 0.5, 1e-12},
		{0, 17, 0.5, 1e-12},
		// t_{0.95, 10} = 1.812461.
		{1.812461, 10, 0.95, 1e-5},
		// t_{0.975, 4} = 2.776445.
		{2.776445, 4, 0.975, 1e-5},
		// df=2 has the closed form 1/2 + t / (2*sqrt(t^2+2)).
		{math.Sqrt(3), 2, 0.5 + math.Sqrt(3)/(2*math.Sqrt(5)), 1e-12},
		// Large df approaches the normal distribution.
		{1.959964, 100000, 0.975, 1e-4},
		// Symmetry.
		{-1.812461, 10, 0.05, 1e-5},
	}
	for _, c := range cases {
		approx(t, "TCDF", TCDF(c.t, c.df), c.want, c.tol)
	}
	if !math.IsNaN(TCDF(1, 0)) || !math.IsNaN(TCDF(math.NaN(), 5)) {
		t.Error("TCDF must NaN-poison on df<=0 or NaN input")
	}
	if got := TCDF(math.Inf(1), 5); got != 1 {
		t.Errorf("TCDF(+Inf) = %v, want 1", got)
	}
	if got := TCDF(math.Inf(-1), 5); got != 0 {
		t.Errorf("TCDF(-Inf) = %v, want 0", got)
	}
}

// TestTCrit95KnownValues pins the CI half-width multiplier against
// the standard t table.
func TestTCrit95KnownValues(t *testing.T) {
	cases := []struct{ df, want float64 }{
		{1, 12.7062},
		{2, 4.30265},
		{4, 2.776445},
		{10, 2.228139},
		{30, 2.042272},
		{1000, 1.962339},
	}
	for _, c := range cases {
		approx(t, "TCrit95", TCrit95(c.df), c.want, 1e-4)
	}
	if !math.IsNaN(TCrit95(0)) {
		t.Error("TCrit95(0) must be NaN")
	}
}

// TestWelchHandComputed checks the test statistic, effective df and
// p-value against hand-computed fixtures.
func TestWelchHandComputed(t *testing.T) {
	// Shifted identical spreads: se = 1, t = 1, Welch df = 8,
	// two-sided p = 0.34659 (t table, df 8).
	r := Welch([]float64{1, 2, 3, 4, 5}, []float64{2, 3, 4, 5, 6})
	approx(t, "T", r.T, 1, 1e-12)
	approx(t, "DF", r.DF, 8, 1e-9)
	approx(t, "P", r.P, 0.34659, 1e-4)

	// Unequal variances and sizes; reference values computed
	// independently (t and df by hand from the Welch formulas,
	// p by numerical integration of the t density).
	a1 := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	a2 := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.6, 24.2, 20.9, 26.2, 35.1}
	r = Welch(a1, a2)
	approx(t, "T", r.T, 3.0316439, 1e-6)
	approx(t, "DF", r.DF, 30.7244373, 1e-6)
	approx(t, "P", r.P, 0.0049062, 1e-6)

	// One-sided zero variance: se^2 = 1/3 carried entirely by y,
	// df = 2, p = 2*(1 - (1/2 + t/(2*sqrt(t^2+2)))) with t = sqrt(3).
	r = Welch([]float64{1, 1, 1}, []float64{1, 2, 3})
	approx(t, "T", r.T, math.Sqrt(3), 1e-12)
	approx(t, "DF", r.DF, 2, 1e-9)
	approx(t, "P", r.P, 0.225403, 1e-5)
}

// TestWelchDegenerate covers the cases the gate must not mis-score:
// tiny samples, flat samples, and NaN-poisoned inputs (the PR 4/5
// Normalize convention).
func TestWelchDegenerate(t *testing.T) {
	// n = 1 on either side: no test.
	for _, pair := range [][2][]float64{
		{{1}, {2, 3}},
		{{1, 2}, {3}},
		{{}, {1, 2}},
	} {
		r := Welch(pair[0], pair[1])
		if !math.IsNaN(r.P) || !math.IsNaN(r.T) {
			t.Errorf("Welch(%v, %v) = %+v, want NaN test", pair[0], pair[1], r)
		}
	}
	// NaN-poisoned input: no test.
	r := Welch([]float64{1, math.NaN()}, []float64{2, 3})
	if !math.IsNaN(r.P) {
		t.Errorf("NaN input must poison the p-value, got %v", r.P)
	}
	// Zero variance both sides, equal means: indistinguishable.
	r = Welch([]float64{2, 2, 2}, []float64{2, 2})
	if r.T != 0 || r.P != 1 {
		t.Errorf("flat equal samples: got T=%v P=%v, want 0, 1", r.T, r.P)
	}
	// Zero variance both sides, different means: point masses at
	// different values are exactly distinguishable.
	r = Welch([]float64{1, 1}, []float64{2, 2})
	if !math.IsInf(r.T, 1) || r.P != 0 {
		t.Errorf("flat shifted samples: got T=%v P=%v, want +Inf, 0", r.T, r.P)
	}
	r = Welch([]float64{2, 2}, []float64{1, 1})
	if !math.IsInf(r.T, -1) || r.P != 0 {
		t.Errorf("flat shifted samples: got T=%v P=%v, want -Inf, 0", r.T, r.P)
	}
}

func TestCI95(t *testing.T) {
	// n=5, sd=sqrt(2.5): half-width = 2.776445*sqrt(0.5) = 1.963243.
	lo, hi := Summarize([]float64{1, 2, 3, 4, 5}).CI95()
	approx(t, "lo", lo, 3-1.963243, 1e-4)
	approx(t, "hi", hi, 3+1.963243, 1e-4)

	// n=1: undefined.
	lo, hi = Summarize([]float64{7}).CI95()
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("n=1 CI = [%v, %v], want NaN bounds", lo, hi)
	}
	// Zero variance: collapses to the mean.
	lo, hi = Summarize([]float64{4, 4, 4}).CI95()
	if lo != 4 || hi != 4 {
		t.Errorf("flat CI = [%v, %v], want [4, 4]", lo, hi)
	}
	// NaN-poisoned sample: poisoned interval.
	lo, hi = Summarize([]float64{1, math.NaN()}).CI95()
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Errorf("poisoned CI = [%v, %v], want NaN bounds", lo, hi)
	}
}
