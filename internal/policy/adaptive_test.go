package policy

import "testing"

// sample builds a confident, "divergent" baseline sample; tests
// perturb one feature at a time.
func sample() TaskSample {
	return TaskSample{
		FootprintPages:    1024,
		LoanRate:          0,
		LLCMissRate:       0.3,
		RemoteFrac:        0.4,
		BankCapacityPages: 4096,
		LLCCapacityPages:  4096,
		Accesses:          1 << 20,
	}
}

func TestClassifyLadder(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*TaskSample)
		want   Policy
		act    bool
	}{
		{"divergent baseline", func(s *TaskSample) {}, MEMLLC, true},
		{"too few accesses", func(s *TaskSample) { s.Accesses = MinClassifyAccesses - 1 }, Buddy, false},
		{"starved on loans", func(s *TaskSample) { s.LoanRate = HighLoanRate + 0.1 }, Buddy, true},
		{"oversized footprint", func(s *TaskSample) { s.FootprintPages = s.BankCapacityPages + 1 }, Buddy, true},
		{"unknown capacity is unlimited", func(s *TaskSample) {
			s.FootprintPages = 1 << 20
			s.BankCapacityPages = 0
			s.LLCCapacityPages = 0
		}, MEMLLC, true},
		{"tiny footprint", func(s *TaskSample) { s.FootprintPages = SmallFootprintPages - 1 }, Buddy, true},
		{"streaming", func(s *TaskSample) { s.LLCMissRate = StreamingMissRate + 0.1 }, MEMOnly, true},
		{"cache-bound local", func(s *TaskSample) { s.RemoteFrac = 0 }, LLCOnly, true},
		// A set beyond its LLC share's fit fraction cannot be cache
		// resident: no LLC colors, but bank isolation still applies.
		{"uncacheable working set", func(s *TaskSample) {
			s.RemoteFrac = 0
			s.LLCCapacityPages = uint64(float64(s.FootprintPages)/LLCFitFrac) - 1
		}, MEMOnly, true},
		// Starvation outranks streaming: colors that can't be honored
		// are released even for a task that would otherwise want them.
		{"starved streamer", func(s *TaskSample) {
			s.LoanRate = HighLoanRate + 0.1
			s.LLCMissRate = 1
		}, Buddy, true},
		// A streamer with no divergence still gets bank isolation:
		// row-buffer interference doesn't need remote traffic.
		{"local streamer", func(s *TaskSample) {
			s.LLCMissRate = 1
			s.RemoteFrac = 0
		}, MEMOnly, true},
		// Oversized outranks streaming: bank colors that cannot hold
		// the footprint would only re-start the loan starvation the
		// task already fled (the anti-thrash rule).
		{"oversized streamer", func(s *TaskSample) {
			s.FootprintPages = s.BankCapacityPages * 2
			s.LLCMissRate = 1
		}, Buddy, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sample()
			tc.mutate(&s)
			got, act := Classify(s)
			if act != tc.act {
				t.Fatalf("Classify act = %v, want %v", act, tc.act)
			}
			if act && got != tc.want {
				t.Fatalf("Classify = %s, want %s", got, tc.want)
			}
		})
	}
}

// TestClassifyCoversDriverPolicies pins the classifier's output
// domain: every policy it can emit must be one the adaptive bench
// driver knows how to apply (CONTRIBUTING.md's classifier-row rule).
func TestClassifyCoversDriverPolicies(t *testing.T) {
	driverKnown := map[Policy]bool{Buddy: true, MEMOnly: true, LLCOnly: true, MEMLLC: true}
	seen := map[Policy]bool{}
	// Sweep feature-space corners; coarse but covers every branch.
	for _, fp := range []uint64{1, SmallFootprintPages, 4096} {
		for _, lr := range []float64{0, 0.4, 0.9} {
			for _, mr := range []float64{0, 0.5, 1} {
				for _, rf := range []float64{0, 0.05, 0.5} {
					p, ok := Classify(TaskSample{
						FootprintPages: fp, LoanRate: lr,
						LLCMissRate: mr, RemoteFrac: rf,
						Accesses: 1 << 20,
					})
					if !ok {
						t.Fatal("confident sample rejected")
					}
					if !driverKnown[p] {
						t.Fatalf("Classify emitted %s, which the adaptive driver cannot apply", p)
					}
					seen[p] = true
				}
			}
		}
	}
	for p := range driverKnown {
		if !seen[p] {
			t.Errorf("no corner sample reaches %s; classifier rows and tests have drifted", p)
		}
	}
}

func TestHysteresis(t *testing.T) {
	h, err := NewHysteresis(MEMLLC, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One outlier never switches.
	if h.Observe(Buddy) {
		t.Fatal("switched on a single outlier")
	}
	if h.Observe(MEMLLC) {
		t.Fatal("switched back to current")
	}
	// The outlier streak was reset by the agreeing sample.
	if h.Observe(Buddy) {
		t.Fatal("streak survived an intervening agreeing sample")
	}
	if !h.Observe(Buddy) {
		t.Fatal("two consecutive agreeing samples must switch")
	}
	if h.Current() != Buddy {
		t.Fatalf("Current = %s, want %s", h.Current(), Buddy)
	}
	if h.Switches != 1 {
		t.Fatalf("Switches = %d, want 1", h.Switches)
	}
	// A released switch resets the streak: no immediate re-switch.
	if h.Observe(MEMOnly) {
		t.Fatal("switched after one sample following a transition")
	}
	// Changing the pending candidate restarts the streak.
	if h.Observe(MEMLLC) || h.Observe(MEMOnly) {
		t.Fatal("streak crossed a candidate change")
	}
	if !h.Observe(MEMOnly) {
		t.Fatal("re-agreed candidate must switch")
	}

	if _, err := NewHysteresis(Buddy, 0); err == nil {
		t.Fatal("lag 0 accepted")
	}
}
