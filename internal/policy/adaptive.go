package policy

import "fmt"

// The online classifier of the adaptive policy engine (DESIGN.md
// Sec. 15). TintMalloc's policies are chosen per program, once, by
// whoever launches it; the paper itself observes that the best choice
// depends on the phase behaviour of the workload (streaming scans
// want bank isolation but waste their LLC share, small-footprint
// churners want no coloring at all). The classifier closes that loop:
// at every phase barrier each task's observable behaviour is
// condensed into a TaskSample, Classify maps it to the policy whose
// guarantees that behaviour can actually exploit, and Hysteresis
// keeps one noisy sample from thrashing the color sets.
//
// Every policy the classifier may emit must have a row in the
// decision logic below AND a case in the bench driver's subset
// mapping — CONTRIBUTING.md makes that a review requirement for new
// policies.

// TaskSample is one task's behaviour since the previous decision
// point, in classifier feature space. All rates are ratios in [0,1];
// a zero-access sample classifies as idle and keeps the current
// policy.
type TaskSample struct {
	// FootprintPages is the task's resident page count — how much of
	// a private color's frame supply it actually uses.
	FootprintPages uint64
	// LoanRate is degraded (ladder) allocations per fault: how often
	// the task's coloring could NOT be honored. A task that mostly
	// lives on loans gets no benefit from its colors and causes
	// divergence for everyone else.
	LoanRate float64
	// LLCMissRate is the fraction of memory accesses served by DRAM
	// rather than any cache level. Streaming tasks sit near 1: an LLC
	// partition is wasted on them.
	LLCMissRate float64
	// RemoteFrac is the fraction of DRAM accesses served by a remote
	// controller — the paper's access-divergence signal. High remote
	// traffic is what bank coloring fixes.
	RemoteFrac float64
	// BankCapacityPages is the frame supply of the bank colors this
	// task would claim under a MEM policy — the hard ceiling its
	// footprint must fit under for bank coloring to be honorable.
	// Zero means unknown and disables the capacity rules.
	BankCapacityPages uint64
	// LLCCapacityPages is the cache capacity of the LLC colors this
	// task would claim under an LLC policy, in pages. A working set
	// beyond LLCFitFrac of it cannot be cache-resident, so an LLC
	// partition is wasted on it. Zero means unknown.
	LLCCapacityPages uint64
	// Accesses is the raw access count behind the rates, to reject
	// low-confidence samples.
	Accesses uint64
}

// Classifier thresholds. Exported so experiments can report them;
// the values are deliberately coarse — the classifier must be robust,
// not optimal, and hysteresis absorbs borderline samples.
const (
	// MinClassifyAccesses is the fewest accesses a sample needs before
	// the classifier will act on it at all.
	MinClassifyAccesses = 1024
	// SmallFootprintPages: below this residency a task cannot fill
	// even one color's worth of frames, so private colors only
	// fragment the machine.
	SmallFootprintPages = 32
	// HighLoanRate: above this, the machine cannot honor the task's
	// colors anyway; holding them just starves other tasks.
	HighLoanRate = 0.5
	// StreamingMissRate: above this LLC miss rate the task is
	// streaming; an LLC partition buys it nothing, but bank isolation
	// still cuts its row-buffer interference.
	StreamingMissRate = 0.7
	// DivergentRemoteFrac: above this remote-DRAM fraction the task
	// suffers controller divergence and wants bank (MEM) coloring.
	DivergentRemoteFrac = 0.1
	// LLCFitFrac: a working set must fit in this fraction of the
	// task's LLC share to count as cache-resident — a set at 100% of
	// its partition thrashes it instead of living in it.
	LLCFitFrac = 0.5
)

// Classify maps one sample to the policy it should run under. The
// second return is false when the sample is too small to act on (the
// caller keeps the current policy).
//
// The decision ladder, most- to least-specific:
//
//	starved     (high loan rate)        -> Buddy    colors unhonorable; release them
//	oversized   (footprint > bank cap)  -> Buddy    bank colors cannot hold the task
//	tiny        (small footprint)       -> Buddy    colors can't pay for their fragmentation
//	streaming   (high LLC miss rate)    -> MEMOnly  bank isolation without wasting LLC share
//	uncacheable (footprint > LLC fit)   -> MEMOnly  partition can't hold the set; banks still help
//	cache-bound (low miss, local)       -> LLCOnly  LLC partition; banks not the bottleneck
//	divergent   (everything else)       -> MEMLLC   the paper's full contract
//
// The two capacity rules are what keep the classifier from
// thrashing. Without `oversized`, a task that already fled its colors
// because they starved it looks like a streamer next epoch (loan rate
// back to zero, miss rate still high) and is re-colored straight back
// into the starvation that evicted it. Without `uncacheable`, a
// growing task whose footprint still happens to fit the LLC samples
// as cache-bound for an epoch and wins LLC colors — whose allocation
// ignores node locality — right before it outgrows them.
func Classify(s TaskSample) (Policy, bool) {
	if s.Accesses < MinClassifyAccesses {
		return Buddy, false
	}
	if s.LoanRate > HighLoanRate {
		return Buddy, true
	}
	if s.BankCapacityPages > 0 && s.FootprintPages > s.BankCapacityPages {
		return Buddy, true
	}
	if s.FootprintPages < SmallFootprintPages {
		return Buddy, true
	}
	if s.LLCMissRate > StreamingMissRate {
		return MEMOnly, true
	}
	if s.LLCCapacityPages > 0 && float64(s.FootprintPages) > LLCFitFrac*float64(s.LLCCapacityPages) {
		return MEMOnly, true
	}
	if s.RemoteFrac < DivergentRemoteFrac {
		return LLCOnly, true
	}
	return MEMLLC, true
}

// Hysteresis debounces per-task policy decisions: a switch is only
// released after Lag consecutive samples agree on the same policy
// that differs from the current one. Zero value is not usable; use
// NewHysteresis.
type Hysteresis struct {
	lag     int
	current Policy
	pending Policy
	streak  int
	// Switches counts released transitions, for experiment reports.
	Switches int
}

// DefaultHysteresisLag is the consecutive-agreeing-samples bar for a
// policy switch. Two is the smallest value that still rejects a
// single outlier sample.
const DefaultHysteresisLag = 2

// NewHysteresis tracks one task currently running under `initial`.
func NewHysteresis(initial Policy, lag int) (*Hysteresis, error) {
	if lag < 1 {
		return nil, fmt.Errorf("policy: hysteresis lag %d, need >= 1", lag)
	}
	return &Hysteresis{lag: lag, current: initial, pending: initial}, nil
}

// Current returns the policy the task should be running under now.
func (h *Hysteresis) Current() Policy { return h.current }

// Observe feeds one classifier decision and reports whether the task
// should switch policy now (true exactly once per released
// transition, at which point Current() is the new policy).
func (h *Hysteresis) Observe(p Policy) bool {
	if p == h.current {
		h.pending, h.streak = h.current, 0
		return false
	}
	if p == h.pending {
		h.streak++
	} else {
		h.pending, h.streak = p, 1
	}
	if h.streak < h.lag {
		return false
	}
	h.current, h.streak = p, 0
	h.Switches++
	return true
}
