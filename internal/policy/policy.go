// Package policy computes per-thread color assignments for the
// coloring schemes evaluated in the paper (Sec. V-B):
//
//	Buddy       – no coloring (Linux default allocation)
//	LLCOnly     – private LLC colors, uncolored memory banks
//	MEMOnly     – private local bank colors, uncolored LLC
//	MEMLLC      – private local banks AND private LLC colors
//	MEMLLCPart  – private local banks; LLC colors shared per group
//	LLCMEMPart  – private LLC colors; local banks shared per group
//	BPM         – prior work: banks+LLC partitioned with NO
//	              controller awareness, so each thread's banks
//	              stride across all nodes and most accesses are
//	              remote (Liu et al. [10])
//
// "Private" always means disjoint from every other thread. Groups
// are the sets of threads sharing a memory node. All TintMalloc
// variants pick bank colors from the thread's local node — the
// controller awareness that distinguishes them from BPM.
package policy

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Policy selects a coloring scheme.
type Policy int

// The coloring schemes compared in the paper.
const (
	Buddy Policy = iota
	LLCOnly
	MEMOnly
	MEMLLC
	MEMLLCPart
	LLCMEMPart
	BPM
)

// All returns every policy in presentation order.
func All() []Policy {
	return []Policy{Buddy, BPM, LLCOnly, MEMOnly, MEMLLC, MEMLLCPart, LLCMEMPart}
}

// String returns the paper's name for the policy.
func (p Policy) String() string {
	switch p {
	case Buddy:
		return "buddy"
	case LLCOnly:
		return "LLC"
	case MEMOnly:
		return "MEM"
	case MEMLLC:
		return "MEM+LLC"
	case MEMLLCPart:
		return "MEM+LLC(part)"
	case LLCMEMPart:
		return "LLC+MEM(part)"
	case BPM:
		return "BPM"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Colored reports whether the policy issues any color mmaps.
func (p Policy) Colored() bool { return p != Buddy }

// PrivateBanks reports whether the policy promises every thread a
// bank-color set disjoint from all other threads'. Under a separable
// mapping this is a hard guarantee Plan must uphold; the invariant
// auditor checks it.
func (p Policy) PrivateBanks() bool {
	return p == MEMOnly || p == MEMLLC || p == MEMLLCPart || p == BPM
}

// PrivateLLC reports whether the policy promises every thread an LLC
// color set disjoint from all other threads'.
func (p Policy) PrivateLLC() bool {
	return p == LLCOnly || p == MEMLLC || p == LLCMEMPart || p == BPM
}

// ParsePolicy maps a paper name back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range All() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q", s)
}

// Assignment is the color set one thread should own.
type Assignment struct {
	BankColors []int
	LLCColors  []int
}

// Plan computes one assignment per thread for threads pinned to the
// given cores. Threads sharing a memory node form a group; private
// resources are divided within the group (banks) or across all
// threads (LLC), shared resources are granted group-wide.
func Plan(p Policy, m *phys.Mapping, topo *topology.Topology, cores []topology.CoreID) ([]Assignment, error) {
	n := len(cores)
	if n == 0 {
		return nil, fmt.Errorf("policy: no cores given")
	}
	for _, c := range cores {
		if !topo.ValidCore(c) {
			return nil, fmt.Errorf("policy: invalid core %d", c)
		}
	}
	out := make([]Assignment, n)
	if p == Buddy {
		return out, nil
	}

	// Group threads by their local node, preserving thread order.
	groupOf := make([]int, n)        // thread -> group index
	rankInGroup := make([]int, n)    // thread -> position within group
	var groupNodes []topology.NodeID // group -> node
	groupSize := map[topology.NodeID]int{}
	groupIdx := map[topology.NodeID]int{}
	for i, c := range cores {
		node := topo.NodeOfCore(c)
		gi, ok := groupIdx[node]
		if !ok {
			gi = len(groupNodes)
			groupIdx[node] = gi
			groupNodes = append(groupNodes, node)
		}
		groupOf[i] = gi
		rankInGroup[i] = groupSize[node]
		groupSize[node]++
	}
	nGroups := len(groupNodes)

	needPrivateLLC := p == LLCOnly || p == MEMLLC || p == LLCMEMPart || p == BPM
	needPrivateMEM := p == MEMOnly || p == MEMLLC || p == MEMLLCPart
	if needPrivateLLC && n > m.NumLLCColors() {
		return nil, fmt.Errorf("policy: %d threads exceed %d LLC colors", n, m.NumLLCColors())
	}

	// Private LLC colors: divide the color space evenly over all
	// threads; thread i owns chunk i.
	if needPrivateLLC {
		per := m.NumLLCColors() / n
		if per == 0 {
			per = 1
		}
		for i := range out {
			for c := i * per; c < (i+1)*per && c < m.NumLLCColors(); c++ {
				out[i].LLCColors = append(out[i].LLCColors, c)
			}
		}
	}

	// Group-shared LLC colors (MEM+LLC(part)): chunk per group, all
	// threads of the group own the whole chunk.
	if p == MEMLLCPart {
		per := m.NumLLCColors() / nGroups
		if per == 0 {
			per = 1
		}
		for i := range out {
			g := groupOf[i]
			for c := g * per; c < (g+1)*per && c < m.NumLLCColors(); c++ {
				out[i].LLCColors = append(out[i].LLCColors, c)
			}
		}
	}

	// Private local bank colors: the node's colors divided among
	// the threads of that node. Under an overlapped mapping the
	// hardware pins bank bits through the thread's LLC colors, so
	// the bank set is *derived* from compatibility instead of
	// partitioned freely (disjoint LLC colors then imply disjoint
	// banks automatically).
	if needPrivateMEM {
		for i := range out {
			node := groupNodes[groupOf[i]]
			local := m.BankColorsOfNode(int(node))
			if !m.SeparableColors() && len(out[i].LLCColors) > 0 {
				out[i].BankColors = compatibleOf(m, local, out[i].LLCColors)
				if len(out[i].BankColors) == 0 {
					return nil, fmt.Errorf("policy: thread %d: no local bank compatible with its LLC colors", i)
				}
				continue
			}
			g := groupSize[node]
			if g > len(local) {
				return nil, fmt.Errorf("policy: %d threads on node %d exceed %d local bank colors",
					g, node, len(local))
			}
			per := len(local) / g
			r := rankInGroup[i]
			out[i].BankColors = append(out[i].BankColors, local[r*per:(r+1)*per]...)
		}
	}

	// Group-shared local banks (LLC+MEM(part)): every thread of the
	// group owns all of its node's bank colors.
	if p == LLCMEMPart {
		for i := range out {
			node := groupNodes[groupOf[i]]
			out[i].BankColors = append(out[i].BankColors, m.BankColorsOfNode(int(node))...)
		}
	}

	// BPM: controller-oblivious bank partitioning. Thread i takes
	// every n-th color starting at i, so its banks stride across
	// all nodes and locality is lost — the defect the paper
	// attributes to prior work.
	if p == BPM {
		if n > m.NumBankColors() {
			return nil, fmt.Errorf("policy: %d threads exceed %d bank colors", n, m.NumBankColors())
		}
		all := make([]int, m.NumBankColors())
		for c := range all {
			all[c] = c
		}
		for i := range out {
			if !m.SeparableColors() {
				// Hardware-pinned banks: the compatible colors of
				// the thread's LLC set, which span all nodes —
				// still controller-oblivious.
				out[i].BankColors = compatibleOf(m, all, out[i].LLCColors)
				continue
			}
			for c := i; c < m.NumBankColors(); c += n {
				out[i].BankColors = append(out[i].BankColors, c)
			}
		}
	}
	// Overlapped-mapping reconciliation: when bank bits share
	// physical address bits with the LLC color bits (the real
	// Opteron layout), a thread holding both bank and LLC colors
	// can only be served from compatible combinations. Drop bank
	// colors that are incompatible with every owned LLC color —
	// exactly the constraint the hardware imposes.
	for i := range out {
		if len(out[i].BankColors) == 0 || len(out[i].LLCColors) == 0 {
			continue
		}
		kept := out[i].BankColors[:0]
		for _, bc := range out[i].BankColors {
			ok := false
			for _, lc := range out[i].LLCColors {
				if m.ComboCompatible(bc, lc) {
					ok = true
					break
				}
			}
			if ok {
				kept = append(kept, bc)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("policy: thread %d: no bank color compatible with its LLC colors under this mapping", i)
		}
		out[i].BankColors = kept
	}

	return out, nil
}

// compatibleOf returns the bank colors from candidates that are
// compatible with at least one of the LLC colors.
func compatibleOf(m *phys.Mapping, candidates, llcColors []int) []int {
	var out []int
	for _, bc := range candidates {
		for _, lc := range llcColors {
			if m.ComboCompatible(bc, lc) {
				out = append(out, bc)
				break
			}
		}
	}
	return out
}

// Apply issues the paper's one-line-per-color mmap calls to install
// an assignment into a task's TCB.
func Apply(task *kernel.Task, a Assignment) error {
	for _, c := range a.BankColors {
		if _, err := task.Mmap(uint64(c)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
			return err
		}
	}
	for _, c := range a.LLCColors {
		if _, err := task.Mmap(uint64(c)|kernel.SetLLCColor, 0, kernel.ColorAlloc); err != nil {
			return err
		}
	}
	return nil
}
