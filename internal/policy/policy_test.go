package policy

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 256 << 20

func setup(t *testing.T) (*phys.Mapping, *topology.Topology) {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	return m, top
}

// paper configuration: 16 threads over 4 nodes.
func cores16(t *testing.T, top *topology.Topology) []topology.CoreID {
	t.Helper()
	out := make([]topology.CoreID, 16)
	for i := range out {
		out[i] = topology.CoreID(i)
	}
	return out
}

func disjoint(t *testing.T, name string, sets [][]int) {
	t.Helper()
	seen := map[int]int{}
	for i, s := range sets {
		for _, c := range s {
			if j, dup := seen[c]; dup {
				t.Errorf("%s: color %d owned by threads %d and %d", name, c, j, i)
			}
			seen[c] = i
		}
	}
}

func TestBuddyPlanIsEmpty(t *testing.T) {
	m, top := setup(t)
	asn, err := Plan(Buddy, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range asn {
		if len(a.BankColors) != 0 || len(a.LLCColors) != 0 {
			t.Errorf("thread %d has colors under buddy: %+v", i, a)
		}
	}
}

func TestMEMLLCPlan16Threads(t *testing.T) {
	m, top := setup(t)
	asn, err := Plan(MEMLLC, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	banks := make([][]int, len(asn))
	llcs := make([][]int, len(asn))
	for i, a := range asn {
		banks[i], llcs[i] = a.BankColors, a.LLCColors
		// Paper: with 16 threads each thread has 2 private LLC colors
		// and 8 private local bank colors.
		if len(a.LLCColors) != 2 {
			t.Errorf("thread %d: %d LLC colors, want 2", i, len(a.LLCColors))
		}
		if len(a.BankColors) != 8 {
			t.Errorf("thread %d: %d bank colors, want 8", i, len(a.BankColors))
		}
		// Locality: every bank color on the thread's local node.
		localNode := int(top.NodeOfCore(topology.CoreID(i)))
		for _, bc := range a.BankColors {
			if m.NodeOfBankColor(bc) != localNode {
				t.Errorf("thread %d (node %d) owns remote bank color %d (node %d)",
					i, localNode, bc, m.NodeOfBankColor(bc))
			}
		}
	}
	disjoint(t, "MEMLLC banks", banks)
	disjoint(t, "MEMLLC llc", llcs)
}

func TestMEMLLCPlan8Threads4Nodes(t *testing.T) {
	m, top := setup(t)
	// Paper 8_threads_4_nodes: cores 0,1,4,5,8,9,12,13.
	cores := []topology.CoreID{0, 1, 4, 5, 8, 9, 12, 13}
	asn, err := Plan(MEMLLC, m, top, cores)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range asn {
		// Paper: for 8 threads, each thread has 4 private LLC colors.
		if len(a.LLCColors) != 4 {
			t.Errorf("thread %d: %d LLC colors, want 4", i, len(a.LLCColors))
		}
		if len(a.BankColors) != 16 { // 32 local colors / 2 threads per node
			t.Errorf("thread %d: %d bank colors, want 16", i, len(a.BankColors))
		}
	}
}

func TestMEMLLCPartSharesLLCWithinGroup(t *testing.T) {
	m, top := setup(t)
	asn, err := Plan(MEMLLCPart, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 4 groups, each with private 8 LLC colors shared by the
	// group's 4 threads.
	for g := 0; g < 4; g++ {
		base := asn[g*4].LLCColors
		if len(base) != 8 {
			t.Errorf("group %d has %d LLC colors, want 8", g, len(base))
		}
		for i := 1; i < 4; i++ {
			got := asn[g*4+i].LLCColors
			if len(got) != len(base) {
				t.Fatalf("group %d thread %d LLC colors differ", g, i)
			}
			for j := range got {
				if got[j] != base[j] {
					t.Errorf("group %d: thread %d LLC colors not shared", g, i)
				}
			}
		}
	}
	// Banks remain private.
	banks := make([][]int, len(asn))
	for i, a := range asn {
		banks[i] = a.BankColors
	}
	disjoint(t, "MEMLLCPart banks", banks)
	// Cross-group LLC colors are disjoint.
	groups := [][]int{asn[0].LLCColors, asn[4].LLCColors, asn[8].LLCColors, asn[12].LLCColors}
	disjoint(t, "MEMLLCPart group llc", groups)
}

func TestLLCMEMPartSharesBanksWithinGroup(t *testing.T) {
	m, top := setup(t)
	asn, err := Plan(LLCMEMPart, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	llcs := make([][]int, len(asn))
	for i, a := range asn {
		llcs[i] = a.LLCColors
		if len(a.BankColors) != m.BanksPerNode() {
			t.Errorf("thread %d owns %d bank colors, want all %d local ones",
				i, len(a.BankColors), m.BanksPerNode())
		}
		localNode := int(top.NodeOfCore(topology.CoreID(i)))
		for _, bc := range a.BankColors {
			if m.NodeOfBankColor(bc) != localNode {
				t.Errorf("thread %d owns remote bank color %d", i, bc)
			}
		}
	}
	disjoint(t, "LLCMEMPart llc", llcs)
}

func TestBPMIsControllerOblivious(t *testing.T) {
	m, top := setup(t)
	asn, err := Plan(BPM, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	banks := make([][]int, len(asn))
	for i, a := range asn {
		banks[i] = a.BankColors
		// Each thread's banks must span multiple nodes (the defect
		// the paper attributes to BPM).
		nodes := map[int]bool{}
		for _, bc := range a.BankColors {
			nodes[m.NodeOfBankColor(bc)] = true
		}
		if len(nodes) < 2 {
			t.Errorf("thread %d: BPM banks on single node %v", i, nodes)
		}
	}
	disjoint(t, "BPM banks", banks)
	llcs := make([][]int, len(asn))
	for i, a := range asn {
		llcs[i] = a.LLCColors
	}
	disjoint(t, "BPM llc", llcs)
}

func TestLLCOnlyAndMEMOnly(t *testing.T) {
	m, top := setup(t)
	asnL, err := Plan(LLCOnly, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range asnL {
		if len(a.BankColors) != 0 {
			t.Errorf("LLCOnly thread %d has bank colors", i)
		}
		if len(a.LLCColors) != 2 {
			t.Errorf("LLCOnly thread %d has %d LLC colors, want 2", i, len(a.LLCColors))
		}
	}
	asnM, err := Plan(MEMOnly, m, top, cores16(t, top))
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range asnM {
		if len(a.LLCColors) != 0 {
			t.Errorf("MEMOnly thread %d has LLC colors", i)
		}
		if len(a.BankColors) != 8 {
			t.Errorf("MEMOnly thread %d has %d bank colors, want 8", i, len(a.BankColors))
		}
	}
}

func TestPlanErrors(t *testing.T) {
	m, top := setup(t)
	if _, err := Plan(MEMLLC, m, top, nil); err == nil {
		t.Error("Plan with no cores succeeded")
	}
	if _, err := Plan(MEMLLC, m, top, []topology.CoreID{99}); err == nil {
		t.Error("Plan with invalid core succeeded")
	}
	// More threads than LLC colors (33 > 32) on a private-LLC policy.
	many := make([]topology.CoreID, 33)
	for i := range many {
		many[i] = topology.CoreID(i % 16)
	}
	if _, err := Plan(MEMLLC, m, top, many); err == nil {
		t.Error("Plan with 33 threads succeeded for private LLC")
	}
	// More threads on a node than local bank colors.
	crowd := make([]topology.CoreID, 33)
	for i := range crowd {
		crowd[i] = 0 // all on core 0 -> 33 threads on node 0 > 32 colors
	}
	if _, err := Plan(MEMOnly, m, top, crowd); err == nil {
		t.Error("Plan with oversubscribed node succeeded for private MEM")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, p := range All() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted junk")
	}
	if Buddy.Colored() || !MEMLLC.Colored() {
		t.Error("Colored() wrong")
	}
}

func TestPlanUnderOverlappedMapping(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.OpteronOverlapped(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{MEMLLC, MEMLLCPart, LLCMEMPart, BPM} {
		t.Run(p.String(), func(t *testing.T) {
			asn, err := Plan(p, m, top, cores16(t, top))
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range asn {
				if len(a.BankColors) == 0 {
					t.Fatalf("thread %d has no bank colors", i)
				}
				// Every bank color must be compatible with at least
				// one of the thread's LLC colors — otherwise the
				// kernel could never serve the combination.
				for _, bc := range a.BankColors {
					ok := false
					for _, lc := range a.LLCColors {
						if m.ComboCompatible(bc, lc) {
							ok = true
							break
						}
					}
					if !ok {
						t.Errorf("thread %d: bank %d incompatible with LLC set %v", i, bc, a.LLCColors)
					}
				}
				// Node locality still holds for the TintMalloc variants.
				if p != BPM {
					local := int(top.NodeOfCore(topology.CoreID(i)))
					for _, bc := range a.BankColors {
						if m.NodeOfBankColor(bc) != local {
							t.Errorf("thread %d owns remote bank %d under %s", i, bc, p)
						}
					}
				}
			}
			// Private-bank policies keep disjointness (banks derive
			// from disjoint LLC chunks under the overlapped mapping).
			if p == MEMLLC {
				banks := make([][]int, len(asn))
				for i, a := range asn {
					banks[i] = a.BankColors
				}
				disjoint(t, "overlapped MEMLLC banks", banks)
			}
		})
	}
}
