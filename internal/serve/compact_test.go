// Tests for the serving layer's compaction daemon: the deterministic
// single-threaded swap protocol first, then a -race hammer with every
// core allocating against the background workers. External package for
// the same reason as differential_test.go — the auditor imports serve.
package serve_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// narrowClient registers a colored client on node with the same
// 8-bank x 8-LLC claim the serve package's own tests use: 256
// preferred frames, so allocating past that forces ladder loans while
// the rest of the machine stays free.
func narrowClient(t *testing.T, s *serve.Server, m *phys.Mapping, top *topology.Topology, node int) *serve.Client {
	t.Helper()
	c, err := s.NewClient(top.CoresOfNode(topology.NodeID(node))[0])
	if err != nil {
		t.Fatal(err)
	}
	banks := m.BankColorsOfNode(node)
	if err := c.SetColors(banks[:8], []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	return c
}

// overCommit allocates n frames on c, far past a narrowClient claim,
// and returns the owned set. The tail of the sequence rides the
// borrow ladder, so loans are guaranteed.
func overCommit(t *testing.T, c *serve.Client, n int) map[phys.Frame]bool {
	t.Helper()
	owned := make(map[phys.Frame]bool, n)
	for i := 0; i < n; i++ {
		f, err := c.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		owned[f] = true
	}
	return owned
}

// freePreferred frees up to n of c's non-loaned frames (for a colored
// client those sit at preferred placement, so each free reparks
// supply the compactor can hand back out) and returns how many.
func freePreferred(t *testing.T, s *serve.Server, c *serve.Client, owned map[phys.Frame]bool, n int) int {
	t.Helper()
	freed := 0
	for f := range owned {
		if freed == n {
			break
		}
		if s.LoanRungMirror(f) != kernel.RungNone {
			continue
		}
		if err := c.Free(f); err != nil {
			t.Fatal(err)
		}
		delete(owned, f)
		freed++
	}
	return freed
}

func drainAll(t *testing.T, c *serve.Client, owned map[phys.Frame]bool) {
	t.Helper()
	for f := range owned {
		if err := c.Free(f); err != nil {
			t.Fatalf("drain free %d: %v", f, err)
		}
	}
}

// A compaction pass migrates loans onto freed-up preferred supply and
// settles them: ownership transfers through the relocator, the ledger
// and rung mirror shrink together, and the auditor stays green.
func TestCompactShardSettlesColoredLoans(t *testing.T) {
	top, m := bootPair(t)
	s, err := serve.New(top, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.CompactionEnabled() {
		t.Fatal("background compaction running with CompactBudget 0")
	}
	c := narrowClient(t, s, m, top, 0)
	owned := overCommit(t, c, 400)

	before := s.Stats()
	if before.Loans == 0 {
		t.Fatal("claim not exhausted: no loans to compact")
	}
	supply := freePreferred(t, s, c, owned, 64)
	if supply != 64 {
		t.Fatalf("freed %d preferred frames, want 64", supply)
	}

	var swaps [][2]phys.Frame
	c.SetRelocator(func(old, new phys.Frame) bool {
		if !owned[old] {
			t.Errorf("relocator offered frame %d the client does not hold", old)
			return false
		}
		delete(owned, old)
		owned[new] = true
		swaps = append(swaps, [2]phys.Frame{old, new})
		return true
	})

	wantMoved := before.Loans
	if supply < wantMoved {
		wantMoved = supply
	}
	res := s.CompactShard(0, 1<<20)
	if res.Moved != wantMoved || res.Declined != 0 {
		t.Fatalf("CompactShard = %+v, want %d moved and none declined", res, wantMoved)
	}
	st := s.Stats()
	if st.Loans != before.Loans-wantMoved {
		t.Fatalf("loans = %d after moving %d of %d", st.Loans, wantMoved, before.Loans)
	}
	if st.CompactMoved != uint64(wantMoved) || st.CompactPasses == 0 {
		t.Fatalf("compact stats = %+v", st)
	}
	for _, sw := range swaps {
		old, fresh := sw[0], sw[1]
		if m.NodeOfFrame(fresh) != 0 {
			t.Errorf("replacement %d on node %d, want home node 0", fresh, m.NodeOfFrame(fresh))
		}
		if !c.OwnsBankColor(m.FrameBankColor(fresh)) || !c.OwnsLLCColor(m.FrameLLCColor(fresh)) {
			t.Errorf("replacement %d (%d,%d) outside the client's claim",
				fresh, m.FrameBankColor(fresh), m.FrameLLCColor(fresh))
		}
		if s.LoanRungMirror(fresh) != kernel.RungNone {
			t.Errorf("replacement %d carries a loan", fresh)
		}
		if s.LoanRungMirror(old) != kernel.RungNone {
			t.Errorf("migrated frame %d still marked loaned", old)
		}
	}
	auditServerClean(t, s)

	drainAll(t, c, owned)
	if st := s.Stats(); st.Loans != 0 {
		t.Fatalf("%d loans after full drain", st.Loans)
	}
	if r := auditServerClean(t, s); r.Mapped != 0 {
		t.Fatalf("%d frames outstanding after full drain", r.Mapped)
	}
}

// Compaction is strictly opt-in and decline-safe: with no relocator
// every candidate is skipped; a declining relocator costs budget but
// changes nothing, and the reserved replacement frame goes back to
// supply instead of leaking.
func TestCompactShardDeclineKeepsLoan(t *testing.T) {
	top, m := bootPair(t)
	s, err := serve.New(top, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := narrowClient(t, s, m, top, 0)
	owned := overCommit(t, c, 400)
	before := s.Stats()
	if before.Loans == 0 {
		t.Fatal("claim not exhausted: no loans to compact")
	}
	freePreferred(t, s, c, owned, 32)

	// No relocator: nothing moves, nothing is charged to the budget.
	res := s.CompactShard(0, 100)
	if res.Moved != 0 || res.Declined != 0 || res.Skipped != before.Loans {
		t.Fatalf("pass without relocator = %+v, want all %d candidates skipped", res, before.Loans)
	}

	declines := 0
	c.SetRelocator(func(old, new phys.Frame) bool {
		declines++
		return false
	})
	res = s.CompactShard(0, 10)
	if res.Moved != 0 || res.Declined != 10 || declines != 10 {
		t.Fatalf("declining pass = %+v (callback ran %d times), want exactly the budget of 10 declined", res, declines)
	}
	st := s.Stats()
	if st.Loans != before.Loans {
		t.Fatalf("loans = %d after declined passes, want %d untouched", st.Loans, before.Loans)
	}
	if st.CompactDeclined != 10 || st.CompactMoved != 0 {
		t.Fatalf("compact stats = %+v", st)
	}

	// Removing the relocator returns the client to opt-out.
	c.SetRelocator(nil)
	if res := s.CompactShard(0, 100); res.Moved != 0 || res.Declined != 0 {
		t.Fatalf("pass after SetRelocator(nil) = %+v", res)
	}

	// The audit's accounting balance proves the reserved-then-declined
	// replacement frames were reclaimed, not leaked.
	if r := auditServerClean(t, s); r.Mapped != uint64(len(owned)) {
		t.Fatalf("outstanding = %d, want %d", r.Mapped, len(owned))
	}
	drainAll(t, c, owned)
	auditServerClean(t, s)
}

// An uncolored client's preferred path is the local zone, so only its
// parked-remote loans repair divergence — borrow-color loans already
// sit on the home node and must be left alone, exactly like the
// kernel daemon's rule.
func TestCompactUncoloredMovesOnlyRemoteLoans(t *testing.T) {
	top, m := bootPair(t)
	s, err := serve.New(top, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Park colored supply on nodes 2 and 3 so the uncolored ladder has
	// both local (borrow-color) and remote rungs to fall onto: each
	// colored client's alloc/free cycle shatters one order-11 block —
	// HALF the node — and reparks. The helpers allocate well under the
	// matching frames a single shatter parks, so the other half of each
	// zone stays uncolored: that remnant is the uncolored client's
	// preferred supply later.
	const home = 2
	for _, node := range []int{2, 3} {
		helper := narrowClient(t, s, m, top, node)
		var fs []phys.Frame
		for i := 0; i < 64; i++ {
			f, err := helper.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			fs = append(fs, f)
		}
		for _, f := range fs {
			if err := helper.Free(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	zoneLeft := 0
	s.VisitShardFree(home, func(head phys.Frame, order int) { zoneLeft += 1 << order })
	if zoneLeft == 0 {
		t.Fatal("helper churn shattered node 2's whole zone; no uncolored supply left")
	}

	u, err := s.NewClient(top.CoresOfNode(home)[1])
	if err != nil {
		t.Fatal(err)
	}
	// Drain every zone, then keep going until the ladder has walked
	// through the local parked pages (borrow-color) and handed out 100
	// remote parked pages from node 3.
	owned := make(map[phys.Frame]bool)
	nRemote := 0
	for nRemote < 100 {
		f, err := u.Alloc()
		if err != nil {
			t.Fatalf("machine exhausted with only %d remote loans", nRemote)
		}
		owned[f] = true
		if s.LoanRungMirror(f) == kernel.RungRemote {
			nRemote++
		}
	}
	rungCount := func() map[kernel.Rung]int {
		n := make(map[kernel.Rung]int)
		for f := phys.Frame(0); uint64(f) < m.Frames(); f++ {
			if r := s.LoanRungMirror(f); r != kernel.RungNone {
				n[r]++
			}
		}
		return n
	}
	before := rungCount()
	if before[kernel.RungBorrowColor] == 0 {
		t.Fatal("no borrow-color loans: the skip rule is not exercised")
	}

	// Free 32 local zone frames: preferred supply for an uncolored
	// client on its home node.
	supply := 0
	for f := range owned {
		if supply == 32 {
			break
		}
		if s.LoanRungMirror(f) != kernel.RungNone || m.NodeOfFrame(f) != home || s.ColoredFrame(f) {
			continue
		}
		if err := u.Free(f); err != nil {
			t.Fatal(err)
		}
		delete(owned, f)
		supply++
	}
	if supply != 32 {
		t.Fatalf("freed %d local zone frames, want 32", supply)
	}

	wasRemote := make(map[phys.Frame]bool)
	for f := range owned {
		if s.LoanRungMirror(f) == kernel.RungRemote {
			wasRemote[f] = true
		}
	}
	var swaps [][2]phys.Frame
	u.SetRelocator(func(old, new phys.Frame) bool {
		if !owned[old] {
			return false
		}
		delete(owned, old)
		owned[new] = true
		swaps = append(swaps, [2]phys.Frame{old, new})
		return true
	})

	// Home shard first: all of its candidates are non-remote loans of
	// an uncolored client, so none may be attempted.
	resHome := s.CompactShard(home, 1<<20)
	if resHome.Moved != 0 || resHome.Declined != 0 || resHome.Skipped < before[kernel.RungBorrowColor] {
		t.Fatalf("home shard pass = %+v, want all %d borrow-color loans skipped",
			resHome, before[kernel.RungBorrowColor])
	}
	moved := 0
	for i := 0; i < s.NumShards(); i++ {
		if i == home {
			continue
		}
		moved += s.CompactShard(i, 1<<20).Moved
	}
	if moved != 32 {
		t.Fatalf("moved %d remote loans, want all 32 the freed zone supply allows", moved)
	}
	for _, sw := range swaps {
		old, fresh := sw[0], sw[1]
		if !wasRemote[old] {
			t.Errorf("compaction migrated non-remote loan frame %d of an uncolored client", old)
		}
		if m.NodeOfFrame(fresh) != home || s.ColoredFrame(fresh) {
			t.Errorf("replacement %d is not a local zone frame", fresh)
		}
	}
	after := rungCount()
	if after[kernel.RungBorrowColor] != before[kernel.RungBorrowColor] {
		t.Errorf("borrow-color loans went %d -> %d; compaction must not touch them",
			before[kernel.RungBorrowColor], after[kernel.RungBorrowColor])
	}
	if after[kernel.RungRemote] != before[kernel.RungRemote]-32 {
		t.Errorf("remote loans went %d -> %d, want exactly 32 settled",
			before[kernel.RungRemote], after[kernel.RungRemote])
	}
	auditServerClean(t, s)

	drainAll(t, u, owned)
	if st := s.Stats(); st.Loans != 0 {
		t.Fatalf("%d loans after full drain", st.Loans)
	}
	auditServerClean(t, s)
}

// The compaction hammer: background per-shard workers with a small
// budget against one allocating/freeing client per core, all with
// live relocators. Every swap races client traffic, so `go test
// -race` checks the two-party protocol's ordering; the final audit
// (ledger vs rung mirror both directions, ownership, accounting
// balance) checks it leaked or double-owned nothing. Run under -race
// in CI via the adaptive-smoke job.
func TestCompactHammerSixteenClients(t *testing.T) {
	top, m := bootPair(t)
	cores := make([]topology.CoreID, top.Cores())
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	asn, err := policy.Plan(policy.MEMLLC, m, top, cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(top, m, serve.Config{CompactBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.CompactionEnabled() {
		t.Fatal("CompactBudget set but no background workers running")
	}

	n := len(cores)
	clients := make([]*serve.Client, n)
	mus := make([]sync.Mutex, n)
	sets := make([]map[phys.Frame]bool, n)
	for i := range cores {
		c, err := s.NewClient(cores[i])
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		sets[i] = make(map[phys.Frame]bool)
		// Half the clients take a deliberately tiny slice of their plan
		// assignment — a handful of preferred frames — so churn drives
		// them up the ladder and keeps the loan ledger busy.
		if i%2 == 0 {
			if err := c.SetColors(asn[i].BankColors[:1], asn[i].LLCColors[:1]); err != nil {
				t.Fatal(err)
			}
		}
		i := i
		c.SetRelocator(func(old, new phys.Frame) bool {
			mus[i].Lock()
			defer mus[i].Unlock()
			if !sets[i][old] {
				// The client freed (or is about to free) old, or has not
				// yet recorded it; decline rather than race the swap.
				return false
			}
			delete(sets[i], old)
			sets[i][new] = true
			return true
		})
	}

	// takeOne removes and returns an arbitrary owned frame.
	takeOne := func(i int) (phys.Frame, bool) {
		mus[i].Lock()
		defer mus[i].Unlock()
		for f := range sets[i] {
			delete(sets[i], f)
			return f, true
		}
		return 0, false
	}

	const ops = 400
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range clients {
		wg.Add(1)
		go func(i int, c *serve.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for op := 0; op < ops; op++ {
				if op%32 == 0 {
					s.KickCompact()
				}
				if rng.Intn(10) < 3 {
					if f, ok := takeOne(i); ok {
						if err := c.Free(f); err != nil {
							errs[i] = err
							return
						}
					}
					continue
				}
				f, err := c.Alloc()
				switch {
				case errors.Is(err, serve.ErrBusy):
					runtime.Gosched()
					continue
				case errors.Is(err, serve.ErrNoMemory):
					if f, ok := takeOne(i); ok {
						if err := c.Free(f); err != nil {
							errs[i] = err
							return
						}
					}
					continue
				case err != nil:
					errs[i] = err
					return
				}
				mus[i].Lock()
				sets[i][f] = true
				mus[i].Unlock()
			}
		}(i, clients[i])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Quiesce the churn, free every non-loaned frame to repark
	// preferred supply, then run one deterministic budgetless sweep so
	// the pass is guaranteed to find work even if the background
	// workers never caught the churn at the right moment.
	for i, c := range clients {
		mus[i].Lock()
		var pref []phys.Frame
		for f := range sets[i] {
			if s.LoanRungMirror(f) == kernel.RungNone {
				pref = append(pref, f)
				delete(sets[i], f)
			}
		}
		mus[i].Unlock()
		for _, f := range pref {
			if err := c.Free(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < s.NumShards(); i++ {
		s.CompactShard(i, 1<<20)
	}
	if st := s.Stats(); st.CompactMoved == 0 {
		t.Errorf("no loans migrated across the whole hammer: %+v", st)
	}

	for i, c := range clients {
		for {
			f, ok := takeOne(i)
			if !ok {
				break
			}
			if err := c.Free(f); err != nil {
				t.Fatalf("drain client %d: %v", i, err)
			}
		}
	}
	s.Close() // stop the workers so the audit walk is quiescent
	r := auditServerClean(t, s)
	if r.Mapped != 0 || r.Loans != 0 {
		t.Fatalf("after full drain: %d outstanding, %d loans", r.Mapped, r.Loans)
	}
}
