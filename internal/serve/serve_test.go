package serve

import (
	"errors"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 64 << 20

func testServer(t *testing.T, cfg Config) (*Server, *phys.Mapping, *topology.Topology) {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, m, top
}

func coloredClient(t *testing.T, s *Server, m *phys.Mapping, top *topology.Topology, node int) *Client {
	t.Helper()
	c, err := s.NewClient(top.CoresOfNode(topology.NodeID(node))[0])
	if err != nil {
		t.Fatal(err)
	}
	// 8 banks x 8 LLC colors x 4 frames per combo = 256 matching
	// frames on the home node; tests that must stay at preferred
	// placement allocate fewer than that.
	banks := m.BankColorsOfNode(node)
	if err := c.SetColors(banks[:8], []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.QueueDepth != 256 || c.BatchMax != 32 || c.Stripes != 16 {
		t.Errorf("defaults = %+v", c)
	}
	if c.HighWater != 192 {
		t.Errorf("HighWater = %d, want 192", c.HighWater)
	}
	// HighWater is clamped into [1, QueueDepth] so the bounded queue
	// send can never block.
	c = Config{QueueDepth: 8, HighWater: 99}.withDefaults()
	if c.HighWater != 8 {
		t.Errorf("clamped HighWater = %d, want 8", c.HighWater)
	}
}

func TestColoredAllocMatchesClaim(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c := coloredClient(t, s, m, top, 0)
	var frames []phys.Frame
	for i := 0; i < 200; i++ {
		f, err := c.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if !c.OwnsBankColor(m.FrameBankColor(f)) {
			t.Fatalf("frame %d has bank color %d outside claim %v", f, m.FrameBankColor(f), c.BankColors())
		}
		if !c.OwnsLLCColor(m.FrameLLCColor(f)) {
			t.Fatalf("frame %d has LLC color %d outside claim %v", f, m.FrameLLCColor(f), c.LLCColors())
		}
		if m.NodeOfFrame(f) != 0 {
			t.Fatalf("frame %d on node %d, want home node 0", f, m.NodeOfFrame(f))
		}
		frames = append(frames, f)
	}
	st := s.Stats()
	if st.ColoredPages != 200 || st.DegradedAllocs() != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Refills == 0 {
		t.Error("no block shatters recorded for colored allocations")
	}
	for _, f := range frames {
		if err := c.Free(f); err != nil {
			t.Fatalf("free %d: %v", f, err)
		}
	}
	if st := s.Stats(); st.Frees != 200 || st.Loans != 0 {
		t.Errorf("after frees: %+v", st)
	}
}

func TestUncoloredAllocStaysLocal(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c, err := s.NewClient(top.CoresOfNode(2)[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if m.NodeOfFrame(f) != 2 {
			t.Fatalf("uncolored frame %d on node %d, want local node 2", f, m.NodeOfFrame(f))
		}
	}
	if st := s.Stats(); st.DefaultAllocs != 100 {
		t.Errorf("DefaultAllocs = %d, want 100", st.DefaultAllocs)
	}
}

// Per-shard determinism: the same single-client request sequence on
// two fresh servers hands out the same frames in the same order.
func TestSingleClientDeterministic(t *testing.T) {
	run := func() []phys.Frame {
		s, m, top := testServer(t, Config{})
		c := coloredClient(t, s, m, top, 1)
		var out []phys.Frame
		for i := 0; i < 300; i++ {
			f, err := c.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
			if i%3 == 0 {
				if err := c.Free(f); err != nil {
					t.Fatal(err)
				}
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("alloc %d differs between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBackpressureErrBusy(t *testing.T) {
	s, m, top := testServer(t, Config{QueueDepth: 8, HighWater: 4})
	c := coloredClient(t, s, m, top, 0)
	// Saturate the home shard's in-flight counter by hand: the next
	// miss must be rejected without touching the queue.
	sh := s.routeShard(c, 0)
	sh.pending.Store(int32(s.cfg.HighWater))
	_, err := c.Alloc()
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Alloc under saturation = %v, want ErrBusy", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	sh.pending.Store(0)
	if _, err := c.Alloc(); err != nil {
		t.Fatalf("Alloc after drain: %v", err)
	}
	// Rejection left the counter balanced: pending returns to zero
	// once the successful request completes.
	if got := sh.pending.Load(); got != 0 {
		t.Errorf("pending = %d after quiesce, want 0", got)
	}
}

func TestFreeErrors(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c := coloredClient(t, s, m, top, 0)
	other, err := s.NewClient(top.CoresOfNode(0)[1])
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Free(f); !errors.Is(err, ErrNotOwner) {
		t.Errorf("foreign free = %v, want ErrNotOwner", err)
	}
	if err := c.Free(f); err != nil {
		t.Fatalf("owner free: %v", err)
	}
	if err := c.Free(f); !errors.Is(err, ErrNotOwner) {
		t.Errorf("double free = %v, want ErrNotOwner", err)
	}
	if err := c.Free(phys.Frame(m.Frames())); err == nil {
		t.Error("out-of-range free succeeded")
	}
}

func TestSetColorsValidation(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c, err := s.NewClient(top.CoresOfNode(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetColors([]int{m.NumBankColors()}, nil); err == nil {
		t.Error("out-of-range bank color accepted")
	}
	if err := c.SetColors(nil, []int{-1}); err == nil {
		t.Error("negative LLC color accepted")
	}
	if err := c.SetColors([]int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetColors([]int{1}, nil); err == nil {
		t.Error("second SetColors accepted")
	}
}

// DisableBorrow is the paper-faithful fail-hard mode: once the home
// shard runs out of claim-matching pages the client gets ErrNoMemory,
// even though other shards still hold free frames.
func TestDisableBorrowFailsHard(t *testing.T) {
	s, m, top := testServer(t, Config{DisableBorrow: true})
	c := coloredClient(t, s, m, top, 0)
	var got int
	for {
		_, err := c.Alloc()
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatalf("alloc %d: %v", got, err)
			}
			break
		}
		got++
		if uint64(got) > m.Frames() {
			t.Fatal("allocated more frames than the machine has")
		}
	}
	if got == 0 {
		t.Fatal("no allocations before exhaustion")
	}
	// The rest of the machine still has memory; only borrowing was off.
	if st := s.Stats(); st.FreeFrames+st.Parked == 0 {
		t.Error("machine fully drained despite DisableBorrow")
	} else if st.DegradedAllocs() != 0 {
		t.Errorf("borrows recorded with DisableBorrow: %+v", st.Borrows)
	}
}

// With borrowing on, the ladder keeps serving past the claim: first
// unassigned local colors, then local uncolored, then remote shards;
// every below-preferred frame carries a loan until freed.
func TestBorrowLadderServesPastClaim(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c := coloredClient(t, s, m, top, 0)
	var frames []phys.Frame
	for {
		f, err := c.Alloc()
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatal(err)
			}
			break
		}
		frames = append(frames, f)
		if uint64(len(frames)) > m.Frames() {
			t.Fatal("allocated more frames than the machine has")
		}
	}
	if uint64(len(frames)) != m.Frames() {
		t.Fatalf("served %d frames before ErrNoMemory, want all %d", len(frames), m.Frames())
	}
	// A single client exercises the borrow-unassigned-color rung (the
	// home node past the claim) and the remote rung (other nodes).
	// RungLocalUncolored needs a bucket whose bank and LLC colors are
	// both claimed by *different* clients, which one client cannot
	// produce — the hammer test covers it.
	st := s.Stats()
	if st.Borrows[kernel.RungBorrowColor] == 0 || st.Borrows[kernel.RungRemote] == 0 {
		t.Errorf("ladder rungs unused: %+v", st.Borrows)
	}
	if st.Loans == 0 {
		t.Error("no loans recorded for degraded allocations")
	}
	for _, f := range frames {
		if err := c.Free(f); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Loans != 0 {
		t.Errorf("loans outstanding after freeing everything: %d", st.Loans)
	}
}

func TestClosedServerRejects(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c := coloredClient(t, s, m, top, 0)
	s.Close()
	if _, err := c.Alloc(); !errors.Is(err, ErrClosed) {
		t.Errorf("Alloc after Close = %v, want ErrClosed", err)
	}
	if _, err := s.NewClient(top.CoresOfNode(0)[2]); !errors.Is(err, ErrClosed) {
		t.Errorf("NewClient after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// The refill worker batches queued misses and amortizes block
// shatters across them: far fewer shatters than refill requests.
func TestBatchedRefillAmortizes(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c := coloredClient(t, s, m, top, 3)
	for i := 0; i < 400; i++ {
		if _, err := c.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Batches == 0 || st.BatchedReqs < st.Batches {
		t.Errorf("batch counters inconsistent: %+v", st)
	}
	if st.RefillFrames < st.Refills {
		t.Errorf("refill counters inconsistent: %+v", st)
	}
	// A shatter parks 2^order frames at once, so misses per shatter
	// amortize well below one-to-one.
	if st.Refills > st.BatchedReqs {
		t.Errorf("refills %d exceed refill requests %d: no amortization", st.Refills, st.BatchedReqs)
	}
}
