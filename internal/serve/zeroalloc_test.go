package serve

import (
	"errors"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Zero-allocation gates for the serving hot paths (DESIGN.md Sec. 14).
// Both tests drive the public Alloc/Free surface to a deterministic
// steady state and then require exactly 0 allocs/op from
// testing.AllocsPerRun, which counts mallocs from every goroutine —
// the shard workers included. The measured loops are repeated manually
// first because AllocsPerRun performs only one warmup run, and
// one-time amortized costs (color-bucket capacity, sudog caches, the
// worker's batch scratch) need a few rounds to settle.
//
// The gates assert shard batch counters too, so each test proves it
// exercised the path it claims to gate: the fast-path test must never
// wake a worker, the refill test must wake one every iteration.

// mustZeroAllocs runs AllocsPerRun and fails unless the loop is
// allocation-free. Under the race detector the instrumentation itself
// allocates, so the gate is skipped (raceEnabled is set by build tag).
func mustZeroAllocs(t *testing.T, name string, loop func()) {
	t.Helper()
	if raceEnabled {
		t.Skipf("%s: AllocsPerRun is meaningless under -race", name)
	}
	// Settle amortized one-time costs before measuring.
	for i := 0; i < 64; i++ {
		loop()
	}
	if n := testing.AllocsPerRun(200, loop); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

// TestZeroAllocColoredFastPath gates the colored fast path: a striped
// color-list pop (Alloc) and the matching repark (Free) must not
// allocate once the lists are warm.
func TestZeroAllocColoredFastPath(t *testing.T) {
	s, m, top := testServer(t, Config{})
	c := coloredClient(t, s, m, top, 0)
	sh := s.shards[0]

	// Warm the color lists: a burst of allocations forces refills to
	// park frames across the claim's buckets, and freeing them leaves
	// every bucket at its high-water capacity.
	warm := make([]phys.Frame, 0, 128)
	for i := 0; i < cap(warm); i++ {
		f, err := c.Alloc()
		if err != nil {
			t.Fatalf("warmup alloc %d: %v", i, err)
		}
		warm = append(warm, f)
	}
	for _, f := range warm {
		if err := c.Free(f); err != nil {
			t.Fatalf("warmup free: %v", err)
		}
	}

	batchesBefore := sh.batches.Load()
	mustZeroAllocs(t, "colored alloc/free", func() {
		f, err := c.Alloc()
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if err := c.Free(f); err != nil {
			t.Fatalf("free: %v", err)
		}
	})
	if d := sh.batches.Load() - batchesBefore; d != 0 {
		t.Fatalf("fast-path loop triggered %d refill batches; lists were not warm", d)
	}
}

// TestZeroAllocBatchedRefill gates the refill round trip: request
// enqueue, worker batch assembly, serveBatch, and delivery must not
// allocate at steady state. Node 0 is drained completely under
// DisableBorrow so the first Alloc of every iteration is a guaranteed
// popMatch miss that rides the full worker path (and comes back
// ErrNoMemory — the zone is dry and borrowing is off); the iteration
// then frees and re-allocates one held frame so the state entering the
// next iteration is identical. No drift, no ladder, no loan-map
// insert.
func TestZeroAllocBatchedRefill(t *testing.T) {
	s, m, top := testServer(t, Config{DisableBorrow: true})
	c, err := s.NewClient(top.CoresOfNode(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	// Claim every bank color of node 0 and every LLC color, so the
	// claim covers all of the node's frames: once the held set below
	// absorbs them, no future shatter can repark a match.
	if err := c.SetColors(m.BankColorsOfNode(0), allLLC(m)); err != nil {
		t.Fatal(err)
	}
	var held []phys.Frame
	for {
		f, err := c.Alloc()
		if errors.Is(err, ErrNoMemory) {
			break
		}
		if err != nil {
			t.Fatalf("drain alloc %d: %v", len(held), err)
		}
		held = append(held, f)
	}
	if len(held) == 0 {
		t.Fatal("drained zero frames")
	}
	f := held[0]

	sh := s.shards[0]
	batchesBefore := sh.batches.Load()
	iters := 0
	mustZeroAllocs(t, "batched refill round trip", func() {
		iters++
		// Guaranteed miss: nothing matching is parked and the zone is
		// dry, so this request crosses the queue, is batched by the
		// worker, fails shatterLocked, and is delivered ErrNoMemory.
		if _, err := c.Alloc(); !errors.Is(err, ErrNoMemory) {
			t.Fatalf("want ErrNoMemory from drained shard, got %v", err)
		}
		// Restore the pre-iteration state through the fast path.
		if err := c.Free(f); err != nil {
			t.Fatalf("free: %v", err)
		}
		got, err := c.Alloc()
		if err != nil {
			t.Fatalf("re-alloc: %v", err)
		}
		f = got
	})
	if d := int(sh.batches.Load() - batchesBefore); d < iters {
		t.Fatalf("only %d refill batches over %d iterations; misses did not reach the worker", d, iters)
	}
}

// allLLC returns every LLC color of the mapping.
func allLLC(m *phys.Mapping) []int {
	out := make([]int, m.NumLLCColors())
	for i := range out {
		out[i] = i
	}
	return out
}
