package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// shard is one NUMA node's slice of the serving layer: the node's
// buddy zone plus the node's columns of the color matrix as
// lock-striped LIFO page stacks. Bank colors are node-disjoint
// (phys.NodeOfBankColor), so no two shards ever hold a bucket for
// the same (bank, LLC) pair and a frame always parks on exactly one
// shard — the disjointness that makes sharding safe.
type shard struct {
	node int
	base phys.Frame // global frame number of the zone's first frame

	zoneMu sync.Mutex
	zone   *buddy.Allocator //tintvet:guardedby zoneMu -- frames are zone-relative; add base

	nLLC    int
	banks   []int // global bank colors owned, sorted
	localOf []int // global bank color -> index in banks, -1 if foreign

	// lists[li*nLLC+lc] is the LIFO stack of parked frames with the
	// shard's li-th bank color and LLC color lc — the node's slice of
	// the paper's color_list matrix. Bucket b is guarded by
	// stripes[b%len(stripes)]; lock order is zoneMu before stripeMu,
	// and no path holds two stripes at once.
	stripes []sync.Mutex
	lists   [][]phys.Frame //tintvet:guardedby stripes
	parkedN atomic.Int64

	// refillQ carries misses to the shard's worker; pending counts
	// requests enqueued or being served and is capped at HighWater
	// (<= QueueDepth), so the queue send below never blocks.
	refillQ chan *refillReq
	pending atomic.Int32

	refills      atomic.Uint64 // block shatters (Algorithm 2 calls)
	refillFrames atomic.Uint64 // frames moved zone -> color lists
	batches      atomic.Uint64 // worker batches served
	batchedReqs  atomic.Uint64 // requests across those batches
	rejected     atomic.Uint64 // ErrBusy rejections

	// Worker-owned scratch, touched only by the shard's single worker
	// goroutine: the batch buffer and serveBatch's served list grow to
	// BatchMax once and are reused so the refill path allocates
	// nothing per batch at steady state.
	wkBatch []*refillReq
	wkDone  []servedReq
}

// servedReq pairs a refill request with the frame that satisfies it,
// held until zoneMu is released (deliveries must not happen under the
// zone lock; see serveBatch).
type servedReq struct {
	req   *refillReq
	frame phys.Frame
}

type refillResult struct {
	frame phys.Frame
	rung  kernel.Rung
	err   error
}

// refillReq is one client miss waiting on the shard worker. state
// arbitrates the shutdown race between delivery and abandonment:
// 0 = pending, 1 = delivered, 2 = abandoned by the requester. The
// common instance is the client's embedded reusable one (Client.req);
// a fresh request is allocated only when the same client misses from
// two goroutines at once or its slot was poisoned by abandonment.
type refillReq struct {
	c     *Client
	seq   uint64
	state atomic.Int32
	resp  chan refillResult // buffered, capacity 1
}

func newShard(node int, base phys.Frame, zone *buddy.Allocator, m *phys.Mapping, cfg Config) (*shard, error) {
	banks := m.BankColorsOfNode(node)
	localOf := make([]int, m.NumBankColors())
	for i := range localOf {
		localOf[i] = -1
	}
	for i, bc := range banks {
		localOf[bc] = i
	}
	return &shard{
		node:    node,
		base:    base,
		zone:    zone,
		nLLC:    m.NumLLCColors(),
		banks:   banks,
		localOf: localOf,
		stripes: make([]sync.Mutex, cfg.Stripes),
		lists:   make([][]phys.Frame, len(banks)*m.NumLLCColors()),
		refillQ: make(chan *refillReq, cfg.QueueDepth),
	}, nil
}

// park pushes a colored frame onto its (bank, LLC) bucket. The frame
// must belong to this shard's node.
func (sh *shard) park(f phys.Frame, s *Server) {
	bc := s.mapping.FrameBankColor(f)
	lc := s.mapping.FrameLLCColor(f)
	b := sh.localOf[bc]*sh.nLLC + lc
	mu := &sh.stripes[b%len(sh.stripes)]
	mu.Lock()
	sh.lists[b] = append(sh.lists[b], f)
	mu.Unlock()
	sh.parkedN.Add(1)
}

// popBucket pops the most recently parked frame of bucket b (the
// kernel's LIFO order, so a lone client sees identical placement to
// the sequential simulator).
func (sh *shard) popBucket(b int) (phys.Frame, bool) {
	mu := &sh.stripes[b%len(sh.stripes)]
	mu.Lock()
	l := sh.lists[b]
	if len(l) == 0 {
		mu.Unlock()
		return 0, false
	}
	f := l[len(l)-1]
	sh.lists[b] = l[:len(l)-1]
	mu.Unlock()
	sh.parkedN.Add(-1)
	return f, true
}

// popMatch pops a parked frame matching the client's color claim,
// rotating the starting combination by seq so successive allocations
// spread across the claim exactly as the kernel's comboCursor does.
func (sh *shard) popMatch(c *Client, seq uint64, s *Server) (phys.Frame, bool) {
	switch {
	case c.usingBank && c.usingLLC:
		banks := c.banksOn[sh.node]
		nb, nl := len(banks), len(c.llcColors)
		if nb == 0 {
			return 0, false
		}
		total := nb * nl
		start := int(seq % uint64(total))
		for i := 0; i < total; i++ {
			k := (start + i) % total
			bc := banks[k/nl]
			lc := c.llcColors[k%nl]
			if !s.mapping.ComboCompatible(bc, lc) {
				continue
			}
			if f, ok := sh.popBucket(sh.localOf[bc]*sh.nLLC + lc); ok {
				return f, true
			}
		}
	case c.usingBank:
		banks := c.banksOn[sh.node]
		if len(banks) == 0 {
			return 0, false
		}
		start := int(seq % uint64(len(banks)))
		for i := range banks {
			li := sh.localOf[banks[(start+i)%len(banks)]]
			ls := int(seq % uint64(sh.nLLC))
			for j := 0; j < sh.nLLC; j++ {
				if f, ok := sh.popBucket(li*sh.nLLC + (ls+j)%sh.nLLC); ok {
					return f, true
				}
			}
		}
	default: // LLC-only claim, served on the client's local shard
		nl := len(c.llcColors)
		ls := int(seq % uint64(nl))
		for i := 0; i < nl; i++ {
			lc := c.llcColors[(ls+i)%nl]
			bs := int(seq % uint64(len(sh.banks)))
			for j := range sh.banks {
				li := (bs + j) % len(sh.banks)
				if f, ok := sh.popBucket(li*sh.nLLC + lc); ok {
					return f, true
				}
			}
		}
	}
	return 0, false
}

// popUnassigned pops a parked frame whose color no client claims —
// the ladder's borrow-a-color rung. Bank-unassigned buckets are
// preferred with the client's own LLC colors first (keeping its
// cache slice), mirroring kernel.popUnassigned.
func (sh *shard) popUnassigned(c *Client, s *Server) (phys.Frame, bool) {
	for li, bc := range sh.banks {
		if s.assignedBank[bc].Load() != 0 {
			continue
		}
		for _, lc := range c.llcColors {
			if f, ok := sh.popBucket(li*sh.nLLC + lc); ok {
				return f, true
			}
		}
		for lc := 0; lc < sh.nLLC; lc++ {
			if f, ok := sh.popBucket(li*sh.nLLC + lc); ok {
				return f, true
			}
		}
	}
	for lc := 0; lc < sh.nLLC; lc++ {
		if s.assignedLLC[lc].Load() != 0 {
			continue
		}
		for li := range sh.banks {
			if f, ok := sh.popBucket(li*sh.nLLC + lc); ok {
				return f, true
			}
		}
	}
	return 0, false
}

// popAnyParked pops any parked frame regardless of color — the
// ladder's uncolored rungs, spending a colored page when the zones
// are dry.
func (sh *shard) popAnyParked(s *Server) (phys.Frame, bool) {
	if sh.parkedN.Load() == 0 {
		return 0, false
	}
	// The outer slice is immutable after newShard; only the buckets
	// mutate, and popBucket takes the stripe for those.
	for b := range sh.lists { //tintvet:ignore guardedby: outer slice immutable after construction; popBucket locks each bucket
		if f, ok := sh.popBucket(b); ok {
			return f, true
		}
	}
	return 0, false
}

// requestRefill posts a miss to the shard worker and waits for the
// outcome. Past the high-water mark it rejects immediately with
// ErrBusy — bounded queues, not unbounded latency.
func (sh *shard) requestRefill(c *Client, seq uint64, s *Server) (phys.Frame, kernel.Rung, error) {
	if sh.pending.Add(1) > int32(s.cfg.HighWater) {
		sh.pending.Add(-1)
		sh.rejected.Add(1)
		return 0, kernel.RungNone, ErrBusy
	}
	// Reuse the client's embedded request — the miss path stays
	// allocation-free. The CAS only fails when the same client misses
	// concurrently from another goroutine (or the slot was poisoned at
	// shutdown); that rare overlap pays for a fresh request.
	req := &c.req
	reused := c.reqBusy.CompareAndSwap(false, true)
	if reused {
		req.seq = seq
		req.state.Store(0)
	} else {
		req = &refillReq{c: c, seq: seq, resp: make(chan refillResult, 1)}
	}
	select {
	case sh.refillQ <- req:
	case <-s.stop:
		sh.pending.Add(-1)
		if reused {
			c.reqBusy.Store(false)
		}
		return 0, kernel.RungNone, ErrClosed
	}
	select {
	case res := <-req.resp:
		if reused {
			c.reqBusy.Store(false)
		}
		return res.frame, res.rung, res.err
	case <-s.stop:
		// Closing. If the worker has not picked the request up yet,
		// abandon it (the worker's drain reclaims any frame it was
		// about to hand us); if it has, take the delivered result.
		// An abandoned reusable slot stays poisoned (reqBusy set):
		// the worker still holds the pointer, and recycling it could
		// let a stale delivery land in a future request's channel.
		if req.state.CompareAndSwap(0, 2) {
			return 0, kernel.RungNone, ErrClosed
		}
		res := <-req.resp
		if reused {
			c.reqBusy.Store(false)
		}
		return res.frame, res.rung, res.err
	}
}

// deliver resolves a request: hand the result to the requester, or —
// if the requester abandoned it at shutdown — return the frame to
// its shard so nothing leaks.
func (r *refillReq) deliver(sh *shard, s *Server, f phys.Frame, rung kernel.Rung, err error) {
	sh.pending.Add(-1)
	if r.state.CompareAndSwap(0, 1) {
		r.resp <- refillResult{frame: f, rung: rung, err: err}
		return
	}
	if err == nil {
		s.reclaim(f)
	}
}

// reclaim returns an unowned frame to its home shard: parked if the
// colored allocator owns it, buddy zone otherwise. The frame is held
// exclusively by the caller, so a buddy rejection can only mean the
// server's ownership bookkeeping is corrupt — fail loudly rather
// than leak the frame silently.
func (s *Server) reclaim(f phys.Frame) {
	sh := s.shards[s.mapping.NodeOfFrame(f)]
	if s.colored[f].Load() {
		sh.park(f, s)
		return
	}
	sh.zoneMu.Lock()
	err := sh.zone.Free(f-sh.base, 0)
	sh.zoneMu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("serve: reclaim of exclusively-held frame %d rejected: %v", f, err))
	}
}

// worker is the shard's refill goroutine: it drains misses in
// batches of up to BatchMax and serves each batch with as few block
// shatters as possible.
func (sh *shard) worker(s *Server) {
	defer s.wg.Done()
	sh.wkBatch = make([]*refillReq, 0, s.cfg.BatchMax)
	for {
		var first *refillReq
		select {
		case first = <-sh.refillQ:
		case <-s.stop:
			sh.drainClosed(s)
			return
		}
		batch := append(sh.wkBatch[:0], first)
		for len(batch) < s.cfg.BatchMax {
			select {
			case r := <-sh.refillQ:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		sh.wkBatch = batch
		sh.batches.Add(1)
		sh.batchedReqs.Add(uint64(len(batch)))
		sh.serveBatch(s, batch)
		// Drop the request pointers so served refills don't pin their
		// clients between batches.
		clear(batch)
	}
}

// drainClosed fails every queued request after Close.
func (sh *shard) drainClosed(s *Server) {
	for {
		select {
		case req := <-sh.refillQ:
			req.deliver(sh, s, 0, kernel.RungNone, ErrClosed)
		default:
			return
		}
	}
}

// serveBatch amortizes refills across a batch: re-try the color
// lists for every waiter (an earlier shatter may have parked their
// color), shatter one more block when someone is still empty-handed,
// and repeat until the batch is served or the zone is dry. Whoever
// the zone cannot serve walks the borrow ladder — after the zone
// lock is dropped, since the ladder locks other shards.
//
// Deliveries happen strictly after zoneMu is released: deliver blocks
// on the response channel's buffer and, when the requester abandoned
// the request at shutdown, re-enters the zone through s.reclaim —
// either one under zoneMu is a deadlock (reclaim relocks zoneMu;
// sync.Mutex is not reentrant).
func (sh *shard) serveBatch(s *Server, batch []*refillReq) {
	waiting := batch
	done := sh.wkDone[:0]
	sh.zoneMu.Lock()
	for len(waiting) > 0 {
		// Compact the unserved requests in place (still ⊆ waiting in
		// order), so the retry loop reuses the batch buffer instead of
		// building a fresh slice per shatter.
		still := 0
		for _, req := range waiting {
			if f, ok := sh.popMatch(req.c, req.seq, s); ok {
				done = append(done, servedReq{req: req, frame: f})
			} else {
				waiting[still] = req
				still++
			}
		}
		waiting = waiting[:still]
		if len(waiting) == 0 || !sh.shatterLocked(s) {
			break
		}
	}
	sh.zoneMu.Unlock()
	sh.wkDone = done
	for _, sv := range done {
		sv.req.deliver(sh, s, sv.frame, kernel.RungNone, nil)
	}
	for _, req := range waiting {
		if f, rung, ok := s.borrow(req.c, sh); ok {
			req.deliver(sh, s, f, rung, nil)
		} else {
			req.deliver(sh, s, 0, kernel.RungNone, ErrNoMemory)
		}
	}
	clear(done)
}

// shatterLocked (zoneMu held) breaks the smallest free block into
// single pages on their color lists — one create_color_list step of
// Algorithm 2, walking orders low to high exactly as the kernel's
// refill loop does. Reports false when the zone is dry.
func (sh *shard) shatterLocked(s *Server) bool {
	for ord := 0; ord <= buddy.MaxOrder; ord++ {
		head, ok := sh.zone.AllocExact(ord)
		if !ok {
			continue
		}
		sh.refills.Add(1)
		n := phys.Frame(1) << uint(ord)
		for f := sh.base + head; f < sh.base+head+n; f++ {
			s.colored[f].Store(true)
			sh.park(f, s)
		}
		sh.refillFrames.Add(uint64(n))
		return true
	}
	return false
}
