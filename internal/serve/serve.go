// Package serve is TintMalloc's concurrent allocation front-end: a
// goroutine-safe serving layer over the same physical-memory model the
// deterministic kernel simulates single-threaded. The paper's kernel
// serves colored order-0 allocations to many pinned threads at once;
// internal/kernel reproduces the *policy* of that path faithfully but
// serializes every call under the discrete-event engine. This package
// supplies the missing serving architecture, in the spirit of
// SpeedMalloc's dedicated allocation-serving core and Vertical Memory
// Management's partitioned per-policy zones (PAPERS.md):
//
//   - The machine's color space is sharded per NUMA node. Each shard
//     owns a disjoint slice of the bank/LLC color matrix — the columns
//     of its node's bank colors, which never overlap another node's —
//     plus its node's buddy zone. Two shards never contend for a
//     frame, a color list, or a free list.
//   - Color lists are lock-striped: the (bank, LLC) buckets of a shard
//     are guarded by a small array of stripe mutexes, so concurrent
//     clients popping different colors do not serialize.
//   - Refills are batched: a client that misses its color lists posts
//     a request to the shard's bounded refill queue; the shard's
//     worker drains the queue in batches and amortizes each
//     create_color_list block shatter (paper Algorithm 2) across every
//     waiting request it can satisfy.
//   - Backpressure is explicit: past a high-water mark of in-flight
//     refill requests the shard rejects with ErrBusy instead of
//     growing an unbounded queue — callers retry or shed load.
//   - Exhaustion composes with the PR-4 degradation ladder: a drained
//     shard borrows in the same rung order the sequential kernel walks
//     (same-node unassigned color, local uncolored, remote), records
//     every below-preferred frame as a loan, and reports ErrNoMemory
//     only when no free frame exists on any shard.
//
// Determinism scope: a single client driving a single shard sees the
// exact LIFO placement the sequential kernel would produce, and each
// shard's zone is mutated only under its own lock in request order —
// so per-shard behaviour is deterministic for a deterministic request
// sequence. Across shards under concurrent load, frame-to-client
// assignment depends on goroutine scheduling and is explicitly NOT
// reproducible run to run; what is preserved — and what the
// differential tests and invariant.AuditServer check 6 verify — is
// the invariant set: plan disjointness, single ownership, color-hash
// correctness, and loan accounting. See DESIGN.md Sec. 11.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Sentinel errors.
var (
	// ErrBusy reports backpressure: the shard's refill queue is past
	// its high-water mark. The allocation was not attempted; callers
	// retry or shed load.
	ErrBusy = errors.New("serve: shard refill queue past high-water mark")
	// ErrNoMemory reports machine-wide exhaustion: the borrow ladder
	// swept every shard's zone and color lists and found nothing.
	ErrNoMemory = errors.New("serve: out of memory on every shard")
	// ErrClosed reports a request against a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrNotOwner reports a free of a frame the client never owned (or
	// already freed) — the concurrent analogue of a double free.
	ErrNotOwner = errors.New("serve: freeing a frame the client does not own")
)

// DefaultQueueDepth is the per-shard refill queue depth a zero
// Config.QueueDepth selects. Exported so command-line front-ends can
// validate high-water marks against the depth that will actually be
// used.
const DefaultQueueDepth = 256

// Config tunes the serving layer. The zero value selects defaults.
type Config struct {
	// QueueDepth bounds each shard's refill request queue (default 256).
	QueueDepth int
	// HighWater is the in-flight refill count above which the shard
	// rejects with ErrBusy (default 3/4 of QueueDepth, clamped to
	// [1, QueueDepth]).
	HighWater int
	// BatchMax bounds how many queued refill requests one worker batch
	// drains and amortizes a block shatter across (default 32).
	BatchMax int
	// Stripes is the number of lock stripes over each shard's color
	// buckets (default 16).
	Stripes int
	// DisableBorrow turns off the cross-shard degradation ladder: a
	// drained shard fails with ErrNoMemory even while other shards
	// have free frames (the paper-faithful fail-hard mode).
	DisableBorrow bool
	// CompactBudget, when positive, starts one background compaction
	// worker per shard; each KickCompact pass attempts up to this many
	// loan migrations per shard (see CompactShard). Zero — the default
	// — starts no workers and leaves every allocation path untouched.
	CompactBudget int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.Stripes <= 0 {
		c.Stripes = 16
	}
	if c.HighWater <= 0 {
		c.HighWater = c.QueueDepth * 3 / 4
	}
	if c.HighWater < 1 {
		c.HighWater = 1
	}
	// In-flight requests are capped at HighWater before they are
	// enqueued, so HighWater <= QueueDepth guarantees the queue send
	// never blocks a client.
	if c.HighWater > c.QueueDepth {
		c.HighWater = c.QueueDepth
	}
	return c
}

// Loan records one frame handed out below preferred placement by the
// borrow ladder: who holds it and which rung it came from.
type Loan struct {
	Client *Client
	Rung   kernel.Rung
}

// Server is the sharded allocation front-end. All methods are safe
// for concurrent use unless noted otherwise (the Visit* accessors
// require quiescence for a coherent snapshot).
type Server struct {
	topo    *topology.Topology
	mapping *phys.Mapping
	cfg     Config
	shards  []*shard
	// owners[f] holds clientID+1 while frame f is handed out, 0
	// otherwise. The single-ownership rule is enforced with CAS.
	owners []atomic.Int32
	// colored[f] marks frames owned by the colored allocator: parked
	// on a color list or handed out through one. Such frames repark on
	// free; uncolored frames rejoin their shard's buddy zone.
	colored []atomic.Bool
	// assignedBank/assignedLLC count how many clients claim each
	// color — the ladder's borrow-unassigned rung consults them.
	assignedBank []atomic.Int32
	assignedLLC  []atomic.Int32

	loanMu sync.Mutex
	loans  map[phys.Frame]Loan //tintvet:guardedby loanMu
	// rungOf[f] is rung+1 while a loan for f exists; 0 otherwise. It
	// keeps the free fast path off loanMu when nothing is loaned.
	rungOf []atomic.Int32

	clientMu sync.Mutex
	clients  []*Client //tintvet:guardedby clientMu

	// compactKick has one buffered kick channel per shard while
	// background compaction is enabled; nil when disabled.
	compactKick []chan struct{}

	closed    atomic.Bool
	closeOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	stats     serverStats
}

// New boots a server over the machine: one shard per NUMA node, each
// owning the node's frame range as a fresh buddy zone and the node's
// slice of the bank-color space. Call Close when done to stop the
// refill workers.
func New(topo *topology.Topology, mapping *phys.Mapping, cfg Config) (*Server, error) {
	if topo.Nodes() != mapping.Nodes() {
		return nil, fmt.Errorf("serve: topology nodes %d != mapping nodes %d",
			topo.Nodes(), mapping.Nodes())
	}
	cfg = cfg.withDefaults()
	nodes := mapping.Nodes()
	framesPerNode := mapping.Frames() / uint64(nodes)
	s := &Server{
		topo:         topo,
		mapping:      mapping,
		cfg:          cfg,
		owners:       make([]atomic.Int32, mapping.Frames()),
		colored:      make([]atomic.Bool, mapping.Frames()),
		assignedBank: make([]atomic.Int32, mapping.NumBankColors()),
		assignedLLC:  make([]atomic.Int32, mapping.NumLLCColors()),
		loans:        make(map[phys.Frame]Loan),
		rungOf:       make([]atomic.Int32, mapping.Frames()),
		stop:         make(chan struct{}),
	}
	for n := 0; n < nodes; n++ {
		zone, err := buddy.New(framesPerNode)
		if err != nil {
			return nil, err
		}
		sh, err := newShard(n, phys.Frame(uint64(n)*framesPerNode), zone, mapping, cfg)
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.worker(s)
	}
	if cfg.CompactBudget > 0 {
		s.compactKick = make([]chan struct{}, len(s.shards))
		for i := range s.shards {
			s.compactKick[i] = make(chan struct{}, 1)
			s.wg.Add(1)
			go s.compactor(i)
		}
	}
	return s, nil
}

// Close stops the refill workers. In-flight refill requests fail with
// ErrClosed; outstanding frames stay recorded so a post-close audit
// still balances. Close is idempotent and safe to call concurrently
// with itself and with in-flight NewClient/Alloc calls: every caller
// returns only after the workers have exited (sync.Once serializes
// the stop-channel close, so a racing second Close can neither panic
// on a double close nor return while workers still run).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.stop)
	})
	s.wg.Wait()
}

// NewClient registers a client pinned to the given core. The client's
// node fallback order (for routing and the borrow ladder) follows the
// same hop-distance rule as the kernel's default policy.
func (s *Server) NewClient(core topology.CoreID) (*Client, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if !s.topo.ValidCore(core) {
		return nil, fmt.Errorf("serve: invalid core %d", core)
	}
	c := &Client{
		srv:       s,
		core:      core,
		nodeOrder: nodeOrderFor(s.topo, core),
	}
	c.req.c = c
	c.req.resp = make(chan refillResult, 1)
	s.clientMu.Lock()
	c.id = len(s.clients)
	s.clients = append(s.clients, c)
	s.clientMu.Unlock()
	return c, nil
}

// nodeOrderFor returns node indices sorted by hop distance from core
// (ties by node id) — the zone fallback order of the default policy.
func nodeOrderFor(topo *topology.Topology, core topology.CoreID) []int {
	n := topo.Nodes()
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(i, j int) bool {
		hi := topo.Hops(core, topology.NodeID(out[i]))
		hj := topo.Hops(core, topology.NodeID(out[j]))
		if hi != hj {
			return hi < hj
		}
		return out[i] < out[j]
	})
	return out
}

// Client is one allocation principal: a pinned thread with an
// optional color claim, the concurrent analogue of the kernel's task
// control block. Alloc and Free are safe to call concurrently with
// other clients' calls (and with the client's own, though a client is
// normally driven by one goroutine). SetColors must complete before
// the first Alloc.
type Client struct {
	srv       *Server
	id        int
	core      topology.CoreID
	nodeOrder []int

	usingBank  bool
	usingLLC   bool
	bankColors []int   // sorted owned bank colors
	llcColors  []int   // sorted owned LLC colors
	banksOn    [][]int // node -> owned bank colors on that node
	colorsSet  bool

	// cursor rotates allocations over the client's color combinations
	// so heap pages spread evenly, exactly as the kernel's comboCursor
	// does; atomic so a client may be driven from several goroutines.
	cursor atomic.Uint64

	// req is the client's reusable refill request with its persistent
	// one-slot response channel, so the miss path allocates nothing.
	// reqBusy guards it: held from enqueue to result, and kept set
	// forever if the request is abandoned at shutdown (the worker may
	// still hold the pointer, so the slot must never be recycled —
	// concurrent same-client misses fall back to a fresh allocation).
	req     refillReq
	reqBusy atomic.Bool

	// relocate is the client's compaction swap callback (see
	// SetRelocator); nil while the client opts out.
	relocate atomic.Pointer[RelocateFunc]
}

// ID returns the client identifier (unique across the server).
func (c *Client) ID() int { return c.id }

// Core returns the core the client is pinned to.
func (c *Client) Core() topology.CoreID { return c.core }

// UsingBank reports whether bank coloring is active.
func (c *Client) UsingBank() bool { return c.usingBank }

// UsingLLC reports whether LLC coloring is active.
func (c *Client) UsingLLC() bool { return c.usingLLC }

// BankColors returns a copy of the owned bank colors.
func (c *Client) BankColors() []int { return append([]int(nil), c.bankColors...) }

// LLCColors returns a copy of the owned LLC colors.
func (c *Client) LLCColors() []int { return append([]int(nil), c.llcColors...) }

// OwnsBankColor reports whether the client claims bank color bc.
func (c *Client) OwnsBankColor(bc int) bool {
	i := sort.SearchInts(c.bankColors, bc)
	return i < len(c.bankColors) && c.bankColors[i] == bc
}

// OwnsLLCColor reports whether the client claims LLC color lc.
func (c *Client) OwnsLLCColor(lc int) bool {
	i := sort.SearchInts(c.llcColors, lc)
	return i < len(c.llcColors) && c.llcColors[i] == lc
}

// SetColors installs the client's color claim — the front-end
// analogue of the paper's mmap color-selection protocol, taken whole
// instead of color by color. Empty slices leave the respective
// dimension uncolored. SetColors may be called at most once, before
// the client's first allocation.
func (c *Client) SetColors(bank, llc []int) error {
	s := c.srv
	if c.colorsSet {
		return fmt.Errorf("serve: client %d colors already set", c.id)
	}
	for _, bc := range bank {
		if bc < 0 || bc >= s.mapping.NumBankColors() {
			return fmt.Errorf("serve: bank color %d out of range [0,%d)", bc, s.mapping.NumBankColors())
		}
	}
	for _, lc := range llc {
		if lc < 0 || lc >= s.mapping.NumLLCColors() {
			return fmt.Errorf("serve: LLC color %d out of range [0,%d)", lc, s.mapping.NumLLCColors())
		}
	}
	c.bankColors = append([]int(nil), bank...)
	sort.Ints(c.bankColors)
	c.llcColors = append([]int(nil), llc...)
	sort.Ints(c.llcColors)
	c.usingBank = len(c.bankColors) > 0
	c.usingLLC = len(c.llcColors) > 0
	c.banksOn = make([][]int, s.mapping.Nodes())
	for _, bc := range c.bankColors {
		n := s.mapping.NodeOfBankColor(bc)
		c.banksOn[n] = append(c.banksOn[n], bc)
	}
	for _, bc := range c.bankColors {
		s.assignedBank[bc].Add(1)
	}
	for _, lc := range c.llcColors {
		s.assignedLLC[lc].Add(1)
	}
	c.colorsSet = true
	return nil
}

// Alloc hands the client one order-0 frame under its color claim: the
// concurrent Algorithm 1. Colored clients hit their shard's striped
// color lists, fall back to a batched refill, and finally walk the
// borrow ladder; uncolored clients take shard zones in node-fallback
// order. Returns ErrBusy under backpressure (nothing was allocated)
// and ErrNoMemory only on machine-wide exhaustion.
func (c *Client) Alloc() (phys.Frame, error) {
	s := c.srv
	if s.closed.Load() {
		return 0, ErrClosed
	}
	if !c.usingBank && !c.usingLLC {
		return s.allocDefault(c)
	}
	return s.allocColored(c)
}

// Free returns a frame obtained from Alloc. Colored frames repark on
// their shard's color list; uncolored frames rejoin the shard's buddy
// zone. Freeing settles any loan on the frame.
func (c *Client) Free(f phys.Frame) error {
	s := c.srv
	if !s.mapping.ValidFrame(f) {
		return fmt.Errorf("serve: frame %d out of range", f)
	}
	if !s.owners[f].CompareAndSwap(int32(c.id)+1, 0) {
		return ErrNotOwner
	}
	if s.rungOf[f].Swap(0) != 0 {
		s.loanMu.Lock()
		delete(s.loans, f)
		s.loanMu.Unlock()
	}
	s.stats.frees.Add(1)
	sh := s.shards[s.mapping.NodeOfFrame(f)]
	if s.colored[f].Load() {
		sh.park(f, s)
		return nil
	}
	sh.zoneMu.Lock()
	err := sh.zone.Free(f-sh.base, 0)
	sh.zoneMu.Unlock()
	return err
}

// Realloc exchanges one held frame for a fresh allocation under the
// same color claim. The new frame is allocated first, so an Alloc
// failure (ErrBusy, ErrNoMemory) leaves the old frame owned and the
// caller's bookkeeping untouched; only then is old freed. If that
// free fails (ErrNotOwner — the caller never held old) the fresh
// frame is released again before the error is returned.
func (c *Client) Realloc(old phys.Frame) (phys.Frame, error) {
	f, err := c.Alloc()
	if err != nil {
		return 0, err
	}
	if err := c.Free(old); err != nil {
		if ferr := c.Free(f); ferr != nil {
			return 0, fmt.Errorf("serve: realloc unwind: %v (after %w)", ferr, err)
		}
		return 0, err
	}
	return f, nil
}

// allocColored serves a colored client: striped-list fast path on the
// routed shard, then a batched refill request, whose worker walks the
// borrow ladder if the shard is drained.
func (s *Server) allocColored(c *Client) (phys.Frame, error) {
	seq := c.cursor.Add(1) - 1
	sh := s.routeShard(c, seq)
	if f, ok := sh.popMatch(c, seq, s); ok {
		s.finishAlloc(c, f, kernel.RungNone)
		s.stats.coloredAllocs.Add(1)
		return f, nil
	}
	f, rung, err := sh.requestRefill(c, seq, s)
	if err != nil {
		return 0, err
	}
	s.finishAlloc(c, f, rung)
	if rung == kernel.RungNone {
		s.stats.coloredAllocs.Add(1)
	}
	return f, nil
}

// routeShard picks the shard serving this allocation: bank-colored
// clients follow the rotating color cursor to the shard owning the
// chosen color; LLC-only and uncolored clients stay on their local
// node's shard.
func (s *Server) routeShard(c *Client, seq uint64) *shard {
	if c.usingBank {
		bc := c.bankColors[int(seq%uint64(len(c.bankColors)))]
		return s.shards[s.mapping.NodeOfBankColor(bc)]
	}
	return s.shards[c.nodeOrder[0]]
}

// allocDefault serves an uncolored client: shard zones in node
// fallback order (the default policy), then — zones dry — parked
// pages via the ladder, spending a colored page on an uncolored task.
func (s *Server) allocDefault(c *Client) (phys.Frame, error) {
	for _, n := range c.nodeOrder {
		sh := s.shards[n]
		sh.zoneMu.Lock()
		f, err := sh.zone.Alloc(0)
		sh.zoneMu.Unlock()
		if err == nil {
			s.finishAlloc(c, sh.base+f, kernel.RungNone)
			s.stats.defaultAllocs.Add(1)
			return sh.base + f, nil
		}
	}
	if s.cfg.DisableBorrow {
		return 0, ErrNoMemory
	}
	if f, ok := s.shards[c.nodeOrder[0]].popAnyParked(s); ok {
		s.finishAlloc(c, f, kernel.RungBorrowColor)
		return f, nil
	}
	for _, n := range c.nodeOrder[1:] {
		if f, ok := s.shards[n].popAnyParked(s); ok {
			s.finishAlloc(c, f, kernel.RungRemote)
			return f, nil
		}
	}
	return 0, ErrNoMemory
}

// finishAlloc records ownership (and, for ladder frames, the loan)
// for a frame about to be handed to c.
func (s *Server) finishAlloc(c *Client, f phys.Frame, rung kernel.Rung) {
	s.owners[f].Store(int32(c.id) + 1)
	s.stats.allocs.Add(1)
	if rung == kernel.RungNone {
		return
	}
	s.stats.borrows[rung].Add(1)
	s.rungOf[f].Store(int32(rung) + 1)
	s.loanMu.Lock()
	s.loans[f] = Loan{Client: c, Rung: rung}
	s.loanMu.Unlock()
}

// borrow walks the degradation ladder for a colored client whose home
// shard came up empty, mirroring the sequential kernel's rung order
// (DESIGN.md Sec. 10) across shards: same-shard unassigned color,
// local uncolored zone frame, local parked page, then remote shards —
// zone frames first, parked pages second. Callers must not hold any
// shard's zone lock (the ladder takes them one at a time).
func (s *Server) borrow(c *Client, home *shard) (phys.Frame, kernel.Rung, bool) {
	if s.cfg.DisableBorrow {
		return 0, kernel.RungNone, false
	}
	if f, ok := home.popUnassigned(c, s); ok {
		return f, kernel.RungBorrowColor, true
	}
	home.zoneMu.Lock()
	f, err := home.zone.Alloc(0)
	home.zoneMu.Unlock()
	if err == nil {
		return home.base + f, kernel.RungLocalUncolored, true
	}
	if f, ok := home.popAnyParked(s); ok {
		return f, kernel.RungLocalUncolored, true
	}
	for _, n := range c.nodeOrder {
		if n == home.node {
			continue
		}
		sh := s.shards[n]
		sh.zoneMu.Lock()
		f, err := sh.zone.Alloc(0)
		sh.zoneMu.Unlock()
		if err == nil {
			return sh.base + f, kernel.RungRemote, true
		}
		if f, ok := sh.popAnyParked(s); ok {
			return f, kernel.RungRemote, true
		}
	}
	return 0, kernel.RungNone, false
}
