package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/ring"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Offload is the allocation-core experiment front-end (EXPERIMENTS.md):
// instead of every application goroutine running the allocator inline,
// each NUMA node dedicates one simulated core — a goroutine — to
// allocation, in the style of SpeedMalloc's dedicated serving core
// (PAPERS.md). Clients ship alloc/free requests to their node's
// allocation core over private SPSC rings and spin-wait for the reply,
// so the allocator's locks, color lists and refill machinery are only
// ever touched by the per-node cores.
//
// The point of the experiment is the comparison, not a guaranteed win:
// offloading trades lock contention between N clients for ring hops
// and the serialization of one core per node. `tintbench -exp offload`
// records both sides under identical workloads in BENCH_serve.json.
type Offload struct {
	srv       *Server
	cfg       OffloadConfig
	cores     []*allocCore
	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// OffloadConfig tunes the offload front-end. The zero value selects
// defaults.
type OffloadConfig struct {
	// RingDepth is the capacity of each client's request and response
	// rings; it must be a power of two (default 64). The synchronous
	// client protocol needs only one slot in steady state; the headroom
	// is for future pipelined clients.
	RingDepth int
}

func (c OffloadConfig) withDefaults() OffloadConfig {
	if c.RingDepth == 0 {
		c.RingDepth = 64
	}
	return c
}

const (
	offAlloc = uint8(iota)
	offFree
)

// offReq is one request slot: the operation and, for frees, its frame.
type offReq struct {
	op    uint8
	frame phys.Frame
}

// offResp is one reply slot.
type offResp struct {
	frame phys.Frame
	err   error
}

// allocCore is one node's allocation core: the set of client lanes it
// polls. lanes holds an immutable snapshot slice swapped on client
// registration, so the core's poll loop never takes a lock.
type allocCore struct {
	node  int
	mu    sync.Mutex // serializes registration (snapshot swap)
	lanes atomic.Pointer[[]*OffloadClient]
}

// OffloadClient is a client whose allocator calls execute on its
// node's allocation core. A client must be driven by one goroutine at
// a time (it is the single producer of its request ring).
type OffloadClient struct {
	o     *Offload
	inner *Client
	req   *ring.SPSC[offReq]
	resp  *ring.SPSC[offResp]
}

// NewOffload wraps a server with per-node allocation cores. Close the
// Offload (which stops the cores) before closing the server.
func NewOffload(s *Server, cfg OffloadConfig) (*Offload, error) {
	cfg = cfg.withDefaults()
	if cfg.RingDepth <= 0 || cfg.RingDepth&(cfg.RingDepth-1) != 0 {
		return nil, fmt.Errorf("serve: offload ring depth %d is not a positive power of two", cfg.RingDepth)
	}
	o := &Offload{srv: s, cfg: cfg}
	for n := 0; n < s.mapping.Nodes(); n++ {
		ac := &allocCore{node: n}
		empty := make([]*OffloadClient, 0)
		ac.lanes.Store(&empty)
		o.cores = append(o.cores, ac)
		o.wg.Add(1)
		go o.coreLoop(ac)
	}
	return o, nil
}

// Server returns the wrapped server (for stats and auditing).
func (o *Offload) Server() *Server { return o.srv }

// Close stops the allocation cores. It does not close the underlying
// server. Callers must quiesce their clients first: an operation still
// in flight at Close time may be abandoned with ErrClosed while the
// core completes it, leaking the client's frame until server teardown.
// Close is idempotent and safe for concurrent use; every caller
// returns only after the cores have exited.
func (o *Offload) Close() {
	o.closeOnce.Do(func() {
		o.closed.Store(true)
	})
	o.wg.Wait()
}

// NewClient registers an offloaded client pinned to core, wired by
// SPSC rings to the allocation core of the core's node.
func (o *Offload) NewClient(core topology.CoreID) (*OffloadClient, error) {
	if o.closed.Load() {
		return nil, ErrClosed
	}
	inner, err := o.srv.NewClient(core)
	if err != nil {
		return nil, err
	}
	req, err := ring.New[offReq](o.cfg.RingDepth)
	if err != nil {
		return nil, err
	}
	resp, err := ring.New[offResp](o.cfg.RingDepth)
	if err != nil {
		return nil, err
	}
	c := &OffloadClient{o: o, inner: inner, req: req, resp: resp}
	ac := o.cores[o.srv.topo.NodeOfCore(core)]
	ac.mu.Lock()
	old := *ac.lanes.Load()
	lanes := make([]*OffloadClient, len(old), len(old)+1)
	copy(lanes, old)
	lanes = append(lanes, c)
	ac.lanes.Store(&lanes)
	ac.mu.Unlock()
	return c, nil
}

// Inner returns the wrapped inline client (for color introspection).
func (c *OffloadClient) Inner() *Client { return c.inner }

// SetColors installs the color claim; like Client.SetColors it must
// complete before the first allocation.
func (c *OffloadClient) SetColors(bank, llc []int) error {
	return c.inner.SetColors(bank, llc)
}

// Alloc requests one frame from the node's allocation core.
func (c *OffloadClient) Alloc() (phys.Frame, error) {
	return c.do(offReq{op: offAlloc})
}

// Free returns a frame through the node's allocation core.
func (c *OffloadClient) Free(f phys.Frame) error {
	_, err := c.do(offReq{op: offFree, frame: f})
	return err
}

// do ships one request and spin-waits for its reply. The protocol is
// synchronous — at most one outstanding request per client — so the
// pushes below cannot find a full ring in steady state; the spin loops
// exist only for robustness.
func (c *OffloadClient) do(r offReq) (phys.Frame, error) {
	if c.o.closed.Load() {
		return 0, ErrClosed
	}
	for !c.req.TryPush(r) {
		if c.o.closed.Load() {
			return 0, ErrClosed
		}
		runtime.Gosched()
	}
	for {
		if res, ok := c.resp.TryPop(); ok {
			return res.frame, res.err
		}
		if c.o.closed.Load() {
			// The core observed closed and exited — but it may have
			// replied between our pop and the closed check, so drain
			// once more before abandoning.
			if res, ok := c.resp.TryPop(); ok {
				return res.frame, res.err
			}
			return 0, ErrClosed
		}
		runtime.Gosched()
	}
}

// coreLoop is one allocation core: poll every lane's request ring,
// execute requests against the lane's inline client, and push the
// reply. Each inner client is driven only by this goroutine, so the
// zero-allocation refill path (the client's reusable request slot)
// is preserved under offload.
func (o *Offload) coreLoop(ac *allocCore) {
	defer o.wg.Done()
	for {
		if o.closed.Load() {
			return
		}
		worked := false
		for _, c := range *ac.lanes.Load() {
			for {
				r, ok := c.req.TryPop()
				if !ok {
					break
				}
				worked = true
				var res offResp
				switch r.op {
				case offAlloc:
					res.frame, res.err = c.inner.Alloc()
				case offFree:
					res.err = c.inner.Free(r.frame)
				}
				for !c.resp.TryPush(res) {
					// Unreachable under the synchronous protocol
					// (response capacity matches request capacity).
					runtime.Gosched()
				}
			}
		}
		if !worked {
			// Idle core: yield so client goroutines (and on a small
			// host, the other cores) get the CPU.
			runtime.Gosched()
		}
	}
}
