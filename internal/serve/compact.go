package serve

import (
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// The serving layer's compaction daemon: the concurrent analogue of
// the kernel's Task.CompactStep. Loans accumulate whenever the borrow
// ladder hands a client a below-preferred frame; once the pressure
// that forced the loan passes (frees repark colored frames, zones
// refill), the daemon migrates loaned frames back onto preferred
// placement so the machine's coloring converges instead of decaying.
//
// The server cannot move a page by itself — the frame's contents and
// the client's mapping to it live outside the allocator. Relocation is
// therefore a two-party protocol: the compactor allocates a preferred
// replacement frame, offers an (old, new) swap to the client's
// registered relocator callback, and only on acceptance transfers
// ownership and settles the loan. A client with no relocator simply
// keeps its loans — compaction is strictly opt-in.

// RelocateFunc is a client's page-relocation callback. It is called
// by a compaction worker with a loaned frame the client holds and a
// preferred-placement replacement the compactor has exclusively
// reserved. An implementation that returns true must have copied the
// page contents, atomically switched every use of old over to new,
// and must never Free(old) afterwards — from that return on, new is
// owned by the client (freeable as usual) and old belongs to the
// server again. Returning false declines the swap: the client keeps
// old, must not touch new, and the loan stays on the ledger. The
// callback runs on a compaction goroutine, concurrently with the
// client's own Alloc/Free calls; its internal synchronization is the
// client's responsibility.
type RelocateFunc func(old, new phys.Frame) bool

// SetRelocator installs the client's relocation callback (nil removes
// it). Safe to call at any time; compaction passes observe the latest
// value.
func (c *Client) SetRelocator(fn RelocateFunc) {
	if fn == nil {
		c.relocate.Store(nil)
		return
	}
	c.relocate.Store(&fn)
}

// CompactResult reports one compaction pass.
type CompactResult struct {
	Moved    int // loans migrated to preferred placement and settled
	Declined int // swaps the owning client's relocator refused
	Skipped  int // loans not attempted (no relocator, no supply, or placement already preferred-equivalent)
}

// CompactShard runs one budgeted compaction pass over the loans whose
// frames live on shard i, in ascending frame order. Budget counts
// attempted swaps (moved + declined). It is safe to call concurrently
// with client traffic; it is also what the per-shard background
// workers run when kicked.
func (s *Server) CompactShard(i int, budget int) CompactResult {
	var res CompactResult
	if budget <= 0 || i < 0 || i >= len(s.shards) {
		return res
	}
	node := s.shards[i].node
	s.loanMu.Lock()
	cands := make([]phys.Frame, 0, len(s.loans))
	for f := range s.loans {
		if s.mapping.NodeOfFrame(f) == node {
			cands = append(cands, f)
		}
	}
	s.loanMu.Unlock()
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	s.stats.compactPasses.Add(1)
	for _, old := range cands {
		if budget <= 0 {
			break
		}
		// Re-read: the loan may have settled (client freed the frame)
		// since the snapshot.
		s.loanMu.Lock()
		l, live := s.loans[old]
		s.loanMu.Unlock()
		if !live {
			continue
		}
		c := l.Client
		fnp := c.relocate.Load()
		if fnp == nil {
			res.Skipped++
			continue
		}
		// Same placement rule as the kernel daemon: an uncolored
		// client's preferred path hands out local frames, so only its
		// parked-remote loans are worth a copy.
		if !c.usingBank && !c.usingLLC && l.Rung != kernel.RungRemote {
			res.Skipped++
			continue
		}
		fresh, ok := s.allocPreferredFor(c)
		if !ok {
			// No preferred supply for this client right now; later loans
			// may belong to other clients, so keep scanning.
			res.Skipped++
			continue
		}
		// Hand the replacement to the client before the callback so the
		// client may Free(new) the instant its relocator commits.
		s.owners[fresh].Store(int32(c.id) + 1)
		if !(*fnp)(old, fresh) {
			res.Declined++
			s.stats.compactDeclined.Add(1)
			budget--
			// Take the replacement back; if the client freed it despite
			// declining (protocol breach), Free already reclaimed it.
			if s.owners[fresh].CompareAndSwap(int32(c.id)+1, 0) {
				s.reclaim(fresh)
			}
			continue
		}
		// The client adopted new. Take old back: after this CAS the
		// client can no longer Free(old), so the loan entry and mirror
		// can be settled race-free before the frame re-enters supply.
		if s.owners[old].CompareAndSwap(int32(c.id)+1, 0) {
			if s.rungOf[old].Swap(0) != 0 {
				s.loanMu.Lock()
				delete(s.loans, old)
				s.loanMu.Unlock()
			}
			s.reclaim(old)
		}
		res.Moved++
		s.stats.compactMoved.Add(1)
		budget--
	}
	return res
}

// allocPreferredFor reserves one preferred-placement frame for c
// without walking the borrow ladder: parked frames matching a colored
// client's claim, or a local zone frame for an uncolored one. The
// compactor never shatters blocks — refill pressure belongs to the
// allocation path; compaction only recycles supply that frees have
// already parked.
func (s *Server) allocPreferredFor(c *Client) (phys.Frame, bool) {
	if !c.usingBank && !c.usingLLC {
		sh := s.shards[c.nodeOrder[0]]
		sh.zoneMu.Lock()
		f, err := sh.zone.Alloc(0)
		sh.zoneMu.Unlock()
		if err != nil {
			return 0, false
		}
		return sh.base + f, true
	}
	seq := c.cursor.Add(1) - 1
	if c.usingBank {
		// Try every shard holding one of the client's bank colors,
		// starting from the cursor-routed one.
		start := s.routeShard(c, seq)
		if f, ok := start.popMatch(c, seq, s); ok {
			return f, true
		}
		for _, sh := range s.shards {
			if sh == start || len(c.banksOn[sh.node]) == 0 {
				continue
			}
			if f, ok := sh.popMatch(c, seq, s); ok {
				return f, true
			}
		}
		return 0, false
	}
	return s.shards[c.nodeOrder[0]].popMatch(c, seq, s)
}

// compactor is the per-shard background worker: each kick runs
// budgeted passes until a pass stops making progress, then sleeps
// until the next kick. Started only when Config.CompactBudget > 0.
func (s *Server) compactor(i int) {
	defer s.wg.Done()
	for {
		select {
		case <-s.compactKick[i]:
		case <-s.stop:
			return
		}
		for {
			res := s.CompactShard(i, s.cfg.CompactBudget)
			if res.Moved == 0 {
				break
			}
			select {
			case <-s.stop:
				return
			default:
			}
		}
	}
}

// KickCompact nudges every shard's compaction worker to run a pass.
// Non-blocking: a worker already kicked (or mid-pass) coalesces the
// signal. No-op when compaction is disabled (Config.CompactBudget 0).
func (s *Server) KickCompact() {
	for _, ch := range s.compactKick {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// CompactionEnabled reports whether background compaction workers are
// running.
func (s *Server) CompactionEnabled() bool { return s.compactKick != nil }

// LoanRungMirror returns the rung the flat loan mirror holds for f
// (RungNone when unloaned) — the serve-side analogue of the kernel
// mirror the auditor's check 7 walks against the ledger.
func (s *Server) LoanRungMirror(f phys.Frame) kernel.Rung {
	v := s.rungOf[f].Load()
	if v == 0 {
		return kernel.RungNone
	}
	return kernel.Rung(v - 1)
}
