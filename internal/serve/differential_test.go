// Differential and concurrency tests for the serving layer. These
// live in an external test package so they can drive the server the
// way callers do — through policy plans and the invariant auditor,
// which itself imports serve — without an import cycle.
package serve_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const diffMem = 64 << 20

func bootPair(t *testing.T) (*topology.Topology, *phys.Mapping) {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(diffMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	return top, m
}

func auditServerClean(t *testing.T, s *serve.Server) *invariant.Report {
	t.Helper()
	r := invariant.AuditServer(s)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Unaccounted != 0 {
		t.Fatalf("%d unaccounted frames on the server", r.Unaccounted)
	}
	if r.BuddyFree+r.Parked+r.Mapped != r.Frames {
		t.Fatalf("frame accounting does not balance: free %d + parked %d + outstanding %d != %d",
			r.BuddyFree, r.Parked, r.Mapped, r.Frames)
	}
	return r
}

// TestDifferentialKernelVsServe drives the sequential kernel and the
// sharded server through the same MEM+LLC color plan — one principal
// per node, well under each claim's capacity — and proves both
// satisfy the same rules: the plan itself is disjoint, every
// allocation lands at preferred placement (no loans on either side),
// and both auditors come back clean, the server's via the cross-shard
// check 6. The server side allocates from one goroutine per client,
// so `go test -race` checks the interleaving the kernel never has.
func TestDifferentialKernelVsServe(t *testing.T) {
	top, m := bootPair(t)
	cores := []topology.CoreID{0, 4, 8, 12}
	const perTask = 300 // MEMLLC claim capacity here is 1024 frames each

	asn, err := policy.Plan(policy.MEMLLC, m, top, cores)
	if err != nil {
		t.Fatal(err)
	}
	if err := invariant.CheckPlan(m, policy.MEMLLC, asn); err != nil {
		t.Fatal(err)
	}

	// Sequential reference: the kernel under the discrete-event
	// contract, one task per core, round-robin allocation.
	k, err := kernel.New(top, m, kernel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	proc := k.NewProcess()
	tasks := make([]*kernel.Task, len(cores))
	for i, core := range cores {
		task, err := proc.NewTask(core)
		if err != nil {
			t.Fatal(err)
		}
		if err := policy.Apply(task, asn[i]); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	for n := 0; n < perTask; n++ {
		for _, task := range tasks {
			if _, _, err := k.AllocPages(task, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	kr := invariant.Audit(k)
	if err := kr.Err(); err != nil {
		t.Fatal(err)
	}
	kst := k.Stats()
	var kDegraded uint64
	for _, d := range kst.DegradedAllocs {
		kDegraded += d
	}
	if kst.ColoredPages != uint64(perTask*len(cores)) || kDegraded != 0 {
		t.Fatalf("kernel stats = %+v, want %d colored and no degradation", kst, perTask*len(cores))
	}

	// Concurrent subject: the same plan on the sharded server, all
	// clients allocating at once.
	fresh, err := phys.DefaultSeparable(diffMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(top, fresh, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	clients := make([]*serve.Client, len(cores))
	for i, core := range cores {
		c, err := s.NewClient(core)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.SetColors(asn[i].BankColors, asn[i].LLCColors); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *serve.Client) {
			defer wg.Done()
			for n := 0; n < perTask; n++ {
				if _, err := c.Alloc(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	sr := auditServerClean(t, s)
	if sr.Mapped != uint64(perTask*len(cores)) {
		t.Fatalf("server outstanding = %d, want %d", sr.Mapped, perTask*len(cores))
	}
	// Same rule as the kernel run: within claim capacity, concurrency
	// must not push anyone below preferred placement.
	sst := s.Stats()
	if sst.ColoredPages != uint64(perTask*len(cores)) || sst.DegradedAllocs() != 0 {
		t.Fatalf("server stats = %+v, want %d colored and no degradation", sst, perTask*len(cores))
	}
	if sr.Loans != 0 || kr.Loans != 0 {
		t.Fatalf("loans under capacity: kernel %d, server %d", kr.Loans, sr.Loans)
	}
}

// hammer churns the server from every core at once: colored clients
// under a 16-way MEM+LLC plan plus allocation/free churn, tolerating
// backpressure, then a full drain and audit. Run under -race in CI.
func hammer(t *testing.T, cfg serve.Config, opsPerClient int) {
	t.Helper()
	top, m := bootPair(t)
	cores := make([]topology.CoreID, top.Cores())
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	asn, err := policy.Plan(policy.MEMLLC, m, top, cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	errs := make([]error, len(cores))
	for i := range cores {
		c, err := s.NewClient(cores[i])
		if err != nil {
			t.Fatal(err)
		}
		// Half the clients take the plan's colors, half stay
		// uncolored, so colored, default and ladder paths all run
		// concurrently.
		if i%2 == 0 {
			if err := c.SetColors(asn[i].BankColors, asn[i].LLCColors); err != nil {
				t.Fatal(err)
			}
		}
		wg.Add(1)
		go func(i int, c *serve.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			var owned []phys.Frame
			for op := 0; op < opsPerClient; op++ {
				if len(owned) > 0 && rng.Intn(10) < 3 {
					j := rng.Intn(len(owned))
					if err := c.Free(owned[j]); err != nil {
						errs[i] = err
						return
					}
					owned[j] = owned[len(owned)-1]
					owned = owned[:len(owned)-1]
					continue
				}
				f, err := c.Alloc()
				switch {
				case errors.Is(err, serve.ErrBusy):
					runtime.Gosched() // backpressure: shed and retry later
					continue
				case errors.Is(err, serve.ErrNoMemory):
					// Machine-wide exhaustion: release something and
					// keep going.
					if len(owned) == 0 {
						continue
					}
					if err := c.Free(owned[len(owned)-1]); err != nil {
						errs[i] = err
						return
					}
					owned = owned[:len(owned)-1]
					continue
				case err != nil:
					errs[i] = err
					return
				}
				owned = append(owned, f)
			}
			for _, f := range owned {
				if err := c.Free(f); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	r := auditServerClean(t, s)
	if r.Mapped != 0 {
		t.Fatalf("%d frames still outstanding after full drain", r.Mapped)
	}
	if r.Loans != 0 {
		t.Fatalf("%d loans outstanding after full drain", r.Loans)
	}
}

func TestHammerDefaults(t *testing.T) {
	hammer(t, serve.Config{}, 400)
}

// Tiny queues force the ErrBusy path and single-request batches while
// the same invariants must hold.
func TestHammerTinyQueues(t *testing.T) {
	hammer(t, serve.Config{QueueDepth: 4, HighWater: 2, BatchMax: 2, Stripes: 2}, 250)
}
