//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so exact-zero allocation gates skip
// themselves when it is.
const raceEnabled = true
