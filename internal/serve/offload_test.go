package serve

import (
	"errors"
	"sync"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

func testOffload(t *testing.T, cfg Config, ocfg OffloadConfig) (*Offload, *phys.Mapping, *topology.Topology) {
	t.Helper()
	s, m, top := testServer(t, cfg)
	o, err := NewOffload(s, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	// Registered before testServer's s.Close cleanup, so it runs
	// first: cores stop before the server goes down.
	t.Cleanup(o.Close)
	return o, m, top
}

func TestOffloadConfigValidation(t *testing.T) {
	s, _, _ := testServer(t, Config{})
	if _, err := NewOffload(s, OffloadConfig{RingDepth: 3}); err == nil {
		t.Error("RingDepth 3 accepted")
	}
	o, err := NewOffload(s, OffloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if o.cfg.RingDepth != 64 {
		t.Errorf("default RingDepth = %d, want 64", o.cfg.RingDepth)
	}
}

// TestOffloadMatchesClaim checks the offloaded path enforces the same
// placement contract as the inline client: every frame matches the
// claim and lands on the home node.
func TestOffloadMatchesClaim(t *testing.T) {
	o, m, top := testOffload(t, Config{}, OffloadConfig{})
	c, err := o.NewClient(top.CoresOfNode(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	banks := m.BankColorsOfNode(0)
	if err := c.SetColors(banks[:8], []int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	var frames []phys.Frame
	for i := 0; i < 200; i++ {
		f, err := c.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if !c.Inner().OwnsBankColor(m.FrameBankColor(f)) {
			t.Fatalf("frame %d bank color %d outside claim", f, m.FrameBankColor(f))
		}
		if !c.Inner().OwnsLLCColor(m.FrameLLCColor(f)) {
			t.Fatalf("frame %d LLC color %d outside claim", f, m.FrameLLCColor(f))
		}
		if m.NodeOfFrame(f) != 0 {
			t.Fatalf("frame %d on node %d, want 0", f, m.NodeOfFrame(f))
		}
		frames = append(frames, f)
	}
	for _, f := range frames {
		if err := c.Free(f); err != nil {
			t.Fatalf("free: %v", err)
		}
	}
	st := o.Server().Stats()
	if st.Allocs != 200 || st.Frees != 200 {
		t.Fatalf("stats = %d allocs / %d frees, want 200/200", st.Allocs, st.Frees)
	}
}

// TestOffloadConcurrentClients churns offloaded clients on every node
// at once — under -race this exercises the ring handoffs, the lane
// snapshot swap, and the per-core serialization.
func TestOffloadConcurrentClients(t *testing.T) {
	o, m, top := testOffload(t, Config{}, OffloadConfig{})
	const perNode = 2
	var clients []*OffloadClient
	for n := 0; n < top.Nodes(); n++ {
		banks := m.BankColorsOfNode(n)
		for i := 0; i < perNode; i++ {
			c, err := o.NewClient(top.CoresOfNode(topology.NodeID(n))[i])
			if err != nil {
				t.Fatal(err)
			}
			if err := c.SetColors(banks[i*4:i*4+4], []int{i, i + 1}); err != nil {
				t.Fatal(err)
			}
			clients = append(clients, c)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, len(clients))
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *OffloadClient) {
			defer wg.Done()
			var owned []phys.Frame
			for op := 0; op < 300; op++ {
				if op%3 == 2 && len(owned) > 0 {
					if err := c.Free(owned[len(owned)-1]); err != nil {
						errs[i] = err
						return
					}
					owned = owned[:len(owned)-1]
					continue
				}
				f, err := c.Alloc()
				if err != nil {
					errs[i] = err
					return
				}
				owned = append(owned, f)
			}
			for _, f := range owned {
				if err := c.Free(f); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	st := o.Server().Stats()
	if st.Allocs != st.Frees {
		t.Fatalf("leak: %d allocs vs %d frees", st.Allocs, st.Frees)
	}
}

// TestOffloadClosed checks post-Close behavior: requests fail with
// ErrClosed instead of hanging.
func TestOffloadClosed(t *testing.T) {
	s, _, top := testServer(t, Config{})
	o, err := NewOffload(s, OffloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := o.NewClient(top.CoresOfNode(0)[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetColors(nil, []int{0}); err != nil {
		t.Fatal(err)
	}
	o.Close()
	o.Close() // idempotent
	if _, err := c.Alloc(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc after Close = %v, want ErrClosed", err)
	}
	if _, err := o.NewClient(top.CoresOfNode(0)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewClient after Close = %v, want ErrClosed", err)
	}
}
