package serve

import (
	"sort"
	"sync/atomic"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

type serverStats struct {
	allocs, frees                atomic.Uint64
	coloredAllocs, defaultAllocs atomic.Uint64
	borrows                      [kernel.NumRungs]atomic.Uint64
	compactPasses                atomic.Uint64
	compactMoved                 atomic.Uint64
	compactDeclined              atomic.Uint64
}

// Stats is a point-in-time snapshot of serving counters. Counters
// are read individually without a global lock, so a snapshot taken
// under load is approximate; quiesce first for exact numbers.
type Stats struct {
	Allocs        uint64 // successful allocations
	Frees         uint64 // successful frees
	ColoredPages  uint64 // colored allocations at preferred placement
	DefaultAllocs uint64 // uncolored allocations
	Borrows       [kernel.NumRungs]uint64
	Loans         int    // currently outstanding below-preferred frames
	Refills       uint64 // block shatters across all shards
	RefillFrames  uint64 // frames moved zone -> color lists
	Batches       uint64 // refill worker batches
	BatchedReqs   uint64 // refill requests across those batches
	Rejected      uint64 // ErrBusy rejections (backpressure)
	Parked        uint64 // frames currently on color lists
	FreeFrames    uint64 // frames currently in buddy zones

	CompactPasses   uint64 // compaction passes across all shards
	CompactMoved    uint64 // loans migrated home and settled
	CompactDeclined uint64 // swaps refused by client relocators
}

// DegradedAllocs sums the borrow rungs.
func (st Stats) DegradedAllocs() uint64 {
	var n uint64
	for _, b := range st.Borrows {
		n += b
	}
	return n
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Allocs:          s.stats.allocs.Load(),
		Frees:           s.stats.frees.Load(),
		ColoredPages:    s.stats.coloredAllocs.Load(),
		DefaultAllocs:   s.stats.defaultAllocs.Load(),
		CompactPasses:   s.stats.compactPasses.Load(),
		CompactMoved:    s.stats.compactMoved.Load(),
		CompactDeclined: s.stats.compactDeclined.Load(),
	}
	for i := range st.Borrows {
		st.Borrows[i] = s.stats.borrows[i].Load()
	}
	s.loanMu.Lock()
	st.Loans = len(s.loans)
	s.loanMu.Unlock()
	for _, sh := range s.shards {
		st.Refills += sh.refills.Load()
		st.RefillFrames += sh.refillFrames.Load()
		st.Batches += sh.batches.Load()
		st.BatchedReqs += sh.batchedReqs.Load()
		st.Rejected += sh.rejected.Load()
		st.Parked += uint64(sh.parkedN.Load())
		sh.zoneMu.Lock()
		st.FreeFrames += sh.zone.FreeFrames()
		sh.zoneMu.Unlock()
	}
	return st
}

// The accessors below exist for invariant.AuditServer and tests.
// They take the relevant locks bucket by bucket, so a coherent
// machine-wide snapshot requires the server to be quiescent (no
// concurrent Alloc/Free) — the same contract as kernel.Visit*.

// Mapping returns the physical mapping the server runs over.
func (s *Server) Mapping() *phys.Mapping { return s.mapping }

// Topology returns the machine topology.
func (s *Server) Topology() *topology.Topology { return s.topo }

// NumShards returns the shard count (one per NUMA node).
func (s *Server) NumShards() int { return len(s.shards) }

// ShardNode returns the NUMA node shard i serves.
func (s *Server) ShardNode(i int) int { return s.shards[i].node }

// ShardBankColors returns a copy of the bank colors shard i owns.
func (s *Server) ShardBankColors(i int) []int {
	return append([]int(nil), s.shards[i].banks...)
}

// VisitShardFree visits shard i's buddy free blocks with
// zone-relative heads translated to global frame numbers.
func (s *Server) VisitShardFree(i int, fn func(head phys.Frame, order int)) {
	sh := s.shards[i]
	sh.zoneMu.Lock()
	sh.zone.VisitFreeBlocks(func(head phys.Frame, order int) {
		fn(sh.base+head, order)
	})
	sh.zoneMu.Unlock()
}

// VisitShardParked visits every frame parked on shard i's color
// lists in deterministic bucket-then-LIFO order, with the bucket's
// global bank color and LLC color.
func (s *Server) VisitShardParked(i int, fn func(bc, lc int, f phys.Frame)) {
	sh := s.shards[i]
	// The outer slice is immutable after newShard; each bucket is read
	// under its stripe below.
	for b := range sh.lists { //tintvet:ignore guardedby: outer slice immutable after construction; buckets copied under their stripe
		bc := sh.banks[b/sh.nLLC]
		lc := b % sh.nLLC
		mu := &sh.stripes[b%len(sh.stripes)]
		mu.Lock()
		frames := append([]phys.Frame(nil), sh.lists[b]...)
		mu.Unlock()
		for _, f := range frames {
			fn(bc, lc, f)
		}
	}
}

// VisitOutstanding visits every handed-out frame in ascending frame
// order with the owning client's ID.
func (s *Server) VisitOutstanding(fn func(f phys.Frame, clientID int)) {
	for f := range s.owners {
		if o := s.owners[f].Load(); o != 0 {
			fn(phys.Frame(f), int(o)-1)
		}
	}
}

// ColoredFrame reports whether the colored allocator owns frame f
// (parked on a color list, or handed out through one).
func (s *Server) ColoredFrame(f phys.Frame) bool { return s.colored[f].Load() }

// VisitLoans visits outstanding loans in ascending frame order.
func (s *Server) VisitLoans(fn func(f phys.Frame, clientID int, rung kernel.Rung)) {
	s.loanMu.Lock()
	frames := make([]phys.Frame, 0, len(s.loans))
	for f := range s.loans {
		frames = append(frames, f)
	}
	loans := make(map[phys.Frame]Loan, len(s.loans))
	for f, l := range s.loans {
		loans[f] = l
	}
	s.loanMu.Unlock()
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for _, f := range frames {
		l := loans[f]
		fn(f, l.Client.id, l.Rung)
	}
}

// Clients returns the registered clients in registration (ID) order.
func (s *Server) Clients() []*Client {
	s.clientMu.Lock()
	out := append([]*Client(nil), s.clients...)
	s.clientMu.Unlock()
	return out
}
