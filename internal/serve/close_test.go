package serve

import (
	"errors"
	"sync"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

func newCloseTestServer(t *testing.T) *Server {
	t.Helper()
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(64<<20, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(topo, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCloseIdempotent pins the repeated-shutdown contract: every
// Close call — first, second, concurrent — returns only after the
// refill workers have exited, and none panics on the already-closed
// stop channel.
func TestCloseIdempotent(t *testing.T) {
	s := newCloseTestServer(t)
	s.Close()
	s.Close() // regression: second close used to double-close s.stop
	if _, err := s.NewClient(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewClient after close: %v, want ErrClosed", err)
	}
}

// TestConcurrentClose races many Close calls against live allocation
// traffic. Run under -race this is the satellite's real assertion:
// no double channel close, no send on closed channel from a refill
// enqueue that lost the race, and every closer blocks until workers
// are gone.
func TestConcurrentClose(t *testing.T) {
	for round := 0; round < 8; round++ {
		s := newCloseTestServer(t)
		c, err := s.NewClient(0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 200; j++ {
					f, err := c.Alloc()
					if err != nil {
						if errors.Is(err, ErrClosed) {
							return
						}
						continue // ErrBusy/ErrNoMemory: keep pressing
					}
					if err := c.Free(f); err != nil && errors.Is(err, ErrClosed) {
						return
					}
				}
			}()
		}
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Close()
				// After any Close returns, the server must already be
				// refusing new work: the workers are joined.
				if _, err := s.NewClient(1); !errors.Is(err, ErrClosed) {
					t.Errorf("NewClient after close: %v, want ErrClosed", err)
				}
			}()
		}
		wg.Wait()
	}
}
