package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

func TestFrameRoundTripEveryType(t *testing.T) {
	payloads := map[MsgType][]byte{
		MsgError:          appendError(nil, serve.ErrBusy),
		MsgHello:          appendHello(nil, Hello{Version: 1, Core: 3, Bank: []int{1, 2}, LLC: []int{7}}),
		MsgHelloAck:       appendU32(nil, 42),
		MsgGoodbye:        nil,
		MsgGoodbyeAck:     nil,
		MsgAlloc:          nil,
		MsgAllocReply:     appendFrameID(nil, 99),
		MsgFree:           appendFrameID(nil, 99),
		MsgFreeReply:      nil,
		MsgRealloc:        appendFrameID(nil, 12),
		MsgReallocReply:   appendFrameID(nil, 13),
		MsgStats:          nil,
		MsgStatsReply:     appendStats(nil, serve.Stats{Allocs: 5}, DaemonStats{Sessions: 2}),
		MsgTaskSpawn:      appendSpec(nil, sched.Spec{Ops: 10}),
		MsgTaskSpawnReply: appendU32(nil, 0),
		MsgTaskRun:        appendConfig(nil, sched.Config{Policy: sched.RR, Quantum: 8}),
		MsgTaskRunReply:   appendResult(nil, &sched.Result{Ticks: 1}),
		MsgTaskStat:       appendU32(nil, 0),
		MsgTaskStatReply:  appendTaskResult(nil, sched.TaskResult{State: sched.StateExit}),
	}
	for typ := MsgError; typ < msgTypeEnd; typ++ {
		payload, ok := payloads[typ]
		if !ok {
			t.Fatalf("no round-trip coverage for %v", typ)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			t.Fatalf("%v: write: %v", typ, err)
		}
		gotType, gotPayload, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("%v: read: %v", typ, err)
		}
		if gotType != typ || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("%v: round-trip mismatch: %v %x vs %x", typ, gotType, gotPayload, payload)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{Version: 1, Core: 0},
		{Version: 1, Core: 15, Bank: []int{0, 1, 2, 3}, LLC: []int{9, 10}},
		{Version: 7, Core: 2, LLC: []int{5}},
	} {
		got, err := parseHello(appendHello(nil, h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("hello round-trip: got %+v want %+v", got, h)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	st := serve.Stats{
		Allocs: 101, Frees: 90, ColoredPages: 70, DefaultAllocs: 31,
		Loans: 3, Refills: 9, RefillFrames: 288, Batches: 9, BatchedReqs: 12,
		Rejected: 4, Parked: 200, FreeFrames: 5000,
		CompactPasses: 2, CompactMoved: 1, CompactDeclined: 1,
	}
	st.Borrows[0], st.Borrows[1], st.Borrows[2] = 5, 6, 7
	ds := DaemonStats{Sessions: 9, Active: 4, Reclaimed: 17, ReclaimFailed: 1, TasksSpawned: 30, TaskRuns: 2}
	gotSt, gotDs, err := parseStats(appendStats(nil, st, ds))
	if err != nil {
		t.Fatal(err)
	}
	if gotSt != st || gotDs != ds {
		t.Fatalf("stats round-trip:\n%+v\n%+v", gotSt, gotDs)
	}
}

func TestSpecConfigResultRoundTrip(t *testing.T) {
	sp := sched.Spec{Arrival: 3, Ops: 500, BlockEvery: 25, BlockFor: 2, Seed: -12345}
	gotSp, err := parseSpec(appendSpec(nil, sp))
	if err != nil || gotSp != sp {
		t.Fatalf("spec round-trip: %+v %v", gotSp, err)
	}
	cfg := sched.Config{Policy: sched.VRR, Quantum: 16, Cores: 4, MaxTicks: 1 << 20}
	gotCfg, err := parseConfig(appendConfig(nil, cfg))
	if err != nil || gotCfg != cfg {
		t.Fatalf("config round-trip: %+v %v", gotCfg, err)
	}
	res := &sched.Result{
		Ticks: 40, Dispatches: 12, Preemptions: 3, Blocks: 2, Ops: 900, IdleCores: 5,
		Tasks: []sched.TaskResult{
			{State: sched.StateExit, Completed: 450, Dispatches: 6, Preemptions: 2, Blocks: 1},
			{State: sched.StateExit, Completed: 450, Dispatches: 6, Preemptions: 1, Blocks: 1, Err: "drain: boom"},
		},
	}
	gotRes, err := parseResult(appendResult(nil, res))
	if err != nil || !reflect.DeepEqual(gotRes, res) {
		t.Fatalf("result round-trip: %+v %v", gotRes, err)
	}
	tr := res.Tasks[1]
	gotTr, err := parseTaskResult(appendTaskResult(nil, tr))
	if err != nil || gotTr != tr {
		t.Fatalf("task result round-trip: %+v %v", gotTr, err)
	}
}

func TestErrorCodesMapToSentinels(t *testing.T) {
	for _, want := range []error{serve.ErrBusy, serve.ErrNoMemory, serve.ErrClosed, serve.ErrNotOwner} {
		got := parseError(appendError(nil, want))
		if !errors.Is(got, want) {
			t.Fatalf("sentinel %v did not survive the wire: %v", want, got)
		}
	}
	got := parseError(appendError(nil, errors.New("weird internal state")))
	var re *RemoteError
	if !errors.As(got, &re) || !strings.Contains(re.Msg, "weird") {
		t.Fatalf("internal error should come back as RemoteError, got %v", got)
	}
	inv := parseError(appendError(nil, errors.New("wire: invalid request: bad colors")))
	if inv == nil {
		t.Fatal("invalid error vanished")
	}
}

// TestGoldenFrameBytes pins the on-the-wire encoding: a change here
// is a protocol version bump, not a refactor.
func TestGoldenFrameBytes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgHello, appendHello(nil, Hello{Version: 1, Core: 5, Bank: []int{2, 3}, LLC: []int{1}})); err != nil {
		t.Fatal(err)
	}
	const wantHello = "00000011" + "02" + "0001" + "00000005" + "0002" + "0002" + "0003" + "0001" + "0001"
	if got := hex.EncodeToString(buf.Bytes()); got != wantHello {
		t.Fatalf("hello frame bytes drifted:\n got %s\nwant %s", got, wantHello)
	}
	buf.Reset()
	if err := WriteFrame(&buf, MsgAllocReply, appendFrameID(nil, 0x1234)); err != nil {
		t.Fatal(err)
	}
	const wantAlloc = "00000009" + "07" + "0000000000001234"
	if got := hex.EncodeToString(buf.Bytes()); got != wantAlloc {
		t.Fatalf("alloc reply bytes drifted:\n got %s\nwant %s", got, wantAlloc)
	}
}

func TestReadFrameRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty frame":      {0, 0, 0, 0},
		"oversized length": {0xff, 0xff, 0xff, 0xff, 1},
		"unknown type":     {0, 0, 0, 1, 0xee},
		"zero type":        {0, 0, 0, 1, 0x00},
		"truncated body":   {0, 0, 0, 9, byte(MsgAllocReply), 1, 2},
		"truncated header": {0, 0},
	}
	for name, data := range cases {
		_, _, err := ReadFrame(bytes.NewReader(data), nil)
		if !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: got %v, want ErrProtocol", name, err)
		}
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil), nil); err != io.EOF {
		t.Errorf("clean close: got %v, want io.EOF", err)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	if err := WriteFrame(io.Discard, MsgStats, make([]byte, MaxFrameLen)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("got %v, want ErrProtocol", err)
	}
}
