package wire

import (
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
)

// NetBackend is a sched.Backend that admits every task as its own
// wire session against a daemon: Open dials, says Hello with the
// task's dispatch-time color claim, and Close says Goodbye. Running
// sched.Run over a NetBackend therefore drives the daemon's data
// plane through the exact operation sequence the in-process
// sched.NewServeBackend drives directly — the two sides of the
// client↔daemon differential test.
type NetBackend struct {
	Network string // "unix" or "tcp"
	Addr    string
	Assign  sched.AssignFunc
}

func (b *NetBackend) Open(task, core int) (sched.Allocator, error) {
	cid, bank, llc := b.Assign(task, core)
	c, err := Dial(b.Network, b.Addr)
	if err != nil {
		return nil, err
	}
	if err := c.Hello(cid, bank, llc); err != nil {
		_ = c.Close() //tintvet:ignore errdrop: the hello error is the one worth reporting
		return nil, err
	}
	return netAlloc{c}, nil
}

// netAlloc adapts a wire.Client to the sched.Allocator surface; Close
// is the Goodbye handshake, so a drained task's exit leaves nothing
// behind on the daemon.
type netAlloc struct{ c *Client }

func (a netAlloc) Alloc() (phys.Frame, error)                 { return a.c.Alloc() }
func (a netAlloc) Realloc(old phys.Frame) (phys.Frame, error) { return a.c.Realloc(old) }
func (a netAlloc) Free(f phys.Frame) error                    { return a.c.Free(f) }
func (a netAlloc) Close() error                               { return a.c.Goodbye() }
