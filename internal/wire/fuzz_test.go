package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzWireFrame throws arbitrary bytes at the frame decoder and the
// per-message parsers: any input must either decode or fail with
// io.EOF / ErrProtocol — never panic, never allocate absurdly, never
// loop forever.
func FuzzWireFrame(f *testing.F) {
	// Valid frames of each shape.
	var seed bytes.Buffer
	_ = WriteFrame(&seed, MsgHello, appendHello(nil, Hello{Version: 1, Core: 3, Bank: []int{1}, LLC: []int{2}}))
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	_ = WriteFrame(&seed, MsgAllocReply, appendFrameID(nil, 7))
	f.Add(append([]byte(nil), seed.Bytes()...))
	// Truncated: a length promising more than the body delivers.
	f.Add([]byte{0, 0, 0, 50, byte(MsgAlloc), 1, 2, 3})
	// Oversized: length beyond MaxFrameLen.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgAlloc)})
	// Garbage.
	f.Add([]byte{0, 0, 0, 3, 0xee, 0xbe, 0xef})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			typ, payload, err := ReadFrame(r, buf)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrProtocol) {
					t.Fatalf("ReadFrame: %v is neither io.EOF nor ErrProtocol", err)
				}
				return
			}
			if cap(payload) > cap(buf) {
				buf = payload[:cap(payload)]
			}
			// Every parser must tolerate every payload.
			switch typ {
			case MsgError:
				_ = parseError(payload)
			case MsgHello:
				_, _ = parseHello(payload)
			case MsgHelloAck, MsgTaskSpawnReply, MsgTaskStat:
				_, _ = parseU32(payload, typ.String())
			case MsgAllocReply, MsgFree, MsgRealloc, MsgReallocReply:
				_, _ = parseFrameID(payload, typ.String())
			case MsgStatsReply:
				_, _, _ = parseStats(payload)
			case MsgTaskSpawn:
				_, _ = parseSpec(payload)
			case MsgTaskRun:
				_, _ = parseConfig(payload)
			case MsgTaskRunReply:
				_, _ = parseResult(payload)
			case MsgTaskStatReply:
				_, _ = parseTaskResult(payload)
			}
		}
	})
}

// TestDaemonSurvivesGarbage feeds malformed streams to a live daemon:
// each bad connection must die with a protocol error (or a plain
// close), and the daemon must keep serving well-formed sessions.
func TestDaemonSurvivesGarbage(t *testing.T) {
	d, addr := newTestDaemon(t)
	garbage := [][]byte{
		{0, 0, 0, 0},                           // empty frame
		{0xff, 0xff, 0xff, 0xff, 0xee},         // oversized length
		{0, 0, 0, 1, 0xee},                     // unknown type
		{0, 0, 0, 40, byte(MsgAlloc), 1, 2, 3}, // truncated body
		{0, 0, 0, 9, byte(MsgFree), 1},         // free before hello, short payload
		bytes.Repeat([]byte{0xa5}, 256),        // pure noise
		{0, 0, 0, 2, byte(MsgHello), 0x01},     // hello payload truncated
	}
	for i, g := range garbage {
		conn, err := net.Dial("unix", addr)
		if err != nil {
			t.Fatalf("garbage %d: dial: %v", i, err)
		}
		if _, err := conn.Write(g); err != nil {
			t.Fatalf("garbage %d: write: %v", i, err)
		}
		// Half-close so the daemon sees EOF after the garbage; it
		// replies with an error frame and/or drops the connection —
		// either way the read must terminate (deadline = hang guard).
		if err := conn.(*net.UnixConn).CloseWrite(); err != nil {
			t.Fatalf("garbage %d: close write: %v", i, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		_, _ = io.Copy(io.Discard, conn)
		if err := conn.Close(); err != nil {
			t.Fatalf("garbage %d: close: %v", i, err)
		}
	}
	// The daemon must still serve a clean session.
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	f, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Free(f); err != nil {
		t.Fatal(err)
	}
	if err := c.Goodbye(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("post-garbage audit: %v", err)
	}
}
