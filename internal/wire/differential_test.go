package wire

import (
	"net"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 64 << 20

func testPlatform(t testing.TB) (*topology.Topology, *phys.Mapping) {
	t.Helper()
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	return topo, m
}

// newTestDaemon boots a daemon on a unix socket and tears it down
// with the test. The returned daemon is also closed by the test
// cleanup if the test didn't close it itself (Close is idempotent).
func newTestDaemon(t testing.TB) (*Daemon, string) {
	t.Helper()
	topo, m := testPlatform(t)
	d, err := NewDaemon(topo, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := filepath.Join(t.TempDir(), "tintserved.sock")
	l, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(l) }()
	t.Cleanup(func() {
		if err := d.Close(); err != nil {
			t.Errorf("daemon close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("daemon serve: %v", err)
		}
	})
	return d, addr
}

// differentialSpecs is the seeded scenario both sides run: colored
// and uncolored tasks, staggered arrivals, scripted blocks.
func differentialSpecs() []sched.Spec {
	return []sched.Spec{
		{Ops: 400},
		{Ops: 300, BlockEvery: 50, BlockFor: 2},
		{Arrival: 2, Ops: 350, BlockEvery: 80, BlockFor: 1},
		{Ops: 250}, // task 3: uncolored under the daemon's stride
		{Arrival: 5, Ops: 300},
		{Ops: 200, BlockEvery: 30, BlockFor: 3},
	}
}

// runReference runs the scenario against a fresh in-process server
// with the daemon's exact dispatch-time assignment, returning the
// scheduler accounting and the post-quiesce serving counters.
func runReference(t *testing.T, cfg sched.Config, specs []sched.Spec) (*sched.Result, serve.Stats) {
	t.Helper()
	topo, m := testPlatform(t)
	s, err := serve.New(topo, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	assign, err := sched.PlanAssign(m, topo, UncoloredEvery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Run(cfg, specs, sched.NewServeBackend(s, assign))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	return res, s.Stats()
}

// TestDifferentialServeVsWire is the client↔daemon differential: the
// same seeded scenario driven once against the in-process server and
// once over the wire (every task its own OS-level connection) must
// produce byte-identical scheduler results and byte-identical
// allocation/degradation counters, under all three policies.
func TestDifferentialServeVsWire(t *testing.T) {
	for _, pol := range sched.Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := sched.Config{Policy: pol, Quantum: 16, Cores: 2}
			specs := differentialSpecs()
			wantRes, wantStats := runReference(t, cfg, specs)

			topo, m := testPlatform(t)
			d, err := NewDaemon(topo, m, serve.Config{})
			if err != nil {
				t.Fatal(err)
			}
			addr := filepath.Join(t.TempDir(), "d.sock")
			l, err := net.Listen("unix", addr)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() { done <- d.Serve(l) }()

			assign, err := sched.PlanAssign(m, topo, UncoloredEvery)
			if err != nil {
				t.Fatal(err)
			}
			gotRes, err := sched.Run(cfg, specs, &NetBackend{Network: "unix", Addr: addr, Assign: assign})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("daemon close/audit: %v", err)
			}
			if err := <-done; err != nil {
				t.Fatalf("serve loop: %v", err)
			}
			gotStats := d.Server().Stats()

			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("scheduler results diverge:\nwire: %+v\nref:  %+v", gotRes, wantRes)
			}
			if gotStats != wantStats {
				t.Errorf("serving counters diverge:\nwire: %+v\nref:  %+v", gotStats, wantStats)
			}
			ds := d.Stats()
			if ds.Reclaimed != 0 || ds.ReclaimFailed != 0 {
				t.Errorf("clean goodbyes should leave nothing to reclaim: %+v", ds)
			}
		})
	}
}

// TestDifferentialTaskPlane drives the same batch through the
// daemon's own scheduler (TaskSpawn/TaskRun) and compares against a
// local run: the wire-shipped Result and the serving counters must
// match byte for byte.
func TestDifferentialTaskPlane(t *testing.T) {
	for _, pol := range sched.Policies() {
		t.Run(pol.String(), func(t *testing.T) {
			cfg := sched.Config{Policy: pol, Quantum: 16, Cores: 2}
			specs := differentialSpecs()
			wantRes, wantStats := runReference(t, cfg, specs)

			d, addr := newTestDaemon(t)
			c, err := Dial("unix", addr)
			if err != nil {
				t.Fatal(err)
			}
			for i, sp := range specs {
				id, err := c.TaskSpawn(sp)
				if err != nil {
					t.Fatal(err)
				}
				if id != uint32(i) {
					t.Fatalf("task id %d, want %d", id, i)
				}
			}
			gotRes, err := c.TaskRun(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("task-plane results diverge:\nwire: %+v\nref:  %+v", gotRes, wantRes)
			}
			for i := range specs {
				tr, err := c.TaskStat(uint32(i))
				if err != nil {
					t.Fatal(err)
				}
				if tr != gotRes.Tasks[i] {
					t.Errorf("task %d stat %+v != run result %+v", i, tr, gotRes.Tasks[i])
				}
			}
			if err := c.Goodbye(); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("daemon close/audit: %v", err)
			}
			if gotStats := d.Server().Stats(); gotStats != wantStats {
				t.Errorf("task-plane counters diverge:\nwire: %+v\nref:  %+v", gotStats, wantStats)
			}
		})
	}
}

// TestSessionCleanupReclaims drops a connection mid-session and
// checks the daemon reclaims the stranded frames before its audit.
func TestSessionCleanupReclaims(t *testing.T) {
	d, addr := newTestDaemon(t)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := c.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil { // no Goodbye: frames stranded
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("audit after cleanup: %v", err)
	}
	ds := d.Stats()
	if ds.Reclaimed != n || ds.ReclaimFailed != 0 {
		t.Fatalf("reclaimed %d/%d frames, failed %d", ds.Reclaimed, n, ds.ReclaimFailed)
	}
	st := d.Server().Stats()
	if st.Allocs != n || st.Frees != n {
		t.Fatalf("allocs %d frees %d, want %d each", st.Allocs, st.Frees, n)
	}
}

// TestWireErrorsMatchSentinels checks serve-layer failures survive
// the wire as the same sentinels the in-process client returns.
func TestWireErrorsMatchSentinels(t *testing.T) {
	_, addr := newTestDaemon(t)
	c, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Hello(3, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Freeing a frame the session never owned is ErrNotOwner.
	if err := c.Free(1); err != serve.ErrNotOwner {
		t.Fatalf("free of unowned frame: %v, want serve.ErrNotOwner", err)
	}
	// A second Hello on the same session is a semantic rejection.
	if err := c.Hello(3, nil, nil); err == nil {
		t.Fatal("second hello accepted")
	}
	if err := c.Goodbye(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleCloseDaemon pins Close idempotence at the daemon level.
func TestDoubleCloseDaemon(t *testing.T) {
	d, _ := newTestDaemon(t)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
