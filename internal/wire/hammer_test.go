package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// The multi-process hammer re-executes this test binary as real OS
// child processes (the deployment shape tintserved exists for), each
// churning its own wire session against one daemon. TestMain routes
// the child executions.

func TestMain(m *testing.M) {
	if os.Getenv("TINT_WIRE_CHILD") == "1" {
		os.Exit(wireChildMain())
	}
	os.Exit(m.Run())
}

// wireChildMain is one client process: dial, hello with the colors
// the parent assigned, churn, drain, goodbye.
func wireChildMain() int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "wire child: %v\n", err)
		return 1
	}
	addr := os.Getenv("TINT_WIRE_ADDR")
	seed, err := strconv.ParseInt(os.Getenv("TINT_WIRE_SEED"), 10, 64)
	if err != nil {
		return fail(fmt.Errorf("bad seed: %w", err))
	}
	ops, err := strconv.Atoi(os.Getenv("TINT_WIRE_OPS"))
	if err != nil {
		return fail(fmt.Errorf("bad ops: %w", err))
	}
	core, err := strconv.Atoi(os.Getenv("TINT_WIRE_CORE"))
	if err != nil {
		return fail(fmt.Errorf("bad core: %w", err))
	}
	bank, err := parseColorEnv("TINT_WIRE_BANK")
	if err != nil {
		return fail(err)
	}
	llc, err := parseColorEnv("TINT_WIRE_LLC")
	if err != nil {
		return fail(err)
	}
	c, err := Dial("unix", addr)
	if err != nil {
		return fail(err)
	}
	if err := c.Hello(topology.CoreID(core), bank, llc); err != nil {
		return fail(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var owned []phys.Frame
	for op := 0; op < ops; {
		if len(owned) > 0 && rng.Intn(10) < 4 {
			j := rng.Intn(len(owned))
			if err := c.Free(owned[j]); err != nil {
				return fail(err)
			}
			owned[j] = owned[len(owned)-1]
			owned = owned[:len(owned)-1]
			op++
			continue
		}
		f, allocErr := c.Alloc()
		switch {
		case errors.Is(allocErr, serve.ErrBusy):
			continue // retry without consuming the budget
		case errors.Is(allocErr, serve.ErrNoMemory):
			if len(owned) == 0 {
				return fail(allocErr)
			}
			if err := c.Free(owned[len(owned)-1]); err != nil {
				return fail(err)
			}
			owned = owned[:len(owned)-1]
			op++
			continue
		case allocErr != nil:
			return fail(allocErr)
		}
		owned = append(owned, f)
		op++
	}
	for _, f := range owned {
		if err := c.Free(f); err != nil {
			return fail(err)
		}
	}
	if err := c.Goodbye(); err != nil {
		return fail(err)
	}
	return 0
}

func parseColorEnv(key string) ([]int, error) {
	v := os.Getenv(key)
	if v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad %s: %w", key, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func colorEnv(colors []int) string {
	parts := make([]string, len(colors))
	for i, c := range colors {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

// TestMultiProcessHammer is the cross-process gate: 6 OS processes
// (plus one in-process control client) hammer one daemon through the
// unix socket, then the daemon must audit clean with every frame
// settled and no session leaving anything to reclaim.
func TestMultiProcessHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no executable path: %v", err)
	}
	topo, m := testPlatform(t)
	d, err := NewDaemon(topo, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	addr := filepath.Join(t.TempDir(), "hammer.sock")
	l, err := net.Listen("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve(l) }()

	assign, err := sched.PlanAssign(m, topo, UncoloredEvery)
	if err != nil {
		t.Fatal(err)
	}
	const children = 6
	const ops = 3000
	cmds := make([]*exec.Cmd, children)
	for i := range cmds {
		core, bank, llc := assign(i, i)
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			"TINT_WIRE_CHILD=1",
			"TINT_WIRE_ADDR="+addr,
			fmt.Sprintf("TINT_WIRE_SEED=%d", i+1),
			fmt.Sprintf("TINT_WIRE_OPS=%d", ops),
			fmt.Sprintf("TINT_WIRE_CORE=%d", core),
			"TINT_WIRE_BANK="+colorEnv(bank),
			"TINT_WIRE_LLC="+colorEnv(llc),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("child %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	// An in-process control client churns concurrently with the
	// children, then reads stats over the same protocol.
	ctl, err := Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Hello(0, nil, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		f, err := ctl.Alloc()
		if errors.Is(err, serve.ErrBusy) {
			continue
		}
		if errors.Is(err, serve.ErrNoMemory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.Free(f); err != nil {
			t.Fatal(err)
		}
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("child %d: %v", i, err)
		}
	}
	st, ds, err := ctl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Goodbye(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("post-hammer audit: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve loop: %v", err)
	}
	if ds.Sessions != children+1 {
		t.Errorf("sessions %d, want %d", ds.Sessions, children+1)
	}
	if ds.Reclaimed != 0 || ds.ReclaimFailed != 0 {
		t.Errorf("clean goodbyes left reclaim work: %+v", ds)
	}
	if st.Allocs == 0 || st.Allocs < uint64(children)*ops/2 {
		t.Errorf("suspiciously few allocations: %+v", st)
	}
	final := d.Server().Stats()
	if final.Allocs != final.Frees {
		t.Errorf("unbalanced allocs/frees after drain: %+v", final)
	}
	if final.Loans != 0 {
		t.Errorf("loans outstanding after drain: %+v", final)
	}
}
