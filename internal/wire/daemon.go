package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// UncoloredEvery is the daemon's dispatch-time assignment stride:
// every UncoloredEvery-th task of a scheduler batch runs uncolored,
// the rest claim MEM+LLC colors by task index (sched.PlanAssign). A
// differential reference must use the same stride to reproduce the
// daemon's counters.
const UncoloredEvery = 4

// Daemon owns one serve.Server and exposes it over the wire protocol:
// a data plane (Hello/Alloc/Free/Realloc/Stats/Goodbye, one serve
// client per session) and a task plane (TaskSpawn/TaskRun/TaskStat,
// batches dispatched through the internal scheduler with colors
// assigned at dispatch).
type Daemon struct {
	srv    *serve.Server
	topo   *topology.Topology
	assign sched.AssignFunc

	mu            sync.Mutex
	listeners     []net.Listener        //tintvet:guardedby mu
	conns         map[net.Conn]struct{} //tintvet:guardedby mu
	sessions      uint64                //tintvet:guardedby mu
	reclaimed     uint64                //tintvet:guardedby mu
	reclaimFailed uint64                //tintvet:guardedby mu

	taskMu  sync.Mutex
	specs   []sched.Spec       //tintvet:guardedby taskMu
	results []sched.TaskResult //tintvet:guardedby taskMu
	runs    uint64             //tintvet:guardedby taskMu
	// runActive serializes TaskRun batches without holding taskMu
	// across the (blocking) scheduler run.
	runActive atomic.Bool

	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error // written once inside closeOnce
	wg        sync.WaitGroup
}

// NewDaemon boots a server over the machine and wraps it. Close the
// daemon (not the server) when done.
func NewDaemon(topo *topology.Topology, m *phys.Mapping, cfg serve.Config) (*Daemon, error) {
	assign, err := sched.PlanAssign(m, topo, UncoloredEvery)
	if err != nil {
		return nil, err
	}
	srv, err := serve.New(topo, m, cfg)
	if err != nil {
		return nil, err
	}
	return &Daemon{
		srv:    srv,
		topo:   topo,
		assign: assign,
		conns:  make(map[net.Conn]struct{}),
	}, nil
}

// Server exposes the wrapped server for stats and post-quiesce audits.
func (d *Daemon) Server() *serve.Server { return d.srv }

// Serve accepts sessions on l until the daemon closes (returns nil)
// or the listener fails (returns the accept error). Multiple Serve
// calls on different listeners may run concurrently.
func (d *Daemon) Serve(l net.Listener) error {
	d.mu.Lock()
	if d.closing.Load() {
		// The daemon shut down before this Serve registered: same
		// clean-shutdown outcome as a close during Accept.
		d.mu.Unlock()
		return l.Close()
	}
	d.listeners = append(d.listeners, l)
	d.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if d.closing.Load() {
				return nil
			}
			return err
		}
		d.mu.Lock()
		if d.closing.Load() {
			d.mu.Unlock()
			if cerr := conn.Close(); cerr != nil {
				return fmt.Errorf("wire: closing late accept: %w", cerr)
			}
			return nil
		}
		d.conns[conn] = struct{}{}
		d.sessions++
		d.mu.Unlock()
		d.wg.Add(1)
		go d.session(conn)
	}
}

// Close shuts the daemon down: listeners first, then every live
// connection (which unblocks the session handlers), then waits for
// the handlers to finish their frame-reclaiming cleanup, audits the
// quiesced server, and stops it. Idempotent and safe to race with
// Serve and in-flight sessions; every caller returns only after
// shutdown completes, with the audit verdict.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		d.closing.Store(true)
		d.mu.Lock()
		ls := append([]net.Listener(nil), d.listeners...)
		conns := make([]net.Conn, 0, len(d.conns))
		for conn := range d.conns { //tintvet:ignore maporder: teardown order does not reach any output
			conns = append(conns, conn)
		}
		d.mu.Unlock()
		for _, l := range ls {
			if err := l.Close(); err != nil && d.closeErr == nil {
				d.closeErr = err
			}
		}
		for _, conn := range conns {
			// Session handlers close their own conn on the way out;
			// racing double closes are expected here.
			_ = conn.Close() //tintvet:ignore errdrop: duplicate close racing the handler's own
		}
		d.wg.Wait()
		if err := d.AuditQuiesced(); err != nil && d.closeErr == nil {
			d.closeErr = err
		}
		d.srv.Close()
	})
	return d.closeErr
}

// AuditQuiesced runs the cross-shard invariant auditor. The caller
// must have quiesced the data plane (no in-flight Alloc/Free); the
// daemon calls it itself at the Close quiesce point.
func (d *Daemon) AuditQuiesced() error {
	return invariant.AuditServer(d.srv).Err()
}

// Stats snapshots the daemon-level counters (the serving counters
// come from the wrapped server).
func (d *Daemon) Stats() DaemonStats {
	var ds DaemonStats
	d.mu.Lock()
	ds.Sessions = d.sessions
	ds.Active = uint64(len(d.conns))
	ds.Reclaimed = d.reclaimed
	ds.ReclaimFailed = d.reclaimFailed
	d.mu.Unlock()
	d.taskMu.Lock()
	ds.TasksSpawned = uint64(len(d.specs))
	ds.TaskRuns = d.runs
	d.taskMu.Unlock()
	return ds
}

// session is one connection's handler goroutine.
func (d *Daemon) session(conn net.Conn) {
	defer d.wg.Done()
	s := &session{
		d:    d,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		conn: conn,
	}
	s.loop()
	d.dropConn(conn, s)
}

// dropConn closes and untracks the connection and reclaims whatever
// frames the session still owns — in frame order, so the shard state
// left behind is independent of the owned-set's map iteration order.
func (d *Daemon) dropConn(conn net.Conn, s *session) {
	_ = conn.Close() //tintvet:ignore errdrop: double close after peer loss is the normal path
	var frames []phys.Frame
	for f := range s.owned { //tintvet:ignore maporder: frames are sorted before any allocator call
		frames = append(frames, f)
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	var reclaimed, failed uint64
	for _, f := range frames {
		if err := s.cl.Free(f); err != nil {
			failed++
			continue
		}
		reclaimed++
	}
	d.mu.Lock()
	delete(d.conns, conn)
	d.reclaimed += reclaimed
	d.reclaimFailed += failed
	d.mu.Unlock()
}

// session is one connection's protocol state.
type session struct {
	d    *Daemon
	br   *bufio.Reader
	bw   *bufio.Writer
	conn net.Conn
	cl   *serve.Client
	// owned tracks frames handed to this session and not yet freed,
	// so a vanished client can't strand them.
	owned map[phys.Frame]struct{}
	rbuf  []byte
	wbuf  []byte
}

// loop runs the request/response exchange until the peer says
// Goodbye, drops the connection, or breaks the protocol.
func (s *session) loop() {
	for {
		t, p, err := ReadFrame(s.br, s.rbuf)
		if err != nil {
			// A clean close (io.EOF) needs no reply; a malformed
			// frame gets a best-effort error frame before the drop.
			if !errors.Is(err, io.EOF) && !s.d.closing.Load() {
				s.replyErr(err)
			}
			return
		}
		if cap(p) > cap(s.rbuf) {
			s.rbuf = p[:cap(p)]
		}
		if t == MsgGoodbye {
			s.reply(MsgGoodbyeAck, nil)
			return
		}
		if !s.handle(t, p) {
			return
		}
	}
}

// reply writes one frame; a write failure just ends the session (the
// peer is gone).
func (s *session) reply(t MsgType, payload []byte) bool {
	if err := WriteFrame(s.bw, t, payload); err != nil {
		return false
	}
	return s.bw.Flush() == nil
}

func (s *session) replyErr(err error) bool {
	s.wbuf = appendError(s.wbuf[:0], err)
	return s.reply(MsgError, s.wbuf)
}

// handle dispatches one request frame; false ends the session.
func (s *session) handle(t MsgType, p []byte) bool {
	switch t {
	case MsgHello:
		return s.handleHello(p)
	case MsgAlloc:
		if s.cl == nil {
			return s.replyErr(fmt.Errorf("%w: alloc before hello", errInvalid))
		}
		f, err := s.cl.Alloc()
		if err != nil {
			return s.replyErr(err)
		}
		s.owned[f] = struct{}{}
		s.wbuf = appendFrameID(s.wbuf[:0], f)
		return s.reply(MsgAllocReply, s.wbuf)
	case MsgFree:
		if s.cl == nil {
			return s.replyErr(fmt.Errorf("%w: free before hello", errInvalid))
		}
		f, err := parseFrameID(p, "free")
		if err != nil {
			return s.replyErr(err)
		}
		if err := s.cl.Free(f); err != nil {
			return s.replyErr(err)
		}
		delete(s.owned, f)
		return s.reply(MsgFreeReply, nil)
	case MsgRealloc:
		if s.cl == nil {
			return s.replyErr(fmt.Errorf("%w: realloc before hello", errInvalid))
		}
		old, err := parseFrameID(p, "realloc")
		if err != nil {
			return s.replyErr(err)
		}
		f, err := s.cl.Realloc(old)
		if err != nil {
			return s.replyErr(err)
		}
		delete(s.owned, old)
		s.owned[f] = struct{}{}
		s.wbuf = appendFrameID(s.wbuf[:0], f)
		return s.reply(MsgReallocReply, s.wbuf)
	case MsgStats:
		s.wbuf = appendStats(s.wbuf[:0], s.d.srv.Stats(), s.d.Stats())
		return s.reply(MsgStatsReply, s.wbuf)
	case MsgTaskSpawn:
		return s.handleTaskSpawn(p)
	case MsgTaskRun:
		return s.handleTaskRun(p)
	case MsgTaskStat:
		return s.handleTaskStat(p)
	}
	return s.replyErr(fmt.Errorf("%w: unexpected %v request", errInvalid, t))
}

func (s *session) handleHello(p []byte) bool {
	if s.cl != nil {
		return s.replyErr(fmt.Errorf("%w: second hello on one session", errInvalid))
	}
	h, err := parseHello(p)
	if err != nil {
		return s.replyErr(err)
	}
	if h.Version != Version {
		return s.replyErr(fmt.Errorf("%w: protocol version %d, daemon speaks %d", errInvalid, h.Version, Version))
	}
	cl, err := s.d.srv.NewClient(h.Core)
	if err != nil {
		return s.replyErr(fmt.Errorf("%w: %v", errInvalid, err))
	}
	if len(h.Bank) > 0 || len(h.LLC) > 0 {
		if err := cl.SetColors(h.Bank, h.LLC); err != nil {
			return s.replyErr(fmt.Errorf("%w: %v", errInvalid, err))
		}
	}
	s.cl = cl
	s.owned = make(map[phys.Frame]struct{})
	s.wbuf = appendU32(s.wbuf[:0], uint32(cl.ID()))
	return s.reply(MsgHelloAck, s.wbuf)
}

func (s *session) handleTaskSpawn(p []byte) bool {
	sp, err := parseSpec(p)
	if err != nil {
		return s.replyErr(err)
	}
	d := s.d
	d.taskMu.Lock()
	if len(d.specs)-len(d.results) >= maxTasks {
		d.taskMu.Unlock()
		return s.replyErr(fmt.Errorf("%w: pending task batch full (%d)", errInvalid, maxTasks))
	}
	id := uint32(len(d.specs))
	d.specs = append(d.specs, sp)
	d.taskMu.Unlock()
	s.wbuf = appendU32(s.wbuf[:0], id)
	return s.reply(MsgTaskSpawnReply, s.wbuf)
}

func (s *session) handleTaskRun(p []byte) bool {
	cfg, err := parseConfig(p)
	if err != nil {
		return s.replyErr(err)
	}
	d := s.d
	if !d.runActive.CompareAndSwap(false, true) {
		return s.replyErr(fmt.Errorf("%w: a task run is already in progress", errInvalid))
	}
	defer d.runActive.Store(false)
	d.taskMu.Lock()
	batch := append([]sched.Spec(nil), d.specs[len(d.results):]...)
	d.taskMu.Unlock()
	res, err := sched.Run(cfg, batch, sched.NewServeBackend(d.srv, d.assign))
	if err != nil {
		return s.replyErr(fmt.Errorf("%w: %v", errInvalid, err))
	}
	d.taskMu.Lock()
	d.results = append(d.results, res.Tasks...)
	d.runs++
	d.taskMu.Unlock()
	s.wbuf = appendResult(s.wbuf[:0], res)
	return s.reply(MsgTaskRunReply, s.wbuf)
}

func (s *session) handleTaskStat(p []byte) bool {
	id, err := parseU32(p, "task_stat")
	if err != nil {
		return s.replyErr(err)
	}
	d := s.d
	d.taskMu.Lock()
	var tr sched.TaskResult
	known := id < uint32(len(d.specs))
	if id < uint32(len(d.results)) {
		tr = d.results[id]
	}
	d.taskMu.Unlock()
	if !known {
		return s.replyErr(fmt.Errorf("%w: unknown task %d", errInvalid, id))
	}
	s.wbuf = appendTaskResult(s.wbuf[:0], tr)
	return s.reply(MsgTaskStatReply, s.wbuf)
}
