// Package wire lifts the in-process serving layer (internal/serve)
// behind a length-prefixed binary frame protocol, so many OS
// processes can hammer one allocation daemon (cmd/tintserved) over a
// unix socket or TCP.
//
// Every frame is
//
//	[u32 big-endian length][u8 message type][payload]
//
// where length counts the type byte plus the payload and is bounded
// by MaxFrameLen. The protocol is strictly synchronous: a client
// sends one request frame and reads exactly one reply frame (the
// requested reply type, or MsgError). That request/response
// discipline is what keeps the daemon's allocation order — and
// therefore its serve.Stats counters — a pure function of the client
// scripts, which the differential tests pin byte-identical to the
// in-process reference.
//
// Payload integers are fixed-width big-endian. Variable-length
// fields (color lists, task tables, error strings) carry explicit
// counts that decoders bound-check before allocating, so a garbage
// frame fails with ErrProtocol instead of an absurd allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const (
	// Version is the protocol version carried in Hello; the daemon
	// rejects a mismatch rather than guessing.
	Version = 1
	// MaxFrameLen bounds one frame's length field (type byte +
	// payload). Large enough for the biggest legitimate reply (a task
	// table at maxTasks), small enough that a garbage length can't
	// balloon a read buffer.
	MaxFrameLen = 1 << 16
	// maxColors bounds a Hello's color lists.
	maxColors = 1 << 12
	// maxTasks bounds a task table in one TaskRunReply; together with
	// maxTaskErr it keeps the worst-case reply under MaxFrameLen
	// (512 * (35 + 80) + 50 < 1<<16). The daemon enforces it at
	// TaskSpawn.
	maxTasks = 512
	// maxTaskErr bounds one task's encoded error string.
	maxTaskErr = 80
	// maxErrLen bounds an error frame's message.
	maxErrLen = 1 << 10
)

// ErrProtocol reports a malformed frame or payload: bad length,
// unexpected type, trailing bytes, or a count field out of bounds.
// Peers treat it as fatal to the connection.
var ErrProtocol = errors.New("wire: protocol error")

// MsgType labels one frame.
type MsgType uint8

const (
	MsgError MsgType = iota + 1
	MsgHello
	MsgHelloAck
	MsgGoodbye
	MsgGoodbyeAck
	MsgAlloc
	MsgAllocReply
	MsgFree
	MsgFreeReply
	MsgRealloc
	MsgReallocReply
	MsgStats
	MsgStatsReply
	MsgTaskSpawn
	MsgTaskSpawnReply
	MsgTaskRun
	MsgTaskRunReply
	MsgTaskStat
	MsgTaskStatReply
	msgTypeEnd // one past the last valid type
)

func (t MsgType) String() string {
	switch t {
	case MsgError:
		return "error"
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello_ack"
	case MsgGoodbye:
		return "goodbye"
	case MsgGoodbyeAck:
		return "goodbye_ack"
	case MsgAlloc:
		return "alloc"
	case MsgAllocReply:
		return "alloc_reply"
	case MsgFree:
		return "free"
	case MsgFreeReply:
		return "free_reply"
	case MsgRealloc:
		return "realloc"
	case MsgReallocReply:
		return "realloc_reply"
	case MsgStats:
		return "stats"
	case MsgStatsReply:
		return "stats_reply"
	case MsgTaskSpawn:
		return "task_spawn"
	case MsgTaskSpawnReply:
		return "task_spawn_reply"
	case MsgTaskRun:
		return "task_run"
	case MsgTaskRunReply:
		return "task_run_reply"
	case MsgTaskStat:
		return "task_stat"
	case MsgTaskStatReply:
		return "task_stat_reply"
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// WriteFrame writes one frame. The payload must fit MaxFrameLen-1.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrameLen {
		return fmt.Errorf("%w: frame length %d exceeds %d", ErrProtocol, n, MaxFrameLen)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, reusing buf when it is large enough. It
// returns io.EOF only on a clean close (zero bytes read); a frame
// truncated mid-way, an empty frame, an unknown type, or a length
// beyond MaxFrameLen all fail with an ErrProtocol-wrapped error.
func ReadFrame(r io.Reader, buf []byte) (MsgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: truncated header: %v", ErrProtocol, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: empty frame", ErrProtocol)
	}
	if n > MaxFrameLen {
		return 0, nil, fmt.Errorf("%w: frame length %d exceeds %d", ErrProtocol, n, MaxFrameLen)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame body: %v", ErrProtocol, err)
	}
	t := MsgType(buf[0])
	if t == 0 || t >= msgTypeEnd {
		return 0, nil, fmt.Errorf("%w: unknown message type %d", ErrProtocol, buf[0])
	}
	return t, buf[1:], nil
}

// --- payload encoding helpers ---

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// pr is a bounds-checked payload reader: every accessor degrades to
// zero once the payload runs short, and the terminal done() check
// reports both truncation and trailing garbage as ErrProtocol.
type pr struct {
	b   []byte
	bad bool
}

func (p *pr) u8() uint8 {
	if len(p.b) < 1 {
		p.bad = true
		return 0
	}
	v := p.b[0]
	p.b = p.b[1:]
	return v
}

func (p *pr) u16() uint16 {
	if len(p.b) < 2 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint16(p.b)
	p.b = p.b[2:]
	return v
}

func (p *pr) u32() uint32 {
	if len(p.b) < 4 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(p.b)
	p.b = p.b[4:]
	return v
}

func (p *pr) u64() uint64 {
	if len(p.b) < 8 {
		p.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(p.b)
	p.b = p.b[8:]
	return v
}

func (p *pr) bytes(n int) []byte {
	if n < 0 || len(p.b) < n {
		p.bad = true
		return nil
	}
	v := p.b[:n]
	p.b = p.b[n:]
	return v
}

func (p *pr) done(what string) error {
	if p.bad {
		return fmt.Errorf("%w: truncated %s payload", ErrProtocol, what)
	}
	if len(p.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after %s payload", ErrProtocol, len(p.b), what)
	}
	return nil
}

func appendColors(b []byte, colors []int) []byte {
	b = appendU16(b, uint16(len(colors)))
	for _, c := range colors {
		b = appendU16(b, uint16(c))
	}
	return b
}

func (p *pr) colors() []int {
	n := int(p.u16())
	if n > maxColors {
		p.bad = true
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, int(p.u16()))
	}
	if p.bad {
		return nil
	}
	return out
}

// --- error frames ---

// Error codes map the serving layer's sentinel errors across the
// wire, so errors.Is works identically against a daemon and against
// the in-process server.
const (
	codeBusy uint8 = iota + 1
	codeNoMemory
	codeClosed
	codeNotOwner
	codeInvalid  // semantic rejection (bad hello, bad colors, bad config)
	codeInternal // daemon-side failure that maps to no sentinel
)

// RemoteError is a daemon-reported failure with no local sentinel.
type RemoteError struct {
	Code uint8
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error (code %d): %s", e.Code, e.Msg)
}

// errorCode classifies err for an error frame.
func errorCode(err error) uint8 {
	switch {
	case errors.Is(err, serve.ErrBusy):
		return codeBusy
	case errors.Is(err, serve.ErrNoMemory):
		return codeNoMemory
	case errors.Is(err, serve.ErrClosed):
		return codeClosed
	case errors.Is(err, serve.ErrNotOwner):
		return codeNotOwner
	case errors.Is(err, errInvalid):
		return codeInvalid
	}
	return codeInternal
}

// errInvalid tags daemon-side semantic rejections.
var errInvalid = errors.New("wire: invalid request")

func appendError(b []byte, err error) []byte {
	msg := err.Error()
	if len(msg) > maxErrLen {
		msg = msg[:maxErrLen]
	}
	b = append(b, errorCode(err))
	b = appendU16(b, uint16(len(msg)))
	return append(b, msg...)
}

// parseError decodes an error frame back into the matching sentinel
// (wrapped with the daemon's message) or a RemoteError.
func parseError(payload []byte) error {
	p := &pr{b: payload}
	code := p.u8()
	n := int(p.u16())
	if n > maxErrLen {
		return fmt.Errorf("%w: error message length %d", ErrProtocol, n)
	}
	msg := string(p.bytes(n))
	if err := p.done("error"); err != nil {
		return err
	}
	switch code {
	case codeBusy:
		return serve.ErrBusy
	case codeNoMemory:
		return serve.ErrNoMemory
	case codeClosed:
		return serve.ErrClosed
	case codeNotOwner:
		return serve.ErrNotOwner
	case codeInvalid:
		return fmt.Errorf("%w: %s", errInvalid, msg)
	}
	return &RemoteError{Code: code, Msg: msg}
}

// --- hello ---

// Hello opens a session: protocol version, the core the client pins
// to, and its color claim (both lists empty for an uncolored client).
type Hello struct {
	Version uint16
	Core    topology.CoreID
	Bank    []int
	LLC     []int
}

func appendHello(b []byte, h Hello) []byte {
	b = appendU16(b, h.Version)
	b = appendU32(b, uint32(h.Core))
	b = appendColors(b, h.Bank)
	return appendColors(b, h.LLC)
}

func parseHello(payload []byte) (Hello, error) {
	p := &pr{b: payload}
	h := Hello{
		Version: p.u16(),
		Core:    topology.CoreID(p.u32()),
		Bank:    p.colors(),
		LLC:     p.colors(),
	}
	return h, p.done("hello")
}

// --- fixed-size payloads ---

func appendFrameID(b []byte, f phys.Frame) []byte { return appendU64(b, uint64(f)) }

func parseFrameID(payload []byte, what string) (phys.Frame, error) {
	p := &pr{b: payload}
	f := phys.Frame(p.u64())
	return f, p.done(what)
}

func parseU32(payload []byte, what string) (uint32, error) {
	p := &pr{b: payload}
	v := p.u32()
	return v, p.done(what)
}

// --- stats ---

// DaemonStats counts daemon-level activity the serve counters don't
// see: sessions, session-cleanup reclaims, and task-plane traffic.
type DaemonStats struct {
	Sessions      uint64 // sessions accepted over the daemon's lifetime
	Active        uint64 // sessions currently open
	Reclaimed     uint64 // frames reclaimed by session cleanup
	ReclaimFailed uint64 // cleanup frees that failed (bookkeeping bugs)
	TasksSpawned  uint64 // task specs accepted by TaskSpawn
	TaskRuns      uint64 // completed TaskRun batches
}

func appendStats(b []byte, st serve.Stats, ds DaemonStats) []byte {
	b = appendU64(b, st.Allocs)
	b = appendU64(b, st.Frees)
	b = appendU64(b, st.ColoredPages)
	b = appendU64(b, st.DefaultAllocs)
	b = append(b, byte(len(st.Borrows)))
	for _, v := range st.Borrows {
		b = appendU64(b, v)
	}
	b = appendU64(b, uint64(st.Loans))
	b = appendU64(b, st.Refills)
	b = appendU64(b, st.RefillFrames)
	b = appendU64(b, st.Batches)
	b = appendU64(b, st.BatchedReqs)
	b = appendU64(b, st.Rejected)
	b = appendU64(b, st.Parked)
	b = appendU64(b, st.FreeFrames)
	b = appendU64(b, st.CompactPasses)
	b = appendU64(b, st.CompactMoved)
	b = appendU64(b, st.CompactDeclined)
	b = appendU64(b, ds.Sessions)
	b = appendU64(b, ds.Active)
	b = appendU64(b, ds.Reclaimed)
	b = appendU64(b, ds.ReclaimFailed)
	b = appendU64(b, ds.TasksSpawned)
	return appendU64(b, ds.TaskRuns)
}

func parseStats(payload []byte) (serve.Stats, DaemonStats, error) {
	p := &pr{b: payload}
	var st serve.Stats
	var ds DaemonStats
	st.Allocs = p.u64()
	st.Frees = p.u64()
	st.ColoredPages = p.u64()
	st.DefaultAllocs = p.u64()
	if n := int(p.u8()); n != int(kernel.NumRungs) && !p.bad {
		return st, ds, fmt.Errorf("%w: %d borrow rungs, want %d", ErrProtocol, n, kernel.NumRungs)
	}
	for i := range st.Borrows {
		st.Borrows[i] = p.u64()
	}
	st.Loans = int(int64(p.u64()))
	st.Refills = p.u64()
	st.RefillFrames = p.u64()
	st.Batches = p.u64()
	st.BatchedReqs = p.u64()
	st.Rejected = p.u64()
	st.Parked = p.u64()
	st.FreeFrames = p.u64()
	st.CompactPasses = p.u64()
	st.CompactMoved = p.u64()
	st.CompactDeclined = p.u64()
	ds.Sessions = p.u64()
	ds.Active = p.u64()
	ds.Reclaimed = p.u64()
	ds.ReclaimFailed = p.u64()
	ds.TasksSpawned = p.u64()
	ds.TaskRuns = p.u64()
	return st, ds, p.done("stats")
}

// --- task plane ---

func appendSpec(b []byte, sp sched.Spec) []byte {
	b = appendU32(b, sp.Arrival)
	b = appendU32(b, sp.Ops)
	b = appendU32(b, sp.BlockEvery)
	b = appendU32(b, sp.BlockFor)
	return appendU64(b, uint64(sp.Seed))
}

func parseSpec(payload []byte) (sched.Spec, error) {
	p := &pr{b: payload}
	sp := sched.Spec{
		Arrival:    p.u32(),
		Ops:        p.u32(),
		BlockEvery: p.u32(),
		BlockFor:   p.u32(),
		Seed:       int64(p.u64()),
	}
	return sp, p.done("task_spawn")
}

func appendConfig(b []byte, cfg sched.Config) []byte {
	b = append(b, byte(cfg.Policy))
	b = appendU32(b, uint32(cfg.Quantum))
	b = appendU32(b, uint32(cfg.Cores))
	return appendU64(b, cfg.MaxTicks)
}

func parseConfig(payload []byte) (sched.Config, error) {
	p := &pr{b: payload}
	cfg := sched.Config{
		Policy:   sched.Policy(p.u8()),
		Quantum:  int(int32(p.u32())),
		Cores:    int(int32(p.u32())),
		MaxTicks: p.u64(),
	}
	return cfg, p.done("task_run")
}

func appendTaskResult(b []byte, tr sched.TaskResult) []byte {
	b = append(b, byte(tr.State))
	b = appendU64(b, tr.Completed)
	b = appendU64(b, tr.Dispatches)
	b = appendU64(b, tr.Preemptions)
	b = appendU64(b, tr.Blocks)
	msg := tr.Err
	if len(msg) > maxTaskErr {
		msg = msg[:maxTaskErr]
	}
	b = appendU16(b, uint16(len(msg)))
	return append(b, msg...)
}

func (p *pr) taskResult() sched.TaskResult {
	tr := sched.TaskResult{
		State:       sched.State(p.u8()),
		Completed:   p.u64(),
		Dispatches:  p.u64(),
		Preemptions: p.u64(),
		Blocks:      p.u64(),
	}
	n := int(p.u16())
	if n > maxTaskErr {
		p.bad = true
		return tr
	}
	tr.Err = string(p.bytes(n))
	return tr
}

func appendResult(b []byte, res *sched.Result) []byte {
	b = appendU64(b, res.Ticks)
	b = appendU64(b, res.Dispatches)
	b = appendU64(b, res.Preemptions)
	b = appendU64(b, res.Blocks)
	b = appendU64(b, res.Ops)
	b = appendU64(b, res.IdleCores)
	b = appendU16(b, uint16(len(res.Tasks)))
	for _, tr := range res.Tasks {
		b = appendTaskResult(b, tr)
	}
	return b
}

func parseResult(payload []byte) (*sched.Result, error) {
	p := &pr{b: payload}
	res := &sched.Result{
		Ticks:       p.u64(),
		Dispatches:  p.u64(),
		Preemptions: p.u64(),
		Blocks:      p.u64(),
		Ops:         p.u64(),
		IdleCores:   p.u64(),
	}
	n := int(p.u16())
	if n > maxTasks {
		return nil, fmt.Errorf("%w: task table of %d entries", ErrProtocol, n)
	}
	res.Tasks = make([]sched.TaskResult, 0, n)
	for i := 0; i < n; i++ {
		res.Tasks = append(res.Tasks, p.taskResult())
	}
	if err := p.done("task_run_reply"); err != nil {
		return nil, err
	}
	return res, nil
}

func parseTaskResult(payload []byte) (sched.TaskResult, error) {
	p := &pr{b: payload}
	tr := p.taskResult()
	return tr, p.done("task_stat_reply")
}
