package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/sched"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Client speaks the wire protocol to one daemon over one connection.
// All methods are safe for concurrent use; the internal mutex
// serializes the synchronous request/response exchange, mirroring the
// one-op-at-a-time discipline serve.Client has per goroutine.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn //tintvet:guardedby mu
	br    *bufio.Reader
	bw    *bufio.Writer
	rbuf  []byte // frame read buffer, reused across exchanges
	wbuf  []byte // payload build buffer, reused across exchanges
	id    uint32 // session id from HelloAck
	hello bool
}

// Dial connects to a daemon ("unix", path or "tcp", addr) without
// opening a session; call Hello next.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
}

// exchange sends one request frame and decodes one reply frame, which
// must be want or MsgError. The returned payload aliases the client's
// read buffer: decode it before the next exchange (all callers do,
// under mu).
func (c *Client) exchange(t MsgType, payload []byte, want MsgType) ([]byte, error) {
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	rt, rp, err := ReadFrame(c.br, c.rbuf)
	if err != nil {
		return nil, err
	}
	if cap(rp) > cap(c.rbuf) {
		c.rbuf = rp[:cap(rp)]
	}
	switch rt {
	case want:
		return rp, nil
	case MsgError:
		return nil, parseError(rp)
	}
	return nil, fmt.Errorf("%w: %v reply to %v request", ErrProtocol, rt, t)
}

// Hello opens the session: version check, core pin, color claim.
// It must be the first exchange on the connection.
func (c *Client) Hello(core topology.CoreID, bank, llc []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendHello(c.wbuf[:0], Hello{Version: Version, Core: core, Bank: bank, LLC: llc})
	rp, err := c.exchange(MsgHello, c.wbuf, MsgHelloAck)
	if err != nil {
		return err
	}
	id, err := parseU32(rp, "hello_ack")
	if err != nil {
		return err
	}
	c.id = id
	c.hello = true
	return nil
}

// SessionID reports the daemon-assigned session id (valid after Hello).
func (c *Client) SessionID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.id
}

// Alloc requests one frame under the session's color claim.
func (c *Client) Alloc() (phys.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rp, err := c.exchange(MsgAlloc, nil, MsgAllocReply)
	if err != nil {
		return 0, err
	}
	return parseFrameID(rp, "alloc_reply")
}

// Free returns a frame obtained from Alloc or Realloc.
func (c *Client) Free(f phys.Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendFrameID(c.wbuf[:0], f)
	rp, err := c.exchange(MsgFree, c.wbuf, MsgFreeReply)
	if err != nil {
		return err
	}
	p := &pr{b: rp}
	return p.done("free_reply")
}

// Realloc exchanges old for a fresh frame (serve.Client.Realloc
// semantics: allocate first, then free, unwind on failure).
func (c *Client) Realloc(old phys.Frame) (phys.Frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendFrameID(c.wbuf[:0], old)
	rp, err := c.exchange(MsgRealloc, c.wbuf, MsgReallocReply)
	if err != nil {
		return 0, err
	}
	return parseFrameID(rp, "realloc_reply")
}

// Stats snapshots the daemon's serving and session counters.
func (c *Client) Stats() (serve.Stats, DaemonStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rp, err := c.exchange(MsgStats, nil, MsgStatsReply)
	if err != nil {
		return serve.Stats{}, DaemonStats{}, err
	}
	return parseStats(rp)
}

// TaskSpawn submits one task spec to the daemon's pending batch and
// returns its task id.
func (c *Client) TaskSpawn(sp sched.Spec) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendSpec(c.wbuf[:0], sp)
	rp, err := c.exchange(MsgTaskSpawn, c.wbuf, MsgTaskSpawnReply)
	if err != nil {
		return 0, err
	}
	return parseU32(rp, "task_spawn_reply")
}

// TaskRun dispatches every pending spawned task through the daemon's
// scheduler under cfg and returns the run's accounting. The exchange
// blocks until the batch exits.
func (c *Client) TaskRun(cfg sched.Config) (*sched.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendConfig(c.wbuf[:0], cfg)
	rp, err := c.exchange(MsgTaskRun, c.wbuf, MsgTaskRunReply)
	if err != nil {
		return nil, err
	}
	return parseResult(rp)
}

// TaskStat reports one task's lifecycle accounting: StateNew with
// zero counters before its batch has run, the final TaskResult after.
func (c *Client) TaskStat(id uint32) (sched.TaskResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendU32(c.wbuf[:0], id)
	rp, err := c.exchange(MsgTaskStat, c.wbuf, MsgTaskStatReply)
	if err != nil {
		return sched.TaskResult{}, err
	}
	return parseTaskResult(rp)
}

// Goodbye ends the session cleanly — the daemon acknowledges before
// the connection drops, so a drained client that says Goodbye is
// guaranteed to leave no frames behind — then closes the connection.
func (c *Client) Goodbye() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.exchange(MsgGoodbye, nil, MsgGoodbyeAck)
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Close drops the connection without the Goodbye handshake. The
// daemon reclaims any frames the session still holds.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
