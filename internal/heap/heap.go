// Package heap implements a user-level dynamic memory allocator
// (malloc/free/calloc/realloc) on top of the simulated kernel's
// mmap pages, playing the role glibc malloc plays above TintMalloc's
// kernel policy.
//
// Each task gets its own arena (as with per-thread glibc arenas), so
// a thread's heap objects live on pages faulted in — and therefore
// colored — by that thread. Small requests are carved from size-class
// slabs of one page each; requests above HugeThreshold get dedicated
// page-granular regions. Because slabs are single pages, every heap
// allocation translates into order-0 page demand, matching the
// paper's observation that ordinary applications allocate less than
// 4 KB at a time.
package heap

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Sentinel errors.
var (
	// ErrBadSize reports a zero or oversized request.
	ErrBadSize = errors.New("heap: invalid allocation size")
	// ErrInvalidFree reports a free of a pointer the heap never
	// returned (or already freed).
	ErrInvalidFree = errors.New("heap: invalid free")
)

// HugeThreshold is the largest size served from size-class slabs;
// bigger requests get dedicated page regions.
const HugeThreshold = 2048

// sizeClasses are the slab slot sizes in bytes.
var sizeClasses = []uint64{16, 32, 64, 128, 256, 512, 1024, 2048}

func classOf(size uint64) int {
	for i, c := range sizeClasses {
		if size <= c {
			return i
		}
	}
	return -1
}

// Stats counts allocator activity.
type Stats struct {
	Mallocs      uint64
	Frees        uint64
	SlabsMapped  uint64 // one-page slabs requested from the kernel
	SlabsTrimmed uint64 // empty slabs returned via Trim
	HugeMapped   uint64 // dedicated large regions requested
	BytesLive    uint64 // sum of class/page sizes currently allocated
	// Trim's reclaim pass outcomes: loans the kernel migrated home,
	// and page copies an injected migration fault failed (those loans
	// stay on the ledger and are retried by a later Trim or by the
	// compaction daemon).
	LoansReclaimed uint64
	ReclaimFailed  uint64
}

type allocation struct {
	class int    // size-class index, or -1 for huge
	pages uint64 // page count for huge allocations
}

// slabMeta tracks one one-page slab's occupancy for Trim.
type slabMeta struct {
	class int
	used  int // live slots
}

// Heap is a per-task arena. Not safe for concurrent use.
type Heap struct {
	task  *kernel.Task
	free  [][]uint64 // per-class free slot VAs (LIFO)
	live  map[uint64]allocation
	slabs map[uint64]*slabMeta // slab base VA -> occupancy
	stats Stats
}

// New creates an arena that maps memory through the given task; pages
// the arena faults in inherit the task's coloring.
func New(task *kernel.Task) *Heap {
	return &Heap{
		task:  task,
		free:  make([][]uint64, len(sizeClasses)),
		live:  make(map[uint64]allocation),
		slabs: make(map[uint64]*slabMeta),
	}
}

func slabOf(va uint64) uint64 { return va &^ (phys.PageSize - 1) }

// Task returns the owning task.
func (h *Heap) Task() *kernel.Task { return h.task }

// Stats returns a copy of the counters.
func (h *Heap) Stats() Stats { return h.stats }

// Malloc allocates size bytes and returns the block's virtual
// address.
func (h *Heap) Malloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("%w: zero", ErrBadSize)
	}
	h.stats.Mallocs++
	if size > HugeThreshold {
		pages := (size + phys.PageSize - 1) / phys.PageSize
		va, err := h.task.Mmap(0, pages*phys.PageSize, 0)
		if err != nil {
			return 0, err
		}
		h.stats.HugeMapped++
		h.stats.BytesLive += pages * phys.PageSize
		h.live[va] = allocation{class: -1, pages: pages}
		return va, nil
	}
	cls := classOf(size)
	if len(h.free[cls]) == 0 {
		if err := h.refill(cls); err != nil {
			return 0, err
		}
	}
	l := h.free[cls]
	va := l[len(l)-1]
	h.free[cls] = l[:len(l)-1]
	h.live[va] = allocation{class: cls}
	h.slabs[slabOf(va)].used++
	h.stats.BytesLive += sizeClasses[cls]
	return va, nil
}

// refill maps one fresh page and carves it into class slots.
func (h *Heap) refill(cls int) error {
	va, err := h.task.Mmap(0, phys.PageSize, 0)
	if err != nil {
		return err
	}
	h.stats.SlabsMapped++
	h.slabs[va] = &slabMeta{class: cls}
	slot := sizeClasses[cls]
	// Push in reverse so allocation proceeds from the page start.
	for off := phys.PageSize - slot; ; off -= slot {
		h.free[cls] = append(h.free[cls], va+off)
		if off == 0 {
			break
		}
	}
	return nil
}

// Calloc allocates n*size zero-initialized bytes. (The simulation
// carries no data, so zeroing is a semantic no-op; the timing of the
// touch is up to the workload.)
func (h *Heap) Calloc(n, size uint64) (uint64, error) {
	if n != 0 && size != 0 && n > ^uint64(0)/size {
		return 0, fmt.Errorf("%w: calloc overflow", ErrBadSize)
	}
	return h.Malloc(n * size)
}

// Realloc resizes an allocation, returning the (possibly moved)
// block. Realloc(va, 0) frees the block and returns 0 (C11's
// implementation-defined corner, pinned here to the free-and-NULL
// behaviour) rather than surfacing Malloc's ErrBadSize.
func (h *Heap) Realloc(va uint64, size uint64) (uint64, error) {
	if va == 0 {
		return h.Malloc(size)
	}
	if size == 0 {
		return 0, h.Free(va)
	}
	a, ok := h.live[va]
	if !ok {
		return 0, fmt.Errorf("%w: realloc of %#x", ErrInvalidFree, va)
	}
	// Still fits in place?
	if a.class >= 0 && size <= sizeClasses[a.class] {
		return va, nil
	}
	if a.class < 0 && size > HugeThreshold && (size+phys.PageSize-1)/phys.PageSize == a.pages {
		return va, nil
	}
	nva, err := h.Malloc(size)
	if err != nil {
		return 0, err
	}
	if err := h.Free(va); err != nil {
		// Unwind the fresh block: returning the error while keeping
		// nva live would leak it, since the caller only ever learns
		// about one block.
		if uerr := h.Free(nva); uerr != nil {
			return 0, fmt.Errorf("%w (and unwinding the new block failed: %v)", err, uerr)
		}
		return 0, err
	}
	return nva, nil
}

// Free releases a block previously returned by Malloc.
func (h *Heap) Free(va uint64) error {
	a, ok := h.live[va]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrInvalidFree, va)
	}
	delete(h.live, va)
	h.stats.Frees++
	if a.class < 0 {
		h.stats.BytesLive -= a.pages * phys.PageSize
		return h.task.Munmap(va, a.pages*phys.PageSize)
	}
	h.stats.BytesLive -= sizeClasses[a.class]
	h.free[a.class] = append(h.free[a.class], va)
	h.slabs[slabOf(va)].used--
	return nil
}

// Trim returns fully-free slabs to the kernel (glibc's
// malloc_trim analogue): their slots leave the class free lists and
// their pages are unmapped, rejoining the colored free lists or
// buddy zones. Returns the number of released slabs.
func (h *Heap) Trim() (released int, err error) {
	empty := map[uint64]bool{}
	for base, meta := range h.slabs {
		if meta.used == 0 {
			empty[base] = true
		}
	}
	if len(empty) == 0 {
		return 0, nil
	}
	// Drop the empty slabs' slots from the class free lists.
	for cls := range h.free {
		kept := h.free[cls][:0]
		for _, va := range h.free[cls] {
			if !empty[slabOf(va)] {
				kept = append(kept, va)
			}
		}
		h.free[cls] = kept
	}
	// Unmap in ascending address order: frames rejoin the colored
	// free lists (or buddy) in release order, so iterating the map
	// directly would make subsequent placements depend on Go's
	// randomized map order and break run reproducibility.
	bases := make([]uint64, 0, len(empty))
	for base := range empty {
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		if err := h.task.Munmap(base, phys.PageSize); err != nil {
			return released, err
		}
		delete(h.slabs, base)
		released++
	}
	h.stats.SlabsTrimmed += uint64(released)
	// Returning slabs is the signal that pressure subsided: give the
	// kernel the chance to migrate this task's degradation-ladder
	// loans back onto their preferred placement (DESIGN.md Sec. 10).
	// Both outcomes are recorded: silently discarding the failure
	// count would hide a faulted reclaim from the stats layer.
	if released > 0 {
		moved, failed := h.task.ReclaimLoans()
		h.stats.LoansReclaimed += uint64(moved)
		h.stats.ReclaimFailed += uint64(failed)
	}
	return released, nil
}

// SizeOf returns the usable size of a live allocation.
func (h *Heap) SizeOf(va uint64) (uint64, bool) {
	a, ok := h.live[va]
	if !ok {
		return 0, false
	}
	if a.class < 0 {
		return a.pages * phys.PageSize, true
	}
	return sizeClasses[a.class], true
}

// LiveAllocations returns the number of outstanding blocks.
func (h *Heap) LiveAllocations() int { return len(h.live) }
