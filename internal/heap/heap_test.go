package heap

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 256 << 20

func newHeap(t *testing.T) (*Heap, *kernel.Kernel) {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	task, err := k.NewProcess().NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	return New(task), k
}

func TestMallocFreeRoundTrip(t *testing.T) {
	h, _ := newHeap(t)
	va, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if sz, ok := h.SizeOf(va); !ok || sz != 128 {
		t.Errorf("SizeOf = %d,%v; want 128 (class rounding)", sz, ok)
	}
	if err := h.Free(va); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(va); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("double free error = %v", err)
	}
	if h.LiveAllocations() != 0 {
		t.Errorf("LiveAllocations = %d", h.LiveAllocations())
	}
}

func TestMallocZeroRejected(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Malloc(0); !errors.Is(err, ErrBadSize) {
		t.Errorf("Malloc(0) error = %v", err)
	}
}

func TestSlabReuseAfterFree(t *testing.T) {
	h, _ := newHeap(t)
	va1, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(va1); err != nil {
		t.Fatal(err)
	}
	va2, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if va1 != va2 {
		t.Errorf("freed slot not reused: %#x then %#x", va1, va2)
	}
	if h.Stats().SlabsMapped != 1 {
		t.Errorf("SlabsMapped = %d, want 1", h.Stats().SlabsMapped)
	}
}

func TestDistinctAllocationsDontOverlap(t *testing.T) {
	h, _ := newHeap(t)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		va, err := h.Malloc(48) // class 64
		if err != nil {
			t.Fatal(err)
		}
		if seen[va] {
			t.Fatalf("allocation %d returned duplicate address %#x", i, va)
		}
		seen[va] = true
		if va%64 != 0 {
			t.Fatalf("allocation %#x not aligned to its class", va)
		}
	}
}

func TestHugeAllocation(t *testing.T) {
	h, _ := newHeap(t)
	va, err := h.Malloc(3 * phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := h.SizeOf(va); sz != 3*phys.PageSize {
		t.Errorf("huge SizeOf = %d", sz)
	}
	if h.Stats().HugeMapped != 1 {
		t.Errorf("HugeMapped = %d", h.Stats().HugeMapped)
	}
	if err := h.Free(va); err != nil {
		t.Fatal(err)
	}
}

func TestCallocOverflow(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Calloc(^uint64(0), 16); !errors.Is(err, ErrBadSize) {
		t.Errorf("Calloc overflow error = %v", err)
	}
	va, err := h.Calloc(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := h.SizeOf(va); sz != 128 {
		t.Errorf("Calloc(10,10) size = %d, want 128", sz)
	}
}

func TestReallocGrowAndShrinkInPlace(t *testing.T) {
	h, _ := newHeap(t)
	va, err := h.Malloc(100) // class 128
	if err != nil {
		t.Fatal(err)
	}
	// Within the same class: stays put.
	va2, err := h.Realloc(va, 120)
	if err != nil {
		t.Fatal(err)
	}
	if va2 != va {
		t.Errorf("in-place realloc moved %#x -> %#x", va, va2)
	}
	// Growing beyond the class: moves.
	va3, err := h.Realloc(va, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if va3 == va {
		t.Error("growing realloc did not move")
	}
	if _, ok := h.SizeOf(va); ok {
		t.Error("old block still live after realloc move")
	}
	// Realloc of nil behaves like malloc.
	va4, err := h.Realloc(0, 32)
	if err != nil || va4 == 0 {
		t.Errorf("Realloc(0, 32) = %#x, %v", va4, err)
	}
	// Realloc of a bogus pointer fails.
	if _, err := h.Realloc(0xDEAD000, 64); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("Realloc(bogus) error = %v", err)
	}
}

func TestBytesLiveAccounting(t *testing.T) {
	h, _ := newHeap(t)
	va1, _ := h.Malloc(16)
	va2, _ := h.Malloc(3 * phys.PageSize)
	want := uint64(16 + 3*phys.PageSize)
	if got := h.Stats().BytesLive; got != want {
		t.Errorf("BytesLive = %d, want %d", got, want)
	}
	if err := h.Free(va1); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(va2); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().BytesLive; got != 0 {
		t.Errorf("BytesLive after frees = %d", got)
	}
}

func TestColoredHeapPagesRespectTaskColors(t *testing.T) {
	h, k := newHeap(t)
	m := k.Mapping()
	task := h.Task()
	// Give the task node-0 colors via the mmap protocol.
	for _, c := range m.BankColorsOfNode(0)[:2] {
		if _, err := task.Mmap(uint64(c)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := task.Mmap(0|kernel.SetLLCColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	// Heap pages are colored at fault time: allocate and touch.
	for i := 0; i < 200; i++ {
		va, err := h.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := task.Translate(va); err != nil {
			t.Fatal(err)
		}
		f, ok := task.FrameOfVA(va)
		if !ok {
			t.Fatal("page not resident after touch")
		}
		if n := m.NodeOfFrame(f); n != 0 {
			t.Fatalf("heap page on node %d, want 0", n)
		}
		if lc := m.FrameLLCColor(f); lc != 0 {
			t.Fatalf("heap page LLC color %d, want 0", lc)
		}
	}
}

// Property: a random malloc/free soak keeps live accounting exact and
// never double-hands-out a slot.
func TestRandomSoak(t *testing.T) {
	h, _ := newHeap(t)
	rng := rand.New(rand.NewSource(7))
	live := map[uint64]uint64{} // va -> requested size
	var wantLive uint64
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			size := uint64(rng.Intn(6000) + 1)
			va, err := h.Malloc(size)
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := live[va]; dup {
				t.Fatalf("duplicate address %#x", va)
			}
			live[va] = size
			got, _ := h.SizeOf(va)
			wantLive += got
		} else {
			for va := range live {
				got, _ := h.SizeOf(va)
				wantLive -= got
				if err := h.Free(va); err != nil {
					t.Fatal(err)
				}
				delete(live, va)
				break
			}
		}
		if h.Stats().BytesLive != wantLive {
			t.Fatalf("step %d: BytesLive = %d, want %d", step, h.Stats().BytesLive, wantLive)
		}
	}
	if h.LiveAllocations() != len(live) {
		t.Errorf("LiveAllocations = %d, want %d", h.LiveAllocations(), len(live))
	}
}

func TestTrimReleasesEmptySlabs(t *testing.T) {
	h, k := newHeap(t)
	// Fill two slabs of the 512-byte class (8 slots each).
	var vas []uint64
	for i := 0; i < 16; i++ {
		va, err := h.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	if h.Stats().SlabsMapped != 2 {
		t.Fatalf("SlabsMapped = %d, want 2", h.Stats().SlabsMapped)
	}
	// Touch both slabs so frames actually materialize (first touch).
	for _, va := range []uint64{vas[0], vas[8]} {
		if _, _, err := h.Task().Translate(va); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing free yet: Trim is a no-op.
	if n, err := h.Trim(); err != nil || n != 0 {
		t.Fatalf("Trim on full heap = %d, %v", n, err)
	}
	// Free the first slab's 8 slots; the second stays half-live.
	for _, va := range vas[:8] {
		if err := h.Free(va); err != nil {
			t.Fatal(err)
		}
	}
	for _, va := range vas[8:12] {
		if err := h.Free(va); err != nil {
			t.Fatal(err)
		}
	}
	freeBefore := k.FreeFrames()
	n, err := h.Trim()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Trim released %d slabs, want 1", n)
	}
	if k.FreeFrames() != freeBefore+1 {
		t.Errorf("kernel frames %d -> %d, want +1", freeBefore, k.FreeFrames())
	}
	if h.Stats().SlabsTrimmed != 1 {
		t.Errorf("SlabsTrimmed = %d", h.Stats().SlabsTrimmed)
	}
	// The live half-slab must still work; new allocations reuse its
	// free slots before mapping a new slab.
	mapped := h.Stats().SlabsMapped
	for i := 0; i < 4; i++ {
		if _, err := h.Malloc(512); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats().SlabsMapped != mapped {
		t.Errorf("allocations after Trim mapped a new slab unnecessarily")
	}
	// Exhausting the surviving slab maps a fresh one.
	for i := 0; i < 8; i++ {
		if _, err := h.Malloc(512); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats().SlabsMapped != mapped+1 {
		t.Errorf("SlabsMapped = %d, want %d", h.Stats().SlabsMapped, mapped+1)
	}
}

func TestTrimThenReuseSoak(t *testing.T) {
	h, _ := newHeap(t)
	rng := rand.New(rand.NewSource(4))
	live := map[uint64]bool{}
	for step := 0; step < 3000; step++ {
		switch {
		case rng.Intn(50) == 0:
			if _, err := h.Trim(); err != nil {
				t.Fatal(err)
			}
		case rng.Intn(2) == 0 || len(live) == 0:
			va, err := h.Malloc(uint64(16 << rng.Intn(5)))
			if err != nil {
				t.Fatal(err)
			}
			if live[va] {
				t.Fatalf("step %d: duplicate VA %#x", step, va)
			}
			live[va] = true
		default:
			for va := range live {
				if err := h.Free(va); err != nil {
					t.Fatal(err)
				}
				delete(live, va)
				break
			}
		}
	}
	if h.LiveAllocations() != len(live) {
		t.Errorf("LiveAllocations = %d, want %d", h.LiveAllocations(), len(live))
	}
}

// Realloc(va, 0) is pinned to C11's free-and-NULL corner: the block
// is released and (0, nil) comes back, never ErrBadSize.
func TestReallocZeroFrees(t *testing.T) {
	h, _ := newHeap(t)
	va, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Realloc(va, 0)
	if got != 0 || err != nil {
		t.Fatalf("Realloc(va, 0) = %#x, %v; want 0, nil", got, err)
	}
	if _, ok := h.SizeOf(va); ok {
		t.Error("block still live after Realloc(va, 0)")
	}
	if err := h.Free(va); !errors.Is(err, ErrInvalidFree) {
		t.Errorf("free after Realloc(va, 0) = %v, want ErrInvalidFree", err)
	}
	if h.Stats().BytesLive != 0 || h.LiveAllocations() != 0 {
		t.Errorf("BytesLive = %d, LiveAllocations = %d after realloc-free",
			h.Stats().BytesLive, h.LiveAllocations())
	}
}

// When the move succeeds but freeing the old block fails, Realloc
// must unwind the fresh block instead of leaking it: the caller only
// ever learns about one address.
func TestReallocUnwindOnFreeFailure(t *testing.T) {
	h, _ := newHeap(t)
	va, err := h.Malloc(3 * phys.PageSize) // huge: dedicated mapping
	if err != nil {
		t.Fatal(err)
	}
	// Yank the region out from under the heap so the eventual
	// Free(va) -> Munmap fails with ErrSegfault.
	if err := h.task.Munmap(va, 3*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	nva, err := h.Realloc(va, 5*phys.PageSize) // page count changes: must move
	if !errors.Is(err, kernel.ErrSegfault) {
		t.Fatalf("Realloc over a vanished region = %#x, %v; want ErrSegfault", nva, err)
	}
	if nva != 0 {
		t.Errorf("failed Realloc returned address %#x", nva)
	}
	if h.LiveAllocations() != 0 {
		t.Errorf("LiveAllocations = %d: the fresh block leaked", h.LiveAllocations())
	}
	if h.Stats().BytesLive != 0 {
		t.Errorf("BytesLive = %d after unwind", h.Stats().BytesLive)
	}
	// The heap is still usable.
	if _, err := h.Malloc(64); err != nil {
		t.Fatal(err)
	}
}

// Trim's returned slabs signal that pressure subsided: surviving
// degradation-ladder loans are migrated back onto preferred colors.
func TestTrimReclaimsLoans(t *testing.T) {
	h, k := newHeap(t)
	m := k.Mapping()
	task := h.Task()
	for _, c := range m.BankColorsOfNode(0)[:2] {
		if _, err := task.Mmap(uint64(c)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
	// Starve every color-list refill: colored faults fall down the
	// ladder and the heap's slab frames arrive as loans.
	k.SetFaultHooks(kernel.FaultHooks{Refill: func(int) bool { return true }})
	var vas []uint64
	for i := 0; i < 16; i++ { // two 512-byte slabs
		va, err := h.Malloc(512)
		if err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	for _, va := range []uint64{vas[0], vas[8]} {
		if _, _, err := task.Translate(va); err != nil {
			t.Fatal(err)
		}
	}
	if k.Loans() != 2 {
		t.Fatalf("Loans = %d after faulting both slabs, want 2", k.Loans())
	}
	// Pressure subsides: faults clear, and the first slab empties.
	k.SetFaultHooks(kernel.FaultHooks{})
	for _, va := range vas[:8] {
		if err := h.Free(va); err != nil {
			t.Fatal(err)
		}
	}
	n, err := h.Trim()
	if err != nil || n != 1 {
		t.Fatalf("Trim = %d, %v; want 1 slab", n, err)
	}
	// Slab one's loan was settled by the unmap; slab two's was
	// migrated back by the reclaim pass Trim triggers.
	if k.Loans() != 0 {
		t.Errorf("Loans = %d after Trim, want 0", k.Loans())
	}
	if got := k.Stats().LoansReclaimed; got != 1 {
		t.Errorf("LoansReclaimed = %d, want 1", got)
	}
	f, ok := task.FrameOfVA(vas[8])
	if !ok {
		t.Fatal("surviving slab page not resident after reclaim")
	}
	bc, _ := k.FrameColors(f)
	if !task.OwnsBankColor(bc) {
		t.Errorf("reclaimed page sits on bank color %d, not owned by the task", bc)
	}
}
