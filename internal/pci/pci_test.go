package pci

import (
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

const testMem = 256 << 20

func TestBiosDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(uint64, int) (*phys.Mapping, error)
	}{
		{"separable", phys.DefaultSeparable},
		{"overlapped", phys.OpteronOverlapped},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.build(testMem, 4)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := Bios(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := DecodeMapping(sp, 4)
			if err != nil {
				t.Fatal(err)
			}
			if got.MemBytes() != m.MemBytes() {
				t.Errorf("MemBytes = %d, want %d", got.MemBytes(), m.MemBytes())
			}
			if !reflect.DeepEqual(got.ChannelBits(), m.ChannelBits()) {
				t.Errorf("ChannelBits = %v, want %v", got.ChannelBits(), m.ChannelBits())
			}
			if !reflect.DeepEqual(got.RankBits(), m.RankBits()) {
				t.Errorf("RankBits = %v, want %v", got.RankBits(), m.RankBits())
			}
			if !reflect.DeepEqual(got.BankBits(), m.BankBits()) {
				t.Errorf("BankBits = %v, want %v", got.BankBits(), m.BankBits())
			}
			if !reflect.DeepEqual(got.LLCBits(), m.LLCBits()) {
				t.Errorf("LLCBits = %v, want %v", got.LLCBits(), m.LLCBits())
			}
			if got.RowShift() != m.RowShift() {
				t.Errorf("RowShift = %d, want %d", got.RowShift(), m.RowShift())
			}
			// The decoded mapping must translate identically.
			for _, a := range []phys.Addr{0, 0x1234567, testMem - 128, testMem / 2} {
				if got.BankColor(a) != m.BankColor(a) {
					t.Errorf("BankColor(%#x) = %d, want %d", a, got.BankColor(a), m.BankColor(a))
				}
				if got.LLCColor(a) != m.LLCColor(a) {
					t.Errorf("LLCColor(%#x) = %d, want %d", a, got.LLCColor(a), m.LLCColor(a))
				}
			}
		})
	}
}

func TestNodeRangeRegisters(t *testing.T) {
	m, err := phys.DefaultSeparable(testMem, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Bios(m)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		base, limit, ok := sp.NodeRange(n)
		if !ok {
			t.Fatalf("node %d range not enabled", n)
		}
		wb, wl := m.NodeRange(n)
		if base != wb || limit != wl {
			t.Errorf("node %d range = [%#x,%#x), want [%#x,%#x)", n, base, limit, wb, wl)
		}
	}
	if _, _, ok := sp.NodeRange(7); ok {
		t.Error("NodeRange(7) enabled on 4-node space")
	}
}

func TestDecodeMappingErrors(t *testing.T) {
	m, err := phys.DefaultSeparable(testMem, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Bios(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMapping(sp, 0); err == nil {
		t.Error("DecodeMapping with 0 nodes succeeded")
	}
	// Asking for more nodes than the BIOS programmed must fail.
	if _, err := DecodeMapping(sp, 8); err == nil {
		t.Error("DecodeMapping with 8 nodes succeeded on 4-node space")
	}
	// A gap in the address map must be detected.
	sp2, _ := Bios(m)
	sp2.Write32(1, FuncAddressMap, RegDRAMBase, sp2.Read32(2, FuncAddressMap, RegDRAMBase))
	if _, err := DecodeMapping(sp2, 4); err == nil {
		t.Error("DecodeMapping accepted non-contiguous node ranges")
	}
	// Empty space: nothing enabled.
	if _, err := DecodeMapping(NewSpace(), 4); err == nil {
		t.Error("DecodeMapping succeeded on empty space")
	}
}

func TestRawReadWrite(t *testing.T) {
	sp := NewSpace()
	if got := sp.Read32(0, FuncDRAMCtl, 0x99); got != 0 {
		t.Errorf("unwritten register reads %#x, want 0", got)
	}
	sp.Write32(3, FuncAddressMap, 0x40, 0xDEADBEEF)
	if got := sp.Read32(3, FuncAddressMap, 0x40); got != 0xDEADBEEF {
		t.Errorf("Read32 = %#x, want 0xDEADBEEF", got)
	}
	// Different function, same offset: independent registers.
	if got := sp.Read32(3, FuncDRAMCtl, 0x40); got != 0 {
		t.Errorf("cross-function register aliasing: %#x", got)
	}
}

func TestPackBitsTooMany(t *testing.T) {
	if _, err := packBits([]uint{1, 2, 3, 4}); err == nil {
		t.Error("packBits accepted 4 positions")
	}
	v, err := packBits(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := unpackBits(v); len(got) != 0 {
		t.Errorf("unpackBits(packBits(nil)) = %v, want empty", got)
	}
}

func TestBiosAlignmentErrors(t *testing.T) {
	// 4 MiB per node: below the 16 MiB base/limit register granularity.
	m, err := phys.DefaultSeparable(16<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bios(m); err == nil {
		t.Error("Bios accepted sub-16MiB node alignment")
	}
}
