// Package pci simulates the slice of PCI configuration space that
// TintMalloc reads during late boot to derive bit-level physical
// address translation (paper Sec. III-A): the DRAM base/limit system
// address registers (node ranges), the DRAM controller select
// register (channel bits), the chip-select base registers (rank and
// bank bits), and the bank address mapping register (row geometry),
// plus an LLC configuration register describing the set-index color
// bits.
//
// On real hardware these live in the northbridge's config space
// (AMD Family 10h, functions 1 and 2 of device 18h). Here, a Space is
// populated by Bios from a phys.Mapping — exactly the information a
// platform BIOS programs — and DecodeMapping recovers the mapping by
// reading registers, reproducing TintMalloc's boot-time discovery
// path rather than hard-coding platform constants.
package pci

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Function selects a config-space function of the simulated
// northbridge device, mirroring AMD's split of address-map registers
// (function 1) and DRAM controller registers (function 2).
type Function uint8

// Northbridge config-space functions.
const (
	FuncAddressMap Function = 1 // DRAM base/limit system address registers
	FuncDRAMCtl    Function = 2 // controller select, CS base, bank address mapping
)

// Register offsets within a function. Offsets follow the spirit of
// the AMD BIOS and Kernel Developer's Guide but use a simplified
// packed encoding documented on each constant.
const (
	// RegDRAMBase (function 1, indexed by node): bits [31:4] hold
	// base >> 24; bit 0 is the enable flag.
	RegDRAMBase = 0x40
	// RegDRAMLimit (function 1, indexed by node): bits [31:4] hold
	// (limit-1) >> 24; bit 0 is the enable flag.
	RegDRAMLimit = 0x44
	// RegDCTSelectLow (function 2): byte i holds channel-select
	// address bit i (0xFF terminates); byte 3 holds the channel
	// bit count.
	RegDCTSelectLow = 0x110
	// RegCSBase (function 2): byte 0 holds the rank-select bit
	// count, bytes 1..2 hold rank bit positions (0xFF = unused).
	RegCSBase = 0x60
	// RegBankAddrMap (function 2): byte 0 holds the bank bit
	// count, bytes 1..3 hold bank bit positions.
	RegBankAddrMap = 0x80
	// RegRowGeometry (function 2): byte 0 holds the row shift
	// (log2 of per-row address span).
	RegRowGeometry = 0x84
	// RegLLCConfig (function 2, node 0 only): byte 0 holds the
	// number of LLC color bits; bytes 1..4 hold the bit positions
	// of up to four of them; byte 1 of the companion register
	// RegLLCConfig2 holds any further positions.
	RegLLCConfig  = 0x1A0
	RegLLCConfig2 = 0x1A4
)

const unusedBit = 0xFF

// regKey addresses one 32-bit register.
type regKey struct {
	node int
	fn   Function
	off  uint16
}

// Space is a simulated PCI configuration space. The zero value is an
// empty space; registers read as zero until written.
type Space struct {
	regs map[regKey]uint32
}

// NewSpace returns an empty configuration space.
func NewSpace() *Space {
	return &Space{regs: make(map[regKey]uint32)}
}

// Read32 returns the register at (node, fn, off), or 0 if unwritten.
func (s *Space) Read32(node int, fn Function, off uint16) uint32 {
	return s.regs[regKey{node, fn, off}]
}

// Write32 stores v at (node, fn, off).
func (s *Space) Write32(node int, fn Function, off uint16, v uint32) {
	s.regs[regKey{node, fn, off}] = v
}

// packBits stores up to n bit positions into a register: byte 0 is
// the count, bytes 1..3 are positions (unusedBit when absent).
func packBits(bits []uint) (uint32, error) {
	if len(bits) > 3 {
		return 0, fmt.Errorf("pci: cannot pack %d bit positions into one register", len(bits))
	}
	v := uint32(len(bits))
	for i := 0; i < 3; i++ {
		b := uint32(unusedBit)
		if i < len(bits) {
			b = uint32(bits[i])
		}
		v |= b << (8 * (i + 1))
	}
	return v, nil
}

func unpackBits(v uint32) []uint {
	n := int(v & 0xFF)
	out := make([]uint, 0, n)
	for i := 0; i < n && i < 3; i++ {
		b := (v >> (8 * (i + 1))) & 0xFF
		if b != unusedBit {
			out = append(out, uint(b))
		}
	}
	return out
}

// Bios populates a configuration space from a mapping, playing the
// role of platform firmware programming the northbridge at power-on.
func Bios(m *phys.Mapping) (*Space, error) {
	s := NewSpace()
	for n := 0; n < m.Nodes(); n++ {
		base, limit := m.NodeRange(n)
		if uint64(base)&((1<<24)-1) != 0 {
			return nil, fmt.Errorf("pci: node %d base %#x not 16MiB aligned", n, base)
		}
		if uint64(limit)&((1<<24)-1) != 0 {
			return nil, fmt.Errorf("pci: node %d limit %#x not 16MiB aligned", n, limit)
		}
		s.Write32(n, FuncAddressMap, RegDRAMBase, uint32(uint64(base)>>24)<<4|1)
		s.Write32(n, FuncAddressMap, RegDRAMLimit, uint32((uint64(limit)-1)>>24)<<4|1)

		chv, err := packBits(m.ChannelBits())
		if err != nil {
			return nil, err
		}
		s.Write32(n, FuncDRAMCtl, RegDCTSelectLow, chv)
		rkv, err := packBits(m.RankBits())
		if err != nil {
			return nil, err
		}
		s.Write32(n, FuncDRAMCtl, RegCSBase, rkv)
		bkv, err := packBits(m.BankBits())
		if err != nil {
			return nil, err
		}
		s.Write32(n, FuncDRAMCtl, RegBankAddrMap, bkv)
		s.Write32(n, FuncDRAMCtl, RegRowGeometry, uint32(m.RowShift()))
	}
	llc := m.LLCBits()
	if len(llc) > 7 {
		return nil, fmt.Errorf("pci: cannot encode %d LLC color bits", len(llc))
	}
	var lo, hi uint32
	lo = uint32(len(llc))
	for i, b := range llc {
		if i < 3 {
			lo |= uint32(b) << (8 * (i + 1))
		} else {
			hi |= uint32(b) << (8 * (i - 3))
		}
	}
	s.Write32(0, FuncDRAMCtl, RegLLCConfig, lo)
	s.Write32(0, FuncDRAMCtl, RegLLCConfig2, hi)
	return s, nil
}

// NodeRange reads the DRAM base/limit registers of node n. ok is
// false when the node's range is not enabled.
func (s *Space) NodeRange(n int) (base, limit phys.Addr, ok bool) {
	b := s.Read32(n, FuncAddressMap, RegDRAMBase)
	l := s.Read32(n, FuncAddressMap, RegDRAMLimit)
	if b&1 == 0 || l&1 == 0 {
		return 0, 0, false
	}
	base = phys.Addr(uint64(b>>4) << 24)
	limit = phys.Addr((uint64(l>>4) + 1) << 24)
	return base, limit, true
}

// DecodeMapping reconstructs a phys.Mapping by reading registers, the
// simulated analogue of TintMalloc's late-boot PCI scan. nodes is the
// expected controller count (discovered from the topology).
func DecodeMapping(s *Space, nodes int) (*phys.Mapping, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("pci: nodes must be >= 1, got %d", nodes)
	}
	var memBytes uint64
	var prevLimit phys.Addr
	for n := 0; n < nodes; n++ {
		base, limit, ok := s.NodeRange(n)
		if !ok {
			return nil, fmt.Errorf("pci: node %d DRAM range not enabled", n)
		}
		if base != prevLimit {
			return nil, fmt.Errorf("pci: node %d base %#x not contiguous with previous limit %#x",
				n, base, prevLimit)
		}
		if limit <= base {
			return nil, fmt.Errorf("pci: node %d has empty range [%#x, %#x)", n, base, limit)
		}
		memBytes += uint64(limit - base)
		prevLimit = limit
	}
	ch := unpackBits(s.Read32(0, FuncDRAMCtl, RegDCTSelectLow))
	rk := unpackBits(s.Read32(0, FuncDRAMCtl, RegCSBase))
	bk := unpackBits(s.Read32(0, FuncDRAMCtl, RegBankAddrMap))
	rowShift := uint(s.Read32(0, FuncDRAMCtl, RegRowGeometry) & 0xFF)

	lo := s.Read32(0, FuncDRAMCtl, RegLLCConfig)
	hi := s.Read32(0, FuncDRAMCtl, RegLLCConfig2)
	nLLC := int(lo & 0xFF)
	llc := make([]uint, 0, nLLC)
	for i := 0; i < nLLC; i++ {
		var b uint32
		if i < 3 {
			b = (lo >> (8 * (i + 1))) & 0xFF
		} else {
			b = (hi >> (8 * (i - 3))) & 0xFF
		}
		llc = append(llc, uint(b))
	}
	return phys.NewMapping(phys.MappingConfig{
		MemBytes:    memBytes,
		Nodes:       nodes,
		ChannelBits: ch,
		RankBits:    rk,
		BankBits:    bk,
		LLCBits:     llc,
		RowShift:    rowShift,
	})
}
