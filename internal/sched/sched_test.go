package sched

import (
	"errors"
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 64 << 20

// fakeBackend hands out frames from a counter and records the
// (task, op) interleaving so tests can assert dispatch order.
type fakeBackend struct {
	next   phys.Frame
	opens  []int // task ids in Open order
	trace  []int // task id per completed allocator call
	closed int
}

type fakeAlloc struct {
	be   *fakeBackend
	task int
}

func (b *fakeBackend) Open(task, core int) (Allocator, error) {
	b.opens = append(b.opens, task)
	return &fakeAlloc{be: b, task: task}, nil
}

func (a *fakeAlloc) Alloc() (phys.Frame, error) {
	a.be.trace = append(a.be.trace, a.task)
	a.be.next++
	return a.be.next, nil
}

func (a *fakeAlloc) Realloc(old phys.Frame) (phys.Frame, error) {
	a.be.trace = append(a.be.trace, a.task)
	a.be.next++
	return a.be.next, nil
}

func (a *fakeAlloc) Free(f phys.Frame) error {
	a.be.trace = append(a.be.trace, a.task)
	return nil
}

func (a *fakeAlloc) Close() error {
	a.be.closed++
	return nil
}

func TestPolicyRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lottery"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

func TestStateMachine(t *testing.T) {
	legal := [][2]State{
		{StateNew, StateReady},
		{StateReady, StateRunning},
		{StateRunning, StateReady},
		{StateRunning, StateBlocked},
		{StateRunning, StateExit},
		{StateBlocked, StateReady},
	}
	for _, tr := range legal {
		if !legalTransition(tr[0], tr[1]) {
			t.Errorf("transition %v -> %v should be legal", tr[0], tr[1])
		}
	}
	for _, tr := range [][2]State{
		{StateNew, StateRunning},
		{StateReady, StateBlocked},
		{StateBlocked, StateRunning},
		{StateExit, StateReady},
		{StateRunning, StateRunning},
	} {
		if legalTransition(tr[0], tr[1]) {
			t.Errorf("transition %v -> %v should be illegal", tr[0], tr[1])
		}
	}
}

func TestFIFORunsEachTaskToExit(t *testing.T) {
	be := &fakeBackend{}
	specs := []Spec{{Ops: 20}, {Ops: 20}, {Ops: 20}}
	res, err := Run(Config{Policy: FIFO}, specs, be)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Tasks {
		if tr.State != StateExit || tr.Err != "" {
			t.Fatalf("task %d: %+v", i, tr)
		}
		if tr.Dispatches != 1 || tr.Preemptions != 0 {
			t.Fatalf("task %d: FIFO should dispatch exactly once: %+v", i, tr)
		}
	}
	// Non-preemptive: every op of task i precedes every op of task i+1.
	last := -1
	for _, task := range be.trace {
		if task < last {
			t.Fatalf("FIFO interleaved tasks: trace %v", be.trace)
		}
		last = task
	}
	if be.closed != len(specs) {
		t.Fatalf("closed %d allocators, want %d", be.closed, len(specs))
	}
}

func TestRRPreemptsOnQuantum(t *testing.T) {
	be := &fakeBackend{}
	res, err := Run(Config{Policy: RR, Quantum: 10}, []Spec{{Ops: 100}}, be)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	if tr.State != StateExit || tr.Preemptions != 9 || tr.Dispatches != 10 {
		t.Fatalf("RR 100 ops / quantum 10: %+v", tr)
	}
	if tr.Completed < 100 {
		t.Fatalf("completed %d < 100 budgeted ops (drain frees only add)", tr.Completed)
	}
}

func TestScriptedBlocksAndVRRCarry(t *testing.T) {
	be := &fakeBackend{}
	// Blocks at churned 5 and 10 (12 is the exit, not a block point).
	res, err := Run(Config{Policy: VRR, Quantum: 8}, []Spec{{Ops: 12, BlockEvery: 5, BlockFor: 2}}, be)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	if tr.State != StateExit || tr.Blocks != 2 {
		t.Fatalf("VRR blocked task: %+v", tr)
	}
	// Slice 1: ops 1-5, block (3 quantum left). Slice 2 (aux): ops
	// 6-8, leftover quantum expires — preempted. Slice 3: ops 9-10,
	// block (6 left). Slice 4 (aux): ops 11-12, exit.
	if tr.Dispatches != 4 || tr.Preemptions != 1 {
		t.Fatalf("want 4 dispatches / 1 preemption, got %+v", tr)
	}
	if res.Ticks < 5 {
		t.Fatalf("two 2-tick blocks cannot finish in %d ticks", res.Ticks)
	}
}

func TestVRRAuxQueueBeatsReadyQueue(t *testing.T) {
	be := &fakeBackend{}
	// Task 0 blocks mid-quantum and must resume (aux queue, leftover
	// quantum) ahead of task 1, which was preempted to the ready tail.
	specs := []Spec{
		{Ops: 10, BlockEvery: 3, BlockFor: 1},
		{Ops: 40},
	}
	res, err := Run(Config{Policy: VRR, Quantum: 8}, specs, be)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].State != StateExit || res.Tasks[1].State != StateExit {
		t.Fatalf("tasks did not exit: %+v", res.Tasks)
	}
	if res.Tasks[0].Blocks == 0 {
		t.Fatalf("task 0 never blocked: %+v", res.Tasks[0])
	}
	// Task 0's post-wake ops must appear before task 1 has finished:
	// find the first op of task 0 after task 1 started and assert task
	// 1 still has ops after it (i.e. 0 resumed ahead of 1's remainder).
	first1 := -1
	resume0 := -1
	for i, task := range be.trace {
		if task == 1 && first1 < 0 {
			first1 = i
		}
		if task == 0 && first1 >= 0 && resume0 < 0 {
			resume0 = i
		}
	}
	if first1 < 0 || resume0 < 0 {
		t.Fatalf("expected interleaving, trace %v", be.trace)
	}
	rest1 := false
	for _, task := range be.trace[resume0:] {
		if task == 1 {
			rest1 = true
			break
		}
	}
	if !rest1 {
		t.Fatalf("woken task 0 did not preempt task 1's remainder: trace %v", be.trace)
	}
}

func TestArrivalsAdmitInTickOrder(t *testing.T) {
	be := &fakeBackend{}
	specs := []Spec{
		{Arrival: 5, Ops: 4},
		{Arrival: 0, Ops: 4},
	}
	res, err := Run(Config{Policy: FIFO}, specs, be)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].State != StateExit || res.Tasks[1].State != StateExit {
		t.Fatalf("tasks did not exit: %+v", res.Tasks)
	}
	if len(be.opens) != 2 || be.opens[0] != 1 || be.opens[1] != 0 {
		t.Fatalf("admission order %v, want [1 0] (task 1 arrives first)", be.opens)
	}
}

type failBackend struct{}

func (failBackend) Open(task, core int) (Allocator, error) {
	return nil, errors.New("boom")
}

func TestBackendOpenFailureIsPerTask(t *testing.T) {
	res, err := Run(Config{Policy: FIFO}, []Spec{{Ops: 5}}, failBackend{})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	if tr.State != StateExit || tr.Err == "" || tr.Completed != 0 {
		t.Fatalf("open failure should exit the task with its error: %+v", tr)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Policy: Policy(9)}, nil, &fakeBackend{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Run(Config{}, nil, nil); err == nil {
		t.Fatal("nil backend accepted")
	}
	if _, err := Run(Config{MaxTicks: 3}, []Spec{{Arrival: 100, Ops: 1}}, &fakeBackend{}); err == nil {
		t.Fatal("MaxTicks overrun not reported")
	}
}

func newTestServer(t *testing.T) (*serve.Server, AssignFunc) {
	t.Helper()
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(topo, m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	assign, err := PlanAssign(m, topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	return s, assign
}

// TestServeBackendDeterministic pins the core contract the wire
// differential builds on: the same (Config, []Spec) against a fresh
// server yields identical Results and identical serve.Stats.
func TestServeBackendDeterministic(t *testing.T) {
	specs := []Spec{
		{Ops: 300},
		{Ops: 200, BlockEvery: 40, BlockFor: 2},
		{Arrival: 3, Ops: 250},
		{Ops: 150, BlockEvery: 25, BlockFor: 1}, // task 3: uncolored (stride 4)
	}
	for _, pol := range Policies() {
		var prevRes *Result
		var prevStats serve.Stats
		for round := 0; round < 2; round++ {
			s, assign := newTestServer(t)
			res, err := Run(Config{Policy: pol, Quantum: 16, Cores: 2}, specs, NewServeBackend(s, assign))
			if err != nil {
				t.Fatalf("%v round %d: %v", pol, round, err)
			}
			for i, tr := range res.Tasks {
				if tr.State != StateExit || tr.Err != "" {
					t.Fatalf("%v round %d task %d: %+v", pol, round, i, tr)
				}
			}
			s.Close()
			st := s.Stats()
			if round == 0 {
				prevRes, prevStats = res, st
				continue
			}
			if !reflect.DeepEqual(prevRes, res) {
				t.Fatalf("%v: scheduler result varies across identical runs:\n%+v\n%+v", pol, prevRes, res)
			}
			if prevStats != st {
				t.Fatalf("%v: serve.Stats vary across identical runs:\n%+v\n%+v", pol, prevStats, st)
			}
		}
	}
}

func TestPlanAssignStride(t *testing.T) {
	topo := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, topo.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	assign, err := PlanAssign(m, topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < 8; task++ {
		core, bank, llc := assign(task, task%2)
		if !topo.ValidCore(core) {
			t.Fatalf("task %d pinned to invalid core %d", task, core)
		}
		uncolored := (task+1)%4 == 0
		if uncolored && (len(bank) != 0 || len(llc) != 0) {
			t.Fatalf("task %d should be uncolored, got bank=%v llc=%v", task, bank, llc)
		}
		if !uncolored && len(bank) == 0 {
			t.Fatalf("task %d should hold bank colors", task)
		}
	}
}
