// Package sched is the dispatch scheduler in front of the serving
// layer: it admits tasks onto simulated cores under FIFO,
// round-robin, or virtual-round-robin policies, assigns colors at
// dispatch time, and walks every task through the explicit
// new → ready → running → blocked → exit lifecycle.
//
// The dispatch loop is deliberately serial and deterministic: cores
// are simulated, ticks are logical, and at most one allocator
// operation is in flight at a time. Run against the in-process
// serve.Server, the resulting serve.Stats are a pure function of the
// (Config, []Spec) pair — which is what lets the wire-protocol
// differential test pin the daemon's counters byte-identical to the
// in-process reference (see internal/wire).
package sched

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/serve"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Policy selects the dispatch discipline.
type Policy uint8

const (
	// FIFO runs each dispatched task to exit (non-preemptive).
	FIFO Policy = iota
	// RR preempts after Config.Quantum operations; preempted tasks
	// rejoin the tail of the ready queue with a fresh quantum.
	RR
	// VRR is virtual round-robin: a task that blocks mid-quantum
	// keeps its remaining quantum and, on wake, enters an auxiliary
	// queue that is dispatched ahead of the main ready queue.
	VRR
)

// Policies lists every dispatch policy, in definition order.
func Policies() []Policy { return []Policy{FIFO, RR, VRR} }

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case RR:
		return "rr"
	case VRR:
		return "vrr"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps a CLI/wire name back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range Policies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sched: unknown policy %q (want fifo, rr, or vrr)", s)
}

// State is a task's lifecycle state.
type State uint8

const (
	StateNew State = iota
	StateReady
	StateRunning
	StateBlocked
	StateExit
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateExit:
		return "exit"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// legalTransition encodes the 5-state machine: New→Ready (admission),
// Ready→Running (dispatch), Running→Ready (preemption),
// Running→Blocked (I/O or backpressure), Blocked→Ready (wake), and
// Running→Exit (completion or fatal error).
func legalTransition(from, to State) bool {
	switch from {
	case StateNew:
		return to == StateReady
	case StateReady:
		return to == StateRunning
	case StateRunning:
		return to == StateReady || to == StateBlocked || to == StateExit
	case StateBlocked:
		return to == StateReady
	}
	return false
}

// Spec describes one task submitted to the scheduler.
type Spec struct {
	// Arrival is the dispatch tick at which the task leaves New for
	// the ready queue. Tasks arriving on the same tick are admitted in
	// spec order.
	Arrival uint32
	// Ops is the number of churn operations the task performs before
	// draining its live set and exiting.
	Ops uint32
	// BlockEvery, when positive, blocks the task after every
	// BlockEvery completed churn operations — the scripted stand-in
	// for I/O waits, and the only way a deterministic serial loop
	// reaches Blocked (backpressure cannot fire with one op in
	// flight).
	BlockEvery uint32
	// BlockFor is how many ticks a scripted block lasts (minimum 1).
	BlockFor uint32
	// Seed seeds the task's churn mix; zero derives one from the task
	// index so distinct tasks still diverge.
	Seed int64
}

// Config tunes one scheduler run.
type Config struct {
	// Policy is the dispatch discipline (default FIFO).
	Policy Policy
	// Quantum is the operation budget of one RR/VRR slice
	// (default 32). FIFO ignores it.
	Quantum int
	// Cores is the number of simulated cores dispatching in parallel
	// (default 1). Within a tick, cores dispatch in index order, so
	// multi-core runs stay deterministic.
	Cores int
	// MaxTicks aborts a run that fails to converge (default 1<<20).
	MaxTicks uint64
}

func (c Config) withDefaults() Config {
	if c.Quantum <= 0 {
		c.Quantum = 32
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 1 << 20
	}
	return c
}

// Allocator is the per-task allocation surface a Backend opens at
// dispatch. serve.Client (wrapped) and wire.Client both satisfy it.
type Allocator interface {
	Alloc() (phys.Frame, error)
	Realloc(old phys.Frame) (phys.Frame, error)
	Free(f phys.Frame) error
	Close() error
}

// Backend admits a task onto a simulated core: it creates the task's
// allocation principal, with colors assigned at dispatch time.
type Backend interface {
	Open(task, core int) (Allocator, error)
}

// TaskResult is one task's final accounting.
type TaskResult struct {
	State       State
	Completed   uint64 // churn + drain operations completed
	Dispatches  uint64 // Ready→Running transitions
	Preemptions uint64 // Running→Ready transitions (quantum expiry)
	Blocks      uint64 // Running→Blocked transitions
	// Err carries a fatal per-task error as text (stable across the
	// wire), empty on clean exit.
	Err string
}

// Result is one scheduler run's outcome. For a fixed (Config, []Spec)
// pair every field is deterministic.
type Result struct {
	Ticks       uint64
	Dispatches  uint64
	Preemptions uint64
	Blocks      uint64
	Ops         uint64 // sum of per-task Completed
	IdleCores   uint64 // core-ticks with nothing runnable
	Tasks       []TaskResult
}

// sliceOutcome says how one dispatch slice ended.
type sliceOutcome uint8

const (
	sliceExited sliceOutcome = iota
	sliceBlocked
	slicePreempted
)

type task struct {
	spec  Spec
	state State
	alloc Allocator
	rng   *rand.Rand
	owned []phys.Frame

	churned     uint64 // budgeted churn ops completed (block points key off this)
	completed   uint64 // churned + drain frees
	dispatches  uint64
	preemptions uint64
	blocks      uint64
	err         error

	wakeTick    uint64 // tick at which a Blocked task re-enters Ready
	quantumLeft int    // VRR: unused quantum carried across a block
	nextBlock   uint64 // churn count at which the next scripted block fires
}

// Run executes the task set to completion under cfg and returns the
// deterministic accounting. Backend errors and allocator errors are
// fatal to the task (recorded in its TaskResult), not to the run;
// only configuration errors and a MaxTicks overrun fail the run.
func Run(cfg Config, specs []Spec, be Backend) (*Result, error) {
	if be == nil {
		return nil, errors.New("sched: nil backend")
	}
	switch cfg.Policy {
	case FIFO, RR, VRR:
	default:
		return nil, fmt.Errorf("sched: unknown policy %d", cfg.Policy)
	}
	cfg = cfg.withDefaults()

	tasks := make([]*task, len(specs))
	for i, sp := range specs {
		seed := sp.Seed
		if seed == 0 {
			seed = int64(i) + 1
		}
		t := &task{spec: sp, state: StateNew, rng: rand.New(rand.NewSource(seed))}
		if sp.BlockEvery > 0 {
			t.nextBlock = uint64(sp.BlockEvery)
		}
		tasks[i] = t
	}

	r := &runState{cfg: cfg, tasks: tasks, be: be}
	res := &Result{Tasks: make([]TaskResult, len(specs))}
	remaining := len(tasks)
	for tick := uint64(0); remaining > 0; tick++ {
		if tick >= cfg.MaxTicks {
			return nil, fmt.Errorf("sched: %d tasks still live after %d ticks", remaining, tick)
		}
		res.Ticks = tick + 1
		r.wakeAndAdmit(tick)
		for core := 0; core < cfg.Cores && remaining > 0; core++ {
			ti := r.pick()
			if ti < 0 {
				res.IdleCores++
				continue
			}
			t := tasks[ti]
			r.transition(t, StateRunning)
			t.dispatches++
			if t.alloc == nil && t.err == nil {
				a, err := be.Open(ti, core)
				if err != nil {
					t.err = fmt.Errorf("open: %w", err)
				} else {
					t.alloc = a
				}
			}
			switch r.runSlice(t) {
			case sliceExited:
				r.transition(t, StateExit)
				remaining--
			case sliceBlocked:
				t.blocks++
				r.transition(t, StateBlocked)
				dur := uint64(t.spec.BlockFor)
				if dur == 0 {
					dur = 1
				}
				t.wakeTick = tick + dur
			case slicePreempted:
				t.preemptions++
				t.quantumLeft = 0
				r.transition(t, StateReady)
				r.ready = append(r.ready, ti)
			}
		}
	}

	for i, t := range tasks {
		tr := TaskResult{
			State:       t.state,
			Completed:   t.completed,
			Dispatches:  t.dispatches,
			Preemptions: t.preemptions,
			Blocks:      t.blocks,
		}
		if t.err != nil {
			tr.Err = t.err.Error()
		}
		res.Tasks[i] = tr
		res.Dispatches += t.dispatches
		res.Preemptions += t.preemptions
		res.Blocks += t.blocks
		res.Ops += t.completed
	}
	return res, nil
}

type runState struct {
	cfg   Config
	tasks []*task
	be    Backend
	ready []int // main ready queue (task indices)
	aux   []int // VRR auxiliary queue: woken tasks with quantum left
}

// transition moves a task between states, enforcing the 5-state
// machine. An illegal transition is a scheduler bug, not a workload
// condition, so it panics.
func (r *runState) transition(t *task, to State) {
	if !legalTransition(t.state, to) {
		panic(fmt.Sprintf("sched: illegal transition %v -> %v", t.state, to))
	}
	t.state = to
}

// wakeAndAdmit processes, in deterministic order, the tick's
// Blocked→Ready wakes (ascending task index) and then the tick's
// New→Ready arrivals (ascending task index).
func (r *runState) wakeAndAdmit(tick uint64) {
	for ti, t := range r.tasks {
		if t.state == StateBlocked && t.wakeTick <= tick {
			r.transition(t, StateReady)
			if r.cfg.Policy == VRR && t.quantumLeft > 0 {
				r.aux = append(r.aux, ti)
			} else {
				r.ready = append(r.ready, ti)
			}
		}
	}
	for ti, t := range r.tasks {
		if t.state == StateNew && uint64(t.spec.Arrival) <= tick {
			r.transition(t, StateReady)
			r.ready = append(r.ready, ti)
		}
	}
}

// pick pops the next task index to dispatch: the VRR auxiliary queue
// drains ahead of the main ready queue.
func (r *runState) pick() int {
	if len(r.aux) > 0 {
		ti := r.aux[0]
		r.aux = r.aux[1:]
		return ti
	}
	if len(r.ready) > 0 {
		ti := r.ready[0]
		r.ready = r.ready[1:]
		return ti
	}
	return -1
}

// runSlice runs one dispatch slice of t: churn operations until the
// quantum expires, a block point fires, or the task finishes. The
// drain-and-close epilogue is not preemptible — exiting tasks settle
// their frames within the slice, which is what keeps the server
// quiescent and auditable the moment Run returns.
func (r *runState) runSlice(t *task) sliceOutcome {
	if t.err != nil {
		return r.exitSlice(t)
	}
	budget := -1 // FIFO: unbounded slice
	switch r.cfg.Policy {
	case RR:
		budget = r.cfg.Quantum
	case VRR:
		if t.quantumLeft > 0 {
			budget = t.quantumLeft
			t.quantumLeft = 0
		} else {
			budget = r.cfg.Quantum
		}
	}
	used := 0
	for t.churned < uint64(t.spec.Ops) {
		if budget >= 0 && used >= budget {
			return slicePreempted
		}
		ok, blocked := t.step()
		if !ok {
			return r.exitSlice(t)
		}
		used++
		if blocked {
			if r.cfg.Policy == VRR && budget > used {
				t.quantumLeft = budget - used
			}
			return sliceBlocked
		}
	}
	return r.exitSlice(t)
}

// step performs one churn operation. It returns ok=false on a fatal
// task error and blocked=true when a scripted block point (or
// backpressure) follows the completed operation.
func (t *task) step() (ok, blocked bool) {
	var opErr error
	switch {
	case len(t.owned) > 0 && t.rng.Intn(10) < 3:
		j := t.rng.Intn(len(t.owned))
		opErr = t.alloc.Free(t.owned[j])
		if opErr == nil {
			t.owned[j] = t.owned[len(t.owned)-1]
			t.owned = t.owned[:len(t.owned)-1]
		}
	case len(t.owned) > 0 && t.rng.Intn(10) < 2:
		j := t.rng.Intn(len(t.owned))
		var f phys.Frame
		f, opErr = t.alloc.Realloc(t.owned[j])
		if opErr == nil {
			t.owned[j] = f
		}
	default:
		var f phys.Frame
		f, opErr = t.alloc.Alloc()
		if opErr == nil {
			t.owned = append(t.owned, f)
		}
	}
	switch {
	case errors.Is(opErr, serve.ErrBusy):
		// Backpressure: the operation did not happen. Model it as a
		// one-tick block (cannot fire in the serial in-process loop,
		// but a live daemon under concurrent load can report it).
		return true, true
	case errors.Is(opErr, serve.ErrNoMemory):
		// Machine-wide exhaustion: give a frame back, as the serve
		// churn driver does; a task with nothing to give dies.
		if len(t.owned) == 0 {
			t.err = opErr
			return false, false
		}
		if err := t.alloc.Free(t.owned[len(t.owned)-1]); err != nil {
			t.err = err
			return false, false
		}
		t.owned = t.owned[:len(t.owned)-1]
	case opErr != nil:
		t.err = opErr
		return false, false
	}
	t.churned++
	t.completed++
	if t.spec.BlockEvery > 0 && t.churned >= t.nextBlock && t.churned < uint64(t.spec.Ops) {
		t.nextBlock += uint64(t.spec.BlockEvery)
		return true, true
	}
	return true, false
}

// exitSlice drains the task's live set, closes its allocator, and
// reports the slice as exited. Drain and close failures land in the
// task's error unless a churn error is already recorded.
func (r *runState) exitSlice(t *task) sliceOutcome {
	if t.alloc != nil {
		for _, f := range t.owned {
			if err := t.alloc.Free(f); err != nil {
				if t.err == nil {
					t.err = fmt.Errorf("drain: %w", err)
				}
				break
			}
			t.completed++
		}
		t.owned = nil
		if err := t.alloc.Close(); err != nil && t.err == nil {
			t.err = fmt.Errorf("close: %w", err)
		}
	}
	return sliceExited
}

// AssignFunc decides, at dispatch time, the core pin and color claim
// of a task admitted onto a simulated core.
type AssignFunc func(task, core int) (topology.CoreID, []int, []int)

// PlanAssign builds the standard dispatch-time color assignment: a
// MEM+LLC plan over every core of the machine, handed out by task
// index, with every uncoloredEvery-th task left uncolored so scenarios
// exercise the default path too (0 colors everyone). Simulated cores
// pin round-robin across NUMA nodes.
func PlanAssign(m *phys.Mapping, topo *topology.Topology, uncoloredEvery int) (AssignFunc, error) {
	cores := make([]topology.CoreID, topo.Cores())
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	asn, err := policy.Plan(policy.MEMLLC, m, topo, cores)
	if err != nil {
		return nil, err
	}
	nodes := topo.Nodes()
	return func(task, core int) (topology.CoreID, []int, []int) {
		node := topology.NodeID(core % nodes)
		nodeCores := topo.CoresOfNode(node)
		cid := nodeCores[(core/nodes)%len(nodeCores)]
		if uncoloredEvery > 0 && (task+1)%uncoloredEvery == 0 {
			return cid, nil, nil
		}
		a := asn[task%len(asn)]
		return cid, a.BankColors, a.LLCColors
	}, nil
}

// serveBackend admits tasks as in-process serve.Clients — the
// reference the wire daemon is differentially tested against.
type serveBackend struct {
	s      *serve.Server
	assign AssignFunc
}

// NewServeBackend returns a Backend over the in-process server.
func NewServeBackend(s *serve.Server, assign AssignFunc) Backend {
	return &serveBackend{s: s, assign: assign}
}

func (b *serveBackend) Open(task, core int) (Allocator, error) {
	cid, bank, llc := b.assign(task, core)
	c, err := b.s.NewClient(cid)
	if err != nil {
		return nil, err
	}
	if len(bank) > 0 || len(llc) > 0 {
		if err := c.SetColors(bank, llc); err != nil {
			return nil, err
		}
	}
	return serveAlloc{c}, nil
}

type serveAlloc struct{ c *serve.Client }

func (a serveAlloc) Alloc() (phys.Frame, error)                 { return a.c.Alloc() }
func (a serveAlloc) Realloc(old phys.Frame) (phys.Frame, error) { return a.c.Realloc(old) }
func (a serveAlloc) Free(f phys.Frame) error                    { return a.c.Free(f) }
func (a serveAlloc) Close() error                               { return nil }
