package mem

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 256 << 20

func newSystem(t *testing.T) *System {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(top, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCacheHierarchyLatencies(t *testing.T) {
	s := newSystem(t)
	cfg := DefaultConfig()
	a := phys.Addr(0x4000)

	// Cold: full DRAM round trip.
	d1 := s.Access(0, a, false, 0)
	coldLat := d1

	// Warm: L1 hit.
	t2 := d1 + 100
	d2 := s.Access(0, a, false, t2)
	if got, want := d2-t2, cfg.L1.Latency; got != want {
		t.Errorf("L1 hit latency = %d, want %d", got, want)
	}
	if coldLat <= cfg.L1.Latency+cfg.L2.Latency+cfg.L3.Latency {
		t.Errorf("cold latency %d suspiciously small", coldLat)
	}
	st := s.CoreStats(0)
	if st.Accesses != 2 || st.L1Hits != 1 || st.DRAMReads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestL3SharedAcrossCores(t *testing.T) {
	s := newSystem(t)
	a := phys.Addr(0x8000)
	d := s.Access(0, a, false, 0) // core 0 pulls line into L3
	// Core 1 misses L1/L2 but hits shared L3.
	t2 := d + 10
	d2 := s.Access(1, a, false, t2)
	cfg := DefaultConfig()
	want := cfg.L1.Latency + cfg.L2.Latency + cfg.L3.Latency
	if got := d2 - t2; got != want {
		t.Errorf("cross-core L3 hit latency = %d, want %d", got, want)
	}
	if st := s.CoreStats(1); st.L3Hits != 1 {
		t.Errorf("core 1 stats = %+v, want one L3 hit", st)
	}
}

func TestLocalFasterThanRemote(t *testing.T) {
	s := newSystem(t)
	m := s.Mapping()
	top := s.Topology()

	// Core 0 accessing its local node vs the farthest node,
	// uncached lines in both cases.
	local, _ := m.NodeRange(int(top.NodeOfCore(0)))
	remoteNode := 3 // 3 hops from core 0
	remote, _ := m.NodeRange(remoteNode)

	d1 := s.Access(0, local+0x100000, false, 0)
	s2 := d1 + 1000
	d2 := s.Access(0, remote+0x100000, false, s2)
	localLat := d1
	remoteLat := d2 - s2
	if remoteLat <= localLat {
		t.Errorf("remote access (%d) not slower than local (%d)", remoteLat, localLat)
	}
	// The gap must be at least the extra 2*(3-1) hops of propagation.
	cfg := DefaultConfig()
	minGap := 2 * cfg.HopCycles * 2
	if remoteLat-localLat < minGap {
		t.Errorf("remote-local gap = %d, want >= %d", remoteLat-localLat, minGap)
	}
	if st := s.CoreStats(0); st.RemoteDRAM != 1 {
		t.Errorf("RemoteDRAM = %d, want 1", st.RemoteDRAM)
	}
}

func TestCrossNodeLinkContention(t *testing.T) {
	s := newSystem(t)
	m := s.Mapping()
	remote, _ := m.NodeRange(3)

	// Two cores on node 0 issue simultaneous remote accesses to
	// node 3 over the same link: the second is delayed.
	d1 := s.Access(0, remote+0x10000, false, 0)
	d2 := s.Access(1, remote+0x20000, false, 0)
	if d2 <= d1 {
		t.Errorf("link contention missing: %d vs %d", d2, d1)
	}
	// A fresh system with the second access going to a different
	// node pair must not see that delay.
	s2 := newSystem(t)
	other, _ := s2.Mapping().NodeRange(2)
	e1 := s2.Access(0, remote+0x10000, false, 0)
	e2 := s2.Access(1, other+0x20000, false, 0)
	_ = e1
	if e2 >= d2 {
		t.Errorf("distinct node pairs contended: %d vs %d", e2, d2)
	}
}

func TestDirtyWritebackOccupiesBank(t *testing.T) {
	s := newSystem(t)
	m := s.Mapping()
	// Write a line, then evict it from L3 by filling its set with
	// 12 conflicting lines (L3 is 12-way; same set = same bits
	// 7..19 with different tags).
	victim := phys.Addr(0x100000)
	s.Access(0, victim, true, 0)
	var tnow clock.Time = 100000
	for i := 1; i <= 12; i++ {
		conflict := victim + phys.Addr(i)<<20 // same set bits, different tag
		if !m.Valid(conflict) {
			t.Skip("test memory too small for conflict generation")
		}
		tnow = s.Access(0, conflict, false, tnow) + 1000
	}
	// The writeback shows up in DRAM stats as an extra access
	// beyond the 13 demand reads... demand accesses: 13, writeback >= 1.
	tot := s.DRAM().TotalStats()
	if tot.Accesses < 14 {
		t.Errorf("DRAM accesses = %d, want >= 14 (13 demand + writeback)", tot.Accesses)
	}
}

func TestNodeMismatchRejected(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, 2) // 2 != 4 nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(top, m, DefaultConfig()); err == nil {
		t.Error("New accepted node-count mismatch")
	}
}

func TestInvalidAddressPanics(t *testing.T) {
	s := newSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic on invalid address")
		}
	}()
	s.Access(0, phys.Addr(testMem), false, 0)
}

func TestResetStatsAndFlush(t *testing.T) {
	s := newSystem(t)
	s.Access(0, 0x4000, false, 0)
	s.ResetStats()
	if st := s.TotalStats(); st.Accesses != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
	// Contents survive ResetStats: next access is an L1 hit.
	d := s.Access(0, 0x4000, false, 0)
	if got := d - 0; got != DefaultConfig().L1.Latency {
		t.Errorf("post-reset access latency = %d, want L1 hit", got)
	}
	s.FlushCaches()
	s.ResetStats()
	d2 := s.Access(0, 0x4000, false, 0)
	if d2 == DefaultConfig().L1.Latency {
		t.Error("FlushCaches did not invalidate L1")
	}
}

func TestTotalStatsAggregation(t *testing.T) {
	s := newSystem(t)
	s.Access(0, 0x4000, false, 0)
	s.Access(5, 0x80000, false, 0)
	tot := s.TotalStats()
	if tot.Accesses != 2 {
		t.Errorf("TotalStats.Accesses = %d, want 2", tot.Accesses)
	}
	if tot.TotalCycles == 0 {
		t.Error("TotalCycles not accumulated")
	}
}

func TestL3PerSocket(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L3PerSocket = true
	s, err := New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := phys.Addr(0x40000)
	// Core 0 (socket 0) pulls the line into socket 0's L3.
	d := s.Access(0, a, false, 0)
	// Core 8 (socket 1) misses its own L3 and goes to DRAM: its
	// latency must exceed an L3 hit.
	t2 := d + 1000
	d2 := s.Access(8, a, false, t2)
	l3hit := cfg.L1.Latency + cfg.L2.Latency + cfg.L3.Latency
	if d2-t2 <= l3hit {
		t.Errorf("cross-socket access hit a foreign L3: latency %d", d2-t2)
	}
	// Core 1 (socket 0) does hit socket 0's L3.
	t3 := d2 + 1000
	d3 := s.Access(1, a, false, t3)
	if d3-t3 != l3hit {
		t.Errorf("same-socket L3 hit latency = %d, want %d", d3-t3, l3hit)
	}
	if st := s.L3Stats(); st.Accesses == 0 {
		t.Error("L3Stats empty")
	}
}

func TestL3StatsAggregation(t *testing.T) {
	s := newSystem(t)
	s.Access(0, 0x4000, false, 0)
	if got, want := s.L3Stats(), s.L3().Stats(); got != want {
		t.Errorf("shared-L3 aggregate %+v != instance stats %+v", got, want)
	}
}

func TestAccessLevelClassification(t *testing.T) {
	s := newSystem(t)
	m := s.Mapping()
	local, _ := m.NodeRange(0)
	remote, _ := m.NodeRange(3)

	_, lvl := s.AccessLevel(0, local+0x1000, false, 0)
	if lvl != LevelDRAMLocal {
		t.Errorf("cold local access level = %v", lvl)
	}
	_, lvl = s.AccessLevel(0, local+0x1000, false, 100000)
	if lvl != LevelL1 {
		t.Errorf("warm access level = %v", lvl)
	}
	_, lvl = s.AccessLevel(0, remote+0x1000, false, 200000)
	if lvl != LevelDRAMRemote {
		t.Errorf("cold remote access level = %v", lvl)
	}
	// Another core on the same... L2 level: evict from L1 by
	// conflict is fiddly; instead check L3 via cross-core hit.
	_, lvl = s.AccessLevel(1, local+0x1000, false, 300000)
	if lvl != LevelL3 {
		t.Errorf("cross-core access level = %v, want L3", lvl)
	}
	for l, want := range map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelL3: "L3",
		LevelDRAMLocal: "DRAM-local", LevelDRAMRemote: "DRAM-remote",
	} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q", l, l.String())
		}
	}
	if Level(99).String() != "level?" {
		t.Error("unknown level string")
	}
}
