// Package mem glues the cache hierarchy, the NUMA interconnect and
// the DRAM subsystem into a single memory system: given a core, a
// physical address and an instant, it resolves the access latency
// including every contention effect TintMalloc targets —
//
//   - shared-L3 interference (threads evicting each other's lines),
//   - DRAM bank row-buffer conflicts and controller queueing,
//   - remote-controller hop penalties and cross-node link contention.
//
// The model is a memory-side timing simulator: L1/L2 are per-core and
// private, L3 is shared machine-wide (paper Sec. II-A), and misses
// travel over a hop-priced interconnect to the address's home
// controller. Dirty L3 victims issue fire-and-forget DRAM writebacks
// that occupy banks but do not delay the requester.
//
// Not safe for concurrent use: the discrete-event engine serializes
// accesses in virtual-time order.
package mem

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/cache"
	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/dram"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Config parameterizes a memory system.
type Config struct {
	L1, L2, L3 cache.Config
	// L3PerSocket splits the last-level cache into one instance
	// per socket (the physical Opteron 6128 layout: 6 MB per die)
	// instead of the paper's single machine-wide L3. Each socket's
	// L3 uses the L3 config as given; pass a halved SizeBytes for
	// a capacity-neutral comparison. Cross-socket requests miss
	// straight to DRAM (no L3-to-L3 transfers are modeled).
	L3PerSocket bool
	DRAM        dram.Timing
	// HopCycles is the one-way propagation cost per interconnect
	// hop; a DRAM access pays 2*HopCycles*hops (request + reply).
	HopCycles clock.Dur
	// LinkBurst is the occupancy a cross-node transfer places on
	// the (source node -> home node) link; concurrent remote
	// traffic between the same node pair serializes on it.
	LinkBurst clock.Dur
}

// DefaultConfig mirrors the paper's Opteron 6128 platform.
func DefaultConfig() Config {
	return Config{
		L1:        cache.DefaultL1(),
		L2:        cache.DefaultL2(),
		L3:        cache.DefaultL3(),
		DRAM:      dram.DefaultTiming(),
		HopCycles: 25,
		LinkBurst: 4,
	}
}

// Level identifies where an access was served.
type Level uint8

// Service levels, fastest first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelDRAMLocal
	LevelDRAMRemote
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelDRAMLocal:
		return "DRAM-local"
	case LevelDRAMRemote:
		return "DRAM-remote"
	default:
		return "level?"
	}
}

// CoreStats counts per-core access outcomes.
type CoreStats struct {
	Accesses    uint64
	L1Hits      uint64
	L2Hits      uint64
	L3Hits      uint64
	DRAMReads   uint64
	RemoteDRAM  uint64 // DRAM accesses served by a non-local controller
	TotalCycles clock.Dur
}

// System is the machine's memory hierarchy.
type System struct {
	topo    *topology.Topology
	mapping *phys.Mapping
	cfg     Config
	l1      []*cache.Cache
	l2      []*cache.Cache
	l3      []*cache.Cache // one entry (shared) or one per socket
	dram    *dram.System
	// linkBusy[src*nodes+dst] is the busy-until instant of the
	// src->dst interconnect path (cross-node transfers only).
	linkBusy []clock.Time
	stats    []CoreStats
}

// New builds a memory system for the given topology and mapping.
func New(topo *topology.Topology, mapping *phys.Mapping, cfg Config) (*System, error) {
	if topo.Nodes() != mapping.Nodes() {
		return nil, fmt.Errorf("mem: topology has %d nodes but mapping has %d",
			topo.Nodes(), mapping.Nodes())
	}
	s := &System{
		topo:     topo,
		mapping:  mapping,
		cfg:      cfg,
		l1:       make([]*cache.Cache, topo.Cores()),
		l2:       make([]*cache.Cache, topo.Cores()),
		linkBusy: make([]clock.Time, topo.Nodes()*topo.Nodes()),
		stats:    make([]CoreStats, topo.Cores()),
	}
	// Per-core L1/L2 pairs are built lazily at a core's first access:
	// a sweep that engages 16 of 32 cores (or a fresh System per cell,
	// as the bench harness does) never pays for the idle cores'
	// caches. Validate the configs here so coreCaches cannot fail.
	if _, err := cache.New(cfg.L1); err != nil {
		return nil, err
	}
	if _, err := cache.New(cfg.L2); err != nil {
		return nil, err
	}
	nL3 := 1
	if cfg.L3PerSocket {
		nL3 = topo.Sockets()
	}
	for i := 0; i < nL3; i++ {
		l3, err := cache.New(cfg.L3)
		if err != nil {
			return nil, err
		}
		s.l3 = append(s.l3, l3)
	}
	ds, err := dram.NewSystem(mapping, cfg.DRAM)
	if err != nil {
		return nil, err
	}
	s.dram = ds
	return s, nil
}

// Mapping returns the system's address mapping.
func (s *System) Mapping() *phys.Mapping { return s.mapping }

// Topology returns the machine topology.
func (s *System) Topology() *topology.Topology { return s.topo }

// coreCaches returns core's private L1/L2 pair, building it on first
// use. The configs were validated in New, so construction cannot
// fail; a lazily-built cache is indistinguishable from an eager one
// (both start empty with zeroed stats).
func (s *System) coreCaches(core topology.CoreID) (*cache.Cache, *cache.Cache) {
	if s.l1[core] == nil {
		l1, _ := cache.New(s.cfg.L1)
		l2, _ := cache.New(s.cfg.L2)
		s.l1[core], s.l2[core] = l1, l2
	}
	return s.l1[core], s.l2[core]
}

// l3For returns the last-level cache serving the given core.
func (s *System) l3For(core topology.CoreID) *cache.Cache {
	if len(s.l3) == 1 {
		return s.l3[0]
	}
	return s.l3[s.topo.SocketOfCore(core)]
}

// L3 exposes the shared last-level cache (the first instance under
// L3PerSocket; use L3Stats for machine-wide counters).
func (s *System) L3() *cache.Cache { return s.l3[0] }

// L3Stats aggregates the counters of every last-level cache.
func (s *System) L3Stats() cache.Stats {
	var out cache.Stats
	for _, c := range s.l3 {
		st := c.Stats()
		out.Accesses += st.Accesses
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
	}
	return out
}

// DRAM exposes the DRAM subsystem (for stats inspection).
func (s *System) DRAM() *dram.System { return s.dram }

// Access resolves one memory reference issued by core at instant t to
// physical address a, returning the completion time.
func (s *System) Access(core topology.CoreID, a phys.Addr, write bool, t clock.Time) clock.Time {
	done, _ := s.AccessLevel(core, a, write, t)
	return done
}

// AccessLevel is Access plus the level that served the request.
func (s *System) AccessLevel(core topology.CoreID, a phys.Addr, write bool, t clock.Time) (clock.Time, Level) {
	if !s.mapping.Valid(a) {
		panic(fmt.Sprintf("mem: access to invalid physical address %#x", a))
	}
	st := &s.stats[core]
	st.Accesses++
	ln := uint64(a) >> phys.LineShift

	l1, l2 := s.coreCaches(core)
	done := t + l1.Latency()
	if l1.Access(ln, write).Hit {
		st.L1Hits++
		st.TotalCycles += done - t
		return done, LevelL1
	}
	done += l2.Latency()
	if l2.Access(ln, write).Hit {
		st.L2Hits++
		st.TotalCycles += done - t
		return done, LevelL2
	}
	l3 := s.l3For(core)
	done += l3.Latency()
	l3res := l3.Access(ln, write)
	if l3res.Hit {
		st.L3Hits++
		st.TotalCycles += done - t
		return done, LevelL3
	}

	// L3 miss: travel to the home controller.
	st.DRAMReads++
	srcNode := s.topo.NodeOfCore(core)
	homeNode := topology.NodeID(s.mapping.NodeOf(a))
	hops := s.topo.Hops(core, homeNode)
	prop := s.cfg.HopCycles * clock.Dur(hops)

	level := LevelDRAMLocal
	depart := done
	if srcNode != homeNode {
		st.RemoteDRAM++
		level = LevelDRAMRemote
		li := int(srcNode)*s.topo.Nodes() + int(homeNode)
		start := clock.Max(depart, s.linkBusy[li])
		s.linkBusy[li] = start + s.cfg.LinkBurst
		depart = start
	}
	arrive := depart + prop
	dramDone, _ := s.dram.Access(a, arrive, write)
	done = dramDone + prop // reply propagation

	// Dirty L3 victim: fire-and-forget writeback occupying its
	// home bank (does not delay this requester). Victim lines can
	// only enter the L3 through the validity check at the top of
	// AccessLevel, so the victim address needs no re-validation.
	if l3res.EvictedValid && l3res.EvictedDirty {
		victim := phys.Addr(l3res.EvictedLine << phys.LineShift)
		s.dram.Access(victim, done, true)
	}
	st.TotalCycles += done - t
	return done, level
}

// CoreStats returns a copy of core c's counters.
func (s *System) CoreStats(c topology.CoreID) CoreStats { return s.stats[c] }

// TotalStats sums the per-core counters.
func (s *System) TotalStats() CoreStats {
	var out CoreStats
	for _, st := range s.stats {
		out.Accesses += st.Accesses
		out.L1Hits += st.L1Hits
		out.L2Hits += st.L2Hits
		out.L3Hits += st.L3Hits
		out.DRAMReads += st.DRAMReads
		out.RemoteDRAM += st.RemoteDRAM
		out.TotalCycles += st.TotalCycles
	}
	return out
}

// ResetStats zeroes all per-core counters (cache/DRAM contents are
// preserved).
func (s *System) ResetStats() {
	for i := range s.stats {
		s.stats[i] = CoreStats{}
	}
	for i := range s.l1 {
		if s.l1[i] != nil {
			s.l1[i].ResetStats()
			s.l2[i].ResetStats()
		}
	}
	for _, c := range s.l3 {
		c.ResetStats()
	}
	for n := 0; n < s.dram.Nodes(); n++ {
		s.dram.Controller(n).ResetStats()
	}
}

// FlushCaches invalidates every cache in the hierarchy.
func (s *System) FlushCaches() {
	for i := range s.l1 {
		if s.l1[i] != nil {
			s.l1[i].Flush()
			s.l2[i].Flush()
		}
	}
	for _, c := range s.l3 {
		c.Flush()
	}
}
