package mem

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Regression test for the dirty-L3-victim write-back path: the
// victim's fire-and-forget write must reach the victim line's OWN
// home controller (decoded from the reconstructed victim address),
// not the controller of the access that caused the eviction. A bug
// here would silently shift write-back pressure between nodes and
// corrupt every per-controller figure the paper reports.
func TestDirtyL3WritebackHitsHomeBank(t *testing.T) {
	s := newSystem(t)
	cfg := DefaultConfig()

	// Node 1's base (64 MiB with 256 MiB over 4 contiguous nodes) is
	// 1 MiB-aligned, so it shares L3 set 0 with the node-0 addresses
	// at 1 MiB stride used to force the eviction below.
	a1 := phys.Addr(64 << 20)
	if n := s.Mapping().NodeOf(a1); n != 1 {
		t.Fatalf("test address %#x decodes to node %d, want 1", a1, n)
	}

	// Dirty a1 in the hierarchy: one DRAM fill on node 1's controller.
	now := s.Access(0, a1, true, 0)
	if got := s.DRAM().Controller(1).Stats().Accesses; got != 1 {
		t.Fatalf("after dirty fill: node-1 controller saw %d accesses, want 1", got)
	}

	// Evict it with same-set node-0 reads. L3 is 12-way, so eleven
	// reads park in the set's remaining ways and the twelfth chooses
	// the LRU victim — the dirty a1 line.
	ways := cfg.L3.Ways
	for i := 0; i < ways; i++ {
		a0 := phys.Addr(uint64(i) << 20)
		if n := s.Mapping().NodeOf(a0); n != 0 {
			t.Fatalf("filler address %#x decodes to node %d, want 0", a0, n)
		}
		now = s.Access(0, a0, false, now+1)
		if i < ways-1 {
			if got := s.DRAM().Controller(1).Stats().Accesses; got != 1 {
				t.Fatalf("after %d filler reads: node-1 controller saw %d accesses, want still 1", i+1, got)
			}
		}
	}
	if got := s.DRAM().Controller(1).Stats().Accesses; got != 2 {
		t.Fatalf("node-1 controller saw %d accesses, want 2 (fill + dirty write-back)", got)
	}
	if got := s.DRAM().Controller(0).Stats().Accesses; got != uint64(ways) {
		t.Fatalf("node-0 controller saw %d accesses, want %d filler fills", got, ways)
	}
	if !s.L3().Contains(uint64(a1) >> phys.LineShift) {
		return // evicted as expected
	}
	t.Fatal("dirty line still resident in L3 after a full set of conflicting fills")
}
