package mem

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Microbenchmarks for the full memory-hierarchy walk the engine runs
// once per memory op: L1 -> L2 -> L3 -> DRAM with write-back of dirty
// victims.

func benchSystem(b *testing.B) *System {
	b.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(top, m, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkAccessL1Hit(b *testing.B) {
	s := benchSystem(b)
	a := phys.Addr(0x4000)
	now := s.Access(0, a, false, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = s.Access(0, a, false, now)
	}
}

func BenchmarkAccessDRAMStream(b *testing.B) {
	s := benchSystem(b)
	var now clock.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Page-strided sweep: misses every level, exercises decode,
		// DRAM row buffers and (for writes) dirty-victim write-back.
		a := phys.Addr(uint64(i) * phys.PageSize % testMem)
		now = s.Access(0, a, i&1 == 0, now)
	}
}

func BenchmarkAccessMixed(b *testing.B) {
	s := benchSystem(b)
	var now clock.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 3 hits on a hot line for every cold line: roughly the
		// hit/miss blend the workload suite produces.
		a := phys.Addr(0x8000)
		if i&3 == 0 {
			a = phys.Addr(uint64(i) * 37 * phys.LineSize % testMem)
		}
		now = s.Access(0, a, false, now)
	}
}
