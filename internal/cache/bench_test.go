package cache

import "testing"

// Microbenchmarks for Cache.Access, the single hottest leaf of the
// simulation (three calls per memory op in the worst case). The
// age-stamp LRU encodes recency in per-way stamps so a hit refreshes
// one word instead of rotating the MRU order.

func benchCache(b *testing.B, cfg Config) *Cache {
	b.Helper()
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkAccessL1Hit(b *testing.B) {
	c := benchCache(b, DefaultL1())
	c.Access(0x1234, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1234, false)
	}
}

func BenchmarkAccessL3Hit(b *testing.B) {
	c := benchCache(b, DefaultL3())
	// Fill one set, then hit its ways round-robin.
	lines := make([]uint64, c.cfg.Ways)
	for i := range lines {
		lines[i] = uint64(i) << c.setShift // same set 0, distinct tags
		c.Access(lines[i], false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(lines[i%len(lines)], false)
	}
}

func BenchmarkAccessMissEvict(b *testing.B) {
	c := benchCache(b, DefaultL3())
	sets := uint64(c.Sets())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Walk distinct tags through one set per iteration: every
		// access past the warm-up misses and (once full) evicts.
		ln := uint64(i)%sets | uint64(i)<<c.setShift
		c.Access(ln, i&1 == 0)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c := benchCache(b, DefaultL2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), false) // sequential lines: all sets, steady misses
	}
}
