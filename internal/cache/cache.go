// Package cache models set-associative write-back caches with LRU
// replacement: per-core private L1/L2 and the shared last-level L3 of
// the paper's platform (Sec. II-A).
//
// The L3's set index covers physical-address bits [LineShift,
// LineShift+log2(sets)); with 128-byte lines and 8192 sets that spans
// bits 7-19 and therefore contains the page-color bits 12-16. Threads
// holding disjoint LLC colors consequently occupy disjoint L3 sets —
// the isolation mechanism TintMalloc's LLC coloring relies on.
//
// Caches are not safe for concurrent use; the discrete-event engine
// serializes all accesses.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/tintmalloc/tintmalloc/internal/clock"
)

// Config describes one cache level.
type Config struct {
	Name      string    // for diagnostics ("L1d", "L2", "L3")
	SizeBytes uint64    // total capacity
	Ways      int       // associativity
	LineShift uint      // log2 line size
	Latency   clock.Dur // hit latency in cycles
}

// Stats counts cache events.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64 // valid lines displaced
}

// HitRate returns Hits/Accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Result reports the outcome of one access.
type Result struct {
	Hit          bool
	EvictedLine  uint64 // full line number of the displaced victim
	EvictedValid bool
	EvictedDirty bool
}

// Cache is a single set-associative level.
//
// Way state is structure-of-arrays: tags and replacement stamps live
// in parallel slices indexed by set*ways+way. A tag entry is uint32
// storing tag+1, so the zero value means invalid and the hit scan
// sweeps half the memory a word-wide array would (the simulated tag
// arrays are the simulator's own hottest data — a 12 MB L3 model
// keeps 98K ways). Tags are line numbers right-shifted by the set
// count; Access panics if one ever exceeds 32 bits, which with
// 128-byte lines puts the modeled physical address space bound at
// 512 GB per set — far past any machine the paper targets. A stamp
// entry is uint64 tick<<1 | dirty with
// tick a per-cache monotonic access counter starting at 1 (stamp 0
// likewise means invalid). Both encodings make the slices' zero
// values the empty cache, so New performs no fill pass — per-core
// L1/L2 construction is just two allocations. Ticks are unique, so
// the minimum stamp in a set identifies the exact LRU way and invalid
// ways (stamp 0) are always victimized first — the same victim an
// MRU-ordered list produces, without moving any memory on a hit. The
// split also keeps the hit scan (tags only) and the victim scan
// (stamps only) each on a single densely-packed array.
type Cache struct {
	cfg      Config
	setShift uint // log2(sets)
	setMask  uint64
	ways     int
	tick     uint64 // monotonic access counter (starts at 1)
	// tickAtReset is tick's value at the last ResetStats: the access
	// counter doubles as the Accesses statistic (and Misses is
	// Accesses-Hits), so the hot path pays for one counter, not three.
	tickAtReset uint64
	// tags[set*ways : (set+1)*ways] / stamps[...] hold one set; way
	// order within a set is arbitrary (recency lives in the stamps).
	tags   []uint32 // tag+1; 0 = invalid
	stamps []uint64 // tick<<1 | dirty; 0 = invalid
	stats  Stats
}

// New validates cfg and builds the cache. sets = size/(line*ways)
// must be a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes == 0 || cfg.Ways < 1 {
		return nil, fmt.Errorf("cache %s: size and ways must be positive", cfg.Name)
	}
	lineSize := uint64(1) << cfg.LineShift
	if cfg.SizeBytes%(lineSize*uint64(cfg.Ways)) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by line*ways", cfg.Name, cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / (lineSize * uint64(cfg.Ways))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	n := sets * uint64(cfg.Ways)
	return &Cache{
		cfg:      cfg,
		setShift: uint(bits.TrailingZeros64(sets)),
		setMask:  sets - 1,
		ways:     cfg.Ways,
		tags:     make([]uint32, n),
		stamps:   make([]uint64, n),
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask + 1) }

// Latency returns the hit latency.
func (c *Cache) Latency() clock.Dur { return c.cfg.Latency }

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// SetOf returns the set index of a line number (addr >> LineShift).
func (c *Cache) SetOf(ln uint64) int { return int(ln & c.setMask) }

// Access looks up line ln (an address right-shifted by LineShift),
// installing it on a miss. write marks the line dirty.
func (c *Cache) Access(ln uint64, write bool) Result {
	c.tick++
	set := ln & c.setMask
	tag := ln >> c.setShift
	if tag >= 1<<32-1 {
		panic(fmt.Sprintf("cache %s: line %#x tag exceeds 32 bits", c.cfg.Name, ln))
	}
	want := uint32(tag) + 1
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways : base+c.ways]
	stamps := c.stamps[base : base+c.ways : base+c.ways]

	var w uint64
	if write {
		w = 1
	}
	for i := range tags {
		if tags[i] == want {
			// Hit: refresh recency, keeping any prior dirty bit.
			stamps[i] = c.tick<<1 | stamps[i]&1 | w
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	victim := 0
	min := stamps[0]
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < min {
			min, victim = stamps[i], i
		}
	}
	res := Result{}
	if min != 0 {
		c.stats.Evictions++
		res.EvictedValid = true
		res.EvictedDirty = min&1 != 0
		res.EvictedLine = uint64(tags[victim]-1)<<c.setShift | set
	}
	tags[victim] = want
	stamps[victim] = c.tick<<1 | w
	return res
}

// Contains reports (without LRU side effects) whether ln is cached.
func (c *Cache) Contains(ln uint64) bool {
	set := ln & c.setMask
	tag := ln >> c.setShift
	if tag >= 1<<32-1 {
		return false
	}
	base := int(set) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == uint32(tag)+1 {
			return true
		}
	}
	return false
}

// Flush invalidates every line (dirty contents are discarded; victim
// write-back on flush is not modeled).
func (c *Cache) Flush() {
	clear(c.tags)
	clear(c.stamps)
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Accesses = c.tick - c.tickAtReset
	s.Misses = s.Accesses - s.Hits
	return s
}

// ResetStats zeroes the counters without invalidating contents.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	c.tickAtReset = c.tick
}

// Opteron-like default level configurations (paper Sec. IV: 128 KB
// L1, 512 KB private L2, 12 MB shared L3, 128-byte lines).

// DefaultL1 returns the per-core L1 data cache configuration.
func DefaultL1() Config {
	return Config{Name: "L1d", SizeBytes: 128 << 10, Ways: 2, LineShift: 7, Latency: 3}
}

// DefaultL2 returns the per-core unified L2 configuration.
func DefaultL2() Config {
	return Config{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LineShift: 7, Latency: 15}
}

// DefaultL3 returns the shared last-level cache configuration: 12 MB,
// 12-way, 8192 sets, so the set index spans address bits 7-19 and
// includes the LLC color bits 12-16.
func DefaultL3() Config {
	return Config{Name: "L3", SizeBytes: 12 << 20, Ways: 12, LineShift: 7, Latency: 40}
}
