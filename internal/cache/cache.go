// Package cache models set-associative write-back caches with LRU
// replacement: per-core private L1/L2 and the shared last-level L3 of
// the paper's platform (Sec. II-A).
//
// The L3's set index covers physical-address bits [LineShift,
// LineShift+log2(sets)); with 128-byte lines and 8192 sets that spans
// bits 7-19 and therefore contains the page-color bits 12-16. Threads
// holding disjoint LLC colors consequently occupy disjoint L3 sets —
// the isolation mechanism TintMalloc's LLC coloring relies on.
//
// Caches are not safe for concurrent use; the discrete-event engine
// serializes all accesses.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/tintmalloc/tintmalloc/internal/clock"
)

// Config describes one cache level.
type Config struct {
	Name      string    // for diagnostics ("L1d", "L2", "L3")
	SizeBytes uint64    // total capacity
	Ways      int       // associativity
	LineShift uint      // log2 line size
	Latency   clock.Dur // hit latency in cycles
}

// Stats counts cache events.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64 // valid lines displaced
}

// HitRate returns Hits/Accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Result reports the outcome of one access.
type Result struct {
	Hit          bool
	EvictedLine  uint64 // full line number of the displaced victim
	EvictedValid bool
	EvictedDirty bool
}

// tagInvalid marks an empty way. Real tags are physical line numbers
// right-shifted by the set count, so they can never reach 2^64-1 on
// any mappable address space.
const tagInvalid = ^uint64(0)

// way is one cache way: its tag plus the replacement stamp
// stamp == tick<<1 | dirty, where tick is a per-cache monotonic
// access counter (stamp 0 means invalid — paired with tagInvalid so
// the hit scan needs no separate validity check). Ticks are unique,
// so the minimum stamp in a set identifies the exact LRU way and
// invalid ways (stamp 0) are always victimized first — the same
// victim an MRU-ordered list produces, without moving any memory on
// a hit.
type way struct {
	tag   uint64
	stamp uint64
}

// Cache is a single set-associative level.
type Cache struct {
	cfg      Config
	setShift uint // log2(sets)
	setMask  uint64
	ways     int
	tick     uint64 // monotonic access counter (starts at 1)
	// lines[set*ways : (set+1)*ways] holds the ways of one set; way
	// order within a set is arbitrary (recency lives in the stamps).
	lines []way
	stats Stats
}

// New validates cfg and builds the cache. sets = size/(line*ways)
// must be a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes == 0 || cfg.Ways < 1 {
		return nil, fmt.Errorf("cache %s: size and ways must be positive", cfg.Name)
	}
	lineSize := uint64(1) << cfg.LineShift
	if cfg.SizeBytes%(lineSize*uint64(cfg.Ways)) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible by line*ways", cfg.Name, cfg.SizeBytes)
	}
	sets := cfg.SizeBytes / (lineSize * uint64(cfg.Ways))
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	lines := make([]way, sets*uint64(cfg.Ways))
	for i := range lines {
		lines[i].tag = tagInvalid
	}
	return &Cache{
		cfg:      cfg,
		setShift: uint(bits.TrailingZeros64(sets)),
		setMask:  sets - 1,
		ways:     cfg.Ways,
		lines:    lines,
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask + 1) }

// Latency returns the hit latency.
func (c *Cache) Latency() clock.Dur { return c.cfg.Latency }

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// SetOf returns the set index of a line number (addr >> LineShift).
func (c *Cache) SetOf(ln uint64) int { return int(ln & c.setMask) }

// Access looks up line ln (an address right-shifted by LineShift),
// installing it on a miss. write marks the line dirty.
func (c *Cache) Access(ln uint64, write bool) Result {
	c.stats.Accesses++
	c.tick++
	set := ln & c.setMask
	tag := ln >> c.setShift
	base := int(set) * c.ways
	ways := c.lines[base : base+c.ways : base+c.ways]

	var w uint64
	if write {
		w = 1
	}
	for i := range ways {
		if ways[i].tag == tag {
			// Hit: refresh recency, keeping any prior dirty bit.
			ways[i].stamp = c.tick<<1 | ways[i].stamp&1 | w
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	victim := 0
	min := ways[0].stamp
	for i := 1; i < len(ways); i++ {
		if ways[i].stamp < min {
			min, victim = ways[i].stamp, i
		}
	}
	res := Result{}
	if min != 0 {
		c.stats.Evictions++
		res.EvictedValid = true
		res.EvictedDirty = min&1 != 0
		res.EvictedLine = ways[victim].tag<<c.setShift | set
	}
	ways[victim] = way{tag: tag, stamp: c.tick<<1 | w}
	return res
}

// Contains reports (without LRU side effects) whether ln is cached.
func (c *Cache) Contains(ln uint64) bool {
	set := ln & c.setMask
	tag := ln >> c.setShift
	base := int(set) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line (dirty contents are discarded; victim
// write-back on flush is not modeled).
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = way{tag: tagInvalid}
	}
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without invalidating contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Opteron-like default level configurations (paper Sec. IV: 128 KB
// L1, 512 KB private L2, 12 MB shared L3, 128-byte lines).

// DefaultL1 returns the per-core L1 data cache configuration.
func DefaultL1() Config {
	return Config{Name: "L1d", SizeBytes: 128 << 10, Ways: 2, LineShift: 7, Latency: 3}
}

// DefaultL2 returns the per-core unified L2 configuration.
func DefaultL2() Config {
	return Config{Name: "L2", SizeBytes: 512 << 10, Ways: 8, LineShift: 7, Latency: 15}
}

// DefaultL3 returns the shared last-level cache configuration: 12 MB,
// 12-way, 8192 sets, so the set index spans address bits 7-19 and
// includes the LLC color bits 12-16.
func DefaultL3() Config {
	return Config{Name: "L3", SizeBytes: 12 << 20, Ways: 12, LineShift: 7, Latency: 40}
}
