package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small(t *testing.T, ways int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", SizeBytes: uint64(ways) * 4 * 128, Ways: ways, LineShift: 7, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHitAfterInstall(t *testing.T) {
	c := small(t, 2)
	if r := c.Access(5, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(5, false); !r.Hit {
		t.Error("second access missed")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t, 2) // 4 sets, 2 ways
	// Three lines mapping to set 0: 0, 4, 8.
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // touch 0: 4 becomes LRU
	r := c.Access(8, false)
	if r.Hit {
		t.Fatal("conflicting access hit")
	}
	if !r.EvictedValid || r.EvictedLine != 4 {
		t.Errorf("evicted %d (valid=%v), want line 4", r.EvictedLine, r.EvictedValid)
	}
	if !c.Contains(0) || c.Contains(4) || !c.Contains(8) {
		t.Error("LRU order violated")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := small(t, 2)
	c.Access(0, true) // write: dirty
	c.Access(4, false)
	r := c.Access(8, false) // evicts 0
	if !r.EvictedValid || r.EvictedLine != 0 || !r.EvictedDirty {
		t.Errorf("dirty eviction result = %+v", r)
	}
	// A read-only line evicts clean.
	c2 := small(t, 2)
	c2.Access(0, false)
	c2.Access(4, false)
	r2 := c2.Access(8, false)
	if r2.EvictedDirty {
		t.Error("clean line evicted dirty")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small(t, 2)
	c.Access(0, false)
	c.Access(0, true) // hit-write marks dirty
	c.Access(4, false)
	r := c.Access(8, false)
	if !r.EvictedDirty {
		t.Error("write-hit did not mark line dirty")
	}
}

func TestSetMapping(t *testing.T) {
	c := small(t, 2) // 4 sets
	for ln := uint64(0); ln < 16; ln++ {
		if got, want := c.SetOf(ln), int(ln%4); got != want {
			t.Errorf("SetOf(%d) = %d, want %d", ln, got, want)
		}
	}
	// Lines in different sets never evict each other.
	c.Access(0, false)
	c.Access(1, false)
	c.Access(2, false)
	c.Access(3, false)
	for ln := uint64(0); ln < 4; ln++ {
		if !c.Contains(ln) {
			t.Errorf("line %d displaced by disjoint-set access", ln)
		}
	}
}

func TestFlush(t *testing.T) {
	c := small(t, 2)
	c.Access(0, true)
	c.Flush()
	if c.Contains(0) {
		t.Error("Flush left line resident")
	}
	if r := c.Access(0, false); r.Hit {
		t.Error("hit after flush")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 2, LineShift: 7},
		{SizeBytes: 1024, Ways: 0, LineShift: 7},
		{SizeBytes: 1000, Ways: 2, LineShift: 7},        // not divisible
		{SizeBytes: 3 * 2 * 128, Ways: 2, LineShift: 7}, // 3 sets: not pow2
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(bad %d) succeeded", i)
		}
	}
}

func TestDefaultsGeometry(t *testing.T) {
	l3, err := New(DefaultL3())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l3.Sets(), 8192; got != want {
		t.Errorf("L3 sets = %d, want %d", got, want)
	}
	l1, err := New(DefaultL1())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l1.Sets(), 512; got != want {
		t.Errorf("L1 sets = %d, want %d", got, want)
	}
	l2, err := New(DefaultL2())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := l2.Sets(), 512; got != want {
		t.Errorf("L2 sets = %d, want %d", got, want)
	}
	if !(l1.Latency() < l2.Latency() && l2.Latency() < l3.Latency()) {
		t.Error("default latencies not increasing down the hierarchy")
	}
}

// The LLC color property: two lines whose page-color bits (address
// bits 12-16) differ always land in different L3 sets.
func TestL3ColorBitsPartitionSets(t *testing.T) {
	l3, err := New(DefaultL3())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint32) bool {
		la, lb := uint64(a), uint64(b)
		colorA := (la << 7 >> 12) & 31 // line -> addr -> color bits
		colorB := (lb << 7 >> 12) & 31
		if colorA == colorB {
			return true // nothing to check
		}
		return l3.SetOf(la) != l3.SetOf(lb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: a working set no larger than the associativity within one
// set never misses after warmup (LRU correctness).
func TestLRUNoThrashWithinAssociativity(t *testing.T) {
	c := small(t, 4) // 4 ways, 2 sets... size = 4 ways*4 sets
	// lines 0,4,8,12 all map to set 0 in a 4-set cache.
	lines := []uint64{0, 4, 8, 12}
	for _, ln := range lines {
		c.Access(ln, false)
	}
	before := c.Stats().Misses
	for round := 0; round < 10; round++ {
		for _, ln := range lines {
			c.Access(ln, false)
		}
	}
	if got := c.Stats().Misses; got != before {
		t.Errorf("misses grew from %d to %d on resident working set", before, got)
	}
}

func TestEvictedLineRoundTrip(t *testing.T) {
	// The evicted line number must reconstruct exactly.
	c := small(t, 1) // direct-mapped, 4 sets
	c.Access(0x123<<2|1, false)
	r := c.Access(0x456<<2|1, false) // same set 1
	if !r.EvictedValid || r.EvictedLine != 0x123<<2|1 {
		t.Errorf("EvictedLine = %#x, want %#x", r.EvictedLine, 0x123<<2|1)
	}
}

func TestResetStats(t *testing.T) {
	c := small(t, 2)
	c.Access(0, false)
	c.ResetStats()
	if st := c.Stats(); st.Accesses != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
	if !c.Contains(0) {
		t.Error("ResetStats invalidated contents")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty HitRate != 0")
	}
	s = Stats{Accesses: 4, Hits: 1}
	if s.HitRate() != 0.25 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

// Reference-model check: the cache must agree, access for access,
// with a naive map+timestamp LRU simulation under random traffic.
func TestAgainstReferenceLRU(t *testing.T) {
	const (
		sets = 8
		ways = 4
	)
	c, err := New(Config{Name: "ref", SizeBytes: sets * ways * 128, Ways: ways, LineShift: 7, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	type refLine struct {
		tag  uint64
		used int // timestamp of last use
	}
	ref := make([][]refLine, sets) // per set, unordered
	tick := 0
	refAccess := func(ln uint64) bool {
		set := ln % sets
		tag := ln / sets
		tick++
		for i := range ref[set] {
			if ref[set][i].tag == tag {
				ref[set][i].used = tick
				return true
			}
		}
		if len(ref[set]) < ways {
			ref[set] = append(ref[set], refLine{tag, tick})
			return false
		}
		lru := 0
		for i := range ref[set] {
			if ref[set][i].used < ref[set][lru].used {
				lru = i
			}
		}
		ref[set][lru] = refLine{tag, tick}
		return false
	}

	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 50000; i++ {
		ln := uint64(rng.Intn(sets * ways * 4)) // 4x capacity -> plenty of conflicts
		gotHit := c.Access(ln, rng.Intn(2) == 0).Hit
		wantHit := refAccess(ln)
		if gotHit != wantHit {
			t.Fatalf("access %d (line %d): cache hit=%v, reference hit=%v", i, ln, gotHit, wantHit)
		}
	}
}
