package phys

import "testing"

// Microbenchmarks for the address-decode hot path. Decode, BankColor
// and LLCColor run once per simulated DRAM access, so their cost is a
// direct component of engine ops/sec; the table-backed fast path is
// compared against the bit-gather reference it memoizes.

func benchMapping(b *testing.B, mk func(uint64, int) (*Mapping, error)) *Mapping {
	b.Helper()
	m, err := mk(256<<20, 4)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchAddrs(m *Mapping) []Addr {
	addrs := make([]Addr, 4096)
	// Stride by a prime number of lines so the sweep visits many
	// frames, channels and rows.
	const stride = 127 * LineSize
	for i := range addrs {
		addrs[i] = Addr(uint64(i) * stride % m.MemBytes())
	}
	return addrs
}

func BenchmarkDecodeTable(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Decode(addrs[i%len(addrs)])
	}
}

func BenchmarkDecodeGather(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.GatherDecode(addrs[i%len(addrs)])
	}
}

func BenchmarkDecodeTableOverlapped(b *testing.B) {
	m := benchMapping(b, OpteronOverlapped)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Decode(addrs[i%len(addrs)])
	}
}

func BenchmarkBankColorTable(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.BankColor(addrs[i%len(addrs)])
	}
}

func BenchmarkBankColorGather(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.GatherBankColor(addrs[i%len(addrs)])
	}
}

func BenchmarkLLCColorTable(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LLCColor(addrs[i%len(addrs)])
	}
}

// AoS-vs-SoA layout comparison for the per-frame location metadata.
// The live locTable packs node/channel/rank/bank into one uint32 per
// frame; locAoS reproduces the padded struct-per-frame layout it
// replaced. Both loops do the same unpack work — the delta is pure
// memory layout (4 B/frame vs 8 B/frame), so the sweep touches the
// whole frame table in scattered order, the pattern Decode sees under
// allocation churn, where table footprint vs cache size is what
// decides the miss rate.

type locAoS struct {
	node    uint32
	channel uint8
	rank    uint8
	bank    uint8
}

func benchFrames(m *Mapping) []Frame {
	n := m.Frames()
	frames := make([]Frame, n)
	for i := range frames {
		// 127 is coprime to the power-of-two frame count, so this
		// permutes [0, n) while defeating the hardware prefetcher.
		frames[i] = Frame(uint64(i) * 127 % n)
	}
	return frames
}

func BenchmarkFrameLocSoA(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	frames := benchFrames(m)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		packed := m.locTable[frames[i%len(frames)]]
		sink += int(packed>>locNodeShift&locFieldMask) +
			int(packed>>locChannelShift&locFieldMask) +
			int(packed>>locRankShift&locFieldMask) +
			int(packed>>locBankShift&locFieldMask)
	}
	_ = sink
}

func BenchmarkFrameLocAoS(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	frames := benchFrames(m)
	aos := make([]locAoS, m.Frames())
	for f := range aos {
		l := m.GatherDecode(Frame(f).Base())
		aos[f] = locAoS{node: uint32(l.Node), channel: uint8(l.Channel), rank: uint8(l.Rank), bank: uint8(l.Bank)}
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		fl := aos[frames[i%len(frames)]]
		sink += int(fl.node) + int(fl.channel) + int(fl.rank) + int(fl.bank)
	}
	_ = sink
}
