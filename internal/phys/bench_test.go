package phys

import "testing"

// Microbenchmarks for the address-decode hot path. Decode, BankColor
// and LLCColor run once per simulated DRAM access, so their cost is a
// direct component of engine ops/sec; the table-backed fast path is
// compared against the bit-gather reference it memoizes.

func benchMapping(b *testing.B, mk func(uint64, int) (*Mapping, error)) *Mapping {
	b.Helper()
	m, err := mk(256<<20, 4)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchAddrs(m *Mapping) []Addr {
	addrs := make([]Addr, 4096)
	// Stride by a prime number of lines so the sweep visits many
	// frames, channels and rows.
	const stride = 127 * LineSize
	for i := range addrs {
		addrs[i] = Addr(uint64(i) * stride % m.MemBytes())
	}
	return addrs
}

func BenchmarkDecodeTable(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Decode(addrs[i%len(addrs)])
	}
}

func BenchmarkDecodeGather(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.GatherDecode(addrs[i%len(addrs)])
	}
}

func BenchmarkDecodeTableOverlapped(b *testing.B) {
	m := benchMapping(b, OpteronOverlapped)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Decode(addrs[i%len(addrs)])
	}
}

func BenchmarkBankColorTable(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.BankColor(addrs[i%len(addrs)])
	}
}

func BenchmarkBankColorGather(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.GatherBankColor(addrs[i%len(addrs)])
	}
}

func BenchmarkLLCColorTable(b *testing.B) {
	m := benchMapping(b, DefaultSeparable)
	addrs := benchAddrs(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LLCColor(addrs[i%len(addrs)])
	}
}
