package phys

import (
	"testing"
	"testing/quick"
)

const testMem = 256 << 20 // 256 MiB

func defaultMapping(t *testing.T) *Mapping {
	t.Helper()
	m, err := DefaultSeparable(testMem, 4)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultSeparableCounts(t *testing.T) {
	m := defaultMapping(t)
	if got, want := m.NumBankColors(), 128; got != want {
		t.Errorf("NumBankColors = %d, want %d", got, want)
	}
	if got, want := m.NumLLCColors(), 32; got != want {
		t.Errorf("NumLLCColors = %d, want %d", got, want)
	}
	if got, want := m.Channels(), 2; got != want {
		t.Errorf("Channels = %d, want %d", got, want)
	}
	if got, want := m.Ranks(), 2; got != want {
		t.Errorf("Ranks = %d, want %d", got, want)
	}
	if got, want := m.Banks(), 8; got != want {
		t.Errorf("Banks = %d, want %d", got, want)
	}
	if got, want := m.Frames(), uint64(testMem/PageSize); got != want {
		t.Errorf("Frames = %d, want %d", got, want)
	}
}

func TestNodeRanges(t *testing.T) {
	m := defaultMapping(t)
	for n := 0; n < 4; n++ {
		base, limit := m.NodeRange(n)
		if m.NodeOf(base) != n {
			t.Errorf("NodeOf(base of node %d) = %d", n, m.NodeOf(base))
		}
		if m.NodeOf(limit-1) != n {
			t.Errorf("NodeOf(limit-1 of node %d) = %d", n, m.NodeOf(limit-1))
		}
	}
}

func TestLLCColorBits(t *testing.T) {
	m := defaultMapping(t)
	// LLC color is bits 12-16: frame number & 31.
	for f := Frame(0); f < 64; f++ {
		want := int(f) & 31
		if got := m.FrameLLCColor(f); got != want {
			t.Errorf("FrameLLCColor(%d) = %d, want %d", f, got, want)
		}
	}
}

func TestEq1Composition(t *testing.T) {
	m := defaultMapping(t)
	// Construct an address with known node/channel/rank/bank and
	// verify Eq. 1 composition.
	nodeBase, _ := m.NodeRange(2)
	a := nodeBase | (1 << 21) | (0 << 20) | (5 << 17) // channel 1, rank 0, bank 5
	l := m.Decode(a)
	if l.Node != 2 || l.Channel != 1 || l.Rank != 0 || l.Bank != 5 {
		t.Fatalf("Decode = %+v, want node 2 channel 1 rank 0 bank 5", l)
	}
	want := ((2*2+1)*2+0)*8 + 5
	if got := m.BankColor(a); got != want {
		t.Errorf("BankColor = %d, want %d", got, want)
	}
}

func TestBankColorNodeInverse(t *testing.T) {
	m := defaultMapping(t)
	for bc := 0; bc < m.NumBankColors(); bc++ {
		n := m.NodeOfBankColor(bc)
		found := false
		for _, c := range m.BankColorsOfNode(n) {
			if c == bc {
				found = true
			}
		}
		if !found {
			t.Errorf("bank color %d not listed under its node %d", bc, n)
		}
	}
}

// Property: every frame's bank color names the same node the frame's
// address range belongs to.
func TestFrameBankColorLocality(t *testing.T) {
	m := defaultMapping(t)
	f := func(raw uint32) bool {
		fr := Frame(uint64(raw) % m.Frames())
		bc := m.FrameBankColor(fr)
		return m.NodeOfBankColor(bc) == m.NodeOfFrame(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: all addresses within one frame share the frame's LLC and
// bank color under the separable mapping.
func TestIntraFrameColorUniform(t *testing.T) {
	m := defaultMapping(t)
	f := func(raw uint32, off uint16) bool {
		fr := Frame(uint64(raw) % m.Frames())
		a := fr.Base() + Addr(uint64(off)%PageSize)
		return m.LLCColor(a) == m.FrameLLCColor(fr) &&
			m.BankColor(a) == m.FrameBankColor(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: bank colors are uniformly distributed — over all frames of
// one node, every local bank color appears equally often.
func TestBankColorUniformCoverage(t *testing.T) {
	m := defaultMapping(t)
	counts := make(map[int]uint64)
	base, limit := m.NodeRange(0)
	for f := FrameOf(base); f < FrameOf(limit); f++ {
		counts[m.FrameBankColor(f)]++
	}
	per := m.BanksPerNode()
	if len(counts) != per {
		t.Fatalf("node 0 frames cover %d bank colors, want %d", len(counts), per)
	}
	var first uint64
	for _, c := range counts {
		if first == 0 {
			first = c
		} else if c != first {
			t.Fatalf("uneven bank color coverage: %v", counts)
		}
	}
}

func TestOverlappedMappingSparsity(t *testing.T) {
	m, err := OpteronOverlapped(testMem, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumBankColors(); got != 128 {
		t.Fatalf("overlapped NumBankColors = %d, want 128", got)
	}
	// Because bank bits 15 and 16 are also LLC color bits, a frame's
	// bank partially determines its LLC color: the combination
	// matrix must be sparse (fewer than 128*32 observed pairs).
	pairs := make(map[[2]int]bool)
	for f := Frame(0); uint64(f) < m.Frames(); f++ {
		pairs[[2]int{m.FrameBankColor(f), m.FrameLLCColor(f)}] = true
	}
	if len(pairs) >= 128*32 {
		t.Errorf("overlapped mapping populated %d pairs, expected sparse (<%d)", len(pairs), 128*32)
	}
	if len(pairs) == 0 {
		t.Error("no pairs observed")
	}
}

func TestRowColDecode(t *testing.T) {
	m := defaultMapping(t)
	// Within one row span (16 KB), consecutive lines share a row.
	a0 := Addr(0)
	a1 := Addr(LineSize)
	l0, l1 := m.Decode(a0), m.Decode(a1)
	if l0.Row != l1.Row {
		t.Errorf("adjacent lines in different rows: %d vs %d", l0.Row, l1.Row)
	}
	if l1.Col != l0.Col+1 {
		t.Errorf("columns not sequential: %d then %d", l0.Col, l1.Col)
	}
	// Crossing the row span changes the row.
	a2 := Addr(1 << m.RowShift())
	if l2 := m.Decode(a2); l2.Row == l0.Row {
		t.Errorf("addresses %#x and %#x share row %d across row boundary", a0, a2, l0.Row)
	}
}

func TestMappingValidation(t *testing.T) {
	cases := []MappingConfig{
		{MemBytes: testMem, Nodes: 0, LLCBits: []uint{12}, RowShift: 14},
		{MemBytes: 0, Nodes: 4, LLCBits: []uint{12}, RowShift: 14},
		{MemBytes: testMem + 1, Nodes: 4, LLCBits: []uint{12}, RowShift: 14},
		{MemBytes: testMem, Nodes: 4, LLCBits: nil, RowShift: 14},
		{MemBytes: testMem, Nodes: 4, LLCBits: []uint{5}, RowShift: 14}, // below page shift
		{MemBytes: testMem, Nodes: 4, LLCBits: []uint{12}, RowShift: 3}, // below line shift
		{MemBytes: testMem, Nodes: 4, LLCBits: []uint{12}, BankBits: []uint{60}, RowShift: 14},
	}
	for i, c := range cases {
		if _, err := NewMapping(c); err == nil {
			t.Errorf("NewMapping(bad %d) succeeded, want error", i)
		}
	}
}

func TestFrameHelpers(t *testing.T) {
	a := Addr(0x12345)
	if got, want := FrameOf(a), Frame(0x12); got != want {
		t.Errorf("FrameOf = %#x, want %#x", got, want)
	}
	if got, want := Frame(0x12).Base(), Addr(0x12000); got != want {
		t.Errorf("Base = %#x, want %#x", got, want)
	}
	if got, want := Offset(a), uint64(0x345); got != want {
		t.Errorf("Offset = %#x, want %#x", got, want)
	}
}

func TestValidBounds(t *testing.T) {
	m := defaultMapping(t)
	if !m.Valid(0) || !m.Valid(testMem-1) {
		t.Error("Valid rejected in-range address")
	}
	if m.Valid(testMem) {
		t.Error("Valid accepted out-of-range address")
	}
	if !m.ValidFrame(Frame(m.Frames() - 1)) {
		t.Error("ValidFrame rejected last frame")
	}
	if m.ValidFrame(Frame(m.Frames())) {
		t.Error("ValidFrame accepted out-of-range frame")
	}
}

func TestBitAccessorsAreCopies(t *testing.T) {
	m := defaultMapping(t)
	b := m.BankBits()
	b[0] = 63
	if m.BankBits()[0] == 63 {
		t.Error("BankBits returned internal slice, not a copy")
	}
}

// Property: ComboCompatible agrees with a brute-force frame scan.
func TestComboCompatibleMatchesBruteForce(t *testing.T) {
	for _, build := range []func(uint64, int) (*Mapping, error){DefaultSeparable, OpteronOverlapped} {
		m, err := build(testMem, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: observe which pairs actually occur.
		seen := make(map[[2]int]bool)
		for f := Frame(0); uint64(f) < m.Frames(); f++ {
			seen[[2]int{m.FrameBankColor(f), m.FrameLLCColor(f)}] = true
		}
		for bc := 0; bc < m.NumBankColors(); bc++ {
			for lc := 0; lc < m.NumLLCColors(); lc++ {
				if got, want := m.ComboCompatible(bc, lc), seen[[2]int{bc, lc}]; got != want {
					t.Fatalf("ComboCompatible(%d,%d) = %v, brute force says %v", bc, lc, got, want)
				}
			}
		}
	}
}

func TestSeparableColors(t *testing.T) {
	sep, err := DefaultSeparable(testMem, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !sep.SeparableColors() {
		t.Error("default mapping reported non-separable")
	}
	over, err := OpteronOverlapped(testMem, 4)
	if err != nil {
		t.Fatal(err)
	}
	if over.SeparableColors() {
		t.Error("overlapped mapping reported separable")
	}
}

func TestFrameColorTablesMatchDirect(t *testing.T) {
	m := defaultMapping(t)
	bank, llc := m.FrameColorTables()
	if uint64(len(bank)) != m.Frames() || uint64(len(llc)) != m.Frames() {
		t.Fatalf("table lengths %d/%d", len(bank), len(llc))
	}
	for _, f := range []Frame{0, 1, 31, 1000, Frame(m.Frames() - 1)} {
		if int(bank[f]) != m.FrameBankColor(f) || int(llc[f]) != m.FrameLLCColor(f) {
			t.Errorf("table mismatch at frame %d", f)
		}
	}
}
