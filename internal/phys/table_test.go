package phys

import (
	"math/rand"
	"testing"
)

// Property test for the precomputed decode tables: the table-backed
// hot-path accessors must equal the bit-gather reference for random
// addresses under every mapping shape — separable, Opteron-overlapped,
// and (to exercise the fallback route) a mapping with a select bit
// below the page shift.
func TestTableAccessorsMatchGather(t *testing.T) {
	const memBytes = 256 << 20
	sep, err := DefaultSeparable(memBytes, 4)
	if err != nil {
		t.Fatal(err)
	}
	ovl, err := OpteronOverlapped(memBytes, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Channel bit 11 sits inside the page offset, so decode varies
	// within a frame and the accessors must keep the gather route.
	sub, err := NewMapping(MappingConfig{
		MemBytes:    memBytes,
		Nodes:       4,
		ChannelBits: []uint{11},
		RankBits:    []uint{20},
		BankBits:    []uint{17, 18, 19},
		LLCBits:     []uint{12, 13, 14, 15, 16},
		RowShift:    14,
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		m    *Mapping
	}{
		{"separable", sep},
		{"overlapped", ovl},
		{"sub-page-bits", sub},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 20000; i++ {
				a := Addr(rng.Uint64() % m.MemBytes())
				if got, want := m.Decode(a), m.GatherDecode(a); got != want {
					t.Fatalf("Decode(%#x) = %+v, gather reference %+v", a, got, want)
				}
				if got, want := m.BankColor(a), m.GatherBankColor(a); got != want {
					t.Fatalf("BankColor(%#x) = %d, gather reference %d", a, got, want)
				}
				if got, want := m.LLCColor(a), m.GatherLLCColor(a); got != want {
					t.Fatalf("LLCColor(%#x) = %d, gather reference %d", a, got, want)
				}
			}
			// Frame accessors agree with the gather reference on the
			// frame base address.
			for i := 0; i < 2000; i++ {
				f := Frame(rng.Uint64() % m.Frames())
				if got, want := m.FrameBankColor(f), m.GatherBankColor(f.Base()); got != want {
					t.Fatalf("FrameBankColor(%d) = %d, gather reference %d", f, got, want)
				}
				if got, want := m.FrameLLCColor(f), m.GatherLLCColor(f.Base()); got != want {
					t.Fatalf("FrameLLCColor(%d) = %d, gather reference %d", f, got, want)
				}
			}
		})
	}
}
