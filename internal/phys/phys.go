// Package phys models the physical address space of a simulated NUMA
// machine and the bit-level translation the memory controller applies
// to a physical address: node (controller), channel, rank, bank, row
// and column, plus the LLC set-index color bits.
//
// TintMalloc's frame selection is driven entirely by this mapping
// (paper Sec. III-A): the bank color of a page is
//
//	bc = ((node*NC + channel)*NR + rank)*NB + bank     (Eq. 1)
//
// and the LLC color is given by the physical-address bits that index
// the shared L3 above the page offset (bits 12-16 on the Opteron
// 6128, yielding 32 colors).
package phys

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// Frame is a physical page-frame number (Addr >> PageShift).
type Frame uint64

const (
	// PageShift is log2 of the page size. TintMalloc colors
	// order-0 (4 KB) frames only.
	PageShift = 12
	// PageSize is the size of a page frame in bytes.
	PageSize = 1 << PageShift
	// LineShift is log2 of the cache line size (128 B on the
	// Opteron 6128).
	LineShift = 7
	// LineSize is the cache line size in bytes.
	LineSize = 1 << LineShift
)

// FrameOf returns the frame containing a.
func FrameOf(a Addr) Frame { return Frame(a >> PageShift) }

// Base returns the first byte address of frame f.
func (f Frame) Base() Addr { return Addr(f) << PageShift }

// Offset returns the in-page offset of a.
func Offset(a Addr) uint64 { return uint64(a) & (PageSize - 1) }

// Location is the DRAM decomposition of a physical address.
type Location struct {
	Node    int    // memory node / controller
	Channel int    // channel within the controller
	Rank    int    // rank within the channel
	Bank    int    // bank within the rank
	Row     uint64 // DRAM row within the bank
	Col     uint64 // column within the row
}

// Mapping is a bit-level physical address translation. It is the
// simulated analogue of the PCI-derived address decode of an AMD
// memory controller. A Mapping is immutable after construction.
type Mapping struct {
	memBytes    uint64
	nodes       int
	nodeSize    uint64 // bytes per node; nodes are contiguous ranges
	channelBits []uint
	rankBits    []uint
	bankBits    []uint
	llcBits     []uint // LLC color bits (must be >= PageShift)
	rowShift    uint   // node-relative row number = offset >> rowShift

	// Precomputed per-frame decode tables (see buildTables). All
	// color/select bits of the default and Opteron mappings sit at or
	// above PageShift, so the hot-path Decode/BankColor/LLCColor
	// collapse to one table load plus row/col arithmetic. subPageBits
	// marks the exotic case of channel/rank/bank bits below the page
	// shift, where decode genuinely varies within a frame and the
	// bit-gather path remains authoritative.
	subPageBits bool
	// locTable packs each frame's DRAM decomposition — everything
	// Decode needs except the row/column, which depend on sub-page
	// offset bits and stay arithmetic — into one uint32 (see the loc*
	// shifts). One word per frame instead of the padded 8-byte struct
	// this replaces: half the footprint, one load on the hot path. Nil
	// when some field exceeds its 8-bit lane (locPackable false), in
	// which case Decode keeps the bit-gather route.
	locTable  []uint32
	bankTable []int32  // frame -> bank color
	llcTable  []int16  // frame -> LLC color
	nodeBase  []uint64 // node -> first byte address
	rowMask   uint64   // (1<<rowShift)-1
}

// locTable lane layout: four 8-bit fields in one uint32.
const (
	locBankShift    = 0
	locRankShift    = 8
	locChannelShift = 16
	locNodeShift    = 24
	locFieldMask    = 0xff
)

// locPackable reports whether every Decode field fits its 8-bit
// locTable lane. True for any realistic platform (the paper's machine
// has 4 nodes, 2 channels, 2 ranks, 8 banks); a mapping configured
// past 256 in any dimension simply keeps the gather path.
func (m *Mapping) locPackable() bool {
	return m.nodes <= 256 && m.Channels() <= 256 && m.Ranks() <= 256 && m.Banks() <= 256
}

// MappingConfig parameterizes NewMapping. Bit positions are absolute
// bit indices within the physical address.
type MappingConfig struct {
	MemBytes    uint64 // total physical memory, split evenly across nodes
	Nodes       int    // number of memory nodes (controllers)
	ChannelBits []uint // channel-select bits
	RankBits    []uint // rank-select bits
	BankBits    []uint // bank-select bits
	LLCBits     []uint // LLC color bits (each must be >= PageShift)
	RowShift    uint   // log2 of the address span covered by one row buffer
}

// NewMapping validates and constructs a Mapping.
func NewMapping(c MappingConfig) (*Mapping, error) {
	if c.Nodes < 1 {
		return nil, fmt.Errorf("phys: Nodes must be >= 1, got %d", c.Nodes)
	}
	if c.MemBytes == 0 || c.MemBytes%uint64(c.Nodes) != 0 {
		return nil, fmt.Errorf("phys: MemBytes (%d) must be a positive multiple of Nodes (%d)",
			c.MemBytes, c.Nodes)
	}
	nodeSize := c.MemBytes / uint64(c.Nodes)
	if nodeSize%PageSize != 0 {
		return nil, fmt.Errorf("phys: per-node size %d not page aligned", nodeSize)
	}
	if len(c.LLCBits) == 0 {
		return nil, fmt.Errorf("phys: at least one LLC color bit required")
	}
	for _, b := range c.LLCBits {
		if b < PageShift {
			return nil, fmt.Errorf("phys: LLC color bit %d below page shift %d; frame coloring impossible", b, PageShift)
		}
	}
	for _, group := range [][]uint{c.ChannelBits, c.RankBits, c.BankBits} {
		for _, b := range group {
			if b >= 48 {
				return nil, fmt.Errorf("phys: address bit %d out of range", b)
			}
		}
	}
	if c.RowShift < LineShift {
		return nil, fmt.Errorf("phys: RowShift %d below line shift %d", c.RowShift, LineShift)
	}
	m := &Mapping{
		memBytes:    c.MemBytes,
		nodes:       c.Nodes,
		nodeSize:    nodeSize,
		channelBits: append([]uint(nil), c.ChannelBits...),
		rankBits:    append([]uint(nil), c.RankBits...),
		bankBits:    append([]uint(nil), c.BankBits...),
		llcBits:     append([]uint(nil), c.LLCBits...),
		rowShift:    c.RowShift,
	}
	m.buildTables()
	return m, nil
}

// buildTables memoizes the per-frame decode: node, channel, rank,
// bank, bank color and LLC color of every frame's base address. LLC
// bits are validated to sit at or above PageShift, so the LLC table is
// always exact; the location and bank-color tables are exact unless
// some channel/rank/bank bit falls below the page shift (subPageBits),
// in which case the hot-path accessors keep the bit-gather route.
func (m *Mapping) buildTables() {
	for _, group := range [][]uint{m.channelBits, m.rankBits, m.bankBits} {
		for _, b := range group {
			if b < PageShift {
				m.subPageBits = true
			}
		}
	}
	m.rowMask = (uint64(1) << m.rowShift) - 1
	m.nodeBase = make([]uint64, m.nodes)
	for n := 0; n < m.nodes; n++ {
		m.nodeBase[n] = uint64(n) * m.nodeSize
	}
	frames := m.Frames()
	if m.locPackable() {
		m.locTable = make([]uint32, frames)
	}
	m.bankTable = make([]int32, frames)
	m.llcTable = make([]int16, frames)
	for f := Frame(0); uint64(f) < frames; f++ {
		a := f.Base()
		if m.locTable != nil {
			l := m.GatherDecode(a)
			m.locTable[f] = uint32(l.Bank)<<locBankShift |
				uint32(l.Rank)<<locRankShift |
				uint32(l.Channel)<<locChannelShift |
				uint32(l.Node)<<locNodeShift
		}
		m.bankTable[f] = int32(m.GatherBankColor(a))
		m.llcTable[f] = int16(m.GatherLLCColor(a))
	}
}

// DefaultSeparable returns the repository's default mapping: every
// color axis uses distinct frame-number bits, so the full
// NumBankColors x NumLLCColors matrix is populated (see DESIGN.md for
// why this substitution for the Opteron's overlapping bits preserves
// coloring semantics). Layout per node region:
//
//	bits 12-16: LLC color (32 colors, as on the Opteron 6128)
//	bits 17-19: bank   (8 banks)
//	bit  20:    rank   (2 ranks)
//	bit  21:    channel (2 channels)
//
// With 4 nodes this yields 4*2*2*8 = 128 bank colors, matching the
// paper's platform.
func DefaultSeparable(memBytes uint64, nodes int) (*Mapping, error) {
	return NewMapping(MappingConfig{
		MemBytes:    memBytes,
		Nodes:       nodes,
		ChannelBits: []uint{21},
		RankBits:    []uint{20},
		BankBits:    []uint{17, 18, 19},
		LLCBits:     []uint{12, 13, 14, 15, 16},
		RowShift:    14, // 16 KB row-buffer span
	})
}

// OpteronOverlapped returns a paper-faithful mapping in which bank
// bits overlap the LLC color bits (the Opteron 6128 uses bits 15, 16
// and 18 for the bank while LLC colors occupy bits 12-16). Only a
// subset of (bank color, LLC color) combinations exists under this
// mapping; the kernel's colored lists are correspondingly sparse.
func OpteronOverlapped(memBytes uint64, nodes int) (*Mapping, error) {
	return NewMapping(MappingConfig{
		MemBytes:    memBytes,
		Nodes:       nodes,
		ChannelBits: []uint{13},
		RankBits:    []uint{14},
		BankBits:    []uint{15, 16, 18},
		LLCBits:     []uint{12, 13, 14, 15, 16},
		RowShift:    14,
	})
}

// MemBytes returns the total physical memory size.
func (m *Mapping) MemBytes() uint64 { return m.memBytes }

// Frames returns the total number of page frames.
func (m *Mapping) Frames() uint64 { return m.memBytes / PageSize }

// Nodes returns the number of memory nodes.
func (m *Mapping) Nodes() int { return m.nodes }

// NodeSize returns the bytes of memory behind each controller.
func (m *Mapping) NodeSize() uint64 { return m.nodeSize }

// Channels returns the number of channels per controller.
func (m *Mapping) Channels() int { return 1 << len(m.channelBits) }

// Ranks returns the number of ranks per channel.
func (m *Mapping) Ranks() int { return 1 << len(m.rankBits) }

// Banks returns the number of banks per rank.
func (m *Mapping) Banks() int { return 1 << len(m.bankBits) }

// NumBankColors returns the machine-wide bank color count of Eq. 1:
// nodes * channels * ranks * banks.
func (m *Mapping) NumBankColors() int {
	return m.nodes * m.Channels() * m.Ranks() * m.Banks()
}

// NumLLCColors returns the LLC color count (2^|LLCBits|).
func (m *Mapping) NumLLCColors() int { return 1 << len(m.llcBits) }

// BanksPerNode returns channels*ranks*banks: the number of bank
// colors that belong to a single controller.
func (m *Mapping) BanksPerNode() int {
	return m.Channels() * m.Ranks() * m.Banks()
}

// Valid reports whether a lies within the installed physical memory.
func (m *Mapping) Valid(a Addr) bool { return uint64(a) < m.memBytes }

// ValidFrame reports whether f is an installed frame.
func (m *Mapping) ValidFrame(f Frame) bool { return uint64(f) < m.Frames() }

// NodeOf returns the memory node owning address a. Nodes own
// contiguous, equally sized address ranges (the simulated analogue of
// the DRAM base/limit registers).
func (m *Mapping) NodeOf(a Addr) int {
	return int(uint64(a) / m.nodeSize)
}

// NodeRange returns the [base, limit) address range of node n.
func (m *Mapping) NodeRange(n int) (base, limit Addr) {
	return Addr(uint64(n) * m.nodeSize), Addr(uint64(n+1) * m.nodeSize)
}

func gather(a uint64, bits []uint) int {
	v := 0
	for i, b := range bits {
		v |= int((a>>b)&1) << i
	}
	return v
}

// Decode translates a physical address into its DRAM location. The
// hot path is one packed locTable load plus row/column arithmetic;
// out-of-range addresses, unpackable mappings, and mappings with
// sub-page select bits take the reference bit-gather route (identical
// results where both apply).
func (m *Mapping) Decode(a Addr) Location {
	f := uint64(a) >> PageShift
	if m.subPageBits || f >= uint64(len(m.locTable)) {
		return m.GatherDecode(a)
	}
	packed := m.locTable[f]
	node := packed >> locNodeShift & locFieldMask
	off := uint64(a) - m.nodeBase[node]
	return Location{
		Node:    int(node),
		Channel: int(packed >> locChannelShift & locFieldMask),
		Rank:    int(packed >> locRankShift & locFieldMask),
		Bank:    int(packed >> locBankShift & locFieldMask),
		Row:     off >> m.rowShift,
		Col:     (off & m.rowMask) >> LineShift,
	}
}

// GatherDecode is the reference bit-gather implementation of Decode.
// It is what buildTables memoizes; tests and the invariant auditor use
// it to cross-check the tables independently.
func (m *Mapping) GatherDecode(a Addr) Location {
	u := uint64(a)
	loc := Location{
		Node:    m.NodeOf(a),
		Channel: gather(u, m.channelBits),
		Rank:    gather(u, m.rankBits),
		Bank:    gather(u, m.bankBits),
	}
	off := u % m.nodeSize
	loc.Row = off >> m.rowShift
	loc.Col = (off & ((1 << m.rowShift) - 1)) >> LineShift
	return loc
}

// BankColor composes Eq. 1 for address a:
// ((node*NC + channel)*NR + rank)*NB + bank.
func (m *Mapping) BankColor(a Addr) int {
	f := uint64(a) >> PageShift
	if m.subPageBits || f >= uint64(len(m.bankTable)) {
		return m.GatherBankColor(a)
	}
	return int(m.bankTable[f])
}

// GatherBankColor is the reference bit-gather implementation of
// BankColor (see GatherDecode).
func (m *Mapping) GatherBankColor(a Addr) int {
	l := m.GatherDecode(a)
	return ((l.Node*m.Channels()+l.Channel)*m.Ranks()+l.Rank)*m.Banks() + l.Bank
}

// LLCColor returns the LLC color of address a. LLC color bits always
// sit at or above the page shift (enforced by NewMapping), so the
// per-frame table is exact for every installed address.
func (m *Mapping) LLCColor(a Addr) int {
	f := uint64(a) >> PageShift
	if f >= uint64(len(m.llcTable)) {
		return m.GatherLLCColor(a)
	}
	return int(m.llcTable[f])
}

// GatherLLCColor is the reference bit-gather implementation of
// LLCColor (see GatherDecode).
func (m *Mapping) GatherLLCColor(a Addr) int {
	return gather(uint64(a), m.llcBits)
}

// FrameBankColor returns the bank color of frame f. All color bits
// sit at or above PageShift, so the color is uniform across the frame
// under a separable mapping; under an overlapped mapping any
// sub-page channel/rank bits are taken as zero.
func (m *Mapping) FrameBankColor(f Frame) int {
	if uint64(f) < uint64(len(m.bankTable)) {
		return int(m.bankTable[f])
	}
	return m.GatherBankColor(f.Base())
}

// FrameLLCColor returns the LLC color of frame f.
func (m *Mapping) FrameLLCColor(f Frame) int {
	if uint64(f) < uint64(len(m.llcTable)) {
		return int(m.llcTable[f])
	}
	return m.GatherLLCColor(f.Base())
}

// NodeOfFrame returns the memory node owning frame f.
func (m *Mapping) NodeOfFrame(f Frame) int { return m.NodeOf(f.Base()) }

// FrameColorTables returns the dense per-frame color lookup tables
// (frame -> bank color, frame -> LLC color) built at construction.
// Hot paths (the kernel's colored refill) use these instead of
// re-decoding addresses. Callers must not mutate the slices.
func (m *Mapping) FrameColorTables() (bank []int32, llc []int16) {
	return m.bankTable, m.llcTable
}

// SeparableColors reports whether the bank-color fields (channel,
// rank, bank) use address bits disjoint from the LLC color bits, so
// that every (bank color, LLC color) combination is populated.
func (m *Mapping) SeparableColors() bool {
	llc := map[uint]bool{}
	for _, b := range m.llcBits {
		llc[b] = true
	}
	for _, group := range [][]uint{m.channelBits, m.rankBits, m.bankBits} {
		for _, b := range group {
			if llc[b] {
				return false
			}
		}
	}
	return true
}

// ComboCompatible reports whether any physical frame carries both
// bank color bc and LLC color lc. Under a separable mapping every
// combination exists; under an overlapped mapping (bank bits shared
// with LLC color bits, as on the real Opteron) a bank color pins some
// LLC bits and only consistent pairs are populated. Computed
// analytically from the bit assignments.
func (m *Mapping) ComboCompatible(bc, lc int) bool {
	// Decompose bc per Eq. 1.
	bank := bc % m.Banks()
	rest := bc / m.Banks()
	rank := rest % m.Ranks()
	rest /= m.Ranks()
	channel := rest % m.Channels()

	// required[bit] = 0/1 demanded by the bank-color fields.
	required := map[uint]int{}
	conflict := false
	demand := func(bits []uint, val int) {
		for i, b := range bits {
			want := (val >> i) & 1
			if have, ok := required[b]; ok && have != want {
				conflict = true
			}
			required[b] = want
		}
	}
	demand(m.channelBits, channel)
	demand(m.rankBits, rank)
	demand(m.bankBits, bank)
	if conflict {
		return false // bank color itself is not constructible
	}
	for i, b := range m.llcBits {
		want := (lc >> i) & 1
		if have, ok := required[b]; ok && have != want {
			return false
		}
	}
	return true
}

// NodeOfBankColor inverts Eq. 1's node component: the controller that
// a machine-wide bank color belongs to.
func (m *Mapping) NodeOfBankColor(bc int) int {
	return bc / m.BanksPerNode()
}

// BankColorsOfNode lists the machine-wide bank colors local to node n.
func (m *Mapping) BankColorsOfNode(n int) []int {
	per := m.BanksPerNode()
	out := make([]int, per)
	for i := range out {
		out[i] = n*per + i
	}
	return out
}

// ChannelBits returns a copy of the channel-select bit positions.
func (m *Mapping) ChannelBits() []uint { return append([]uint(nil), m.channelBits...) }

// RankBits returns a copy of the rank-select bit positions.
func (m *Mapping) RankBits() []uint { return append([]uint(nil), m.rankBits...) }

// BankBits returns a copy of the bank-select bit positions.
func (m *Mapping) BankBits() []uint { return append([]uint(nil), m.bankBits...) }

// LLCBits returns a copy of the LLC color bit positions.
func (m *Mapping) LLCBits() []uint { return append([]uint(nil), m.llcBits...) }

// RowShift returns log2 of the per-row address span.
func (m *Mapping) RowShift() uint { return m.rowShift }

// String summarizes the mapping.
func (m *Mapping) String() string {
	return fmt.Sprintf("mapping{%d MiB, %d nodes, %d bank colors, %d llc colors}",
		m.memBytes>>20, m.nodes, m.NumBankColors(), m.NumLLCColors())
}
