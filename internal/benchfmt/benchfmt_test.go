package benchfmt

import (
	"reflect"
	"testing"
)

// A v1 engine report: no format field, aggregates only. The reader
// must accept it and surface single-sample series.
const v1Engine = `{
  "scale": 0.1,
  "repeats": 2,
  "host_cpus": 1,
  "records": [
    {"experiment": "latency", "parallel": 1, "cells": 4, "engine_ops": 0,
     "wall_seconds": 0.5, "cells_per_sec": 8, "ops_per_sec": 0},
    {"experiment": "suite", "parallel": 1, "cells": 210, "engine_ops": 1000,
     "wall_seconds": 2.0, "cells_per_sec": 105, "ops_per_sec": 500}
  ],
  "overall": [
    {"experiment": "overall", "parallel": 1, "cells": 214, "engine_ops": 1000,
     "wall_seconds": 2.5, "cells_per_sec": 85.6, "ops_per_sec": 400}
  ]
}`

func TestDecodeV1Engine(t *testing.T) {
	kind, series, err := Decode([]byte(v1Engine))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEngine {
		t.Fatalf("kind = %q, want engine", kind)
	}
	want := []Series{
		{Key: "latency/parallel=1", Unit: "cells/sec", Samples: []float64{8}, Ops: 0, Cells: 4},
		{Key: "suite/parallel=1", Unit: "ops/sec", Samples: []float64{500}, Ops: 1000, Cells: 210},
		{Key: "overall/parallel=1", Unit: "ops/sec", Samples: []float64{400}, Ops: 1000, Cells: 214},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("series = %+v, want %+v", series, want)
	}
}

const v2Engine = `{
  "format": 2,
  "scale": 0.1,
  "repeats": 2,
  "samples": 3,
  "host_cpus": 1,
  "records": [
    {"experiment": "suite", "parallel": 1, "cells": 210, "engine_ops": 1000,
     "wall_seconds": 2.0, "cells_per_sec": 105, "ops_per_sec": 500,
     "wall_seconds_samples": [1.9, 2.0, 2.1],
     "ops_per_sec_samples": [526, 500, 476],
     "cells_per_sec_samples": [110.5, 105, 100]}
  ],
  "overall": []
}`

func TestDecodeV2Engine(t *testing.T) {
	kind, series, err := Decode([]byte(v2Engine))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEngine {
		t.Fatalf("kind = %q, want engine", kind)
	}
	want := []Series{
		{Key: "suite/parallel=1", Unit: "ops/sec", Samples: []float64{526, 500, 476}, Ops: 1000, Cells: 210},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("series = %+v, want %+v", series, want)
	}
}

const v1Serve = `{
  "host_cpus": 1,
  "ops_per_client": 2000,
  "records": [
    {"scenario": "4_nodes_16_clients", "nodes": 4, "clients": 16, "ops": 32000,
     "wall_seconds": 0.8, "ops_per_sec": 40000, "retries": 3, "refills": 10,
     "batches": 5, "batched_reqs": 40, "degraded": 7}
  ],
  "shard_scaling": 1.04
}`

func TestDecodeV1Serve(t *testing.T) {
	kind, series, err := Decode([]byte(v1Serve))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindServe {
		t.Fatalf("kind = %q, want serve", kind)
	}
	want := []Series{
		{Key: "4_nodes_16_clients", Unit: "ops/sec", Samples: []float64{40000}, Ops: 32000},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("series = %+v, want %+v", series, want)
	}
}

// A format-2 serve report carrying every record family: inline,
// offloaded, wire (net) and task-churn. Each must land under its own
// series-key prefix so tintstat never cross-compares them.
const v2ServeFull = `{
  "format": 2,
  "host_cpus": 2,
  "ops_per_client": 2000,
  "samples": 2,
  "records": [
    {"scenario": "4_nodes_16_clients", "nodes": 4, "clients": 16, "ops": 32000,
     "wall_seconds": 0.8, "ops_per_sec": 40000,
     "ops_per_sec_samples": [41000, 39000]}
  ],
  "offload_records": [
    {"scenario": "4_nodes_16_clients", "nodes": 4, "clients": 16, "ops": 32000,
     "wall_seconds": 1.0, "ops_per_sec": 32000}
  ],
  "net_records": [
    {"scenario": "8_conns", "nodes": 4, "clients": 8, "ops": 16000,
     "wall_seconds": 2.0, "ops_per_sec": 8000,
     "ops_per_sec_samples": [8100, 7900]}
  ],
  "churn_records": [
    {"scenario": "rr_8_tasks", "policy": "rr", "tasks": 8, "ops": 9000,
     "ticks": 600, "dispatches": 70, "preemptions": 40, "blocks": 12,
     "wall_seconds": 0.5, "ops_per_sec": 18000,
     "ops_per_sec_samples": [18500, 17500]}
  ]
}`

func TestDecodeServeNetAndChurn(t *testing.T) {
	kind, series, err := Decode([]byte(v2ServeFull))
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindServe {
		t.Fatalf("kind = %q, want serve", kind)
	}
	want := []Series{
		{Key: "4_nodes_16_clients", Unit: "ops/sec", Samples: []float64{41000, 39000}, Ops: 32000},
		{Key: "offload/4_nodes_16_clients", Unit: "ops/sec", Samples: []float64{32000}, Ops: 32000},
		{Key: "net/8_conns", Unit: "ops/sec", Samples: []float64{8100, 7900}, Ops: 16000},
		{Key: "churn/rr_8_tasks", Unit: "ops/sec", Samples: []float64{18500, 17500}, Ops: 9000},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("series = %+v, want %+v", series, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	for name, data := range map[string]string{
		"not json":       `nope`,
		"no records":     `{"records": []}`,
		"unknown record": `{"records": [{"foo": 1}]}`,
	} {
		if _, _, err := Decode([]byte(data)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

// Round-trip: a v2 report written by WriteFile must decode to the
// same series.
func TestWriteReadRoundTrip(t *testing.T) {
	rep := &Report{
		Format: FormatVersion, Scale: 0.1, Repeats: 1, Samples: 2, HostCPUs: 4,
		Records: []Record{{
			Experiment: "suite", Parallel: 2, Cells: 10, EngineOps: 999,
			WallSeconds: 1.5, CellsPerSec: 6.67, OpsPerSec: 666,
			WallSecondsSamples: []float64{1.4, 1.6},
			OpsPerSecSamples:   []float64{713, 624},
			CellsPerSecSamples: []float64{7.1, 6.2},
		}},
	}
	path := t.TempDir() + "/report.json"
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	kind, series, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindEngine {
		t.Fatalf("kind = %q, want engine", kind)
	}
	want := []Series{
		{Key: "suite/parallel=2", Unit: "ops/sec", Samples: []float64{713, 624}, Ops: 999, Cells: 10},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("series = %+v, want %+v", series, want)
	}
}

func TestFindRecord(t *testing.T) {
	recs := []Record{
		{Experiment: "a", Parallel: 1},
		{Experiment: "a", Parallel: 8},
	}
	if r := FindRecord(recs, "a", 8); r == nil || r.Parallel != 8 {
		t.Errorf("FindRecord(a, 8) = %+v", r)
	}
	if r := FindRecord(recs, "b", 1); r != nil {
		t.Errorf("FindRecord(b, 1) = %+v, want nil", r)
	}
	srecs := []ServeRecord{{Scenario: "x"}}
	if r := FindServeRecord(srecs, "x"); r == nil {
		t.Error("FindServeRecord(x) = nil")
	}
	if r := FindServeRecord(srecs, "y"); r != nil {
		t.Errorf("FindServeRecord(y) = %+v, want nil", r)
	}
}
