// Package benchfmt defines the on-disk schema of the repository's
// benchmark reports (BENCH_engine.json, BENCH_serve.json) and a
// version-tolerant reader that normalizes either file into keyed
// sample series for statistical comparison by tintstat.
//
// Format history:
//
//	v1 (implicit, no "format" field): one wall-clock measurement per
//	   record, aggregates only. A v1 record reads back as a series
//	   with a single sample, which supports delta reporting but not
//	   significance testing.
//	v2 ("format": 2): every record additionally carries the raw
//	   per-sample measurements (wall seconds and the derived
//	   throughputs), so consumers can compute real distributions —
//	   mean, stddev, confidence intervals, Welch's t — instead of
//	   eyeballing two aggregates.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// FormatVersion is the schema version this package writes.
const FormatVersion = 2

// Record is one (experiment, parallel) measurement of the engine
// harness (`tintbench -exp bench`).
type Record struct {
	Experiment  string  `json:"experiment"`
	Parallel    int     `json:"parallel"`
	Cells       int     `json:"cells"`
	EngineOps   uint64  `json:"engine_ops"`
	WallSeconds float64 `json:"wall_seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// AllocsPerOp is host heap allocations per engine op, measured as
	// the runtime.MemStats.Mallocs delta across the sample divided by
	// EngineOps (mean across samples; 0 means unmeasured in files
	// written before the field existed — genuinely zero-alloc suites
	// don't occur, every cell at least boots a machine). tintstat's
	// -exact-allocs gate compares it across reports.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Raw per-sample measurements (format 2). The aggregate fields
	// above hold the mean across samples.
	WallSecondsSamples []float64 `json:"wall_seconds_samples,omitempty"`
	OpsPerSecSamples   []float64 `json:"ops_per_sec_samples,omitempty"`
	CellsPerSecSamples []float64 `json:"cells_per_sec_samples,omitempty"`
}

// Report is the engine-harness file (BENCH_engine.json).
type Report struct {
	Format  int     `json:"format,omitempty"`
	Scale   float64 `json:"scale"`
	Repeats int     `json:"repeats"`
	// Samples is how many times each (experiment, parallel) cell was
	// re-timed (format 2; v1 files measured once).
	Samples int `json:"samples,omitempty"`
	// HostCPUs bounds the achievable speedup: -parallel buys wall
	// clock only up to the host's core count (results are identical
	// regardless).
	HostCPUs int      `json:"host_cpus"`
	Records  []Record `json:"records"`
	Overall  []Record `json:"overall"`
	// SpeedupCellsPerSec compares overall cells/sec at the last
	// -bench-parallel value against the first.
	SpeedupCellsPerSec float64 `json:"speedup_cells_per_sec"`
	// Baseline carries the records of the report the output file
	// previously held, so a regenerated report documents its own
	// before/after comparison (one generation back).
	Baseline []Record `json:"baseline,omitempty"`
	// SpeedupVsBaseline is suite ops/sec at the first -bench-parallel
	// value divided by the same cell of Baseline (0 when no baseline).
	// Only comparable when both runs used the same host; see HostCPUs.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// FindRecord returns the record for (experiment, parallel), or nil.
func FindRecord(recs []Record, experiment string, parallel int) *Record {
	for i := range recs {
		if recs[i].Experiment == experiment && recs[i].Parallel == parallel {
			return &recs[i]
		}
	}
	return nil
}

// ServeRecord is one scenario of the serve-scaling harness
// (`tintbench -exp serve`).
type ServeRecord struct {
	Scenario string `json:"scenario"`
	Nodes    int    `json:"nodes"`
	Clients  int    `json:"clients"`
	// Ops counts completed client operations (deterministic for a
	// given spec); everything below it is timing-dependent.
	Ops         uint64  `json:"ops"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Retries     uint64  `json:"retries"` // ErrBusy rejections absorbed
	Refills     uint64  `json:"refills"` // block shatters
	Batches     uint64  `json:"batches"`
	BatchedReqs uint64  `json:"batched_reqs"`
	Degraded    uint64  `json:"degraded"` // ladder allocations
	// AllocsPerOp is host heap allocations per completed client op
	// (runtime.MemStats.Mallocs delta over the sample / Ops, mean
	// across samples; 0 = unmeasured in pre-field files). Includes
	// every goroutine, so it measures the whole serving stack, not one
	// client's view.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Raw per-sample measurements (format 2).
	WallSecondsSamples []float64 `json:"wall_seconds_samples,omitempty"`
	OpsPerSecSamples   []float64 `json:"ops_per_sec_samples,omitempty"`
}

// ServeReport is the serve-harness file (BENCH_serve.json).
type ServeReport struct {
	Format int `json:"format,omitempty"`
	// HostCPUs bounds achievable scaling: shard parallelism buys wall
	// clock only up to the host's core count. On a single-core host
	// ~1x across shard counts is expected and acceptable.
	HostCPUs     int           `json:"host_cpus"`
	OpsPerClient int           `json:"ops_per_client"`
	Samples      int           `json:"samples,omitempty"`
	Records      []ServeRecord `json:"records"`
	// ShardScaling is ops/sec at 4 engaged shards over 1 engaged
	// shard, both with 16 clients.
	ShardScaling float64 `json:"shard_scaling"`
	// Baseline carries the previous report's records so a regenerated
	// report documents its own before/after.
	Baseline []ServeRecord `json:"baseline,omitempty"`
	// SpeedupVsBaseline compares the 4-node 16-client cell against
	// the same cell of Baseline (0 when no baseline). Only comparable
	// on the same host; see HostCPUs.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// OffloadRecords holds the same scenarios served through the
	// allocation-core front-end (`tintbench -exp offload`): clients
	// ship requests to one dedicated core per node over SPSC rings
	// instead of running the allocator inline. Normalized series key
	// them as "offload/<scenario>".
	OffloadRecords []ServeRecord `json:"offload_records,omitempty"`
	// OffloadSpeedup is offloaded over inline ops/sec at the 4-node
	// 16-client cell (<1 means offloading lost on this host).
	OffloadSpeedup float64 `json:"offload_speedup,omitempty"`
	// NetRecords holds the connection-count scaling sweep driven over
	// the wire protocol against a tintserved-shaped daemon (`tintbench
	// -exp serve` with -net). The Clients field carries the connection
	// count. Normalized series key them as "net/<scenario>".
	NetRecords []ServeRecord `json:"net_records,omitempty"`
	// ChurnRecords holds the task-churn sweep: batches admitted by the
	// daemon's dispatch scheduler under each policy. Normalized series
	// key them as "churn/<scenario>".
	ChurnRecords []ChurnRecord `json:"churn_records,omitempty"`
}

// ChurnRecord is one task-churn scenario: the daemon's dispatch
// scheduler runs a spec-determined task batch to exit, so Ops, Ticks
// and the dispatch counters are deterministic; only the wall clock
// varies across hosts.
type ChurnRecord struct {
	Scenario    string  `json:"scenario"`
	Policy      string  `json:"policy"`
	Tasks       int     `json:"tasks"`
	Ops         uint64  `json:"ops"`
	Ticks       uint64  `json:"ticks"`
	Dispatches  uint64  `json:"dispatches"`
	Preemptions uint64  `json:"preemptions"`
	Blocks      uint64  `json:"blocks"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	// Raw per-sample measurements (format 2).
	WallSecondsSamples []float64 `json:"wall_seconds_samples,omitempty"`
	OpsPerSecSamples   []float64 `json:"ops_per_sec_samples,omitempty"`
}

// FindServeRecord returns the record for scenario, or nil.
func FindServeRecord(recs []ServeRecord, scenario string) *ServeRecord {
	for i := range recs {
		if recs[i].Scenario == scenario {
			return &recs[i]
		}
	}
	return nil
}

// Series is the normalized view of one record: a key, a throughput
// sample distribution, and the deterministic work counters behind it.
// tintstat compares series of the same key across two files.
type Series struct {
	// Key identifies the record across files:
	// "experiment/parallel=N" for engine reports, the scenario name
	// for serve reports.
	Key string
	// Unit names the throughput measure ("ops/sec" or "cells/sec").
	Unit string
	// Samples holds the raw throughput samples, higher = better. For
	// v1 files this is the single aggregate measurement.
	Samples []float64
	// Ops is the deterministic simulated-work counter (engine ops or
	// completed client ops). For a fixed scale/seed it must not vary
	// across hosts — tintstat's -exact-ops gate checks that.
	Ops uint64
	// Cells is the cell count of the record (0 for serve records).
	Cells int
	// AllocsPerOp is the record's host allocations per op; HasAllocs
	// distinguishes a measured zero from a pre-field file, so
	// tintstat's -exact-allocs gate skips records that never measured.
	AllocsPerOp float64
	HasAllocs   bool
}

// Kind labels which harness produced a file.
type Kind string

const (
	KindEngine Kind = "engine"
	KindServe  Kind = "serve"
)

// Decode normalizes a report file (either harness, any format
// version) into keyed series in file order.
func Decode(data []byte) (Kind, []Series, error) {
	// The two report shapes are distinguished by their record keys:
	// engine records carry "experiment", serve records "scenario".
	var probe struct {
		Records []struct {
			Experiment string `json:"experiment"`
			Scenario   string `json:"scenario"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", nil, fmt.Errorf("benchfmt: %w", err)
	}
	if len(probe.Records) == 0 {
		return "", nil, fmt.Errorf("benchfmt: no records")
	}
	switch {
	case probe.Records[0].Experiment != "":
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("benchfmt: %w", err)
		}
		return KindEngine, EngineSeries(&rep), nil
	case probe.Records[0].Scenario != "":
		var rep ServeReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return "", nil, fmt.Errorf("benchfmt: %w", err)
		}
		return KindServe, ServeSeries(&rep), nil
	default:
		return "", nil, fmt.Errorf("benchfmt: records carry neither \"experiment\" nor \"scenario\" keys")
	}
}

// ReadFile loads and normalizes a report file.
func ReadFile(path string) (Kind, []Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, fmt.Errorf("benchfmt: %w", err)
	}
	kind, series, err := Decode(data)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return kind, series, nil
}

// EngineSeries normalizes an engine report. The "overall" roll-up
// rows are included under "overall/parallel=N" keys.
func EngineSeries(rep *Report) []Series {
	var out []Series
	for _, recs := range [][]Record{rep.Records, rep.Overall} {
		for i := range recs {
			out = append(out, engineSeries(&recs[i]))
		}
	}
	return out
}

func engineSeries(r *Record) Series {
	s := Series{
		Key:         fmt.Sprintf("%s/parallel=%d", r.Experiment, r.Parallel),
		Unit:        "ops/sec",
		Ops:         r.EngineOps,
		Cells:       r.Cells,
		AllocsPerOp: r.AllocsPerOp,
		HasAllocs:   r.AllocsPerOp != 0,
	}
	// Experiments that do no engine work (the latency primer) fall
	// back to cells/sec so they still have a throughput signal.
	if r.EngineOps == 0 {
		s.Unit = "cells/sec"
		s.Samples = append([]float64(nil), r.CellsPerSecSamples...)
		if len(s.Samples) == 0 {
			s.Samples = []float64{r.CellsPerSec}
		}
		return s
	}
	s.Samples = append([]float64(nil), r.OpsPerSecSamples...)
	if len(s.Samples) == 0 {
		s.Samples = []float64{r.OpsPerSec}
	}
	return s
}

// ServeSeries normalizes a serve report. Offload records appear under
// "offload/<scenario>" keys so inline and offloaded runs of the same
// scenario stay distinct series.
func ServeSeries(rep *ServeReport) []Series {
	var out []Series
	for i := range rep.Records {
		out = append(out, serveSeries(&rep.Records[i], ""))
	}
	for i := range rep.OffloadRecords {
		out = append(out, serveSeries(&rep.OffloadRecords[i], "offload/"))
	}
	for i := range rep.NetRecords {
		out = append(out, serveSeries(&rep.NetRecords[i], "net/"))
	}
	for i := range rep.ChurnRecords {
		out = append(out, churnSeries(&rep.ChurnRecords[i]))
	}
	return out
}

func churnSeries(r *ChurnRecord) Series {
	s := Series{
		Key:  "churn/" + r.Scenario,
		Unit: "ops/sec",
		Ops:  r.Ops,
	}
	s.Samples = append([]float64(nil), r.OpsPerSecSamples...)
	if len(s.Samples) == 0 {
		s.Samples = []float64{r.OpsPerSec}
	}
	return s
}

func serveSeries(r *ServeRecord, prefix string) Series {
	s := Series{
		Key:         prefix + r.Scenario,
		Unit:        "ops/sec",
		Ops:         r.Ops,
		AllocsPerOp: r.AllocsPerOp,
		HasAllocs:   r.AllocsPerOp != 0,
	}
	s.Samples = append([]float64(nil), r.OpsPerSecSamples...)
	if len(s.Samples) == 0 {
		s.Samples = []float64{r.OpsPerSec}
	}
	return s
}

// WriteFile marshals a report (either shape) to path with the
// repository's indentation convention.
func WriteFile(path string, rep any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
