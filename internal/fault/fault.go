// Package fault is the deterministic fault injector behind the chaos
// harness (`tintbench -exp chaos`). It wires the kernel's fault hooks
// (kernel.SetFaultHooks, kernel.SetZoneFaultHook) to a seed-driven
// decision stream, so a run under injected buddy OOM, color-refill
// starvation, migration failure or a per-node capacity squeeze is
// exactly as reproducible as a clean run: the same seed and plan
// produce the same injections at the same points, at any -parallel
// worker count.
//
// Determinism contract (DESIGN.md Sec. 10): every decision is a pure
// function of (seed, site, rule, per-site sequence number, salt). The
// sequence numbers are the injector's own logical clock — they count
// consultations, which the simulator performs in a deterministic
// order — so no wall clock or global rand is ever consulted. tintvet's
// faultpure analyzer enforces the same property on any hand-written
// hook.
package fault

import (
	"fmt"
	"sync"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
)

// Site identifies a fault-injection point in the kernel.
type Site int

const (
	// SiteBuddyAlloc vets buddy-zone allocations (Alloc, AllocExact,
	// AllocMatching); an injection makes the zone report OOM.
	SiteBuddyAlloc Site = iota
	// SiteRefill vets color-list refills; an injection fails the
	// refill from one zone, pushing the allocation toward the
	// degradation ladder.
	SiteRefill
	// SiteMigrate vets individual page copies inside Migrate; an
	// injection leaves the page on its old frame.
	SiteMigrate
	// NumSites sizes per-site counters.
	NumSites
)

// String returns the site's report label.
func (s Site) String() string {
	switch s {
	case SiteBuddyAlloc:
		return "buddy-alloc"
	case SiteRefill:
		return "refill"
	case SiteMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("site(%d)", int(s))
	}
}

// Rule makes one site fail probabilistically.
type Rule struct {
	Site Site
	// Node restricts the rule to one node's zone; -1 matches every
	// node. SiteMigrate carries no node and ignores the field.
	Node int
	// Permille is the injection probability in thousandths (300 fails
	// roughly 30% of consultations).
	Permille int
	// After skips the site's first After consultations, letting a
	// workload warm up on healthy memory before the faults start.
	After uint64
	// Limit caps the rule's total injections; 0 means unlimited.
	Limit uint64
}

// Squeeze reserves a fraction of one node's initially-free frames:
// the zone reports OOM whenever serving a request would dip into the
// reserve. It models a co-located memory hog without simulating one.
type Squeeze struct {
	Node int
	// Frac is the reserved fraction of the node's free frames at Wire
	// time, in (0, 1].
	Frac float64
}

// Plan is a named fault scenario: probabilistic rules plus capacity
// squeezes.
type Plan struct {
	Name        string
	Description string
	Rules       []Rule
	Squeezes    []Squeeze
}

// Stats counts the injector's activity.
type Stats struct {
	Decisions      [NumSites]uint64 // consultations per site
	Injected       [NumSites]uint64 // faults fired per site
	SqueezeDenials uint64           // OOMs forced by capacity squeezes
}

// TotalInjected sums injections across sites and squeezes.
func (s Stats) TotalInjected() uint64 {
	var t uint64
	for _, n := range s.Injected {
		t += n
	}
	return t + s.SqueezeDenials
}

// Injector evaluates a Plan against a deterministic decision stream.
// Build one per simulated kernel (Wire installs its hooks). The
// decision counters are mutex-guarded, so the injector is safe for
// concurrent use — but note the stream itself is only deterministic
// when the kernel consults it in a deterministic order, as the
// single-threaded simulator does.
type Injector struct {
	seed uint64
	plan Plan

	mu       sync.Mutex
	seq      [NumSites]uint64 //tintvet:guardedby mu -- per-site consultation counters
	ruleHits []uint64         //tintvet:guardedby mu -- per-rule injections, for Limit
	stats    Stats            //tintvet:guardedby mu
}

// New builds an injector for plan driven by seed. Two injectors with
// the same seed and plan produce identical decision streams.
func New(seed uint64, plan Plan) *Injector {
	return &Injector{seed: seed, plan: plan, ruleHits: make([]uint64, len(plan.Rules))}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a copy of the activity counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// noteSqueezeDenial counts one OOM forced by a capacity squeeze.
func (in *Injector) noteSqueezeDenial() {
	in.mu.Lock()
	in.stats.SqueezeDenials++
	in.mu.Unlock()
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over
// uint64, the standard cheap way to turn a structured counter into
// uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide consults the plan's rules for one event at site. node is the
// zone involved (-1 when the site has none) and salt folds in any
// further event identity (e.g. the vpage a migration moves), so rules
// at the same sequence number on different objects draw independent
// bits.
func (in *Injector) decide(site Site, node int, salt uint64) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Decisions[site]++
	seq := in.seq[site]
	in.seq[site]++
	for i, r := range in.plan.Rules {
		if r.Site != site {
			continue
		}
		if r.Node >= 0 && node >= 0 && r.Node != node {
			continue
		}
		if seq < r.After {
			continue
		}
		if r.Limit > 0 && in.ruleHits[i] >= r.Limit {
			continue
		}
		h := splitmix64(in.seed ^ splitmix64(uint64(site)<<32|uint64(i)) ^ splitmix64(seq) ^ salt)
		if int(h%1000) < r.Permille {
			in.ruleHits[i]++
			in.stats.Injected[site]++
			return true
		}
	}
	return false
}

// Wire installs the injector's hooks on k: a per-zone buddy hook
// combining the capacity squeezes with SiteBuddyAlloc rules, and the
// kernel-level refill and migrate hooks. Squeeze reserves are sized
// from each node's free frames at call time, so Wire belongs right
// after kernel boot, before the workload maps anything.
func (in *Injector) Wire(k *kernel.Kernel) error {
	nodes := k.Topology().Nodes()
	reserve := make([]uint64, nodes)
	for _, s := range in.plan.Squeezes {
		if s.Node < 0 || s.Node >= nodes {
			return fmt.Errorf("fault: plan %q squeezes node %d of a %d-node machine", in.plan.Name, s.Node, nodes)
		}
		if s.Frac <= 0 || s.Frac > 1 {
			return fmt.Errorf("fault: plan %q squeeze frac %v outside (0, 1]", in.plan.Name, s.Frac)
		}
		reserve[s.Node] = uint64(s.Frac * float64(k.FreeFramesOfNode(s.Node)))
	}
	for n := 0; n < nodes; n++ {
		n := n
		k.SetZoneFaultHook(n, func(order int) bool {
			if reserve[n] > 0 && k.FreeFramesOfNode(n) < reserve[n]+uint64(1)<<order {
				in.noteSqueezeDenial()
				return true
			}
			return in.decide(SiteBuddyAlloc, n, uint64(order))
		})
	}
	k.SetFaultHooks(kernel.FaultHooks{
		Refill: func(node int) bool {
			return in.decide(SiteRefill, node, 0)
		},
		Migrate: func(taskID int, vpage uint64) bool {
			return in.decide(SiteMigrate, -1, splitmix64(uint64(taskID))^vpage)
		},
	})
	return nil
}

// Plans returns the named chaos scenarios `tintbench -exp chaos`
// runs, in report order.
func Plans() []Plan {
	return []Plan{
		{
			Name:        "buddy-oom",
			Description: "zones intermittently report OOM after a warm-up",
			Rules:       []Rule{{Site: SiteBuddyAlloc, Node: -1, Permille: 60, After: 200}},
		},
		{
			Name:        "refill-starve",
			Description: "color-list refills fail often, forcing the ladder",
			Rules:       []Rule{{Site: SiteRefill, Node: -1, Permille: 350}},
		},
		{
			Name:        "migrate-flaky",
			Description: "page migrations drop a quarter of their copies",
			Rules:       []Rule{{Site: SiteMigrate, Node: -1, Permille: 250}},
		},
		{
			Name:        "node0-squeeze",
			Description: "60% of node 0's memory is reserved by a phantom hog",
			Squeezes:    []Squeeze{{Node: 0, Frac: 0.6}},
		},
		{
			Name:        "pressure-storm",
			Description: "everything at once: OOM, starved refills, squeezed nodes",
			Rules: []Rule{
				{Site: SiteBuddyAlloc, Node: -1, Permille: 40, After: 100},
				{Site: SiteRefill, Node: -1, Permille: 200},
				{Site: SiteMigrate, Node: -1, Permille: 150},
			},
			Squeezes: []Squeeze{{Node: 0, Frac: 0.4}, {Node: 1, Frac: 0.25}},
		},
	}
}

// PlanByName finds a named plan.
func PlanByName(name string) (Plan, error) {
	for _, p := range Plans() {
		if p.Name == name {
			return p, nil
		}
	}
	return Plan{}, fmt.Errorf("fault: unknown plan %q", name)
}
