package fault

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

func testPlan(permille int) Plan {
	return Plan{Name: "test", Rules: []Rule{
		{Site: SiteBuddyAlloc, Node: -1, Permille: permille},
	}}
}

// Two injectors with the same seed and plan must produce identical
// decision streams; a different seed must diverge somewhere.
func TestDeterminism(t *testing.T) {
	a := New(42, testPlan(300))
	b := New(42, testPlan(300))
	c := New(43, testPlan(300))
	var differs bool
	for i := 0; i < 2000; i++ {
		da := a.decide(SiteBuddyAlloc, i%4, uint64(i%3))
		db := b.decide(SiteBuddyAlloc, i%4, uint64(i%3))
		if da != db {
			t.Fatalf("decision %d: same seed diverged", i)
		}
		if dc := c.decide(SiteBuddyAlloc, i%4, uint64(i%3)); dc != da {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds never diverged in 2000 decisions")
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v != %+v", a.Stats(), b.Stats())
	}
}

// Injection frequency must track Permille roughly (the hash is
// uniform), with 0 and 1000 exact.
func TestRate(t *testing.T) {
	for _, tc := range []struct{ permille, lo, hi int }{
		{0, 0, 0},
		{1000, 4000, 4000},
		{300, 1000, 1600},
	} {
		in := New(7, testPlan(tc.permille))
		hits := 0
		for i := 0; i < 4000; i++ {
			if in.decide(SiteBuddyAlloc, 0, 0) {
				hits++
			}
		}
		if hits < tc.lo || hits > tc.hi {
			t.Errorf("permille %d: %d/4000 injections, want [%d, %d]", tc.permille, hits, tc.lo, tc.hi)
		}
	}
}

// After skips the site's first consultations; Limit caps the total.
func TestAfterAndLimit(t *testing.T) {
	in := New(1, Plan{Name: "t", Rules: []Rule{
		{Site: SiteRefill, Node: -1, Permille: 1000, After: 10, Limit: 5},
	}})
	hits := 0
	for i := 0; i < 100; i++ {
		fired := in.decide(SiteRefill, 0, 0)
		if i < 10 && fired {
			t.Fatalf("injection at consultation %d, before After=10", i)
		}
		if fired {
			hits++
		}
	}
	if hits != 5 {
		t.Errorf("got %d injections, want Limit=5", hits)
	}
}

// A node-scoped rule must leave other nodes untouched, and sites must
// not bleed into each other.
func TestScoping(t *testing.T) {
	in := New(9, Plan{Name: "t", Rules: []Rule{
		{Site: SiteBuddyAlloc, Node: 2, Permille: 1000},
	}})
	for i := 0; i < 50; i++ {
		if in.decide(SiteBuddyAlloc, 1, 0) {
			t.Fatal("node-2 rule fired on node 1")
		}
		if in.decide(SiteRefill, 2, 0) {
			t.Fatal("buddy-alloc rule fired at the refill site")
		}
		if !in.decide(SiteBuddyAlloc, 2, 0) {
			t.Fatal("node-2 rule missed node 2 at permille 1000")
		}
	}
	st := in.Stats()
	if st.Injected[SiteBuddyAlloc] != 50 || st.Injected[SiteRefill] != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Decisions[SiteBuddyAlloc] != 100 || st.Decisions[SiteRefill] != 50 {
		t.Errorf("decisions = %+v", st)
	}
}

func TestPlanByName(t *testing.T) {
	for _, p := range Plans() {
		got, err := PlanByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("PlanByName(%q) = %+v, %v", p.Name, got, err)
		}
		if p.Description == "" {
			t.Errorf("plan %q has no description", p.Name)
		}
	}
	if _, err := PlanByName("no-such-plan"); err == nil {
		t.Error("unknown plan name returned nil error")
	}
}

func bootKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(64<<20, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// Wire on a real kernel: a full squeeze on node 0 denies its zone
// while allocations still succeed via the ladder, and the denials are
// counted.
func TestWireSqueeze(t *testing.T) {
	k := bootKernel(t)
	in := New(5, Plan{Name: "t", Squeezes: []Squeeze{{Node: 0, Frac: 1.0}}})
	if err := in.Wire(k); err != nil {
		t.Fatal(err)
	}
	task, err := k.NewProcess().NewTask(0) // core 0 lives on node 0
	if err != nil {
		t.Fatal(err)
	}
	va, err := task.Mmap(0, 8*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		f, _ := task.FrameOfVA(va + p*phys.PageSize)
		if n := k.Mapping().NodeOfFrame(f); n == 0 {
			t.Errorf("page %d landed on squeezed node 0", p)
		}
	}
	if in.Stats().SqueezeDenials == 0 {
		t.Error("no squeeze denials counted")
	}
}

func TestWireValidation(t *testing.T) {
	k := bootKernel(t)
	if err := New(1, Plan{Name: "bad", Squeezes: []Squeeze{{Node: 99, Frac: 0.5}}}).Wire(k); err == nil {
		t.Error("out-of-range squeeze node accepted")
	}
	if err := New(1, Plan{Name: "bad", Squeezes: []Squeeze{{Node: 0, Frac: 1.5}}}).Wire(k); err == nil {
		t.Error("squeeze frac above 1 accepted")
	}
}
