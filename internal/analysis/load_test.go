package analysis

import (
	"strings"
	"testing"
)

// TestLoadTypeErrorFailsHard pins the loader's contract: a package
// that does not typecheck yields an error naming it, never a partial
// Pass an analyzer could run over and silently under-report on.
func TestLoadTypeErrorFailsHard(t *testing.T) {
	prog, err := Load(".", []string{"./testdata/brokenpkg"})
	if err == nil {
		t.Fatalf("Load succeeded on a type-error package: %+v", prog)
	}
	if !strings.Contains(err.Error(), "typechecking") || !strings.Contains(err.Error(), "brokenpkg") {
		t.Errorf("error %q does not name the typechecking failure and package", err)
	}
}

func TestLoadWellTypedPackage(t *testing.T) {
	prog, err := Load(".", []string{"./testdata/okpkg"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var found bool
	for _, pkg := range prog.Packages {
		if !strings.HasSuffix(pkg.Path, "testdata/okpkg") {
			continue
		}
		found = true
		if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
			t.Errorf("okpkg loaded without types/info/files: %+v", pkg)
		}
		if pkg.Types != nil && pkg.Types.Scope().Lookup("Sorted") == nil {
			t.Errorf("okpkg scope is missing Sorted")
		}
	}
	if !found {
		t.Fatalf("okpkg not in loaded packages: %v", prog.Packages)
	}
}
