package fixture

import "sync"

// registry's table is contractually guarded by mu; the functions
// below violate the contract in the ways guardedby must catch.
type registry struct {
	mu sync.Mutex
	// table maps names to slots.
	table map[string]int //tintvet:guardedby mu
	next  int            //tintvet:guardedby mu
}

func (r *registry) unlockedRead(name string) int {
	return r.table[name] // want "read of registry.table .* without holding"
}

func (r *registry) unlockedWrite(name string) {
	r.table[name] = 1 // want "write of registry.table .* without holding"
	r.next++          // want "write of registry.next .* without holding"
}

func (r *registry) lockReleasedTooSoon(name string) int {
	r.mu.Lock()
	n := r.table[name]
	r.mu.Unlock()
	r.table[name] = n + 1 // want "write of registry.table .* without holding"
	return n
}

// helperMixedCallers is called once with the lock and once without,
// so the guard is not provably held on entry (EntryMust is the
// intersection over call sites) and its access is flagged.
func (r *registry) helperMixedCallers() {
	r.next++ // want "write of registry.next .* without holding"
}

func (r *registry) lockedCaller() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helperMixedCallers()
}

func (r *registry) unlockedCaller() {
	r.helperMixedCallers()
}

// Malformed annotations are diagnostics themselves.
type broken struct {
	counter int
	a       int //tintvet:guardedby missing // want "not a field of broken"
	b       int //tintvet:guardedby counter // want "not a sync.Mutex"
	c       int //tintvet:guardedby // want "names no mutex field"
}
