package fixture

import "sync"

// The negative cases: every access pattern here satisfies its
// guardedby contract and must produce no diagnostic.

// store exercises plain locking, defer, the locked-helper idiom
// (EntryMust propagation), and an annotation written on its own line
// above the field.
type store struct {
	mu sync.Mutex
	//tintvet:guardedby mu
	items []string
}

func (s *store) add(v string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items = append(s.items, v)
}

func (s *store) lenLocked() int {
	s.mu.Lock()
	n := len(s.items)
	s.mu.Unlock()
	return n
}

// drainLocked is only ever called with the lock held, so its naked
// access is clean by interprocedural propagation.
func (s *store) drain() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainLocked()
}

func (s *store) drainLocked() []string {
	out := s.items
	s.items = nil
	return out
}

// striped guards a bucket table with a stripe array; the alias idiom
// (mu := &striped.locks[i]) must resolve to the collapsed stripe key.
type striped struct {
	locks   [8]sync.Mutex
	buckets [][]int //tintvet:guardedby locks
}

func (t *striped) put(b, v int) {
	mu := &t.locks[b%len(t.locks)]
	mu.Lock()
	t.buckets[b] = append(t.buckets[b], v)
	mu.Unlock()
}

func (t *striped) get(b int) []int {
	t.locks[b%len(t.locks)].Lock()
	defer t.locks[b%len(t.locks)].Unlock()
	return t.buckets[b]
}

// adjacent pins the directive's scope: the annotation trailing hot
// must not leak to cold on the next line via the line-above rule.
type adjacent struct {
	mu   sync.Mutex
	hot  int //tintvet:guardedby mu
	cold int
}

func (a *adjacent) readCold() int { return a.cold }

func (a *adjacent) readHot() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hot
}

// embedded uses an embedded sync.Mutex as the guard.
type embedded struct {
	sync.Mutex
	n int //tintvet:guardedby Mutex
}

func (e *embedded) bump() {
	e.Lock()
	e.n++
	e.Unlock()
}
