package guardedby

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestGuardedby(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}
