// Package guardedby turns "this mutex guards that field" comments
// into machine-checked contracts. A struct field annotated
//
//	loans map[phys.Frame]Loan //tintvet:guardedby loanMu
//
// (or with the directive on its own line above the field) may only be
// read or written while the named sibling mutex is held. The check is
// interprocedural within the package: a helper that touches the field
// is clean if every direct intra-package call path into it holds the
// guard (lockset.EntryMust), so the `fooLocked()` idiom needs no
// annotation of its own.
//
// The guard must be a sibling field of type sync.Mutex, sync.RWMutex,
// a pointer to one, or a slice/array of mutexes (a stripe set,
// collapsed to one lock node exactly as the lockset walk collapses
// `stripes[i].Lock()`). Malformed annotations — naming a missing
// sibling or a non-mutex field, or annotating a field of an unnamed
// struct type — are themselves diagnostics: a contract that cannot be
// checked must not look like one that is.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
	"github.com/tintmalloc/tintmalloc/internal/analysis/lockset"
)

// Directive is the field-annotation comment prefix.
const Directive = "tintvet:guardedby"

// Analyzer enforces //tintvet:guardedby field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "a struct field annotated `//tintvet:guardedby <mutexfield>` may only " +
		"be accessed with the named sibling mutex held (checked through direct " +
		"intra-package calls); malformed annotations are flagged too",
	Run: run,
}

// guard is one parsed annotation: the guarded field object and the
// lock key that must be held at every access.
type guard struct {
	structName string
	mutexField string
	key        string
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	sums := lockset.ForPackage(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	for _, fn := range sums.Funcs {
		entry := sums.EntryMust(fn)
		for _, acc := range fn.Accesses {
			g, ok := guards[acc.Field]
			if !ok {
				continue
			}
			if acc.Held[g.key] || entry[g.key] {
				continue
			}
			verb := "read"
			if acc.Write {
				verb = "write"
			}
			held := "none"
			if hs := acc.Held.Union(entry).Sorted(); len(hs) > 0 {
				held = strings.Join(hs, ", ")
			}
			pass.Reportf(acc.Pos,
				"%s of %s.%s in %s without holding %s (guardedby %s; held: %s)",
				verb, g.structName, acc.Field.Name(), fn.Name, g.key, g.mutexField, held)
		}
	}
	return nil
}

// collectGuards parses every guardedby annotation in the package,
// reporting malformed ones, and returns the checkable contracts
// keyed by field object.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	out := map[*types.Var]guard{}
	for _, f := range pass.Files {
		// Line-indexed comments: a directive may sit on its own line
		// directly above the field instead of trailing it.
		lineComment := map[int]string{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if arg, ok := directiveArg(c.Text); ok {
					lineComment[pass.Fset.Position(c.Pos()).Line] = arg
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// Lines occupied by the fields themselves: a directive
			// trailing field A must not also attach to field B on the
			// next line through the line-above rule.
			fieldLines := map[int]bool{}
			for _, field := range st.Fields.List {
				for line := pass.Fset.Position(field.Pos()).Line; line <= pass.Fset.Position(field.End()).Line; line++ {
					fieldLines[line] = true
				}
			}
			for _, field := range st.Fields.List {
				arg, pos, ok := fieldDirective(pass, field, lineComment, fieldLines)
				if !ok {
					continue
				}
				if arg == "" {
					pass.Reportf(pos, "guardedby annotation names no mutex field; write //tintvet:guardedby <mutexfield>")
					continue
				}
				mutex := findField(st, arg)
				if mutex == nil {
					pass.Reportf(pos, "guardedby names %q, which is not a field of %s", arg, ts.Name.Name)
					continue
				}
				mtv, ok := pass.TypesInfo.Types[mutex.Type]
				if !ok || !lockset.IsMutexFieldType(mtv.Type) {
					pass.Reportf(pos, "guardedby guard %s.%s is not a sync.Mutex, sync.RWMutex, or slice/array of them", ts.Name.Name, arg)
					continue
				}
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					out[v] = guard{
						structName: ts.Name.Name,
						mutexField: arg,
						key:        lockset.FieldKey(ts.Name.Name, arg),
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldDirective finds a guardedby directive attached to field: in
// its doc comment, its trailing comment, or on the line directly
// above it (unless that line holds another field, whose trailing
// directive must not leak downward).
func fieldDirective(pass *analysis.Pass, field *ast.Field, lineComment map[int]string, fieldLines map[int]bool) (arg string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if a, found := directiveArg(c.Text); found {
				return a, c.Pos(), true
			}
		}
	}
	line := pass.Fset.Position(field.Pos()).Line
	if a, found := lineComment[line-1]; found && !fieldLines[line-1] {
		return a, field.Pos(), true
	}
	return "", 0, false
}

// directiveArg extracts the mutex-field argument from a comment, if
// the comment is a guardedby directive.
func directiveArg(text string) (string, bool) {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(t, Directive) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(t, Directive))
	// Fixtures append `// want "..."` inside the same comment token;
	// anything after an embedded // is not part of the directive.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if fields := strings.Fields(rest); len(fields) > 0 {
		return fields[0], true
	}
	return "", true
}

// findField returns the struct field named name, or nil.
func findField(st *ast.StructType, name string) *ast.Field {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return field
			}
		}
		// Embedded guard (`sync.Mutex`): match the type's base name.
		if len(field.Names) == 0 {
			if base := embeddedName(field.Type); base == name {
				return field
			}
		}
	}
	return nil
}

func embeddedName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	}
	return ""
}
