package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of module packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []Package // dependency order (deps first)
}

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
}

// Load enumerates the packages matching patterns with `go list`,
// parses their (non-test) sources, and typechecks them in dependency
// order. Imports within the module resolve to the freshly checked
// packages; standard-library imports are typechecked from $GOROOT/src
// by the stock source importer, so the loader needs no compiled
// export data and works fully offline.
func Load(dir string, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	// -deps performs a depth-first post-order traversal: every
	// package appears after all of its dependencies, so a single
	// forward sweep typechecks imports before importers.
	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if !p.Standard {
			listed = append(listed, p)
		}
	}

	fset := token.NewFileSet()
	imp := &chainImporter{
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		module: map[string]*types.Package{},
	}
	prog := &Program{Fset: fset}
	for _, lp := range listed {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: typechecking %s: %v", lp.ImportPath, err)
		}
		imp.module[lp.ImportPath] = tpkg
		prog.Packages = append(prog.Packages, Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return prog, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// chainImporter resolves module-internal imports from the packages
// already typechecked this run and everything else (the standard
// library) through the source importer.
type chainImporter struct {
	std    types.ImporterFrom
	module map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.module[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}
