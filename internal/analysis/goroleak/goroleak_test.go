package goroleak

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestGoroleak(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}
