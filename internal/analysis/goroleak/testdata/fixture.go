package fixture

import (
	"sort"
	"sync"
)

// leak spawns a goroutine with no WaitGroup tracking and no stop
// signal in its body: nothing can await or shut it down.
func leak(ch chan int) {
	go func() { // want "untracked"
		ch <- 1
	}()
}

// leakExternal hands the goroutine body to another package, so the
// analyzer cannot see a Done call or a stop channel inside it.
func leakExternal(xs []string) {
	go sort.Strings(xs) // want "outside the package"
}

// addWithoutDone has the Add half of the pairing but the body never
// calls Done, so wg.Wait() on it hangs forever.
func addWithoutDone(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() { // want "untracked"
		ch <- 2
	}()
}

// sendLocked blocks on a channel send while holding mu: every other
// waiter of mu stalls until some receiver shows up.
type mailbox struct {
	mu    sync.Mutex
	inbox chan int
	n     int
}

func (m *mailbox) sendLocked(v int) {
	m.mu.Lock()
	m.inbox <- v // want "channel send in .* while .* may be held"
	m.mu.Unlock()
}

func (m *mailbox) waitLocked(wg *sync.WaitGroup) {
	m.mu.Lock()
	defer m.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait in .* while .* may be held"
}

func (m *mailbox) selectLocked(stop chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // want "select in .* while .* may be held"
	case <-stop:
	case v := <-m.inbox:
		m.n += v
	}
}

// recvHelper only blocks via a caller that holds the lock; EntryMay
// propagates mailbox.mu into the helper and flags the receive.
func (m *mailbox) recvHelper() int {
	return <-m.inbox // want "channel receive in .* while .* may be held"
}

func (m *mailbox) drainUnderLock() {
	m.mu.Lock()
	m.n += m.recvHelper()
	m.mu.Unlock()
}
