package fixture

import "sync"

// The negative cases: tracked goroutines and lock-free blocking must
// produce no diagnostic.

// pool is the worker-pool idiom: Add in the spawner, deferred Done in
// the body, Wait with no lock held.
func pool(jobs []int) int {
	var wg sync.WaitGroup
	results := make(chan int, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			results <- j * 2
		}(j)
	}
	wg.Wait()
	close(results)
	sum := 0
	for v := range results {
		sum += v
	}
	return sum
}

// server's worker selects on a visible stop channel, so a close()
// can always unblock it even without WaitGroup tracking.
type server struct {
	mu   sync.Mutex
	stop chan struct{}
	work chan int
	n    int
}

func (s *server) start() {
	go func() {
		for {
			select {
			case <-s.stop:
				return
			case v := <-s.work:
				s.bump(v)
			}
		}
	}()
}

func (s *server) bump(v int) {
	s.mu.Lock()
	s.n += v
	s.mu.Unlock()
}

// rangeWorker blocks on a range over a channel — a visible receive
// that close(feed) terminates.
func rangeWorker(feed chan int) {
	go func() {
		for v := range feed {
			_ = v
		}
	}()
}

// releaseThenSend takes the lock for the state update only and blocks
// with nothing held.
func (s *server) releaseThenSend(v int) {
	s.mu.Lock()
	s.n += v
	s.mu.Unlock()
	s.work <- v
}

// selectWithDefault never blocks, so holding the lock across it is
// fine (a polling drain).
func (s *server) tryDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.work:
		s.n += v
	default:
	}
}

// doneViaHelper: the Done call sits one call deep in the body; the
// reachability walk must still find it.
func doneViaHelper(wg *sync.WaitGroup, out chan int) {
	wg.Add(1)
	go func() {
		finish(wg, out)
	}()
}

func finish(wg *sync.WaitGroup, out chan int) {
	defer wg.Done()
	out <- 1
}
