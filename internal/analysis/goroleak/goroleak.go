// Package goroleak enforces goroutine lifecycle discipline. Every
// `go` statement must spawn a function the package can shut down:
// either the spawn is tracked by a sync.WaitGroup (an Add call in the
// spawning function and a Done call in the spawned body — the
// worker-pool idiom) or the body visibly waits on a stop signal (a
// select, a channel receive, or a range over a channel, any of which
// lets a close() unblock it). A goroutine with neither is a leak: it
// outlives its server and no test or Close path can prove it exited.
//
// The analyzer also flags blocking-while-locked hazards: a channel
// send or receive, a default-less select, or a sync.WaitGroup.Wait
// reached while any mutex may be held (locally, or via a direct
// intra-package call chain — lockset.EntryMay). Blocking under a lock
// couples the lock's hold time to another goroutine's progress; if
// that goroutine needs the same lock, the system deadlocks, and even
// when it does not, every other waiter of the lock stalls behind a
// channel that may never be ready. The repo's rule is absolute: never
// block while holding a lock.
package goroleak

import (
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
	"github.com/tintmalloc/tintmalloc/internal/analysis/lockset"
)

// Analyzer reports untracked goroutines and blocking operations
// reached with a lock held.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "every `go` statement must be WaitGroup-tracked (Add in the spawner, " +
		"Done in the body) or select/receive on a visible stop channel; and no " +
		"channel send/receive, select, or WaitGroup.Wait may be reached while " +
		"a mutex may be held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	sums := lockset.ForPackage(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)

	for _, fn := range sums.Funcs {
		for _, spawn := range fn.Gos {
			body := spawn.Body
			if body == nil && spawn.Callee != nil {
				body = sums.Summary(spawn.Callee)
			}
			if body == nil {
				pass.Reportf(spawn.Stmt.Pos(),
					"%s spawns a goroutine running a function outside the package; wrap it in a tracked func literal (WaitGroup Add/Done or a stop channel) so its lifecycle is visible",
					fn.Name)
				continue
			}
			tracked := fn.WaitGroupAdd && waitGroupDoneReachable(sums, body, 0)
			if !tracked && !stopSignalReachable(sums, body, 0) {
				pass.Reportf(spawn.Stmt.Pos(),
					"goroutine spawned by %s is untracked: no WaitGroup Add/Done pair and no select/receive on a stop channel in %s; it cannot be shut down or awaited",
					fn.Name, body.Name)
			}
		}

		// Blocking-while-locked hazards.
		entry := sums.EntryMay(fn)
		for _, blk := range fn.Blocks {
			held := blk.Held.Union(entry)
			if len(held) == 0 {
				continue
			}
			pass.Reportf(blk.Pos,
				"%s in %s while %s may be held; never block while holding a lock — release it before the %s",
				blk.What, fn.Name, strings.Join(held.Sorted(), ", "), blk.What)
		}
	}
	return nil
}

// waitGroupDoneReachable reports whether the spawned body calls
// WaitGroup.Done, directly or through direct intra-package calls
// (bounded depth — the repo's helpers are shallow).
func waitGroupDoneReachable(sums *lockset.Summaries, fn *lockset.FuncSummary, depth int) bool {
	if fn.WaitGroupDone {
		return true
	}
	if depth >= 3 {
		return false
	}
	for _, c := range fn.Calls {
		if callee := sums.Summary(c.Callee); callee != nil && waitGroupDoneReachable(sums, callee, depth+1) {
			return true
		}
	}
	return false
}

// stopSignalReachable reports whether the spawned body blocks on a
// visible signal — a select, channel receive, or range over a channel
// — directly or through direct intra-package calls.
func stopSignalReachable(sums *lockset.Summaries, fn *lockset.FuncSummary, depth int) bool {
	for _, blk := range fn.Blocks {
		if blk.What == "select" || blk.What == "channel receive" {
			return true
		}
	}
	if depth >= 3 {
		return false
	}
	for _, c := range fn.Calls {
		if callee := sums.Summary(c.Callee); callee != nil && stopSignalReachable(sums, callee, depth+1) {
			return true
		}
	}
	return false
}
