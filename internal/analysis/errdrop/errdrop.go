// Package errdrop flags discarded errors from allocator APIs. The
// failure paths of Mmap/Malloc/Alloc and friends encode the paper's
// semantics — ErrNoColoredMemory is the documented "no more pages of
// this color" contract, buddy exhaustion drives the fallback story —
// so silently dropping those errors hides exactly the conditions the
// reproduction is supposed to surface.
package errdrop

import (
	"go/ast"
	"go/types"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// Analyzer reports allocator-API calls whose error result is
// discarded, either by using the call as a statement or by assigning
// the error to the blank identifier.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded errors from allocator APIs (Alloc, Malloc, " +
		"Mmap, Free, Migrate, ...): their failure paths encode the " +
		"paper's fallback semantics",
	Run: run,
}

// allocNames are the allocator entry points across the stack: buddy
// (Alloc/Free), kernel (AllocPages/FreePages/Mmap/Munmap/Migrate/
// Translate), heap (Malloc/Calloc/Realloc/Free/Trim).
var allocNames = map[string]bool{
	"Alloc": true, "AllocPages": true, "FreePages": true,
	"Malloc": true, "Calloc": true, "Realloc": true, "Free": true,
	"Trim": true, "Mmap": true, "Munmap": true, "Migrate": true,
	"Translate": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, pos := allocCallWithError(pass, call); pos >= 0 {
						pass.Reportf(call.Pos(),
							"result error of %s is discarded; allocator failures encode TintMalloc fallback semantics and must be handled or explicitly ignored",
							name)
					}
				}
			case *ast.DeferStmt:
				if name, pos := allocCallWithError(pass, n.Call); pos >= 0 {
					pass.Reportf(n.Call.Pos(),
						"deferred %s discards its error result; wrap it to handle the error", name)
				}
			case *ast.GoStmt:
				if name, pos := allocCallWithError(pass, n.Call); pos >= 0 {
					pass.Reportf(n.Call.Pos(),
						"go %s discards its error result; wrap it to handle the error", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `x, _ := t.Mmap(...)`-style assignments where the
// error position of an allocator call lands on the blank identifier.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, errPos := allocCallWithError(pass, call)
	if errPos < 0 || errPos >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[errPos].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(),
			"error result of %s assigned to blank identifier; allocator failures encode TintMalloc fallback semantics and must be handled or explicitly ignored",
			name)
	}
}

// allocCallWithError reports the callee name and the index of the
// error result when call targets an allocator API returning an
// error; pos is -1 otherwise.
func allocCallWithError(pass *analysis.Pass, call *ast.CallExpr) (name string, pos int) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", -1
	}
	if !allocNames[id.Name] {
		return "", -1
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return "", -1
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", -1
	}
	errType := types.Universe.Lookup("error").Type()
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return id.Name, i
		}
	}
	return "", -1
}
