package fixture

// task mimics the kernel/heap allocator API surface.
type task struct{}

func (t *task) Mmap(addr, length uint64, prot uint32) (uint64, error) { return 0, nil }
func (t *task) Malloc(size uint64) (uint64, error)                    { return 0, nil }
func (t *task) Free(va uint64) error                                  { return nil }
func (t *task) Munmap(va, length uint64) error                        { return nil }

// Free here is NOT an allocator: it returns no error, so dropping
// "nothing" is fine.
type pool struct{}

func (p *pool) Free(va uint64) {}

// flagged: every failure path silently swallowed.
func bad(t *task) uint64 {
	t.Free(0)                // want "result error of Free is discarded"
	t.Munmap(0, 4096)        // want "result error of Munmap is discarded"
	va, _ := t.Mmap(0, 1, 0) // want "error result of Mmap assigned to blank identifier"
	_, _ = t.Malloc(64)      // want "error result of Malloc assigned to blank identifier"
	defer t.Free(va)         // want "deferred Free discards its error"
	return va
}

// allowed: errors captured (checked or not — capture is the contract
// this analyzer enforces; go vet handles unused variables).
func good(t *task) (uint64, error) {
	va, err := t.Mmap(0, 4096, 0)
	if err != nil {
		return 0, err
	}
	if err := t.Free(va); err != nil {
		return 0, err
	}
	return va, nil
}

// allowed: same method name without an error result.
func notAllocator(p *pool) {
	p.Free(7)
}

// allowed: acknowledged exemption for a teardown path.
func exempt(t *task) {
	_ = t.Munmap(0, 4096) //tintvet:ignore errdrop: teardown, segfault here is unreachable
}
