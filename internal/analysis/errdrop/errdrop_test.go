package errdrop

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestErrdrop(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}
