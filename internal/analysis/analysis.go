// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis. The module is
// stdlib-only by policy (see CONTRIBUTING.md), so rather than import
// x/tools this package provides the same Analyzer/Pass/Diagnostic
// shape over go/ast + go/types, plus a loader (load.go) that
// typechecks the module's packages with the standard source importer.
//
// Analyzers live in subpackages (detrand, maporder, cycleclock,
// errdrop) and are driven by cmd/tintvet. Findings can be suppressed
// with a `//tintvet:ignore` comment on the flagged line or the line
// directly above it; the suppression is deliberately line-granular so
// every exemption is visible in review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "detrand").
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string
	// Applies filters the package import paths the driver runs this
	// analyzer on; nil means every package. Fixture tests bypass the
	// filter and run the analyzer unconditionally.
	Applies func(pkgPath string) bool
	// Run reports findings for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in file/line
// order.
func (p *Pass) Diagnostics() []Diagnostic {
	sortDiagnostics(p.diags)
	return p.diags
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// IgnoreDirective is the comment that suppresses a finding on its own
// line or the line below. The full grammar is
//
//	//tintvet:ignore <analyzer>: <reason>
//
// A directive missing the analyzer name or the reason suppresses
// nothing and is itself a finding (see CheckIgnores): an exemption
// that does not say what it exempts or why is unreviewable.
const IgnoreDirective = "tintvet:ignore"

// parseIgnore splits an ignore directive into its analyzer name and
// reason. found reports whether the comment is an ignore directive at
// all; ok reports whether it follows the full grammar.
func parseIgnore(text string) (analyzer, reason string, found, ok bool) {
	t := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(t, IgnoreDirective) {
		return "", "", false, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(t, IgnoreDirective))
	analyzer, reason, colon := strings.Cut(rest, ":")
	analyzer = strings.TrimSpace(analyzer)
	reason = strings.TrimSpace(reason)
	if !colon || analyzer == "" || strings.ContainsAny(analyzer, " \t") || reason == "" {
		return analyzer, reason, true, false
	}
	return analyzer, reason, true, true
}

// ignoredLines returns the set of source lines covered by well-formed
// //tintvet:ignore comments in f: the comment's own line and the line
// after it (so the directive can trail the flagged statement or sit
// on its own line above it). Malformed directives suppress nothing.
func ignoredLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, _, found, ok := parseIgnore(c.Text); found && ok {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

// CheckIgnores reports every //tintvet:ignore directive that does not
// carry both an analyzer name and a reason. These are findings in
// their own right — a bare ignore hides a diagnostic without leaving
// a reviewable trace of what was silenced or why.
func CheckIgnores(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, _, found, ok := parseIgnore(c.Text); found && !ok {
					out = append(out, Diagnostic{
						Analyzer: "tintvet",
						Pos:      fset.Position(c.Pos()),
						Message:  "bare tintvet:ignore suppresses nothing; write //tintvet:ignore <analyzer>: <reason>",
					})
				}
			}
		}
	}
	return out
}

// FilterIgnored drops diagnostics whose line carries (or directly
// follows) a well-formed //tintvet:ignore comment. Suppressions are
// merged per filename rather than overwritten, so two files that
// happen to register under the same name in the FileSet (duplicate
// basenames from different load roots) cannot silently drop each
// other's directives.
func FilterIgnored(fset *token.FileSet, files []*ast.File, ds []Diagnostic) []Diagnostic {
	ignored := map[string]map[int]bool{}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		lines := ignored[name]
		if lines == nil {
			lines = map[int]bool{}
			ignored[name] = lines
		}
		for line := range ignoredLines(fset, f) {
			lines[line] = true
		}
	}
	kept := ds[:0]
	for _, d := range ds {
		if lines, ok := ignored[d.Pos.Filename]; ok && lines[d.Pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// RunSuite runs every applicable analyzer in suite over every package
// in prog and returns the surviving diagnostics in file/line order.
// Malformed ignore directives are reported once per package alongside
// the analyzers' own findings. A Run error aborts the suite: an
// analyzer that cannot complete is a tooling bug, not a finding.
func RunSuite(prog *Program, suite []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range prog.Packages {
		out = append(out, CheckIgnores(prog.Fset, pkg.Files)...)
		for _, a := range suite {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			out = append(out, FilterIgnored(prog.Fset, pkg.Files, pass.Diagnostics())...)
		}
	}
	sortDiagnostics(out)
	return out, nil
}
