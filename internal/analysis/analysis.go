// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis. The module is
// stdlib-only by policy (see CONTRIBUTING.md), so rather than import
// x/tools this package provides the same Analyzer/Pass/Diagnostic
// shape over go/ast + go/types, plus a loader (load.go) that
// typechecks the module's packages with the standard source importer.
//
// Analyzers live in subpackages (detrand, maporder, cycleclock,
// errdrop) and are driven by cmd/tintvet. Findings can be suppressed
// with a `//tintvet:ignore` comment on the flagged line or the line
// directly above it; the suppression is deliberately line-granular so
// every exemption is visible in review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (e.g. "detrand").
	Name string
	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string
	// Applies filters the package import paths the driver runs this
	// analyzer on; nil means every package. Fixture tests bypass the
	// filter and run the analyzer unconditionally.
	Applies func(pkgPath string) bool
	// Run reports findings for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in file/line
// order.
func (p *Pass) Diagnostics() []Diagnostic {
	sortDiagnostics(p.diags)
	return p.diags
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// IgnoreDirective is the comment that suppresses a finding on its own
// line or the line below.
const IgnoreDirective = "tintvet:ignore"

// ignoredLines returns the set of source lines covered by
// //tintvet:ignore comments in f: the comment's own line and the line
// after it (so the directive can trail the flagged statement or sit
// on its own line above it).
func ignoredLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if strings.HasPrefix(text, IgnoreDirective) {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

// FilterIgnored drops diagnostics whose line carries (or directly
// follows) a //tintvet:ignore comment.
func FilterIgnored(fset *token.FileSet, files []*ast.File, ds []Diagnostic) []Diagnostic {
	ignored := map[string]map[int]bool{}
	for _, f := range files {
		pos := fset.Position(f.Pos())
		ignored[pos.Filename] = ignoredLines(fset, f)
	}
	kept := ds[:0]
	for _, d := range ds {
		if lines, ok := ignored[d.Pos.Filename]; ok && lines[d.Pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
