package lockorder

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestLockorder(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}
