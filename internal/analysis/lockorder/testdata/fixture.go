package fixture

import "sync"

// account/ledger lock in inconsistent order across the two transfer
// paths: creditFirst acquires ledgerMu then acctMu, debitFirst the
// reverse — the canonical AB/BA deadlock.
type bank struct {
	ledgerMu sync.Mutex
	acctMu   sync.Mutex
	ledger   int
	acct     int
}

func (b *bank) creditFirst() {
	b.ledgerMu.Lock()
	defer b.ledgerMu.Unlock()
	b.acctMu.Lock()
	b.acct++
	b.acctMu.Unlock()
}

func (b *bank) debitFirst() {
	b.acctMu.Lock()
	defer b.acctMu.Unlock()
	b.ledgerMu.Lock() // want "lock-order cycle"
	b.ledger--
	b.ledgerMu.Unlock()
}

// relockViaHelper re-acquires a held mutex through a helper call —
// the self-cycle that deadlocks a non-reentrant sync.Mutex. The edge
// is only visible interprocedurally: flush itself looks clean.
type journal struct {
	mu      sync.Mutex
	entries []int
}

func (j *journal) append(v int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.entries = append(j.entries, v)
	j.flush()
}

func (j *journal) flush() {
	j.mu.Lock() // want "already held on a call path"
	j.entries = j.entries[:0]
	j.mu.Unlock()
}

// leakyLock never releases: no Unlock and no defer Unlock anywhere in
// the function.
type box struct {
	mu sync.Mutex
	v  int
}

func (b *box) leakyLock() int {
	b.mu.Lock() // want "no Unlock or defer Unlock"
	return b.v
}
