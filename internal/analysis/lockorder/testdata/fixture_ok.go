package fixture

import "sync"

// The negative cases: consistent ordering, stripe collapsing, scoped
// release — none of these may produce a diagnostic.

// pool locks outerMu before any stripe, everywhere; stripes collapse
// to one node, so taking different stripe indices on different paths
// is not an inconsistency.
type pool struct {
	outerMu sync.Mutex
	stripes []sync.Mutex
	buckets [][]int
}

func (p *pool) putConsistent(b, v int) {
	p.outerMu.Lock()
	defer p.outerMu.Unlock()
	mu := &p.stripes[b%len(p.stripes)]
	mu.Lock()
	p.buckets[b] = append(p.buckets[b], v)
	mu.Unlock()
}

func (p *pool) getConsistent(b int) int {
	p.outerMu.Lock()
	mu := &p.stripes[(b+1)%len(p.stripes)]
	mu.Lock()
	v := p.buckets[b][0]
	mu.Unlock()
	p.outerMu.Unlock()
	return v
}

// deferRelease pairs its Lock with a deferred Unlock.
func (p *pool) deferRelease() int {
	p.outerMu.Lock()
	defer p.outerMu.Unlock()
	return len(p.buckets)
}

// helperUnderLock calls a lock-free helper while holding the mutex —
// a call edge, but no lock acquisition in the callee, so no graph
// edge and no cycle.
func (p *pool) helperUnderLock() int {
	p.outerMu.Lock()
	defer p.outerMu.Unlock()
	return p.rawLen()
}

func (p *pool) rawLen() int { return len(p.buckets) }

// condRelease unlocks on both paths of a branch.
func (p *pool) condRelease(fast bool) int {
	p.outerMu.Lock()
	if fast {
		p.outerMu.Unlock()
		return 0
	}
	n := len(p.buckets)
	p.outerMu.Unlock()
	return n
}
