// Package lockorder checks the package-wide lock-acquisition order.
// It builds a directed graph over type-keyed lock nodes (see
// internal/analysis/lockset): an edge A→B is recorded whenever B is
// locked while A may be held — locally, or on some chain of direct
// intra-package calls. Any cycle in that graph is a deadlock risk:
// two goroutines taking the cycle's locks in different orders can
// block each other forever, and a self-edge means a non-reentrant
// sync.Mutex may be re-locked by its own holder, which deadlocks
// immediately.
//
// The analyzer additionally enforces release discipline: a Lock()
// whose function contains neither a matching Unlock() nor a
// `defer Unlock()` for the same lock is flagged. The repo's locking
// idiom is strictly scoped — lock, touch the guarded state, unlock
// in the same function — so a lock with no visible release is either
// a leak or a lock-handoff pattern the rest of the suite cannot
// reason about.
package lockorder

import (
	"go/token"
	"sort"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
	"github.com/tintmalloc/tintmalloc/internal/analysis/lockset"
)

// Analyzer reports lock-order cycles and Lock calls with no matching
// release.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the per-package lock-acquisition graph (edge A→B when B is " +
		"locked while A may be held, propagated through direct intra-package " +
		"calls, lock stripes collapsed to one node) and report cycles as " +
		"deadlock risks; also flag Lock() with no Unlock/defer Unlock in the " +
		"same function",
	Run: run,
}

// edge is one recorded acquisition-order observation, kept with the
// first witness position so reports are stable and clickable.
type edge struct {
	pos token.Pos
	fn  string
}

func run(pass *analysis.Pass) error {
	sums := lockset.ForPackage(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)

	// Release discipline.
	for _, fn := range sums.Funcs {
		for _, ev := range fn.Locks {
			if !ev.DeferredUnlock && !ev.PlainUnlock {
				pass.Reportf(ev.Pos,
					"%s locks %s with no Unlock or defer Unlock in the same function; scoped locking (lock, touch state, unlock) is the only permitted idiom",
					fn.Name, ev.Key)
			}
		}
	}

	// Acquisition graph: held (local ∪ may-entry) → newly locked.
	edges := map[string]map[string]edge{}
	for _, fn := range sums.Funcs {
		entry := sums.EntryMay(fn)
		for _, ev := range fn.Locks {
			for src := range ev.Held.Union(entry) {
				if edges[src] == nil {
					edges[src] = map[string]edge{}
				}
				if _, seen := edges[src][ev.Key]; !seen {
					edges[src][ev.Key] = edge{pos: ev.Pos, fn: fn.Name}
				}
			}
		}
	}

	// Self-edges first: re-locking a held non-reentrant mutex is an
	// immediate deadlock, reported separately from ordering cycles.
	var nodes []string
	for src := range edges {
		nodes = append(nodes, src)
	}
	sort.Strings(nodes)
	for _, src := range nodes {
		if e, ok := edges[src][src]; ok {
			pass.Reportf(e.pos,
				"%s may be locked in %s while already held on a call path into it; sync.Mutex is not reentrant — this self-cycle deadlocks",
				src, e.fn)
			delete(edges[src], src)
		}
	}

	// Ordering cycles: report one diagnostic per cycle, anchored at
	// the lexicographically first edge of the cycle.
	for _, cyc := range cycles(edges) {
		e := edges[cyc[0]][cyc[1]]
		pass.Reportf(e.pos,
			"lock-order cycle %s: the package acquires these locks in inconsistent order (edge %s→%s in %s); pick one global order",
			strings.Join(append(cyc, cyc[0]), "→"), cyc[0], cyc[1], e.fn)
	}
	return nil
}

// cycles returns every elementary cycle found by DFS back-edge
// detection, deterministically: nodes are visited in sorted order and
// each cycle is rotated to start at its smallest node and deduped.
func cycles(edges map[string]map[string]edge) [][]string {
	var nodes []string
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	seen := map[string]bool{} // canonical cycle signature -> reported
	var out [][]string
	var stack []string
	onStack := map[string]int{}
	var visit func(n string)
	visited := map[string]bool{}
	visit = func(n string) {
		onStack[n] = len(stack)
		stack = append(stack, n)
		var succs []string
		for m := range edges[n] {
			succs = append(succs, m)
		}
		sort.Strings(succs)
		for _, m := range succs {
			if i, ok := onStack[m]; ok {
				cyc := append([]string(nil), stack[i:]...)
				cyc = rotate(cyc)
				sig := strings.Join(cyc, "→")
				if !seen[sig] {
					seen[sig] = true
					out = append(out, cyc)
				}
				continue
			}
			if !visited[m] {
				visit(m)
			}
		}
		stack = stack[:len(stack)-1]
		delete(onStack, n)
		visited[n] = true
	}
	for _, n := range nodes {
		if !visited[n] {
			visit(n)
		}
	}
	return out
}

// rotate rewrites a cycle to start at its smallest node.
func rotate(cyc []string) []string {
	min := 0
	for i, n := range cyc {
		if n < cyc[min] {
			min = i
		}
	}
	return append(append([]string(nil), cyc[min:]...), cyc[:min]...)
}
