// Package atest runs an analyzer against fixture sources, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture files
// carry `// want "regexp"` comments on the lines where the analyzer
// must report, and the test fails on any missing or unexpected
// diagnostic. Fixtures may only import the standard library.
package atest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// wantRe matches `// want "pattern"` at the end of a comment; the
// pattern is a quoted Go string holding a regexp.
var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

type expectation struct {
	line    int
	pattern *regexp.Regexp
	met     bool
}

// Run parses every .go file under dir as one package, typechecks it,
// applies the analyzer, filters //tintvet:ignore suppressions, and
// matches the surviving diagnostics against the fixture's want
// comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("atest: %v", err)
		}
		files = append(files, f)
		wants = append(wants, collectWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("atest: no fixture files in %s", dir)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := analysis.NewInfo()
	pkg, err := conf.Check("fixture", fset, files, info)
	if err != nil {
		t.Fatalf("atest: typechecking fixtures: %v", err)
	}

	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("atest: analyzer %s: %v", a.Name, err)
	}
	diags := analysis.FilterIgnored(fset, files, pass.Diagnostics())

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.met = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("line %d: no diagnostic matching %q", w.line, w.pattern)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pat, err := strconv.Unquote(m[1])
			if err != nil {
				t.Fatalf("atest: bad want comment %q: %v", c.Text, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("atest: bad want pattern %q: %v", pat, err)
			}
			out = append(out, &expectation{line: fset.Position(c.Pos()).Line, pattern: re})
		}
	}
	return out
}
