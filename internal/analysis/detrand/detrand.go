// Package detrand forbids ambient randomness and wall-clock seeding
// in simulator code. The repository's determinism contract
// (DESIGN.md Sec. 6, CONTRIBUTING.md) requires every source of
// randomness to be an explicitly seeded *rand.Rand threaded from run
// configuration; the global math/rand functions draw from a shared,
// auto-seeded source and silently break bit-reproducibility, as does
// time.Now-derived seeding.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// Analyzer flags global math/rand (and math/rand/v2) functions,
// rand.Seed, and time.Now in simulator packages. Constructing a local
// generator with rand.New(rand.NewSource(seed)) is the approved
// pattern and is not flagged.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid the global math/rand source, rand.Seed and time.Now " +
		"in simulator code; thread a seeded *rand.Rand from config instead",
	Applies: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/internal/")
	},
	Run: run,
}

// allowed names construct explicitly seeded generators rather than
// drawing from the global source.
var allowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if id.Name == "Seed" {
					pass.Reportf(id.Pos(),
						"rand.Seed reseeds the shared global source; construct rand.New(rand.NewSource(seed)) from run config instead")
				} else if !allowed[id.Name] {
					pass.Reportf(id.Pos(),
						"global %s.%s draws from an unseeded shared source, breaking run reproducibility; use an explicitly seeded *rand.Rand",
						obj.Pkg().Name(), id.Name)
				}
			case "time":
				if id.Name == "Now" {
					pass.Reportf(id.Pos(),
						"time.Now injects wall-clock state into simulator code; derive values from configured seeds or internal/clock cycles")
				}
			}
			return true
		})
	}
	return nil
}
