package detrand

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestDetrand(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}

func TestApplies(t *testing.T) {
	if !Analyzer.Applies("github.com/tintmalloc/tintmalloc/internal/kernel") {
		t.Error("detrand must apply to internal simulator packages")
	}
	if Analyzer.Applies("github.com/tintmalloc/tintmalloc/cmd/tintbench") {
		t.Error("detrand must not apply outside internal/")
	}
}
