package fixture

import (
	"math/rand"
	"time"
)

// flagged: ambient randomness and wall-clock use.
func bad() {
	_ = rand.Intn(10)    // want "global rand.Intn"
	rand.Seed(42)        // want "rand.Seed reseeds"
	rand.Shuffle(3, nil) // want "global rand.Shuffle"
	_ = time.Now()       // want "time.Now injects wall-clock"
	_ = rand.Int63()     // want "global rand.Int63"
	f := rand.Float64    // want "global rand.Float64"
	_ = f
}

// allowed: an explicitly seeded generator threaded from the caller.
func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, 100)
	_ = z
	return rng.Intn(10)
}

// allowed: an acknowledged exemption via the escape hatch.
func exempt() int {
	return rand.Intn(10) //tintvet:ignore detrand: fixture exercises the escape hatch
}

// allowed: time used for types/constants only, not wall-clock reads.
func duration() time.Duration {
	return 3 * time.Second
}
