// Package maporder flags map iteration whose body is sensitive to
// iteration order. Go randomizes map range order per run, so a loop
// that appends to an outer slice, prints, accumulates floating-point
// values, or mutates simulator allocation state while ranging over a
// map produces run-to-run divergent results — precisely the silent
// nondeterminism the repository's reproducibility contract forbids.
//
// The canonical deterministic idiom — collect keys, sort, iterate the
// sorted slice — stays allowed: an append inside a map range is not
// flagged when the destination slice is sorted later in the same
// enclosing block.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// Analyzer reports order-sensitive map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag ranging over maps where the body appends to outer slices " +
		"(without a later sort), writes output, accumulates floats, or " +
		"calls allocator APIs — map order is randomized per run; in " +
		"output-path functions (io.Writer parameter) per-entry helper " +
		"calls under a map range are flagged too",
	Run: run,
}

// stateAPIs are allocator/kernel entry points whose call order is
// semantically significant: they mutate free lists, page tables or
// color lists, so invoking them in map order makes frame placement —
// and every downstream cycle count — nondeterministic.
var stateAPIs = map[string]bool{
	"Mmap": true, "Munmap": true, "Malloc": true, "Calloc": true,
	"Realloc": true, "Free": true, "FreePages": true, "AllocPages": true,
	"Alloc": true, "AllocExact": true, "AllocMatching": true,
	"Migrate": true, "Translate": true, "Trim": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body := stmtList(n)
			if body == nil {
				return true
			}
			for i, st := range body {
				rng, ok := st.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rng) {
					continue
				}
				checkBody(pass, rng, body[i+1:])
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftype, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftype, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if writers := writerParams(pass, ftype); len(writers) > 0 {
				checkOutputFunc(pass, body, writers)
			}
			return true
		})
	}
	return nil
}

// writerParams returns the objects of a function's io.Writer-typed
// parameters. A function that takes a writer is an output path: its
// map ranges emit user-visible rows, where randomized order is the
// Summary.Threads class of bug.
func writerParams(pass *analysis.Pass, ftype *ast.FuncType) map[types.Object]bool {
	var out map[types.Object]bool
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || types.TypeString(tv.Type, nil) != "io.Writer" {
			continue
		}
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if out == nil {
				out = make(map[types.Object]bool)
			}
			out[obj] = true
		}
	}
	return out
}

// checkOutputFunc walks one output-path function body and flags map
// ranges that emit per-entry output through helper calls the direct
// fmt check cannot see: a call to a locally-declared row closure, or
// any call that passes the writer along. Both mean one output row per
// map entry, in randomized order.
func checkOutputFunc(pass *analysis.Pass, body *ast.BlockStmt, writers map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rng) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A call forwarding the writer emits output per entry.
			// fmt.Fprint* is skipped: the direct fmt check above
			// already reports it.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
					return true
				}
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && writers[pass.TypesInfo.Uses[id]] {
					pass.Reportf(call.Pos(),
						"passing the output writer %q per entry of a map range emits rows in randomized map order; iterate sorted keys instead",
						id.Name)
					return true
				}
			}
			// A call to a closure declared in this function (the
			// `row := func(...)` table-helper idiom) closes over the
			// writer without naming it in the argument list.
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			v, isVar := obj.(*types.Var)
			if !isVar || v.Pos() < body.Pos() || v.Pos() > body.End() {
				return true
			}
			if _, isFunc := v.Type().Underlying().(*types.Signature); !isFunc {
				return true
			}
			pass.Reportf(call.Pos(),
				"calling row helper %q per entry of a map range in an output-path function emits rows in randomized map order; iterate sorted keys instead",
				id.Name)
			return true
		})
		return false // nested ranges are revisited by the outer Inspect
	})
}

// stmtList returns the statement list a node directly holds, so a
// range statement can be checked against its trailing siblings (for
// the append-then-sort exemption).
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkBody walks one map-range body; rest is the statement tail of
// the enclosing block after the range statement.
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, rng, n, rest)
		case *ast.AssignStmt:
			checkFloatAccum(pass, rng, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, rest []ast.Stmt) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		_, isBuiltin := obj.(*types.Builtin)
		if fun.Name == "append" && (obj == nil || isBuiltin) && len(call.Args) > 0 {
			// Builtin append. Appending to a slice declared outside
			// the loop records map order — unless the slice is
			// sorted before use, the collect-then-sort idiom.
			dst, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.TypesInfo.Uses[dst]
			if obj == nil || !declaredOutside(obj, rng) {
				return
			}
			if sortedAfter(pass, obj, rest) {
				return
			}
			pass.Reportf(call.Pos(),
				"append to %q inside map iteration records randomized map order; collect then sort, or sort %q before use",
				dst.Name, dst.Name)
		}
	case *ast.SelectorExpr:
		sel := fun.Sel
		if obj := pass.TypesInfo.Uses[sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if strings.HasPrefix(sel.Name, "Print") || strings.HasPrefix(sel.Name, "Fprint") {
				pass.Reportf(call.Pos(),
					"fmt.%s inside map iteration emits output in randomized map order", sel.Name)
			}
			return
		}
		if stateAPIs[sel.Name] {
			if s, ok := pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
				pass.Reportf(call.Pos(),
					"%s called in map iteration order mutates allocator state nondeterministically; iterate sorted keys instead",
					sel.Name)
			}
		}
	}
}

// checkFloatAccum flags compound floating-point accumulation into a
// variable declared outside the loop: float addition is not
// associative, so the randomized order changes the result bits.
func checkFloatAccum(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !declaredOutside(obj, rng) {
			continue
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %q under map iteration is order-sensitive and maps iterate in randomized order",
				id.Name)
		}
	}
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether a statement following the range loop
// passes obj to a sort.* or slices.Sort* call — the second half of
// the collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pass.TypesInfo.Uses[sel.Sel]
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
