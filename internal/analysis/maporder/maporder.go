// Package maporder flags map iteration whose body is sensitive to
// iteration order. Go randomizes map range order per run, so a loop
// that appends to an outer slice, prints, accumulates floating-point
// values, or mutates simulator allocation state while ranging over a
// map produces run-to-run divergent results — precisely the silent
// nondeterminism the repository's reproducibility contract forbids.
//
// The canonical deterministic idiom — collect keys, sort, iterate the
// sorted slice — stays allowed: an append inside a map range is not
// flagged when the destination slice is sorted later in the same
// enclosing block.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// Analyzer reports order-sensitive map iteration.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag ranging over maps where the body appends to outer slices " +
		"(without a later sort), writes output, accumulates floats, or " +
		"calls allocator APIs — map order is randomized per run",
	Run: run,
}

// stateAPIs are allocator/kernel entry points whose call order is
// semantically significant: they mutate free lists, page tables or
// color lists, so invoking them in map order makes frame placement —
// and every downstream cycle count — nondeterministic.
var stateAPIs = map[string]bool{
	"Mmap": true, "Munmap": true, "Malloc": true, "Calloc": true,
	"Realloc": true, "Free": true, "FreePages": true, "AllocPages": true,
	"Alloc": true, "AllocExact": true, "AllocMatching": true,
	"Migrate": true, "Translate": true, "Trim": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body := stmtList(n)
			if body == nil {
				return true
			}
			for i, st := range body {
				rng, ok := st.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rng) {
					continue
				}
				checkBody(pass, rng, body[i+1:])
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list a node directly holds, so a
// range statement can be checked against its trailing siblings (for
// the append-then-sort exemption).
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkBody walks one map-range body; rest is the statement tail of
// the enclosing block after the range statement.
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, rng, n, rest)
		case *ast.AssignStmt:
			checkFloatAccum(pass, rng, n)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr, rest []ast.Stmt) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[fun]
		_, isBuiltin := obj.(*types.Builtin)
		if fun.Name == "append" && (obj == nil || isBuiltin) && len(call.Args) > 0 {
			// Builtin append. Appending to a slice declared outside
			// the loop records map order — unless the slice is
			// sorted before use, the collect-then-sort idiom.
			dst, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.TypesInfo.Uses[dst]
			if obj == nil || !declaredOutside(obj, rng) {
				return
			}
			if sortedAfter(pass, obj, rest) {
				return
			}
			pass.Reportf(call.Pos(),
				"append to %q inside map iteration records randomized map order; collect then sort, or sort %q before use",
				dst.Name, dst.Name)
		}
	case *ast.SelectorExpr:
		sel := fun.Sel
		if obj := pass.TypesInfo.Uses[sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			if strings.HasPrefix(sel.Name, "Print") || strings.HasPrefix(sel.Name, "Fprint") {
				pass.Reportf(call.Pos(),
					"fmt.%s inside map iteration emits output in randomized map order", sel.Name)
			}
			return
		}
		if stateAPIs[sel.Name] {
			if s, ok := pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
				pass.Reportf(call.Pos(),
					"%s called in map iteration order mutates allocator state nondeterministically; iterate sorted keys instead",
					sel.Name)
			}
		}
	}
}

// checkFloatAccum flags compound floating-point accumulation into a
// variable declared outside the loop: float addition is not
// associative, so the randomized order changes the result bits.
func checkFloatAccum(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !declaredOutside(obj, rng) {
			continue
		}
		if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %q under map iteration is order-sensitive and maps iterate in randomized order",
				id.Name)
		}
	}
}

func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether a statement following the range loop
// passes obj to a sort.* or slices.Sort* call — the second half of
// the collect-then-sort idiom.
func sortedAfter(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := pass.TypesInfo.Uses[sel.Sel]
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
