package fixture

import (
	"fmt"
	"io"
	"sort"
)

type arena struct{}

func (a *arena) Free(va uint64) error { return nil }

// flagged: order-sensitive bodies under map iteration.
func bad(m map[int]float64, a *arena) ([]int, float64) {
	var keys []int
	var sum float64
	for k, v := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration"
		sum += v               // want "floating-point accumulation into \"sum\""
		fmt.Println(k)         // want "fmt.Println inside map iteration"
	}
	for k := range m {
		_ = a.Free(uint64(k)) // want "Free called in map iteration order"
	}
	return keys, sum
}

// allowed: the collect-then-sort idiom — the append records map
// order, but the sort erases it before anyone observes the slice.
func good(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// allowed: order-insensitive bodies (counting, max, map writes,
// integer accumulation, appends to loop-local slices).
func alsoGood(m map[int]int) (int, int) {
	n, max := 0, 0
	inverse := map[int]int{}
	for k, v := range m {
		n++
		if v > max {
			max = v
		}
		inverse[v] = k
		local := []int{}
		local = append(local, k)
		_ = local
	}
	return n, max
}

// allowed: acknowledged exemption.
func exempt(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) //tintvet:ignore maporder: order handled by caller
	}
	return out
}

type row struct{ accesses int }

func emit(w io.Writer, name string, r *row) { fmt.Fprintln(w, name, r.accesses) }

// flagged: output-path functions (io.Writer parameter) emitting one
// row per map entry through helpers — the Summary.Threads bug class.
// The direct-fmt case is caught by the base rule even here.
func badTable(w io.Writer, threads map[int]*row) {
	rowFn := func(name string, r *row) { fmt.Fprintln(w, name, r.accesses) }
	for id, r := range threads {
		rowFn(fmt.Sprint(id), r) // want "calling row helper \"rowFn\" per entry of a map range"
	}
	for id, r := range threads {
		emit(w, fmt.Sprint(id), r) // want "passing the output writer \"w\" per entry of a map range"
	}
	for id := range threads {
		fmt.Fprintln(w, id) // want "fmt.Fprintln inside map iteration"
	}
}

// allowed: the collect-then-sort idiom in an output path — rows are
// emitted from the sorted key slice, not the map range.
func goodTable(w io.Writer, threads map[int]*row) {
	ids := make([]int, 0, len(threads))
	for id := range threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		emit(w, fmt.Sprint(id), threads[id])
	}
}

// allowed: helper closures under map ranges are fine outside output
// paths (no io.Writer in the signature) when otherwise order-safe.
func aggregate(threads map[int]*row) int {
	total := 0
	add := func(r *row) { total += r.accesses }
	for _, r := range threads {
		add(r)
	}
	return total
}
