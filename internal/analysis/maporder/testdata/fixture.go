package fixture

import (
	"fmt"
	"sort"
)

type arena struct{}

func (a *arena) Free(va uint64) error { return nil }

// flagged: order-sensitive bodies under map iteration.
func bad(m map[int]float64, a *arena) ([]int, float64) {
	var keys []int
	var sum float64
	for k, v := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration"
		sum += v               // want "floating-point accumulation into \"sum\""
		fmt.Println(k)         // want "fmt.Println inside map iteration"
	}
	for k := range m {
		_ = a.Free(uint64(k)) // want "Free called in map iteration order"
	}
	return keys, sum
}

// allowed: the collect-then-sort idiom — the append records map
// order, but the sort erases it before anyone observes the slice.
func good(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// allowed: order-insensitive bodies (counting, max, map writes,
// integer accumulation, appends to loop-local slices).
func alsoGood(m map[int]int) (int, int) {
	n, max := 0, 0
	inverse := map[int]int{}
	for k, v := range m {
		n++
		if v > max {
			max = v
		}
		inverse[v] = k
		local := []int{}
		local = append(local, k)
		_ = local
	}
	return n, max
}

// allowed: acknowledged exemption.
func exempt(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) //tintvet:ignore maporder: order handled by caller
	}
	return out
}
