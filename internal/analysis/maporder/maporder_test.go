package maporder

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestMaporder(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}
