// Package lockset computes intraprocedural lock-set summaries for
// one package: which sync.Mutex/sync.RWMutex-typed values are held at
// each statement, propagated through direct intra-package calls. It
// is the shared substrate of the concurrency-safety analyzers
// (lockorder, guardedby, goroleak) driven by cmd/tintvet.
//
// Lock identity is type-based, not instance-based: the lock acquired
// by `s.loanMu.Lock()` is keyed "Server.loanMu" — the declared type
// of the selector's base plus the field name — so summaries compose
// across functions without variable renaming, at the cost of
// conflating distinct instances of one struct type. Index
// expressions collapse: `sh.stripes[i].Lock()` keys as
// "shard.stripes", treating a whole stripe array as one lock node,
// which matches how the repo reasons about stripe discipline ("never
// hold two stripes"). A local alias (`mu := &sh.stripes[b%n]`)
// resolves to the aliased key. Package-level and local mutexes key by
// name (position-qualified for locals).
//
// The flow model is deliberately simple (DESIGN.md Sec. 12): lock
// sets flow linearly through statement lists and into nested blocks;
// a lock acquired inside a branch does not survive past the branch,
// and `defer mu.Unlock()` leaves mu held for the rest of the
// function. That is a must-hold approximation for straight-line
// locking — the only idiom the repo permits — complemented by two
// entry-set fixed points over the direct intra-package call graph:
// EntryMay (union over call paths, for lockorder edge sources and
// goroleak hazards) and EntryMust (intersection, for guardedby).
// Goroutine spawns contribute no entry locks: the spawning
// goroutine's locks are never held by the new one.
package lockset

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Set is a set of lock keys.
type Set map[string]bool

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Union returns a fresh set holding s ∪ t.
func (s Set) Union(t Set) Set {
	out := s.Clone()
	for k := range t {
		out[k] = true
	}
	return out
}

// Sorted returns the keys in sorted order, for deterministic
// diagnostics.
func (s Set) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// LockEvent is one Lock()/RLock() call observed during the walk.
type LockEvent struct {
	Key  string
	Pos  token.Pos
	Held Set // locks already held locally when this Lock executes
	// DeferredUnlock/PlainUnlock report whether the function contains
	// a matching `defer x.Unlock()` or plain `x.Unlock()` anywhere —
	// the release-discipline signal lockorder checks.
	DeferredUnlock bool
	PlainUnlock    bool
}

// BlockEvent is one potentially-blocking operation — channel send,
// channel receive (including range-over-channel), select without a
// default case, or sync.WaitGroup.Wait — with the locks held locally
// at that point.
type BlockEvent struct {
	Pos  token.Pos
	What string
	Held Set
}

// Access is one read or write of a struct field, with the locks held
// locally at that point. guardedby filters these against its
// annotations.
type Access struct {
	Field *types.Var
	Pos   token.Pos
	Held  Set
	Write bool
}

// Call is one direct intra-package call site (or named-function
// goroutine spawn, with Go set).
type Call struct {
	Callee *types.Func
	Pos    token.Pos
	Held   Set
	Go     bool
}

// GoSpawn is one `go` statement. Exactly one of Body (literal spawn,
// summarized separately) and Callee (named same-package function) is
// set when the spawned function is visible; both are nil for spawns
// of imported functions.
type GoSpawn struct {
	Stmt   *ast.GoStmt
	Held   Set
	Body   *FuncSummary
	Callee *types.Func
}

// FuncSummary is the per-function result of the walk. Function
// literals (including goroutine bodies) are separate summaries.
type FuncSummary struct {
	Obj      *types.Func // nil for function literals
	Name     string      // "(*shard).serveBatch", "func@shard.go:292", ...
	Node     ast.Node    // *ast.FuncDecl or *ast.FuncLit
	Locks    []*LockEvent
	Blocks   []BlockEvent
	Accesses []Access
	Calls    []Call
	Gos      []GoSpawn
	// WaitGroupAdd/WaitGroupDone report a sync.WaitGroup Add/Done
	// call anywhere in the function — goroleak's tracking signals.
	WaitGroupAdd  bool
	WaitGroupDone bool
}

// Summaries holds every function summary of one package plus the
// entry-set fixed points.
type Summaries struct {
	Funcs []*FuncSummary

	byObj     map[*types.Func]*FuncSummary
	entryMay  map[*FuncSummary]Set
	entryMust map[*FuncSummary]Set
}

// ForPackage walks every function in files and returns the package's
// summaries with entry sets computed.
func ForPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, tinfo *types.Info) *Summaries {
	s := &Summaries{byObj: map[*types.Func]*FuncSummary{}}
	w := &walker{fset: fset, pkg: pkg, tinfo: tinfo}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				sum := &FuncSummary{Node: d, Name: declName(d)}
				if obj, ok := tinfo.Defs[d.Name].(*types.Func); ok {
					sum.Obj = obj
					s.byObj[obj] = sum
				}
				w.walkFunc(sum, d.Body)
				s.Funcs = append(s.Funcs, sum)
			case *ast.GenDecl:
				// Package-level var initializers may hold literals.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						sum := &FuncSummary{Node: lit, Name: litName(fset, lit)}
						w.walkFunc(sum, lit.Body)
						s.Funcs = append(s.Funcs, sum)
						return false
					}
					return true
				})
			}
		}
		s.Funcs = append(s.Funcs, w.lits...)
		w.lits = nil
	}
	s.computeEntrySets()
	return s
}

// Summary returns the summary for a declared function or method, or
// nil for functions outside the package.
func (s *Summaries) Summary(obj *types.Func) *FuncSummary { return s.byObj[obj] }

// EntryMay returns locks that may be held on entry to fn via some
// chain of direct intra-package calls (union over call paths).
func (s *Summaries) EntryMay(fn *FuncSummary) Set { return s.entryMay[fn] }

// EntryMust returns locks held on every direct intra-package call
// path into fn (empty for entry points and mixed call contexts).
func (s *Summaries) EntryMust(fn *FuncSummary) Set { return s.entryMust[fn] }

func (s *Summaries) computeEntrySets() {
	s.entryMay = map[*FuncSummary]Set{}
	s.entryMust = map[*FuncSummary]Set{}
	for _, f := range s.Funcs {
		s.entryMay[f] = Set{}
	}
	// May: union propagation to a fixed point; the per-package graph
	// is small, so naive iteration converges quickly.
	for changed := true; changed; {
		changed = false
		for _, f := range s.Funcs {
			for _, c := range f.Calls {
				callee := s.byObj[c.Callee]
				if callee == nil || c.Go {
					continue
				}
				tgt := s.entryMay[callee]
				for k := range c.Held.Union(s.entryMay[f]) {
					if !tgt[k] {
						tgt[k] = true
						changed = true
					}
				}
			}
		}
	}
	// Must: per-callee intersection over call sites, iterated a
	// bounded number of rounds so multi-hop chains settle. Functions
	// with no intra-package callers (entry points) stay empty.
	type edge struct {
		caller *FuncSummary
		call   Call
	}
	callers := map[*FuncSummary][]edge{}
	for _, f := range s.Funcs {
		for _, c := range f.Calls {
			if callee := s.byObj[c.Callee]; callee != nil {
				callers[callee] = append(callers[callee], edge{f, c})
			}
		}
	}
	must := map[*FuncSummary]Set{}
	for _, f := range s.Funcs {
		must[f] = Set{}
	}
	for round := 0; round <= len(s.Funcs); round++ {
		for _, f := range s.Funcs {
			sites := callers[f]
			if len(sites) == 0 {
				continue
			}
			var inter Set
			for _, e := range sites {
				site := Set{}
				if !e.call.Go {
					site = e.call.Held.Union(must[e.caller])
				}
				if inter == nil {
					inter = site
				} else {
					for k := range inter {
						if !site[k] {
							delete(inter, k)
						}
					}
				}
			}
			must[f] = inter
		}
	}
	for _, f := range s.Funcs {
		s.entryMust[f] = must[f]
	}
}

// ---------------------------------------------------------------------------
// Walk

type walker struct {
	fset  *token.FileSet
	pkg   *types.Package
	tinfo *types.Info
	// alias maps a local variable to the lock key it aliases
	// (`mu := &sh.stripes[i]`); reset per function.
	alias map[types.Object]string
	// lits accumulates nested function-literal summaries.
	lits []*FuncSummary
}

func (w *walker) walkFunc(sum *FuncSummary, body *ast.BlockStmt) {
	saved := w.alias
	w.alias = map[types.Object]string{}
	w.walkStmts(sum, body.List, Set{})
	w.alias = saved
}

func (w *walker) walkStmts(sum *FuncSummary, stmts []ast.Stmt, held Set) {
	for _, st := range stmts {
		w.walkStmt(sum, st, held)
	}
}

func (w *walker) walkStmt(sum *FuncSummary, st ast.Stmt, held Set) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, kind := w.lockCall(call); key != "" {
				switch kind {
				case "Lock", "RLock":
					sum.Locks = append(sum.Locks, &LockEvent{Key: key, Pos: call.Pos(), Held: held.Clone()})
					held[key] = true
				case "Unlock", "RUnlock":
					w.markUnlock(sum, key, false)
					delete(held, key)
				}
				return
			}
		}
		w.walkExpr(sum, st.X, held)
	case *ast.DeferStmt:
		if key, kind := w.lockCall(st.Call); key != "" && (kind == "Unlock" || kind == "RUnlock") {
			// The lock stays held for the rest of the function.
			w.markUnlock(sum, key, true)
			return
		}
		w.walkExpr(sum, st.Call, held)
	case *ast.GoStmt:
		w.recordGo(sum, st, held)
	case *ast.SendStmt:
		sum.Blocks = append(sum.Blocks, BlockEvent{Pos: st.Pos(), What: "channel send", Held: held.Clone()})
		w.walkExpr(sum, st.Chan, held)
		w.walkExpr(sum, st.Value, held)
	case *ast.AssignStmt:
		w.recordAlias(st)
		for _, e := range st.Rhs {
			w.walkExpr(sum, e, held)
		}
		for _, e := range st.Lhs {
			w.walkLHS(sum, e, held)
		}
	case *ast.IncDecStmt:
		w.walkLHS(sum, st.X, held)
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.walkExpr(sum, e, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(sum, st.Init, held)
		}
		w.walkExpr(sum, st.Cond, held)
		w.walkStmts(sum, st.Body.List, held.Clone())
		if st.Else != nil {
			w.walkStmt(sum, st.Else, held.Clone())
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(sum, st.Init, held)
		}
		if st.Cond != nil {
			w.walkExpr(sum, st.Cond, held)
		}
		body := held.Clone()
		w.walkStmts(sum, st.Body.List, body)
		if st.Post != nil {
			w.walkStmt(sum, st.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := w.tinfo.Types[st.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				sum.Blocks = append(sum.Blocks, BlockEvent{Pos: st.Pos(), What: "channel receive", Held: held.Clone()})
			}
		}
		w.walkExpr(sum, st.X, held)
		w.walkStmts(sum, st.Body.List, held.Clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(sum, st.Init, held)
		}
		if st.Tag != nil {
			w.walkExpr(sum, st.Tag, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.walkExpr(sum, e, held)
				}
				w.walkStmts(sum, cc.Body, held.Clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(sum, st.Init, held)
		}
		w.walkStmt(sum, st.Assign, held)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(sum, cc.Body, held.Clone())
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(st) {
			sum.Blocks = append(sum.Blocks, BlockEvent{Pos: st.Pos(), What: "select", Held: held.Clone()})
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.walkCommOp(sum, cc.Comm, held)
				}
				w.walkStmts(sum, cc.Body, held.Clone())
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(sum, st.List, held.Clone())
	case *ast.LabeledStmt:
		w.walkStmt(sum, st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(sum, v, held)
					}
				}
			}
		}
	}
}

// recordAlias notes `mu := &<lockable>` so a later mu.Lock() resolves
// to the aliased key (the striped-lock idiom).
func (w *walker) recordAlias(st *ast.AssignStmt) {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return
	}
	id, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := w.tinfo.Defs[id]
	if obj == nil {
		obj = w.tinfo.Uses[id]
	}
	if obj == nil {
		return
	}
	if tv, ok := w.tinfo.Types[st.Rhs[0]]; !ok || !isMutexType(tv.Type) {
		return
	}
	if key := w.keyOf(st.Rhs[0]); key != "" {
		w.alias[obj] = key
	}
}

// walkCommOp walks a select case's comm operation without recording
// it as a standalone blocking event — the enclosing select already
// is one.
func (w *walker) walkCommOp(sum *FuncSummary, st ast.Stmt, held Set) {
	switch st := st.(type) {
	case *ast.SendStmt:
		w.walkExpr(sum, st.Chan, held)
		w.walkExpr(sum, st.Value, held)
	case *ast.ExprStmt:
		if u, ok := st.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.walkExpr(sum, u.X, held)
			return
		}
		w.walkExpr(sum, st.X, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.walkExpr(sum, u.X, held)
				continue
			}
			w.walkExpr(sum, e, held)
		}
		for _, e := range st.Lhs {
			w.walkLHS(sum, e, held)
		}
	}
}

func (w *walker) walkExpr(sum *FuncSummary, e ast.Expr, held Set) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.SelectorExpr:
		w.recordAccess(sum, e, held, false)
		w.walkExpr(sum, e.X, held)
	case *ast.CallExpr:
		w.recordCall(sum, e, held)
		switch {
		case isWaitGroupCall(w.tinfo, e, "Wait"):
			sum.Blocks = append(sum.Blocks, BlockEvent{Pos: e.Pos(), What: "WaitGroup.Wait", Held: held.Clone()})
		case isWaitGroupCall(w.tinfo, e, "Add"):
			sum.WaitGroupAdd = true
		case isWaitGroupCall(w.tinfo, e, "Done"):
			sum.WaitGroupDone = true
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			w.walkExpr(sum, sel.X, held)
		} else {
			w.walkExpr(sum, e.Fun, held)
		}
		for _, a := range e.Args {
			w.walkExpr(sum, a, held)
		}
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			sum.Blocks = append(sum.Blocks, BlockEvent{Pos: e.Pos(), What: "channel receive", Held: held.Clone()})
		}
		w.walkExpr(sum, e.X, held)
	case *ast.BinaryExpr:
		w.walkExpr(sum, e.X, held)
		w.walkExpr(sum, e.Y, held)
	case *ast.ParenExpr:
		w.walkExpr(sum, e.X, held)
	case *ast.StarExpr:
		w.walkExpr(sum, e.X, held)
	case *ast.IndexExpr:
		w.walkExpr(sum, e.X, held)
		w.walkExpr(sum, e.Index, held)
	case *ast.SliceExpr:
		w.walkExpr(sum, e.X, held)
		w.walkExpr(sum, e.Low, held)
		w.walkExpr(sum, e.High, held)
		w.walkExpr(sum, e.Max, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(sum, kv.Value, held)
				continue
			}
			w.walkExpr(sum, el, held)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(sum, e.Value, held)
	case *ast.TypeAssertExpr:
		w.walkExpr(sum, e.X, held)
	case *ast.FuncLit:
		// A literal invoked later runs in its own lock context;
		// summarize it separately with an empty entry set.
		lit := &FuncSummary{Node: e, Name: litName(w.fset, e)}
		w.walkFunc(lit, e.Body)
		w.lits = append(w.lits, lit)
	}
}

func (w *walker) walkLHS(sum *FuncSummary, e ast.Expr, held Set) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		w.recordAccess(sum, e, held, true)
		w.walkExpr(sum, e.X, held)
	case *ast.IndexExpr:
		// sh.lists[b] = ... writes the field through an index; the
		// write subsumes the read the plain walk would record.
		if sel, ok := e.X.(*ast.SelectorExpr); ok {
			w.recordAccess(sum, sel, held, true)
			w.walkExpr(sum, sel.X, held)
		} else {
			w.walkExpr(sum, e.X, held)
		}
		w.walkExpr(sum, e.Index, held)
	case *ast.StarExpr:
		w.walkExpr(sum, e.X, held)
	default:
		w.walkExpr(sum, e, held)
	}
}

func (w *walker) recordAccess(sum *FuncSummary, sel *ast.SelectorExpr, held Set, write bool) {
	s, ok := w.tinfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	sum.Accesses = append(sum.Accesses, Access{Field: v, Pos: sel.Sel.Pos(), Held: held.Clone(), Write: write})
}

func (w *walker) recordCall(sum *FuncSummary, call *ast.CallExpr, held Set) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = w.tinfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = w.tinfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != w.pkg {
		return
	}
	sum.Calls = append(sum.Calls, Call{Callee: fn, Pos: call.Pos(), Held: held.Clone()})
}

func (w *walker) recordGo(sum *FuncSummary, st *ast.GoStmt, held Set) {
	spawn := GoSpawn{Stmt: st, Held: held.Clone()}
	switch fun := st.Call.Fun.(type) {
	case *ast.FuncLit:
		lit := &FuncSummary{Node: fun, Name: litName(w.fset, fun)}
		w.walkFunc(lit, fun.Body)
		w.lits = append(w.lits, lit)
		spawn.Body = lit
	case *ast.Ident:
		if fn, ok := w.tinfo.Uses[fun].(*types.Func); ok && fn.Pkg() == w.pkg {
			sum.Calls = append(sum.Calls, Call{Callee: fn, Pos: st.Pos(), Held: held.Clone(), Go: true})
			spawn.Callee = fn
		}
	case *ast.SelectorExpr:
		if fn, ok := w.tinfo.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() == w.pkg {
			sum.Calls = append(sum.Calls, Call{Callee: fn, Pos: st.Pos(), Held: held.Clone(), Go: true})
			spawn.Callee = fn
		}
	}
	sum.Gos = append(sum.Gos, spawn)
	for _, a := range st.Call.Args {
		w.walkExpr(sum, a, held)
	}
}

// lockCall classifies a call as a mutex operation, returning the lock
// key and the method name, or "", "".
func (w *walker) lockCall(call *ast.CallExpr) (key, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if tv, ok := w.tinfo.Types[sel.X]; ok && isMutexType(tv.Type) {
		if k := w.keyOf(sel.X); k != "" {
			return k, sel.Sel.Name
		}
		return "", ""
	}
	// Promoted method of an embedded mutex: `e.Lock()` where the
	// struct embeds sync.Mutex. Key by owner type plus the embedded
	// field path ("embedded.Mutex"), matching FieldKey.
	if s, ok := w.tinfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		owner := namedOwner(s.Recv())
		path, mutex := embeddedMutexPath(s)
		if owner != "" && mutex {
			return owner + "." + path, sel.Sel.Name
		}
	}
	return "", ""
}

// embeddedMutexPath resolves a method selection's embedded field
// chain and reports whether it lands on a mutex ("Mutex", true for
// a struct embedding sync.Mutex).
func embeddedMutexPath(s *types.Selection) (string, bool) {
	t := s.Recv()
	idx := s.Index()
	if len(idx) < 2 { // no embedded hop: a method declared on Recv itself
		return "", false
	}
	var names []string
	for _, i := range idx[:len(idx)-1] {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", false
		}
		f := st.Field(i)
		names = append(names, f.Name())
		t = f.Type()
	}
	return strings.Join(names, "."), isMutexType(t)
}

// markUnlock back-annotates every LockEvent for key with the kind of
// release observed in the same function.
func (w *walker) markUnlock(sum *FuncSummary, key string, deferred bool) {
	for _, ev := range sum.Locks {
		if ev.Key == key {
			if deferred {
				ev.DeferredUnlock = true
			} else {
				ev.PlainUnlock = true
			}
		}
	}
}

// keyOf derives the type-based lock key of a mutex-valued expression.
func (w *walker) keyOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.keyOf(e.X)
	case *ast.StarExpr:
		return w.keyOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.keyOf(e.X)
		}
	case *ast.IndexExpr:
		return w.keyOf(e.X) // collapse stripe arrays to one node
	case *ast.SelectorExpr:
		if s, ok := w.tinfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			if owner := namedOwner(s.Recv()); owner != "" {
				return owner + "." + e.Sel.Name
			}
		}
		if base := w.keyOf(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.Ident:
		obj := w.tinfo.Uses[e]
		if obj == nil {
			obj = w.tinfo.Defs[e]
		}
		if obj == nil {
			return ""
		}
		if k, ok := w.alias[obj]; ok {
			return k
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return "pkg." + v.Name() // package-level mutex
			}
			pos := w.fset.Position(v.Pos())
			return fmt.Sprintf("local.%s@%s:%d", v.Name(), shortFile(pos.Filename), pos.Line)
		}
	}
	return ""
}

// FieldKey returns the lock key guardedby must require for a
// guard-mutex field named mutexField on struct type typeName — the
// same key the walk derives for `x.<mutexField>.Lock()` on a value of
// that type.
func FieldKey(typeName, mutexField string) string {
	return typeName + "." + mutexField
}

// namedOwner names the (possibly pointed-to) named struct type, or "".
func namedOwner(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex,
// through pointers.
func isMutexType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// IsMutexFieldType reports whether a struct field type can guard:
// sync.Mutex/sync.RWMutex, a pointer to one, or a slice/array of
// them (a stripe set, collapsed to one lock node).
func IsMutexFieldType(t types.Type) bool {
	switch tt := t.Underlying().(type) {
	case *types.Slice:
		return isMutexType(tt.Elem())
	case *types.Array:
		return isMutexType(tt.Elem())
	}
	return isMutexType(t)
}

func isWaitGroupCall(tinfo *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := tinfo.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func declName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		return fmt.Sprintf("(%s).%s", typeText(fn.Recv.List[0].Type), fn.Name.Name)
	}
	return fn.Name.Name
}

func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "*" + typeText(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return typeText(e.X)
	}
	return "?"
}

func litName(fset *token.FileSet, fn *ast.FuncLit) string {
	pos := fset.Position(fn.Pos())
	return fmt.Sprintf("func@%s:%d", shortFile(pos.Filename), pos.Line)
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
