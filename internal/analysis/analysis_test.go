package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parse(t *testing.T, fset *token.FileSet, name, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return f
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text      string
		found, ok bool
	}{
		{"// plain comment", false, false},
		{"//tintvet:ignore detrand: seeded for replay", true, true},
		{"// tintvet:ignore maporder: order handled by caller", true, true},
		{"//tintvet:ignore", true, false},
		{"//tintvet:ignore detrand", true, false},
		{"//tintvet:ignore detrand:", true, false},
		{"//tintvet:ignore : missing analyzer", true, false},
		{"//tintvet:ignore two words: reason", true, false},
	}
	for _, c := range cases {
		_, _, found, ok := parseIgnore(c.text)
		if found != c.found || ok != c.ok {
			t.Errorf("parseIgnore(%q) = found %v ok %v, want found %v ok %v",
				c.text, found, ok, c.found, c.ok)
		}
	}
}

func TestCheckIgnoresFlagsBareDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f := parse(t, fset, "a.go", `package p

var a = 1 //tintvet:ignore
var b = 2 //tintvet:ignore detrand: fine here
var c = 3 //tintvet:ignore detrand
`)
	ds := CheckIgnores(fset, []*ast.File{f})
	if len(ds) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(ds), ds)
	}
	for _, d := range ds {
		if !strings.Contains(d.Message, "bare tintvet:ignore") {
			t.Errorf("unexpected message %q", d.Message)
		}
	}
	if ds[0].Pos.Line != 3 || ds[1].Pos.Line != 5 {
		t.Errorf("diagnostics at lines %d, %d; want 3, 5", ds[0].Pos.Line, ds[1].Pos.Line)
	}
}

func TestMalformedIgnoreDoesNotSuppress(t *testing.T) {
	fset := token.NewFileSet()
	f := parse(t, fset, "a.go", `package p

var a = 1 //tintvet:ignore
`)
	ds := []Diagnostic{{Analyzer: "x", Pos: token.Position{Filename: "a.go", Line: 3}}}
	if got := FilterIgnored(fset, []*ast.File{f}, ds); len(got) != 1 {
		t.Fatalf("bare ignore suppressed a diagnostic: kept %d of 1", len(got))
	}
}

// TestFilterIgnoredDuplicateFilenames registers two files under the
// same name in one FileSet — the shape produced by loading packages
// from different roots with relative paths. The suppression sets must
// merge; the old overwrite behavior dropped whichever file's
// directives were registered first.
func TestFilterIgnoredDuplicateFilenames(t *testing.T) {
	fset := token.NewFileSet()
	withIgnore := parse(t, fset, "dup.go", `package p

var a = 1 //tintvet:ignore x: covered by integration test
`)
	without := parse(t, fset, "dup.go", `package q

var b = 2
`)
	ds := []Diagnostic{
		{Analyzer: "x", Pos: token.Position{Filename: "dup.go", Line: 3}, Message: "finding"},
	}
	// Order matters for the regression: the file without directives
	// is registered second and used to overwrite the first's lines.
	got := FilterIgnored(fset, []*ast.File{withIgnore, without}, append([]Diagnostic(nil), ds...))
	if len(got) != 0 {
		t.Fatalf("suppression dropped by duplicate filename: kept %v", got)
	}
}

// TestRunSuiteApplies drives RunSuite over a fake program and checks
// that the Applies filter decides which packages each analyzer sees.
func TestRunSuiteApplies(t *testing.T) {
	fset := token.NewFileSet()
	mk := func(path string) Package {
		return Package{
			Path:  path,
			Files: []*ast.File{parse(t, fset, path+"/f.go", "package p\n")},
		}
	}
	prog := &Program{
		Fset:     fset,
		Packages: []Package{mk("m/internal/serve"), mk("m/internal/kernel"), mk("m/cmd/tool")},
	}

	var ran []string
	record := func(name string, applies func(string) bool) *Analyzer {
		return &Analyzer{
			Name:    name,
			Applies: applies,
			Run: func(pass *Pass) error {
				ran = append(ran, name+"@"+pass.Pkg.Path())
				pass.Reportf(pass.Files[0].Pos(), "finding from %s", name)
				return nil
			},
		}
	}

	cases := []struct {
		name    string
		applies func(string) bool
		want    []string
	}{
		{"everywhere", nil, []string{"m/internal/serve", "m/internal/kernel", "m/cmd/tool"}},
		{"internal-only", func(p string) bool { return strings.Contains(p, "/internal/") },
			[]string{"m/internal/serve", "m/internal/kernel"}},
		{"serve-only", func(p string) bool { return strings.HasSuffix(p, "/serve") },
			[]string{"m/internal/serve"}},
		{"nowhere", func(string) bool { return false }, nil},
	}
	for _, c := range cases {
		ran = nil
		// Pkg is only read by the recorder above, so a named dummy
		// package per load path keeps the fake cheap.
		for i := range prog.Packages {
			prog.Packages[i].Types = types.NewPackage(prog.Packages[i].Path, "p")
		}
		diags, err := RunSuite(prog, []*Analyzer{record(c.name, c.applies)})
		if err != nil {
			t.Fatalf("%s: RunSuite: %v", c.name, err)
		}
		var want []string
		for _, p := range c.want {
			want = append(want, c.name+"@"+p)
		}
		if strings.Join(ran, ",") != strings.Join(want, ",") {
			t.Errorf("%s: ran %v, want %v", c.name, ran, want)
		}
		if len(diags) != len(c.want) {
			t.Errorf("%s: %d diagnostics, want %d", c.name, len(diags), len(c.want))
		}
	}
}
