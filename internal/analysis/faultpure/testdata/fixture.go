package fixture

import (
	"math/rand"
	"os"
	"time"
)

// Local stand-ins for the kernel/buddy hook installers; matching is
// by method name, so the fixture stays stdlib-only.

type hook func(order int) bool

type kernelish struct{}

func (k *kernelish) SetFaultHook(h hook)            {}
func (k *kernelish) SetZoneFaultHook(n int, h hook) {}
func (k *kernelish) SetFaultHooks(h FaultHooks)     {}

// FaultHooks mirrors kernel.FaultHooks.
type FaultHooks struct {
	Refill  func(node int) bool
	Migrate func(taskID int, vpage uint64) bool
}

// flagged: hooks reaching for nondeterministic sources.
func bad(k *kernelish, rng *rand.Rand) {
	k.SetFaultHook(func(order int) bool {
		return time.Now().UnixNano()%2 == 0 // want "fault hook reads wall-clock state via time.Now"
	})
	k.SetZoneFaultHook(0, func(order int) bool {
		return rng.Intn(2) == 0 // want "fault hook captures rand state \"rng\""
	})
	k.SetFaultHooks(FaultHooks{
		Refill: func(node int) bool {
			return os.Getenv("CHAOS") != "" // want "fault hook reads process environment via os.Getenv"
		},
		Migrate: func(taskID int, vpage uint64) bool {
			return rand.Intn(2) == 0 // want "fault hook reads shared rand state via rand.Intn"
		},
	})
}

// flagged: a FaultHooks literal built away from the install site.
func badIndirect() FaultHooks {
	return FaultHooks{
		Refill: func(node int) bool {
			return time.Since(time.Time{}) > 0 // want "fault hook reads wall-clock state via time.Since"
		},
	}
}

// allowed: pure functions of arguments and captured counters — the
// shape internal/fault generates.
func good(k *kernelish, seed uint64) {
	var seq uint64
	k.SetFaultHook(func(order int) bool {
		seq++
		h := (seed ^ seq ^ uint64(order)) * 0x9e3779b97f4a7c15
		return h%1000 < 60
	})
	k.SetFaultHooks(FaultHooks{
		Refill:  func(node int) bool { return node == 0 },
		Migrate: func(taskID int, vpage uint64) bool { return vpage&1 == 1 },
	})
}

// allowed: an acknowledged exemption via the escape hatch.
func exempt(k *kernelish) {
	k.SetFaultHook(func(order int) bool {
		return time.Now().Unix()%2 == 0 //tintvet:ignore faultpure: fixture exercises the escape hatch
	})
}
