package faultpure

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestFaultpure(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}

func TestApplies(t *testing.T) {
	if !Analyzer.Applies("github.com/tintmalloc/tintmalloc/internal/fault") {
		t.Error("faultpure must apply to internal simulator packages")
	}
	if Analyzer.Applies("github.com/tintmalloc/tintmalloc/cmd/tintbench") {
		t.Error("faultpure must not apply outside internal/")
	}
}
