// Package faultpure enforces the fault-hook determinism contract
// (DESIGN.md Sec. 10): a hook installed through SetFaultHook,
// SetZoneFaultHook or SetFaultHooks must be a pure function of its
// arguments and the hook's own captured counters. The chaos harness
// asserts byte-identical output for a fixed seed, which a hook
// breaks the moment it consults wall-clock time, ambient randomness,
// the process environment, or a shared *rand.Rand whose consumption
// order depends on scheduling. detrand already bans the worst
// offenders repo-wide; this analyzer additionally flags any use of
// the time/os packages and any captured rand.Rand inside hook
// bodies, where even a seeded generator is wrong.
package faultpure

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// Analyzer flags nondeterministic sources inside fault-hook function
// literals.
var Analyzer = &analysis.Analyzer{
	Name: "faultpure",
	Doc: "forbid wall-clock, environment and rand state in fault hooks; " +
		"hooks must be pure functions of their arguments and captured counters",
	Applies: func(pkgPath string) bool {
		return strings.Contains(pkgPath, "/internal/")
	},
	Run: run,
}

// hookInstallers are the methods whose function-literal arguments
// become fault hooks. Matching is by name: the kernel and buddy
// layers both expose them, and fixture tests substitute local types.
var hookInstallers = map[string]bool{
	"SetFaultHook":     true,
	"SetZoneFaultHook": true,
	"SetFaultHooks":    true,
}

// forbiddenPkgs are packages whose mere use inside a hook makes the
// decision stream depend on something other than the seed.
var forbiddenPkgs = map[string]string{
	"time":         "wall-clock state",
	"os":           "process environment",
	"math/rand":    "shared rand state",
	"math/rand/v2": "shared rand state",
}

func run(pass *analysis.Pass) error {
	// A FaultHooks literal passed straight to SetFaultHooks matches
	// both branches below; checked dedupes so each hook body is
	// reported once.
	checked := map[*ast.FuncLit]bool{}
	check := func(lit *ast.FuncLit) {
		if !checked[lit] {
			checked[lit] = true
			checkHook(pass, lit)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !hookInstallers[sel.Sel.Name] {
					return true
				}
				for _, arg := range n.Args {
					for _, lit := range hookLits(arg) {
						check(lit)
					}
				}
			case *ast.CompositeLit:
				// kernel.FaultHooks{Refill: func...} built away from
				// the SetFaultHooks call site.
				if tv, ok := pass.TypesInfo.Types[n]; ok && namedAs(tv.Type, "FaultHooks") {
					for _, lit := range hookLits(n) {
						check(lit)
					}
				}
			}
			return true
		})
	}
	return nil
}

// hookLits collects the function literals inside an installer
// argument: a bare FuncLit, or FuncLit fields of a composite literal
// (kernel.FaultHooks{...}).
func hookLits(e ast.Expr) []*ast.FuncLit {
	switch e := e.(type) {
	case *ast.FuncLit:
		return []*ast.FuncLit{e}
	case *ast.CompositeLit:
		var out []*ast.FuncLit
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = append(out, hookLits(el)...)
		}
		return out
	case *ast.UnaryExpr:
		return hookLits(e.X)
	}
	return nil
}

func namedAs(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// checkHook walks one hook body and reports every nondeterministic
// source it touches.
func checkHook(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		// Only package-level functions: methods ride on a flagged
		// receiver (the capture check below) or a flagged constructor
		// call, and flagging them too would double-report every line.
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil &&
			fn.Type().(*types.Signature).Recv() == nil {
			if why, bad := forbiddenPkgs[fn.Pkg().Path()]; bad {
				pass.Reportf(id.Pos(),
					"fault hook reads %s via %s.%s; hooks must be deterministic functions of their arguments and captured counters",
					why, fn.Pkg().Name(), id.Name)
				return true
			}
		}
		// A captured *rand.Rand is order-dependent shared state even
		// when explicitly seeded: whichever consumer draws first
		// changes every later decision.
		if v, ok := obj.(*types.Var); ok {
			if tn := v.Type().String(); strings.HasSuffix(tn, "math/rand.Rand") || strings.HasSuffix(tn, "math/rand/v2.Rand") {
				pass.Reportf(id.Pos(),
					"fault hook captures rand state %q; derive decisions from hashed counters (internal/fault) instead",
					id.Name)
			}
		}
		return true
	})
}
