// Package brokenpkg does not typecheck; load_test.go uses it to pin
// the loader's fail-hard contract (error, never a partial Pass).
package brokenpkg

var slot int = "not an int"
