// Package okpkg is a minimal well-typed package for load_test.go.
package okpkg

import "sort"

// Sorted returns a sorted copy of xs.
func Sorted(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
