package fixture

import (
	"sync"
	"time"
)

// Cycles stands in for internal/clock.Dur in this fixture.
type Cycles uint64

// flagged: wall-clock timing and sync coordination in core code.
func bad() Cycles {
	start := time.Now() // want "time.Now in cycle-accurate"
	time.Sleep(0)       // want "time.Sleep in cycle-accurate"
	var mu sync.Mutex   // want "sync.Mutex in the single-threaded event loop"
	_ = mu
	return Cycles(time.Since(start)) // want "time.Since in cycle-accurate"
}

// allowed: an acknowledged exemption via the escape hatch.
func exempt() {
	var wg sync.WaitGroup //tintvet:ignore cycleclock: fixture exercises the escape hatch
	_ = wg
}

// allowed: simulated-cycle arithmetic needs nothing from the host.
func good(now, cost Cycles) Cycles {
	return now + cost
}
