package cycleclock

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/analysis/atest"
)

func TestCycleclock(t *testing.T) {
	atest.Run(t, Analyzer, "testdata")
}

func TestApplies(t *testing.T) {
	for _, p := range []string{
		"github.com/tintmalloc/tintmalloc/internal/engine",
		"github.com/tintmalloc/tintmalloc/internal/dram",
		"github.com/tintmalloc/tintmalloc/internal/cache",
	} {
		if !Analyzer.Applies(p) {
			t.Errorf("cycleclock must apply to %s", p)
		}
	}
	for _, p := range []string{
		"github.com/tintmalloc/tintmalloc/internal/bench", // uses sync.Mutex legitimately
		"github.com/tintmalloc/tintmalloc/internal/phys",  // sync.Once table build
	} {
		if Analyzer.Applies(p) {
			t.Errorf("cycleclock must not apply to %s", p)
		}
	}
}
