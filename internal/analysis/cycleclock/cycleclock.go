// Package cycleclock forbids wall-clock and sync-based timing inside
// the cycle-accurate simulator core. The engine, DRAM and cache
// models measure everything in simulated core cycles (internal/clock)
// under a single-threaded discrete-event loop; importing `time` or
// coordinating through `sync` primitives there either leaks host
// wall-clock state into simulated results or implies hidden
// concurrency that the event loop's determinism contract excludes.
package cycleclock

import (
	"go/ast"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/analysis"
)

// scoped lists the packages that must express all timing in
// internal/clock cycles.
var scoped = []string{
	"/internal/engine",
	"/internal/dram",
	"/internal/cache",
	"/internal/mem",
	"/internal/clock",
}

// Analyzer flags any use of the time or sync packages in the
// simulator-core packages.
var Analyzer = &analysis.Analyzer{
	Name: "cycleclock",
	Doc: "forbid time and sync usage in the cycle-accurate core " +
		"(engine/dram/cache/mem): timing there is internal/clock cycles only",
	Applies: func(pkgPath string) bool {
		for _, s := range scoped {
			if strings.HasSuffix(pkgPath, s) {
				return true
			}
		}
		return false
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				pass.Reportf(id.Pos(),
					"time.%s in cycle-accurate simulator code; model durations as internal/clock cycles", id.Name)
			case "sync", "sync/atomic":
				pass.Reportf(id.Pos(),
					"%s.%s in the single-threaded event loop implies hidden concurrency or wall-clock coordination; the engine serializes all simulator state",
					obj.Pkg().Name(), id.Name)
			}
			return true
		})
	}
	return nil
}
