package engine

// Loop scheduling helpers, the analogues of OpenMP's
// schedule(static) and schedule(dynamic). The paper's benchmarks use
// `#pragma omp for`, whose default static schedule is what makes
// memory-access divergence turn into barrier idle time; dynamic
// scheduling is the classic alternative remedy, so having both makes
// the trade-off measurable: coloring attacks the *cause* (divergent
// access latency), dynamic scheduling the *symptom* (imbalance) — at
// the cost of losing first-touch placement affinity.

// IterBody emits the ops of loop iteration i. It returns false when
// the engine stopped consuming (the body must stop too).
type IterBody func(i int, yield func(Op) bool) bool

// StaticFor partitions iterations [0, n) into nThreads contiguous
// blocks, one per thread — OpenMP schedule(static). Iteration-to-
// thread assignment is fixed before the phase runs, so first touch
// matches the partition.
func StaticFor(n, nThreads int, body IterBody) []Work {
	bodies := make([]Work, nThreads)
	for t := 0; t < nThreads; t++ {
		lo := t * n / nThreads
		hi := (t + 1) * n / nThreads
		bodies[t] = func(yield func(Op) bool) {
			for i := lo; i < hi; i++ {
				if !body(i, yield) {
					return
				}
			}
		}
	}
	return bodies
}

// DynamicFor hands out chunks of `chunk` iterations from a shared
// queue: whenever a thread finishes its chunk it takes the next one —
// OpenMP schedule(dynamic, chunk). The shared cursor is mutated as
// the engine pulls ops, which happens in virtual-time order, so the
// earliest-available simulated thread really does win the next chunk,
// exactly like the runtime work queue it models.
func DynamicFor(n, chunk, nThreads int, body IterBody) []Work {
	if chunk < 1 {
		chunk = 1
	}
	next := 0 // shared cursor; engine serializes all pulls
	bodies := make([]Work, nThreads)
	for t := 0; t < nThreads; t++ {
		bodies[t] = func(yield func(Op) bool) {
			for {
				lo := next
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				next = hi
				for i := lo; i < hi; i++ {
					if !body(i, yield) {
						return
					}
				}
			}
		}
	}
	return bodies
}
