package engine

import (
	"errors"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// touchWork yields one read per page of [va, va+pages*PageSize).
func touchWork(va uint64, pages int) Work {
	return func(yield func(Op) bool) {
		for i := 0; i < pages; i++ {
			if !yield(Op{Compute: 1, VA: va + uint64(i)*phys.PageSize}) {
				return
			}
		}
	}
}

// The audit hook must run at every phase boundary and see clean
// kernel bookkeeping throughout a colored two-thread run.
func TestAuditHookRunsAtEveryBarrier(t *testing.T) {
	cores := []topology.CoreID{0, 4}
	r := newRig(t, cores)

	// Color the tasks like a real experiment would (MEM+LLC).
	asn, err := policy.Plan(policy.MEMLLC, r.k.Mapping(), topology.Opteron6128(), cores)
	if err != nil {
		t.Fatal(err)
	}
	var vas []uint64
	const pages = 16
	for i, th := range r.e.Threads() {
		if err := policy.Apply(th.Task, asn[i]); err != nil {
			t.Fatal(err)
		}
		va, err := th.Task.Mmap(0, pages*phys.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}

	calls := 0
	r.e.SetAuditHook(func() error {
		calls++
		return invariant.Audit(r.k).Err()
	})

	phases := []Phase{
		Parallel("warm", []Work{touchWork(vas[0], pages), touchWork(vas[1], pages)}),
		Serial("mid", 2, computeWork(5, 10)),
		Parallel("reuse", []Work{touchWork(vas[0], pages), touchWork(vas[1], pages)}),
	}
	if _, err := r.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	if calls != len(phases) {
		t.Errorf("audit hook ran %d times, want %d (once per phase)", calls, len(phases))
	}

	// A hook failure must abort the run with the phase named.
	boom := errors.New("bookkeeping drift")
	r.e.SetAuditHook(func() error { return boom })
	_, err = r.e.Run([]Phase{Serial("post", 2, computeWork(1, 1))})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), `audit after phase "post"`) {
		t.Errorf("error does not name the phase: %v", err)
	}
}

// The hook fires even when the engine faults colored pages on demand
// mid-phase — the state it audits includes freshly shattered color
// lists.
func TestAuditHookSeesColoredFaultState(t *testing.T) {
	r := newRig(t, []topology.CoreID{0})
	task := r.e.Threads()[0].Task
	bc := r.k.Mapping().BankColorsOfNode(0)[0]
	if _, err := task.Mmap(uint64(bc)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	va, err := task.Mmap(0, 8*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	var last *invariant.Report
	r.e.SetAuditHook(func() error {
		last = invariant.Audit(r.k)
		return last.Err()
	})
	if _, err := r.e.Run([]Phase{Parallel("touch", []Work{touchWork(va, 8)})}); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("audit hook never ran")
	}
	if last.Mapped != 8 {
		t.Errorf("audit saw Mapped = %d, want 8", last.Mapped)
	}
	if last.Parked == 0 {
		t.Error("colored faulting should have parked shattered frames")
	}
	if last.Unaccounted != 0 {
		t.Errorf("audit saw %d unaccounted frames", last.Unaccounted)
	}
}
