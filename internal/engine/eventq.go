package engine

import (
	"math/bits"

	"github.com/tintmalloc/tintmalloc/internal/clock"
)

// eventQueue is a binary min-heap over the live threads of a phase,
// ordered by (virtual time, thread id). It replaces the linear
// earliest-thread scan of the conservative discrete-event loop: with
// n live threads a scheduling step costs O(log n) instead of O(n).
//
// The ordering key is a strict total order — thread ids are unique —
// so the heap's minimum is exactly the thread the linear scan would
// have picked, and the two schedulers are step-for-step identical.
// The determinism regression test (internal/bench
// TestRunsAreByteIdentical) and the engine's scheduler-equivalence
// test pin this down.
//
// Keys are packed: time<<idBits | id in one uint64 per slot, so a
// sift comparison is a single integer compare on one contiguous
// array. idBits is sized to the phase's largest thread id, which
// leaves 64-idBits bits of virtual time headroom — with even 1024
// threads that is 2^54 cycles, far past any simulation. If a time
// ever would overflow its field (or an initial key cannot be packed),
// the queue falls back permanently to unpacked (time, id) pairs with
// the identical lexicographic order; the packed compare equals the
// unpacked one whenever both fields fit, so the fallback never
// changes the schedule.
type eventQueue struct {
	rs []*runnerState

	packed bool
	idBits uint
	limit  clock.Time // first unrepresentable time, packed mode only
	keys   []uint64   // keys[i] = time<<idBits | id

	// Unpacked fallback, mirroring rs[i].time / rs[i].id.
	times []clock.Time
	ids   []int32
}

// newEventQueue heapifies the given runners in place.
func newEventQueue(rs []*runnerState) *eventQueue {
	q := &eventQueue{rs: rs}
	maxID := 0
	for _, r := range rs {
		if r.id > maxID {
			maxID = r.id
		}
	}
	q.idBits = uint(bits.Len(uint(maxID)))
	if q.idBits == 0 {
		q.idBits = 1
	}
	q.limit = clock.Time(1) << (64 - q.idBits)
	q.packed = true
	for _, r := range rs {
		if r.time >= q.limit {
			q.packed = false
			break
		}
	}
	if q.packed {
		q.keys = make([]uint64, len(rs))
		for i, r := range rs {
			q.keys[i] = q.pack(r)
		}
	} else {
		q.unpackFrom(rs)
	}
	for i := len(rs)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	return q
}

func (q *eventQueue) pack(r *runnerState) uint64 {
	return uint64(r.time)<<q.idBits | uint64(r.id)
}

// unpackFrom switches to (and fills) the unpacked representation.
func (q *eventQueue) unpackFrom(rs []*runnerState) {
	q.packed = false
	q.keys = nil
	q.times = make([]clock.Time, len(rs))
	q.ids = make([]int32, len(rs))
	for i, r := range rs {
		q.times[i] = r.time
		q.ids[i] = int32(r.id)
	}
}

// Len returns the number of live threads.
func (q *eventQueue) Len() int { return len(q.rs) }

// Min returns the earliest thread (ties broken by lowest id) without
// removing it.
func (q *eventQueue) Min() *runnerState { return q.rs[0] }

// FixMin restores heap order after the minimum's time advanced (the
// only mutation the event loop performs on a live thread).
func (q *eventQueue) FixMin() {
	if q.packed {
		if q.rs[0].time >= q.limit {
			// Virtual time outgrew the packed field: degrade once to
			// the unpacked order for the rest of the phase.
			q.unpackFrom(q.rs)
			// rs is already a heap except possibly slot 0; fall through.
		} else {
			q.keys[0] = q.pack(q.rs[0])
			q.siftDown(0)
			return
		}
	}
	q.times[0] = q.rs[0].time
	q.siftDown(0)
}

// PopMin removes and returns the earliest thread.
func (q *eventQueue) PopMin() *runnerState {
	r := q.rs[0]
	last := len(q.rs) - 1
	q.rs[0] = q.rs[last]
	q.rs[last] = nil
	q.rs = q.rs[:last]
	if q.packed {
		q.keys[0] = q.keys[last]
		q.keys = q.keys[:last]
	} else {
		q.times[0] = q.times[last]
		q.ids[0] = q.ids[last]
		q.times = q.times[:last]
		q.ids = q.ids[:last]
	}
	if last > 0 {
		q.siftDown(0)
	}
	return r
}

// siftDown restores heap order below slot i. It shifts the smaller
// child up into the hole and places the sifting element once at the
// end, rather than swapping pairwise at every level.
func (q *eventQueue) siftDown(i int) {
	n := len(q.rs)
	r := q.rs[i]
	if q.packed {
		k := q.keys[i]
		for {
			l := 2*i + 1
			if l >= n {
				break
			}
			m := l
			if c := l + 1; c < n && q.keys[c] < q.keys[l] {
				m = c
			}
			if q.keys[m] >= k {
				break
			}
			q.rs[i], q.keys[i] = q.rs[m], q.keys[m]
			i = m
		}
		q.rs[i], q.keys[i] = r, k
		return
	}
	t, id := q.times[i], q.ids[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if c := l + 1; c < n &&
			(q.times[c] < q.times[l] || (q.times[c] == q.times[l] && q.ids[c] < q.ids[l])) {
			m = c
		}
		if !(q.times[m] < t || (q.times[m] == t && q.ids[m] < id)) {
			break
		}
		q.rs[i], q.times[i], q.ids[i] = q.rs[m], q.times[m], q.ids[m]
		i = m
	}
	q.rs[i], q.times[i], q.ids[i] = r, t, id
}
