package engine

// eventQueue is a binary min-heap over the live threads of a phase,
// ordered by (virtual time, thread id). It replaces the linear
// earliest-thread scan of the conservative discrete-event loop: with
// n live threads a scheduling step costs O(log n) instead of O(n),
// which is what makes many-thread phases (and paper-scale sweeps)
// wall-clock viable.
//
// The ordering key is a strict total order — thread ids are unique —
// so the heap's minimum is exactly the thread the linear scan would
// have picked, and the two schedulers are step-for-step identical.
// The determinism regression test (internal/bench
// TestRunsAreByteIdentical) and the engine's scheduler-equivalence
// test pin this down.
type eventQueue struct {
	rs []*runnerState
}

// newEventQueue heapifies the given runners in place.
func newEventQueue(rs []*runnerState) *eventQueue {
	q := &eventQueue{rs: rs}
	for i := len(rs)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	return q
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.rs[i], q.rs[j]
	return a.time < b.time || (a.time == b.time && a.id < b.id)
}

// Len returns the number of live threads.
func (q *eventQueue) Len() int { return len(q.rs) }

// Min returns the earliest thread (ties broken by lowest id) without
// removing it.
func (q *eventQueue) Min() *runnerState { return q.rs[0] }

// FixMin restores heap order after the minimum's time advanced (the
// only mutation the event loop performs on a live thread).
func (q *eventQueue) FixMin() { q.siftDown(0) }

// PopMin removes and returns the earliest thread.
func (q *eventQueue) PopMin() *runnerState {
	r := q.rs[0]
	last := len(q.rs) - 1
	q.rs[0] = q.rs[last]
	q.rs[last] = nil
	q.rs = q.rs[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return r
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.rs)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q.rs[i], q.rs[min] = q.rs[min], q.rs[i]
		i = min
	}
}
