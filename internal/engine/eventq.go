package engine

import "github.com/tintmalloc/tintmalloc/internal/clock"

// eventQueue is a binary min-heap over the live threads of a phase,
// ordered by (virtual time, thread id). It replaces the linear
// earliest-thread scan of the conservative discrete-event loop: with
// n live threads a scheduling step costs O(log n) instead of O(n),
// which is what makes many-thread phases (and paper-scale sweeps)
// wall-clock viable.
//
// The ordering key is a strict total order — thread ids are unique —
// so the heap's minimum is exactly the thread the linear scan would
// have picked, and the two schedulers are step-for-step identical.
// The determinism regression test (internal/bench
// TestRunsAreByteIdentical) and the engine's scheduler-equivalence
// test pin this down.
//
// The (time, id) keys live in flat slices parallel to the runner
// slice: sift compares touch two contiguous arrays instead of
// dereferencing a runnerState pointer per comparison, a measurable
// share of the per-op scheduling cost.
type eventQueue struct {
	rs    []*runnerState
	times []clock.Time // times[i] mirrors rs[i].time
	ids   []int32      // ids[i] mirrors rs[i].id
}

// newEventQueue heapifies the given runners in place.
func newEventQueue(rs []*runnerState) *eventQueue {
	q := &eventQueue{
		rs:    rs,
		times: make([]clock.Time, len(rs)),
		ids:   make([]int32, len(rs)),
	}
	for i, r := range rs {
		q.times[i] = r.time
		q.ids[i] = int32(r.id)
	}
	for i := len(rs)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
	return q
}

func (q *eventQueue) less(i, j int) bool {
	return q.times[i] < q.times[j] || (q.times[i] == q.times[j] && q.ids[i] < q.ids[j])
}

func (q *eventQueue) swap(i, j int) {
	q.rs[i], q.rs[j] = q.rs[j], q.rs[i]
	q.times[i], q.times[j] = q.times[j], q.times[i]
	q.ids[i], q.ids[j] = q.ids[j], q.ids[i]
}

// Len returns the number of live threads.
func (q *eventQueue) Len() int { return len(q.rs) }

// Min returns the earliest thread (ties broken by lowest id) without
// removing it.
func (q *eventQueue) Min() *runnerState { return q.rs[0] }

// FixMin restores heap order after the minimum's time advanced (the
// only mutation the event loop performs on a live thread).
func (q *eventQueue) FixMin() {
	q.times[0] = q.rs[0].time
	q.siftDown(0)
}

// PopMin removes and returns the earliest thread.
func (q *eventQueue) PopMin() *runnerState {
	r := q.rs[0]
	last := len(q.rs) - 1
	q.rs[0] = q.rs[last]
	q.times[0] = q.times[last]
	q.ids[0] = q.ids[last]
	q.rs[last] = nil
	q.rs = q.rs[:last]
	q.times = q.times[:last]
	q.ids = q.ids[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return r
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.rs)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}
