// Package engine executes simulated multi-threaded programs against
// the machine model: a conservative discrete-event simulator in which
// every thread owns a virtual clock, advances through its memory
// accesses in global time order, and synchronizes with the other
// threads at the implicit barrier ending each parallel phase —
// OpenMP-style fork-join execution.
//
// Idle time is measured exactly as in the paper's Algorithm 3: for
// each parallel phase the engine records every thread's completion
// instant end[tid]; the barrier releases at max(end), and thread tid
// accumulates idle[tid] += max(end) - end[tid].
//
// Thread bodies are ordinary Go functions written in range-over-func
// style (Work); the engine pulls one operation at a time from the
// thread whose clock is earliest, so kernel and memory-system state
// always mutate in virtual-time order and runs are deterministic.
package engine

import (
	"fmt"
	"iter"
	"sync"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Op is one step of a simulated thread: optional compute cycles
// followed by at most one memory access.
type Op struct {
	Compute clock.Dur // compute cycles before the access
	VA      uint64    // virtual address; 0 means compute-only
	Write   bool
}

// Work is a thread body: it yields Ops in program order. The yield
// function returns false when the engine aborts the run; the body
// must then return promptly.
type Work func(yield func(Op) bool)

// Thread couples a kernel task (whose pinned core issues the
// accesses and whose colors govern its page faults) with its heap
// arena.
type Thread struct {
	Task *kernel.Task
	Heap *heap.Heap
}

// Phase is one program section. Entry i of Work is thread i's body; a
// nil entry means the thread does not participate (it waits at the
// phase boundary without accumulating barrier idle unless the phase
// is parallel, i.e. has two or more participants).
//
// NoWait removes the implicit barrier at the END of the phase, like
// `#pragma omp for nowait` (which the paper's Algorithm 3 uses):
// each thread flows into the next phase at its own completion
// instant, and no idle time is charged for this phase. The final
// phase of a run always synchronizes so the program has a defined
// end time.
type Phase struct {
	Name   string
	Work   []Work
	NoWait bool
	// Batched lets the engine pull ops from each body in blocks of
	// opBatch per coroutine switch instead of one at a time. The
	// scheduler still interleaves threads op-by-op in (time, id)
	// order — only the body<->engine handoff is chunked — so results
	// are unchanged PROVIDED the body is pure after its first yield:
	// it must not read or write state shared with other bodies or
	// phases between yields (first-yield-time effects such as mmaps
	// are safe, since the first block is pulled exactly when the
	// unbatched engine would have run the body for the first time).
	// Bodies that mutate shared state mid-stream (e.g. a shared heap
	// bump pointer) must leave this off.
	Batched bool
}

// Batch marks the phase as safe for chunked op pulling (see Batched).
func (p Phase) Batch() Phase {
	p.Batched = true
	return p
}

// NoWaitParallel builds a barrier-less parallel phase.
func NoWaitParallel(name string, bodies []Work) Phase {
	return Phase{Name: name, Work: bodies, NoWait: true}
}

// Serial builds a phase where only the master (thread 0 of n) runs.
func Serial(name string, n int, master Work) Phase {
	w := make([]Work, n)
	w[0] = master
	return Phase{Name: name, Work: w}
}

// Parallel builds a phase from one body per thread.
func Parallel(name string, bodies []Work) Phase {
	return Phase{Name: name, Work: bodies}
}

// PhaseResult captures one phase's timing.
type PhaseResult struct {
	Name     string
	Start    clock.Time
	End      clock.Time // barrier release = max thread end
	Parallel bool       // two or more participants
	// ThreadEnd[i] is thread i's completion instant (its phase
	// start for non-participants).
	ThreadEnd []clock.Time
}

// Result aggregates a full program run.
type Result struct {
	Runtime clock.Dur // total program runtime (all phases)
	// ThreadRuntime[i] is the busy time thread i spent inside
	// parallel phases (paper Fig. 13).
	ThreadRuntime []clock.Dur
	// ThreadIdle[i] is the barrier wait accumulated by thread i
	// across parallel phases (paper Fig. 14, Algorithm 3).
	ThreadIdle []clock.Dur
	// TotalIdle is the sum over threads (paper Fig. 12).
	TotalIdle clock.Dur
	// FaultCycles[i] is the simulated time thread i spent in page
	// faults (included in its runtime).
	FaultCycles []clock.Dur
	// Ops is the number of thread operations executed across all
	// phases (compute steps and memory accesses), the work unit
	// behind the benchmark harness's ops/sec figures.
	Ops    uint64
	Phases []PhaseResult
}

// MaxThreadRuntime returns the slowest thread's parallel-phase time.
func (r *Result) MaxThreadRuntime() clock.Dur { return maxDur(r.ThreadRuntime) }

// MinThreadRuntime returns the fastest thread's parallel-phase time.
func (r *Result) MinThreadRuntime() clock.Dur {
	if len(r.ThreadRuntime) == 0 {
		return 0
	}
	min := r.ThreadRuntime[0]
	for _, d := range r.ThreadRuntime[1:] {
		if d < min {
			min = d
		}
	}
	return min
}

func maxDur(ds []clock.Dur) clock.Dur {
	var m clock.Dur
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// TraceEvent describes one executed memory access, delivered to the
// engine's tracer in virtual-time order.
type TraceEvent struct {
	Thread      int
	Phase       string
	VA          uint64
	PA          phys.Addr
	Write       bool
	Start       clock.Time // instant the access was issued
	Done        clock.Time // completion instant
	Level       mem.Level  // where the access was served
	FaultCycles clock.Dur  // page-fault overhead included in Done-Start
}

// Tracer receives every executed access. Must not retain the event
// past the call.
type Tracer func(TraceEvent)

// Engine runs programs on one memory system. Create a fresh Engine
// (and memory system) per experiment run.
type Engine struct {
	mem     *mem.System
	threads []Thread
	now     clock.Time
	tracer  Tracer
	// hookMu guards the audit hook: SetAuditHook may race with a Run
	// driven from another goroutine (tests wire auditors while a
	// server-backed run is in flight), and a torn function-value read
	// is undefined behaviour. The event loop itself stays lock-free —
	// the hook is read once per phase barrier, never per access.
	//tintvet:ignore cycleclock: hookMu guards the test-installed audit hook, not event-loop state
	hookMu   sync.Mutex
	audit    func() error //tintvet:guardedby hookMu
	barrier  BarrierHook  //tintvet:guardedby hookMu
	opBudget uint64
	// release[i] is thread i's personal start time for the next
	// phase (diverges from `now` after a NoWait phase).
	release []clock.Time
}

// SetTracer installs (or, with nil, removes) an access tracer.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// SetAuditHook installs a function the engine calls after every phase
// (and nil removes it). Tests hook the invariant auditor
// (internal/invariant) here so kernel bookkeeping is cross-checked at
// every barrier of every simulated program; a non-nil return aborts
// the run with that error. The hook is a plain function value — no
// build tags — and is never set outside tests.
func (e *Engine) SetAuditHook(h func() error) {
	e.hookMu.Lock() //tintvet:ignore cycleclock: hook installation, outside the event loop
	defer e.hookMu.Unlock()
	e.audit = h
}

// auditHook snapshots the installed hook for one barrier call.
func (e *Engine) auditHook() func() error {
	e.hookMu.Lock() //tintvet:ignore cycleclock: once-per-barrier hook read, not per-access state
	defer e.hookMu.Unlock()
	return e.audit
}

// BarrierHook is phase-barrier daemon work (see SetBarrierHook): it
// runs while every thread is parked at the barrier and returns the
// simulated cycles the work cost, which the engine charges to the
// whole program by extending the barrier — all threads resume that
// much later, exactly as if a kernel daemon had held them. A non-nil
// error aborts the run.
type BarrierHook func(phase string) (clock.Dur, error)

// SetBarrierHook installs a hook the engine calls at every phase
// BARRIER — after the phase's threads have synchronized, before the
// audit hook — and nil removes it. NoWait phases have no barrier and
// do not trigger it (except the final phase, which always
// synchronizes). The adaptive policy engine hooks Task.Repolicy and
// CompactStep here: the barrier is the one instant no thread holds a
// translation mid-flight, so a recolor's TLB flush and the compaction
// daemon's page moves are safe without extra synchronization.
func (e *Engine) SetBarrierHook(h BarrierHook) {
	e.hookMu.Lock() //tintvet:ignore cycleclock: hook installation, outside the event loop
	defer e.hookMu.Unlock()
	e.barrier = h
}

// barrierHook snapshots the installed hook for one barrier call.
func (e *Engine) barrierHook() BarrierHook {
	e.hookMu.Lock() //tintvet:ignore cycleclock: once-per-barrier hook read, not per-access state
	defer e.hookMu.Unlock()
	return e.barrier
}

// defaultOpBudget guards against runaway thread bodies (an infinite
// yield loop would otherwise hang the simulation silently).
// Overridable through SetOpBudget for genuinely enormous runs.
var defaultOpBudget uint64 = 1 << 33

// SetOpBudget caps the ops a single thread may execute within one
// phase (0 restores the default of 2^33). The budget is per thread,
// not per phase: a phase with many threads each under the budget is
// fine, and only a genuinely runaway body — one thread yielding more
// than the budget — trips it.
func (e *Engine) SetOpBudget(n uint64) {
	if n == 0 {
		n = defaultOpBudget
	}
	e.opBudget = n
}

// New creates an engine for the given threads.
func New(ms *mem.System, threads []Thread) (*Engine, error) {
	if len(threads) == 0 {
		return nil, fmt.Errorf("engine: no threads")
	}
	for i, th := range threads {
		if th.Task == nil {
			return nil, fmt.Errorf("engine: thread %d has no task", i)
		}
	}
	return &Engine{mem: ms, threads: threads, opBudget: defaultOpBudget}, nil
}

// Mem returns the engine's memory system.
func (e *Engine) Mem() *mem.System { return e.mem }

// Threads returns the engine's thread table.
func (e *Engine) Threads() []Thread { return e.threads }

// Now returns the global virtual clock (the last barrier release).
func (e *Engine) Now() clock.Time { return e.now }

// opBatch is how many ops a Batched phase hands the engine per
// coroutine switch. The body-side adapter (blockify) accumulates its
// yields into a block and performs one real iter.Pull handoff per
// full block, so the goroutine-switch cost is paid once per opBatch
// ops instead of once per op.
const opBatch = 1024

// blockify adapts a per-op body into a per-block iterator: the body's
// yields append to a reused buffer that is surfaced to the consumer
// only when full (or at body exit). The consumer must finish with a
// block before requesting the next one — iter.Pull's strict
// alternation guarantees that, which is what makes reusing the buffer
// safe.
func blockify(w Work) iter.Seq[[]Op] {
	return func(yield func([]Op) bool) {
		buf := make([]Op, 0, opBatch)
		stopped := false
		w(func(op Op) bool {
			buf = append(buf, op)
			if len(buf) < opBatch {
				return true
			}
			if !yield(buf) {
				stopped = true
				return false
			}
			buf = buf[:0]
			return true
		})
		if !stopped && len(buf) > 0 {
			yield(buf)
		}
	}
}

// runnerState is one live thread within a phase.
type runnerState struct {
	id   int
	time clock.Time
	ops  uint64 // ops this thread executed in the current phase
	next func() (Op, bool)
	stop func()
	// Block pulling (Batched phases only): nextBlock replaces next,
	// and buf[bufPos:] holds the ops of the current block that have
	// not executed yet.
	nextBlock func() ([]Op, bool)
	buf       []Op
	bufPos    int
}

// nextOp returns the thread's next op, pulling the next block from
// the body when batching is on and the current block is spent.
func (r *runnerState) nextOp() (Op, bool) {
	if r.bufPos < len(r.buf) {
		op := r.buf[r.bufPos]
		r.bufPos++
		return op, true
	}
	if r.nextBlock == nil {
		return r.next()
	}
	buf, ok := r.nextBlock()
	if !ok || len(buf) == 0 {
		return Op{}, false
	}
	r.buf = buf
	r.bufPos = 1
	return buf[0], true
}

// Run executes the phases in order and returns the aggregated
// result. On error (e.g. a thread ran out of colored memory) the
// partial result is returned alongside the error.
func (e *Engine) Run(phases []Phase) (*Result, error) {
	n := len(e.threads)
	res := &Result{
		ThreadRuntime: make([]clock.Dur, n),
		ThreadIdle:    make([]clock.Dur, n),
		FaultCycles:   make([]clock.Dur, n),
	}
	if e.release == nil {
		e.release = make([]clock.Time, n)
		for i := range e.release {
			e.release[i] = e.now
		}
	}
	for pi, ph := range phases {
		if len(ph.Work) != n {
			return res, fmt.Errorf("engine: phase %q has %d bodies for %d threads",
				ph.Name, len(ph.Work), n)
		}
		barrier := !ph.NoWait || pi == len(phases)-1
		pr, err := e.runPhase(ph, res, barrier)
		res.Phases = append(res.Phases, pr)
		if err != nil {
			return res, fmt.Errorf("engine: phase %q: %w", ph.Name, err)
		}
		if hook := e.barrierHook(); barrier && hook != nil {
			cost, err := hook(ph.Name)
			if err != nil {
				return res, fmt.Errorf("engine: barrier hook after phase %q: %w", ph.Name, err)
			}
			if cost > 0 {
				// Daemon work extends the barrier: every thread resumes
				// after it, and the program as a whole pays for it.
				e.now += clock.Time(cost)
				for i := range e.release {
					e.release[i] = e.now
				}
			}
		}
		if audit := e.auditHook(); audit != nil {
			if err := audit(); err != nil {
				return res, fmt.Errorf("engine: audit after phase %q: %w", ph.Name, err)
			}
		}
	}
	res.Runtime = clock.Dur(e.now)
	for _, d := range res.ThreadIdle {
		res.TotalIdle += d
	}
	return res, nil
}

func (e *Engine) runPhase(ph Phase, res *Result, barrier bool) (PhaseResult, error) {
	start := e.now
	pr := PhaseResult{
		Name:      ph.Name,
		Start:     start,
		ThreadEnd: make([]clock.Time, len(e.threads)),
	}
	for i := range pr.ThreadEnd {
		pr.ThreadEnd[i] = e.release[i]
	}

	// Materialize pull-iterators for every participant. Each thread
	// begins at its personal release time (== the last barrier, or
	// its own previous completion after a NoWait phase).
	var live []*runnerState
	participants := 0
	for i, w := range ph.Work {
		if w == nil {
			continue
		}
		participants++
		r := &runnerState{id: i, time: e.release[i]}
		if ph.Batched {
			r.nextBlock, r.stop = iter.Pull(blockify(w))
		} else {
			r.next, r.stop = iter.Pull(iter.Seq[Op](w))
		}
		live = append(live, r)
	}
	pr.Parallel = participants >= 2
	defer func() {
		for _, r := range live {
			r.stop()
		}
	}()

	// The conservative discrete-event loop: always step the earliest
	// thread (ties by id). The indexed min-heap makes each step
	// O(log n); because (time, id) is a strict total order it selects
	// exactly the thread the former linear scan did.
	q := newEventQueue(append([]*runnerState(nil), live...))
	var runErr error
	for q.Len() > 0 && runErr == nil {
		r := q.Min()
		if r.ops++; r.ops > e.opBudget {
			runErr = fmt.Errorf("thread %d exceeded the per-thread op budget of %d (runaway thread body?)",
				r.id, e.opBudget)
			break
		}
		op, ok := r.nextOp()
		if !ok {
			pr.ThreadEnd[r.id] = r.time
			r.stop()
			q.PopMin()
			continue
		}
		res.Ops++
		r.time += op.Compute
		if op.VA != 0 {
			th := e.threads[r.id]
			start := r.time
			pa, faultCost, err := th.Task.Translate(op.VA)
			if err != nil {
				runErr = fmt.Errorf("thread %d at %#x: %w", r.id, op.VA, err)
				pr.ThreadEnd[r.id] = r.time
				break
			}
			r.time += faultCost
			res.FaultCycles[r.id] += faultCost
			done, level := e.mem.AccessLevel(th.Task.Core(), pa, op.Write, r.time)
			r.time = done
			if e.tracer != nil {
				e.tracer(TraceEvent{
					Thread: r.id, Phase: ph.Name,
					VA: op.VA, PA: pa, Write: op.Write,
					Start: start, Done: done, Level: level,
					FaultCycles: faultCost,
				})
			}
		}
		q.FixMin()
	}

	end := start
	for _, t := range pr.ThreadEnd {
		if t > end {
			end = t
		}
	}
	pr.End = end
	if pr.Parallel {
		for i, w := range ph.Work {
			if w == nil {
				continue
			}
			res.ThreadRuntime[i] += clock.Dur(pr.ThreadEnd[i] - e.release[i])
			if barrier {
				res.ThreadIdle[i] += clock.Dur(end - pr.ThreadEnd[i])
			}
		}
	}
	if barrier {
		// Implicit barrier: everyone waits for the slowest
		// participant, then starts the next phase together.
		for i := range e.release {
			e.release[i] = end
		}
		e.now = end
	} else {
		// nowait: each participant flows on from its own end;
		// non-participants keep their previous release.
		for i, w := range ph.Work {
			if w != nil {
				e.release[i] = pr.ThreadEnd[i]
			}
		}
		e.now = end
	}
	return pr, runErr
}
