package engine

import (
	"errors"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 256 << 20

type rig struct {
	k  *kernel.Kernel
	ms *mem.System
	e  *Engine
}

func newRig(t *testing.T, cores []topology.CoreID) *rig {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := mem.New(top, m, mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProcess()
	var threads []Thread
	for _, c := range cores {
		task, err := p.NewTask(c)
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, Thread{Task: task, Heap: heap.New(task)})
	}
	e, err := New(ms, threads)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, ms: ms, e: e}
}

func computeWork(n int, cycles clock.Dur) Work {
	return func(yield func(Op) bool) {
		for i := 0; i < n; i++ {
			if !yield(Op{Compute: cycles}) {
				return
			}
		}
	}
}

func TestComputeOnlyRuntime(t *testing.T) {
	r := newRig(t, []topology.CoreID{0})
	res, err := r.e.Run([]Phase{Parallel("p", []Work{computeWork(10, 7)})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != 70 {
		t.Errorf("Runtime = %d, want 70", res.Runtime)
	}
	if res.TotalIdle != 0 {
		t.Errorf("TotalIdle = %d, want 0", res.TotalIdle)
	}
}

func TestBarrierIdleAccounting(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{Parallel("p", []Work{
		computeWork(10, 10), // ends at 100
		computeWork(30, 10), // ends at 300
	})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != 300 {
		t.Errorf("Runtime = %d, want 300 (slowest thread)", res.Runtime)
	}
	if res.ThreadIdle[0] != 200 || res.ThreadIdle[1] != 0 {
		t.Errorf("ThreadIdle = %v, want [200 0]", res.ThreadIdle)
	}
	if res.TotalIdle != 200 {
		t.Errorf("TotalIdle = %d", res.TotalIdle)
	}
	if res.ThreadRuntime[0] != 100 || res.ThreadRuntime[1] != 300 {
		t.Errorf("ThreadRuntime = %v", res.ThreadRuntime)
	}
	if res.MaxThreadRuntime() != 300 || res.MinThreadRuntime() != 100 {
		t.Errorf("Max/Min thread runtime = %d/%d", res.MaxThreadRuntime(), res.MinThreadRuntime())
	}
}

func TestSerialPhaseCountsNoIdle(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{
		Serial("init", 2, computeWork(10, 10)),
		Parallel("work", []Work{computeWork(5, 10), computeWork(5, 10)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime != 150 {
		t.Errorf("Runtime = %d, want 100 serial + 50 parallel", res.Runtime)
	}
	if res.TotalIdle != 0 {
		t.Errorf("serial phase accumulated idle: %d", res.TotalIdle)
	}
	if res.ThreadRuntime[0] != 50 {
		t.Errorf("serial work leaked into parallel runtime: %v", res.ThreadRuntime)
	}
	if !res.Phases[1].Parallel || res.Phases[0].Parallel {
		t.Error("phase parallel flags wrong")
	}
}

func TestPhasesChainOnGlobalClock(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{
		Parallel("a", []Work{computeWork(1, 100), computeWork(1, 50)}),
		Parallel("b", []Work{computeWork(1, 50), computeWork(1, 100)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[1].Start != res.Phases[0].End {
		t.Errorf("phase b starts at %d, want %d", res.Phases[1].Start, res.Phases[0].End)
	}
	if res.Runtime != 200 {
		t.Errorf("Runtime = %d, want 200", res.Runtime)
	}
	// Each thread idled once for 50 cycles.
	if res.ThreadIdle[0] != 50 || res.ThreadIdle[1] != 50 {
		t.Errorf("ThreadIdle = %v", res.ThreadIdle)
	}
}

func TestMemoryAccessAdvancesClock(t *testing.T) {
	r := newRig(t, []topology.CoreID{0})
	th := r.e.Threads()[0]
	va, err := th.Task.Mmap(0, phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := func(yield func(Op) bool) {
		yield(Op{VA: va, Write: true})  // cold: fault + DRAM
		yield(Op{VA: va, Write: false}) // L1 hit
	}
	res, err := r.e.Run([]Phase{Parallel("p", []Work{body})})
	if err != nil {
		t.Fatal(err)
	}
	kcfg := kernel.DefaultConfig()
	if res.FaultCycles[0] != kcfg.FaultCost {
		t.Errorf("FaultCycles = %d, want %d", res.FaultCycles[0], kcfg.FaultCost)
	}
	mcfg := mem.DefaultConfig()
	minRuntime := kcfg.FaultCost + mcfg.L1.Latency // fault + final L1 hit at least
	if res.Runtime <= clock.Dur(minRuntime) {
		t.Errorf("Runtime = %d suspiciously small", res.Runtime)
	}
	st := r.ms.CoreStats(0)
	if st.Accesses != 2 || st.L1Hits != 1 || st.DRAMReads != 1 {
		t.Errorf("core stats = %+v", st)
	}
}

func TestSegfaultAborts(t *testing.T) {
	r := newRig(t, []topology.CoreID{0})
	body := func(yield func(Op) bool) {
		yield(Op{VA: 0xDEAD0000})
	}
	_, err := r.e.Run([]Phase{Parallel("p", []Work{body})})
	if !errors.Is(err, kernel.ErrSegfault) {
		t.Errorf("error = %v, want ErrSegfault", err)
	}
}

func TestNilBodySkipsThread(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4, 8})
	res, err := r.e.Run([]Phase{Parallel("p", []Work{
		computeWork(10, 10), nil, computeWork(5, 10),
	})})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadRuntime[1] != 0 || res.ThreadIdle[1] != 0 {
		t.Errorf("nil-body thread accounted: rt=%v idle=%v", res.ThreadRuntime, res.ThreadIdle)
	}
	if res.ThreadIdle[2] != 50 {
		t.Errorf("thread 2 idle = %d, want 50", res.ThreadIdle[2])
	}
}

func TestPhaseArityMismatch(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	if _, err := r.e.Run([]Phase{Parallel("p", []Work{computeWork(1, 1)})}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestHeapDrivenWorkload(t *testing.T) {
	r := newRig(t, []topology.CoreID{0})
	th := r.e.Threads()[0]
	body := func(yield func(Op) bool) {
		for i := 0; i < 64; i++ {
			va, err := th.Heap.Malloc(256)
			if err != nil {
				return
			}
			if !yield(Op{VA: va, Write: true, Compute: 2}) {
				return
			}
		}
	}
	res, err := r.e.Run([]Phase{Parallel("p", []Work{body})})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime == 0 {
		t.Fatal("no time elapsed")
	}
	if th.Heap.Stats().Mallocs != 64 {
		t.Errorf("Mallocs = %d", th.Heap.Stats().Mallocs)
	}
	if r.k.Stats().Faults == 0 {
		t.Error("no faults recorded for heap-driven workload")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		r := newRig(t, []topology.CoreID{0, 4, 8, 12})
		bodies := make([]Work, 4)
		for i := range bodies {
			th := r.e.Threads()[i]
			i := i
			bodies[i] = func(yield func(Op) bool) {
				va, err := th.Task.Mmap(0, 64*phys.PageSize, 0)
				if err != nil {
					return
				}
				for j := uint64(0); j < 512; j++ {
					off := (j * 127 * uint64(i+1)) % (64 * phys.PageSize)
					if !yield(Op{VA: va + off, Write: j%3 == 0, Compute: clock.Dur(i)}) {
						return
					}
				}
			}
		}
		res, err := r.e.Run([]Phase{Parallel("p", bodies)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime || a.TotalIdle != b.TotalIdle {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d", a.Runtime, a.TotalIdle, b.Runtime, b.TotalIdle)
	}
	for i := range a.ThreadRuntime {
		if a.ThreadRuntime[i] != b.ThreadRuntime[i] {
			t.Fatalf("thread %d runtime differs", i)
		}
	}
}

func TestBankContentionSlowdown(t *testing.T) {
	// Two colored threads sharing ONE bank color finish later than
	// two threads with disjoint bank colors, all else equal.
	run := func(shareBank bool) clock.Dur {
		r := newRig(t, []topology.CoreID{0, 1})
		m := r.k.Mapping()
		local := m.BankColorsOfNode(0)
		for i, th := range r.e.Threads() {
			bc := local[0]
			if !shareBank && i == 1 {
				bc = local[1]
			}
			if _, err := th.Task.Mmap(uint64(bc)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
				t.Fatal(err)
			}
		}
		bodies := make([]Work, 2)
		for i := range bodies {
			th := r.e.Threads()[i]
			bodies[i] = func(yield func(Op) bool) {
				va, err := th.Task.Mmap(0, 256*phys.PageSize, 0)
				if err != nil {
					return
				}
				// Stride by page to defeat caches and stress DRAM rows.
				for j := uint64(0); j < 2048; j++ {
					off := (j * 8192 * 13) % (256 * phys.PageSize)
					if !yield(Op{VA: va + off, Write: true}) {
						return
					}
				}
			}
		}
		res, err := r.e.Run([]Phase{Parallel("p", bodies)})
		if err != nil {
			t.Fatal(err)
		}
		return res.Runtime
	}
	shared := run(true)
	disjoint := run(false)
	if disjoint >= shared {
		t.Errorf("disjoint banks (%d) not faster than shared bank (%d)", disjoint, shared)
	}
}

func TestTracerReceivesOrderedEvents(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	var events []TraceEvent
	r.e.SetTracer(func(e TraceEvent) { events = append(events, e) })

	bodies := make([]Work, 2)
	vas := make([]uint64, 2)
	for i := range bodies {
		th := r.e.Threads()[i]
		va, err := th.Task.Mmap(0, 4*phys.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		vas[i] = va
		i := i
		bodies[i] = func(yield func(Op) bool) {
			for j := uint64(0); j < 16; j++ {
				if !yield(Op{VA: vas[i] + j*128, Write: true, Compute: clock.Dur(10 * (i + 1))}) {
					return
				}
			}
		}
	}
	res, err := r.e.Run([]Phase{Parallel("traced", bodies)})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 32 {
		t.Fatalf("tracer saw %d events, want 32", len(events))
	}
	// Events arrive in global processing order: Start must be
	// non-decreasing per thread and phase names set.
	last := map[int]clock.Time{}
	for i, e := range events {
		if e.Phase != "traced" {
			t.Fatalf("event %d phase %q", i, e.Phase)
		}
		if e.Start < last[e.Thread] {
			t.Fatalf("event %d: thread %d start went backwards", i, e.Thread)
		}
		last[e.Thread] = e.Start
		if e.Done <= e.Start {
			t.Fatalf("event %d: non-positive latency", i)
		}
	}
	_ = res
	// Removing the tracer stops delivery.
	r.e.SetTracer(nil)
	n := len(events)
	if _, err := r.e.Run([]Phase{Parallel("untraced", []Work{
		func(yield func(Op) bool) { yield(Op{VA: vas[0], Write: false}) }, nil,
	})}); err != nil {
		t.Fatal(err)
	}
	if len(events) != n {
		t.Error("tracer fired after removal")
	}
}

func TestPhaseResultsIntegrity(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{
		Parallel("a", []Work{computeWork(3, 10), computeWork(5, 10)}),
		Serial("b", 2, computeWork(2, 10)),
		Parallel("c", []Work{computeWork(1, 10), computeWork(1, 10)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	for i, ph := range res.Phases {
		if ph.End < ph.Start {
			t.Errorf("phase %d ends before it starts", i)
		}
		if i > 0 && ph.Start != res.Phases[i-1].End {
			t.Errorf("phase %d not contiguous", i)
		}
		for tid, end := range ph.ThreadEnd {
			if end < ph.Start || end > ph.End {
				t.Errorf("phase %d thread %d end %d outside [%d,%d]",
					i, tid, end, ph.Start, ph.End)
			}
		}
	}
	if clock.Time(res.Runtime) != res.Phases[2].End {
		t.Errorf("Runtime %d != last phase end %d", res.Runtime, res.Phases[2].End)
	}
}

func TestNoWaitPhaseSkipsBarrier(t *testing.T) {
	// Thread 0 is fast, thread 1 slow in phase A; with nowait,
	// thread 0 starts phase B immediately while thread 1 is still in
	// A, so total runtime is each thread's own sum — and no idle is
	// charged for A.
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{
		NoWaitParallel("a", []Work{computeWork(1, 100), computeWork(1, 500)}),
		Parallel("b", []Work{computeWork(1, 400), computeWork(1, 10)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// t0: 100 + 400 = 500; t1: 500 + 10 = 510 -> runtime 510.
	if res.Runtime != 510 {
		t.Errorf("Runtime = %d, want 510 (nowait overlap)", res.Runtime)
	}
	// Idle only at B's barrier: t0 waits 10 cycles (510-500).
	if res.ThreadIdle[0] != 10 || res.ThreadIdle[1] != 0 {
		t.Errorf("ThreadIdle = %v, want [10 0]", res.ThreadIdle)
	}
	// With a barrier after A instead, runtime is 500 + 400 = 900.
	r2 := newRig(t, []topology.CoreID{0, 4})
	res2, err := r2.e.Run([]Phase{
		Parallel("a", []Work{computeWork(1, 100), computeWork(1, 500)}),
		Parallel("b", []Work{computeWork(1, 400), computeWork(1, 10)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Runtime != 900 {
		t.Errorf("barrier Runtime = %d, want 900", res2.Runtime)
	}
	if !(res.Runtime < res2.Runtime) {
		t.Error("nowait did not overlap execution")
	}
}

func TestFinalNoWaitPhaseStillSynchronizes(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{
		NoWaitParallel("only", []Work{computeWork(1, 100), computeWork(1, 300)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last phase always closes with a barrier so the program has
	// an end time.
	if res.Runtime != 300 {
		t.Errorf("Runtime = %d, want 300", res.Runtime)
	}
	if res.ThreadIdle[0] != 200 {
		t.Errorf("final-phase idle = %v", res.ThreadIdle)
	}
}

// Algorithm 3's structure: a nowait loop phase followed by a barrier
// phase that records end[tid] — idle must equal max(end)-end[tid]
// computed over the COMBINED region.
func TestNoWaitAlgorithm3Semantics(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4, 8})
	res, err := r.e.Run([]Phase{
		NoWaitParallel("for-nowait", []Work{
			computeWork(1, 50), computeWork(1, 200), computeWork(1, 120),
		}),
		Parallel("tail", []Work{
			computeWork(1, 30), computeWork(1, 30), computeWork(1, 30),
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ends: 80, 230, 150 -> barrier at 230.
	want := []clock.Dur{150, 0, 80}
	for i, w := range want {
		if res.ThreadIdle[i] != w {
			t.Errorf("thread %d idle = %d, want %d", i, res.ThreadIdle[i], w)
		}
	}
	if res.Runtime != 230 {
		t.Errorf("Runtime = %d, want 230", res.Runtime)
	}
}

func TestOpBudgetStopsRunaway(t *testing.T) {
	r := newRig(t, []topology.CoreID{0})
	r.e.SetOpBudget(1000)
	infinite := func(yield func(Op) bool) {
		for {
			if !yield(Op{Compute: 1}) {
				return
			}
		}
	}
	_, err := r.e.Run([]Phase{Parallel("spin", []Work{infinite})})
	if err == nil {
		t.Fatal("runaway body not stopped")
	}
	// Budget resets behaviour: restoring default allows normal runs.
	r2 := newRig(t, []topology.CoreID{0})
	r2.e.SetOpBudget(0)
	if _, err := r2.e.Run([]Phase{Parallel("ok", []Work{computeWork(10, 1)})}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorReturnsPartialResult(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	res, err := r.e.Run([]Phase{
		Parallel("good", []Work{computeWork(2, 10), computeWork(2, 10)}),
		Parallel("bad", []Work{
			func(yield func(Op) bool) { yield(Op{VA: 0xBAD0000}) },
			computeWork(1, 10),
		}),
	})
	if err == nil {
		t.Fatal("segfaulting run succeeded")
	}
	if res == nil {
		t.Fatal("no partial result returned")
	}
	if len(res.Phases) != 2 {
		t.Errorf("partial result has %d phases, want 2", len(res.Phases))
	}
	if res.Phases[0].End == res.Phases[0].Start {
		t.Error("good phase lost from partial result")
	}
}
