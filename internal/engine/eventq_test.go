package engine

import (
	"math/rand"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// newComputeEngine builds an engine with n threads pinned to cores
// 0..n-1, for tests that never touch memory.
func newComputeEngine(t *testing.T, n int) *Engine {
	t.Helper()
	cores := make([]topology.CoreID, n)
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	return newRig(t, cores).e
}

// The heap must hand back runners in exactly (time, id) order, the
// order the old linear scan selected.
func TestEventQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rs []*runnerState
	for i := 0; i < 200; i++ {
		// Many deliberate time collisions so tie-breaking by id is
		// actually exercised.
		rs = append(rs, &runnerState{id: i, time: clock.Time(rng.Intn(20))})
	}
	rng.Shuffle(len(rs), func(i, j int) { rs[i], rs[j] = rs[j], rs[i] })
	q := newEventQueue(rs)
	var prev *runnerState
	for q.Len() > 0 {
		r := q.PopMin()
		if prev != nil {
			if r.time < prev.time || (r.time == prev.time && r.id < prev.id) {
				t.Fatalf("pop order violated (time,id): got (%d,%d) after (%d,%d)",
					r.time, r.id, prev.time, prev.id)
			}
		}
		prev = r
	}
}

// FixMin after advancing the minimum's clock must restore the exact
// (time, id) order a full re-scan would compute.
func TestEventQueueFixMin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var rs []*runnerState
	for i := 0; i < 64; i++ {
		rs = append(rs, &runnerState{id: i, time: clock.Time(rng.Intn(50))})
	}
	q := newEventQueue(rs)
	for step := 0; step < 5000; step++ {
		// Reference selection: linear scan over every runner.
		want := rs[0]
		for _, r := range rs[1:] {
			if r.time < want.time || (r.time == want.time && r.id < want.id) {
				want = r
			}
		}
		got := q.Min()
		if got != want {
			t.Fatalf("step %d: heap min (%d,%d) != scan min (%d,%d)",
				step, got.time, got.id, want.time, want.id)
		}
		got.time += clock.Dur(rng.Intn(7)) // 0 advances exercise stable ties
		q.FixMin()
	}
}

// The min-heap scheduler must execute a phase's ops in the same
// global order as the reference earliest-thread linear scan,
// including ties resolved by thread id.
func TestSchedulerMatchesLinearScanReference(t *testing.T) {
	const threads = 9
	rng := rand.New(rand.NewSource(3))
	// Per-thread op lists with frequent duration collisions.
	durs := make([][]clock.Dur, threads)
	for i := range durs {
		n := 30 + rng.Intn(40)
		for j := 0; j < n; j++ {
			durs[i] = append(durs[i], clock.Dur(rng.Intn(4)))
		}
	}

	// Reference: simulate the old linear scan over (time, id).
	type ref struct {
		id   int
		time clock.Time
		next int
	}
	var wantOrder [][2]int
	var refs []*ref
	for i := range durs {
		refs = append(refs, &ref{id: i})
	}
	for len(refs) > 0 {
		sel := 0
		for i := 1; i < len(refs); i++ {
			if refs[i].time < refs[sel].time ||
				(refs[i].time == refs[sel].time && refs[i].id < refs[sel].id) {
				sel = i
			}
		}
		r := refs[sel]
		if r.next >= len(durs[r.id]) {
			refs = append(refs[:sel], refs[sel+1:]...)
			continue
		}
		wantOrder = append(wantOrder, [2]int{r.id, r.next})
		r.time += durs[r.id][r.next]
		r.next++
	}

	// Engine run: record the order ops are pulled via the bodies.
	var gotOrder [][2]int
	bodies := make([]Work, threads)
	for i := range bodies {
		bodies[i] = func(yield func(Op) bool) {
			for j, d := range durs[i] {
				gotOrder = append(gotOrder, [2]int{i, j})
				if !yield(Op{Compute: d}) {
					return
				}
			}
		}
	}
	e := newComputeEngine(t, threads)
	res, err := e.Run([]Phase{Parallel("p", bodies)})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("executed %d ops, reference executed %d", len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("step %d: engine ran thread %d op %d, reference thread %d op %d",
				i, gotOrder[i][0], gotOrder[i][1], wantOrder[i][0], wantOrder[i][1])
		}
	}
	if res.Ops != uint64(len(wantOrder)) {
		t.Errorf("Result.Ops = %d, want %d", res.Ops, len(wantOrder))
	}
}

// Regression for the op-budget semantics: the budget is per thread,
// so a many-thread phase whose threads each stay under it must not
// trip the guard even when the phase total far exceeds it, while a
// single runaway thread must.
func TestOpBudgetIsPerThread(t *testing.T) {
	const threads = 8
	mkBodies := func(opsPerThread int) []Work {
		bodies := make([]Work, threads)
		for i := range bodies {
			bodies[i] = func(yield func(Op) bool) {
				for j := 0; j < opsPerThread; j++ {
					if !yield(Op{Compute: 1}) {
						return
					}
				}
			}
		}
		return bodies
	}

	e := newComputeEngine(t, threads)
	e.SetOpBudget(100)
	// 8 x 90 = 720 total ops, but no thread exceeds 100.
	if _, err := e.Run([]Phase{Parallel("ok", mkBodies(90))}); err != nil {
		t.Fatalf("per-thread-conforming phase tripped the budget: %v", err)
	}

	e = newComputeEngine(t, threads)
	e.SetOpBudget(100)
	if _, err := e.Run([]Phase{Parallel("runaway", mkBodies(150))}); err == nil {
		t.Fatal("runaway thread did not trip the per-thread op budget")
	}

	// The budget resets between phases: two conforming phases in one
	// run must pass even though their combined per-thread ops exceed
	// the budget.
	e = newComputeEngine(t, threads)
	e.SetOpBudget(100)
	if _, err := e.Run([]Phase{
		Parallel("a", mkBodies(90)),
		Parallel("b", mkBodies(90)),
	}); err != nil {
		t.Fatalf("budget leaked across phases: %v", err)
	}
}
