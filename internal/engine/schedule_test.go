package engine

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// computeIter builds an IterBody that records executed iterations and
// costs cost(i) cycles each.
func computeIter(executed []int, cost func(int) clock.Dur) IterBody {
	return func(i int, yield func(Op) bool) bool {
		executed[i]++
		return yield(Op{Compute: cost(i)})
	}
}

func TestStaticForCoversAllIterationsOnce(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4, 8})
	const n = 100
	executed := make([]int, n)
	bodies := StaticFor(n, 3, computeIter(executed, func(int) clock.Dur { return 10 }))
	if _, err := r.e.Run([]Phase{Parallel("loop", bodies)}); err != nil {
		t.Fatal(err)
	}
	for i, c := range executed {
		if c != 1 {
			t.Errorf("iteration %d executed %d times", i, c)
		}
	}
}

func TestDynamicForCoversAllIterationsOnce(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4, 8, 12})
	const n = 97 // deliberately not divisible by chunk or threads
	executed := make([]int, n)
	bodies := DynamicFor(n, 5, 4, computeIter(executed, func(int) clock.Dur { return 7 }))
	if _, err := r.e.Run([]Phase{Parallel("loop", bodies)}); err != nil {
		t.Fatal(err)
	}
	for i, c := range executed {
		if c != 1 {
			t.Errorf("iteration %d executed %d times", i, c)
		}
	}
}

// An imbalanced loop (one expensive tail block): static scheduling
// strands the expensive block on one thread; dynamic scheduling
// self-balances, cutting both runtime and idle.
func TestDynamicBeatsStaticOnImbalance(t *testing.T) {
	cost := func(i int) clock.Dur {
		if i >= 75 {
			return 100 // expensive tail quarter
		}
		return 10
	}
	run := func(dynamic bool) *Result {
		r := newRig(t, []topology.CoreID{0, 4, 8, 12})
		executed := make([]int, 100)
		var bodies []Work
		if dynamic {
			bodies = DynamicFor(100, 2, 4, computeIter(executed, cost))
		} else {
			bodies = StaticFor(100, 4, computeIter(executed, cost))
		}
		res, err := r.e.Run([]Phase{Parallel("loop", bodies)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(false)
	dynamic := run(true)
	if !(dynamic.Runtime < static.Runtime) {
		t.Errorf("dynamic runtime %d not below static %d", dynamic.Runtime, static.Runtime)
	}
	if !(dynamic.TotalIdle < static.TotalIdle) {
		t.Errorf("dynamic idle %d not below static %d", dynamic.TotalIdle, static.TotalIdle)
	}
}

func TestDynamicForChunkFloor(t *testing.T) {
	r := newRig(t, []topology.CoreID{0, 4})
	executed := make([]int, 10)
	bodies := DynamicFor(10, 0, 2, computeIter(executed, func(int) clock.Dur { return 1 }))
	if _, err := r.e.Run([]Phase{Parallel("loop", bodies)}); err != nil {
		t.Fatal(err)
	}
	for i, c := range executed {
		if c != 1 {
			t.Errorf("iteration %d executed %d times with chunk floor", i, c)
		}
	}
}

func TestStaticForContiguousPartition(t *testing.T) {
	// Record which thread runs each iteration by draining the
	// bodies directly (no engine needed for assignment structure).
	const n, threads = 61, 4
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	var current int
	bodies := StaticFor(n, threads, func(i int, yield func(Op) bool) bool {
		if owner[i] != -1 {
			t.Fatalf("iteration %d assigned twice", i)
		}
		owner[i] = current
		return true // consume without yielding ops
	})
	for tid, b := range bodies {
		current = tid
		b(func(Op) bool { return true })
	}
	// Coverage and contiguity: owners are non-decreasing over i.
	for i := 0; i < n; i++ {
		if owner[i] == -1 {
			t.Fatalf("iteration %d never assigned", i)
		}
		if i > 0 && owner[i] < owner[i-1] {
			t.Fatalf("static partition not contiguous at %d", i)
		}
	}
}
