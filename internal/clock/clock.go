// Package clock defines the simulated time base shared by the cache,
// DRAM, interconnect and execution-engine models. Time is measured in
// core cycles of the simulated machine (2 GHz on the paper's Opteron
// 6128, so 1 cycle = 0.5 ns); it has no relation to wall-clock time.
package clock

// Time is an absolute instant in simulated core cycles.
type Time uint64

// Dur is a span of simulated core cycles.
type Dur = Time

// Hz is the simulated core frequency: the paper's Opteron 6128 runs
// at 2 GHz, so 1 cycle = 0.5 ns. Only reporting layers convert —
// the simulator itself computes exclusively in cycles.
const Hz = 2_000_000_000

// Seconds converts a cycle count to simulated seconds at Hz.
func Seconds(d Dur) float64 { return float64(d) / Hz }

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
