package dram

import (
	"testing"
	"testing/quick"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

func newCtrl(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(2, 2, 8, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRowBufferHitFasterThanMiss(t *testing.T) {
	c := newCtrl(t)
	tm := DefaultTiming()
	// First access: bank idle -> activate + CAS.
	d1 := c.Access(0, 0, 0, 100, 0, false)
	want1 := tm.QueueService + tm.TRCD + tm.TCAS + tm.BusBurst
	if d1 != want1 {
		t.Errorf("empty-row access latency = %d, want %d", d1, want1)
	}
	// Same row, well after the first completes: row hit.
	start := d1 + 1000
	d2 := c.Access(0, 0, 0, 100, start, false)
	hitLat := d2 - start
	wantHit := tm.QueueService + tm.TCAS + tm.BusBurst
	if hitLat != wantHit {
		t.Errorf("row-hit latency = %d, want %d", hitLat, wantHit)
	}
	// Different row: conflict, needs precharge.
	start = d2 + 1000
	d3 := c.Access(0, 0, 0, 200, start, false)
	confLat := d3 - start
	wantConf := tm.QueueService + tm.TRP + tm.TRCD + tm.TCAS + tm.BusBurst
	if confLat != wantConf {
		t.Errorf("row-conflict latency = %d, want %d", confLat, wantConf)
	}
	if !(hitLat < confLat) {
		t.Errorf("hit (%d) not faster than conflict (%d)", hitLat, confLat)
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowEmpty != 1 || st.RowConflicts != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 empty / 1 conflict", st)
	}
}

func TestSameBankContentionQueues(t *testing.T) {
	c := newCtrl(t)
	// Two simultaneous requests to the same bank, different rows:
	// the second must wait for the first and then pay a conflict.
	d1 := c.Access(0, 0, 0, 1, 0, false)
	d2 := c.Access(0, 0, 0, 2, 0, false)
	if d2 <= d1 {
		t.Errorf("contended access (%d) finished no later than first (%d)", d2, d1)
	}
	// Separate banks at the same instant contend only on queue+bus.
	c2 := newCtrl(t)
	e1 := c2.Access(0, 0, 0, 1, 0, false)
	e2 := c2.Access(0, 0, 1, 1, 0, false)
	if e2 >= d2 {
		t.Errorf("bank-parallel access (%d) not faster than same-bank conflict (%d)", e2, d2)
	}
	_ = e1
}

func TestChannelParallelism(t *testing.T) {
	tm := DefaultTiming()
	c, err := NewController(2, 2, 8, tm)
	if err != nil {
		t.Fatal(err)
	}
	// Same channel back-to-back: serialized on the data bus.
	a1 := c.Access(0, 0, 0, 1, 0, false)
	a2 := c.Access(0, 0, 1, 1, 0, false)
	sameChGap := a2 - a1

	c2, _ := NewController(2, 2, 8, tm)
	b1 := c2.Access(0, 0, 0, 1, 0, false)
	b2 := c2.Access(1, 0, 0, 1, 0, false)
	crossChGap := b2 - b1
	if crossChGap > sameChGap {
		t.Errorf("cross-channel gap (%d) exceeds same-channel gap (%d)", crossChGap, sameChGap)
	}
}

func TestWritesSlowerThanReads(t *testing.T) {
	c := newCtrl(t)
	r := c.Access(0, 0, 0, 1, 0, false)
	c2 := newCtrl(t)
	w := c2.Access(0, 0, 0, 1, 0, true)
	if w <= r {
		t.Errorf("write latency (%d) not greater than read (%d)", w, r)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	tm := DefaultTiming()
	c, err := NewController(1, 1, 1, tm)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, 0, 0, 7, 0, false)
	// Access the same row in the next refresh epoch: the row was
	// closed by refresh, so it's an empty-row activation, not a hit.
	late := tm.RefreshEvery * 3
	c.Access(0, 0, 0, 7, late, false)
	st := c.Stats()
	if st.RowHits != 0 {
		t.Errorf("row survived refresh: %+v", st)
	}
	if st.RowEmpty != 2 {
		t.Errorf("RowEmpty = %d, want 2", st.RowEmpty)
	}
}

func TestGeometryValidation(t *testing.T) {
	if _, err := NewController(0, 1, 1, DefaultTiming()); err == nil {
		t.Error("NewController accepted 0 channels")
	}
	if _, err := NewController(1, 1, 1, Timing{}); err == nil {
		t.Error("NewController accepted zero timing")
	}
	bad := DefaultTiming()
	bad.RefreshEvery = 0
	if _, err := NewController(1, 1, 1, bad); err == nil {
		t.Error("NewController accepted RefreshEvery=0")
	}
}

func TestInvalidBankPanics(t *testing.T) {
	c := newCtrl(t)
	defer func() {
		if recover() == nil {
			t.Error("Access to invalid bank did not panic")
		}
	}()
	c.Access(9, 0, 0, 1, 0, false)
}

func TestSystemRouting(t *testing.T) {
	m, err := phys.DefaultSeparable(256<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(m, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 4 {
		t.Fatalf("Nodes = %d", s.Nodes())
	}
	// An address in node 2's range must be serviced by controller 2.
	base, _ := m.NodeRange(2)
	_, node := s.Access(base+0x1000, 0, false)
	if node != 2 {
		t.Errorf("address routed to node %d, want 2", node)
	}
	if st := s.Controller(2).Stats(); st.Accesses != 1 {
		t.Errorf("controller 2 accesses = %d, want 1", st.Accesses)
	}
	for _, n := range []int{0, 1, 3} {
		if st := s.Controller(n).Stats(); st.Accesses != 0 {
			t.Errorf("controller %d accesses = %d, want 0", n, st.Accesses)
		}
	}
	if tot := s.TotalStats(); tot.Accesses != 1 {
		t.Errorf("TotalStats.Accesses = %d, want 1", tot.Accesses)
	}
}

func TestControllersIndependent(t *testing.T) {
	m, err := phys.DefaultSeparable(256<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(m, DefaultTiming())
	if err != nil {
		t.Fatal(err)
	}
	b0, _ := m.NodeRange(0)
	b1, _ := m.NodeRange(1)
	// Saturate controller 0's queue; controller 1 must be unaffected.
	var last clock.Time
	for i := 0; i < 10; i++ {
		last, _ = s.Access(b0, 0, false)
	}
	d1, _ := s.Access(b1, 0, false)
	if d1 >= last {
		t.Errorf("independent controller delayed by other controller's queue: %d vs %d", d1, last)
	}
}

func TestResetStats(t *testing.T) {
	c := newCtrl(t)
	c.Access(0, 0, 0, 1, 0, false)
	c.ResetStats()
	if st := c.Stats(); st.Accesses != 0 || st.TotalLatency != 0 {
		t.Errorf("ResetStats left %+v", st)
	}
}

// Property: adding queue pressure never makes an access complete
// earlier (conservative queueing).
func TestQueuePressureMonotone(t *testing.T) {
	lat := func(warmups int) clock.Time {
		c, err := NewController(2, 2, 8, DefaultTiming())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < warmups; i++ {
			c.Access(0, 0, i%8, uint64(i), 0, false)
		}
		return c.Access(1, 1, 0, 42, 0, false)
	}
	prev := lat(0)
	for _, w := range []int{1, 2, 4, 8, 16} {
		cur := lat(w)
		if cur < prev {
			t.Fatalf("completion regressed with pressure %d: %d < %d", w, cur, prev)
		}
		prev = cur
	}
}

// Property: interleaving a second thread into the same bank never
// reduces (and with different rows strictly increases) the first
// thread's total service time.
func TestInterleavingNeverHelps(t *testing.T) {
	f := func(rowsA, rowsB uint8, interleave bool) bool {
		tm := DefaultTiming()
		run := func(withB bool) clock.Time {
			c, err := NewController(1, 1, 2, tm)
			if err != nil {
				t.Fatal(err)
			}
			var tA clock.Time
			for i := 0; i < 20; i++ {
				tA = c.Access(0, 0, 0, uint64(rowsA%4), tA, false)
				if withB {
					c.Access(0, 0, 0, uint64(rowsB%4)+10, tA, false)
				}
			}
			return tA
		}
		return run(true) >= run(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Writes to distinct banks of the same channel serialize only on the
// bus; total throughput must exceed single-bank throughput.
func TestBankLevelParallelismThroughput(t *testing.T) {
	tm := DefaultTiming()
	finish := func(banks int) clock.Time {
		c, err := NewController(1, 1, 8, tm)
		if err != nil {
			t.Fatal(err)
		}
		var last clock.Time
		for i := 0; i < 64; i++ {
			d := c.Access(0, 0, i%banks, uint64(i), 0, false)
			if d > last {
				last = d
			}
		}
		return last
	}
	if !(finish(8) < finish(1)) {
		t.Errorf("8-bank streaming (%d) not faster than 1-bank (%d)", finish(8), finish(1))
	}
}
