// Package dram models the DRAM subsystem behind each memory
// controller: channels, ranks and banks with open-row (row-buffer)
// state, bank and controller-queue contention, and periodic refresh
// (paper Sec. II-B).
//
// The model is a conservative queueing approximation: every shared
// resource (controller front-end queue, channel data bus, bank) has a
// busy-until instant; a request arriving earlier waits. Latency
// asymmetry follows the classic open-row policy:
//
//	row-buffer hit      : tCAS
//	row-buffer empty    : tRCD + tCAS        (activate, then column)
//	row-buffer conflict : tRP + tRCD + tCAS  (precharge first)
//
// Two threads hammering the same bank therefore both queue on the
// bank AND turn each other's row hits into conflicts — exactly the
// interference TintMalloc's bank coloring removes.
package dram

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Timing holds DRAM timing parameters in core cycles.
type Timing struct {
	TCAS         clock.Dur // column access strobe
	TRCD         clock.Dur // row activate (RAS-to-CAS)
	TRP          clock.Dur // precharge
	TWR          clock.Dur // extra write-recovery charge on writes
	QueueService clock.Dur // controller front-end serialization per request
	BusBurst     clock.Dur // channel data-bus occupancy per transfer
	RefreshEvery clock.Dur // refresh interval; all rows close at each epoch
}

// DefaultTiming returns timing roughly calibrated to DDR3-1333 behind
// a 2 GHz core clock (the paper's platform): ~13.5 ns tCAS/tRCD/tRP.
func DefaultTiming() Timing {
	return Timing{
		TCAS:         27,
		TRCD:         27,
		TRP:          27,
		TWR:          10,
		QueueService: 8,
		BusBurst:     8,
		RefreshEvery: 15600, // tREFI = 7.8 us at 2 GHz
	}
}

// Validate reports whether the timing parameters are usable.
func (t Timing) Validate() error {
	if t.TCAS == 0 {
		return fmt.Errorf("dram: TCAS must be > 0")
	}
	if t.RefreshEvery == 0 {
		return fmt.Errorf("dram: RefreshEvery must be > 0")
	}
	return nil
}

const noRow = ^uint64(0)

type bank struct {
	openRow      uint64
	busyUntil    clock.Time
	refreshEpoch uint64
}

// Stats aggregates per-controller access counters.
type Stats struct {
	Accesses     uint64
	RowHits      uint64
	RowEmpty     uint64 // activations into an idle (closed) bank
	RowConflicts uint64 // precharge-first accesses
	TotalLatency clock.Dur
	QueueWait    clock.Dur // cycles spent waiting on queue/bus/bank
}

// Controller models one memory controller and its DRAM arrays.
type Controller struct {
	timing    Timing
	channels  int
	ranks     int
	banksPerR int
	banks     []bank // [channel][rank][bank] flattened
	busBusy   []clock.Time
	queueBusy clock.Time
	stats     Stats
}

// NewController builds a controller with the given geometry.
func NewController(channels, ranks, banksPerRank int, tm Timing) (*Controller, error) {
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	if channels < 1 || ranks < 1 || banksPerRank < 1 {
		return nil, fmt.Errorf("dram: geometry must be positive, got %d/%d/%d",
			channels, ranks, banksPerRank)
	}
	n := channels * ranks * banksPerRank
	c := &Controller{
		timing:    tm,
		channels:  channels,
		ranks:     ranks,
		banksPerR: banksPerRank,
		banks:     make([]bank, n),
		busBusy:   make([]clock.Time, channels),
	}
	for i := range c.banks {
		c.banks[i].openRow = noRow
	}
	return c, nil
}

func (c *Controller) bankIndex(ch, rank, bk int) int {
	return (ch*c.ranks+rank)*c.banksPerR + bk
}

// Access services one cache-line request that arrives at the
// controller at time t. It returns the completion time. write adds
// write-recovery charge.
func (c *Controller) Access(ch, rank, bk int, row uint64, t clock.Time, write bool) clock.Time {
	if ch < 0 || ch >= c.channels || rank < 0 || rank >= c.ranks || bk < 0 || bk >= c.banksPerR {
		panic(fmt.Sprintf("dram: access to invalid bank (%d,%d,%d)", ch, rank, bk))
	}
	c.stats.Accesses++

	// Controller front-end: de-multiplex requests serially.
	start := clock.Max(t, c.queueBusy)
	qDone := start + c.timing.QueueService
	c.queueBusy = qDone

	// Bank availability.
	b := &c.banks[c.bankIndex(ch, rank, bk)]
	bStart := clock.Max(qDone, b.busyUntil)

	// Lazy refresh: at each refresh epoch all rows are closed.
	if epoch := uint64(bStart / c.timing.RefreshEvery); epoch != b.refreshEpoch {
		b.refreshEpoch = epoch
		b.openRow = noRow
	}

	var lat clock.Dur
	switch {
	case b.openRow == row:
		lat = c.timing.TCAS
		c.stats.RowHits++
	case b.openRow == noRow:
		lat = c.timing.TRCD + c.timing.TCAS
		c.stats.RowEmpty++
	default:
		lat = c.timing.TRP + c.timing.TRCD + c.timing.TCAS
		c.stats.RowConflicts++
	}
	if write {
		lat += c.timing.TWR
	}
	b.openRow = row
	done := bStart + lat
	b.busyUntil = done

	// Channel data bus occupancy for the burst.
	busStart := clock.Max(done, c.busBusy[ch])
	done = busStart + c.timing.BusBurst
	c.busBusy[ch] = done

	c.stats.TotalLatency += done - t
	c.stats.QueueWait += (bStart - t) + (busStart - (bStart + lat))
	return done
}

// Stats returns a copy of the controller's counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without touching bank state.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// System bundles one controller per memory node and routes decoded
// physical addresses to them.
type System struct {
	mapping *phys.Mapping
	ctrls   []*Controller
}

// NewSystem builds the per-node controllers from a mapping's geometry.
func NewSystem(m *phys.Mapping, tm Timing) (*System, error) {
	s := &System{mapping: m}
	for n := 0; n < m.Nodes(); n++ {
		c, err := NewController(m.Channels(), m.Ranks(), m.Banks(), tm)
		if err != nil {
			return nil, err
		}
		s.ctrls = append(s.ctrls, c)
	}
	return s, nil
}

// Access routes the request for physical address a (arriving at its
// home controller at time t) and returns the completion time and the
// servicing node.
func (s *System) Access(a phys.Addr, t clock.Time, write bool) (clock.Time, int) {
	loc := s.mapping.Decode(a)
	done := s.ctrls[loc.Node].Access(loc.Channel, loc.Rank, loc.Bank, loc.Row, t, write)
	return done, loc.Node
}

// Controller returns node n's controller (for stats inspection).
func (s *System) Controller(n int) *Controller { return s.ctrls[n] }

// Nodes returns the controller count.
func (s *System) Nodes() int { return len(s.ctrls) }

// TotalStats sums the per-controller stats.
func (s *System) TotalStats() Stats {
	var out Stats
	for _, c := range s.ctrls {
		st := c.Stats()
		out.Accesses += st.Accesses
		out.RowHits += st.RowHits
		out.RowEmpty += st.RowEmpty
		out.RowConflicts += st.RowConflicts
		out.TotalLatency += st.TotalLatency
		out.QueueWait += st.QueueWait
	}
	return out
}
