package invariant

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const testMem = 128 << 20

func boot(t *testing.T) *kernel.Kernel {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestAuditFreshKernelClean(t *testing.T) {
	k := boot(t)
	r := Audit(k)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.BuddyFree != r.Frames || r.Unaccounted != 0 || r.Parked != 0 || r.Mapped != 0 {
		t.Fatalf("fresh kernel accounting off: %+v", r)
	}
}

func TestAuditTracksColoredLifecycle(t *testing.T) {
	k := boot(t)
	task, err := k.NewProcess().NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	bc := k.Mapping().BankColorsOfNode(0)[0]
	if _, err := task.Mmap(uint64(bc)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	const pages = 16
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < pages; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	r := Audit(k)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Mapped != pages {
		t.Errorf("Mapped = %d, want %d", r.Mapped, pages)
	}
	if r.Parked == 0 {
		t.Error("colored refill should have parked shattered frames on color lists")
	}
	if r.Unaccounted != 0 {
		t.Errorf("leaked %d frames", r.Unaccounted)
	}
	// Unmapping returns every frame to a free list of some kind.
	if err := task.Munmap(va, pages*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	r = Audit(k)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Mapped != 0 || r.Unaccounted != 0 {
		t.Errorf("after munmap: %+v", r)
	}
}

// A colored double free is silent in the kernel — the frame is simply
// parked twice and will be handed to two different threads later.
// Audit must catch it as a double ownership.
func TestAuditDetectsColoredDoubleFree(t *testing.T) {
	k := boot(t)
	task, err := k.NewProcess().NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	bc := k.Mapping().BankColorsOfNode(0)[0]
	if _, err := task.Mmap(uint64(bc)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	f, _, err := k.AllocPages(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !k.FrameColored(f) {
		t.Fatalf("frame %d not colored", f)
	}
	if err := k.FreePages(f, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.FreePages(f, 0); err != nil {
		t.Fatal(err) // silently accepted: this is the drift
	}
	r := Audit(k)
	err = r.Err()
	if err == nil {
		t.Fatal("Audit missed a colored double free")
	}
	if !strings.Contains(err.Error(), "owned by both") {
		t.Errorf("unexpected violation text: %v", err)
	}
}

func TestCheckBuddyCleanUnderChurn(t *testing.T) {
	a, err := buddy.New(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var held []phys.Frame
	for i := 0; i < 2000; i++ {
		if rng.Intn(2) == 0 || len(held) == 0 {
			if f, err := a.Alloc(0); err == nil {
				held = append(held, f)
			}
		} else {
			i := rng.Intn(len(held))
			if err := a.Free(held[i], 0); err != nil {
				t.Fatal(err)
			}
			held = append(held[:i], held[i+1:]...)
		}
	}
	if err := CheckBuddy(a); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPlan(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]topology.CoreID, 8)
	for i := range cores {
		cores[i] = topology.CoreID(i)
	}
	for _, p := range policy.All() {
		asn, err := policy.Plan(p, m, top, cores)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if err := CheckPlan(m, p, asn); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
	// A fabricated overlap must be rejected.
	bad := []policy.Assignment{
		{BankColors: []int{1, 2}, LLCColors: []int{0}},
		{BankColors: []int{2, 3}, LLCColors: []int{1}},
	}
	if err := CheckPlan(m, policy.MEMLLC, bad); err == nil {
		t.Error("CheckPlan accepted overlapping bank sets")
	}
}
