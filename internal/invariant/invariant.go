// Package invariant is the runtime half of the repository's
// correctness gate (the static half is cmd/tintvet): it audits the
// structural invariants TintMalloc's results depend on and that no
// single layer can check alone.
//
// The paper's claims are only meaningful if the simulator's
// bookkeeping never drifts between layers: every frame on
// color_list[bc][lc] must actually hash to (bc, lc) under the
// machine's address mapping (paper Eq. 1), a frame must have exactly
// one owner (a buddy free list, a color list, a page table, or a pcp
// cache), and policies that promise per-thread private color sets
// must actually hand out disjoint sets. A silent violation — e.g. a
// double-freed colored frame parked twice and then handed to two
// threads — would corrupt cycle counts without failing anything,
// which is exactly the failure mode cross-layer partitioners like BPM
// and vertical memory management are known for.
//
// Audit is wired into kernel, buddy, engine and bench tests (no build
// tags; it runs under plain `go test ./...`). It is O(frames) and not
// meant for simulation hot paths.
package invariant

import (
	"fmt"
	"strings"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
)

// maxViolations bounds how many violations one audit records; a
// corrupt kernel would otherwise produce one per frame.
const maxViolations = 20

// Report is the outcome of one Audit walk.
type Report struct {
	Frames    uint64 // total frames in the machine
	BuddyFree uint64 // frames on buddy free lists
	Parked    uint64 // frames parked on color lists
	Mapped    uint64 // frames resident in page tables
	PCPCached uint64 // frames in per-task pcp caches
	// Unaccounted frames have no owner. Zero on an un-churned
	// kernel; a churned kernel pins HoldoutFrac of its frames as
	// permanently-resident "other process" memory, which shows up
	// here by design.
	Unaccounted uint64
	// Loans counts outstanding degradation-ladder loans (frames
	// handed out below preferred placement; DESIGN.md Sec. 10).
	Loans      uint64
	Violations []string
}

// Err returns nil for a clean report and an error summarizing the
// violations otherwise.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("invariant: %d violation(s):\n  %s",
		len(r.Violations), strings.Join(r.Violations, "\n  "))
}

func (r *Report) addf(format string, args ...any) {
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// frame owners for the exclusivity check.
const (
	ownerNone = iota
	ownerBuddy
	ownerColorList
	ownerPageTable
	ownerPCP
)

var ownerName = [...]string{"none", "buddy free list", "color list", "page table", "pcp cache"}

// Audit cross-checks the kernel's frame bookkeeping across layers:
//
//  1. Every frame on color_list[bc][lc] hashes to bank color bc and
//     LLC color lc under the machine mapping, independently recomputed
//     from phys (not the kernel's cached tables).
//  2. Every frame has at most one owner among {buddy free list, color
//     list, page table, pcp cache}; duplicates on the same color list
//     (a silent colored double-free) count as two owners.
//  3. Frames marked colored never sit on a buddy free list, and frames
//     parked on a color list always carry the colored mark.
//  4. Every live entry of every task's simulated TLB maps a vpage to
//     exactly the frame the process page table holds — a stale entry
//     means a missed shootdown.
//  5. Every degradation-ladder loan backs a resident page of its
//     borrower at the recorded virtual page, and a same-node color
//     borrow never holds a color inside another task's private set —
//     the plan-disjointness guarantee with loans accounted for.
//  7. The loan ledger and its hot-path mirror agree frame by frame
//     (same frames, same rungs, every rung on the ladder), and the
//     lifetime identity holds: loans registered = loans settled +
//     loans outstanding. This is the check that policy switches
//     (Task.Repolicy) and compaction (CompactStep) never leak,
//     double-settle, or silently drop a loan — the mirror is what
//     freeFrame consults, so a divergence is a future lost loan.
//
// (Check 6 is the serve layer's AuditServer, in server.go.)
//
// The caller decides what Unaccounted must be: 0 for pristine
// kernels, the churn holdout for aged ones.
func Audit(k *kernel.Kernel) *Report {
	m := k.Mapping()
	r := &Report{Frames: m.Frames()}
	owner := make([]uint8, m.Frames())

	claim := func(f phys.Frame, who uint8, what string) {
		if uint64(f) >= r.Frames {
			r.addf("%s holds out-of-range frame %d", what, f)
			return
		}
		if owner[f] != ownerNone {
			r.addf("frame %d owned by both %s and %s", f, ownerName[owner[f]], what)
			return
		}
		owner[f] = who
	}

	for n := 0; n < m.Nodes(); n++ {
		k.VisitZoneFree(n, func(head phys.Frame, order int) {
			for f := head; f < head+phys.Frame(uint64(1)<<order); f++ {
				claim(f, ownerBuddy, "buddy free list")
				r.BuddyFree++
				if k.FrameColored(f) {
					r.addf("colored frame %d returned to the buddy allocator; colored frames must rejoin their color list", f)
				}
			}
		})
	}

	k.VisitColorLists(func(bc, lc int, f phys.Frame) {
		claim(f, ownerColorList, fmt.Sprintf("color list [%d][%d]", bc, lc))
		r.Parked++
		if !m.ValidFrame(f) {
			return
		}
		// Recompute from the bit-gather reference, not the memoized
		// frame tables the kernel itself reads — a corrupt table must
		// not vouch for itself.
		if wantBC, wantLC := m.GatherBankColor(f.Base()), m.GatherLLCColor(f.Base()); wantBC != bc || wantLC != lc {
			r.addf("frame %d parked on color list [%d][%d] but hashes to (%d,%d) under the mapping",
				f, bc, lc, wantBC, wantLC)
		}
		if !k.FrameColored(f) {
			r.addf("frame %d parked on color list [%d][%d] without the colored ownership mark", f, bc, lc)
		}
	})

	for _, p := range k.Processes() {
		p.VisitPages(func(vp uint64, f phys.Frame) {
			claim(f, ownerPageTable, fmt.Sprintf("process %d page table (vpage %#x)", p.ID(), vp))
			r.Mapped++
		})
		for _, t := range p.Tasks() {
			for _, f := range t.PCPFrames() {
				claim(f, ownerPCP, fmt.Sprintf("task %d pcp cache", t.ID()))
				r.PCPCached++
			}
			// TLB coherence: every cached translation must agree with
			// the process page table — a stale entry means a missed
			// shootdown on munmap, migrate or recolor.
			t.VisitTLB(func(vp uint64, f phys.Frame) {
				got, ok := t.FrameOfVA(vp << phys.PageShift)
				switch {
				case !ok:
					r.addf("task %d TLB caches vpage %#x -> frame %d but the page is not resident (missed shootdown)",
						t.ID(), vp, f)
				case got != f:
					r.addf("task %d TLB caches vpage %#x -> frame %d but the page table maps it to frame %d",
						t.ID(), vp, f, got)
				}
			})
		}
	}

	r.Loans = uint64(k.Loans())
	onLedger := make(map[phys.Frame]bool, k.Loans())
	k.VisitLoans(func(f phys.Frame, bt *kernel.Task, vp uint64, rung kernel.Rung) {
		onLedger[f] = true
		// Check 7: ledger/mirror coherence per loan. The rung must be a
		// real ladder rung and the flat mirror must record exactly it.
		if rung < 0 || rung >= kernel.NumRungs {
			r.addf("loan of frame %d to task %d records rung %d, outside the ladder", f, bt.ID(), int(rung))
		}
		if mr := k.LoanRungMirror(f); mr != rung {
			r.addf("loan of frame %d to task %d: ledger says rung %s but the hot-path mirror says %s",
				f, bt.ID(), rung, mr)
		}
		got, ok := bt.FrameOfVA(vp << phys.PageShift)
		switch {
		case !ok:
			r.addf("loan of frame %d to task %d (vpage %#x, rung %s) is dangling: page not resident",
				f, bt.ID(), vp, rung)
			return
		case got != f:
			r.addf("loan of frame %d to task %d (vpage %#x) disagrees with the page table, which maps it to frame %d",
				f, bt.ID(), vp, got)
			return
		}
		if rung != kernel.RungBorrowColor {
			return
		}
		// A borrow promises a color no other task owns; an overlap
		// means the ladder (or a later color grant) silently broke a
		// policy's exclusivity guarantee. Uncolored borrowers make no
		// color claim and are skipped.
		bc, lc := k.FrameColors(f)
		for _, p := range k.Processes() {
			for _, o := range p.Tasks() {
				if o.ID() == bt.ID() {
					continue
				}
				if bt.UsingBank() && o.OwnsBankColor(bc) {
					r.addf("frame %d borrowed by task %d carries bank color %d, which is assigned to task %d",
						f, bt.ID(), bc, o.ID())
				}
				if !bt.UsingBank() && bt.UsingLLC() && o.OwnsLLCColor(lc) {
					r.addf("frame %d borrowed by task %d carries LLC color %d, which is assigned to task %d",
						f, bt.ID(), lc, o.ID())
				}
			}
		}
	})

	// Check 7, other direction: a mirror entry with no ledger record
	// would make freeFrame "settle" a loan that does not exist.
	for f := phys.Frame(0); uint64(f) < r.Frames; f++ {
		if mr := k.LoanRungMirror(f); mr != kernel.RungNone && !onLedger[f] {
			r.addf("frame %d: hot-path mirror records rung %s but the loan ledger has no entry", f, mr)
		}
	}
	// Check 7, lifetime identity: every loan ever opened was either
	// settled or is still on the ledger. Repolicy's in-place settles,
	// CompactStep's migrations and freeFrame all feed the same
	// counters, so drift here means a path dropped a loan silently.
	if st := k.Stats(); st.LoansRegistered != st.LoansSettled+r.Loans {
		r.addf("loan ledger identity broken: %d registered != %d settled + %d outstanding",
			st.LoansRegistered, st.LoansSettled, r.Loans)
	}

	for _, o := range owner {
		if o == ownerNone {
			r.Unaccounted++
		}
	}
	return r
}

// CheckBuddy verifies one buddy allocator's free-list structure in
// isolation: block alignment, range, non-overlap, and agreement
// between FreeFrames and the sum over free blocks.
func CheckBuddy(a *buddy.Allocator) error {
	seen := make([]bool, a.Frames())
	var total uint64
	var errs []string
	addf := func(format string, args ...any) {
		if len(errs) < maxViolations {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
	}
	a.VisitFreeBlocks(func(head phys.Frame, order int) {
		n := uint64(1) << order
		if uint64(head)&(n-1) != 0 {
			addf("free block head %d misaligned for order %d", head, order)
		}
		if uint64(head)+n > a.Frames() {
			addf("free block [%d,%d) exceeds range %d", head, uint64(head)+n, a.Frames())
			return
		}
		for f := head; f < head+phys.Frame(n); f++ {
			if seen[f] {
				addf("frame %d appears in two free blocks", f)
			}
			seen[f] = true
		}
		total += n
	})
	if total != a.FreeFrames() {
		addf("free blocks sum to %d frames but FreeFrames() = %d", total, a.FreeFrames())
	}
	if len(errs) > 0 {
		return fmt.Errorf("invariant: buddy: %s", strings.Join(errs, "; "))
	}
	return nil
}

// CheckPlan verifies the color-set disjointness a policy promises
// (paper Sec. V-B: "private" always means disjoint from every other
// thread). Bank disjointness is only a guarantee under a separable
// mapping — with overlapped bank/LLC bits the bank sets are derived
// from LLC compatibility and may legitimately intersect.
func CheckPlan(m *phys.Mapping, p policy.Policy, asn []policy.Assignment) error {
	var errs []string
	if p.PrivateBanks() && m.SeparableColors() {
		if err := disjoint("bank", func(i int) []int { return asn[i].BankColors }, len(asn)); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if p.PrivateLLC() {
		if err := disjoint("LLC", func(i int) []int { return asn[i].LLCColors }, len(asn)); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("invariant: plan for %s: %s", p, strings.Join(errs, "; "))
	}
	return nil
}

func disjoint(kind string, colorsOf func(i int) []int, n int) error {
	ownerOf := map[int]int{}
	for i := 0; i < n; i++ {
		for _, c := range colorsOf(i) {
			if prev, ok := ownerOf[c]; ok {
				return fmt.Errorf("%s color %d granted to both thread %d and thread %d", kind, c, prev, i)
			}
			ownerOf[c] = i
		}
	}
	return nil
}
