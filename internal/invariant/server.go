package invariant

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/serve"
)

// ownerClient extends the owner set for the serving layer, where
// handed-out frames are tracked per client instead of per page table.
const ownerClient = ownerPCP + 1

func ownerLabel(o uint8) string {
	if o == ownerClient {
		return "client"
	}
	return ownerName[o]
}

// AuditServer cross-checks the sharded front-end's bookkeeping the
// way Audit checks the sequential kernel's, with frame ownership
// spread over shards and clients instead of zones and page tables.
// The server must be quiescent (no in-flight Alloc/Free and no
// pending refills) for the walk to be coherent.
//
// Checks 1-3 mirror Audit: color-hash correctness of every parked
// frame against the bit-gather reference, single ownership of every
// frame among {shard buddy zone, shard color list, client}, and
// colored-mark consistency. Check 5's loan rules apply per client.
// Check 6 is the cross-shard invariant the sequential kernel never
// needed:
//
//  6. The shards partition the machine. Every bank color is owned by
//     exactly one shard — the shard of its node — and the shards
//     together cover all bank colors; every frame parked or free on a
//     shard lies in that shard's node range; and every outstanding
//     frame either matches its owner's color claim or carries a loan
//     recording which ladder rung degraded it. A same-node color
//     borrow never holds a color inside another client's claim — the
//     plan-disjointness rule, enforced across shards.
func AuditServer(s *serve.Server) *Report {
	m := s.Mapping()
	r := &Report{Frames: m.Frames()}
	owner := make([]uint8, m.Frames())

	claim := func(f phys.Frame, who uint8, what string) {
		if uint64(f) >= r.Frames {
			r.addf("%s holds out-of-range frame %d", what, f)
			return
		}
		if owner[f] != ownerNone {
			r.addf("frame %d owned by both %s and %s", f, ownerLabel(owner[f]), what)
			return
		}
		owner[f] = who
	}

	// Check 6: shard bank-color ownership partitions the color space.
	bankOwner := make(map[int]int)
	for i := 0; i < s.NumShards(); i++ {
		node := s.ShardNode(i)
		for _, bc := range s.ShardBankColors(i) {
			if prev, dup := bankOwner[bc]; dup {
				r.addf("bank color %d owned by both shard %d and shard %d", bc, prev, i)
				continue
			}
			bankOwner[bc] = i
			if m.NodeOfBankColor(bc) != node {
				r.addf("shard %d (node %d) owns bank color %d, which maps to node %d",
					i, node, bc, m.NodeOfBankColor(bc))
			}
		}
	}
	if len(bankOwner) != m.NumBankColors() {
		r.addf("shards own %d of %d bank colors; the shard map must cover the machine",
			len(bankOwner), m.NumBankColors())
	}

	framesPerNode := m.Frames() / uint64(m.Nodes())
	for i := 0; i < s.NumShards(); i++ {
		node := s.ShardNode(i)
		lo := phys.Frame(uint64(node) * framesPerNode)
		hi := lo + phys.Frame(framesPerNode)
		s.VisitShardFree(i, func(head phys.Frame, order int) {
			for f := head; f < head+phys.Frame(uint64(1)<<order); f++ {
				claim(f, ownerBuddy, fmt.Sprintf("shard %d buddy zone", i))
				r.BuddyFree++
				if f < lo || f >= hi {
					r.addf("shard %d (node %d) zone holds frame %d outside node range [%d,%d)",
						i, node, f, lo, hi)
				}
				if s.ColoredFrame(f) {
					r.addf("colored frame %d returned to shard %d's buddy zone; colored frames must repark", f, i)
				}
			}
		})
		s.VisitShardParked(i, func(bc, lc int, f phys.Frame) {
			claim(f, ownerColorList, fmt.Sprintf("shard %d color list [%d][%d]", i, bc, lc))
			r.Parked++
			if !m.ValidFrame(f) {
				return
			}
			if m.NodeOfFrame(f) != node {
				r.addf("frame %d of node %d parked on shard %d, which serves node %d",
					f, m.NodeOfFrame(f), i, node)
			}
			// Recompute from the bit-gather reference, as Audit does.
			if wantBC, wantLC := m.GatherBankColor(f.Base()), m.GatherLLCColor(f.Base()); wantBC != bc || wantLC != lc {
				r.addf("frame %d parked on shard %d color list [%d][%d] but hashes to (%d,%d) under the mapping",
					f, i, bc, lc, wantBC, wantLC)
			}
			if !s.ColoredFrame(f) {
				r.addf("frame %d parked on shard %d color list [%d][%d] without the colored ownership mark", f, i, bc, lc)
			}
		})
	}

	clients := s.Clients()
	holder := make(map[phys.Frame]int)
	var held []phys.Frame // ascending, for deterministic violation order
	s.VisitOutstanding(func(f phys.Frame, clientID int) {
		claim(f, ownerClient, fmt.Sprintf("client %d", clientID))
		r.Mapped++
		if clientID >= len(clients) {
			r.addf("frame %d owned by unknown client %d", f, clientID)
			return
		}
		holder[f] = clientID
		held = append(held, f)
	})

	loanOf := make(map[phys.Frame]kernel.Rung)
	s.VisitLoans(func(f phys.Frame, clientID int, rung kernel.Rung) {
		r.Loans++
		loanOf[f] = rung
		// Check 7, serve side: the flat rung mirror — what Free and the
		// compactor consult — must agree with the ledger entry.
		if rung < 0 || rung >= kernel.NumRungs {
			r.addf("loan of frame %d carries invalid rung %d", f, rung)
		}
		if got := s.LoanRungMirror(f); got != rung {
			r.addf("loan of frame %d at rung %s but the rung mirror holds %s", f, rung, got)
		}
		if got, ok := holder[f]; !ok {
			r.addf("loan of frame %d to client %d (rung %s) is dangling: frame not outstanding", f, clientID, rung)
		} else if got != clientID {
			r.addf("loan of frame %d recorded for client %d but the frame is held by client %d", f, clientID, got)
		}
		if rung != kernel.RungBorrowColor || clientID >= len(clients) {
			return
		}
		// Same rule as Audit check 5: a color borrow must not sit
		// inside another client's private claim. Uncolored borrowers
		// make no color claim and are skipped.
		c := clients[clientID]
		if !c.UsingBank() && !c.UsingLLC() {
			return
		}
		bc, lc := m.FrameBankColor(f), m.FrameLLCColor(f)
		for _, o := range clients {
			if o.ID() == clientID {
				continue
			}
			if c.UsingBank() && o.OwnsBankColor(bc) {
				r.addf("frame %d borrowed by client %d carries bank color %d, which is assigned to client %d",
					f, clientID, bc, o.ID())
			}
			if !c.UsingBank() && c.UsingLLC() && o.OwnsLLCColor(lc) {
				r.addf("frame %d borrowed by client %d carries LLC color %d, which is assigned to client %d",
					f, clientID, lc, o.ID())
			}
		}
	})

	// Check 6, ownership half: every outstanding frame either matches
	// its holder's claim or carries a loan naming the rung that
	// degraded it. This is what makes concurrent placement auditable
	// even though the interleaving is not reproducible.
	for _, f := range held {
		clientID := holder[f]
		if _, onLoan := loanOf[f]; onLoan {
			continue
		}
		c := clients[clientID]
		colored := s.ColoredFrame(f)
		claimed := c.UsingBank() || c.UsingLLC()
		switch {
		case colored && claimed:
			bc, lc := m.FrameBankColor(f), m.FrameLLCColor(f)
			if c.UsingBank() && !c.OwnsBankColor(bc) {
				r.addf("frame %d (bank color %d) held by client %d outside its bank claim with no loan recorded",
					f, bc, clientID)
			}
			if c.UsingLLC() && !c.OwnsLLCColor(lc) {
				r.addf("frame %d (LLC color %d) held by client %d outside its LLC claim with no loan recorded",
					f, lc, clientID)
			}
		case colored && !claimed:
			r.addf("colored frame %d held by uncolored client %d with no loan recorded", f, clientID)
		case !colored && claimed:
			r.addf("zone frame %d held by colored client %d with no loan recorded", f, clientID)
		}
	}

	// Check 7's other direction: no mirror entry without a ledger
	// entry — a stale mirror would settle a nonexistent loan on free.
	for f := phys.Frame(0); uint64(f) < m.Frames(); f++ {
		if rung := s.LoanRungMirror(f); rung != kernel.RungNone {
			if _, ok := loanOf[f]; !ok {
				r.addf("rung mirror marks frame %d at rung %s with no loan on the ledger", f, rung)
			}
		}
	}

	for _, o := range owner {
		if o == ownerNone {
			r.Unaccounted++
		}
	}
	return r
}
