// Package topology models the processor/memory topology of a NUMA
// machine: sockets, memory nodes (one memory controller each), cores,
// and the interconnect hop distances between them.
//
// The default preset mirrors the dual-socket AMD Opteron 6128 platform
// used in the TintMalloc paper: 2 sockets, 2 memory nodes per socket,
// 4 cores per node (16 cores total), HyperTransport-style links where
// cores within a node are 1 hop from their local controller, 2 hops
// from the other controller on the same socket, and 3 hops from
// controllers on the remote socket.
package topology

import (
	"errors"
	"fmt"
)

// NodeID identifies a memory node (equivalently: a memory controller).
type NodeID int

// CoreID identifies a hardware core.
type CoreID int

// SocketID identifies a physical processor package.
type SocketID int

// Topology describes an immutable machine layout. Construct with New
// or a preset; the zero value is not usable.
type Topology struct {
	sockets       int
	nodesPerSock  int
	coresPerNode  int
	hop           [][]int // [node][node] controller-to-controller hops
	coreNode      []NodeID
	coreSocket    []SocketID
	nodeSocket    []SocketID
	nodeFirstCore []CoreID
}

// Config parameterizes New.
type Config struct {
	Sockets        int // number of processor packages
	NodesPerSocket int // memory nodes (controllers) per socket
	CoresPerNode   int // cores attached to each node
	// IntraNodeHops is the distance from a core to its local
	// controller. IntraSocketHops is the distance to another
	// controller on the same socket; InterSocketHops crosses the
	// package boundary. All must be >= 1 and non-decreasing.
	IntraNodeHops   int
	IntraSocketHops int
	InterSocketHops int
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Sockets < 1:
		return fmt.Errorf("topology: Sockets must be >= 1, got %d", c.Sockets)
	case c.NodesPerSocket < 1:
		return fmt.Errorf("topology: NodesPerSocket must be >= 1, got %d", c.NodesPerSocket)
	case c.CoresPerNode < 1:
		return fmt.Errorf("topology: CoresPerNode must be >= 1, got %d", c.CoresPerNode)
	case c.IntraNodeHops < 1:
		return fmt.Errorf("topology: IntraNodeHops must be >= 1, got %d", c.IntraNodeHops)
	case c.IntraSocketHops < c.IntraNodeHops:
		return fmt.Errorf("topology: IntraSocketHops (%d) must be >= IntraNodeHops (%d)",
			c.IntraSocketHops, c.IntraNodeHops)
	case c.InterSocketHops < c.IntraSocketHops:
		return fmt.Errorf("topology: InterSocketHops (%d) must be >= IntraSocketHops (%d)",
			c.InterSocketHops, c.IntraSocketHops)
	}
	return nil
}

// ErrInvalidConfig wraps configuration validation failures from New.
var ErrInvalidConfig = errors.New("topology: invalid config")

// New builds a Topology from a validated Config.
func New(c Config) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	nNodes := c.Sockets * c.NodesPerSocket
	nCores := nNodes * c.CoresPerNode
	t := &Topology{
		sockets:       c.Sockets,
		nodesPerSock:  c.NodesPerSocket,
		coresPerNode:  c.CoresPerNode,
		hop:           make([][]int, nNodes),
		coreNode:      make([]NodeID, nCores),
		coreSocket:    make([]SocketID, nCores),
		nodeSocket:    make([]SocketID, nNodes),
		nodeFirstCore: make([]CoreID, nNodes),
	}
	for n := 0; n < nNodes; n++ {
		t.nodeSocket[n] = SocketID(n / c.NodesPerSocket)
		t.nodeFirstCore[n] = CoreID(n * c.CoresPerNode)
		t.hop[n] = make([]int, nNodes)
	}
	for a := 0; a < nNodes; a++ {
		for b := 0; b < nNodes; b++ {
			switch {
			case a == b:
				t.hop[a][b] = c.IntraNodeHops
			case t.nodeSocket[a] == t.nodeSocket[b]:
				t.hop[a][b] = c.IntraSocketHops
			default:
				t.hop[a][b] = c.InterSocketHops
			}
		}
	}
	for cID := 0; cID < nCores; cID++ {
		t.coreNode[cID] = NodeID(cID / c.CoresPerNode)
		t.coreSocket[cID] = t.nodeSocket[t.coreNode[cID]]
	}
	return t, nil
}

// Opteron6128 returns the paper's experimental platform: 2 sockets,
// 2 memory nodes per socket (4 controllers), 4 cores per node
// (16 cores), with 1/2/3 hop distances.
func Opteron6128() *Topology {
	t, err := New(Config{
		Sockets:         2,
		NodesPerSocket:  2,
		CoresPerNode:    4,
		IntraNodeHops:   1,
		IntraSocketHops: 2,
		InterSocketHops: 3,
	})
	if err != nil {
		panic("topology: Opteron6128 preset invalid: " + err.Error())
	}
	return t
}

// Sockets returns the number of processor packages.
func (t *Topology) Sockets() int { return t.sockets }

// Nodes returns the total number of memory nodes (controllers).
func (t *Topology) Nodes() int { return t.sockets * t.nodesPerSock }

// Cores returns the total number of cores.
func (t *Topology) Cores() int { return len(t.coreNode) }

// CoresPerNode returns the number of cores attached to each node.
func (t *Topology) CoresPerNode() int { return t.coresPerNode }

// NodeOfCore returns the memory node local to core c.
func (t *Topology) NodeOfCore(c CoreID) NodeID {
	return t.coreNode[c]
}

// SocketOfCore returns the package holding core c.
func (t *Topology) SocketOfCore(c CoreID) SocketID {
	return t.coreSocket[c]
}

// SocketOfNode returns the package holding node n.
func (t *Topology) SocketOfNode(n NodeID) SocketID {
	return t.nodeSocket[n]
}

// CoresOfNode returns the cores local to node n, in ascending order.
func (t *Topology) CoresOfNode(n NodeID) []CoreID {
	out := make([]CoreID, t.coresPerNode)
	first := t.nodeFirstCore[n]
	for i := range out {
		out[i] = first + CoreID(i)
	}
	return out
}

// Hops returns the interconnect distance from core c to node n's
// memory controller, measured in HyperTransport-style hops.
func (t *Topology) Hops(c CoreID, n NodeID) int {
	return t.hop[t.coreNode[c]][n]
}

// NodeHops returns the controller-to-controller hop distance.
func (t *Topology) NodeHops(a, b NodeID) int { return t.hop[a][b] }

// ValidCore reports whether c names a core in this topology.
func (t *Topology) ValidCore(c CoreID) bool {
	return c >= 0 && int(c) < len(t.coreNode)
}

// ValidNode reports whether n names a node in this topology.
func (t *Topology) ValidNode(n NodeID) bool {
	return n >= 0 && int(n) < t.Nodes()
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("topology{%d sockets, %d nodes, %d cores}",
		t.sockets, t.Nodes(), t.Cores())
}
