package topology

import (
	"testing"
	"testing/quick"
)

func TestOpteron6128Shape(t *testing.T) {
	top := Opteron6128()
	if got, want := top.Sockets(), 2; got != want {
		t.Errorf("Sockets() = %d, want %d", got, want)
	}
	if got, want := top.Nodes(), 4; got != want {
		t.Errorf("Nodes() = %d, want %d", got, want)
	}
	if got, want := top.Cores(), 16; got != want {
		t.Errorf("Cores() = %d, want %d", got, want)
	}
	if got, want := top.CoresPerNode(), 4; got != want {
		t.Errorf("CoresPerNode() = %d, want %d", got, want)
	}
}

func TestOpteron6128HopDistances(t *testing.T) {
	top := Opteron6128()
	// Core 0 is on node 0, socket 0.
	cases := []struct {
		core CoreID
		node NodeID
		want int
	}{
		{0, 0, 1},  // local
		{0, 1, 2},  // same socket, other node
		{0, 2, 3},  // remote socket
		{0, 3, 3},  // remote socket
		{4, 1, 1},  // core 4 local to node 1
		{4, 0, 2},  // core 4 to node 0: same socket
		{8, 2, 1},  // core 8 local to node 2
		{8, 0, 3},  // cross socket
		{15, 3, 1}, // last core local to last node
		{15, 0, 3},
	}
	for _, c := range cases {
		if got := top.Hops(c.core, c.node); got != c.want {
			t.Errorf("Hops(core %d, node %d) = %d, want %d", c.core, c.node, got, c.want)
		}
	}
}

func TestCoreNodeAssignment(t *testing.T) {
	top := Opteron6128()
	for c := CoreID(0); int(c) < top.Cores(); c++ {
		want := NodeID(int(c) / 4)
		if got := top.NodeOfCore(c); got != want {
			t.Errorf("NodeOfCore(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestCoresOfNodeRoundTrip(t *testing.T) {
	top := Opteron6128()
	seen := make(map[CoreID]bool)
	for n := NodeID(0); int(n) < top.Nodes(); n++ {
		for _, c := range top.CoresOfNode(n) {
			if seen[c] {
				t.Fatalf("core %d listed under two nodes", c)
			}
			seen[c] = true
			if top.NodeOfCore(c) != n {
				t.Errorf("CoresOfNode(%d) includes core %d whose NodeOfCore is %d",
					n, c, top.NodeOfCore(c))
			}
		}
	}
	if len(seen) != top.Cores() {
		t.Errorf("CoresOfNode covered %d cores, want %d", len(seen), top.Cores())
	}
}

func TestSocketOfNode(t *testing.T) {
	top := Opteron6128()
	wants := []SocketID{0, 0, 1, 1}
	for n, want := range wants {
		if got := top.SocketOfNode(NodeID(n)); got != want {
			t.Errorf("SocketOfNode(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Sockets: 0, NodesPerSocket: 2, CoresPerNode: 4, IntraNodeHops: 1, IntraSocketHops: 2, InterSocketHops: 3},
		{Sockets: 2, NodesPerSocket: 0, CoresPerNode: 4, IntraNodeHops: 1, IntraSocketHops: 2, InterSocketHops: 3},
		{Sockets: 2, NodesPerSocket: 2, CoresPerNode: 0, IntraNodeHops: 1, IntraSocketHops: 2, InterSocketHops: 3},
		{Sockets: 2, NodesPerSocket: 2, CoresPerNode: 4, IntraNodeHops: 0, IntraSocketHops: 2, InterSocketHops: 3},
		{Sockets: 2, NodesPerSocket: 2, CoresPerNode: 4, IntraNodeHops: 2, IntraSocketHops: 1, InterSocketHops: 3},
		{Sockets: 2, NodesPerSocket: 2, CoresPerNode: 4, IntraNodeHops: 1, IntraSocketHops: 3, InterSocketHops: 2},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("New(bad config %d) succeeded, want error", i)
		}
	}
	good := Config{Sockets: 1, NodesPerSocket: 1, CoresPerNode: 1,
		IntraNodeHops: 1, IntraSocketHops: 1, InterSocketHops: 1}
	if _, err := New(good); err != nil {
		t.Errorf("New(minimal config) failed: %v", err)
	}
}

func TestHopSymmetryAndMonotonicity(t *testing.T) {
	cfg := Config{Sockets: 3, NodesPerSocket: 2, CoresPerNode: 2,
		IntraNodeHops: 1, IntraSocketHops: 2, InterSocketHops: 5}
	top, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for a := NodeID(0); int(a) < top.Nodes(); a++ {
		for b := NodeID(0); int(b) < top.Nodes(); b++ {
			if top.NodeHops(a, b) != top.NodeHops(b, a) {
				t.Errorf("hop asymmetry between nodes %d and %d", a, b)
			}
			if a == b && top.NodeHops(a, b) != 1 {
				t.Errorf("self hops of node %d = %d, want 1", a, top.NodeHops(a, b))
			}
			if a != b && top.NodeHops(a, b) < cfg.IntraSocketHops {
				t.Errorf("cross-node hops %d->%d = %d below intra-socket %d",
					a, b, top.NodeHops(a, b), cfg.IntraSocketHops)
			}
		}
	}
}

func TestValidCoreValidNode(t *testing.T) {
	top := Opteron6128()
	if top.ValidCore(-1) || top.ValidCore(16) {
		t.Error("ValidCore accepted out-of-range core")
	}
	if !top.ValidCore(0) || !top.ValidCore(15) {
		t.Error("ValidCore rejected in-range core")
	}
	if top.ValidNode(-1) || top.ValidNode(4) {
		t.Error("ValidNode accepted out-of-range node")
	}
	if !top.ValidNode(0) || !top.ValidNode(3) {
		t.Error("ValidNode rejected in-range node")
	}
}

// Property: for any valid small config, every core's local node is the
// unique minimum-hop node.
func TestLocalNodeIsMinHop(t *testing.T) {
	f := func(sock, nps, cpn uint8) bool {
		cfg := Config{
			Sockets:        int(sock%3) + 1,
			NodesPerSocket: int(nps%3) + 1,
			CoresPerNode:   int(cpn%4) + 1,
			IntraNodeHops:  1, IntraSocketHops: 2, InterSocketHops: 3,
		}
		top, err := New(cfg)
		if err != nil {
			return false
		}
		for c := CoreID(0); int(c) < top.Cores(); c++ {
			local := top.NodeOfCore(c)
			for n := NodeID(0); int(n) < top.Nodes(); n++ {
				if n == local {
					if top.Hops(c, n) != 1 {
						return false
					}
				} else if top.Hops(c, n) <= 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringer(t *testing.T) {
	got := Opteron6128().String()
	want := "topology{2 sockets, 4 nodes, 16 cores}"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
