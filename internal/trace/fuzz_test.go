package trace

import (
	"strings"
	"testing"
)

// FuzzRead ensures the trace parser never panics and either returns
// events or a clean error on arbitrary input.
func FuzzRead(f *testing.F) {
	f.Add("thread,phase,va,pa,write,start,done,level,fault\n0,p,0x1000,0x2000,true,10,55,3,0\n")
	f.Add("thread,phase,va,pa,write,start,done,level,fault\n")
	f.Add("")
	f.Add("garbage")
	f.Add("thread,phase,va,pa,write,start,done,level,fault\n0,p,zzz,0x2000,true,10,55,3,0\n")
	f.Add("thread,phase,va,pa,write,start,done,level,fault\n0,p,0x1,0x2,maybe,10,55,99,0\n")
	f.Fuzz(func(t *testing.T, input string) {
		events, err := Read(strings.NewReader(input))
		if err != nil {
			return // clean rejection
		}
		// Parsed events must survive a write/read round trip.
		var sb strings.Builder
		w, werr := NewWriter(&sb)
		if werr != nil {
			t.Fatal(werr)
		}
		for _, e := range events {
			w.Write(e)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if events[i] != again[i] {
				t.Fatalf("event %d changed in round trip:\n%+v\n%+v", i, events[i], again[i])
			}
		}
	})
}
