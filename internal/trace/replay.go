package trace

import (
	"fmt"
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Replay turns a captured trace back into engine phases so the same
// access stream can be re-executed — typically under a different
// coloring policy than the one it was recorded with (profile, then
// recolor). Reconstruction rules:
//
//   - Virtual addresses are rebased: the recording's VA span is
//     re-reserved with one Mmap per span on the replaying master
//     thread, preserving page adjacency and cross-thread sharing.
//     First touch during replay follows the replay's policies, so
//     physical placement is recomputed, not copied.
//   - Per-thread program order and relative compute gaps are
//     preserved: the think time between an access's issue and the
//     previous access's completion replays as Compute cycles.
//   - Phase boundaries recorded in the trace become engine phases
//     with the same names (and therefore the same barriers).
type Replay struct {
	phases []replayPhase
	loVA   uint64
	hiVA   uint64 // exclusive
}

type replayOp struct {
	va      uint64
	write   bool
	compute clock.Dur
}

type replayPhase struct {
	name    string
	perThrd map[int][]replayOp
}

// NewReplay analyzes a trace. Events must be in the engine's
// emission order (virtual-time order), as produced by Writer.
func NewReplay(events []Event) (*Replay, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	r := &Replay{loVA: ^uint64(0)}
	lastDone := map[int]clock.Time{}
	var cur *replayPhase
	for _, e := range events {
		if cur == nil || cur.name != e.Phase {
			r.phases = append(r.phases, replayPhase{name: e.Phase, perThrd: map[int][]replayOp{}})
			cur = &r.phases[len(r.phases)-1]
			// Threads restart their gap accounting at phase entry.
			lastDone = map[int]clock.Time{}
		}
		var compute clock.Dur
		if prev, ok := lastDone[e.Thread]; ok && e.Start > prev {
			compute = clock.Dur(e.Start - prev)
		}
		// Exclude fault overhead from the replayed think time; the
		// replay's own faults will be charged by the kernel.
		if compute > e.FaultCycles {
			compute -= e.FaultCycles
		}
		cur.perThrd[e.Thread] = append(cur.perThrd[e.Thread], replayOp{
			va: e.VA, write: e.Write, compute: compute,
		})
		lastDone[e.Thread] = e.Done
		page := e.VA &^ (phys.PageSize - 1)
		if page < r.loVA {
			r.loVA = page
		}
		if page+phys.PageSize > r.hiVA {
			r.hiVA = page + phys.PageSize
		}
	}
	return r, nil
}

// Span returns the VA range the recording touched.
func (r *Replay) Span() (lo, hi uint64) { return r.loVA, r.hiVA }

// Phases returns the recorded phase names in order.
func (r *Replay) Phases() []string {
	out := make([]string, len(r.phases))
	for i, p := range r.phases {
		out[i] = p.name
	}
	return out
}

// Threads returns the sorted thread ids present in the trace.
func (r *Replay) Threads() []int {
	set := map[int]bool{}
	for _, p := range r.phases {
		for t := range p.perThrd {
			set[t] = true
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Build reserves the replay address space on the master thread and
// constructs the engine phases for nThreads threads. Recorded thread
// ids must be < nThreads.
func (r *Replay) Build(threads []engine.Thread) ([]engine.Phase, error) {
	for _, t := range r.Threads() {
		if t >= len(threads) {
			return nil, fmt.Errorf("trace: recorded thread %d but replay has only %d threads", t, len(threads))
		}
	}
	span := r.hiVA - r.loVA
	base, err := threads[0].Task.Mmap(0, span, 0)
	if err != nil {
		return nil, err
	}
	rebase := func(va uint64) uint64 { return base + (va - r.loVA) }

	var out []engine.Phase
	for _, p := range r.phases {
		bodies := make([]engine.Work, len(threads))
		for tid, ops := range p.perThrd {
			ops := ops
			bodies[tid] = func(yield func(engine.Op) bool) {
				for _, op := range ops {
					if !yield(engine.Op{VA: rebase(op.va), Write: op.write, Compute: op.compute}) {
						return
					}
				}
			}
		}
		out = append(out, engine.Phase{Name: p.name, Work: bodies})
	}
	return out, nil
}
