// Package trace records, summarizes and replays the memory-access
// streams of simulated runs. A trace makes TintMalloc's effects
// inspectable at single-access granularity — which references went
// remote, which level served them, where the page-fault time went —
// and lets a captured workload be re-executed under a different
// coloring policy (the profile-then-recolor workflow NUMA profiling
// papers like Memprof motivate).
//
// The on-disk format is line-oriented CSV with a header:
//
//	thread,phase,va,pa,write,start,done,level,fault
//
// chosen over a binary encoding so traces are greppable and
// spreadsheet-ready; a multi-million-access trace is tens of MB.
package trace

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Event mirrors engine.TraceEvent in a storable form.
type Event = engine.TraceEvent

// header is the CSV column layout.
var header = []string{"thread", "phase", "va", "pa", "write", "start", "done", "level", "fault"}

// Writer streams events to CSV.
type Writer struct {
	cw  *csv.Writer
	n   uint64
	err error
}

// NewWriter writes the header and returns a streaming writer.
func NewWriter(w io.Writer) (*Writer, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &Writer{cw: cw}, nil
}

// Write appends one event. Errors are sticky and re-reported by
// Flush.
func (w *Writer) Write(e Event) {
	if w.err != nil {
		return
	}
	w.err = w.cw.Write([]string{
		strconv.Itoa(e.Thread),
		e.Phase,
		"0x" + strconv.FormatUint(e.VA, 16),
		"0x" + strconv.FormatUint(uint64(e.PA), 16),
		strconv.FormatBool(e.Write),
		strconv.FormatUint(uint64(e.Start), 10),
		strconv.FormatUint(uint64(e.Done), 10),
		strconv.Itoa(int(e.Level)),
		strconv.FormatUint(uint64(e.FaultCycles), 10),
	})
	// Only successful writes count: Events() backs the "N events ->
	// file" report, and counting a row the CSV layer just rejected
	// would overstate the trace by the failed row.
	if w.err == nil {
		w.n++
	}
}

// Events returns the number of events successfully written.
func (w *Writer) Events() uint64 { return w.n }

// Flush flushes buffered rows and reports any deferred error.
func (w *Writer) Flush() error {
	w.cw.Flush()
	if w.err != nil {
		return w.err
	}
	return w.cw.Error()
}

// Tracer adapts the writer to the engine's hook.
func (w *Writer) Tracer() engine.Tracer {
	return func(e engine.TraceEvent) { w.Write(e) }
}

// Read parses a full trace.
func Read(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if len(first) != len(header) || first[0] != "thread" {
		return nil, fmt.Errorf("trace: unrecognized header %v", first)
	}
	var out []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			// Mid-file read failures (truncated rows, bare quotes, a
			// disk error) get the same line context as parse failures,
			// so a corrupt multi-MB trace points at the bad row.
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		e, err := parseRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
}

func parseRecord(rec []string) (Event, error) {
	var e Event
	if len(rec) != len(header) {
		return e, fmt.Errorf("want %d fields, got %d", len(header), len(rec))
	}
	var err error
	if e.Thread, err = strconv.Atoi(rec[0]); err != nil {
		return e, fmt.Errorf("thread: %w", err)
	}
	e.Phase = rec[1]
	va, err := strconv.ParseUint(rec[2], 0, 64)
	if err != nil {
		return e, fmt.Errorf("va: %w", err)
	}
	e.VA = va
	pa, err := strconv.ParseUint(rec[3], 0, 64)
	if err != nil {
		return e, fmt.Errorf("pa: %w", err)
	}
	e.PA = phys.Addr(pa)
	if e.Write, err = strconv.ParseBool(rec[4]); err != nil {
		return e, fmt.Errorf("write: %w", err)
	}
	start, err := strconv.ParseUint(rec[5], 10, 64)
	if err != nil {
		return e, fmt.Errorf("start: %w", err)
	}
	e.Start = clock.Time(start)
	done, err := strconv.ParseUint(rec[6], 10, 64)
	if err != nil {
		return e, fmt.Errorf("done: %w", err)
	}
	e.Done = clock.Time(done)
	lvl, err := strconv.Atoi(rec[7])
	if err != nil || lvl < 0 || lvl > int(mem.LevelDRAMRemote) {
		return e, fmt.Errorf("level: %v", rec[7])
	}
	e.Level = mem.Level(lvl)
	fault, err := strconv.ParseUint(rec[8], 10, 64)
	if err != nil {
		return e, fmt.Errorf("fault: %w", err)
	}
	e.FaultCycles = clock.Dur(fault)
	return e, nil
}

// ThreadSummary aggregates one thread's accesses.
type ThreadSummary struct {
	Accesses     uint64
	Writes       uint64
	ByLevel      [int(mem.LevelDRAMRemote) + 1]uint64
	TotalLatency clock.Dur
	FaultCycles  clock.Dur
}

// Summary aggregates a trace per thread and per level.
type Summary struct {
	Threads map[int]*ThreadSummary
	Total   ThreadSummary
}

// Summarize folds a trace into per-thread and total counters.
func Summarize(events []Event) *Summary {
	s := &Summary{Threads: make(map[int]*ThreadSummary)}
	add := func(ts *ThreadSummary, e Event) {
		ts.Accesses++
		if e.Write {
			ts.Writes++
		}
		ts.ByLevel[e.Level]++
		ts.TotalLatency += clock.Dur(e.Done - e.Start)
		ts.FaultCycles += e.FaultCycles
	}
	for _, e := range events {
		ts := s.Threads[e.Thread]
		if ts == nil {
			ts = &ThreadSummary{}
			s.Threads[e.Thread] = ts
		}
		add(ts, e)
		add(&s.Total, e)
	}
	return s
}

// RemoteFrac returns the fraction of accesses served by remote DRAM.
func (t *ThreadSummary) RemoteFrac() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.ByLevel[mem.LevelDRAMRemote]) / float64(t.Accesses)
}

// MeanLatency returns average cycles per access.
func (t *ThreadSummary) MeanLatency() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.TotalLatency) / float64(t.Accesses)
}

// PhaseSummary aggregates a trace per phase (in first-appearance
// order), exposing where each program section's time and locality
// went.
type PhaseSummary struct {
	Order  []string
	Phases map[string]*ThreadSummary
}

// SummarizeByPhase folds a trace into per-phase counters.
func SummarizeByPhase(events []Event) *PhaseSummary {
	s := &PhaseSummary{Phases: map[string]*ThreadSummary{}}
	for _, e := range events {
		ts := s.Phases[e.Phase]
		if ts == nil {
			ts = &ThreadSummary{}
			s.Phases[e.Phase] = ts
			s.Order = append(s.Order, e.Phase)
		}
		ts.Accesses++
		if e.Write {
			ts.Writes++
		}
		ts.ByLevel[e.Level]++
		ts.TotalLatency += clock.Dur(e.Done - e.Start)
		ts.FaultCycles += e.FaultCycles
	}
	return s
}

// WritePhaseSummary prints a per-phase table.
func WritePhaseSummary(w io.Writer, s *PhaseSummary) {
	fmt.Fprintf(w, "%-16s %10s %8s %10s %10s\n",
		"phase", "accesses", "remote", "avg cyc", "fault cyc")
	for _, name := range s.Order {
		ts := s.Phases[name]
		fmt.Fprintf(w, "%-16s %10d %7.1f%% %10.1f %10d\n",
			name, ts.Accesses, ts.RemoteFrac()*100, ts.MeanLatency(), ts.FaultCycles)
	}
}

// WriteSummary prints a per-thread table. Rows cover every thread ID
// present in the trace, in ascending order: thread IDs are sparse
// whenever a configuration pins fewer threads than cores (e.g. cores
// {0, 4, 8, 12}), so guessing a dense 0..N-1 range would silently
// drop rows that still count toward the total line.
func WriteSummary(w io.Writer, s *Summary) {
	fmt.Fprintf(w, "%-7s %10s %8s %8s %8s %8s %10s %10s %10s\n",
		"thread", "accesses", "L1", "L2", "L3", "DRAM", "remote", "avg cyc", "fault cyc")
	row := func(name string, ts *ThreadSummary) {
		dram := ts.ByLevel[mem.LevelDRAMLocal] + ts.ByLevel[mem.LevelDRAMRemote]
		fmt.Fprintf(w, "%-7s %10d %8d %8d %8d %8d %9.1f%% %10.1f %10d\n",
			name, ts.Accesses,
			ts.ByLevel[mem.LevelL1], ts.ByLevel[mem.LevelL2], ts.ByLevel[mem.LevelL3],
			dram, ts.RemoteFrac()*100, ts.MeanLatency(), ts.FaultCycles)
	}
	ids := make([]int, 0, len(s.Threads))
	for id := range s.Threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		row(fmt.Sprintf("t%d", id), s.Threads[id])
	}
	row("total", &s.Total)
}
