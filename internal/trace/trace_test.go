package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/engine"
	"github.com/tintmalloc/tintmalloc/internal/heap"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/mem"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

const testMem = 256 << 20

type rig struct {
	k  *kernel.Kernel
	ms *mem.System
	e  *engine.Engine
}

func newRig(t *testing.T, cores []topology.CoreID, pol policy.Policy) *rig {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := mem.New(top, m, mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	asn, err := policy.Plan(pol, m, top, cores)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProcess()
	var threads []engine.Thread
	for i, c := range cores {
		task, err := p.NewTask(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := policy.Apply(task, asn[i]); err != nil {
			t.Fatal(err)
		}
		threads = append(threads, engine.Thread{Task: task, Heap: heap.New(task)})
	}
	e, err := engine.New(ms, threads)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, ms: ms, e: e}
}

// record runs a workload with tracing and returns the raw CSV.
func record(t *testing.T, pol policy.Policy) (string, uint64) {
	t.Helper()
	r := newRig(t, []topology.CoreID{0, 4}, pol)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r.e.SetTracer(w.Tracer())
	wl, err := workload.ByName("equake")
	if err != nil {
		t.Fatal(err)
	}
	phases, err := wl.Build(r.e.Threads(), workload.Params{Seed: 5, Scale: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.e.Run(phases)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = res
	return buf.String(), w.Events()
}

func TestWriteReadRoundTrip(t *testing.T) {
	csvText, n := record(t, policy.Buddy)
	if n == 0 {
		t.Fatal("no events recorded")
	}
	events, err := Read(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != n {
		t.Fatalf("read %d events, wrote %d", len(events), n)
	}
	// Events are emitted in processing order; per-thread, Done must
	// be non-decreasing.
	lastDone := map[int]uint64{}
	for i, e := range events {
		if e.Done < e.Start {
			t.Fatalf("event %d: done %d < start %d", i, e.Done, e.Start)
		}
		if uint64(e.Done) < lastDone[e.Thread] {
			t.Fatalf("event %d: thread %d time went backwards", i, e.Thread)
		}
		lastDone[e.Thread] = uint64(e.Done)
		if e.PA == 0 && e.VA == 0 {
			t.Fatalf("event %d: empty addresses", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not,a,trace\n1,2,3\n")); err == nil {
		t.Error("Read accepted bad header")
	}
	bad := "thread,phase,va,pa,write,start,done,level,fault\nX,p,0x1,0x1,false,0,1,0,0\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("Read accepted bad thread field")
	}
	bad2 := "thread,phase,va,pa,write,start,done,level,fault\n0,p,0x1,0x1,false,0,1,99,0\n"
	if _, err := Read(strings.NewReader(bad2)); err == nil {
		t.Error("Read accepted out-of-range level")
	}
}

func TestSummarize(t *testing.T) {
	csvText, _ := record(t, policy.Buddy)
	events, err := Read(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(events)
	if len(s.Threads) != 2 {
		t.Fatalf("summary covers %d threads, want 2", len(s.Threads))
	}
	var sum uint64
	for _, ts := range s.Threads {
		sum += ts.Accesses
		var lvl uint64
		for _, c := range ts.ByLevel {
			lvl += c
		}
		if lvl != ts.Accesses {
			t.Errorf("level histogram (%d) does not cover accesses (%d)", lvl, ts.Accesses)
		}
	}
	if sum != s.Total.Accesses {
		t.Errorf("total %d != per-thread sum %d", s.Total.Accesses, sum)
	}
	if s.Total.MeanLatency() <= 0 {
		t.Error("MeanLatency not positive")
	}
	var sb strings.Builder
	WriteSummary(&sb, s)
	if !strings.Contains(sb.String(), "total") || !strings.Contains(sb.String(), "t1") {
		t.Errorf("summary table incomplete:\n%s", sb.String())
	}
}

// TestWriteSummarySparseThreadIDs is the regression test for the
// dropped-row bug: configurations that pin fewer threads than cores
// produce sparse thread IDs, and the summary table used to iterate
// 0..len(Threads)-1, silently skipping every row whose ID fell
// outside that range while still counting it in the total line.
func TestWriteSummarySparseThreadIDs(t *testing.T) {
	mk := func(thread int, n uint64) []Event {
		out := make([]Event, n)
		for i := range out {
			out[i] = Event{Thread: thread, Phase: "p", VA: 0x1000, PA: 0x2000,
				Start: 10, Done: 20}
		}
		return out
	}
	// Threads 2 and 7 of an 8-core config: both outside [0, 2).
	events := append(mk(2, 3), mk(7, 5)...)
	s := Summarize(events)
	if len(s.Threads) != 2 {
		t.Fatalf("summary covers %d threads, want 2", len(s.Threads))
	}
	var sb strings.Builder
	WriteSummary(&sb, s)
	got := sb.String()
	for _, want := range []string{"t2", "t7", "total"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary table missing %q row:\n%s", want, got)
		}
	}
	// Every per-thread access must be visible in its row: t2 carries 3
	// accesses, t7 carries 5, the total 8.
	for _, want := range [][2]string{{"t2", "3"}, {"t7", "5"}, {"total", "8"}} {
		for _, line := range strings.Split(got, "\n") {
			f := strings.Fields(line)
			if len(f) > 1 && f[0] == want[0] && f[1] != want[1] {
				t.Errorf("%s row reports %s accesses, want %s:\n%s", want[0], f[1], want[1], got)
			}
		}
	}
	// Rows come out in ascending thread order.
	if strings.Index(got, "t2") > strings.Index(got, "t7") {
		t.Errorf("rows out of order:\n%s", got)
	}
}

// failingWriter fails every write; used to prove the event counter
// only advances on successful CSV writes.
type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("injected write failure")
}

func TestWriterCountsOnlySuccessfulWrites(t *testing.T) {
	// The csv.Writer buffers through bufio, so small rows fail only at
	// Flush — but a field larger than the buffer forces a write-through
	// that fails inside Write itself. Events() must not count that row.
	w, err := NewWriter(failingWriter{})
	if err != nil {
		t.Fatal(err) // header is buffered; NewWriter itself succeeds
	}
	w.Write(Event{Thread: 0, Phase: strings.Repeat("x", 64<<10)})
	if got := w.Events(); got != 0 {
		t.Errorf("Events() = %d after a failed write, want 0", got)
	}
	// The error is sticky: later writes are dropped, not counted.
	w.Write(Event{Thread: 1, Phase: "p"})
	if got := w.Events(); got != 0 {
		t.Errorf("Events() = %d after writes into a failed writer, want 0", got)
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush did not report the injected write failure")
	}
}

func TestReadErrorContext(t *testing.T) {
	const hdr = "thread,phase,va,pa,write,start,done,level,fault\n"
	good := "0,p,0x1000,0x2000,false,0,1,0,0\n"
	cases := []struct {
		name string
		body string // appended after the header
		want string // substring the error must carry
	}{
		{"truncated row", good + "0,p,0x1\n", "line 3"},
		{"truncated first row", "0,p\n", "line 2"},
		{"bare quote", good + "0,p,\"0x1\n", "line 3"},
		{"bad hex pa", "0,p,0x1000,0xZZ,false,0,1,0,0\n", "pa:"},
		{"bad hex va", good + "0,p,zz,0x2000,false,0,1,0,0\n", "va:"},
		{"out-of-range level", "0,p,0x1000,0x2000,false,0,1,99,0\n", "level"},
		{"negative level", "0,p,0x1000,0x2000,false,0,1,-1,0\n", "level"},
		{"bad write flag", "0,p,0x1000,0x2000,maybe,0,1,0,0\n", "write:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(hdr + tc.body))
			if err == nil {
				t.Fatalf("Read accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), "trace: line ") {
				t.Errorf("error lacks line context: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q missing %q", err, tc.want)
			}
		})
	}
}

func TestReplayPreservesStructure(t *testing.T) {
	csvText, _ := record(t, policy.Buddy)
	events, err := Read(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(events)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Threads(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("replay threads = %v", got)
	}
	if names := rep.Phases(); len(names) != 2 || names[0] != "init" || names[1] != "smvp" {
		t.Fatalf("replay phases = %v", names)
	}
	lo, hi := rep.Span()
	if hi <= lo {
		t.Fatal("empty VA span")
	}

	// Re-execute under MEM+LLC coloring: same access count, zero
	// remote accesses (the recolor payoff).
	r2 := newRig(t, []topology.CoreID{0, 4}, policy.MEMLLC)
	phases, err := rep.Build(r2.e.Threads())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.e.Run(phases); err != nil {
		t.Fatal(err)
	}
	tot := r2.ms.TotalStats()
	if tot.Accesses != uint64(len(events)) {
		t.Errorf("replay executed %d accesses, recorded %d", tot.Accesses, len(events))
	}
	if tot.RemoteDRAM != 0 {
		t.Errorf("recolored replay still issued %d remote accesses", tot.RemoteDRAM)
	}
}

func TestReplayThreadCountMismatch(t *testing.T) {
	csvText, _ := record(t, policy.Buddy)
	events, err := Read(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(events)
	if err != nil {
		t.Fatal(err)
	}
	r2 := newRig(t, []topology.CoreID{0}, policy.Buddy) // too few threads
	if _, err := rep.Build(r2.e.Threads()); err == nil {
		t.Error("Build accepted too few threads")
	}
}

func TestNewReplayEmpty(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Error("NewReplay accepted empty trace")
	}
}

func TestReplayDeterministic(t *testing.T) {
	csvText, _ := record(t, policy.Buddy)
	events, err := Read(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	run := func() uint64 {
		rep, err := NewReplay(events)
		if err != nil {
			t.Fatal(err)
		}
		r := newRig(t, []topology.CoreID{0, 4}, policy.MEMLLC)
		phases, err := rep.Build(r.e.Threads())
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.e.Run(phases)
		if err != nil {
			t.Fatal(err)
		}
		return uint64(res.Runtime)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("replay nondeterministic: %d vs %d", a, b)
	}
}

func TestSummarizeByPhase(t *testing.T) {
	csvText, _ := record(t, policy.Buddy)
	events, err := Read(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	s := SummarizeByPhase(events)
	if len(s.Order) != 2 || s.Order[0] != "init" || s.Order[1] != "smvp" {
		t.Fatalf("phase order = %v", s.Order)
	}
	var sum uint64
	for _, ts := range s.Phases {
		sum += ts.Accesses
	}
	if sum != uint64(len(events)) {
		t.Errorf("phase accesses %d != events %d", sum, len(events))
	}
	var sb strings.Builder
	WritePhaseSummary(&sb, s)
	if !strings.Contains(sb.String(), "smvp") {
		t.Error("phase table missing phase row")
	}
}
