// External test package: invariant imports buddy, so the structural
// check is wired in from buddy_test to avoid an import cycle.
package buddy_test

import (
	"math/rand"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

type block struct {
	f     phys.Frame
	order int
}

// A long seeded mixed-order alloc/free storm must leave the free
// lists structurally sound (aligned, in range, non-overlapping,
// counts consistent) at every checkpoint, and fully coalesced back to
// one max-order block once everything is freed.
func TestBuddyStructureUnderMixedOrderChurn(t *testing.T) {
	const frames = 1 << 12
	a, err := buddy.New(frames)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var held []block
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) > 0 || len(held) == 0 {
			order := rng.Intn(buddy.MaxOrder + 1)
			if f, err := a.Alloc(order); err == nil {
				held = append(held, block{f, order})
			}
		} else {
			j := rng.Intn(len(held))
			if err := a.Free(held[j].f, held[j].order); err != nil {
				t.Fatal(err)
			}
			held = append(held[:j], held[j+1:]...)
		}
		if i%500 == 0 {
			if err := invariant.CheckBuddy(a); err != nil {
				t.Fatalf("after %d ops: %v", i, err)
			}
		}
	}
	for _, b := range held {
		if err := a.Free(b.f, b.order); err != nil {
			t.Fatal(err)
		}
	}
	if err := invariant.CheckBuddy(a); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != frames {
		t.Fatalf("FreeFrames = %d after freeing everything, want %d", a.FreeFrames(), frames)
	}
}
