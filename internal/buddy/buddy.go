// Package buddy implements a binary buddy page-frame allocator in the
// style of the Linux kernel: free blocks of 2^order contiguous frames
// (order 0..MaxOrder) are kept on per-order free lists, allocations
// split larger blocks, and frees coalesce with the buddy block when
// possible.
//
// TintMalloc's colored path sits on top of this allocator: order-0
// colored requests drain whole buddy blocks into per-color lists via
// the kernel's createColorList (paper Algorithm 2), using AllocExact
// to take the head block of a specific order without splitting, while
// all other requests go through the default Alloc path.
//
// The allocator is deterministic: free lists are LIFO intrusive
// linked lists, so identical call sequences produce identical frame
// placements.
package buddy

import (
	"errors"
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// MaxOrder is the largest supported block order (2^MaxOrder frames,
// 8 MiB with 4 KiB pages), matching Linux's default MAX_ORDER-1.
const MaxOrder = 11

// ErrNoMemory is returned when no block large enough is free.
var ErrNoMemory = errors.New("buddy: out of memory")

// Free-list links are int32: block heads are frame numbers, and New
// rejects ranges past 2^31 frames (8 TiB of 4 KiB pages), so the
// narrower links halve Clone's copy volume and the lists' cache
// footprint.
const nilFrame = int32(-1)

// FaultHook vets every allocation request before the free lists are
// touched; returning true makes the request fail exactly as if the
// zone were out of memory. Hooks exist for fault injection
// (internal/fault) and must be deterministic functions of their
// arguments and the hook's own state — no wall clock, no global rand
// (tintvet's faultpure analyzer enforces this).
type FaultHook func(order int) bool

// Allocator manages the frame range [0, Frames()).
type Allocator struct {
	nframes uint64
	head    [MaxOrder + 1]int32 // head frame of each order's free list
	next    []int32             // next free-block head, indexed by frame
	prev    []int32
	freeOrd []int8 // order of the free block headed at frame, or -1
	free    uint64 // total free frames
	fault   FaultHook
}

// SetFaultHook installs (or, with nil, removes) the allocator's fault
// hook. Clone never copies the hook: a cloned zone is a fresh machine.
func (a *Allocator) SetFaultHook(h FaultHook) { a.fault = h }

// New creates an allocator over nframes frames, all initially free.
// nframes need not be a power of two; the range is seeded with the
// largest aligned blocks that fit.
func New(nframes uint64) (*Allocator, error) {
	if nframes == 0 {
		return nil, fmt.Errorf("buddy: nframes must be > 0")
	}
	if nframes > 1<<31 {
		return nil, fmt.Errorf("buddy: %d frames exceed the int32 free-list links", nframes)
	}
	a := &Allocator{
		nframes: nframes,
		next:    make([]int32, nframes),
		prev:    make([]int32, nframes),
		freeOrd: make([]int8, nframes),
	}
	for i := range a.head {
		a.head[i] = nilFrame
	}
	for i := range a.freeOrd {
		a.freeOrd[i] = -1
		a.next[i] = nilFrame
		a.prev[i] = nilFrame
	}
	// Seed: walk the range placing the largest aligned block each
	// time. Blocks are pushed low-address-last so that the LIFO pop
	// order starts from low addresses.
	type blk struct {
		f   uint64
		ord int
	}
	var blocks []blk
	for pos := uint64(0); pos < nframes; {
		ord := MaxOrder
		for ord > 0 && (pos&((1<<ord)-1) != 0 || pos+(1<<ord) > nframes) {
			ord--
		}
		blocks = append(blocks, blk{pos, ord})
		pos += 1 << ord
	}
	for i := len(blocks) - 1; i >= 0; i-- {
		a.push(phys.Frame(blocks[i].f), blocks[i].ord)
	}
	a.free = nframes
	return a, nil
}

// Clone returns a deep copy of the allocator: same free lists, same
// deterministic future behaviour, fully independent state. Used to
// stamp out identical pre-aged zones for repeated experiment runs.
// An installed fault hook is deliberately not copied: clones are
// fresh, healthy machines until a harness wires its own injector.
func (a *Allocator) Clone() *Allocator {
	c := &Allocator{
		nframes: a.nframes,
		head:    a.head,
		next:    append([]int32(nil), a.next...),
		prev:    append([]int32(nil), a.prev...),
		freeOrd: append([]int8(nil), a.freeOrd...),
		free:    a.free,
	}
	return c
}

// Frames returns the managed frame count.
func (a *Allocator) Frames() uint64 { return a.nframes }

// FreeFrames returns the number of currently free frames.
func (a *Allocator) FreeFrames() uint64 { return a.free }

// FreeBlocks returns the number of free blocks at each order.
func (a *Allocator) FreeBlocks() [MaxOrder + 1]uint64 {
	var out [MaxOrder + 1]uint64
	for ord := 0; ord <= MaxOrder; ord++ {
		for f := a.head[ord]; f != nilFrame; f = a.next[f] {
			out[ord]++
		}
	}
	return out
}

func (a *Allocator) push(f phys.Frame, ord int) {
	i := int32(f)
	a.next[i] = a.head[ord]
	a.prev[i] = nilFrame
	if a.head[ord] != nilFrame {
		a.prev[a.head[ord]] = i
	}
	a.head[ord] = i
	a.freeOrd[i] = int8(ord)
}

func (a *Allocator) remove(f phys.Frame, ord int) {
	i := int32(f)
	if a.prev[i] != nilFrame {
		a.next[a.prev[i]] = a.next[i]
	} else {
		a.head[ord] = a.next[i]
	}
	if a.next[i] != nilFrame {
		a.prev[a.next[i]] = a.prev[i]
	}
	a.next[i], a.prev[i] = nilFrame, nilFrame
	a.freeOrd[i] = -1
}

// Alloc returns the head frame of a free block of 2^order frames,
// splitting a larger block if necessary (the default Linux path).
func (a *Allocator) Alloc(order int) (phys.Frame, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("buddy: order %d out of range [0,%d]", order, MaxOrder)
	}
	if a.fault != nil && a.fault(order) {
		return 0, ErrNoMemory
	}
	for i := order; i <= MaxOrder; i++ {
		if a.head[i] == nilFrame {
			continue
		}
		f := phys.Frame(a.head[i])
		a.remove(f, i)
		// Split down to the requested order, freeing upper halves.
		for j := i; j > order; j-- {
			half := phys.Frame(1) << (j - 1)
			a.push(f+half, j-1)
		}
		a.free -= 1 << order
		return f, nil
	}
	return 0, ErrNoMemory
}

// AllocExact pops the head free block of exactly the given order
// without splitting larger blocks. It is the primitive behind the
// colored refill path (paper Algorithm 1 lines 18-23: "if free_list[i]
// is empty, continue; else create_color_list(i, head page)").
func (a *Allocator) AllocExact(order int) (phys.Frame, bool) {
	if order < 0 || order > MaxOrder || a.head[order] == nilFrame {
		return 0, false
	}
	if a.fault != nil && a.fault(order) {
		return 0, false
	}
	f := phys.Frame(a.head[order])
	a.remove(f, order)
	a.free -= 1 << order
	return f, true
}

// AllocMatching scans the free list of the given order in LIFO order
// and removes the first block satisfying match (called with the head
// frame and the order). It backs the colored refill's free-list
// traversal (paper Sec. III-C: "the kernel traverses the standard
// free_list to find an available free page of such a color").
func (a *Allocator) AllocMatching(order int, match func(head phys.Frame, order int) bool) (phys.Frame, bool) {
	if order < 0 || order > MaxOrder {
		return 0, false
	}
	if a.fault != nil && a.fault(order) {
		return 0, false
	}
	for i := a.head[order]; i != nilFrame; i = a.next[i] {
		f := phys.Frame(i)
		if match(f, order) {
			a.remove(f, order)
			a.free -= 1 << order
			return f, true
		}
	}
	return 0, false
}

// VisitFreeBlocks calls fn for every free block (head frame, order),
// in ascending order then list (LIFO) position. It exposes the free
// lists to the invariant auditor (internal/invariant), which
// cross-checks them against the kernel's color lists and page tables.
func (a *Allocator) VisitFreeBlocks(fn func(head phys.Frame, order int)) {
	for ord := 0; ord <= MaxOrder; ord++ {
		for f := a.head[ord]; f != nilFrame; f = a.next[f] {
			fn(phys.Frame(f), ord)
		}
	}
}

// Free returns a block of 2^order frames headed at f, coalescing with
// free buddies as far as possible.
func (a *Allocator) Free(f phys.Frame, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("buddy: order %d out of range [0,%d]", order, MaxOrder)
	}
	if uint64(f)&((1<<order)-1) != 0 {
		return fmt.Errorf("buddy: frame %d misaligned for order %d", f, order)
	}
	if uint64(f)+(1<<order) > a.nframes {
		return fmt.Errorf("buddy: block [%d, %d) exceeds range %d", f, uint64(f)+(1<<order), a.nframes)
	}
	if a.freeOrd[f] >= 0 {
		return fmt.Errorf("buddy: double free of frame %d", f)
	}
	freed := uint64(1) << order
	for order < MaxOrder {
		buddy := f ^ (phys.Frame(1) << order)
		if uint64(buddy)+(1<<order) > a.nframes {
			break
		}
		if a.freeOrd[buddy] != int8(order) {
			break
		}
		a.remove(buddy, order)
		if buddy < f {
			f = buddy
		}
		order++
	}
	a.push(f, order)
	a.free += freed
	return nil
}
