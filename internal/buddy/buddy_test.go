package buddy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

func TestNewSeedsAllFrames(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 1024, 4096, 5000, 1 << 14} {
		a, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if a.FreeFrames() != n {
			t.Errorf("New(%d).FreeFrames() = %d", n, a.FreeFrames())
		}
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) succeeded")
	}
}

func TestAllocSplitsAndFreeCoalesces(t *testing.T) {
	a, err := New(1 << MaxOrder) // one max-order block
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("first alloc at frame %d, want 0", f)
	}
	if a.FreeFrames() != (1<<MaxOrder)-1 {
		t.Errorf("FreeFrames after one alloc = %d", a.FreeFrames())
	}
	blocks := a.FreeBlocks()
	// Splitting one max-order block for an order-0 page leaves one
	// free block at each order 0..MaxOrder-1.
	for ord := 0; ord < MaxOrder; ord++ {
		if blocks[ord] != 1 {
			t.Errorf("order %d free blocks = %d, want 1", ord, blocks[ord])
		}
	}
	if err := a.Free(f, 0); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != 1<<MaxOrder {
		t.Errorf("FreeFrames after free = %d", a.FreeFrames())
	}
	blocks = a.FreeBlocks()
	if blocks[MaxOrder] != 1 {
		t.Errorf("block did not coalesce back to max order: %v", blocks)
	}
}

func TestAllocExactNoSplit(t *testing.T) {
	a, err := New(1 << MaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	// Only a max-order block exists, so exact order-3 must fail.
	if _, ok := a.AllocExact(3); ok {
		t.Fatal("AllocExact(3) succeeded with only a max-order block free")
	}
	if f, ok := a.AllocExact(MaxOrder); !ok || f != 0 {
		t.Fatalf("AllocExact(MaxOrder) = %d, %v", f, ok)
	}
	if a.FreeFrames() != 0 {
		t.Errorf("FreeFrames = %d, want 0", a.FreeFrames())
	}
	if _, ok := a.AllocExact(MaxOrder); ok {
		t.Error("AllocExact succeeded on empty allocator")
	}
}

func TestOutOfMemory(t *testing.T) {
	a, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(3); err == nil {
		t.Error("Alloc(3) on 4-frame allocator succeeded")
	}
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(0); err != ErrNoMemory {
		t.Errorf("exhausted Alloc error = %v, want ErrNoMemory", err)
	}
}

func TestFreeValidation(t *testing.T) {
	a, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(f+1, 2); err == nil {
		t.Error("Free accepted misaligned frame")
	}
	if err := a.Free(f, -1); err == nil {
		t.Error("Free accepted negative order")
	}
	if err := a.Free(phys.Frame(1024), 0); err == nil {
		t.Error("Free accepted out-of-range frame")
	}
	if err := a.Free(f, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(f, 2); err == nil {
		t.Error("double free not detected")
	}
}

func TestDeterministicPlacement(t *testing.T) {
	run := func() []phys.Frame {
		a, err := New(4096)
		if err != nil {
			t.Fatal(err)
		}
		var out []phys.Frame
		for i := 0; i < 64; i++ {
			f, err := a.Alloc(i % 3)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic placement at alloc %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: random alloc/free sequences conserve frames and never
// hand out overlapping blocks.
func TestRandomAllocFreeConservation(t *testing.T) {
	const nframes = 1 << 13
	a, err := New(nframes)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	type blk struct {
		f   phys.Frame
		ord int
	}
	var live []blk
	owned := make(map[phys.Frame]bool)
	for step := 0; step < 20000; step++ {
		if rng.Intn(2) == 0 || len(live) == 0 {
			ord := rng.Intn(4)
			f, err := a.Alloc(ord)
			if err != nil {
				continue // full at this order; fine
			}
			for i := uint64(0); i < 1<<ord; i++ {
				if owned[f+phys.Frame(i)] {
					t.Fatalf("step %d: frame %d handed out twice", step, f+phys.Frame(i))
				}
				owned[f+phys.Frame(i)] = true
			}
			live = append(live, blk{f, ord})
		} else {
			i := rng.Intn(len(live))
			b := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := a.Free(b.f, b.ord); err != nil {
				t.Fatalf("step %d: free(%d, %d): %v", step, b.f, b.ord, err)
			}
			for j := uint64(0); j < 1<<b.ord; j++ {
				delete(owned, b.f+phys.Frame(j))
			}
		}
		if a.FreeFrames()+uint64(len(owned)) != nframes {
			t.Fatalf("step %d: conservation violated: free %d + owned %d != %d",
				step, a.FreeFrames(), len(owned), nframes)
		}
	}
	// Free everything; must coalesce back to the seeded state.
	for _, b := range live {
		if err := a.Free(b.f, b.ord); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeFrames() != nframes {
		t.Errorf("final FreeFrames = %d, want %d", a.FreeFrames(), nframes)
	}
	blocks := a.FreeBlocks()
	if blocks[MaxOrder] != nframes>>MaxOrder {
		t.Errorf("full coalescing failed: %v", blocks)
	}
}

// Property: allocations are always block-aligned.
func TestAllocAlignment(t *testing.T) {
	f := func(seed int64) bool {
		a, err := New(1 << 12)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			ord := rng.Intn(5)
			fr, err := a.Alloc(ord)
			if err != nil {
				return true
			}
			if uint64(fr)&((1<<ord)-1) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNonPowerOfTwoRange(t *testing.T) {
	a, err := New(5000)
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	for {
		_, err := a.Alloc(0)
		if err != nil {
			break
		}
		got++
	}
	if got != 5000 {
		t.Errorf("allocated %d order-0 frames from 5000-frame range", got)
	}
}

func TestOrderRangeErrors(t *testing.T) {
	a, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(-1); err == nil {
		t.Error("Alloc(-1) succeeded")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Error("Alloc(MaxOrder+1) succeeded")
	}
	if _, ok := a.AllocExact(-1); ok {
		t.Error("AllocExact(-1) succeeded")
	}
	if _, ok := a.AllocExact(MaxOrder + 1); ok {
		t.Error("AllocExact(MaxOrder+1) succeeded")
	}
}

func TestAllocMatching(t *testing.T) {
	a, err := New(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	// Split everything to order 4 blocks first.
	var order4 []phys.Frame
	for {
		f, err := a.Alloc(4)
		if err != nil {
			break
		}
		order4 = append(order4, f)
	}
	for _, f := range order4 {
		if err := a.Free(f, 4); err != nil {
			t.Fatal(err)
		}
	}
	// Coalescing rebuilt larger blocks; now ask for an order that
	// exists and match a specific frame range.
	want := phys.Frame(512)
	f, ok := a.AllocMatching(MaxOrder, func(head phys.Frame, ord int) bool {
		return head <= want && want < head+phys.Frame(1)<<ord
	})
	if !ok {
		t.Fatal("AllocMatching found no block")
	}
	if !(f <= want && want < f+phys.Frame(1)<<MaxOrder) {
		t.Errorf("matched block [%d,...) does not contain %d", f, want)
	}
	// No block satisfies an impossible predicate.
	if _, ok := a.AllocMatching(MaxOrder, func(phys.Frame, int) bool { return false }); ok {
		t.Error("AllocMatching matched impossible predicate")
	}
	if _, ok := a.AllocMatching(-1, func(phys.Frame, int) bool { return true }); ok {
		t.Error("AllocMatching accepted bad order")
	}
}

func TestAllocMatchingConservation(t *testing.T) {
	a, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	before := a.FreeFrames()
	f, ok := a.AllocMatching(MaxOrder-3, func(phys.Frame, int) bool { return true })
	if !ok {
		t.Skip("no block at that order after seeding")
	}
	if a.FreeFrames() != before-(1<<(MaxOrder-3)) {
		t.Errorf("FreeFrames = %d after removing order-%d block from %d",
			a.FreeFrames(), MaxOrder-3, before)
	}
	if err := a.Free(f, MaxOrder-3); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != before {
		t.Errorf("free count not restored: %d vs %d", a.FreeFrames(), before)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, err := New(1024)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb, clone, then diverge.
	f1, err := a.Alloc(3)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if c.FreeFrames() != a.FreeFrames() {
		t.Fatalf("clone free count %d != original %d", c.FreeFrames(), a.FreeFrames())
	}
	// Same deterministic future before divergence.
	fa, _ := a.AllocExact(0)
	fc, _ := c.AllocExact(0)
	if fa != fc {
		t.Errorf("clone diverged immediately: %d vs %d", fa, fc)
	}
	// Mutating one must not affect the other.
	if err := a.Free(f1, 3); err != nil {
		t.Fatal(err)
	}
	if c.FreeFrames() == a.FreeFrames() {
		t.Error("clone shares state with original")
	}
	// The clone can still free its copy of the block.
	if err := c.Free(f1, 3); err != nil {
		t.Fatal(err)
	}
}
