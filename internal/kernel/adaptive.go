package kernel

import (
	"fmt"
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// The adaptive recolor path and the compaction daemon core
// (DESIGN.md Sec. 15). TintMalloc's syscall protocol installs colors
// one mmap at a time, which is the right interface for a program
// opting in at startup but the wrong one for an online policy engine:
// switching a task from MEM+LLC to uncolored through setColor would
// pass through several intermediate color sets, each a distinct
// allocation policy the auditor (and any concurrent fault) could
// observe. Repolicy replaces the whole TCB color state in one step,
// reconciles the loan ledger with the new claims, and leaves every
// already-resident page where it is — migration is the compaction
// daemon's job, done incrementally under a budget via CompactStep.

// compactScanPerMove bounds how many resident pages one CompactStep
// inspects per unit of move budget, so a step over a fully
// well-placed working set still terminates quickly. The scan resumes
// from a persistent per-task cursor, so successive steps cover the
// whole address space regardless of the cap.
const compactScanPerMove = 64

// compactScanFloor is the minimum pages one CompactStep inspects
// before giving up for the round (a tiny budget would otherwise crawl).
const compactScanFloor = 1024

// Repolicy atomically replaces the task's color sets with the given
// bank and LLC colors (either may be empty; both empty switches the
// task to the uncolored default path). It is the adaptive engine's
// recolor syscall: one TCB swap, one TLB flush, cursors reset, and
// the loan ledger reconciled — loans this task holds that the new
// colors legalize are settled in place, and borrow-color loans of
// other tasks that the new claims invalidate are demoted to the
// remote rung so check 5's exclusivity accounting stays exact.
// Resident pages are not migrated; CompactStep moves them
// incrementally. Fails with ErrAdaptiveDisabled under
// Config.DisableAdaptive (the static reference mode).
func (t *Task) Repolicy(bank, llc []int) error {
	k := t.proc.k
	if k.cfg.DisableAdaptive {
		return ErrAdaptiveDisabled
	}
	for _, c := range bank {
		if c < 0 || c >= k.mapping.NumBankColors() {
			return fmt.Errorf("%w: memory color %d (have %d)", ErrBadColor, c, k.mapping.NumBankColors())
		}
	}
	for _, c := range llc {
		if c < 0 || c >= k.mapping.NumLLCColors() {
			return fmt.Errorf("%w: LLC color %d (have %d)", ErrBadColor, c, k.mapping.NumLLCColors())
		}
	}
	for i := range t.bankSet {
		t.bankSet[i] = false
	}
	for i := range t.llcSet {
		t.llcSet[i] = false
	}
	t.bankColors = t.bankColors[:0]
	t.llcColors = t.llcColors[:0]
	for _, c := range bank {
		if !t.bankSet[c] {
			t.bankSet[c] = true
			t.bankColors = insertSorted(t.bankColors, c)
		}
	}
	for _, c := range llc {
		if !t.llcSet[c] {
			t.llcSet[c] = true
			t.llcColors = insertSorted(t.llcColors, c)
		}
	}
	t.usingBank = len(t.bankColors) > 0
	t.usingLLC = len(t.llcColors) > 0
	for i := range t.nodeSet {
		t.nodeSet[i] = false
	}
	for _, bc := range t.bankColors {
		t.nodeSet[k.mapping.NodeOfBankColor(bc)] = true
	}
	t.comboCursor, t.llcScan, t.bankScan = 0, 0, 0
	t.compactCursor = 0
	// Same conservative model as setColor: a recolor shoots down the
	// task's cached translations (mappings themselves stay valid).
	t.tlbFlush()
	k.stats.Repolicies++
	k.reconcileLoans(t)
	return nil
}

// reconcileLoans re-evaluates the loan ledger after t's color sets
// changed. Two cases exist:
//
//   - Loans held BY t whose frame satisfies the new policy are no
//     longer degraded — the frame is exactly what the preferred path
//     would now hand out — so they settle in place (no migration, no
//     free; the page just stops being a loan).
//   - Borrow-color loans held by OTHER tasks promised a color no task
//     owns; if t's new claims cover such a frame's color, the borrow
//     becomes an exclusivity break and is demoted to the remote rung,
//     keeping it visible to the auditor without tripping check 5.
//
// Iteration is in ascending frame order so the ledger mutations are
// deterministic.
func (k *Kernel) reconcileLoans(t *Task) {
	if len(k.loans) == 0 {
		return
	}
	frames := make([]phys.Frame, 0, len(k.loans))
	for f := range k.loans {
		frames = append(frames, f)
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for _, f := range frames {
		l := k.loans[f]
		if l.task == t {
			legal := false
			if t.usingBank || t.usingLLC {
				legal = t.frameMatchesColors(k, f)
			} else {
				// An uncolored task's preferred path hands out buddy
				// frames (any node under chunk diversion); only parked
				// colored frames stay degraded for it.
				legal = !k.coloredFrame[f]
			}
			if legal {
				k.loanRung[f] = 0
				delete(k.loans, f)
				k.stats.LoansSettled++
			}
			continue
		}
		if l.rung != RungBorrowColor {
			continue
		}
		conflict := (l.task.usingBank && t.bankSet[k.frameBank[f]]) ||
			(!l.task.usingBank && l.task.usingLLC && t.llcSet[k.frameLLC[f]])
		if conflict {
			l.rung = RungRemote
			k.loans[f] = l
			k.loanRung[f] = uint8(RungRemote) + 1
			k.stats.LoansDemoted++
		}
	}
}

// CompactStats reports one compaction step.
type CompactStats struct {
	LoansMoved   int // loans migrated back to preferred placement
	LoansFailed  int // loan migrations failed by an injected fault
	PagesScanned int // resident pages inspected by the misplaced scan
	PagesMoved   int // misplaced pages migrated onto the task's colors
	PagesFailed  int // page migrations failed by an injected fault
	// Wrapped reports that the misplaced-page scan reached the end of
	// the task's regions and reset its cursor — one full pass is done.
	Wrapped bool
	Cost    clock.Dur // simulated migration cost (charge at the barrier)
}

// Sum returns the migrations attempted (moved + failed), the unit the
// move budget counts.
func (c CompactStats) Sum() int {
	return c.LoansMoved + c.LoansFailed + c.PagesMoved + c.PagesFailed
}

// CompactStep runs one budgeted increment of the compaction daemon
// for this task: first migrate up to `budget` of the task's
// degradation-ladder loans home (the generalized ReclaimLoans), then
// spend the remaining budget migrating misplaced resident pages —
// pages of the task's own regions whose frames no longer match its
// colors, typically left behind by a Repolicy — resuming the scan
// from a persistent cursor. Each attempted migration consults the
// injected migration fault hook, exactly like Task.Migrate; a failed
// page stays put and is retried on a later pass. Migration stops
// early when preferred-placement allocation fails (still under
// pressure — moving pages would just re-degrade them).
func (t *Task) CompactStep(budget int) CompactStats {
	var st CompactStats
	if budget <= 0 {
		return st
	}
	k := t.proc.k
	budget = t.compactLoans(budget, &st)
	if budget <= 0 || (!t.usingBank && !t.usingLLC) {
		return st
	}
	maxScan := budget * compactScanPerMove
	if maxScan < compactScanFloor {
		maxScan = compactScanFloor
	}
	// Walk the task's own regions (sorted by start) from the cursor.
	// Pages first-touched by other tasks into these regions are
	// skipped via the loan mirror only when loaned; otherwise they are
	// fair game — the region owner decides the region's placement.
	start := t.compactCursor
	for _, r := range t.proc.regions {
		if r.owner != t {
			continue
		}
		vp := r.start >> phys.PageShift
		if start > vp {
			vp = start // resume mid-pass; fully-scanned regions skip out
		}
		for end := r.end >> phys.PageShift; vp < end; vp++ {
			if budget <= 0 || st.PagesScanned >= maxScan {
				t.compactCursor = vp
				return st
			}
			old, ok := t.proc.ptLookup(vp)
			if !ok {
				continue
			}
			st.PagesScanned++
			k.stats.CompactScans++
			if k.loanRung[old] != 0 {
				continue // a loan: phase one (or its owner) handles it
			}
			if t.frameMatchesColors(k, old) {
				continue
			}
			if k.fault.Migrate != nil && k.fault.Migrate(t.id, vp) {
				st.PagesFailed++
				budget--
				continue
			}
			fresh, cost, ok := k.allocPreferred(t)
			if !ok {
				t.compactCursor = vp
				return st // pressure: stop, resume here next step
			}
			t.proc.ptInsert(vp, fresh)
			t.proc.shootdownPage(vp)
			k.freeFrame(old)
			st.PagesMoved++
			st.Cost += cost + MigratePerPageCost
			k.stats.CompactMoved++
			budget--
		}
	}
	t.compactCursor = 0
	st.Wrapped = true
	return st
}

// compactLoans migrates up to budget of t's loans back onto
// preferred-placement frames, in ascending frame order, consulting
// the injected migration fault hook per page. Returns the unspent
// budget; outcomes accumulate into st.
func (t *Task) compactLoans(budget int, st *CompactStats) int {
	k := t.proc.k
	if len(k.loans) == 0 {
		return budget
	}
	// Collect this task's loans and process them in ascending frame
	// order; iterating the map directly would make the replacement
	// placements depend on Go's randomized map order.
	frames := make([]phys.Frame, 0, len(k.loans))
	for f, l := range k.loans {
		if l.task == t {
			frames = append(frames, f)
		}
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for _, old := range frames {
		if budget <= 0 {
			return 0
		}
		l := k.loans[old]
		// Only migrate a loan whose placement the task's CURRENT policy
		// would improve on. An uncolored task's preferred path hands out
		// local buddy frames, so its borrow-color and local-uncolored
		// loans already sit exactly where preferred placement would put
		// them — copying those pages spends real migration cost to buy
		// nothing (the ledger entry settles for free when the page is
		// eventually freed). Only parked-remote loans repair divergence.
		if !t.usingBank && !t.usingLLC && l.rung != RungRemote {
			continue
		}
		// An injected migration fault degrades gracefully: the loan
		// stays on the ledger, intact, and is retried next pass.
		if k.fault.Migrate != nil && k.fault.Migrate(t.id, l.vp) {
			st.LoansFailed++
			budget--
			continue
		}
		fresh, cost, ok := k.allocPreferred(t)
		if !ok {
			break // still under pressure; keep the remaining loans
		}
		t.proc.ptInsert(l.vp, fresh)
		t.proc.shootdownPage(l.vp)
		k.freeFrame(old) // settles the loan; old reparks or rejoins buddy
		st.LoansMoved++
		st.Cost += cost + MigratePerPageCost
		k.stats.LoansReclaimed++
		budget--
	}
	return budget
}
