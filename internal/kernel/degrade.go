package kernel

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// The degradation ladder (DESIGN.md Sec. 10). The paper's Algorithm 2
// fails an mmap when no page of the requested color exists, which is
// the right contract for a coloring *experiment* but the wrong one
// for a long-running system: a transient squeeze on one node would
// kill tasks while free frames sit idle elsewhere. When degradation
// is enabled (the default), a failed preferred-placement allocation
// steps down rung by rung instead, and every frame handed out below
// the top is recorded as a loan so the reclaim pass can send it home
// once pressure subsides and the invariant auditor can account for
// the temporary break in color exclusivity.

// Rung identifies how far from its preferred placement a degraded
// allocation landed.
type Rung int

const (
	// RungBorrowColor is a same-node parked page borrowed from a
	// color no task has claimed (for colored borrowers), or any
	// same-node parked page (for uncolored tasks whose zones are dry).
	RungBorrowColor Rung = iota
	// RungLocalUncolored is a plain local-node buddy frame handed to
	// a colored task: locality preserved, color guarantee dropped.
	RungLocalUncolored
	// RungRemote is anything beyond the local node — remote buddy
	// frames, remote parked pages, and (as the very last resort) any
	// parked page regardless of node or assignment.
	RungRemote
	// NumRungs sizes per-rung counters.
	NumRungs
)

// RungNone marks a preferred-placement allocation (no loan).
const RungNone Rung = -1

// String returns a short rung label for reports.
func (r Rung) String() string {
	switch r {
	case RungBorrowColor:
		return "borrow-color"
	case RungLocalUncolored:
		return "local-uncolored"
	case RungRemote:
		return "remote"
	case RungNone:
		return "none"
	default:
		return fmt.Sprintf("rung(%d)", int(r))
	}
}

// FaultHooks are the kernel-level fault-injection points
// (internal/fault wires them; zone-level buddy OOM goes through
// SetZoneFaultHook instead). Hooks must be deterministic functions of
// their arguments and the hook's own state — no wall clock, no global
// rand; tintvet's faultpure analyzer enforces this.
type FaultHooks struct {
	// Refill, when set, is consulted once per (fault, zone) before
	// create_color_list refills color lists from that zone's buddy
	// blocks; returning true fails the refill for the zone (its buddy
	// blocks stay put, and the allocation proceeds to the next zone
	// or down the ladder).
	Refill func(node int) bool
	// Migrate, when set, is consulted once per page Migrate would
	// move; returning true fails the copy — the page stays on its old
	// frame and is counted in MigrateStats.Failed.
	Migrate func(taskID int, vpage uint64) bool
}

// SetFaultHooks installs (or, with zero value, removes) the kernel's
// fault-injection hooks.
func (k *Kernel) SetFaultHooks(h FaultHooks) { k.fault = h }

// SetZoneFaultHook installs a fault hook on node n's buddy zone; it
// vets every Alloc/AllocExact against injected OOM or a capacity
// squeeze before the free lists are touched.
func (k *Kernel) SetZoneFaultHook(n int, h buddy.FaultHook) { k.zones[n].SetFaultHook(h) }

// loan records one frame handed out below the top of the ladder: who
// borrowed it, the virtual page it backs, and the rung it came from.
type loan struct {
	task *Task
	vp   uint64
	rung Rung
}

// registerLoan records a ladder frame once its caller has mapped it.
// Translate and Migrate call it right after the page-table insert;
// the auditor checks the two stay coherent.
func (k *Kernel) registerLoan(f phys.Frame, t *Task, vp uint64, rung Rung) {
	if k.loans == nil {
		k.loans = make(map[phys.Frame]loan)
	}
	k.loans[f] = loan{task: t, vp: vp, rung: rung}
	k.loanRung[f] = uint8(rung) + 1
	k.stats.LoansRegistered++
}

func (k *Kernel) noteDegraded(t *Task, r Rung) {
	k.stats.DegradedAllocs[r]++
	t.degraded++
}

// degradedColoredAlloc walks the ladder for a colored task whose
// preferred path (own colors, all refills) came up empty. By that
// point every zone the task's colors map to has been drained into
// color lists, so the rungs mix buddy frames and parked pages:
//
//  1. a same-node parked page of an unassigned color (borrow)
//  2. any local-node buddy frame (locality without the color)
//  3. remote nodes in zone-fallback order — buddy first, then
//     parked — and finally any parked page anywhere
func (k *Kernel) degradedColoredAlloc(t *Task) (phys.Frame, Rung, bool) {
	local := t.nodeOrder[0]
	if f, ok := k.popUnassigned(t, local); ok {
		return f, RungBorrowColor, true
	}
	if f, err := k.zones[local].Alloc(0); err == nil {
		return k.zoneLo[local] + f, RungLocalUncolored, true
	}
	for _, n := range t.nodeOrder[1:] {
		if f, err := k.zones[n].Alloc(0); err == nil {
			return k.zoneLo[n] + f, RungRemote, true
		}
		if f, ok := k.popParkedOnNode(n); ok {
			return f, RungRemote, true
		}
	}
	// Very last resort: any parked page, even of a color another task
	// owns. Exclusivity is surrendered before the machine reports OOM
	// with free frames still parked; the loan record keeps the break
	// visible to the auditor.
	if f, ok := k.popAnyParked(t); ok {
		return f, RungRemote, true
	}
	return 0, RungNone, false
}

// assignedColors reports which bank and LLC colors any live task
// currently owns. Recomputed per ladder step: the ladder is a cold
// path entered only under memory pressure, and a cached set would
// have to chase every Mmap color call.
func (k *Kernel) assignedColors() (bank, llc []bool) {
	bank = make([]bool, k.colors.nBank)
	llc = make([]bool, k.colors.nLLC)
	for _, p := range k.procs {
		for _, t := range p.tasks {
			for _, c := range t.bankColors {
				bank[c] = true
			}
			for _, c := range t.llcColors {
				llc[c] = true
			}
		}
	}
	return bank, llc
}

// popUnassigned pops a parked page on `node` borrowable without
// touching any task's guarantee: for bank-constrained borrowers a
// page of an unassigned bank color (preferring the borrower's own
// LLC colors so that half of the guarantee survives), for LLC-only
// borrowers a page of an unassigned LLC color served from the node's
// banks.
func (k *Kernel) popUnassigned(t *Task, node int) (phys.Frame, bool) {
	bankAsn, llcAsn := k.assignedColors()
	if t.usingBank {
		banks := k.mapping.BankColorsOfNode(node)
		if t.usingLLC {
			for _, bc := range banks {
				if bankAsn[bc] || k.colors.bankCount[bc] == 0 {
					continue
				}
				for _, lc := range t.llcColors {
					if f, ok := k.colors.popExact(bc, lc); ok {
						return f, true
					}
				}
			}
		}
		for _, bc := range banks {
			if bankAsn[bc] {
				continue
			}
			if f, ok := k.colors.popBankAny(bc, t.llcScan); ok {
				return f, true
			}
		}
		return 0, false
	}
	for lc := 0; lc < k.colors.nLLC; lc++ {
		if llcAsn[lc] || k.colors.llcCount[lc] == 0 {
			continue
		}
		for _, bc := range k.mapping.BankColorsOfNode(node) {
			if f, ok := k.colors.popExact(bc, lc); ok {
				return f, true
			}
		}
	}
	return 0, false
}

// popParkedOnNode pops any parked page of node n, scanning its bank
// colors in ascending order.
func (k *Kernel) popParkedOnNode(n int) (phys.Frame, bool) {
	for _, bc := range k.mapping.BankColorsOfNode(n) {
		if k.colors.bankCount[bc] == 0 {
			continue
		}
		if f, ok := k.colors.popBankAny(bc, 0); ok {
			return f, true
		}
	}
	return 0, false
}

// popAnyParked pops any parked page anywhere, visiting nodes in the
// task's zone-fallback order so locality is preserved when possible.
func (k *Kernel) popAnyParked(t *Task) (phys.Frame, bool) {
	for _, n := range t.nodeOrder {
		if f, ok := k.popParkedOnNode(n); ok {
			return f, true
		}
	}
	return 0, false
}

// reclaimParkedZone sweeps node n's parked pages out of the color
// lists back into the buddy zone, coalescing them — Algorithm 2 in
// reverse. Huge (order > 0) requests cannot be served from 4 KiB
// color lists, so under pressure the kernel un-colors parked pages to
// rebuild contiguity; they re-shatter on the next colored refill.
// Returns the number of frames reclaimed.
func (k *Kernel) reclaimParkedZone(n int) uint64 {
	var reclaimed uint64
	for _, bc := range k.mapping.BankColorsOfNode(n) {
		for lc := 0; lc < k.colors.nLLC; lc++ {
			for {
				f, ok := k.colors.popExact(bc, lc)
				if !ok {
					break
				}
				k.coloredFrame[f] = false
				home := k.mapping.NodeOfFrame(f)
				if err := k.zones[home].Free(f-k.zoneLo[home], 0); err != nil {
					panic(fmt.Sprintf("kernel: reclaimParkedZone(%d): %v", n, err))
				}
				reclaimed++
			}
		}
	}
	k.stats.ParkedReclaimed += reclaimed
	return reclaimed
}

// allocPreferred is preferred-placement allocation only — Algorithm 1
// without the ladder. The reclaim pass uses it so a loan moves home
// only when its real placement is available again.
func (k *Kernel) allocPreferred(t *Task) (phys.Frame, clock.Dur, bool) {
	k.stats.Faults++
	if !t.usingBank && !t.usingLLC {
		return k.allocDefault(t)
	}
	t.faultCount++
	return k.allocColored(t)
}

// ReclaimLoans migrates this task's loaned pages back onto
// preferred-placement frames, returning each borrowed frame to its
// home free list. heap.Trim calls it after releasing slabs — the
// moment pressure subsides — but it is safe to call at any time. Only
// loans whose preferred placement is available again move; the rest
// stay loaned. Each page copy consults the injected migration fault
// hook (exactly like Task.Migrate): a faulted copy leaves its loan on
// the ledger, intact, and counts in failed. Returns the pages moved
// and the copies an injected fault failed.
func (t *Task) ReclaimLoans() (moved, failed int) {
	var st CompactStats
	t.compactLoans(int(^uint(0)>>1), &st)
	return st.LoansMoved, st.LoansFailed
}
