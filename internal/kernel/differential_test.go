package kernel_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Differential property test: random alloc/free/recolor sequences run
// against the real kernel while a naive reference model tracks what
// frame ownership must look like. The model never re-implements
// allocation policy — it learns each frame at fault time and then
// holds the kernel to the simple invariants any correct kernel obeys:
// a resident page keeps its frame until munmap or migration, no two
// pages share a frame, freed regions vanish exactly, and colored
// tasks receive frames of their colors. Sequences are seeded; on
// failure the op log is shrunk by greedy removal-and-replay and the
// minimal reproducer is printed.

const (
	opMmap = iota
	opTouch
	opMunmap
	opSetBank
	opClearBank
	opSetLLC
	opClearLLC
	opMigrate
)

var opNames = map[int]string{
	opMmap: "mmap", opTouch: "touch", opMunmap: "munmap",
	opSetBank: "set-bank", opClearBank: "clear-bank",
	opSetLLC: "set-llc", opClearLLC: "clear-llc", opMigrate: "migrate",
}

type kop struct {
	kind int
	task int // task selector
	arg  int // pages for mmap; region selector; color selector
	page int // page selector for touch
}

func (o kop) String() string {
	return fmt.Sprintf("{%s task=%d arg=%d page=%d}", opNames[o.kind], o.task, o.arg, o.page)
}

func formatOps(ops []kop) string {
	var sb strings.Builder
	for i, o := range ops {
		fmt.Fprintf(&sb, "  %3d: %v\n", i, o)
	}
	return sb.String()
}

// mRegion is the model's view of one live mapping.
type mRegion struct {
	proc   int
	base   uint64
	pages  int
	frames map[int]phys.Frame // page index -> frame learned at fault
}

type pageRef struct {
	reg  *mRegion
	page int
}

type diffHarness struct {
	k       *kernel.Kernel
	procs   []*kernel.Process
	tasks   []*kernel.Task
	tproc   []int // task index -> process index
	regions []*mRegion
	owner   map[phys.Frame]pageRef
}

func newDiffHarness() (*diffHarness, error) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(256<<20, top.Nodes())
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(top, m, kernel.DefaultConfig())
	if err != nil {
		return nil, err
	}
	h := &diffHarness{k: k, owner: map[phys.Frame]pageRef{}}
	// Two processes, three tasks: two sharing an address space on
	// different nodes plus one isolated, so cross-task and cross-
	// process ownership are both exercised.
	p0, p1 := k.NewProcess(), k.NewProcess()
	h.procs = []*kernel.Process{p0, p1}
	for _, tc := range []struct {
		p    int
		core topology.CoreID
	}{{0, 0}, {0, 5}, {1, 10}} {
		task, err := h.procs[tc.p].NewTask(tc.core)
		if err != nil {
			return nil, err
		}
		h.tasks = append(h.tasks, task)
		h.tproc = append(h.tproc, tc.p)
	}
	return h, nil
}

// procRegions returns the live regions of the given process, in
// creation order.
func (h *diffHarness) procRegions(proc int) []*mRegion {
	var out []*mRegion
	for _, r := range h.regions {
		if r.proc == proc {
			out = append(out, r)
		}
	}
	return out
}

func (h *diffHarness) dropRegion(reg *mRegion) {
	for i, r := range h.regions {
		if r == reg {
			h.regions = append(h.regions[:i], h.regions[i+1:]...)
			return
		}
	}
}

// claimFrame records that (reg, page) now owns f, failing on aliasing
// and (for colored tasks) color mismatch.
func (h *diffHarness) claimFrame(task *kernel.Task, reg *mRegion, page int, f phys.Frame) error {
	if prev, taken := h.owner[f]; taken {
		return fmt.Errorf("frame %d double-owned: page %d of region %#x and page %d of region %#x",
			f, page, reg.base, prev.page, prev.reg.base)
	}
	if h.k.FrameColored(f) {
		bc, lc := h.k.FrameColors(f)
		if task.UsingBank() && !containsInt(task.BankColors(), bc) {
			return fmt.Errorf("frame %d has bank color %d, task owns %v", f, bc, task.BankColors())
		}
		if task.UsingLLC() && !containsInt(task.LLCColors(), lc) {
			return fmt.Errorf("frame %d has LLC color %d, task owns %v", f, lc, task.LLCColors())
		}
	}
	reg.frames[page] = f
	h.owner[f] = pageRef{reg, page}
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (h *diffHarness) apply(o kop) error {
	task := h.tasks[o.task%len(h.tasks)]
	proc := h.tproc[o.task%len(h.tasks)]
	switch o.kind {
	case opMmap:
		pages := 1 + o.arg%16
		base, err := task.Mmap(0, uint64(pages)*phys.PageSize, 0)
		if err != nil {
			return fmt.Errorf("mmap: %w", err)
		}
		if base%phys.PageSize != 0 {
			return fmt.Errorf("mmap returned unaligned base %#x", base)
		}
		for _, r := range h.procRegions(proc) {
			if base < r.base+uint64(r.pages)*phys.PageSize && r.base < base+uint64(pages)*phys.PageSize {
				return fmt.Errorf("mmap region [%#x,+%d) overlaps [%#x,+%d)", base, pages, r.base, r.pages)
			}
		}
		h.regions = append(h.regions, &mRegion{proc: proc, base: base, pages: pages, frames: map[int]phys.Frame{}})

	case opTouch:
		regs := h.procRegions(proc)
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		page := o.page % reg.pages
		va := reg.base + uint64(page)*phys.PageSize
		pa, cost, err := task.Translate(va)
		if err != nil {
			return fmt.Errorf("translate %#x: %w", va, err)
		}
		f, ok := task.FrameOfVA(va)
		if !ok {
			return fmt.Errorf("translate %#x succeeded but page not resident", va)
		}
		if pa < f.Base() || pa >= f.Base()+phys.PageSize {
			return fmt.Errorf("translate %#x returned %#x outside frame %d", va, pa, f)
		}
		if prev, touched := reg.frames[page]; touched {
			if f != prev {
				return fmt.Errorf("resident page %#x moved from frame %d to %d without migration", va, prev, f)
			}
			if cost != 0 {
				return fmt.Errorf("re-touch of resident page %#x charged fault cost %d", va, cost)
			}
			return nil
		}
		return h.claimFrame(task, reg, page, f)

	case opMunmap:
		regs := h.procRegions(proc)
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		if err := task.Munmap(reg.base, uint64(reg.pages)*phys.PageSize); err != nil {
			return fmt.Errorf("munmap [%#x,+%d): %w", reg.base, reg.pages, err)
		}
		for page, f := range reg.frames {
			va := reg.base + uint64(page)*phys.PageSize
			if task.Resident(va) {
				return fmt.Errorf("page %#x still resident after munmap", va)
			}
			delete(h.owner, f)
		}
		h.dropRegion(reg)

	case opSetBank, opClearBank, opSetLLC, opClearLLC:
		m := h.k.Mapping()
		var arg uint64
		switch o.kind {
		case opSetBank:
			arg = uint64(o.arg%m.NumBankColors()) | kernel.SetMemColor
		case opClearBank:
			arg = uint64(o.arg%m.NumBankColors()) | kernel.ClearMemColor
		case opSetLLC:
			arg = uint64(o.arg%m.NumLLCColors()) | kernel.SetLLCColor
		case opClearLLC:
			arg = uint64(o.arg%m.NumLLCColors()) | kernel.ClearLLCColor
		}
		if _, err := task.Mmap(arg, 0, kernel.ColorAlloc); err != nil {
			return fmt.Errorf("color op %#x: %w", arg, err)
		}

	case opMigrate:
		regs := h.procRegions(proc)
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		st, err := task.Migrate(reg.base, uint64(reg.pages)*phys.PageSize)
		if !task.UsingBank() && !task.UsingLLC() {
			if err == nil {
				return fmt.Errorf("migrate with no colors selected succeeded")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("migrate [%#x,+%d): %w", reg.base, reg.pages, err)
		}
		if st.Scanned != len(reg.frames) {
			return fmt.Errorf("migrate scanned %d pages, model has %d resident", st.Scanned, len(reg.frames))
		}
		if st.Moved+st.AlreadyOK != st.Scanned {
			return fmt.Errorf("migrate stats inconsistent: %+v", st)
		}
		// Re-learn frames: migration may replace any of them.
		for page, f := range reg.frames {
			delete(h.owner, f)
			delete(reg.frames, page)
			va := reg.base + uint64(page)*phys.PageSize
			nf, ok := task.FrameOfVA(va)
			if !ok {
				return fmt.Errorf("page %#x lost residency during migration", va)
			}
			if err := h.claimFrame(task, reg, page, nf); err != nil {
				return fmt.Errorf("after migrate: %w", err)
			}
		}
	}
	return nil
}

// checkOwnership compares the kernel's page tables against the model,
// both directions, and runs the invariant auditor.
func (h *diffHarness) checkOwnership() error {
	for pi, proc := range h.procs {
		got := map[uint64]phys.Frame{}
		proc.VisitPages(func(vpage uint64, f phys.Frame) { got[vpage] = f })
		want := map[uint64]phys.Frame{}
		for _, reg := range h.procRegions(pi) {
			for page, f := range reg.frames {
				want[reg.base>>phys.PageShift+uint64(page)] = f
			}
		}
		if len(got) != len(want) {
			return fmt.Errorf("process %d maps %d pages, model expects %d", pi, len(got), len(want))
		}
		for vp, f := range want {
			if got[vp] != f {
				return fmt.Errorf("process %d vpage %#x: kernel has frame %d, model has %d", pi, vp, got[vp], f)
			}
		}
	}
	if err := invariant.Audit(h.k).Err(); err != nil {
		return fmt.Errorf("invariant audit: %w", err)
	}
	return nil
}

// runDiffOps replays an op log on a fresh kernel, checking after
// every op (ownership sweeps every 16 ops and at the end).
func runDiffOps(ops []kop) error {
	h, err := newDiffHarness()
	if err != nil {
		return fmt.Errorf("boot: %w", err)
	}
	for i, o := range ops {
		if err := h.apply(o); err != nil {
			return fmt.Errorf("op %d %v: %w", i, o, err)
		}
		if (i+1)%16 == 0 {
			if err := h.checkOwnership(); err != nil {
				return fmt.Errorf("after op %d %v: %w", i, o, err)
			}
		}
	}
	return h.checkOwnership()
}

// shrinkOps greedily removes ops while the log still fails, replaying
// from scratch each time.
func shrinkOps(ops []kop) []kop {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(ops); i++ {
			cand := append(append([]kop(nil), ops[:i]...), ops[i+1:]...)
			if runDiffOps(cand) != nil {
				ops = cand
				changed = true
				i--
			}
		}
	}
	return ops
}

func TestKernelDifferentialModel(t *testing.T) {
	// Touch-heavy mix so ownership state actually builds up between
	// the structural ops.
	kinds := []int{
		opMmap, opMmap, opTouch, opTouch, opTouch, opTouch, opTouch,
		opMunmap, opSetBank, opClearBank, opSetLLC, opClearLLC, opMigrate,
	}
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			ops := make([]kop, 0, 400)
			for i := 0; i < 400; i++ {
				ops = append(ops, kop{
					kind: kinds[rng.Intn(len(kinds))],
					task: rng.Intn(3),
					arg:  rng.Intn(1 << 16),
					page: rng.Intn(1 << 16),
				})
			}
			if err := runDiffOps(ops); err != nil {
				minimal := shrinkOps(ops)
				t.Fatalf("kernel diverged from reference model: %v\nminimal op log (%d ops):\n%s",
					runDiffOps(minimal), len(minimal), formatOps(minimal))
			}
		})
	}
}
