package kernel

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Microbenchmarks for Task.Translate, called once per memory op. The
// simulated TLB turns the resident-page common case into one array
// probe; the DisableTLB variants measure the page-table-walk path the
// TLB shortcuts.

func benchBoot(b *testing.B, cfg Config) *Kernel {
	b.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		b.Fatal(err)
	}
	k, err := New(top, m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return k
}

func benchResidentTask(b *testing.B, cfg Config, pages uint64) (*Task, uint64) {
	b.Helper()
	k := benchBoot(b, cfg)
	task, err := k.NewProcess().NewTask(0)
	if err != nil {
		b.Fatal(err)
	}
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Fault everything in so the benchmark loop sees resident pages.
	for p := uint64(0); p < pages; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			b.Fatal(err)
		}
	}
	return task, va
}

func BenchmarkTranslateTLBHit(b *testing.B) {
	task, va := benchResidentTask(b, DefaultConfig(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := task.Translate(va); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateResidentSweep(b *testing.B) {
	// Sweep more pages than TLB slots modulo-map to one index:
	// exercises hits and conflict misses in workload-like proportion.
	const pages = 4 * TLBEntries
	task, va := benchResidentTask(b, DefaultConfig(), pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i) % pages * phys.PageSize
		if _, _, err := task.Translate(va + off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateNoTLB(b *testing.B) {
	cfg := DefaultConfig()
	cfg.DisableTLB = true
	task, va := benchResidentTask(b, cfg, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := task.Translate(va); err != nil {
			b.Fatal(err)
		}
	}
}

// Map-vs-radix page-table comparison, measured two ways: the bare
// structures under a resident-page lookup sweep, and the full
// page-table-walk Translate path (TLB off so every op walks). The
// sweep spans more pages than fit one radix leaf so the root level is
// exercised too.
func BenchmarkPTLookupRadix(b *testing.B) {
	const pages = 4 * ptLeafSize
	var r RadixPT
	for vp := uint64(0); vp < pages; vp++ {
		r.Insert(vaBase>>phys.PageShift+vp, phys.Frame(vp))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp := vaBase>>phys.PageShift + uint64(i)%pages
		if _, ok := r.Lookup(vp); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkPTLookupMap(b *testing.B) {
	const pages = 4 * ptLeafSize
	m := make(map[uint64]phys.Frame)
	for vp := uint64(0); vp < pages; vp++ {
		m[vaBase>>phys.PageShift+vp] = phys.Frame(vp)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vp := vaBase>>phys.PageShift + uint64(i)%pages
		if _, ok := m[vp]; !ok {
			b.Fatal("miss")
		}
	}
}

func benchWalkSweep(b *testing.B, disableRadix bool) {
	cfg := DefaultConfig()
	cfg.DisableTLB = true // every Translate walks the page table
	cfg.DisableRadixPT = disableRadix
	const pages = 4 * ptLeafSize
	task, va := benchResidentTask(b, cfg, pages)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i) % pages * phys.PageSize
		if _, _, err := task.Translate(va + off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWalkSweepRadix(b *testing.B) { benchWalkSweep(b, false) }
func BenchmarkWalkSweepMap(b *testing.B)   { benchWalkSweep(b, true) }
