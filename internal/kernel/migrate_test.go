package kernel

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

func TestMigrateRecolorsResidentPages(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)

	// Touch pages UNCOLORED first: they land wherever the default
	// policy puts them.
	const pages = 32
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < pages; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}

	// Now select colors and migrate. (Two banks x two LLC colors:
	// 64 frames of capacity at this memory size.)
	banks := m.BankColorsOfNode(0)[2:4]
	setColors(t, task, banks, []int{5, 6})
	bankSet := map[int]bool{banks[0]: true, banks[1]: true}
	st, err := task.Migrate(va, pages*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != pages {
		t.Errorf("Scanned = %d, want %d", st.Scanned, pages)
	}
	if st.Moved == 0 || st.Cost == 0 {
		t.Errorf("nothing moved: %+v", st)
	}
	for i := uint64(0); i < pages; i++ {
		f, ok := task.FrameOfVA(va + i*phys.PageSize)
		if !ok {
			t.Fatalf("page %d lost residency", i)
		}
		lc := m.FrameLLCColor(f)
		if !bankSet[m.FrameBankColor(f)] || (lc != 5 && lc != 6) {
			t.Errorf("page %d colors %d/%d after migrate, want banks %v llc {5,6}",
				i, m.FrameBankColor(f), lc, banks)
		}
	}

	// Second migration is a no-op.
	st2, err := task.Migrate(va, pages*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Moved != 0 || st2.AlreadyOK != pages {
		t.Errorf("re-migration moved pages: %+v", st2)
	}
}

func TestMigrateRequiresColors(t *testing.T) {
	k := boot(t)
	task := newTask(t, k, 0)
	va, _ := task.Mmap(0, phys.PageSize, 0)
	if _, err := task.Migrate(va, phys.PageSize); err == nil {
		t.Error("Migrate without colors succeeded")
	}
}

func TestMigrateSkipsNonResident(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	setColors(t, task, m.BankColorsOfNode(0)[:1], nil)
	va, _ := task.Mmap(0, 8*phys.PageSize, 0)
	st, err := task.Migrate(va, 8*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 0 || st.Moved != 0 {
		t.Errorf("migrated non-resident pages: %+v", st)
	}
}

func TestMigrateConservesFrames(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	const pages = 16
	va, _ := task.Mmap(0, pages*phys.PageSize, 0)
	for i := uint64(0); i < pages; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	totalBefore := k.FreeFrames() + k.TotalColoredFree()
	setColors(t, task, m.BankColorsOfNode(0)[:2], []int{0, 1})
	if _, err := task.Migrate(va, pages*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	totalAfter := k.FreeFrames() + k.TotalColoredFree()
	if totalBefore != totalAfter {
		t.Errorf("free-frame conservation violated: %d -> %d", totalBefore, totalAfter)
	}
	// Unmapping afterwards returns everything.
	if err := task.Munmap(va, pages*phys.PageSize); err != nil {
		t.Fatal(err)
	}
}
