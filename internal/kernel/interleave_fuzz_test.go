package kernel_test

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// FuzzKernelInterleaving feeds encoded alloc/free/recolor/churn
// interleavings over two tasks into the kernel with the invariant
// auditor armed after every operation. Individual operations may be
// rejected (that is the syscall surface doing its job); what must
// never happen is a panic, a cross-layer bookkeeping violation, or a
// frame leaking out of (or into) the accounted pools — checked via
// exact frame conservation against the boot-time baseline. Since the
// auditor also cross-checks every live TLB entry against the page
// table (invariant.Audit check 4), each fuzzed interleaving doubles
// as a TLB shootdown-coherence probe: a munmap, migrate or recolor
// that misses an invalidation fails the very next audit.
//
// Encoding: each operation is 3 bytes [sel, arg, page]. sel%10 picks
// the operation, (sel/10)%2 the task; arg and page select regions,
// colors, sizes and offsets modulo whatever is live.
func FuzzKernelInterleaving(f *testing.F) {
	// Seeds: a plain map/touch/unmap lifecycle, a recolor storm, a
	// churn loop, and a mixed interleaving.
	f.Add([]byte{0, 4, 0, 1, 0, 0, 1, 0, 1, 2, 0, 0})
	f.Add([]byte{3, 1, 0, 4, 2, 0, 13, 3, 0, 5, 1, 0, 15, 2, 0})
	f.Add([]byte{6, 1, 0, 6, 2, 0, 7, 0, 0, 7, 0, 0})
	f.Add([]byte{0, 8, 0, 3, 0, 0, 1, 0, 3, 9, 0, 0, 2, 0, 0, 16, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 96
		top := topology.Opteron6128()
		m, err := phys.DefaultSeparable(64<<20, top.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernel.New(top, m, kernel.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		proc := k.NewProcess()
		var tasks []*kernel.Task
		for _, core := range []topology.CoreID{0, 7} {
			task, err := proc.NewTask(core)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, task)
		}
		base := invariant.Audit(k)
		if err := base.Err(); err != nil {
			t.Fatalf("dirty kernel at boot: %v", err)
		}

		type region struct {
			base  uint64
			pages int
		}
		type stashed struct {
			frame phys.Frame
			order int
		}
		var regions []region
		var stash []stashed
		var stashFrames uint64

		audit := func(opIdx int, sel byte) {
			r := invariant.Audit(k)
			if err := r.Err(); err != nil {
				t.Fatalf("op %d (sel=%d): %v", opIdx, sel, err)
			}
			if r.Unaccounted != base.Unaccounted+stashFrames {
				t.Fatalf("op %d (sel=%d): %d unaccounted frames, want churn holdout %d + stash %d",
					opIdx, sel, r.Unaccounted, base.Unaccounted, stashFrames)
			}
		}

		for i := 0; i+2 < len(data) && i/3 < maxOps; i += 3 {
			sel, arg, page := data[i], int(data[i+1]), int(data[i+2])
			task := tasks[(sel/10)%2]
			switch sel % 10 {
			case 0: // mmap
				pages := 1 + arg%8
				va, err := task.Mmap(0, uint64(pages)*phys.PageSize, 0)
				if err == nil {
					regions = append(regions, region{va, pages})
				}
			case 1: // touch
				if len(regions) > 0 {
					r := regions[arg%len(regions)]
					va := r.base + uint64(page%r.pages)*phys.PageSize
					_, _, _ = task.Translate(va) //nolint — rejection is fine, audit judges
				}
			case 2: // munmap
				if len(regions) > 0 {
					j := arg % len(regions)
					r := regions[j]
					if task.Munmap(r.base, uint64(r.pages)*phys.PageSize) == nil {
						regions = append(regions[:j], regions[j+1:]...)
					}
				}
			case 3: // set bank color
				_, _ = task.Mmap(uint64(arg%m.NumBankColors())|kernel.SetMemColor, 0, kernel.ColorAlloc)
			case 4: // set LLC color
				_, _ = task.Mmap(uint64(arg%m.NumLLCColors())|kernel.SetLLCColor, 0, kernel.ColorAlloc)
			case 5: // clear bank color
				_, _ = task.Mmap(uint64(arg%m.NumBankColors())|kernel.ClearMemColor, 0, kernel.ColorAlloc)
			case 6: // clear LLC color
				_, _ = task.Mmap(uint64(arg%m.NumLLCColors())|kernel.ClearLLCColor, 0, kernel.ColorAlloc)
			case 7: // raw page-block alloc (churn)
				order := arg % 3
				if fr, _, err := k.AllocPages(task, order); err == nil {
					stash = append(stash, stashed{fr, order})
					stashFrames += 1 << order
				}
			case 8: // raw page-block free (churn)
				if len(stash) > 0 {
					j := arg % len(stash)
					s := stash[j]
					if err := k.FreePages(s.frame, s.order); err != nil {
						t.Fatalf("op %d: FreePages of stashed block (frame %d, order %d): %v",
							i/3, s.frame, s.order, err)
					}
					stash = append(stash[:j], stash[j+1:]...)
					stashFrames -= 1 << s.order
				}
			case 9: // migrate
				if len(regions) > 0 {
					r := regions[arg%len(regions)]
					_, _ = task.Migrate(r.base, uint64(r.pages)*phys.PageSize)
				}
			}
			audit(i/3, sel)
		}
	})
}
