package kernel

import (
	"fmt"
	"io"
)

// WriteReport prints a /proc-style snapshot of the kernel's memory
// state: per-zone free frames, colored-list occupancy (aggregated per
// bank color and per LLC color — the full 128x32 matrix is available
// from ColorListSnapshot), and the allocation counters.
func (k *Kernel) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "kernel memory report\n")
	fmt.Fprintf(w, "  frames total: %d (%d MiB)\n",
		k.mapping.Frames(), k.mapping.MemBytes()>>20)
	for n := range k.zones {
		fmt.Fprintf(w, "  zone %d: %8d free frames\n", n, k.zones[n].FreeFrames())
	}
	fmt.Fprintf(w, "  colored free pages: %d\n", k.colors.total)

	// Per-bank-color occupancy, grouped by node.
	per := k.mapping.BanksPerNode()
	for n := 0; n < k.mapping.Nodes(); n++ {
		var nodeTotal uint64
		for _, bc := range k.mapping.BankColorsOfNode(n) {
			nodeTotal += k.colors.bankCount[bc]
		}
		if nodeTotal == 0 {
			continue
		}
		fmt.Fprintf(w, "  node %d colored pages: %d over %d bank colors\n", n, nodeTotal, per)
	}

	st := k.stats
	fmt.Fprintf(w, "  faults: %d (colored %d, buddy %d)\n",
		st.Faults, st.ColoredPages, st.BuddyPages)
	fmt.Fprintf(w, "  refills: %d (%d frames shattered)\n", st.Refills, st.RefillFrames)
	fmt.Fprintf(w, "  color mmaps: %d\n", st.ColorMmaps)
	fmt.Fprintf(w, "  tasks: %d across %d processes\n", k.nextTaskID, len(k.procs))
	for _, p := range k.procs {
		for _, t := range p.tasks {
			if !t.usingBank && !t.usingLLC {
				continue
			}
			fmt.Fprintf(w, "    task %d (core %d): bank colors %v, LLC colors %v\n",
				t.id, t.core, t.bankColors, t.llcColors)
		}
	}
}
