package kernel

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// FuzzMmap throws arbitrary (addr, length, prot) triples at the
// syscall surface: it must never panic, and any color request it
// accepts must leave the TCB internally consistent.
func FuzzMmap(f *testing.F) {
	f.Add(uint64(3)|SetMemColor, uint64(0), ColorAlloc)
	f.Add(uint64(7)|SetLLCColor, uint64(0), ColorAlloc)
	f.Add(uint64(999)|SetMemColor, uint64(0), ColorAlloc)
	f.Add(uint64(0), uint64(4096), uint32(0))
	f.Add(^uint64(0), uint64(0), ColorAlloc)
	f.Add(uint64(5)<<56|123, uint64(0), ColorAlloc)
	f.Fuzz(func(t *testing.T, addr, length uint64, prot uint32) {
		// Cap lengths so the fuzzer cannot reserve absurd VA spans.
		length %= 1 << 24
		top := topology.Opteron6128()
		m, err := phys.DefaultSeparable(64<<20, top.Nodes())
		if err != nil {
			t.Fatal(err)
		}
		k, err := New(top, m, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		task, err := k.NewProcess().NewTask(0)
		if err != nil {
			t.Fatal(err)
		}
		va, err := task.Mmap(addr, length, prot)
		if err != nil {
			return // clean rejection
		}
		// Invariants after any accepted call.
		if len(task.BankColors()) > 0 != task.UsingBank() {
			t.Fatalf("using_bank flag inconsistent with color set")
		}
		if len(task.LLCColors()) > 0 != task.UsingLLC() {
			t.Fatalf("using_llc flag inconsistent with color set")
		}
		for _, c := range task.BankColors() {
			if c < 0 || c >= m.NumBankColors() {
				t.Fatalf("accepted out-of-range bank color %d", c)
			}
		}
		for _, c := range task.LLCColors() {
			if c < 0 || c >= m.NumLLCColors() {
				t.Fatalf("accepted out-of-range LLC color %d", c)
			}
		}
		// Region mappings must be translatable at their base.
		if length > 0 && va != 0 {
			if _, _, err := task.Translate(va); err != nil {
				t.Fatalf("accepted mapping not translatable: %v", err)
			}
		}
	})
}
