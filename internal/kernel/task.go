package kernel

import (
	"fmt"
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// ColorAlloc is the mmap protection flag (bit 30, paper Fig. 6) that
// marks a zero-length mmap call as a color-selection request.
const ColorAlloc uint32 = 1 << 30

// Color-selection modes, pre-shifted so callers write the paper's
// idiom directly:
//
//	task.Mmap(uint64(color)|kernel.SetLLCColor, 0, prot|kernel.ColorAlloc)
const (
	colorModeShift        = 56
	colorMask      uint64 = (1 << colorModeShift) - 1

	// SetMemColor adds a memory (controller/bank) color to the task.
	SetMemColor uint64 = 1 << colorModeShift
	// ClearMemColor removes a memory color from the task.
	ClearMemColor uint64 = 2 << colorModeShift
	// SetLLCColor adds an LLC color to the task.
	SetLLCColor uint64 = 3 << colorModeShift
	// ClearLLCColor removes an LLC color from the task.
	ClearLLCColor uint64 = 4 << colorModeShift
)

// vaBase is the first virtual address handed out by mmap. The
// virtual address space is independent of physical memory size.
const vaBase uint64 = 1 << 36

type region struct {
	start, end uint64 // [start, end), page aligned
	// owner is the task whose Mmap created the region. First-touch
	// pages of another task inside it are legal (shared data); the
	// compaction scan (adaptive.go) uses ownership to bound which
	// resident pages a task may migrate toward its own colors.
	owner *Task
}

// Process is an address space shared by its tasks (threads). Heap
// pages are faulted in on first touch by whichever task touches them,
// using that task's coloring policy — the first-touch semantics the
// paper's benchmark analysis relies on.
//
// The page table is the two-level radix array of radixpt.go; the
// map-based table it replaced survives as the reference path behind
// Config.DisableRadixPT (ptm non-nil), pinned byte-identical by
// TestRadixPTDifferential. Exactly one of pt/ptm is live.
type Process struct {
	k       *Kernel
	id      int
	pt      *RadixPT              // radix page table (nil when ptm is live)
	ptm     map[uint64]phys.Frame // reference map page table (DisableRadixPT)
	regions []region              // sorted by start; bump allocation keeps order
	nextVA  uint64
	tasks   []*Task
}

// ptLookup returns the frame mapped at vpage vp, if any.
func (p *Process) ptLookup(vp uint64) (phys.Frame, bool) {
	if p.ptm != nil {
		f, ok := p.ptm[vp]
		return f, ok
	}
	return p.pt.Lookup(vp)
}

// ptInsert maps vp to f.
func (p *Process) ptInsert(vp uint64, f phys.Frame) {
	if p.ptm != nil {
		p.ptm[vp] = f
		return
	}
	p.pt.Insert(vp, f)
}

// ptDelete unmaps vp, reporting whether a mapping existed.
func (p *Process) ptDelete(vp uint64) bool {
	if p.ptm != nil {
		if _, ok := p.ptm[vp]; !ok {
			return false
		}
		delete(p.ptm, vp)
		return true
	}
	return p.pt.Delete(vp)
}

// ID returns the process identifier.
func (p *Process) ID() int { return p.id }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// Tasks returns the process's tasks in creation order.
func (p *Process) Tasks() []*Task { return append([]*Task(nil), p.tasks...) }

// NewTask creates a task (thread) pinned to the given core. Pinning
// is static for the task's lifetime, matching the paper's assumption
// that task-to-core assignments do not migrate.
func (p *Process) NewTask(core topology.CoreID) (*Task, error) {
	if !p.k.topo.ValidCore(core) {
		return nil, fmt.Errorf("kernel: invalid core %d", core)
	}
	t := &Task{
		id:        p.k.nextTaskID,
		proc:      p,
		core:      core,
		bankSet:   make([]bool, p.k.mapping.NumBankColors()),
		llcSet:    make([]bool, p.k.mapping.NumLLCColors()),
		nodeSet:   make([]bool, p.k.mapping.Nodes()),
		nodeOrder: p.k.nodeOrderFor(core),
	}
	if !p.k.cfg.DisableTLB {
		t.tlb = make([]tlbEntry, TLBEntries)
	}
	p.k.nextTaskID++
	p.tasks = append(p.tasks, t)
	return t, nil
}

// MappedPages returns the number of resident pages.
func (p *Process) MappedPages() int {
	if p.ptm != nil {
		return len(p.ptm)
	}
	return p.pt.Len()
}

// regionOf returns the region containing va, if any.
func (p *Process) regionOf(va uint64) (region, bool) {
	i := sort.Search(len(p.regions), func(i int) bool {
		return p.regions[i].end > va
	})
	if i < len(p.regions) && p.regions[i].start <= va {
		return p.regions[i], true
	}
	return region{}, false
}

// Task is the simulated task control block: pinned core, coloring
// flags and color sets (paper Sec. III-B).
type Task struct {
	id          int
	proc        *Process
	core        topology.CoreID
	usingBank   bool
	usingLLC    bool
	bankColors  []int // sorted owned memory colors
	llcColors   []int // sorted owned LLC colors
	bankSet     []bool
	llcSet      []bool
	nodeSet     []bool       // nodes reachable through the owned bank colors
	nodeOrder   []int        // zones in increasing hop distance from core
	comboCursor int          // round-robin over owned color combinations
	faultCount  uint64       // faults served; drives chunked placement luck
	llcScan     int          // rotating LLC column for bank-only coloring
	bankScan    int          // rotating bank offset for LLC-only coloring
	bankOrder   []int        // cached local-first bank color scan order
	pcp         []phys.Frame // per-task page cache (EnablePCP only)
	tlb         []tlbEntry   // direct-mapped translation cache (nil when DisableTLB)
	degraded    uint64       // ladder allocations charged to this task
	// compactCursor is the next virtual page the incremental
	// misplaced-page scan of CompactStep resumes from (adaptive.go);
	// reset by Repolicy, since a color change restarts the scan.
	compactCursor uint64
}

// bankScanOrder returns every bank color ordered local-node-first (by
// the task's zone fallback order), rotated by the task's bankScan
// cursor within each node's group so LLC-only allocations spread over
// the local banks.
func (t *Task) bankScanOrder(k *Kernel) []int {
	if t.bankOrder == nil {
		for _, n := range t.nodeOrder {
			t.bankOrder = append(t.bankOrder, k.mapping.BankColorsOfNode(n)...)
		}
	}
	per := k.mapping.BanksPerNode()
	out := make([]int, 0, len(t.bankOrder))
	for g := 0; g < len(t.bankOrder); g += per {
		grp := t.bankOrder[g : g+per]
		off := t.bankScan % per
		out = append(out, grp[off:]...)
		out = append(out, grp[:off]...)
	}
	return out
}

// ID returns the task identifier (unique across the kernel).
func (t *Task) ID() int { return t.id }

// Core returns the core the task is pinned to.
func (t *Task) Core() topology.CoreID { return t.core }

// Process returns the owning address space.
func (t *Task) Process() *Process { return t.proc }

// UsingBank reports whether memory (controller/bank) coloring is active.
func (t *Task) UsingBank() bool { return t.usingBank }

// UsingLLC reports whether LLC coloring is active.
func (t *Task) UsingLLC() bool { return t.usingLLC }

// Faults returns the page faults this task has triggered — the
// footprint feature of the adaptive classifier (each first touch
// faults exactly one page).
func (t *Task) Faults() uint64 { return t.faultCount }

// Degraded returns the degradation-ladder allocations charged to this
// task — the loan-rate feature of the adaptive classifier.
func (t *Task) Degraded() uint64 { return t.degraded }

// BankColors returns a copy of the owned memory colors.
func (t *Task) BankColors() []int { return append([]int(nil), t.bankColors...) }

// LLCColors returns a copy of the owned LLC colors.
func (t *Task) LLCColors() []int { return append([]int(nil), t.llcColors...) }

// Mmap is the simulated system call. Two forms exist, as in the
// paper:
//
//   - Color selection: length == 0 and prot has ColorAlloc set. addr
//     encodes a mode (SetMemColor and friends) OR'ed with a color.
//     The call updates the TCB and returns 0.
//   - Anonymous mapping: length > 0. A page-aligned virtual range is
//     reserved and its base returned; frames are assigned on first
//     touch via Translate.
func (t *Task) Mmap(addr, length uint64, prot uint32) (uint64, error) {
	if prot&ColorAlloc != 0 && length == 0 {
		return 0, t.setColor(addr)
	}
	if length == 0 {
		return 0, fmt.Errorf("%w: zero length without ColorAlloc", ErrBadMmap)
	}
	pages := (length + phys.PageSize - 1) / phys.PageSize
	base := t.proc.nextVA
	t.proc.nextVA += pages * phys.PageSize
	t.proc.regions = append(t.proc.regions, region{base, base + pages*phys.PageSize, t})
	return base, nil
}

func (t *Task) setColor(arg uint64) error {
	mode := arg &^ colorMask
	color := int(arg & colorMask)
	k := t.proc.k
	k.stats.ColorMmaps++
	switch mode {
	case SetMemColor, ClearMemColor:
		if color < 0 || color >= k.mapping.NumBankColors() {
			return fmt.Errorf("%w: memory color %d (have %d)", ErrBadColor, color, k.mapping.NumBankColors())
		}
		if mode == SetMemColor {
			if !t.bankSet[color] {
				t.bankSet[color] = true
				t.bankColors = insertSorted(t.bankColors, color)
			}
		} else if t.bankSet[color] {
			t.bankSet[color] = false
			t.bankColors = removeSorted(t.bankColors, color)
		}
		t.usingBank = len(t.bankColors) > 0
		for i := range t.nodeSet {
			t.nodeSet[i] = false
		}
		for _, bc := range t.bankColors {
			t.nodeSet[k.mapping.NodeOfBankColor(bc)] = true
		}
	case SetLLCColor, ClearLLCColor:
		if color < 0 || color >= k.mapping.NumLLCColors() {
			return fmt.Errorf("%w: LLC color %d (have %d)", ErrBadColor, color, k.mapping.NumLLCColors())
		}
		if mode == SetLLCColor {
			if !t.llcSet[color] {
				t.llcSet[color] = true
				t.llcColors = insertSorted(t.llcColors, color)
			}
		} else if t.llcSet[color] {
			t.llcSet[color] = false
			t.llcColors = removeSorted(t.llcColors, color)
		}
		t.usingLLC = len(t.llcColors) > 0
	default:
		return fmt.Errorf("%w: unknown color mode %#x", ErrBadMmap, mode>>colorModeShift)
	}
	t.comboCursor = 0
	// Recoloring flushes the task's TLB — the conservative model of a
	// recolor-triggered shootdown (cached translations stay valid, so
	// this affects wall-clock cost only, never simulated state).
	t.tlbFlush()
	return nil
}

// Munmap releases the exact region previously returned by Mmap,
// returning its resident frames to the kernel (colored frames rejoin
// their color lists, uncolored frames the buddy allocator).
func (t *Task) Munmap(va, length uint64) error {
	p := t.proc
	pages := (length + phys.PageSize - 1) / phys.PageSize
	end := va + pages*phys.PageSize
	idx := -1
	for i, r := range p.regions {
		if r.start == va && r.end == end {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: munmap of unmapped region [%#x, %#x)", ErrSegfault, va, end)
	}
	p.regions = append(p.regions[:idx], p.regions[idx+1:]...)
	for vp := va >> phys.PageShift; vp < end>>phys.PageShift; vp++ {
		if f, ok := p.ptLookup(vp); ok {
			p.ptDelete(vp)
			p.shootdownPage(vp)
			p.k.freeFrame(f)
		}
	}
	return nil
}

// Translate resolves va to a physical address for an access by this
// task, faulting in a frame on first touch. The returned cost is the
// simulated fault overhead (0 when the page was already resident).
//
// A TLB hit bypasses both the region check and the page-table map: an
// entry can only exist while its mapping does (shootdowns on munmap,
// migrate and recolor keep it that way), and a hit costs the same
// simulated time (zero) as a resident page-table walk, so the fast
// path changes no simulated outcome.
func (t *Task) Translate(va uint64) (phys.Addr, clock.Dur, error) {
	p := t.proc
	vp := va >> phys.PageShift
	if t.tlb != nil {
		if e := &t.tlb[vp&(TLBEntries-1)]; e.vp == vp {
			p.k.stats.TLBHits++
			return e.frame.Base() + phys.Addr(phys.Offset(phys.Addr(va))), 0, nil
		}
		p.k.stats.TLBMisses++
	}
	if _, ok := p.regionOf(va); !ok {
		return 0, 0, fmt.Errorf("%w: address %#x", ErrSegfault, va)
	}
	if f, ok := p.ptLookup(vp); ok {
		if t.tlb != nil {
			t.tlbInsert(vp, f)
		}
		return f.Base() + phys.Addr(phys.Offset(phys.Addr(va))), 0, nil
	}
	f, cost, rung, err := p.k.allocPagesFor(t)
	if err != nil {
		return 0, cost, err
	}
	p.ptInsert(vp, f)
	if rung != RungNone {
		p.k.registerLoan(f, t, vp, rung)
	}
	if t.tlb != nil {
		t.tlbInsert(vp, f)
	}
	return f.Base() + phys.Addr(phys.Offset(phys.Addr(va))), cost, nil
}

// Resident reports whether the page holding va has a frame.
func (t *Task) Resident(va uint64) bool {
	_, ok := t.proc.ptLookup(va >> phys.PageShift)
	return ok
}

// FrameOfVA returns the frame backing va, if resident.
func (t *Task) FrameOfVA(va uint64) (phys.Frame, bool) {
	return t.proc.ptLookup(va >> phys.PageShift)
}

// wantsNode reports whether any of the task's bank colors lives on
// node n (used to skip zones during colored refill).
func (t *Task) wantsNode(m *phys.Mapping, n int) bool { return t.nodeSet[n] }

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
