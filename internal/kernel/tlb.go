package kernel

import "github.com/tintmalloc/tintmalloc/internal/phys"

// Simulated per-task TLB: a direct-mapped translation cache in front
// of the page-table map in Task.Translate. The TLB is a pure fast
// path — a hit costs the same simulated time (zero) as a resident
// page-table lookup, so enabling or disabling it never changes a
// simulated outcome, only wall-clock cost. Coherence is maintained by
// explicit shootdowns: Munmap and Migrate invalidate the moved vpages
// in every task of the process (the page table is shared), and a
// color-set change flushes the recoloring task's TLB outright, the
// conservative model of a real recolor-triggered shootdown. The
// invariant auditor cross-checks every live entry against the page
// table after each kernel op in tests.

// TLBEntries is the number of entries in each task's simulated TLB —
// sized like the 1024-entry L2 data TLB of the Opteron 6128. It must
// be a power of two (the direct-mapped index is vp & (TLBEntries-1)).
const TLBEntries = 1024

// tlbEntry caches one vpage -> frame translation. vp == 0 marks an
// empty slot: mmap hands out virtual addresses starting at vaBase
// (1 << 36), so no mappable vpage is ever zero.
type tlbEntry struct {
	vp    uint64
	frame phys.Frame
}

// tlbInsert caches the translation vp -> f, displacing whatever
// shared its slot.
func (t *Task) tlbInsert(vp uint64, f phys.Frame) {
	t.tlb[vp&(TLBEntries-1)] = tlbEntry{vp: vp, frame: f}
}

// tlbInvalidate drops the cached translation for vp, if present.
func (t *Task) tlbInvalidate(vp uint64) {
	if e := &t.tlb[vp&(TLBEntries-1)]; e.vp == vp {
		*e = tlbEntry{}
	}
}

// tlbFlush drops every cached translation of the task.
func (t *Task) tlbFlush() {
	if t.tlb == nil {
		return
	}
	clear(t.tlb)
	t.proc.k.stats.TLBShootdowns++
}

// shootdownPage invalidates vp in every task of the process — the
// page table is shared, so any task may have the stale translation
// cached.
func (p *Process) shootdownPage(vp uint64) {
	if p.k.cfg.DisableTLB {
		return
	}
	for _, t := range p.tasks {
		t.tlbInvalidate(vp)
	}
	p.k.stats.TLBShootdowns++
}
