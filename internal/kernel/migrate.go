package kernel

import (
	"fmt"

	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Page migration: recolor already-resident pages. TintMalloc itself
// colors only *future* allocations — data first-touched before a task
// selected its colors (or touched by the wrong task) stays where it
// landed. The paper's related work attacks that gap with dynamic
// page migration (Awasthi et al.); this extension provides the same
// capability on top of the colored allocator, enabling the
// profile-then-recolor workflow without restarting the program:
// record a trace, find the remote-heavy ranges, Migrate them.

// MigratePerPageCost is the simulated cost of copying one 4 KiB page
// (two streaming passes plus TLB shootdown, ~2 us at 2 GHz).
const MigratePerPageCost clock.Dur = 4000

// MigrateStats reports what a Migrate call did.
type MigrateStats struct {
	Scanned   int // resident pages inspected
	Moved     int // pages re-allocated onto the task's colors
	AlreadyOK int // pages already matching the task's colors
	Failed    int // page copies failed by an injected migration fault
	Cost      clock.Dur
}

// Migrate moves the resident pages of [va, va+length) onto frames
// matching t's current colors. Pages already matching are left in
// place. The returned cost covers page copies and the allocation
// work; callers running inside the engine should charge it as
// Compute time. Migration requires the task to have coloring active.
func (t *Task) Migrate(va, length uint64) (MigrateStats, error) {
	var st MigrateStats
	if !t.usingBank && !t.usingLLC {
		return st, fmt.Errorf("kernel: Migrate: task %d has no colors selected", t.id)
	}
	k := t.proc.k
	end := va + length
	for page := va &^ (phys.PageSize - 1); page < end; page += phys.PageSize {
		vp := page >> phys.PageShift
		old, ok := t.proc.ptLookup(vp)
		if !ok {
			continue // not resident; will be colored at first touch
		}
		st.Scanned++
		if t.frameMatchesColors(k, old) {
			st.AlreadyOK++
			continue
		}
		// An injected migration fault degrades gracefully: the page
		// simply stays on its old frame.
		if k.fault.Migrate != nil && k.fault.Migrate(t.id, vp) {
			st.Failed++
			continue
		}
		fresh, cost, rung, err := k.allocPagesFor(t)
		if err != nil {
			return st, fmt.Errorf("kernel: Migrate at %#x: %w", page, err)
		}
		t.proc.ptInsert(vp, fresh)
		if rung != RungNone {
			k.registerLoan(fresh, t, vp, rung)
		}
		t.proc.shootdownPage(vp)
		k.freeFrame(old)
		st.Moved++
		st.Cost += cost + MigratePerPageCost
	}
	return st, nil
}

// frameMatchesColors reports whether frame f satisfies the task's
// current color constraints.
func (t *Task) frameMatchesColors(k *Kernel, f phys.Frame) bool {
	if t.usingBank && !t.bankSet[k.frameBank[f]] {
		return false
	}
	if t.usingLLC && !t.llcSet[k.frameLLC[f]] {
		return false
	}
	return true
}
