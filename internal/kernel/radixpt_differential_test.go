package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Radix page-table differential test: the radix table is a pure
// representation change, so a kernel running it must be
// observationally identical to one booted with Config.DisableRadixPT
// (the map reference) — same bases, same translations, same fault
// costs, same errors, same VisitPages iteration — under arbitrary
// interleavings of mmap, touch, munmap, recolor and migrate. The
// suite-level counterpart (internal/suite TestRadixReferenceSuite
// Differential) pins whole benchmark cells byte-identical at
// -parallel 1 and 4.

type ptTwin struct {
	fast      *kernel.Kernel // radix page tables (default config)
	ref       *kernel.Kernel // DisableRadixPT map reference
	fastTasks []*kernel.Task
	refTasks  []*kernel.Task
	tproc     []int
	regions   map[int][]tlbRegion
}

func newPTTwin() (*ptTwin, error) {
	top := topology.Opteron6128()
	boot := func(disable bool) (*kernel.Kernel, error) {
		m, err := phys.DefaultSeparable(256<<20, top.Nodes())
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.DisableRadixPT = disable
		return kernel.New(top, m, cfg)
	}
	fast, err := boot(false)
	if err != nil {
		return nil, err
	}
	ref, err := boot(true)
	if err != nil {
		return nil, err
	}
	tw := &ptTwin{fast: fast, ref: ref, regions: map[int][]tlbRegion{}}
	fp := []*kernel.Process{fast.NewProcess(), fast.NewProcess()}
	rp := []*kernel.Process{ref.NewProcess(), ref.NewProcess()}
	for _, tc := range []struct {
		p    int
		core topology.CoreID
	}{{0, 0}, {0, 5}, {1, 10}} {
		ft, err := fp[tc.p].NewTask(tc.core)
		if err != nil {
			return nil, err
		}
		rt, err := rp[tc.p].NewTask(tc.core)
		if err != nil {
			return nil, err
		}
		tw.fastTasks = append(tw.fastTasks, ft)
		tw.refTasks = append(tw.refTasks, rt)
		tw.tproc = append(tw.tproc, tc.p)
	}
	return tw, nil
}

func (tw *ptTwin) apply(o kop) error {
	ti := o.task % len(tw.fastTasks)
	ft, rt := tw.fastTasks[ti], tw.refTasks[ti]
	proc := tw.tproc[ti]
	regs := tw.regions[proc]
	switch o.kind {
	case opMmap:
		pages := 1 + o.arg%16
		fb, ferr := ft.Mmap(0, uint64(pages)*phys.PageSize, 0)
		rb, rerr := rt.Mmap(0, uint64(pages)*phys.PageSize, 0)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("mmap diverged: radix err %v, map err %v", ferr, rerr)
		}
		if ferr != nil {
			return nil
		}
		if fb != rb {
			return fmt.Errorf("mmap base diverged: radix %#x, map %#x", fb, rb)
		}
		tw.regions[proc] = append(regs, tlbRegion{base: fb, pages: pages})

	case opTouch:
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		va := reg.base + uint64(o.page%reg.pages)*phys.PageSize
		fpa, fcost, ferr := ft.Translate(va)
		rpa, rcost, rerr := rt.Translate(va)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("translate %#x diverged: radix err %v, map err %v", va, ferr, rerr)
		}
		if ferr != nil {
			return nil
		}
		if fpa != rpa {
			return fmt.Errorf("translate %#x: radix kernel says %#x, map reference says %#x", va, fpa, rpa)
		}
		if fcost != rcost {
			return fmt.Errorf("translate %#x: radix charged %d cycles, map %d — the table must not change timing", va, fcost, rcost)
		}

	case opMunmap:
		if len(regs) == 0 {
			return nil
		}
		i := o.arg % len(regs)
		reg := regs[i]
		ferr := ft.Munmap(reg.base, uint64(reg.pages)*phys.PageSize)
		rerr := rt.Munmap(reg.base, uint64(reg.pages)*phys.PageSize)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("munmap [%#x,+%d) diverged: radix err %v, map err %v", reg.base, reg.pages, ferr, rerr)
		}
		if ferr == nil {
			tw.regions[proc] = append(regs[:i:i], regs[i+1:]...)
		}

	case opSetBank, opClearBank, opSetLLC, opClearLLC:
		m := tw.fast.Mapping()
		var arg uint64
		switch o.kind {
		case opSetBank:
			arg = uint64(o.arg%m.NumBankColors()) | kernel.SetMemColor
		case opClearBank:
			arg = uint64(o.arg%m.NumBankColors()) | kernel.ClearMemColor
		case opSetLLC:
			arg = uint64(o.arg%m.NumLLCColors()) | kernel.SetLLCColor
		case opClearLLC:
			arg = uint64(o.arg%m.NumLLCColors()) | kernel.ClearLLCColor
		}
		_, ferr := ft.Mmap(arg, 0, kernel.ColorAlloc)
		_, rerr := rt.Mmap(arg, 0, kernel.ColorAlloc)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("color op %#x diverged: radix err %v, map err %v", arg, ferr, rerr)
		}

	case opMigrate:
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		fst, ferr := ft.Migrate(reg.base, uint64(reg.pages)*phys.PageSize)
		rst, rerr := rt.Migrate(reg.base, uint64(reg.pages)*phys.PageSize)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("migrate [%#x,+%d) diverged: radix err %v, map err %v", reg.base, reg.pages, ferr, rerr)
		}
		if ferr == nil && fst != rst {
			return fmt.Errorf("migrate stats diverged: radix %+v, map %+v", fst, rst)
		}
	}
	return nil
}

// checkVisit compares the two kernels' page-table iterations entry by
// entry: both must yield identical (vpage, frame) sequences in
// ascending vpage order — the radix structurally, the map via its
// sorted-keys pass.
func (tw *ptTwin) checkVisit() error {
	for pi := range tw.fast.Processes() {
		type ent struct {
			vp uint64
			f  phys.Frame
		}
		var fe, re []ent
		tw.fast.Processes()[pi].VisitPages(func(vp uint64, f phys.Frame) { fe = append(fe, ent{vp, f}) })
		tw.ref.Processes()[pi].VisitPages(func(vp uint64, f phys.Frame) { re = append(re, ent{vp, f}) })
		if len(fe) != len(re) {
			return fmt.Errorf("process %d: radix visits %d pages, map %d", pi, len(fe), len(re))
		}
		for i := range fe {
			if fe[i] != re[i] {
				return fmt.Errorf("process %d entry %d: radix (%#x,%d), map (%#x,%d)",
					pi, i, fe[i].vp, fe[i].f, re[i].vp, re[i].f)
			}
			if i > 0 && fe[i].vp <= fe[i-1].vp {
				return fmt.Errorf("process %d: radix visit order not strictly ascending at entry %d", pi, i)
			}
		}
	}
	return nil
}

func TestRadixPTDifferential(t *testing.T) {
	kinds := []int{
		opMmap, opMmap, opTouch, opTouch, opTouch, opTouch,
		opMunmap, opMunmap, opMigrate,
		opSetBank, opClearBank, opSetLLC, opClearLLC,
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tw, err := newPTTwin()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 600; i++ {
				o := kop{
					kind: kinds[rng.Intn(len(kinds))],
					task: rng.Intn(3),
					arg:  rng.Intn(1 << 16),
					page: rng.Intn(1 << 16),
				}
				if err := tw.apply(o); err != nil {
					t.Fatalf("op %d %v: %v", i, o, err)
				}
				if (i+1)%32 == 0 {
					if err := tw.checkVisit(); err != nil {
						t.Fatalf("after op %d %v: %v", i, o, err)
					}
					if err := invariant.Audit(tw.fast).Err(); err != nil {
						t.Fatalf("after op %d %v: radix kernel: %v", i, o, err)
					}
					if err := invariant.Audit(tw.ref).Err(); err != nil {
						t.Fatalf("after op %d %v: map reference kernel: %v", i, o, err)
					}
				}
			}
			if err := tw.checkVisit(); err != nil {
				t.Fatal(err)
			}
			if fs, rs := tw.fast.Stats(), tw.ref.Stats(); fs != rs {
				t.Errorf("stats diverged:\nradix %+v\nmap   %+v", fs, rs)
			}
		})
	}
}

// FuzzRadixPT feeds encoded op interleavings to the radix/map kernel
// twins with the invariant auditor armed, while the same bytes also
// drive a bare RadixPT against a plain map model — so both the kernel
// integration and the naked data structure are cross-checked against
// the reference map on every input.
//
// Encoding: 3 bytes per op [sel, arg, page]; sel%8 picks the kernel
// op and (sel/8)%3 the task; for the bare-structure check the same
// triple becomes insert/delete/lookup over a two-cluster vpage space
// (a low cluster near 0 and a high one ~2^21 pages up) so the biased
// root grows in both directions.
func FuzzRadixPT(f *testing.F) {
	f.Add([]byte{0, 4, 0, 1, 0, 0, 1, 0, 1, 2, 0, 0})
	f.Add([]byte{0, 15, 0, 3, 1, 0, 1, 0, 7, 7, 2, 0, 1, 0, 7, 2, 0, 0})
	f.Add([]byte{3, 1, 0, 4, 2, 0, 0, 2, 0, 1, 0, 0, 7, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 64
		tw, err := newPTTwin()
		if err != nil {
			t.Fatal(err)
		}
		var bare kernel.RadixPT
		model := map[uint64]phys.Frame{}

		for i := 0; i+2 < len(data) && i/3 < maxOps; i += 3 {
			sel, arg, page := int(data[i]), int(data[i+1]), int(data[i+2])
			o := kop{kind: sel % 8, task: (sel / 8) % 3, arg: arg, page: page}
			if err := tw.apply(o); err != nil {
				t.Fatalf("op %d %v: %v", i/3, o, err)
			}
			if (i/3+1)%16 == 0 {
				if err := tw.checkVisit(); err != nil {
					t.Fatalf("after op %d: %v", i/3, err)
				}
				if err := invariant.Audit(tw.fast).Err(); err != nil {
					t.Fatalf("after op %d: radix kernel: %v", i/3, err)
				}
			}

			// Bare-structure model check on the same bytes.
			vp := uint64(arg)
			if page%2 == 1 {
				vp += 1 << 21 // high cluster: root must grow upward/downward
			}
			switch sel % 3 {
			case 0:
				fr := phys.Frame(page)
				bare.Insert(vp, fr)
				model[vp] = fr
			case 1:
				got := bare.Delete(vp)
				_, want := model[vp]
				if got != want {
					t.Fatalf("bare Delete(%#x) = %v, model says %v", vp, got, want)
				}
				delete(model, vp)
			case 2:
				gf, gok := bare.Lookup(vp)
				wf, wok := model[vp]
				if gok != wok || (gok && gf != wf) {
					t.Fatalf("bare Lookup(%#x) = (%d,%v), model (%d,%v)", vp, gf, gok, wf, wok)
				}
			}
			if bare.Len() != len(model) {
				t.Fatalf("bare Len %d, model %d", bare.Len(), len(model))
			}
		}
		if err := tw.checkVisit(); err != nil {
			t.Fatal(err)
		}
		if err := invariant.Audit(tw.fast).Err(); err != nil {
			t.Fatalf("final audit (radix): %v", err)
		}
		if err := invariant.Audit(tw.ref).Err(); err != nil {
			t.Fatalf("final audit (map reference): %v", err)
		}
		n := 0
		bare.Visit(func(vp uint64, fr phys.Frame) {
			if model[vp] != fr {
				t.Fatalf("bare Visit(%#x) = %d, model %d", vp, fr, model[vp])
			}
			n++
		})
		if n != len(model) {
			t.Fatalf("bare Visit yielded %d, model %d", n, len(model))
		}
	})
}
