package kernel

import (
	"sort"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Introspection accessors for the invariant auditor
// (internal/invariant). They expose read-only views of the kernel's
// frame bookkeeping — color lists, the colored-frame ownership marks,
// buddy free blocks, page tables and pcp caches — so tests can
// cross-check every layer's view of physical memory against the
// others without reaching into unexported state. None of them are
// used on simulation hot paths.

// VisitColorLists calls fn for every frame parked on a color list,
// with the (bank color, LLC color) bucket it is parked under, in
// deterministic bucket-then-stack order.
func (k *Kernel) VisitColorLists(fn func(bankColor, llcColor int, f phys.Frame)) {
	for bc := 0; bc < k.colors.nBank; bc++ {
		for lc := 0; lc < k.colors.nLLC; lc++ {
			for _, f := range k.colors.list(bc, lc) {
				fn(bc, lc, f)
			}
		}
	}
}

// VisitZoneFree calls fn for every free buddy block of node n's zone,
// with head expressed as a global frame number.
func (k *Kernel) VisitZoneFree(n int, fn func(head phys.Frame, order int)) {
	base := k.zoneLo[n]
	k.zones[n].VisitFreeBlocks(func(head phys.Frame, order int) {
		fn(base+head, order)
	})
}

// FrameColored reports whether f is owned by the colored allocator —
// parked on a color list or handed out through the colored path (such
// frames rejoin their color list on free, never the buddy).
func (k *Kernel) FrameColored(f phys.Frame) bool { return k.coloredFrame[f] }

// FrameColors returns the (bank, LLC) color of f from the kernel's
// dense lookup tables — the values the colored free lists key on.
func (k *Kernel) FrameColors(f phys.Frame) (bankColor, llcColor int) {
	return int(k.frameBank[f]), int(k.frameLLC[f])
}

// Processes returns the kernel's address spaces in creation order.
func (k *Kernel) Processes() []*Process { return append([]*Process(nil), k.procs...) }

// VisitPages calls fn for every resident page of p in ascending
// virtual-page order. On the radix path the order is structural —
// RadixPT.Visit walks root chunks and leaf slots in ascending index
// order — so the guarantee holds with no sorting pass; the map
// reference path must sort its keys to offer the same order, and the
// differential tests rely on the two iterations matching exactly.
func (p *Process) VisitPages(fn func(vpage uint64, f phys.Frame)) {
	if p.ptm != nil {
		vps := make([]uint64, 0, len(p.ptm))
		for vp := range p.ptm {
			vps = append(vps, vp)
		}
		sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
		for _, vp := range vps {
			fn(vp, p.ptm[vp])
		}
		return
	}
	p.pt.Visit(fn)
}

// Loans returns the number of outstanding degradation-ladder loans
// (frames handed out below preferred placement and not yet reclaimed
// or freed).
func (k *Kernel) Loans() int { return len(k.loans) }

// VisitLoans calls fn for every outstanding loan in ascending frame
// order: the borrowing task, the virtual page the frame backs, and
// the ladder rung it came from.
func (k *Kernel) VisitLoans(fn func(f phys.Frame, t *Task, vpage uint64, rung Rung)) {
	frames := make([]phys.Frame, 0, len(k.loans))
	for f := range k.loans {
		frames = append(frames, f)
	}
	sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
	for _, f := range frames {
		l := k.loans[f]
		fn(f, l.task, l.vp, l.rung)
	}
}

// LoanRungMirror returns the rung the flat hot-path loan mirror holds
// for frame f (RungNone when unloaned). The auditor's check 7 walks
// it against the loans map: the mirror is what freeFrame consults, so
// a divergence means a loan could be silently dropped or kept past
// its settlement.
func (k *Kernel) LoanRungMirror(f phys.Frame) Rung {
	if k.loanRung[f] == 0 {
		return RungNone
	}
	return Rung(k.loanRung[f] - 1)
}

// ResidentPages counts the resident pages of the regions this task
// mmapped — its live footprint, the classifier's capacity feature.
// O(region pages); meant for barrier-rate sampling, not hot paths.
func (t *Task) ResidentPages() uint64 {
	var n uint64
	for _, r := range t.proc.regions {
		if r.owner != t {
			continue
		}
		for vp := r.start >> phys.PageShift; vp < r.end>>phys.PageShift; vp++ {
			if _, ok := t.proc.ptLookup(vp); ok {
				n++
			}
		}
	}
	return n
}

// OwnsBankColor reports whether the task's TCB holds bank color c.
func (t *Task) OwnsBankColor(c int) bool { return c >= 0 && c < len(t.bankSet) && t.bankSet[c] }

// OwnsLLCColor reports whether the task's TCB holds LLC color c.
func (t *Task) OwnsLLCColor(c int) bool { return c >= 0 && c < len(t.llcSet) && t.llcSet[c] }

// PCPFrames returns a copy of the task's per-CPU page cache (frames
// pulled from a zone but not yet handed to a fault).
func (t *Task) PCPFrames() []phys.Frame { return append([]phys.Frame(nil), t.pcp...) }

// VisitTLB calls fn for every live entry of the task's simulated TLB
// in slot order. It visits nothing when the TLB is disabled.
func (t *Task) VisitTLB(fn func(vpage uint64, f phys.Frame)) {
	for _, e := range t.tlb {
		if e.vp != 0 {
			fn(e.vp, e.frame)
		}
	}
}
