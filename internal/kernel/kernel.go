// Package kernel simulates the slice of an operating-system kernel
// that TintMalloc modifies (paper Sec. III): task control blocks with
// per-task color sets, the mmap() color-selection protocol, page
// tables with fault-driven first-touch frame allocation, and the
// colored free lists of Algorithms 1 and 2 layered over a buddy
// allocator.
//
// The flow mirrors the paper exactly:
//
//  1. A task opts in by calling Mmap with length 0, the COLOR_ALLOC
//     protection bit, and an address argument encoding a mode
//     (set/clear x memory/LLC) and a color. The color set is stored
//     in the TCB together with the using_bank/using_llc flags.
//  2. Subsequent page faults for that task take the colored path of
//     Algorithm 1: pop a frame from color_list[MEM_ID][LLC_ID]; if
//     the list is empty, traverse the buddy free lists by increasing
//     order for a block containing a matching frame and shatter it
//     into the color lists (create_color_list, Algorithm 2).
//  3. Uncolored tasks, and orders greater than zero, use the default
//     buddy path.
//
// The kernel is deterministic and not safe for concurrent use; the
// discrete-event engine serializes all calls.
package kernel

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/tintmalloc/tintmalloc/internal/buddy"
	"github.com/tintmalloc/tintmalloc/internal/clock"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// Sentinel errors.
var (
	// ErrNoColoredMemory reports that no free page of the task's
	// colors exists anywhere (paper: "mmap() will return an error
	// code indicating that no more pages of this color are
	// available").
	ErrNoColoredMemory = errors.New("kernel: no pages of the requested color available")
	// ErrBadColor reports a color outside the platform's range.
	ErrBadColor = errors.New("kernel: color out of range")
	// ErrBadMmap reports a malformed mmap color request.
	ErrBadMmap = errors.New("kernel: malformed mmap arguments")
	// ErrSegfault reports access to an unmapped virtual address.
	ErrSegfault = errors.New("kernel: segmentation fault")
	// ErrNoMemory reports buddy exhaustion on the uncolored path.
	ErrNoMemory = errors.New("kernel: out of memory")
	// ErrAdaptiveDisabled reports a Task.Repolicy call on a kernel
	// booted with Config.DisableAdaptive (the static reference mode).
	ErrAdaptiveDisabled = errors.New("kernel: adaptive repolicy disabled")
)

// Config tunes the simulated costs of kernel operations.
type Config struct {
	// FaultCost is charged for every minor page fault (page-table
	// fill from an already-available frame).
	FaultCost clock.Dur
	// RefillBaseCost is the extra charge when a colored fault must
	// traverse the buddy free lists and shatter a block
	// (create_color_list); the paper notes this makes the first
	// heap requests of an application more expensive.
	RefillBaseCost clock.Dur
	// RefillPerFrameCost is charged per frame moved into the color
	// lists during a refill.
	RefillPerFrameCost clock.Dur
	// ChurnSeed, when nonzero, ages the zones at boot: every frame
	// is allocated, shuffled and freed again so the free lists hand
	// out pages in randomized physical order — the state of a real
	// system after uptime, rather than the pristine contiguity of a
	// fresh buddy allocator. HoldoutFrac (default 0) additionally
	// keeps that fraction of frames allocated forever (resident
	// pages of "other" processes), pinning the fragmentation.
	ChurnSeed   int64
	HoldoutFrac float64
	// EnablePCP restores Linux's per-CPU page (pcp) cache for the
	// DEFAULT allocation path: uncolored order-0 requests are served
	// from a small per-task batch cache refilled PCPBatch pages at a
	// time from the zone. The paper's kernel disables the pcp list
	// so order-0 requests reach the colored selection logic; this
	// knob exists to ablate that design choice — colored requests
	// bypass the pcp cache regardless, exactly as in the paper.
	EnablePCP bool
	// DisableTLB turns off the per-task simulated TLB so every
	// Translate walks the region list and page table. The TLB is a
	// pure fast path (a hit costs the same simulated time as a
	// resident page-table lookup), so this knob changes wall-clock
	// speed only; the differential tests use it to pin the TLB'd
	// kernel against a TLB-less reference.
	DisableTLB bool
	// BuddyRemoteFrac models the imperfect NUMA locality of the
	// default allocator on a busy system (paper Fig. 7: "one task
	// may access a remote memory node under the buddy allocator"):
	// this fraction of an uncolored task's fault *chunks* (runs of
	// RemoteChunkPages consecutive faults) is served from a remote
	// zone, as happens when the local zone is under transient
	// pressure. Placement is deterministic per (task, chunk, churn
	// seed), so different threads draw different luck — the
	// per-thread placement variance behind the paper's buddy
	// imbalance. Colored allocations are unaffected: TintMalloc's
	// node-constrained path is the point of the paper.
	BuddyRemoteFrac float64
	// DisableDegrade restores the paper-faithful fail-hard allocation
	// semantics: a colored fault that cannot be refilled returns
	// ErrNoColoredMemory and an uncolored fault with dry zones
	// returns ErrNoMemory, even when free frames exist elsewhere.
	// With the default (false), the kernel walks the degradation
	// ladder of DESIGN.md Sec. 10 instead and only reports OOM once
	// no free frame exists anywhere on the machine.
	DisableDegrade bool
	// DisableRadixPT restores the reference map-backed page tables so
	// every process resolves vpages through a map[uint64]phys.Frame
	// instead of the radix arrays of radixpt.go. The radix table is a
	// pure representation change — same mappings, same outcomes — so
	// this knob affects wall-clock speed only; the differential tests
	// pin the two paths byte-identical (DESIGN.md Sec. 14).
	DisableRadixPT bool
	// DisableAdaptive is the reference mode for the adaptive policy
	// engine (DESIGN.md Sec. 15): it makes Task.Repolicy refuse with
	// ErrAdaptiveDisabled, so a run configured with it can never switch
	// a task's colors or run barrier compaction behind the
	// experimenter's back. The adaptive driver (internal/bench) checks
	// the knob before installing its barrier hook; the differential
	// tests pin a DisableAdaptive run byte-identical to the static
	// policies it started from.
	DisableAdaptive bool
}

// RemoteChunkPages is the fault-chunk granularity of BuddyRemoteFrac:
// zone pressure is bursty, so placement luck applies to runs of
// consecutive faults rather than to single pages.
const RemoteChunkPages = 256

// PCPBatch is the pcp-cache refill batch (pages), matching Linux's
// default pcp->batch order of magnitude.
const PCPBatch = 8

// DefaultConfig returns fault costs roughly matching a Linux minor
// fault (~1 us at 2 GHz) and a list refill.
func DefaultConfig() Config {
	return Config{
		FaultCost:          2000,
		RefillBaseCost:     400,
		RefillPerFrameCost: 8,
	}
}

// Stats counts kernel allocation events.
type Stats struct {
	Faults       uint64 // total page faults served
	ColoredPages uint64 // frames handed out via the colored path
	BuddyPages   uint64 // frames handed out via the default path
	Refills      uint64 // create_color_list invocations
	RefillFrames uint64 // frames shattered into color lists
	ColorMmaps   uint64 // color-protocol mmap calls
	PCPHits      uint64 // default-path pages served from the pcp cache

	// Simulated-TLB counters (zero when Config.DisableTLB).
	TLBHits       uint64 // Translate calls served by the TLB
	TLBMisses     uint64 // Translate calls that walked the page table
	TLBShootdowns uint64 // invalidation events (munmap/migrate pages, recolor flushes)

	// Degradation-ladder counters (DESIGN.md Sec. 10). All zero while
	// the preferred paths never fail; ladder frames are counted here
	// and nowhere else (not in ColoredPages/BuddyPages), so the
	// preferred-path counters keep their paper meaning.
	DegradedAllocs  [NumRungs]uint64 // frames handed out per ladder rung
	LoansReclaimed  uint64           // loaned pages migrated back to preferred placement
	ParkedReclaimed uint64           // parked pages un-colored to serve order>0 requests

	// Loan-ledger counters (auditor check 7, DESIGN.md Sec. 15). Every
	// loan is registered exactly once and settled exactly once — by a
	// free, a reclaim migration, or a repolicy that legalizes it in
	// place — so LoansRegistered == LoansSettled + outstanding loans at
	// every audit point.
	LoansRegistered uint64 // loans opened (registerLoan)
	LoansSettled    uint64 // loans closed (freed, migrated home, or legalized)
	LoansDemoted    uint64 // borrow-color loans demoted to remote by a repolicy

	// Adaptive-engine counters (DESIGN.md Sec. 15). Zero unless a
	// barrier driver calls Task.Repolicy / Task.CompactStep.
	Repolicies   uint64 // Task.Repolicy color-set switches applied
	CompactScans uint64 // resident pages inspected by CompactStep
	CompactMoved uint64 // misplaced pages migrated home by CompactStep
}

// Kernel owns physical memory and all simulated processes.
//
// Physical memory is managed as one buddy zone per memory node, as in
// Linux: the default (uncolored) allocation path serves a fault from
// the faulting task's local node first, falling back to other nodes
// in increasing hop distance. The colored path searches the zones in
// the same local-first order.
type Kernel struct {
	topo    *topology.Topology
	mapping *phys.Mapping
	cfg     Config
	zones   []*buddy.Allocator // one buddy zone per node
	zoneLo  []phys.Frame       // first global frame of each zone
	colors  *colorTable
	// coloredFrame marks frames currently owned by the color lists
	// or handed out through them; such frames return to the color
	// lists on free rather than to the buddy (paper Sec. III-C).
	coloredFrame []bool
	// Dense frame->color lookup tables (from the mapping).
	frameBank  []int32
	frameLLC   []int16
	procs      []*Process
	nextTaskID int
	stats      Stats
	// loans tracks frames handed out below the top of the degradation
	// ladder (degrade.go); nil until the first degraded allocation.
	// loanRung is its flat hot-path mirror, indexed by frame: rung+1
	// while a loan exists, 0 otherwise — freeFrame consults it so the
	// common (unloaned) free never touches the map.
	loans    map[phys.Frame]loan
	loanRung []uint8
	// fault holds the kernel-level fault-injection hooks (zone-level
	// hooks live on the buddy allocators themselves).
	fault FaultHooks
}

// New boots a kernel over the given machine. The entire physical
// memory is seeded into the per-node buddy zones; color lists start
// empty, exactly as after the paper's boot phase.
func New(topo *topology.Topology, mapping *phys.Mapping, cfg Config) (*Kernel, error) {
	zones, err := BuildZones(mapping, cfg)
	if err != nil {
		return nil, err
	}
	return NewWithZones(topo, mapping, cfg, zones)
}

// BuildZones constructs (and, when cfg.ChurnSeed is set, ages) the
// per-node buddy zones for a mapping. Exposed so harnesses can age
// zones once and Clone them for repeated runs.
func BuildZones(mapping *phys.Mapping, cfg Config) ([]*buddy.Allocator, error) {
	framesPerNode := mapping.Frames() / uint64(mapping.Nodes())
	var zones []*buddy.Allocator
	for n := 0; n < mapping.Nodes(); n++ {
		z, err := buddy.New(framesPerNode)
		if err != nil {
			return nil, err
		}
		if cfg.ChurnSeed != 0 {
			if err := churnZone(z, cfg.ChurnSeed+int64(n), cfg.HoldoutFrac); err != nil {
				return nil, err
			}
		}
		zones = append(zones, z)
	}
	return zones, nil
}

// NewWithZones boots a kernel over pre-built zones (one per node,
// each spanning the node's frame range). The kernel takes ownership
// of the zones.
func NewWithZones(topo *topology.Topology, mapping *phys.Mapping, cfg Config, zones []*buddy.Allocator) (*Kernel, error) {
	if topo.Nodes() != mapping.Nodes() {
		return nil, fmt.Errorf("kernel: topology nodes %d != mapping nodes %d",
			topo.Nodes(), mapping.Nodes())
	}
	framesPerNode := mapping.Frames() / uint64(mapping.Nodes())
	if len(zones) != mapping.Nodes() {
		return nil, fmt.Errorf("kernel: %d zones for %d nodes", len(zones), mapping.Nodes())
	}
	for n, z := range zones {
		if z.Frames() != framesPerNode {
			return nil, fmt.Errorf("kernel: zone %d spans %d frames, want %d", n, z.Frames(), framesPerNode)
		}
	}
	k := &Kernel{
		topo:         topo,
		mapping:      mapping,
		cfg:          cfg,
		zones:        zones,
		colors:       newColorTable(mapping.NumBankColors(), mapping.NumLLCColors()),
		coloredFrame: make([]bool, mapping.Frames()),
		loanRung:     make([]uint8, mapping.Frames()),
	}
	k.frameBank, k.frameLLC = mapping.FrameColorTables()
	for n := 0; n < mapping.Nodes(); n++ {
		k.zoneLo = append(k.zoneLo, phys.Frame(uint64(n)*framesPerNode))
	}
	return k, nil
}

// churnZone ages a fresh zone into the page-granular fragmentation of
// a long-running system: every frame is allocated, the population is
// shuffled, a holdout fraction stays resident forever (other
// processes' memory), and the rest are freed in random order. The
// free lists afterwards hand out pages in randomized physical order —
// the state the paper's evaluation machine is in, rather than the
// pristine contiguity of a freshly booted buddy allocator.
func churnZone(z *buddy.Allocator, seed int64, holdout float64) error {
	if holdout < 0 || holdout >= 1 {
		return fmt.Errorf("kernel: holdout fraction %v out of range", holdout)
	}
	rng := rand.New(rand.NewSource(seed))
	frames := make([]phys.Frame, 0, z.Frames())
	for {
		f, err := z.Alloc(0)
		if err != nil {
			break
		}
		frames = append(frames, f)
	}
	rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	keep := int(holdout * float64(len(frames)))
	for _, f := range frames[keep:] {
		if err := z.Free(f, 0); err != nil {
			return err
		}
	}
	return nil
}

// splitmix is a 64-bit mix for deterministic per-chunk placement.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// nodeOrderFor returns node indices sorted by hop distance from core
// (ties by node id): the zone fallback order of the default policy.
func (k *Kernel) nodeOrderFor(core topology.CoreID) []int {
	n := k.topo.Nodes()
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	// Insertion sort by (hops, id): n is tiny.
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			ha := k.topo.Hops(core, topology.NodeID(a))
			hb := k.topo.Hops(core, topology.NodeID(b))
			if ha > hb || (ha == hb && a > b) {
				out[j-1], out[j] = b, a
			} else {
				break
			}
		}
	}
	return out
}

// Mapping returns the machine's physical address mapping.
func (k *Kernel) Mapping() *phys.Mapping { return k.mapping }

// Topology returns the machine topology.
func (k *Kernel) Topology() *topology.Topology { return k.topo }

// Stats returns a copy of the kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// FreeFrames returns the frames still in the buddy zones.
func (k *Kernel) FreeFrames() uint64 {
	var total uint64
	for _, z := range k.zones {
		total += z.FreeFrames()
	}
	return total
}

// FreeFramesOfNode returns the free frames in node n's zone.
func (k *Kernel) FreeFramesOfNode(n int) uint64 { return k.zones[n].FreeFrames() }

// ColoredFreePages returns the number of free pages currently parked
// on color_list[bankColor][llcColor].
func (k *Kernel) ColoredFreePages(bankColor, llcColor int) int {
	return len(k.colors.list(bankColor, llcColor))
}

// TotalColoredFree returns all pages across every color list.
func (k *Kernel) TotalColoredFree() uint64 { return k.colors.total }

// ColorListSnapshot returns the page count parked on every color
// list as a [bank color][LLC color] matrix — the /proc-style view of
// the paper's color_list[128][32].
func (k *Kernel) ColorListSnapshot() [][]int {
	out := make([][]int, k.colors.nBank)
	for bc := range out {
		out[bc] = make([]int, k.colors.nLLC)
		for lc := range out[bc] {
			out[bc][lc] = len(k.colors.list(bc, lc))
		}
	}
	return out
}

// NewProcess creates an empty address space.
func (k *Kernel) NewProcess() *Process {
	p := &Process{
		k:      k,
		id:     len(k.procs),
		nextVA: vaBase,
	}
	if k.cfg.DisableRadixPT {
		p.ptm = make(map[uint64]phys.Frame)
	} else {
		p.pt = new(RadixPT)
	}
	k.procs = append(k.procs, p)
	return p
}

// allocPagesFor implements Algorithm 1 for an order-0 request on
// behalf of task t, extended with the degradation ladder of DESIGN.md
// Sec. 10: when the preferred placement fails and degradation is
// enabled, the kernel steps down rung by rung and only reports OOM
// once no free frame exists anywhere. The returned rung is RungNone
// for a preferred-placement frame; callers that map a ladder frame
// must register it as a loan (registerLoan) so the reclaim pass and
// the invariant auditor can track it.
func (k *Kernel) allocPagesFor(t *Task) (phys.Frame, clock.Dur, Rung, error) {
	k.stats.Faults++
	if !t.usingBank && !t.usingLLC {
		if f, cost, ok := k.allocDefault(t); ok {
			return f, cost, RungNone, nil
		}
		if k.cfg.DisableDegrade {
			return 0, 0, RungNone, ErrNoMemory
		}
		// Default-path ladder: the zones are dry, but free pages may
		// still be parked on color lists. Taking one spends a colored
		// page on an uncolored task — a degraded allocation, a
		// same-node borrow when the page is local.
		if f, ok := k.popAnyParked(t); ok {
			rung := RungRemote
			if k.mapping.NodeOfFrame(f) == t.nodeOrder[0] {
				rung = RungBorrowColor
			}
			k.noteDegraded(t, rung)
			return f, k.cfg.FaultCost, rung, nil
		}
		return 0, 0, RungNone, ErrNoMemory
	}
	t.faultCount++
	f, cost, ok := k.allocColored(t)
	if ok {
		return f, cost, RungNone, nil
	}
	if k.cfg.DisableDegrade {
		return 0, cost, RungNone, ErrNoColoredMemory
	}
	if f, rung, ok := k.degradedColoredAlloc(t); ok {
		k.noteDegraded(t, rung)
		return f, cost, rung, nil
	}
	// The ladder swept buddy zones and color lists alike, so this is
	// genuine machine-wide exhaustion, not a coloring failure.
	return 0, cost, RungNone, ErrNoMemory
}

// allocDefault is the default (uncolored) path: pcp cache, then the
// buddy zones local-first with BuddyRemoteFrac chunk diversion.
func (k *Kernel) allocDefault(t *Task) (phys.Frame, clock.Dur, bool) {
	// pcp fast path: serve from the per-task page cache.
	if k.cfg.EnablePCP {
		if n := len(t.pcp); n > 0 {
			f := t.pcp[n-1]
			t.pcp = t.pcp[:n-1]
			t.faultCount++
			k.stats.BuddyPages++
			k.stats.PCPHits++
			return f, k.cfg.FaultCost, true
		}
	}
	// Default policy: local zone first, then by hop distance —
	// except for the fault chunks that BuddyRemoteFrac diverts
	// to a remote zone (transient local pressure).
	order := t.nodeOrder
	if k.cfg.BuddyRemoteFrac > 0 && len(order) > 1 {
		chunk := t.faultCount / RemoteChunkPages
		h := splitmix(uint64(t.id)*0x9E3779B97F4A7C15 ^ uint64(chunk)<<20 ^ uint64(k.cfg.ChurnSeed))
		if float64(h%1000) < k.cfg.BuddyRemoteFrac*1000 {
			remote := 1 + int(splitmix(h)%uint64(len(order)-1))
			reordered := make([]int, 0, len(order))
			reordered = append(reordered, order[remote])
			for i, n := range order {
				if i != remote {
					reordered = append(reordered, n)
				}
			}
			order = reordered
		}
	}
	t.faultCount++
	for _, n := range order {
		if f, err := k.zones[n].Alloc(0); err == nil {
			if k.cfg.EnablePCP {
				// Batch-refill the pcp cache from the same zone.
				for len(t.pcp) < PCPBatch-1 {
					extra, err := k.zones[n].Alloc(0)
					if err != nil {
						break
					}
					t.pcp = append(t.pcp, k.zoneLo[n]+extra)
				}
			}
			k.stats.BuddyPages++
			return k.zoneLo[n] + f, k.cfg.FaultCost, true
		}
	}
	return 0, 0, false
}

// allocColored is the preferred colored path of Algorithm 1; the
// accumulated cost is returned even on failure so the caller can
// charge the wasted refill walk.
func (k *Kernel) allocColored(t *Task) (phys.Frame, clock.Dur, bool) {
	cost := k.cfg.FaultCost
	// Fast path: a page is already parked on a matching color list.
	// LLC-only tasks take parked pages from their local node only at
	// this stage — falling back to a remote parked page before even
	// trying a local refill would needlessly surrender locality.
	if f, ok := k.popColored(t, true); ok {
		k.stats.ColoredPages++
		return f, cost, true
	}

	// Slow path (Algorithm 1 lines 17-25): walk the buddy free
	// lists by increasing order and shatter blocks into the color
	// lists (create_color_list, Algorithm 2) until a page of the
	// task's colors appears. Every visited page moves to its color
	// list — exactly what Algorithm 2 does for the pages of a
	// matched block — so refill work is amortized O(1) per page
	// over a run. Zones are searched local-first; zones that
	// cannot contain a matching bank color are skipped, as are zones
	// an injected fault fails the refill for.
	refilled := false
	for _, n := range t.nodeOrder {
		if t.usingBank && !t.wantsNode(k.mapping, n) {
			continue
		}
		if k.fault.Refill != nil && k.fault.Refill(n) {
			continue
		}
		base := k.zoneLo[n]
		for order := 0; order <= buddy.MaxOrder; order++ {
			for {
				head, ok := k.zones[n].AllocExact(order)
				if !ok {
					break // try next order
				}
				if !refilled {
					cost += k.cfg.RefillBaseCost
					refilled = true
				}
				k.createColorList(order, base+head)
				cost += k.cfg.RefillPerFrameCost * clock.Dur(uint64(1)<<order)
				if f, ok := k.popColored(t, n == t.nodeOrder[0]); ok {
					k.stats.ColoredPages++
					return f, cost, true
				}
			}
		}
	}
	// Last resort: a matching page parked on any node.
	if f, ok := k.popColored(t, false); ok {
		k.stats.ColoredPages++
		return f, cost, true
	}
	return 0, cost, false
}

// AllocPages is the general allocation entry point of Algorithm 1
// for an explicit order. Order-0 requests from colored tasks take
// the colored path; orders greater than zero always "return page
// from normal_buddy_alloc" (Algorithm 1 line 28) — TintMalloc only
// colors 4 KB frames, and huge allocations bypass it even for
// colored tasks, exactly as in the paper. The returned frame heads a
// block of 2^order frames on the task's preferred node.
func (k *Kernel) AllocPages(t *Task, order int) (phys.Frame, clock.Dur, error) {
	if order == 0 {
		// Caller-managed frames are not page-table mapped, so a
		// ladder frame handed out here carries no loan record; it
		// still counts in Stats.DegradedAllocs.
		f, cost, _, err := k.allocPagesFor(t)
		return f, cost, err
	}
	if order < 0 || order > buddy.MaxOrder {
		return 0, 0, fmt.Errorf("kernel: order %d out of range [0,%d]", order, buddy.MaxOrder)
	}
	k.stats.Faults++
	for _, n := range t.nodeOrder {
		if f, err := k.zones[n].Alloc(order); err == nil {
			k.stats.BuddyPages += 1 << order
			return k.zoneLo[n] + f, k.cfg.FaultCost, nil
		}
	}
	if !k.cfg.DisableDegrade {
		// Degraded path for huge requests: un-color parked pages so
		// they coalesce back into buddy blocks, then retry. Color
		// lists re-shatter on the next colored refill.
		for _, n := range t.nodeOrder {
			if k.reclaimParkedZone(n) == 0 {
				continue
			}
			if f, err := k.zones[n].Alloc(order); err == nil {
				k.stats.BuddyPages += 1 << order
				return k.zoneLo[n] + f, k.cfg.FaultCost, nil
			}
		}
	}
	return 0, 0, ErrNoMemory
}

// FreePages returns a block obtained from AllocPages. Order-0 frames
// from the colored path rejoin their color lists; everything else
// coalesces back into its zone.
func (k *Kernel) FreePages(f phys.Frame, order int) error {
	if order == 0 {
		k.freeFrame(f)
		return nil
	}
	n := k.mapping.NodeOfFrame(f)
	return k.zones[n].Free(f-k.zoneLo[n], order)
}

// createColorList implements Algorithm 2: shatter a buddy block of
// 2^order frames into single pages appended to their color lists.
func (k *Kernel) createColorList(order int, head phys.Frame) {
	k.stats.Refills++
	n := phys.Frame(1) << order
	for f := head; f < head+n; f++ {
		k.colors.push(f, int(k.frameBank[f]), int(k.frameLLC[f]))
		k.coloredFrame[f] = true
		k.stats.RefillFrames++
	}
}

// popColored pops a free page matching t's colors, rotating through
// the task's owned colors so heap pages spread evenly across them.
// localOnly restricts the LLC-only path to bank columns of the
// task's local node (bank-constrained paths are node-bound already).
func (k *Kernel) popColored(t *Task, localOnly bool) (phys.Frame, bool) {
	switch {
	case t.usingBank && t.usingLLC:
		nCombos := len(t.bankColors) * len(t.llcColors)
		for i := 0; i < nCombos; i++ {
			idx := (t.comboCursor + i) % nCombos
			bc := t.bankColors[idx/len(t.llcColors)]
			lc := t.llcColors[idx%len(t.llcColors)]
			if f, ok := k.colors.popExact(bc, lc); ok {
				t.comboCursor = (idx + 1) % nCombos
				return f, true
			}
		}
	case t.usingBank:
		for i := 0; i < len(t.bankColors); i++ {
			idx := (t.comboCursor + i) % len(t.bankColors)
			if f, ok := k.colors.popBankAny(t.bankColors[idx], t.llcScan); ok {
				t.comboCursor = (idx + 1) % len(t.bankColors)
				t.llcScan = (t.llcScan + 1) % k.mapping.NumLLCColors()
				return f, true
			}
		}
	case t.usingLLC:
		order := t.bankScanOrder(k)
		if localOnly {
			order = order[:k.mapping.BanksPerNode()]
		}
		for i := 0; i < len(t.llcColors); i++ {
			idx := (t.comboCursor + i) % len(t.llcColors)
			if f, ok := k.colors.popLLCAny(t.llcColors[idx], order); ok {
				t.comboCursor = (idx + 1) % len(t.llcColors)
				t.bankScan++
				return f, true
			}
		}
	}
	return 0, false
}

// freeFrame returns a frame to the kernel: colored frames go back to
// their color list, uncolored frames to the buddy allocator. A freed
// frame's loan (if any) is settled — the borrow ends when the page
// does.
func (k *Kernel) freeFrame(f phys.Frame) {
	// loanRung mirrors the loans map (rung+1, 0 = no loan) so the
	// common unloaned free stays a slice load instead of a map delete.
	if k.loanRung[f] != 0 {
		k.loanRung[f] = 0
		delete(k.loans, f)
		k.stats.LoansSettled++
	}
	if k.coloredFrame[f] {
		k.colors.push(f, int(k.frameBank[f]), int(k.frameLLC[f]))
		return
	}
	n := k.mapping.NodeOfFrame(f)
	if err := k.zones[n].Free(f-k.zoneLo[n], 0); err != nil {
		panic(fmt.Sprintf("kernel: freeFrame(%d): %v", f, err))
	}
}
