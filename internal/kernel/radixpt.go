package kernel

import "github.com/tintmalloc/tintmalloc/internal/phys"

// RadixPT is the kernel's page table: a two-level radix array over
// virtual page numbers. The root is a dense slice of leaf pointers
// covering the chunk range [lo, lo+len(leaves)) where a chunk is
// vpage >> ptLeafBits; each leaf is a flat array of ptLeafSize frame
// entries. Lookup is two array indexes and costs no hashing, no
// pointer chasing beyond one leaf dereference, and no allocation —
// the access pattern the Translate fast path wants, versus the
// map[uint64]phys.Frame reference it replaces (kept behind
// Config.DisableRadixPT and pinned byte-identical by
// TestRadixPTDifferential).
//
// The root is biased: it covers only the chunk span actually mapped,
// growing amortized-O(1) at either end on insert. Under the kernel's
// bump VA allocation (mmap hands out addresses upward from vaBase)
// the span stays exactly as large as the address space in use; a
// process that maps both a very low and a very high vpage pays
// 8 bytes of root per 2 MiB of span between them — the documented
// cost of keeping the root a flat array instead of a hash.
//
// Entries store frame+1 so the zero value means "not present" and
// fresh leaves need no fill pass (frame 0 is a valid frame). A leaf
// whose live-entry count drops to zero is unlinked from the root, so
// munmap of a fully-mapped region releases its page-table memory.
type RadixPT struct {
	leaves []*ptLeaf
	lo     uint64 // chunk index of leaves[0]
	n      int    // live entries across all leaves
}

const (
	// ptLeafBits is log2 of the entries per leaf: 512 entries cover
	// 2 MiB of virtual address space per leaf, matching a hardware
	// PTE page, and keep one leaf at 4 KiB — one host page.
	ptLeafBits = 9
	ptLeafSize = 1 << ptLeafBits
	ptLeafMask = ptLeafSize - 1
)

type ptLeaf struct {
	frames [ptLeafSize]phys.Frame // frame+1; 0 = not present
	live   int
}

// Lookup returns the frame mapped at vp, if present.
func (r *RadixPT) Lookup(vp uint64) (phys.Frame, bool) {
	c := vp >> ptLeafBits
	if c < r.lo || c-r.lo >= uint64(len(r.leaves)) {
		return 0, false
	}
	lf := r.leaves[c-r.lo]
	if lf == nil {
		return 0, false
	}
	e := lf.frames[vp&ptLeafMask]
	return e - 1, e != 0
}

// Insert maps vp to f, replacing any existing mapping.
func (r *RadixPT) Insert(vp uint64, f phys.Frame) {
	c := vp >> ptLeafBits
	switch {
	case len(r.leaves) == 0:
		r.leaves = make([]*ptLeaf, 1)
		r.lo = c
	case c < r.lo:
		// Grow downward with headroom: the shift is O(span), so
		// doubling the extension keeps repeated low inserts amortized.
		// The headroom is capped at r.lo — the bias cannot go below
		// chunk 0, and the required extension r.lo-c never exceeds it.
		ext := r.lo - c
		if ext < uint64(len(r.leaves)) {
			ext = uint64(len(r.leaves))
		}
		if ext > r.lo {
			ext = r.lo
		}
		grown := make([]*ptLeaf, uint64(len(r.leaves))+ext)
		copy(grown[ext:], r.leaves)
		r.leaves = grown
		r.lo -= ext
	case c-r.lo >= uint64(len(r.leaves)):
		// Grow upward; append's doubling provides the amortization.
		need := c - r.lo + 1
		for uint64(len(r.leaves)) < need {
			r.leaves = append(r.leaves, nil)
		}
	}
	i := c - r.lo
	lf := r.leaves[i]
	if lf == nil {
		lf = new(ptLeaf)
		r.leaves[i] = lf
	}
	slot := &lf.frames[vp&ptLeafMask]
	if *slot == 0 {
		lf.live++
		r.n++
	}
	*slot = f + 1
}

// Delete removes the mapping at vp, reporting whether one existed.
// The leaf is unlinked once its last entry dies.
func (r *RadixPT) Delete(vp uint64) bool {
	c := vp >> ptLeafBits
	if c < r.lo || c-r.lo >= uint64(len(r.leaves)) {
		return false
	}
	lf := r.leaves[c-r.lo]
	if lf == nil || lf.frames[vp&ptLeafMask] == 0 {
		return false
	}
	lf.frames[vp&ptLeafMask] = 0
	lf.live--
	r.n--
	if lf.live == 0 {
		r.leaves[c-r.lo] = nil
	}
	return true
}

// Len returns the number of live mappings.
func (r *RadixPT) Len() int { return r.n }

// Leaves returns the number of allocated leaf nodes (tests use it to
// verify whole-leaf munmap releases page-table memory).
func (r *RadixPT) Leaves() int {
	n := 0
	for _, lf := range r.leaves {
		if lf != nil {
			n++
		}
	}
	return n
}

// Visit calls fn for every mapping in ascending vpage order. The
// order is structural — root chunks ascend, entries within a leaf
// ascend — so it is deterministic with no sorting pass, unlike the
// map reference path, which must sort its keys.
func (r *RadixPT) Visit(fn func(vp uint64, f phys.Frame)) {
	for i, lf := range r.leaves {
		if lf == nil {
			continue
		}
		base := (r.lo + uint64(i)) << ptLeafBits
		for j := range lf.frames {
			if e := lf.frames[j]; e != 0 {
				fn(base+uint64(j), e-1)
			}
		}
	}
}
