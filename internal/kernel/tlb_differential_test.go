package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// TLB differential test: the simulated TLB is a pure fast path, so a
// kernel with it enabled must be observationally identical to one
// booted with Config.DisableTLB — same translations, same fault
// costs, same errors — under arbitrary interleavings of mmap, touch,
// munmap, recolor and migrate across tasks sharing an address space.
// Any missed shootdown shows up as a stale physical address on the
// TLB side the moment the reference kernel hands out the fresh one.
//
// (FuzzKernelInterleaving arms the TLB coherence invariant too:
// invariant.Audit cross-checks every live TLB entry against the page
// table after each fuzzed op batch.)

// tlbTwin drives two identically-configured kernels, TLB on and off,
// through the same op log.
type tlbTwin struct {
	fast *kernel.Kernel // TLB enabled (default config)
	ref  *kernel.Kernel // DisableTLB reference
	// tasks[i] on both kernels sit on the same core of the same
	// process shape.
	fastTasks []*kernel.Task
	refTasks  []*kernel.Task
	tproc     []int
	// regions per process: both kernels produce identical bases (the
	// VA allocator is deterministic), verified on every mmap.
	regions map[int][]tlbRegion
}

type tlbRegion struct {
	base  uint64
	pages int
}

func newTLBTwin() (*tlbTwin, error) {
	top := topology.Opteron6128()
	boot := func(disable bool) (*kernel.Kernel, error) {
		m, err := phys.DefaultSeparable(256<<20, top.Nodes())
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultConfig()
		cfg.DisableTLB = disable
		return kernel.New(top, m, cfg)
	}
	fast, err := boot(false)
	if err != nil {
		return nil, err
	}
	ref, err := boot(true)
	if err != nil {
		return nil, err
	}
	tw := &tlbTwin{fast: fast, ref: ref, regions: map[int][]tlbRegion{}}
	layout := []struct {
		p    int
		core topology.CoreID
	}{{0, 0}, {0, 5}, {1, 10}}
	fp := []*kernel.Process{fast.NewProcess(), fast.NewProcess()}
	rp := []*kernel.Process{ref.NewProcess(), ref.NewProcess()}
	for _, tc := range layout {
		ft, err := fp[tc.p].NewTask(tc.core)
		if err != nil {
			return nil, err
		}
		rt, err := rp[tc.p].NewTask(tc.core)
		if err != nil {
			return nil, err
		}
		tw.fastTasks = append(tw.fastTasks, ft)
		tw.refTasks = append(tw.refTasks, rt)
		tw.tproc = append(tw.tproc, tc.p)
	}
	return tw, nil
}

// apply runs one op on both kernels and compares every observable.
func (tw *tlbTwin) apply(o kop) error {
	ti := o.task % len(tw.fastTasks)
	ft, rt := tw.fastTasks[ti], tw.refTasks[ti]
	proc := tw.tproc[ti]
	regs := tw.regions[proc]
	switch o.kind {
	case opMmap:
		pages := 1 + o.arg%16
		fb, ferr := ft.Mmap(0, uint64(pages)*phys.PageSize, 0)
		rb, rerr := rt.Mmap(0, uint64(pages)*phys.PageSize, 0)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("mmap diverged: tlb err %v, ref err %v", ferr, rerr)
		}
		if ferr != nil {
			return nil
		}
		if fb != rb {
			return fmt.Errorf("mmap base diverged: tlb %#x, ref %#x", fb, rb)
		}
		tw.regions[proc] = append(regs, tlbRegion{base: fb, pages: pages})

	case opTouch:
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		va := reg.base + uint64(o.page%reg.pages)*phys.PageSize
		fpa, fcost, ferr := ft.Translate(va)
		rpa, rcost, rerr := rt.Translate(va)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("translate %#x diverged: tlb err %v, ref err %v", va, ferr, rerr)
		}
		if ferr != nil {
			return nil
		}
		if fpa != rpa {
			return fmt.Errorf("translate %#x: tlb kernel says %#x, reference says %#x (stale TLB entry?)", va, fpa, rpa)
		}
		if fcost != rcost {
			return fmt.Errorf("translate %#x: tlb kernel charged %d cycles, reference %d — the TLB must not change timing", va, fcost, rcost)
		}

	case opMunmap:
		if len(regs) == 0 {
			return nil
		}
		i := o.arg % len(regs)
		reg := regs[i]
		ferr := ft.Munmap(reg.base, uint64(reg.pages)*phys.PageSize)
		rerr := rt.Munmap(reg.base, uint64(reg.pages)*phys.PageSize)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("munmap [%#x,+%d) diverged: tlb err %v, ref err %v", reg.base, reg.pages, ferr, rerr)
		}
		if ferr == nil {
			tw.regions[proc] = append(regs[:i:i], regs[i+1:]...)
		}

	case opSetBank, opClearBank, opSetLLC, opClearLLC:
		m := tw.fast.Mapping()
		var arg uint64
		switch o.kind {
		case opSetBank:
			arg = uint64(o.arg%m.NumBankColors()) | kernel.SetMemColor
		case opClearBank:
			arg = uint64(o.arg%m.NumBankColors()) | kernel.ClearMemColor
		case opSetLLC:
			arg = uint64(o.arg%m.NumLLCColors()) | kernel.SetLLCColor
		case opClearLLC:
			arg = uint64(o.arg%m.NumLLCColors()) | kernel.ClearLLCColor
		}
		_, ferr := ft.Mmap(arg, 0, kernel.ColorAlloc)
		_, rerr := rt.Mmap(arg, 0, kernel.ColorAlloc)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("color op %#x diverged: tlb err %v, ref err %v", arg, ferr, rerr)
		}

	case opMigrate:
		if len(regs) == 0 {
			return nil
		}
		reg := regs[o.arg%len(regs)]
		fst, ferr := ft.Migrate(reg.base, uint64(reg.pages)*phys.PageSize)
		rst, rerr := rt.Migrate(reg.base, uint64(reg.pages)*phys.PageSize)
		if (ferr == nil) != (rerr == nil) {
			return fmt.Errorf("migrate [%#x,+%d) diverged: tlb err %v, ref err %v", reg.base, reg.pages, ferr, rerr)
		}
		if ferr == nil && fst != rst {
			return fmt.Errorf("migrate stats diverged: tlb %+v, ref %+v", fst, rst)
		}
	}
	return nil
}

func TestTLBShootdownDifferential(t *testing.T) {
	// Munmap/migrate/recolor-heavy mix: every one of those must shoot
	// down or flush TLB entries, and a touch right after is exactly
	// the access pattern that exposes a missed shootdown.
	kinds := []int{
		opMmap, opMmap, opTouch, opTouch, opTouch, opTouch,
		opMunmap, opMunmap, opMigrate, opMigrate,
		opSetBank, opClearBank, opSetLLC, opClearLLC,
	}
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			tw, err := newTLBTwin()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 600; i++ {
				o := kop{
					kind: kinds[rng.Intn(len(kinds))],
					task: rng.Intn(3),
					arg:  rng.Intn(1 << 16),
					page: rng.Intn(1 << 16),
				}
				if err := tw.apply(o); err != nil {
					t.Fatalf("op %d %v: %v", i, o, err)
				}
				if (i+1)%32 == 0 {
					if err := invariant.Audit(tw.fast).Err(); err != nil {
						t.Fatalf("after op %d %v: tlb kernel: %v", i, o, err)
					}
					if err := invariant.Audit(tw.ref).Err(); err != nil {
						t.Fatalf("after op %d %v: reference kernel: %v", i, o, err)
					}
				}
			}
			fs, rs := tw.fast.Stats(), tw.ref.Stats()
			if fs.TLBHits+fs.TLBMisses == 0 {
				t.Error("TLB-enabled kernel recorded no TLB activity")
			}
			if fs.TLBShootdowns == 0 {
				t.Error("TLB-enabled kernel recorded no shootdowns despite munmap/migrate/recolor ops")
			}
			if rs.TLBHits != 0 || rs.TLBMisses != 0 || rs.TLBShootdowns != 0 {
				t.Errorf("DisableTLB kernel has TLB counters %+v", rs)
			}
		})
	}
}
