package kernel

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/phys"
)

// Structural edge cases for the radix page table. The twin-kernel
// differential test (radixpt_differential_test.go) pins the radix path
// to the map reference through the syscall surface; these tests poke
// the corners of the data structure directly: vpage 0, the maximum
// vpage, frame 0 (the frame+1 encoding's sentinel collision), sparse
// spans grown in both directions, and leaf release.

func TestRadixPTVpageZero(t *testing.T) {
	var r RadixPT
	if _, ok := r.Lookup(0); ok {
		t.Fatal("empty table claims vpage 0 is mapped")
	}
	// Frame 0 is a valid frame; the frame+1 encoding must not confuse
	// it with "not present".
	r.Insert(0, 0)
	if f, ok := r.Lookup(0); !ok || f != 0 {
		t.Fatalf("Lookup(0) = (%d, %v), want (0, true)", f, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	r.Insert(0, 7)
	if f, ok := r.Lookup(0); !ok || f != 7 {
		t.Fatalf("after overwrite: Lookup(0) = (%d, %v), want (7, true)", f, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("overwrite changed Len to %d", r.Len())
	}
	if !r.Delete(0) {
		t.Fatal("Delete(0) found nothing")
	}
	if _, ok := r.Lookup(0); ok || r.Len() != 0 || r.Leaves() != 0 {
		t.Fatalf("after delete: mapped=%v len=%d leaves=%d, want gone", ok, r.Len(), r.Leaves())
	}
	if r.Delete(0) {
		t.Fatal("double Delete(0) reported success")
	}
}

func TestRadixPTMaxVpage(t *testing.T) {
	const maxVP = ^uint64(0)
	var r RadixPT
	r.Insert(maxVP, 42)
	if f, ok := r.Lookup(maxVP); !ok || f != 42 {
		t.Fatalf("Lookup(max) = (%d, %v), want (42, true)", f, ok)
	}
	// The biased root makes a lone extreme vpage cheap: one leaf, a
	// one-entry root.
	if r.Leaves() != 1 {
		t.Fatalf("Leaves = %d, want 1", r.Leaves())
	}
	// Neighbors in the same top leaf, and misses on both sides.
	r.Insert(maxVP-1, 41)
	if f, ok := r.Lookup(maxVP - 1); !ok || f != 41 {
		t.Fatalf("Lookup(max-1) = (%d, %v), want (41, true)", f, ok)
	}
	for _, vp := range []uint64{0, 1, maxVP - ptLeafSize} {
		if _, ok := r.Lookup(vp); ok {
			t.Fatalf("Lookup(%#x) hit in a table mapping only the top leaf", vp)
		}
	}
	if !r.Delete(maxVP) || !r.Delete(maxVP-1) {
		t.Fatal("delete at the top of the space failed")
	}
	if r.Len() != 0 || r.Leaves() != 0 {
		t.Fatalf("len=%d leaves=%d after deleting all", r.Len(), r.Leaves())
	}
}

// TestRadixPTSparseHighLowMix grows the biased root in both
// directions: inserts start mid-span, then alternate toward vpage 0
// and the top of a bounded window, with a map mirror checked
// throughout. (The root is dense over the occupied span — the
// documented trade-off — so the window stays bounded; lone extremes
// are covered by TestRadixPTMaxVpage.)
func TestRadixPTSparseHighLowMix(t *testing.T) {
	const span = uint64(3 << 20) // 6144 root chunks at the widest
	var r RadixPT
	mirror := map[uint64]phys.Frame{}
	rng := rand.New(rand.NewSource(8))

	vps := []uint64{span / 2}
	for i := 0; i < 40; i++ {
		vps = append(vps, rng.Uint64()%span)
	}
	// Force the extremes and some leaf-straddling neighbors.
	vps = append(vps, 0, 1, ptLeafSize-1, ptLeafSize, ptLeafSize+1, span-1, span-ptLeafSize)

	for i, vp := range vps {
		f := phys.Frame(i * 3)
		r.Insert(vp, f)
		mirror[vp] = f
		// Interleave deletes so bias growth and shrink-to-empty-leaf
		// interact.
		if i%5 == 4 {
			victim := vps[rng.Intn(i+1)]
			if r.Delete(victim) != (func() bool { _, ok := mirror[victim]; return ok })() {
				t.Fatalf("Delete(%#x) disagreed with the mirror", victim)
			}
			delete(mirror, victim)
		}
	}

	if r.Len() != len(mirror) {
		t.Fatalf("Len = %d, mirror has %d", r.Len(), len(mirror))
	}
	for vp, want := range mirror {
		if f, ok := r.Lookup(vp); !ok || f != want {
			t.Fatalf("Lookup(%#x) = (%d, %v), want (%d, true)", vp, f, ok, want)
		}
	}
	for _, vp := range []uint64{span + 1, span * 2, ^uint64(0)} {
		if _, ok := r.Lookup(vp); ok {
			t.Fatalf("Lookup(%#x) hit outside the occupied window", vp)
		}
	}
	// Visit must produce the mirror's contents in ascending vpage
	// order with no sorting pass.
	var got []uint64
	r.Visit(func(vp uint64, f phys.Frame) {
		if mirror[vp] != f {
			t.Fatalf("Visit(%#x) = frame %d, mirror has %d", vp, f, mirror[vp])
		}
		got = append(got, vp)
	})
	if len(got) != len(mirror) {
		t.Fatalf("Visit yielded %d entries, mirror has %d", len(got), len(mirror))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Visit order is not ascending")
	}
}

// TestRadixPTWholeLeafRelease checks that munmap of a region covering
// an entire 512-entry leaf releases the leaf's page-table memory —
// first directly, then through the kernel (vaBase is leaf-aligned, so
// a 512-page mapping occupies exactly one leaf).
func TestRadixPTWholeLeafRelease(t *testing.T) {
	var r RadixPT
	base := uint64(4 << ptLeafBits) // leaf-aligned
	for i := uint64(0); i < ptLeafSize; i++ {
		r.Insert(base+i, phys.Frame(i))
	}
	if r.Leaves() != 1 {
		t.Fatalf("full leaf: Leaves = %d, want 1", r.Leaves())
	}
	for i := uint64(0); i < ptLeafSize; i++ {
		if !r.Delete(base + i) {
			t.Fatalf("Delete(%#x) missed", base+i)
		}
	}
	if r.Leaves() != 0 || r.Len() != 0 {
		t.Fatalf("after emptying the leaf: leaves=%d len=%d, want 0", r.Leaves(), r.Len())
	}

	k := boot(t)
	task, err := k.NewProcess().NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	p := task.proc
	if p.pt == nil {
		t.Fatal("default kernel is not on the radix path")
	}
	va, err := task.Mmap(0, ptLeafSize*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	if (va>>phys.PageShift)&ptLeafMask != 0 {
		t.Fatalf("mmap base %#x is not leaf-aligned; test premise broken", va)
	}
	for i := uint64(0); i < ptLeafSize; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if p.pt.Leaves() != 1 || p.pt.Len() != ptLeafSize {
		t.Fatalf("resident region: leaves=%d len=%d, want 1/%d", p.pt.Leaves(), p.pt.Len(), ptLeafSize)
	}
	if err := task.Munmap(va, ptLeafSize*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	if p.pt.Leaves() != 0 || p.pt.Len() != 0 {
		t.Fatalf("after munmap: leaves=%d len=%d, want 0 (leaf not released)", p.pt.Leaves(), p.pt.Len())
	}
}
