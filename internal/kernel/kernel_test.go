package kernel

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/buddy"

	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// 256 MiB: 65536 frames, 16 frames per (bank color, LLC color) combo.
const testMem = 256 << 20

func boot(t *testing.T) *Kernel {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(top, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func newTask(t *testing.T, k *Kernel, core topology.CoreID) *Task {
	t.Helper()
	task, err := k.NewProcess().NewTask(core)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// setColors gives the task the listed colors via the mmap protocol.
func setColors(t *testing.T, task *Task, bankColors, llcColors []int) {
	t.Helper()
	for _, c := range bankColors {
		if _, err := task.Mmap(uint64(c)|SetMemColor, 0, ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range llcColors {
		if _, err := task.Mmap(uint64(c)|SetLLCColor, 0, ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestColorProtocolSetsAndClears(t *testing.T) {
	k := boot(t)
	task := newTask(t, k, 0)
	if task.UsingBank() || task.UsingLLC() {
		t.Fatal("fresh task has coloring active")
	}
	setColors(t, task, []int{3, 1}, []int{7})
	if got := task.BankColors(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("BankColors = %v, want [1 3]", got)
	}
	if got := task.LLCColors(); len(got) != 1 || got[0] != 7 {
		t.Errorf("LLCColors = %v, want [7]", got)
	}
	if !task.UsingBank() || !task.UsingLLC() {
		t.Error("flags not set")
	}
	// Clearing the last LLC color drops the flag.
	if _, err := task.Mmap(7|ClearLLCColor, 0, ColorAlloc); err != nil {
		t.Fatal(err)
	}
	if task.UsingLLC() {
		t.Error("using_llc still set after clear")
	}
	// Idempotent set.
	setColors(t, task, []int{3}, nil)
	if got := task.BankColors(); len(got) != 2 {
		t.Errorf("duplicate set changed colors: %v", got)
	}
	if k.Stats().ColorMmaps == 0 {
		t.Error("ColorMmaps not counted")
	}
}

func TestColorProtocolValidation(t *testing.T) {
	k := boot(t)
	task := newTask(t, k, 0)
	if _, err := task.Mmap(uint64(k.Mapping().NumBankColors())|SetMemColor, 0, ColorAlloc); !errors.Is(err, ErrBadColor) {
		t.Errorf("out-of-range bank color error = %v", err)
	}
	if _, err := task.Mmap(uint64(k.Mapping().NumLLCColors())|SetLLCColor, 0, ColorAlloc); !errors.Is(err, ErrBadColor) {
		t.Errorf("out-of-range LLC color error = %v", err)
	}
	if _, err := task.Mmap(99<<56|1, 0, ColorAlloc); !errors.Is(err, ErrBadMmap) {
		t.Errorf("unknown mode error = %v", err)
	}
	if _, err := task.Mmap(0, 0, 0); !errors.Is(err, ErrBadMmap) {
		t.Errorf("zero-length plain mmap error = %v", err)
	}
}

func TestUncoloredFaultPath(t *testing.T) {
	k := boot(t)
	task := newTask(t, k, 0)
	va, err := task.Mmap(0, 3*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa, cost, err := task.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	if cost != DefaultConfig().FaultCost {
		t.Errorf("first-touch cost = %d, want %d", cost, DefaultConfig().FaultCost)
	}
	// Second access: resident, no cost.
	pa2, cost2, err := task.Translate(va + 64)
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != 0 {
		t.Errorf("resident access cost = %d", cost2)
	}
	if pa2 != pa+64 {
		t.Errorf("offset translation wrong: %#x vs %#x+64", pa2, pa)
	}
	if st := k.Stats(); st.BuddyPages != 1 || st.ColoredPages != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestColoredFaultRespectsColors(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	// Colors local to node 0.
	bankColors := m.BankColorsOfNode(0)[:4]
	llcColors := []int{2, 5}
	setColors(t, task, bankColors, llcColors)

	va, err := task.Mmap(0, 64*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	bankSet := map[int]bool{}
	for _, c := range bankColors {
		bankSet[c] = true
	}
	for i := uint64(0); i < 64; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, ok := task.FrameOfVA(va + i*phys.PageSize)
		if !ok {
			t.Fatal("page not resident after fault")
		}
		if bc := m.FrameBankColor(f); !bankSet[bc] {
			t.Errorf("page %d got bank color %d, not in %v", i, bc, bankColors)
		}
		lc := m.FrameLLCColor(f)
		if lc != 2 && lc != 5 {
			t.Errorf("page %d got LLC color %d, want 2 or 5", i, lc)
		}
		if n := m.NodeOfFrame(f); n != 0 {
			t.Errorf("page %d on node %d, want 0 (local)", i, n)
		}
	}
	if st := k.Stats(); st.ColoredPages != 64 {
		t.Errorf("ColoredPages = %d, want 64", st.ColoredPages)
	}
}

func TestColoredPagesSpreadAcrossOwnedColors(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	bankColors := m.BankColorsOfNode(0)[:4]
	setColors(t, task, bankColors, []int{0, 1})
	va, _ := task.Mmap(0, 80*phys.PageSize, 0)
	got := map[[2]int]int{}
	for i := uint64(0); i < 80; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := task.FrameOfVA(va + i*phys.PageSize)
		got[[2]int{m.FrameBankColor(f), m.FrameLLCColor(f)}]++
	}
	if len(got) != 8 {
		t.Fatalf("pages cover %d color combos, want all 8: %v", len(got), got)
	}
	for combo, n := range got {
		if n != 10 {
			t.Errorf("combo %v received %d pages, want 10 (round robin)", combo, n)
		}
	}
}

func TestRefillCostOnlyOnColdLists(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	setColors(t, task, m.BankColorsOfNode(0)[:1], []int{0})
	va, _ := task.Mmap(0, 4*phys.PageSize, 0)

	_, cost0, err := task.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	if cost0 <= DefaultConfig().FaultCost {
		t.Errorf("cold colored fault cost %d not above base %d (no refill charged)",
			cost0, DefaultConfig().FaultCost)
	}
	// The refill shattered a whole block; the next faults of the
	// same color are served from the warm list at base cost.
	_, cost1, err := task.Translate(va + phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if cost1 != DefaultConfig().FaultCost {
		t.Errorf("warm colored fault cost = %d, want %d", cost1, DefaultConfig().FaultCost)
	}
	if st := k.Stats(); st.Refills == 0 || st.RefillFrames == 0 {
		t.Errorf("refill stats empty: %+v", st)
	}
}

func TestDisjointTasksGetDisjointFrames(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	p := k.NewProcess()
	t0, err := p.NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := p.NewTask(4)
	if err != nil {
		t.Fatal(err)
	}
	setColors(t, t0, m.BankColorsOfNode(0)[:2], []int{0, 1})
	setColors(t, t1, m.BankColorsOfNode(1)[:2], []int{2, 3})

	va0, _ := t0.Mmap(0, 32*phys.PageSize, 0)
	va1, _ := t1.Mmap(0, 32*phys.PageSize, 0)
	for i := uint64(0); i < 32; i++ {
		if _, _, err := t0.Translate(va0 + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		if _, _, err := t1.Translate(va1 + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	// No shared bank or LLC colors, and t1's pages are on node 1.
	for i := uint64(0); i < 32; i++ {
		f0, _ := t0.FrameOfVA(va0 + i*phys.PageSize)
		f1, _ := t1.FrameOfVA(va1 + i*phys.PageSize)
		if m.NodeOfFrame(f0) != 0 || m.NodeOfFrame(f1) != 1 {
			t.Fatalf("pages not node-local: %d %d", m.NodeOfFrame(f0), m.NodeOfFrame(f1))
		}
		if m.FrameLLCColor(f0) == m.FrameLLCColor(f1) {
			t.Fatal("disjoint LLC color sets produced equal page colors")
		}
		if m.FrameBankColor(f0) == m.FrameBankColor(f1) {
			t.Fatal("disjoint bank color sets produced equal page colors")
		}
	}
}

func TestMunmapReturnsColoredPagesToColorLists(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	bc := m.BankColorsOfNode(0)[0]
	setColors(t, task, []int{bc}, []int{0})
	va, _ := task.Mmap(0, 2*phys.PageSize, 0)
	if _, _, err := task.Translate(va); err != nil {
		t.Fatal(err)
	}
	f, _ := task.FrameOfVA(va)
	before := k.ColoredFreePages(m.FrameBankColor(f), m.FrameLLCColor(f))
	if err := task.Munmap(va, 2*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	after := k.ColoredFreePages(m.FrameBankColor(f), m.FrameLLCColor(f))
	if after != before+1 {
		t.Errorf("colored free pages %d -> %d, want +1", before, after)
	}
	if task.Resident(va) {
		t.Error("page resident after munmap")
	}
	// Unmapped access faults with ErrSegfault.
	if _, _, err := task.Translate(va); !errors.Is(err, ErrSegfault) {
		t.Errorf("Translate after munmap = %v", err)
	}
}

func TestMunmapUncoloredReturnsToBuddy(t *testing.T) {
	k := boot(t)
	task := newTask(t, k, 0)
	va, _ := task.Mmap(0, phys.PageSize, 0)
	if _, _, err := task.Translate(va); err != nil {
		t.Fatal(err)
	}
	free := k.FreeFrames()
	if err := task.Munmap(va, phys.PageSize); err != nil {
		t.Fatal(err)
	}
	if k.FreeFrames() != free+1 {
		t.Errorf("buddy free frames %d -> %d, want +1", free, k.FreeFrames())
	}
	if err := task.Munmap(va, phys.PageSize); err == nil {
		t.Error("double munmap succeeded")
	}
}

func TestColorExhaustion(t *testing.T) {
	// One (bank, LLC) combo owns 1/(128*32) of memory: 4 frames of
	// 16384. Demand more and, with the degradation ladder disabled
	// (the paper-faithful mode), the colored path must fail with
	// ErrNoColoredMemory. The default degrading behaviour is covered
	// by the ladder tests in degrade_test.go.
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DisableDegrade = true
	k, err := New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	task := newTask(t, k, 0)
	bc := m.BankColorsOfNode(0)[0]
	setColors(t, task, []int{bc}, []int{0})
	va, _ := task.Mmap(0, 64*phys.PageSize, 0)
	var got int
	var lastErr error
	for i := uint64(0); i < 64; i++ {
		_, _, err := task.Translate(va + i*phys.PageSize)
		if err != nil {
			lastErr = err
			break
		}
		got++
	}
	if lastErr == nil {
		t.Fatalf("allocated %d pages of a single color from %d frames without error", got, m.Frames())
	}
	if !errors.Is(lastErr, ErrNoColoredMemory) {
		t.Errorf("error = %v, want ErrNoColoredMemory", lastErr)
	}
	want := int(m.Frames()) / (m.NumBankColors() * m.NumLLCColors())
	if got != want {
		t.Errorf("got %d pages of the color, want %d", got, want)
	}
}

func TestSharedAddressSpaceAcrossTasks(t *testing.T) {
	k := boot(t)
	p := k.NewProcess()
	t0, _ := p.NewTask(0)
	t1, _ := p.NewTask(1)
	va, err := t0.Mmap(0, phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	// t0 first-touches; t1 sees the same frame (shared page table).
	pa0, _, err := t0.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	pa1, cost, err := t1.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	if pa0 != pa1 {
		t.Errorf("tasks see different frames: %#x vs %#x", pa0, pa1)
	}
	if cost != 0 {
		t.Errorf("second task paid fault cost %d", cost)
	}
}

func TestNewTaskValidation(t *testing.T) {
	k := boot(t)
	p := k.NewProcess()
	if _, err := p.NewTask(99); err == nil {
		t.Error("NewTask accepted invalid core")
	}
}

func TestKernelNodeMismatch(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(top, m, DefaultConfig()); err == nil {
		t.Error("New accepted topology/mapping node mismatch")
	}
}

func TestLLCOnlyColoring(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	setColors(t, task, nil, []int{9})
	va, _ := task.Mmap(0, 8*phys.PageSize, 0)
	for i := uint64(0); i < 8; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := task.FrameOfVA(va + i*phys.PageSize)
		if lc := m.FrameLLCColor(f); lc != 9 {
			t.Errorf("LLC-only page has color %d, want 9", lc)
		}
	}
}

func TestBankOnlyColoring(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	bc := m.BankColorsOfNode(2)[3]
	setColors(t, task, []int{bc}, nil)
	va, _ := task.Mmap(0, 8*phys.PageSize, 0)
	llcSeen := map[int]bool{}
	for i := uint64(0); i < 8; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := task.FrameOfVA(va + i*phys.PageSize)
		if got := m.FrameBankColor(f); got != bc {
			t.Errorf("bank-only page has bank color %d, want %d", got, bc)
		}
		llcSeen[m.FrameLLCColor(f)] = true
	}
	if len(llcSeen) < 2 {
		t.Errorf("bank-only coloring pinned LLC colors too: %v", llcSeen)
	}
}

func TestDeterministicColoredAllocation(t *testing.T) {
	run := func() []phys.Frame {
		k := boot(t)
		m := k.Mapping()
		task := newTask(t, k, 0)
		setColors(t, task, m.BankColorsOfNode(0)[:2], []int{0, 1})
		va, _ := task.Mmap(0, 16*phys.PageSize, 0)
		var out []phys.Frame
		for i := uint64(0); i < 16; i++ {
			if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
				t.Fatal(err)
			}
			f, _ := task.FrameOfVA(va + i*phys.PageSize)
			out = append(out, f)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic colored placement at page %d", i)
		}
	}
}

func TestDefaultPolicyIsLocalFirst(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	// An uncolored task on core 8 (node 2) gets node-2 frames.
	task := newTask(t, k, 8)
	va, _ := task.Mmap(0, 16*phys.PageSize, 0)
	for i := uint64(0); i < 16; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := task.FrameOfVA(va + i*phys.PageSize)
		if n := m.NodeOfFrame(f); n != 2 {
			t.Errorf("uncolored page %d on node %d, want local node 2", i, n)
		}
	}
}

func TestDefaultPolicyFallsBackByHopDistance(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	// Exhaust node 0's zone, then an uncolored task on core 0 must
	// spill to node 1 (2 hops) before nodes 2/3 (3 hops).
	filler := newTask(t, k, 0)
	perNode := m.Frames() / uint64(m.Nodes())
	vaF, _ := filler.Mmap(0, perNode*phys.PageSize, 0)
	for i := uint64(0); i < perNode; i++ {
		if _, _, err := filler.Translate(vaF + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if k.FreeFramesOfNode(0) != 0 {
		t.Fatalf("node 0 zone not exhausted: %d left", k.FreeFramesOfNode(0))
	}
	task := newTask(t, k, 0)
	va, _ := task.Mmap(0, phys.PageSize, 0)
	if _, _, err := task.Translate(va); err != nil {
		t.Fatal(err)
	}
	f, _ := task.FrameOfVA(va)
	if n := m.NodeOfFrame(f); n != 1 {
		t.Errorf("spill went to node %d, want nearest node 1", n)
	}
}

func TestColoredRefillSkipsForeignZones(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	// Colors on node 3 only (a remote node): refill must still find
	// them and never shatter blocks from other nodes.
	setColors(t, task, m.BankColorsOfNode(3)[:2], nil)
	va, _ := task.Mmap(0, 8*phys.PageSize, 0)
	for i := uint64(0); i < 8; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := task.FrameOfVA(va + i*phys.PageSize)
		if n := m.NodeOfFrame(f); n != 3 {
			t.Errorf("page on node %d, want 3", n)
		}
	}
	// Zones 0..2 must be untouched (their frame counts intact).
	perNode := m.Frames() / uint64(m.Nodes())
	for n := 0; n < 3; n++ {
		if k.FreeFramesOfNode(n) != perNode {
			t.Errorf("zone %d lost frames to a node-3 colored task", n)
		}
	}
}

func TestAllocPagesOrderZeroUsesColoredPath(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	setColors(t, task, m.BankColorsOfNode(0)[:1], []int{0})
	f, _, err := k.AllocPages(task, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.FrameBankColor(f) != m.BankColorsOfNode(0)[0] || m.FrameLLCColor(f) != 0 {
		t.Errorf("order-0 AllocPages ignored colors: bank %d llc %d",
			m.FrameBankColor(f), m.FrameLLCColor(f))
	}
	if err := k.FreePages(f, 0); err != nil {
		t.Fatal(err)
	}
	// Freed colored page rejoined its color list, not the buddy.
	if k.ColoredFreePages(m.FrameBankColor(f), m.FrameLLCColor(f)) == 0 {
		t.Error("colored frame did not rejoin its color list")
	}
}

// Paper Algorithm 1 line 27-28: orders greater than zero default to
// the standard buddy allocator even for colored tasks.
func TestAllocPagesHigherOrderBypassesColoring(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	setColors(t, task, m.BankColorsOfNode(0)[:1], []int{0})
	f, _, err := k.AllocPages(task, 4) // 64 KiB block
	if err != nil {
		t.Fatal(err)
	}
	// A 16-frame block cannot be of a single color (colors change
	// every frame under the separable mapping), proving the buddy
	// path served it; it must still be node-local.
	if n := m.NodeOfFrame(f); n != 0 {
		t.Errorf("order-4 block on node %d, want local node 0", n)
	}
	colors := map[int]bool{}
	for i := phys.Frame(0); i < 16; i++ {
		colors[m.FrameLLCColor(f+i)] = true
	}
	if len(colors) < 2 {
		t.Error("order-4 block suspiciously single-colored; colored path leaked")
	}
	free := k.FreeFrames()
	if err := k.FreePages(f, 4); err != nil {
		t.Fatal(err)
	}
	if k.FreeFrames() != free+16 {
		t.Errorf("FreePages(order 4) returned %d frames", k.FreeFrames()-free)
	}
	if _, _, err := k.AllocPages(task, 99); err == nil {
		t.Error("AllocPages accepted out-of-range order")
	}
}

// Property: across a random mix of colored and uncolored tasks
// allocating and freeing, no physical frame is ever resident at two
// virtual pages at once, and all colored pages always match their
// owner's colors.
func TestNoFrameDoubleUseUnderMixedLoad(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	p := k.NewProcess()

	type actor struct {
		task  *Task
		pages []uint64 // resident VAs
		banks map[int]bool
		llcs  map[int]bool
	}
	var actors []*actor
	for i := 0; i < 6; i++ {
		core := topology.CoreID((i * 3) % 16)
		task, err := p.NewTask(core)
		if err != nil {
			t.Fatal(err)
		}
		a := &actor{task: task, banks: map[int]bool{}, llcs: map[int]bool{}}
		if i%2 == 0 { // colored actors
			node := int(k.Topology().NodeOfCore(core))
			for _, bc := range m.BankColorsOfNode(node)[i : i+4] {
				if _, err := task.Mmap(uint64(bc)|SetMemColor, 0, ColorAlloc); err != nil {
					t.Fatal(err)
				}
				a.banks[bc] = true
			}
			for lc := i * 4; lc < i*4+8; lc++ {
				if _, err := task.Mmap(uint64(lc)|SetLLCColor, 0, ColorAlloc); err != nil {
					t.Fatal(err)
				}
				a.llcs[lc] = true
			}
		}
		actors = append(actors, a)
	}

	owner := map[phys.Frame]int{} // frame -> actor index
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 1500; step++ {
		ai := rng.Intn(len(actors))
		a := actors[ai]
		if rng.Intn(3) > 0 || len(a.pages) == 0 {
			va, err := a.task.Mmap(0, phys.PageSize, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := a.task.Translate(va); err != nil {
				t.Fatal(err)
			}
			f, _ := a.task.FrameOfVA(va)
			if prev, dup := owner[f]; dup {
				t.Fatalf("step %d: frame %d owned by actors %d and %d", step, f, prev, ai)
			}
			owner[f] = ai
			a.pages = append(a.pages, va)
			if len(a.banks) > 0 && !a.banks[m.FrameBankColor(f)] {
				t.Fatalf("step %d: actor %d got foreign bank color %d", step, ai, m.FrameBankColor(f))
			}
			if len(a.llcs) > 0 && !a.llcs[m.FrameLLCColor(f)] {
				t.Fatalf("step %d: actor %d got foreign LLC color %d", step, ai, m.FrameLLCColor(f))
			}
		} else {
			idx := rng.Intn(len(a.pages))
			va := a.pages[idx]
			f, _ := a.task.FrameOfVA(va)
			if err := a.task.Munmap(va, phys.PageSize); err != nil {
				t.Fatal(err)
			}
			delete(owner, f)
			a.pages[idx] = a.pages[len(a.pages)-1]
			a.pages = a.pages[:len(a.pages)-1]
		}
	}
}

func TestWriteReport(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	setColors(t, task, m.BankColorsOfNode(0)[:2], []int{0})
	va, _ := task.Mmap(0, 4*phys.PageSize, 0)
	for i := uint64(0); i < 4; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	k.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"kernel memory report", "zone 0", "colored free pages",
		"faults: ", "task 0 (core 0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestColorListSnapshot(t *testing.T) {
	k := boot(t)
	m := k.Mapping()
	task := newTask(t, k, 0)
	bc := m.BankColorsOfNode(0)[0]
	setColors(t, task, []int{bc}, []int{0})
	va, _ := task.Mmap(0, phys.PageSize, 0)
	if _, _, err := task.Translate(va); err != nil {
		t.Fatal(err)
	}
	snap := k.ColorListSnapshot()
	if len(snap) != m.NumBankColors() || len(snap[0]) != m.NumLLCColors() {
		t.Fatalf("snapshot shape %dx%d", len(snap), len(snap[0]))
	}
	var total int
	for _, row := range snap {
		for _, n := range row {
			total += n
		}
	}
	if uint64(total) != k.TotalColoredFree() {
		t.Errorf("snapshot total %d != TotalColoredFree %d", total, k.TotalColoredFree())
	}
}

// Ablation: the pcp per-task page cache serves the default path but
// never the colored path (the paper disables it so colored order-0
// requests reach Algorithm 1).
func TestPCPCacheAblation(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EnablePCP = true
	k, err := New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewProcess()
	plain, err := p.NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := plain.Mmap(0, 32*phys.PageSize, 0)
	for i := uint64(0); i < 32; i++ {
		if _, _, err := plain.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := plain.FrameOfVA(va + i*phys.PageSize)
		if n := m.NodeOfFrame(f); n != 0 {
			t.Errorf("pcp page %d on node %d, want 0", i, n)
		}
	}
	if hits := k.Stats().PCPHits; hits == 0 {
		t.Error("pcp cache never hit on the default path")
	}

	// Colored task on the same kernel: never touches the pcp.
	colored, err := p.NewTask(4)
	if err != nil {
		t.Fatal(err)
	}
	bc := m.BankColorsOfNode(1)[0]
	if _, err := colored.Mmap(uint64(bc)|SetMemColor, 0, ColorAlloc); err != nil {
		t.Fatal(err)
	}
	before := k.Stats().PCPHits
	va2, _ := colored.Mmap(0, 8*phys.PageSize, 0)
	for i := uint64(0); i < 8; i++ {
		if _, _, err := colored.Translate(va2 + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		f, _ := colored.FrameOfVA(va2 + i*phys.PageSize)
		if got := m.FrameBankColor(f); got != bc {
			t.Errorf("colored page %d has bank %d, want %d (pcp leaked into colored path?)", i, got, bc)
		}
	}
	if k.Stats().PCPHits != before {
		t.Error("colored path consumed pcp pages")
	}
}

func TestUncoloredOutOfMemory(t *testing.T) {
	// A machine with tiny memory: exhaust every zone through one
	// task, then the next fault must fail cleanly with ErrNoMemory.
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(16<<20, top.Nodes()) // 4096 frames
	if err != nil {
		t.Fatal(err)
	}
	k, err := New(top, m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	task := newTask(t, k, 0)
	total := m.Frames()
	va, _ := task.Mmap(0, total*phys.PageSize, 0)
	for i := uint64(0); i < total; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatalf("fault %d of %d failed early: %v", i, total, err)
		}
	}
	if k.FreeFrames() != 0 {
		t.Fatalf("%d frames still free after exhausting memory", k.FreeFrames())
	}
	va2, _ := task.Mmap(0, phys.PageSize, 0)
	if _, _, err := task.Translate(va2); !errors.Is(err, ErrNoMemory) {
		t.Errorf("post-exhaustion fault error = %v, want ErrNoMemory", err)
	}
	// Freeing one page makes allocation work again.
	if err := task.Munmap(va2, phys.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := task.Munmap(va, total*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	if k.FreeFrames() != total {
		t.Errorf("frames not all returned: %d of %d", k.FreeFrames(), total)
	}
}

func TestNewWithZonesValidation(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	zones, err := BuildZones(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithZones(top, m, DefaultConfig(), zones[:2]); err == nil {
		t.Error("NewWithZones accepted wrong zone count")
	}
	wrong, err := buddy.New(16)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]*buddy.Allocator{wrong}, zones[1:]...)
	if _, err := NewWithZones(top, m, DefaultConfig(), bad); err == nil {
		t.Error("NewWithZones accepted wrong zone size")
	}
	if _, err := NewWithZones(top, m, DefaultConfig(), zones); err != nil {
		t.Errorf("NewWithZones rejected valid zones: %v", err)
	}
}

func TestChurnValidation(t *testing.T) {
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(testMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ChurnSeed = 1
	cfg.HoldoutFrac = 1.5 // invalid
	if _, err := New(top, m, cfg); err == nil {
		t.Error("New accepted holdout > 1")
	}
}
