// External test package: the invariant auditor imports kernel, so
// wiring it into kernel tests has to happen from kernel_test to avoid
// an import cycle. These tests are the kernel's half of the runtime
// correctness gate (see DESIGN.md Sec. 7).
package kernel_test

import (
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

const auditMem = 256 << 20

func bootKernel(t *testing.T, cfg kernel.Config) *kernel.Kernel {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(auditMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func mustAudit(t *testing.T, k *kernel.Kernel) *invariant.Report {
	t.Helper()
	r := invariant.Audit(k)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return r
}

func setTaskColors(t *testing.T, task *kernel.Task, banks, llcs []int) {
	t.Helper()
	for _, c := range banks {
		if _, err := task.Mmap(uint64(c)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range llcs {
		if _, err := task.Mmap(uint64(c)|kernel.SetLLCColor, 0, kernel.ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
}

// Mixed colored/uncolored allocation and teardown must keep every
// frame singly owned and fully accounted at every step.
func TestAuditAcrossAllocationLifecycle(t *testing.T) {
	k := bootKernel(t, kernel.DefaultConfig())
	m := k.Mapping()
	proc := k.NewProcess()

	colored, err := proc.NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	setTaskColors(t, colored, m.BankColorsOfNode(0)[:2], []int{3, 4})
	plain, err := proc.NewTask(4)
	if err != nil {
		t.Fatal(err)
	}

	const pages = 64
	vaC, err := colored.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	vaP, err := plain.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < pages; i++ {
		if _, _, err := colored.Translate(vaC + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		if _, _, err := plain.Translate(vaP + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	r := mustAudit(t, k)
	if r.Mapped != 2*pages {
		t.Errorf("Mapped = %d, want %d", r.Mapped, 2*pages)
	}
	if r.Unaccounted != 0 {
		t.Errorf("leaked %d frames mid-run", r.Unaccounted)
	}

	if err := colored.Munmap(vaC, pages*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := plain.Munmap(vaP, pages*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	r = mustAudit(t, k)
	if r.Mapped != 0 || r.Unaccounted != 0 {
		t.Errorf("after teardown: %+v", r)
	}
}

// A churned kernel intentionally pins HoldoutFrac of each zone as
// permanently-resident foreign memory; the audit must account for
// exactly that many unowned frames and nothing else.
func TestAuditChurnHoldoutAccounting(t *testing.T) {
	cfg := kernel.DefaultConfig()
	cfg.ChurnSeed = 42
	cfg.HoldoutFrac = 0.25
	k := bootKernel(t, cfg)
	m := k.Mapping()
	r := mustAudit(t, k)
	perZone := m.Frames() / uint64(m.Nodes())
	wantHoldout := uint64(m.Nodes()) * uint64(0.25*float64(perZone))
	if r.Unaccounted != wantHoldout {
		t.Errorf("Unaccounted = %d, want churn holdout %d", r.Unaccounted, wantHoldout)
	}
}

// Satellite: migration recolor paths. After Migrate, no frame may be
// left on a stale color list, no old frame may leak, and the page
// table and color lists must stay disjoint — checked by the auditor
// after every step of a set → migrate → recolor → migrate sequence.
func TestMigrateRecolorAudited(t *testing.T) {
	k := bootKernel(t, kernel.DefaultConfig())
	m := k.Mapping()
	task, err := k.NewProcess().NewTask(0)
	if err != nil {
		t.Fatal(err)
	}

	const pages = 32
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < pages; i++ {
		if _, _, err := task.Translate(va + i*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	mustAudit(t, k)

	// First coloring: two banks on node 0, LLC colors {5, 6}.
	banksA := m.BankColorsOfNode(0)[2:4]
	setTaskColors(t, task, banksA, []int{5, 6})
	if _, err := task.Migrate(va, pages*phys.PageSize); err != nil {
		t.Fatal(err)
	}
	r := mustAudit(t, k)
	if r.Unaccounted != 0 {
		t.Fatalf("migration leaked %d frames", r.Unaccounted)
	}
	assertMappedMatchColors(t, k, task, va, pages)

	// Recolor: drop the bank constraint entirely and move the LLC
	// set; migrate again. The frames allocated under the first
	// coloring go stale and must land back on the color lists
	// matching their true hash. (Keeping a single bank color here
	// would shrink the exact-combo pool below the region size —
	// each (bc, lc) combo owns only frames/(banks*llcs) frames.)
	for _, bc := range banksA {
		if _, err := task.Mmap(uint64(bc)|kernel.ClearMemColor, 0, kernel.ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
	for _, lc := range []int{5, 6} {
		if _, err := task.Mmap(uint64(lc)|kernel.ClearLLCColor, 0, kernel.ColorAlloc); err != nil {
			t.Fatal(err)
		}
	}
	setTaskColors(t, task, nil, []int{9})
	st, err := task.Migrate(va, pages*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.Moved == 0 {
		t.Fatal("recolor migration moved nothing")
	}
	r = mustAudit(t, k)
	if r.Unaccounted != 0 {
		t.Fatalf("recolor migration leaked %d frames", r.Unaccounted)
	}
	assertMappedMatchColors(t, k, task, va, pages)
}

// assertMappedMatchColors checks every resident page of [va, va+n)
// against the task's current color sets.
func assertMappedMatchColors(t *testing.T, k *kernel.Kernel, task *kernel.Task, va uint64, pages uint64) {
	t.Helper()
	m := k.Mapping()
	bankSet := map[int]bool{}
	for _, c := range task.BankColors() {
		bankSet[c] = true
	}
	llcSet := map[int]bool{}
	for _, c := range task.LLCColors() {
		llcSet[c] = true
	}
	for i := uint64(0); i < pages; i++ {
		f, ok := task.FrameOfVA(va + i*phys.PageSize)
		if !ok {
			t.Fatalf("page %d lost residency", i)
		}
		if task.UsingBank() && !bankSet[m.FrameBankColor(f)] {
			t.Errorf("page %d on bank color %d, want one of %v", i, m.FrameBankColor(f), task.BankColors())
		}
		if task.UsingLLC() && !llcSet[m.FrameLLCColor(f)] {
			t.Errorf("page %d on LLC color %d, want one of %v", i, m.FrameLLCColor(f), task.LLCColors())
		}
	}
}
