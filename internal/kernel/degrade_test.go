// Degradation-ladder tests. These live in an external test package so
// they can drive the kernel the way internal/bench does — through
// policy plans and the invariant auditor — without an import cycle.
package kernel_test

import (
	"errors"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/invariant"
	"github.com/tintmalloc/tintmalloc/internal/kernel"
	"github.com/tintmalloc/tintmalloc/internal/phys"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
)

// 64 MiB: 16384 frames, 4 per (bank, LLC) color combo — small enough
// that every policy exhausts the machine quickly.
const degradeMem = 64 << 20

func bootDegrade(t *testing.T, cfg kernel.Config) *kernel.Kernel {
	t.Helper()
	top := topology.Opteron6128()
	m, err := phys.DefaultSeparable(degradeMem, top.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(top, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// plannedTasks boots tasks on one core per node and applies pol's
// color plan, mirroring how the bench harness sets a run up.
func plannedTasks(t *testing.T, k *kernel.Kernel, pol policy.Policy) []*kernel.Task {
	t.Helper()
	cores := []topology.CoreID{0, 4, 8, 12}
	asn, err := policy.Plan(pol, k.Mapping(), k.Topology(), cores)
	if err != nil {
		t.Fatal(err)
	}
	proc := k.NewProcess()
	tasks := make([]*kernel.Task, len(cores))
	for i, core := range cores {
		task, err := proc.NewTask(core)
		if err != nil {
			t.Fatal(err)
		}
		if err := policy.Apply(task, asn[i]); err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	return tasks
}

func auditClean(t *testing.T, k *kernel.Kernel) {
	t.Helper()
	r := invariant.Audit(k)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Unaccounted != 0 {
		t.Fatalf("%d unaccounted frames on an un-churned kernel", r.Unaccounted)
	}
}

// TestLadderExhaustion drives every policy.All() scheme to
// machine-wide exhaustion and asserts the ladder's contract: no
// allocation fails while any free frame exists anywhere, the eventual
// failure is ErrNoMemory with both free pools at zero and no partial
// state left behind, each task's degradation rungs fire in ladder
// order, and the auditor stays clean throughout — loans included.
func TestLadderExhaustion(t *testing.T) {
	for _, pol := range policy.All() {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			t.Parallel()
			k := bootDegrade(t, kernel.DefaultConfig())
			tasks := plannedTasks(t, k, pol)
			n := len(tasks)
			vas := make([]uint64, n)
			for i, task := range tasks {
				va, err := task.Mmap(0, uint64(k.Mapping().Frames())*phys.PageSize, 0)
				if err != nil {
					t.Fatal(err)
				}
				vas[i] = va
			}
			// Task 0 allocates four pages per round against everyone
			// else's one: the asymmetric demand drains its preferred
			// placement while other nodes still hold memory, forcing
			// every colored policy through the ladder before the
			// machine as a whole is empty.
			weights := []int{4, 1, 1, 1}
			next := make([]uint64, n)
			done := make([]bool, n)
			seqs := make([][]kernel.Rung, n)
			alive := n
			for alive > 0 {
				for i, task := range tasks {
					if done[i] {
						continue
					}
					for w := 0; w < weights[i] && !done[i]; w++ {
						va := vas[i] + next[i]*phys.PageSize
						before := k.Stats().DegradedAllocs
						_, _, err := task.Translate(va)
						if err != nil {
							if !errors.Is(err, kernel.ErrNoMemory) {
								t.Fatalf("task %d: exhaustion error = %v, want ErrNoMemory", i, err)
							}
							if free, colored := k.FreeFrames(), k.TotalColoredFree(); free != 0 || colored != 0 {
								t.Fatalf("task %d failed with %d buddy + %d colored frames still free", i, free, colored)
							}
							if task.Resident(va) {
								t.Fatalf("task %d: failed fault left vpage resident", i)
							}
							done[i] = true
							alive--
							continue
						}
						next[i]++
						after := k.Stats().DegradedAllocs
						for r := kernel.Rung(0); r < kernel.NumRungs; r++ {
							if after[r] > before[r] {
								seqs[i] = append(seqs[i], r)
							}
						}
					}
				}
			}
			// With no frees, a task can never step back up: once a
			// rung's supply is dry it stays dry, so each task's rung
			// sequence must be non-decreasing.
			for i, seq := range seqs {
				for j := 1; j < len(seq); j++ {
					if seq[j] < seq[j-1] {
						t.Fatalf("task %d degraded out of order: %v after %v", i, seq[j], seq[j-1])
					}
				}
			}
			if pol.Colored() {
				var degraded uint64
				for _, c := range k.Stats().DegradedAllocs {
					degraded += c
				}
				if degraded == 0 {
					t.Error("colored policy exhausted the machine without a single ladder allocation")
				}
			}
			auditClean(t, k)
		})
	}
}

// TestRefillFaultDegrades forces every color-list refill to fail: the
// colored path finds nothing parked and must step to rung 2 (local
// uncolored buddy frames) even though plenty of buddy memory exists.
func TestRefillFaultDegrades(t *testing.T) {
	k := bootDegrade(t, kernel.DefaultConfig())
	tasks := plannedTasks(t, k, policy.MEMLLC)
	k.SetFaultHooks(kernel.FaultHooks{Refill: func(node int) bool { return true }})
	task := tasks[0]
	const pages = 32
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			t.Fatalf("page %d: %v (free=%d)", p, err, k.FreeFrames())
		}
	}
	st := k.Stats()
	if st.DegradedAllocs[kernel.RungLocalUncolored] != pages {
		t.Errorf("RungLocalUncolored = %d, want %d (all refills injected)",
			st.DegradedAllocs[kernel.RungLocalUncolored], pages)
	}
	if st.ColoredPages != 0 {
		t.Errorf("ColoredPages = %d with every refill failing", st.ColoredPages)
	}
	if k.Loans() != pages {
		t.Errorf("Loans = %d, want %d", k.Loans(), pages)
	}
	auditClean(t, k)
}

// TestReclaimLoans sends loans home: once the refill faults clear,
// ReclaimLoans migrates each borrowed page back onto preferred
// placement and settles the loan records.
func TestReclaimLoans(t *testing.T) {
	k := bootDegrade(t, kernel.DefaultConfig())
	tasks := plannedTasks(t, k, policy.MEMLLC)
	task := tasks[0]
	k.SetFaultHooks(kernel.FaultHooks{Refill: func(node int) bool { return true }})
	const pages = 16
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if k.Loans() != pages {
		t.Fatalf("Loans = %d, want %d", k.Loans(), pages)
	}
	// Pressure subsides: faults clear, preferred placement works again.
	k.SetFaultHooks(kernel.FaultHooks{})
	moved, failed := task.ReclaimLoans()
	if moved != pages || failed != 0 {
		t.Fatalf("ReclaimLoans = (%d, %d), want (%d, 0)", moved, failed, pages)
	}
	if k.Loans() != 0 {
		t.Errorf("%d loans outstanding after reclaim", k.Loans())
	}
	if got := k.Stats().LoansReclaimed; got != pages {
		t.Errorf("LoansReclaimed = %d, want %d", got, pages)
	}
	// Every reclaimed page now satisfies the task's constraint.
	for p := uint64(0); p < pages; p++ {
		f, ok := task.FrameOfVA(va + p*phys.PageSize)
		if !ok {
			t.Fatalf("page %d not resident after reclaim", p)
		}
		bc, lc := k.FrameColors(f)
		if !task.OwnsBankColor(bc) || !task.OwnsLLCColor(lc) {
			t.Errorf("page %d reclaimed onto frame %d with colors (%d,%d) outside the task's sets", p, f, bc, lc)
		}
	}
	auditClean(t, k)
}

// TestReclaimLoansFaulted is the regression test for the reclaim
// report: a faulted reclaim used to be invisible to callers (Trim
// discarded the count entirely), so a plan injecting migration faults
// could leave loans outstanding with nothing in the stats admitting
// it. Every outcome must now be accounted: moved + failed covers the
// ledger, failed loans stay intact on it, and a later clean reclaim
// sends them home.
func TestReclaimLoansFaulted(t *testing.T) {
	k := bootDegrade(t, kernel.DefaultConfig())
	tasks := plannedTasks(t, k, policy.MEMLLC)
	task := tasks[0]
	k.SetFaultHooks(kernel.FaultHooks{Refill: func(node int) bool { return true }})
	const pages = 16
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < pages; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if k.Loans() != pages {
		t.Fatalf("Loans = %d, want %d", k.Loans(), pages)
	}
	// Pressure subsides, but half the page copies fault.
	k.SetFaultHooks(kernel.FaultHooks{
		Migrate: func(taskID int, vpage uint64) bool { return vpage%2 == 0 },
	})
	moved, failed := task.ReclaimLoans()
	if moved+failed != pages {
		t.Fatalf("ReclaimLoans = (%d, %d): outcomes don't cover the %d loans", moved, failed, pages)
	}
	if failed == 0 {
		t.Fatal("no injected migration fault fired")
	}
	if k.Loans() != failed {
		t.Errorf("Loans = %d after faulted reclaim, want %d (each failure keeps its loan)", k.Loans(), failed)
	}
	// The surviving loans must be intact: right task, mapped page,
	// mirror coherent — a faulted copy is a no-op, not a half-move.
	k.VisitLoans(func(f phys.Frame, lt *kernel.Task, vp uint64, rung kernel.Rung) {
		if lt != task {
			t.Errorf("frame %d: loan reassigned to task %d by a faulted reclaim", f, lt.ID())
		}
		got, ok := task.FrameOfVA(vp << phys.PageShift)
		if !ok || got != f {
			t.Errorf("frame %d: loan's vpage %#x no longer maps to it", f, vp)
		}
	})
	auditClean(t, k)
	st := k.Stats()
	if st.LoansReclaimed != uint64(moved) {
		t.Errorf("LoansReclaimed = %d, want %d", st.LoansReclaimed, moved)
	}
	// Faults clear; the retry drains the ledger.
	k.SetFaultHooks(kernel.FaultHooks{})
	moved2, failed2 := task.ReclaimLoans()
	if moved2 != failed || failed2 != 0 {
		t.Fatalf("retry ReclaimLoans = (%d, %d), want (%d, 0)", moved2, failed2, failed)
	}
	if k.Loans() != 0 {
		t.Errorf("%d loans outstanding after the retry", k.Loans())
	}
	auditClean(t, k)
}

// TestMigrateFault: an injected migration fault leaves the page on
// its old frame, counted in MigrateStats.Failed, with nothing leaked.
func TestMigrateFault(t *testing.T) {
	k := bootDegrade(t, kernel.DefaultConfig())
	proc := k.NewProcess()
	task, err := proc.NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 8
	va, err := task.Mmap(0, pages*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldFrames := make([]phys.Frame, pages)
	for p := uint64(0); p < pages; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			t.Fatal(err)
		}
		oldFrames[p], _ = task.FrameOfVA(va + p*phys.PageSize)
	}
	// Color the task with a local bank color none of the resident
	// pages happens to carry, so every page genuinely needs a copy.
	have := map[int]bool{}
	for _, f := range oldFrames {
		bc, _ := k.FrameColors(f)
		have[bc] = true
	}
	target := -1
	for _, bc := range k.Mapping().BankColorsOfNode(int(k.Topology().NodeOfCore(0))) {
		if !have[bc] {
			target = bc
			break
		}
	}
	if target < 0 {
		t.Fatal("every local bank color already present; enlarge the machine")
	}
	if _, err := task.Mmap(uint64(target)|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	k.SetFaultHooks(kernel.FaultHooks{
		Migrate: func(taskID int, vpage uint64) bool { return vpage%2 == 0 },
	})
	st, err := task.Migrate(va, pages*phys.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed == 0 {
		t.Fatal("no migration faults fired")
	}
	if st.Scanned != pages || st.Moved+st.AlreadyOK+st.Failed != pages {
		t.Errorf("MigrateStats don't add up: %+v", st)
	}
	for p := uint64(0); p < pages; p++ {
		f, ok := task.FrameOfVA(va + p*phys.PageSize)
		if !ok {
			t.Fatalf("page %d lost by a failed migration", p)
		}
		vp := (va + p*phys.PageSize) >> phys.PageShift
		if vp%2 == 0 && f != oldFrames[p] {
			t.Errorf("page %d moved despite the injected fault", p)
		}
	}
	auditClean(t, k)
}

// TestStrictModeNoPartialState: with DisableDegrade the paper's
// fail-hard contract returns ErrNoColoredMemory, and the failed fault
// leaves no partial mapping, no stale TLB entry and clean bookkeeping.
func TestStrictModeNoPartialState(t *testing.T) {
	cfg := kernel.DefaultConfig()
	cfg.DisableDegrade = true
	k := bootDegrade(t, cfg)
	proc := k.NewProcess()
	task, err := proc.NewTask(0)
	if err != nil {
		t.Fatal(err)
	}
	// One bank + one LLC color: tiny supply, quick exhaustion.
	if _, err := task.Mmap(0|kernel.SetMemColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Mmap(0|kernel.SetLLCColor, 0, kernel.ColorAlloc); err != nil {
		t.Fatal(err)
	}
	va, err := task.Mmap(0, uint64(k.Mapping().Frames())*phys.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := uint64(0)
	for ; ; p++ {
		if _, _, err := task.Translate(va + p*phys.PageSize); err != nil {
			if !errors.Is(err, kernel.ErrNoColoredMemory) {
				t.Fatalf("strict-mode error = %v, want ErrNoColoredMemory", err)
			}
			break
		}
	}
	failVA := va + p*phys.PageSize
	if task.Resident(failVA) {
		t.Error("failed fault left the page resident")
	}
	// The failure must be stable: retrying changes nothing.
	if _, _, err := task.Translate(failVA); !errors.Is(err, kernel.ErrNoColoredMemory) {
		t.Errorf("retry error = %v, want ErrNoColoredMemory", err)
	}
	if free := k.FreeFrames(); free == 0 {
		t.Error("strict-mode exhaustion consumed the whole machine; other colors should remain")
	}
	var degraded uint64
	for _, c := range k.Stats().DegradedAllocs {
		degraded += c
	}
	if degraded != 0 || k.Loans() != 0 {
		t.Errorf("strict mode used the ladder: degraded=%d loans=%d", degraded, k.Loans())
	}
	auditClean(t, k)
}
