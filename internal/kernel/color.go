package kernel

import "github.com/tintmalloc/tintmalloc/internal/phys"

// colorTable holds the kernel's colored free lists: a matrix of
// per-(bank color, LLC color) page stacks (the paper's
// color_list[MEM_ID][cache_ID], 128x32 on the Opteron platform),
// plus aggregate counts so "any LLC color of bank bc" and "any bank
// color of LLC lc" queries stay cheap.
//
// The matrix is flattened row-major into one slice-of-stacks indexed
// bc*nLLC+lc: a probe is a single dependent load instead of the two a
// [][][]Frame layout costs, and the degradation ladder's combo scans
// walk one contiguous header array.
type colorTable struct {
	nBank, nLLC int
	lists       [][]phys.Frame // [bc*nLLC+lc] LIFO stacks
	bankCount   []uint64       // frames parked per bank color
	llcCount    []uint64       // frames parked per LLC color
	total       uint64
}

func newColorTable(nBank, nLLC int) *colorTable {
	return &colorTable{
		nBank:     nBank,
		nLLC:      nLLC,
		lists:     make([][]phys.Frame, nBank*nLLC),
		bankCount: make([]uint64, nBank),
		llcCount:  make([]uint64, nLLC),
	}
}

// list returns the (bc, lc) stack.
func (ct *colorTable) list(bc, lc int) []phys.Frame {
	return ct.lists[bc*ct.nLLC+lc]
}

func (ct *colorTable) push(f phys.Frame, bc, lc int) {
	i := bc*ct.nLLC + lc
	ct.lists[i] = append(ct.lists[i], f)
	ct.bankCount[bc]++
	ct.llcCount[lc]++
	ct.total++
}

// popExact pops a page of exactly (bc, lc).
func (ct *colorTable) popExact(bc, lc int) (phys.Frame, bool) {
	i := bc*ct.nLLC + lc
	l := ct.lists[i]
	if len(l) == 0 {
		return 0, false
	}
	f := l[len(l)-1]
	ct.lists[i] = l[:len(l)-1]
	ct.bankCount[bc]--
	ct.llcCount[lc]--
	ct.total--
	return f, true
}

// popBankAny pops a page of bank color bc with any LLC color,
// scanning the LLC columns from startLC so successive requests rotate
// across colors instead of clustering on column 0.
func (ct *colorTable) popBankAny(bc, startLC int) (phys.Frame, bool) {
	if ct.bankCount[bc] == 0 {
		return 0, false
	}
	for i := 0; i < ct.nLLC; i++ {
		lc := (startLC + i) % ct.nLLC
		if f, ok := ct.popExact(bc, lc); ok {
			return f, true
		}
	}
	return 0, false
}

// popLLCAny pops a page of LLC color lc with any bank color. The
// bank columns are scanned in the supplied order (the caller passes
// bank colors sorted local-node-first, rotated per task) so
// LLC-only coloring keeps the default policy's node locality and
// spreads pages across banks.
func (ct *colorTable) popLLCAny(lc int, bankOrder []int) (phys.Frame, bool) {
	if ct.llcCount[lc] == 0 {
		return 0, false
	}
	for _, bc := range bankOrder {
		if len(ct.lists[bc*ct.nLLC+lc]) > 0 {
			return ct.popExact(bc, lc)
		}
	}
	return 0, false
}
