package ring

import (
	"runtime"
	"testing"
)

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{-1, 0, 3, 6, 100} {
		if _, err := New[int](c); err == nil {
			t.Errorf("New(%d): want error", c)
		}
	}
	for _, c := range []int{1, 2, 64, 1024} {
		r, err := New[int](c)
		if err != nil {
			t.Fatalf("New(%d): %v", c, err)
		}
		if r.Cap() != c {
			t.Errorf("Cap() = %d, want %d", r.Cap(), c)
		}
	}
}

func TestFIFOOrderAndWraparound(t *testing.T) {
	r, err := New[int](8)
	if err != nil {
		t.Fatal(err)
	}
	// Several laps around the buffer so head/tail wrap the mask.
	next := 0
	for lap := 0; lap < 10; lap++ {
		for i := 0; i < 5; i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("lap %d: push %d failed on non-full ring", lap, next+i)
			}
		}
		for i := 0; i < 5; i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("lap %d: pop = %d,%v, want %d,true", lap, v, ok, next+i)
			}
		}
		next += 5
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
}

func TestFullAndEmptyBounds(t *testing.T) {
	r, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push on full ring succeeded")
	}
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", r.Len())
	}
	for i := 0; i < 4; i++ {
		if v, ok := r.TryPop(); !ok || v != i {
			t.Fatalf("pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop on empty ring succeeded")
	}
	if r.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", r.Len())
	}
}

func TestPopClearsSlot(t *testing.T) {
	r, err := New[*int](2)
	if err != nil {
		t.Fatal(err)
	}
	v := new(int)
	r.TryPush(v)
	if got, ok := r.TryPop(); !ok || got != v {
		t.Fatal("pop did not return pushed pointer")
	}
	if r.buf[0] != nil {
		t.Fatal("pop left the slot pointer live")
	}
}

// TestConcurrentSPSC streams a sequence through the ring with a real
// producer/consumer goroutine pair; under -race this also proves the
// slot handoff is properly ordered by the index atomics.
func TestConcurrentSPSC(t *testing.T) {
	r, err := New[uint64](64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	errc := make(chan error, 1)
	go func() {
		for i := uint64(0); i < n; {
			if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
		errc <- nil
	}()
	for want := uint64(0); want < n; {
		v, ok := r.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != want {
			t.Fatalf("popped %d, want %d", v, want)
		}
		want++
	}
	<-errc
	if _, ok := r.TryPop(); ok {
		t.Fatal("ring not empty after stream")
	}
}

func BenchmarkSPSCRoundTrip(b *testing.B) {
	r, _ := New[uint64](256)
	for i := 0; i < b.N; i++ {
		if !r.TryPush(uint64(i)) {
			b.Fatal("push failed")
		}
		if _, ok := r.TryPop(); !ok {
			b.Fatal("pop failed")
		}
	}
}
