// Package ring provides a bounded lock-free single-producer
// single-consumer queue — the request channel of the offloaded
// allocation-core experiment (EXPERIMENTS.md), modeled on the
// per-thread message rings SpeedMalloc uses to ship malloc/free
// requests to its dedicated allocation core (PAPERS.md).
//
// The design is the classic Lamport ring with cached peer indices:
// producer and consumer each own one monotonically increasing
// position, published with atomics (which gives the slot accesses
// their happens-before edges), and keep a cached copy of the peer's
// position so the common case touches only one shared cache line per
// operation. Slots are never accessed concurrently: the producer
// writes buf[tail] strictly before publishing tail+1, and the consumer
// reads buf[head] only after observing tail > head.
//
// A ring is safe for exactly one concurrent producer and one
// concurrent consumer. Both operations are non-blocking: TryPush
// reports false on a full ring, TryPop on an empty one — callers spin,
// yield, or shed as fits their latency budget.
package ring

import (
	"fmt"
	"sync/atomic"
)

// pad keeps the hot fields on distinct cache lines so the producer's
// and consumer's positions do not false-share.
type pad [64]byte

// SPSC is a bounded single-producer single-consumer queue. The zero
// value is not usable; call New.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_         pad
	head      atomic.Uint64 // next slot to pop; owned by the consumer
	tailCache uint64        // consumer's last view of head's limit
	_         pad
	tail      atomic.Uint64 // next slot to push; owned by the producer
	headCache uint64        // producer's last view of tail's limit
	_         pad
}

// New builds a ring with the given capacity, which must be a positive
// power of two (so position wrap-around is a mask, not a divide).
func New[T any](capacity int) (*SPSC[T], error) {
	if capacity <= 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("ring: capacity %d is not a positive power of two", capacity)
	}
	return &SPSC[T]{
		buf:  make([]T, capacity),
		mask: uint64(capacity) - 1,
	}, nil
}

// Cap returns the ring's capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns a point-in-time element count. It is exact when the
// caller is the only side currently operating, approximate otherwise.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush appends v, reporting false if the ring is full. Must be
// called from the single producer only.
func (r *SPSC[T]) TryPush(v T) bool {
	tail := r.tail.Load()
	if tail-r.headCache >= uint64(len(r.buf)) {
		r.headCache = r.head.Load()
		if tail-r.headCache >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	return true
}

// TryPop removes and returns the oldest element, reporting false if
// the ring is empty. Must be called from the single consumer only.
func (r *SPSC[T]) TryPop() (T, bool) {
	head := r.head.Load()
	if head >= r.tailCache {
		r.tailCache = r.tail.Load()
		if head >= r.tailCache {
			var zero T
			return zero, false
		}
	}
	v := r.buf[head&r.mask]
	// Clear the slot so the ring does not pin pointer payloads past
	// their pop (a *T element would otherwise stay reachable until the
	// slot is overwritten a full lap later).
	var zero T
	r.buf[head&r.mask] = zero
	r.head.Store(head + 1)
	return v, true
}
