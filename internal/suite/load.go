package suite

import (
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"os"
)

// defaultTOML is the embedded registry re-expressing every hard-coded
// tintbench experiment as a declarative entry (ROADMAP item 2).
//
//go:embed default.toml
var defaultTOML []byte

// Parse decodes a registry from TOML (default) or JSON (first
// non-space byte '{') and validates it. Errors carry either a
// positional "suite: line N:" prefix (syntax) or the addressed
// "suite: <name>: <field>:" prefix (validation).
func Parse(data []byte) (*Registry, error) {
	var (
		reg *Registry
		err error
	)
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		reg, err = parseJSON(trimmed)
	} else {
		reg, err = parseTOML(data)
	}
	if err != nil {
		return nil, err
	}
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	return reg, nil
}

func parseJSON(data []byte) (*Registry, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	reg := &Registry{}
	if err := dec.Decode(reg); err != nil {
		return nil, fmt.Errorf("suite: json: %w", err)
	}
	// Normalize empty to nil so the JSON and TOML forms of the same
	// registry are DeepEqual (round-trip property).
	if len(reg.Suites) == 0 {
		reg.Suites = nil
	}
	return reg, nil
}

// LoadFile parses and validates a registry file.
func LoadFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("suite: %w", err)
	}
	reg, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reg, nil
}

// Default returns the embedded registry. The embedded file is part of
// the build, so a failure to parse is a build defect: it panics
// rather than forcing every caller to thread an impossible error.
// (The package tests parse and validate it the fallible way.)
func Default() *Registry {
	reg, err := Parse(defaultTOML)
	if err != nil {
		panic(fmt.Sprintf("suite: embedded default.toml invalid: %v", err))
	}
	return reg
}

// Load composes the registry tintbench runs against: the embedded
// defaults with the suites of path (if non-empty) merged over them.
func Load(path string) (*Registry, error) {
	reg := Default()
	if path == "" {
		return reg, nil
	}
	user, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	merged := reg.Merge(user)
	// Merging validated registries cannot produce duplicate names,
	// but re-validate anyway: it is cheap and keeps the invariant
	// local.
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	return merged, nil
}
