// Package suite is the declarative workload-suite registry: TOML or
// JSON descriptions of benchmark suites — which workloads (builtin or
// parameterized driver instances), which thread-pinning
// configurations, which coloring policies, how many repeats, at what
// scale — loaded and validated at startup, so adding a scenario is a
// config edit rather than new Go code (ROADMAP item 2, mirroring
// golang.org/x/benchmarks/cmd/bent's suites.toml).
//
// The embedded default registry (default.toml) re-expresses every
// pre-existing hard-coded tintbench experiment; the differential
// tests in this package pin registry-driven runs byte-identical to
// their hard-coded forms at any -parallel value.
package suite

import (
	"fmt"
	"math"

	"github.com/tintmalloc/tintmalloc/internal/bench"
	"github.com/tintmalloc/tintmalloc/internal/policy"
	"github.com/tintmalloc/tintmalloc/internal/topology"
	"github.com/tintmalloc/tintmalloc/internal/workload"
)

// WorkloadSpec names one workload instance of a suite: a driver plus
// its knobs (see workload.DriverSpec for the per-driver knob
// meanings; zero means driver default, and drivers reject knobs they
// do not interpret).
type WorkloadSpec struct {
	// Name is the instance name; empty defaults to the driver name.
	Name      string `json:"name,omitempty"`
	Driver    string `json:"driver"`
	Footprint uint64 `json:"footprint,omitempty"`
	Block     uint64 `json:"block,omitempty"`
	Ops       uint64 `json:"ops,omitempty"`
	Ticks     int    `json:"ticks,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	ReadPct   int    `json:"read_pct,omitempty"`
}

// InstanceName returns the effective workload name.
func (w WorkloadSpec) InstanceName() string {
	if w.Name != "" {
		return w.Name
	}
	return w.Driver
}

// driverSpec maps the registry knobs onto the workload package's
// knob struct.
func (w WorkloadSpec) driverSpec() workload.DriverSpec {
	return workload.DriverSpec{
		Footprint: w.Footprint,
		Block:     w.Block,
		Ops:       w.Ops,
		Ticks:     w.Ticks,
		Depth:     w.Depth,
		ReadPct:   w.ReadPct,
	}
}

// Resolve builds the workload instance this spec describes.
func (w WorkloadSpec) Resolve() (workload.Workload, error) {
	return workload.FromSpec(w.Name, w.Driver, w.driverSpec())
}

// Suite is one registry entry: a named workload × config × policy
// matrix with its run parameters.
type Suite struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Workloads   []WorkloadSpec `json:"workloads"`
	// Configs are thread-pinning configuration names
	// (bench.Configurations).
	Configs []string `json:"configs"`
	// Policies are coloring-policy names (policy.ParsePolicy).
	Policies []string `json:"policies"`
	// Repeats per cell; 0 defers to the runner (tintbench -repeats).
	Repeats int `json:"repeats,omitempty"`
	// Scale multiplies working sets; 0 defers to the runner.
	Scale float64 `json:"scale,omitempty"`
	// Seed is the base random seed; 0 defers to the runner.
	Seed int64 `json:"seed,omitempty"`
}

// Registry is a loaded suite file.
type Registry struct {
	Suites []Suite `json:"suites"`
}

// ByName finds a suite.
func (r *Registry) ByName(name string) (Suite, error) {
	for _, s := range r.Suites {
		if s.Name == name {
			return s, nil
		}
	}
	return Suite{}, fmt.Errorf("suite: unknown suite %q (have %v)", name, r.Names())
}

// Names lists the registry's suite names in file order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.Suites))
	for i, s := range r.Suites {
		out[i] = s.Name
	}
	return out
}

// Merge returns a registry with entries of other laid over r: same
// names replace (keeping r's position), new names append in other's
// order. Neither input is modified. This is how a user file composes
// with the embedded defaults: overriding a default suite is writing
// an entry with its name.
func (r *Registry) Merge(other *Registry) *Registry {
	out := &Registry{Suites: append([]Suite(nil), r.Suites...)}
	for _, s := range other.Suites {
		replaced := false
		for i := range out.Suites {
			if out.Suites[i].Name == s.Name {
				out.Suites[i] = s
				replaced = true
				break
			}
		}
		if !replaced {
			out.Suites = append(out.Suites, s)
		}
	}
	return out
}

// fieldErr builds the package's validation-error shape:
// "suite: <name>: <field>: <problem>".
func fieldErr(suiteName, field, format string, args ...any) error {
	if suiteName == "" {
		suiteName = "(unnamed)"
	}
	return fmt.Errorf("suite: %s: %s: %s", suiteName, field, fmt.Sprintf(format, args...))
}

// validName reports whether a suite or workload-instance name is
// CLI- and file-safe.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.', c == '+':
		default:
			return false
		}
	}
	return true
}

// Validate checks the whole registry. Every reported problem carries
// the "suite: <name>: <field>:" prefix so a malformed config fails
// loudly and addressably.
func (r *Registry) Validate() error {
	seen := map[string]bool{}
	for i := range r.Suites {
		s := &r.Suites[i]
		if s.Name == "" {
			return fieldErr("", "name", "required (entry %d)", i+1)
		}
		if !validName(s.Name) {
			return fieldErr(s.Name, "name", "must match [A-Za-z0-9_.+-]+")
		}
		if seen[s.Name] {
			return fieldErr(s.Name, "name", "duplicate suite name")
		}
		seen[s.Name] = true
		if err := s.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Suite) validate() error {
	if len(s.Workloads) == 0 {
		return fieldErr(s.Name, "workloads", "at least one workload required")
	}
	wseen := map[string]bool{}
	for _, w := range s.Workloads {
		inst := w.InstanceName()
		if w.Driver == "" {
			return fieldErr(s.Name, "workload", "driver required (instance %q)", inst)
		}
		if !validName(inst) {
			return fieldErr(s.Name, "workload", "instance name %q must match [A-Za-z0-9_.+-]+", inst)
		}
		if wseen[inst] {
			return fieldErr(s.Name, "workload", "duplicate instance name %q", inst)
		}
		wseen[inst] = true
		if _, err := w.Resolve(); err != nil {
			return fieldErr(s.Name, "workload", "%q: %v", inst, err)
		}
	}
	if len(s.Configs) == 0 {
		return fieldErr(s.Name, "configs", "at least one configuration required")
	}
	// Configuration names are topology-independent constants; the
	// paper topology is the canonical namespace.
	topo := topology.Opteron6128()
	cseen := map[string]bool{}
	for _, c := range s.Configs {
		if _, err := bench.ConfigByName(topo, c); err != nil {
			return fieldErr(s.Name, "configs", "%v", err)
		}
		if cseen[c] {
			return fieldErr(s.Name, "configs", "duplicate configuration %q", c)
		}
		cseen[c] = true
	}
	if len(s.Policies) == 0 {
		return fieldErr(s.Name, "policies", "at least one policy required")
	}
	pseen := map[string]bool{}
	for _, p := range s.Policies {
		if _, err := policy.ParsePolicy(p); err != nil {
			return fieldErr(s.Name, "policies", "%v", err)
		}
		if pseen[p] {
			return fieldErr(s.Name, "policies", "duplicate policy %q", p)
		}
		pseen[p] = true
	}
	if s.Repeats < 0 {
		return fieldErr(s.Name, "repeats", "must be >= 0, have %d", s.Repeats)
	}
	if s.Scale < 0 || math.IsNaN(s.Scale) || math.IsInf(s.Scale, 0) {
		return fieldErr(s.Name, "scale", "must be a finite value >= 0, have %v", s.Scale)
	}
	return nil
}
