package suite

import (
	"reflect"
	"testing"

	"github.com/tintmalloc/tintmalloc/internal/bench"
)

// TestRadixReferenceSuiteDifferential pins the radix page tables (and
// the SoA metadata layouts that ride the same fast paths) to the kept
// reference implementations at the level that matters for the
// acceptance contract: full benchmark cells. A machine on the fast
// layouts and one booted with Config.DisableRadixPT must produce
// byte-identical suite results at -parallel 1 and 4 — any
// representation leak (a changed fault cost, a reordered allocation,
// a stats drift) diverges some cell.
func TestRadixReferenceSuiteDifferential(t *testing.T) {
	reg := Default()
	s, err := reg.ByName("smoke")
	if err != nil {
		t.Fatal(err)
	}

	run := func(disableRadix bool, workers int) *Result {
		t.Helper()
		mach, err := bench.NewMachine(bench.MachineOptions{MemBytes: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		mach.KernCfg.DisableRadixPT = disableRadix
		got, err := Run(mach, s, diffParams, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	want := run(true, 1) // map reference, sequential
	for _, workers := range []int{1, 4} {
		got := run(false, workers)
		if len(got.Cells) != len(want.Cells) {
			t.Fatalf("workers=%d: %d cells, reference has %d", workers, len(got.Cells), len(want.Cells))
		}
		for i := range want.Cells {
			g, w := got.Cells[i], want.Cells[i]
			g.Cell, w.Cell = stripSpec(g.Cell), stripSpec(w.Cell)
			if !reflect.DeepEqual(g, w) {
				t.Errorf("workers=%d: cell %d (%s/%s/%s) diverged between radix and map reference:\n radix %+v\n map   %+v",
					workers, i, w.Workload, w.Config, w.Policy, g, w)
			}
		}
	}
}
