package suite

import (
	"reflect"
	"strings"
	"testing"
)

const sampleTOML = `
# comment
[[suite]]
name = "demo"
description = "a demo # not a comment"
configs = ["16_threads_4_nodes", "4_threads_1_nodes"]
policies = ["buddy", "MEM+LLC"]
repeats = 2
scale = 0.25
seed = 42

[[suite.workload]]
driver = "lbm"

[[suite.workload]]
name = "big-garbage"
driver = "garbage"
footprint = 4194304
ops = 10000
`

func TestParseTOML(t *testing.T) {
	reg, err := Parse([]byte(sampleTOML))
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Suites) != 1 {
		t.Fatalf("suites = %d, want 1", len(reg.Suites))
	}
	s := reg.Suites[0]
	if s.Name != "demo" || s.Repeats != 2 || s.Scale != 0.25 || s.Seed != 42 {
		t.Errorf("scalar fields wrong: %+v", s)
	}
	if s.Description != "a demo # not a comment" {
		t.Errorf("comment stripping broke a quoted #: %q", s.Description)
	}
	want := []string{"16_threads_4_nodes", "4_threads_1_nodes"}
	if !reflect.DeepEqual(s.Configs, want) {
		t.Errorf("configs = %v, want %v", s.Configs, want)
	}
	if len(s.Workloads) != 2 {
		t.Fatalf("workloads = %d, want 2", len(s.Workloads))
	}
	w := s.Workloads[1]
	if w.Name != "big-garbage" || w.Driver != "garbage" || w.Footprint != 4194304 || w.Ops != 10000 {
		t.Errorf("workload knobs wrong: %+v", w)
	}
	if got := w.InstanceName(); got != "big-garbage" {
		t.Errorf("InstanceName = %q", got)
	}
	if got := s.Workloads[0].InstanceName(); got != "lbm" {
		t.Errorf("InstanceName (default) = %q", got)
	}
}

func TestParseJSON(t *testing.T) {
	data := `{
  "suites": [
    {
      "name": "demo",
      "workloads": [{"driver": "lbm"}],
      "configs": ["16_threads_4_nodes"],
      "policies": ["buddy"]
    }
  ]
}`
	reg, err := Parse([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Suites) != 1 || reg.Suites[0].Name != "demo" {
		t.Fatalf("bad parse: %+v", reg)
	}
	// Unknown JSON fields must be rejected, same as unknown TOML keys.
	if _, err := Parse([]byte(`{"suites":[{"name":"x","typo":1}]}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
}

// Syntax errors carry a positional prefix; validation errors carry
// the addressed "suite: <name>: <field>:" prefix.
func TestParseErrors(t *testing.T) {
	syntax := []string{
		"nonsense\n",
		"[table]\n",
		"[[nope]]\n",
		"[[suite.workload]]\n", // outside a [[suite]]
		"key = 1\n",            // outside a [[suite]]
		"[[suite]]\nname = unquoted\n",
		"[[suite]]\ntypo_key = 1\n",
		"[[suite]]\nrepeats = \"3\"\n",
		"[[suite]]\nscale = nan\n",
		"[[suite]]\nconfigs = \"not-an-array\"\n",
		"[[suite]]\n[[suite.workload]]\nbogus = 1\n",
		"[[suite]]\nname = \"x\n",                 // unterminated string
		"[[suite]]\nname = \"x\"\nname = \"y\"\n", // duplicate key in one table
		"[[suite]]\n[[suite.workload]]\ndriver = \"lbm\"\ndriver = \"lbm\"\n",
	}
	for _, src := range syntax {
		_, err := Parse([]byte(src))
		if err == nil {
			t.Errorf("Parse(%q) accepted", src)
			continue
		}
		if !strings.HasPrefix(err.Error(), "suite: line ") {
			t.Errorf("Parse(%q) error %q lacks positional prefix", src, err)
		}
	}

	validation := []struct {
		src   string
		field string
	}{
		{"[[suite]]\n", "(unnamed): name:"},
		{"[[suite]]\nname = \"has space\"\n", "has space: name:"},
		{"[[suite]]\nname = \"x\"\n", "x: workloads:"},
		{"[[suite]]\nname = \"x\"\n[[suite.workload]]\ndriver = \"nope\"\n", "x: workload:"},
		{"[[suite]]\nname = \"x\"\n[[suite.workload]]\ndriver = \"lbm\"\nops = 5\n", "x: workload:"},
		{"[[suite]]\nname = \"x\"\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: configs:"},
		{"[[suite]]\nname = \"x\"\nconfigs = [\"bogus_config\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: configs:"},
		{"[[suite]]\nname = \"x\"\nconfigs = [\"4_threads_1_nodes\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: policies:"},
		{"[[suite]]\nname = \"x\"\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"bogus\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: policies:"},
		{"[[suite]]\nname = \"x\"\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\", \"buddy\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: policies:"},
		{"[[suite]]\nname = \"x\"\nrepeats = -1\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: repeats:"},
		{"[[suite]]\nname = \"x\"\nscale = -0.5\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: scale:"},
		{"[[suite]]\nname = \"x\"\n[[suite.workload]]\ndriver = \"lbm\"\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: workload:"},
		{"[[suite]]\nname = \"x\"\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\"]\n[[suite.workload]]\ndriver = \"lbm\"\n[[suite]]\nname = \"x\"\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\"]\n[[suite.workload]]\ndriver = \"lbm\"\n", "x: name: duplicate"},
	}
	for _, c := range validation {
		_, err := Parse([]byte(c.src))
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.src)
			continue
		}
		if !strings.HasPrefix(err.Error(), "suite: "+c.field) {
			t.Errorf("Parse(%q) error = %q, want prefix %q", c.src, err, "suite: "+c.field)
		}
	}
}

// Reassigning a key within one table is a hard positional error —
// last-wins would silently discard the first value. The same key in
// a different table (or a later [[suite]]) is of course fine.
func TestDuplicateKeys(t *testing.T) {
	_, err := Parse([]byte("[[suite]]\nname = \"x\"\nrepeats = 1\nname = \"y\"\n"))
	if err == nil {
		t.Fatal("duplicate suite key accepted")
	}
	want := `suite: line 4: duplicate key "name" in this table (first set at line 2)`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}

	_, err = Parse([]byte("[[suite]]\nname = \"x\"\n[[suite.workload]]\ndriver = \"lbm\"\nops = 1\nops = 2\n"))
	if err == nil {
		t.Fatal("duplicate workload key accepted")
	}
	want = `suite: line 6: duplicate key "ops" in this table (first set at line 5)`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}

	// A fresh table resets the tracking: the same key may appear once
	// in the suite, once in each of its workloads, and again in the
	// next suite.
	ok := "[[suite]]\nname = \"a\"\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\"]\n" +
		"[[suite.workload]]\nname = \"w1\"\ndriver = \"lbm\"\n" +
		"[[suite.workload]]\nname = \"w2\"\ndriver = \"lbm\"\n" +
		"[[suite]]\nname = \"b\"\nconfigs = [\"4_threads_1_nodes\"]\npolicies = [\"buddy\"]\n" +
		"[[suite.workload]]\ndriver = \"lbm\"\n"
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("repeated keys across distinct tables rejected: %v", err)
	}
}

func TestDefaultRegistry(t *testing.T) {
	reg := Default()
	want := []string{"fig10", "paper", "perthread-lbm", "detail-lbm", "ported", "smoke"}
	if got := reg.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("default names = %v, want %v", got, want)
	}
	// Every entry must resolve and validate (Parse already validated;
	// spot-check lookup and the smoke entry's shape).
	s, err := reg.ByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if s.Repeats != 3 || s.Scale != 0.05 || s.Seed != 1 || len(s.Workloads) != 3 {
		t.Errorf("smoke entry changed shape: %+v", s)
	}
	if _, err := reg.ByName("no-such-suite"); err == nil {
		t.Error("ByName accepted an unknown suite")
	}
}

func TestRoundTrip(t *testing.T) {
	reg := Default()
	// TOML: load -> marshal -> load must be DeepEqual.
	again, err := Parse(reg.MarshalTOML())
	if err != nil {
		t.Fatalf("re-parse of MarshalTOML: %v", err)
	}
	if !reflect.DeepEqual(reg, again) {
		t.Errorf("TOML round-trip diverged:\n%+v\n%+v", reg, again)
	}
	// JSON path too.
	data, err := reg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	again, err = Parse(data)
	if err != nil {
		t.Fatalf("re-parse of MarshalJSON: %v", err)
	}
	if !reflect.DeepEqual(reg, again) {
		t.Errorf("JSON round-trip diverged")
	}
}

func TestMerge(t *testing.T) {
	base := &Registry{Suites: []Suite{{Name: "a", Scale: 1}, {Name: "b"}}}
	over := &Registry{Suites: []Suite{{Name: "b", Scale: 9}, {Name: "c"}}}
	got := base.Merge(over)
	if !reflect.DeepEqual(got.Names(), []string{"a", "b", "c"}) {
		t.Fatalf("merged names = %v", got.Names())
	}
	if got.Suites[1].Scale != 9 {
		t.Errorf("override did not replace: %+v", got.Suites[1])
	}
	// Inputs untouched.
	if base.Suites[1].Scale != 0 || len(base.Suites) != 2 || len(over.Suites) != 2 {
		t.Error("Merge modified an input")
	}
}

func TestEffective(t *testing.T) {
	base := defaultBase()
	s := Suite{Repeats: 5, Scale: 0.5, Seed: 7}
	p, r := s.Effective(base, 3)
	if p.Scale != 0.5 || p.Seed != 7 || r != 5 {
		t.Errorf("Effective override = %+v, %d", p, r)
	}
	p, r = Suite{}.Effective(base, 3)
	if p != base || r != 3 {
		t.Errorf("Effective defaults = %+v, %d", p, r)
	}
}
