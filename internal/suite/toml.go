package suite

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// A minimal TOML-subset decoder for the registry format. The
// container bakes in no third-party modules, so the subset is defined
// (and round-trip-tested) here:
//
//   - comments (#) and blank lines
//   - [[suite]] and [[suite.workload]] array-of-tables headers
//   - key = value with string ("..." with Go escapes), integer,
//     float, boolean, and string-array ["a", "b"] values
//
// Anything outside the subset — unknown keys included — is a hard
// error: a typoed knob must fail the load, not silently run the
// default shape. So is assigning the same key twice within one table:
// last-wins would silently discard the first value, and real TOML
// rejects it too. Errors before validation are positional
// ("suite: line N: ..."); validation errors are addressed
// ("suite: <name>: <field>: ...").

type tomlParser struct {
	reg    *Registry
	cur    *Suite        // open [[suite]], nil at top level
	curWL  *WorkloadSpec // open [[suite.workload]], nil otherwise
	lineNo int
	seen   map[string]int // key -> line of first assignment in the open table
}

func parseTOML(data []byte) (*Registry, error) {
	p := &tomlParser{reg: &Registry{}}
	for _, raw := range strings.Split(string(data), "\n") {
		p.lineNo++
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, err
		}
	}
	return p.reg, nil
}

func (p *tomlParser) errf(format string, args ...any) error {
	return fmt.Errorf("suite: line %d: %s", p.lineNo, fmt.Sprintf(format, args...))
}

// stripComment removes a trailing # comment, honoring quoted strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inStr {
				i++ // skip the escaped character
			}
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func (p *tomlParser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "[["):
		return p.header(line)
	case strings.HasPrefix(line, "["):
		return p.errf("plain tables are not supported; use [[suite]] / [[suite.workload]]")
	}
	eq := -1
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '=':
			if !inStr && eq < 0 {
				eq = i
			}
		}
	}
	if eq < 0 {
		return p.errf("expected key = value, have %q", line)
	}
	key := strings.TrimSpace(line[:eq])
	val := strings.TrimSpace(line[eq+1:])
	if key == "" {
		return p.errf("empty key")
	}
	if val == "" {
		return p.errf("key %s: empty value", key)
	}
	return p.assign(key, val)
}

func (p *tomlParser) header(line string) error {
	if !strings.HasSuffix(line, "]]") {
		return p.errf("unterminated table header %q", line)
	}
	name := strings.TrimSpace(line[2 : len(line)-2])
	switch name {
	case "suite":
		p.reg.Suites = append(p.reg.Suites, Suite{})
		p.cur = &p.reg.Suites[len(p.reg.Suites)-1]
		p.curWL = nil
		p.seen = map[string]int{}
		return nil
	case "suite.workload":
		if p.cur == nil {
			return p.errf("[[suite.workload]] outside a [[suite]]")
		}
		p.cur.Workloads = append(p.cur.Workloads, WorkloadSpec{})
		p.curWL = &p.cur.Workloads[len(p.cur.Workloads)-1]
		p.seen = map[string]int{}
		return nil
	default:
		return p.errf("unknown table %q (want suite or suite.workload)", name)
	}
}

// dup enforces single assignment per key within the open table; TOML
// forbids redefinition, and last-wins would silently drop a value.
func (p *tomlParser) dup(key string) error {
	if first, ok := p.seen[key]; ok {
		return p.errf("duplicate key %q in this table (first set at line %d)", key, first)
	}
	p.seen[key] = p.lineNo
	return nil
}

func (p *tomlParser) assign(key, val string) error {
	if p.curWL != nil {
		return p.assignWorkload(key, val)
	}
	if p.cur == nil {
		return p.errf("key %s outside any [[suite]]", key)
	}
	if err := p.dup(key); err != nil {
		return err
	}
	s := p.cur
	switch key {
	case "name":
		return p.str(key, val, &s.Name)
	case "description":
		return p.str(key, val, &s.Description)
	case "configs":
		return p.strArray(key, val, &s.Configs)
	case "policies":
		return p.strArray(key, val, &s.Policies)
	case "repeats":
		return p.intVal(key, val, &s.Repeats)
	case "scale":
		return p.floatVal(key, val, &s.Scale)
	case "seed":
		return p.int64Val(key, val, &s.Seed)
	default:
		return p.errf("unknown suite key %q", key)
	}
}

func (p *tomlParser) assignWorkload(key, val string) error {
	if err := p.dup(key); err != nil {
		return err
	}
	w := p.curWL
	switch key {
	case "name":
		return p.str(key, val, &w.Name)
	case "driver":
		return p.str(key, val, &w.Driver)
	case "footprint":
		return p.uintVal(key, val, &w.Footprint)
	case "block":
		return p.uintVal(key, val, &w.Block)
	case "ops":
		return p.uintVal(key, val, &w.Ops)
	case "ticks":
		return p.intVal(key, val, &w.Ticks)
	case "depth":
		return p.intVal(key, val, &w.Depth)
	case "read_pct":
		return p.intVal(key, val, &w.ReadPct)
	default:
		return p.errf("unknown workload key %q", key)
	}
}

func (p *tomlParser) str(key, val string, out *string) error {
	if len(val) < 2 || val[0] != '"' {
		return p.errf("key %s: expected a quoted string, have %q", key, val)
	}
	s, err := strconv.Unquote(val)
	if err != nil {
		return p.errf("key %s: bad string %s: %v", key, val, err)
	}
	*out = s
	return nil
}

func (p *tomlParser) intVal(key, val string, out *int) error {
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil || v != int64(int(v)) {
		return p.errf("key %s: bad integer %q", key, val)
	}
	*out = int(v)
	return nil
}

func (p *tomlParser) int64Val(key, val string, out *int64) error {
	v, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return p.errf("key %s: bad integer %q", key, val)
	}
	*out = v
	return nil
}

func (p *tomlParser) uintVal(key, val string, out *uint64) error {
	v, err := strconv.ParseUint(val, 10, 64)
	if err != nil {
		return p.errf("key %s: bad unsigned integer %q", key, val)
	}
	*out = v
	return nil
}

func (p *tomlParser) floatVal(key, val string, out *float64) error {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return p.errf("key %s: bad finite number %q", key, val)
	}
	*out = v
	return nil
}

// strArray parses ["a", "b"]; an empty array stays nil so load →
// marshal → load round-trips to DeepEqual.
func (p *tomlParser) strArray(key, val string, out *[]string) error {
	if len(val) < 2 || val[0] != '[' || val[len(val)-1] != ']' {
		return p.errf("key %s: expected a [\"...\"] array, have %q", key, val)
	}
	inner := strings.TrimSpace(val[1 : len(val)-1])
	if inner == "" {
		*out = nil
		return nil
	}
	var items []string
	for _, part := range splitTopLevel(inner) {
		part = strings.TrimSpace(part)
		var s string
		if err := p.str(key, part, &s); err != nil {
			return err
		}
		items = append(items, s)
	}
	*out = items
	return nil
}

// splitTopLevel splits on commas outside quoted strings.
func splitTopLevel(s string) []string {
	var parts []string
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case ',':
			if !inStr {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
